// Package cli holds the conventions shared by every command under
// cmd/: one process-exit-code vocabulary, so scripts, CI jobs and the
// expfleet supervisor can interpret any child uniformly.
//
// The mapping (documented in README "Operations"):
//
//	0   success — the run completed and all invariants held
//	1   findings or runtime failure — the run completed its control
//	    flow but something is wrong (lint findings, oracle violations,
//	    a figure that errored, quarantined campaign tasks)
//	2   usage error — bad flags, unknown figures, invalid plan files;
//	    retrying the identical invocation can never succeed
//	130 interrupted — the run drained gracefully after SIGINT/SIGTERM
//	    (128+SIGINT, the shell convention)
//
// The distinction between 1 and 2 is load-bearing: the expfleet
// supervisor retries children that fail with 1 (a crash or a transient
// failure may heal under -resume) but quarantines a 2 immediately —
// re-executing a malformed command line cannot fix it.
package cli

import (
	"fmt"
	"os"
)

// The repo-wide exit-code vocabulary.
const (
	ExitOK          = 0   // success
	ExitFailure     = 1   // findings / runtime failure
	ExitUsage       = 2   // invalid invocation; retry cannot succeed
	ExitInterrupted = 130 // graceful drain after SIGINT/SIGTERM
)

// Usagef prints a usage diagnostic as "<cmd>: ..." on stderr and
// returns ExitUsage, so callers can `return cli.Usagef(...)` from a
// run() int.
func Usagef(cmd, format string, args ...any) int {
	fmt.Fprintf(os.Stderr, cmd+": "+format+"\n", args...)
	return ExitUsage
}

// Failf prints a failure diagnostic as "<cmd>: ..." on stderr and
// returns ExitFailure.
func Failf(cmd, format string, args ...any) int {
	fmt.Fprintf(os.Stderr, cmd+": "+format+"\n", args...)
	return ExitFailure
}
