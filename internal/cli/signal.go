package cli

import (
	"fmt"
	"os"
	"os/signal"
	"syscall"
)

// SignalDrain installs the repo-wide two-stage SIGINT/SIGTERM policy: the
// first signal announces "<cmd>: <sig> — <action> (signal again to force
// quit)" on stderr and calls drain (typically a context cancel) so
// in-flight work finishes and journals; a second signal force-quits the
// process with ExitInterrupted. The returned stop function uninstalls the
// handler and releases its goroutine; call it when the command reaches
// its own orderly exit path.
func SignalDrain(cmd, action string, drain func()) (stop func()) {
	sigCh := make(chan os.Signal, 2)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	go func() {
		s, ok := <-sigCh
		if !ok {
			return
		}
		fmt.Fprintf(os.Stderr, "%s: %v — %s (signal again to force quit)\n", cmd, s, action)
		drain()
		if s, ok := <-sigCh; ok {
			fmt.Fprintf(os.Stderr, "%s: %v again — forcing exit\n", cmd, s)
			//netlint:allow exitcode the second-signal force quit is this helper's contract; every command shares it
			os.Exit(ExitInterrupted)
		}
	}()
	return func() {
		signal.Stop(sigCh)
		close(sigCh)
	}
}
