package plan

// The supervisor: each task fans out as a child expdriver process with
// its own checkpoint journal in a per-task directory. Robustness lives
// here, not in the children:
//
//   - healthchecks watch journal *progress* (file growth), not mere
//     process liveness — a wedged child that is alive but journaling
//     nothing is stalled, killed, and relaunched;
//   - a dead task relaunches with -resume under capped exponential
//     backoff with seeded deterministic jitter; a checkpoint directory
//     that no longer verifies (corrupt manifest or journal) is wiped so
//     the relaunch restarts the task from scratch instead of dying on
//     the same corruption forever;
//   - continue-on-failure: a task that exhausts its attempts (or fails
//     with a usage error, which no retry can fix) is quarantined with a
//     minimal diagnosis — exit status, last journaled point, stderr
//     tail — while the rest of the campaign completes;
//   - a canceled context drains two-stage: children get SIGTERM (they
//     drain in-flight sweep points and journal), queued tasks are
//     skipped; Force() escalates to SIGKILL.
//
// No wall clock is read here directly — the Now field injects it (the
// netlint determinism analyzer holds this package to the same standard
// as internal/exp), and all randomness derives from the plan seed.

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"sync"
	"syscall"
	"time"

	"netconstant/internal/cli"
	"netconstant/internal/exp"
)

// Task outcomes as they appear in reports.
const (
	OutcomeOK          = "ok"          // completed, results on disk
	OutcomeQuarantined = "quarantined" // permanently failed; diagnosis attached
	OutcomeInterrupted = "interrupted" // drained mid-run; journal is resumable
	OutcomeSkipped     = "skipped"     // never launched (campaign drained first)
)

// Supervisor executes a validated plan. Zero-value fields other than
// the four below are internal.
type Supervisor struct {
	Plan   *Plan
	Driver string // path to the expdriver binary
	Dir    string // campaign directory (created if missing)
	// Log receives human-readable supervision events (launches, stalls,
	// retries, quarantines). Nil discards them.
	Log io.Writer
	// Now supplies wall-clock readings for stall detection and wall-time
	// accounting. Required (cmd/expfleet injects time.Now).
	Now func() time.Time

	forceMu sync.Mutex
	force   chan struct{}
}

// TaskDir returns the directory of one task inside the campaign dir.
func (s *Supervisor) TaskDir(task string) string {
	return filepath.Join(s.Dir, "tasks", task)
}

// Force escalates a drain: every currently running child is SIGKILLed.
// Safe to call at any time, from any goroutine, at most once effective.
func (s *Supervisor) Force() {
	s.forceMu.Lock()
	defer s.forceMu.Unlock()
	if s.force == nil {
		s.force = make(chan struct{})
	}
	select {
	case <-s.force:
	default:
		close(s.force)
	}
}

// forceCh returns the (lazily created) force channel.
func (s *Supervisor) forceCh() chan struct{} {
	s.forceMu.Lock()
	defer s.forceMu.Unlock()
	if s.force == nil {
		s.force = make(chan struct{})
	}
	return s.force
}

func (s *Supervisor) logf(format string, args ...any) {
	if s.Log != nil {
		fmt.Fprintf(s.Log, "expfleet: "+format+"\n", args...)
	}
}

// Run executes the campaign: tasks launch in plan order, at most
// Plan.MaxProcs children at a time, each supervised independently. Run
// returns a complete report even when tasks were quarantined or the
// context drained the campaign — the error is non-nil only for
// campaign-level failures (unusable driver, unwritable directory).
func (s *Supervisor) Run(ctx context.Context) (*Report, error) {
	if s.Now == nil {
		return nil, errors.New("plan: Supervisor.Now is required (inject time.Now)")
	}
	if s.Plan == nil || len(s.Plan.Tasks) == 0 {
		return nil, errors.New("plan: Supervisor.Plan is empty (did Validate run?)")
	}
	driver, err := exec.LookPath(s.Driver)
	if err != nil {
		return nil, fmt.Errorf("plan: driver %q not executable: %w", s.Driver, err)
	}
	if err := os.MkdirAll(filepath.Join(s.Dir, "tasks"), 0o755); err != nil {
		return nil, err
	}

	rep := &Report{Campaign: s.Plan.Name, Seed: s.Plan.Seed,
		Tasks: make([]TaskReport, len(s.Plan.Tasks))}
	sem := make(chan struct{}, s.Plan.MaxProcs)
	var wg sync.WaitGroup
	// Admission happens here, in plan order: a task's goroutine only
	// spawns once it holds a slot, so earlier tasks always launch first
	// and a drained campaign skips exactly the not-yet-admitted suffix.
	for i := range s.Plan.Tasks {
		task := s.Plan.Tasks[i]
		select {
		case sem <- struct{}{}:
		case <-ctx.Done():
			rep.Tasks[i] = TaskReport{Name: task.Name, Outcome: OutcomeSkipped}
			continue
		}
		if ctx.Err() != nil { // won the slot racing a concurrent cancel
			<-sem
			rep.Tasks[i] = TaskReport{Name: task.Name, Outcome: OutcomeSkipped}
			continue
		}
		wg.Add(1)
		go func(i int, task Task) {
			defer wg.Done()
			defer func() { <-sem }()
			// Index-addressed slot: report order is plan order no matter
			// how scheduling interleaves the workers.
			rep.Tasks[i] = s.superviseTask(ctx, driver, task)
		}(i, task)
	}
	wg.Wait()
	return rep, nil
}

// attemptResult is what one child launch produced.
type attemptResult struct {
	exitCode int  // -1 when killed by a signal
	signaled bool // died on a signal (SIGKILL from a stall or sabotage)
	stalled  bool // the supervisor killed it for journal stagnation
	drained  bool // the campaign context was canceled during the attempt
	waitErr  error
}

// superviseTask owns one task end to end: launch, healthcheck, retry
// with backoff, quarantine. It returns the task's final report row.
func (s *Supervisor) superviseTask(ctx context.Context, driver string, task Task) TaskReport {
	tr := TaskReport{Name: task.Name}
	dir := s.TaskDir(task.Name)
	ckptDir := filepath.Join(dir, "ckpt")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		tr.Outcome = OutcomeQuarantined
		tr.Diagnosis = &Diagnosis{ExitStatus: "task directory: " + err.Error()}
		return tr
	}
	stderrTail := &tailBuffer{max: 4096}
	start := s.Now()

	var lastRes attemptResult
	for attempt := 1; attempt <= s.Plan.Retry.MaxAttempts; attempt++ {
		tr.Attempts = attempt
		if attempt > 1 {
			d := s.Plan.backoff(task.Name, attempt)
			s.logf("%s: retrying in %.2fs (attempt %d/%d)", task.Name, d.Seconds(), attempt, s.Plan.Retry.MaxAttempts)
			select {
			case <-time.After(d):
			case <-ctx.Done():
				tr.Outcome = OutcomeInterrupted
				tr.WallSeconds = s.Now().Sub(start).Seconds()
				return tr
			}
		}

		// Sabotage: corrupt-manifest fires before the matching attempt
		// launches, damaging the manifest on disk.
		if s.sabotageFor(task.Name, attempt, SabotageCorruptManifest) != nil {
			s.logf("%s: sabotage corrupt-manifest before attempt %d", task.Name, attempt)
			if err := os.MkdirAll(ckptDir, 0o755); err == nil {
				// Deliberately not atomic and not CRC-sealed: this is the
				// damage, not a write the substrate should survive intact.
				os.WriteFile(filepath.Join(ckptDir, exp.ManifestName), []byte("sabotaged manifest"), 0o644)
			}
		}

		// Resume when the checkpoint verifies; wipe and restart fresh
		// when the directory exists but does not verify (corrupt manifest
		// or journal, or a crash before the first append) — relaunching
		// against it would fail identically forever.
		resume := false
		if _, err := os.Stat(ckptDir); err == nil {
			if cerr := exp.CheckCheckpointDir(ckptDir); cerr == nil {
				resume = true
				tr.Resumes++
				if sum, err := exp.SummarizeJournal(filepath.Join(ckptDir, exp.JournalName)); err == nil {
					tr.ResumedPoints = sum.Points
				}
			} else {
				s.logf("%s: checkpoint unusable (%v) — wiping for a fresh start", task.Name, cerr)
				if err := os.RemoveAll(ckptDir); err != nil {
					tr.Outcome = OutcomeQuarantined
					tr.Diagnosis = &Diagnosis{ExitStatus: "wiping corrupt checkpoint: " + err.Error()}
					tr.WallSeconds = s.Now().Sub(start).Seconds()
					return tr
				}
			}
		}

		res := s.runAttempt(ctx, driver, task, attempt, dir, ckptDir, resume, stderrTail)
		lastRes = res
		tr.ExitCode = res.exitCode
		if res.stalled {
			tr.Stalls++
		}
		switch {
		case res.exitCode == cli.ExitOK:
			tr.Outcome = OutcomeOK
			tr.WallSeconds = s.Now().Sub(start).Seconds()
			return tr
		case res.drained:
			tr.Outcome = OutcomeInterrupted
			tr.WallSeconds = s.Now().Sub(start).Seconds()
			return tr
		case res.exitCode == cli.ExitUsage:
			// A usage error is deterministic: relaunching the identical
			// command line cannot succeed. Quarantine immediately.
			s.logf("%s: usage error (exit 2) — quarantining without retry", task.Name)
			tr.Outcome = OutcomeQuarantined
			tr.Diagnosis = s.diagnose(res, ckptDir, stderrTail)
			tr.WallSeconds = s.Now().Sub(start).Seconds()
			return tr
		default:
			s.logf("%s: attempt %d/%d failed (%s)", task.Name, attempt, s.Plan.Retry.MaxAttempts, res.status())
		}
	}
	tr.Outcome = OutcomeQuarantined
	tr.Diagnosis = s.diagnose(lastRes, ckptDir, stderrTail)
	tr.WallSeconds = s.Now().Sub(start).Seconds()
	s.logf("%s: quarantined after %d attempts (%s)", task.Name, tr.Attempts, tr.Diagnosis.ExitStatus)
	return tr
}

// status renders an attempt outcome for the log.
func (r attemptResult) status() string {
	switch {
	case r.stalled:
		return "stalled: no journal progress"
	case r.signaled:
		return "killed by signal"
	case r.waitErr != nil && r.exitCode < 0:
		return r.waitErr.Error()
	default:
		return "exit status " + strconv.Itoa(r.exitCode)
	}
}

// diagnose assembles the quarantine diagnosis: exit status, the last
// journaled point, and the stderr tail.
func (s *Supervisor) diagnose(res attemptResult, ckptDir string, tail *tailBuffer) *Diagnosis {
	d := &Diagnosis{ExitStatus: res.status(), StderrTail: tail.String()}
	if sum, err := exp.SummarizeJournal(filepath.Join(ckptDir, exp.JournalName)); err == nil {
		d.JournaledPoints = sum.Points
		d.LastFigure = sum.LastFigure
		d.LastIndex = sum.LastIndex
	}
	return d
}

// argv builds the child command line for one attempt.
func (s *Supervisor) argv(task Task, attempt int, dir, ckptDir string, resume bool) []string {
	args := []string{
		"-only", joinFigures(task.Figures),
		"-seed", strconv.FormatInt(task.seed(s.Plan.Seed), 10),
		"-json", filepath.Join(dir, "results.json"),
		"-md", filepath.Join(dir, "report.md"),
	}
	if task.Scale == ScaleFull {
		args = append(args, "-full")
	}
	if task.Workers > 0 {
		args = append(args, "-workers", strconv.Itoa(task.Workers))
	}
	if resume {
		args = append(args, "-resume", ckptDir)
	} else {
		args = append(args, "-ckpt", ckptDir)
	}
	// Kill/stall sabotage rides the driver's deterministic testing aids,
	// so the damage lands after an exact number of journaled points.
	if sb := s.sabotageFor(task.Name, attempt, SabotageKill); sb != nil {
		args = append(args, "-crashafter", strconv.Itoa(sb.AfterPoints))
	}
	if sb := s.sabotageFor(task.Name, attempt, SabotageStall); sb != nil {
		args = append(args, "-stallafter", strconv.Itoa(sb.AfterPoints))
	}
	return append(args, task.Extra...)
}

// sabotageFor finds the plan's sabotage op matching (task, attempt,
// kind), or nil.
func (s *Supervisor) sabotageFor(task string, attempt int, kind string) *Sabotage {
	for i := range s.Plan.Sabotage {
		sb := &s.Plan.Sabotage[i]
		if sb.Kind == kind && sb.Task == task && sb.Attempt == attempt {
			return sb
		}
	}
	return nil
}

// runAttempt launches one child and supervises it to exit: journal-
// progress healthchecks, stall kill, two-stage drain.
func (s *Supervisor) runAttempt(ctx context.Context, driver string, task Task, attempt int, dir, ckptDir string, resume bool, tail *tailBuffer) attemptResult {
	logPath := filepath.Join(dir, "stderr.log")
	logF, err := os.OpenFile(logPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return attemptResult{exitCode: -1, waitErr: err}
	}
	defer logF.Close()
	fmt.Fprintf(logF, "--- attempt %d ---\n", attempt)

	cmd := exec.Command(driver, s.argv(task, attempt, dir, ckptDir, resume)...)
	cmd.Stdout = io.Discard
	cmd.Stderr = io.MultiWriter(logF, tail)
	// Bound the pipe drain after the child dies: an orphaned grandchild
	// holding the inherited stderr fd must not wedge the supervisor.
	cmd.WaitDelay = time.Second
	if err := cmd.Start(); err != nil {
		return attemptResult{exitCode: -1, waitErr: err}
	}
	mode := "fresh"
	if resume {
		mode = "resume"
	}
	s.logf("%s: attempt %d launched (%s, pid %d)", task.Name, attempt, mode, cmd.Process.Pid)

	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()

	journal := filepath.Join(ckptDir, exp.JournalName)
	lastSize := journalSize(journal)
	lastProgress := s.Now()
	stallAfter := time.Duration(s.Plan.StallTimeoutSec * float64(time.Second))
	poll := time.NewTicker(time.Duration(s.Plan.PollIntervalSec * float64(time.Second)))
	defer poll.Stop()

	var res attemptResult
	drainCh := ctx.Done()
	for {
		select {
		case werr := <-done:
			res.waitErr = werr
			res.exitCode = cmd.ProcessState.ExitCode()
			if ws, ok := cmd.ProcessState.Sys().(syscall.WaitStatus); ok && ws.Signaled() {
				res.signaled = true
			}
			return res
		case <-poll.C:
			if size := journalSize(journal); size != lastSize {
				lastSize = size
				lastProgress = s.Now()
			} else if s.Now().Sub(lastProgress) > stallAfter {
				// Alive but journaling nothing: stalled. SIGKILL works on
				// stopped processes too, so a SIGSTOP-wedged child dies.
				s.logf("%s: stalled (no journal progress for %.1fs) — killing pid %d",
					task.Name, s.Now().Sub(lastProgress).Seconds(), cmd.Process.Pid)
				res.stalled = true
				cmd.Process.Kill()
			}
		case <-drainCh:
			// Stage one: forward a graceful SIGTERM; the child drains
			// in-flight sweep points, journals, and exits 130.
			s.logf("%s: draining — SIGTERM to pid %d", task.Name, cmd.Process.Pid)
			res.drained = true
			cmd.Process.Signal(syscall.SIGTERM)
			drainCh = nil // signal once; keep supervising until exit
		case <-s.forceCh():
			s.logf("%s: force quit — SIGKILL to pid %d", task.Name, cmd.Process.Pid)
			res.drained = true
			cmd.Process.Kill()
			werr := <-done
			res.waitErr = werr
			res.exitCode = cmd.ProcessState.ExitCode()
			res.signaled = true
			return res
		}
	}
}

// journalSize returns the journal's current byte size (0 when absent).
func journalSize(path string) int64 {
	fi, err := os.Stat(path)
	if err != nil {
		return 0
	}
	return fi.Size()
}

// joinFigures renders a figure list for -only.
func joinFigures(figs []string) string {
	out := ""
	for i, f := range figs {
		if i > 0 {
			out += ","
		}
		out += f
	}
	return out
}

// tailBuffer keeps the last max bytes written to it; safe for
// concurrent use (the child's stderr pipe writes from another
// goroutine than the reader).
type tailBuffer struct {
	mu  sync.Mutex
	max int
	buf []byte
}

func (t *tailBuffer) Write(p []byte) (int, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.buf = append(t.buf, p...)
	if len(t.buf) > t.max {
		t.buf = append(t.buf[:0:0], t.buf[len(t.buf)-t.max:]...)
	}
	return len(p), nil
}

func (t *tailBuffer) String() string {
	t.mu.Lock()
	defer t.mu.Unlock()
	return string(t.buf)
}
