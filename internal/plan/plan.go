// Package plan implements Testground-style experiment compositions: a
// declarative, serializable campaign plan (figure set × scale × seed ×
// workers, expanded into tasks) with strict upfront validation, and a
// supervisor that executes each task as a child expdriver process with
// its own checkpoint journal — healthchecked by journal progress,
// relaunched with -resume under capped exponential backoff after a
// crash, and quarantined with a minimal diagnosis when it fails
// permanently, while the rest of the campaign completes.
//
// A plan validates entirely before anything runs: unknown figures,
// invalid scales, duplicate task names, unsafe extra flags and
// malformed sabotage ops are all typed *ValidationError rejections, so
// a long campaign can never die hours in on a misspelling the parser
// could have caught.
package plan

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"

	"netconstant/internal/exp"
)

// Scales a task may run at, mapping to expdriver's quick/full profiles.
const (
	ScaleQuick = "quick"
	ScaleFull  = "full"
)

// Sabotage kinds the supervisor can inject into a campaign (the chaos
// harness's supervisor-level ops). Kill and stall ride the driver's own
// deterministic testing aids (-crashafter / -stallafter), so they fire
// after an exact number of journaled points; corrupt-manifest damages
// the task's checkpoint manifest on disk before an attempt launches.
const (
	SabotageKill            = "kill-child"
	SabotageStall           = "stall-child"
	SabotageCorruptManifest = "corrupt-manifest"
)

// sabotageKinds is the validation allowlist.
var sabotageKinds = map[string]bool{
	SabotageKill:            true,
	SabotageStall:           true,
	SabotageCorruptManifest: true,
}

// ErrInvalidPlan is the sentinel matched by every *ValidationError.
var ErrInvalidPlan = errors.New("plan: invalid")

// ValidationError reports one reason a plan cannot run. It wraps
// ErrInvalidPlan.
type ValidationError struct {
	Field string // the offending field, e.g. "tasks[2].figures"
	Msg   string // what is wrong, with the valid alternatives when enumerable
}

func (e *ValidationError) Error() string {
	return fmt.Sprintf("plan: invalid %s: %s", e.Field, e.Msg)
}

// Unwrap makes errors.Is(err, ErrInvalidPlan) true.
func (e *ValidationError) Unwrap() error { return ErrInvalidPlan }

func invalidf(field, format string, args ...any) *ValidationError {
	return &ValidationError{Field: field, Msg: fmt.Sprintf(format, args...)}
}

// Task is one campaign unit: a set of figures run by one expdriver
// child at one scale, seed and worker count, journaling into its own
// per-task checkpoint directory.
type Task struct {
	// Name keys the task's directory and report rows. Must be unique in
	// the plan and filename-safe.
	Name string `json:"name"`
	// Figures is the -only set handed to the child. Every entry must be
	// a registered experiment figure.
	Figures []string `json:"figures"`
	// Scale is "quick" (default) or "full".
	Scale string `json:"scale,omitempty"`
	// Seed is the experiment seed; 0 inherits the plan seed.
	Seed int64 `json:"seed,omitempty"`
	// Workers is the child's sweep-point fan-out; 0 lets the child
	// default to GOMAXPROCS.
	Workers int `json:"workers,omitempty"`
	// Extra holds additional expdriver flags (e.g. -nomemo,
	// -cpuprofile, or the -failafter testing aid). Flags the supervisor
	// owns (-only, -seed, -ckpt, -resume, -json, -md, -full) are
	// rejected at validation.
	Extra []string `json:"extra,omitempty"`
}

// seed resolves the task's effective experiment seed.
func (t Task) seed(planSeed int64) int64 {
	if t.Seed != 0 {
		return t.Seed
	}
	return planSeed
}

// Retry is the supervisor's relaunch policy for a crashed task.
// Backoff is capped exponential with seeded deterministic jitter: the
// delay before attempt k (k ≥ 2) is
//
//	min(MaxDelay, BaseDelay·2^(k-2)) · (1 + JitterFrac·(u−0.5))
//
// where u ∈ [0,1) is drawn from a generator seeded purely by (plan
// seed, task name, k) — identical campaigns back off identically.
type Retry struct {
	// MaxAttempts bounds launches per task (first run included).
	// Default 3.
	MaxAttempts int `json:"max_attempts,omitempty"`
	// BaseDelaySec is the pre-jitter delay before the first retry.
	// Default 0.5.
	BaseDelaySec float64 `json:"base_delay_sec,omitempty"`
	// MaxDelaySec caps the exponential growth. Default 15.
	MaxDelaySec float64 `json:"max_delay_sec,omitempty"`
	// JitterFrac spreads the delay by ±JitterFrac/2. Default 0.2.
	JitterFrac float64 `json:"jitter_frac,omitempty"`
}

// Sabotage is one supervisor-level chaos op, declared in the plan so a
// disturbed campaign is as replayable as a clean one. Each op fires at
// most once, against one (task, attempt) pair.
type Sabotage struct {
	Kind string `json:"kind"` // kill-child | stall-child | corrupt-manifest
	Task string `json:"task"` // name of the task to sabotage
	// Attempt is which launch to hit (1 = the first). Default 1.
	Attempt int `json:"attempt,omitempty"`
	// AfterPoints parameterizes kill-child/stall-child: the child dies
	// (or stalls) right after this many sweep points have journaled in
	// that attempt. Default 1.
	AfterPoints int `json:"after_points,omitempty"`
}

// Matrix generates tasks as a cross product of axes, in deterministic
// axis-major order. Generated task names are
// "m<index>-<figures joined by .>-<scale>-s<seed>-w<workers>".
type Matrix struct {
	// Figures is a list of figure sets; each set becomes one axis value
	// (one child runs the whole set).
	Figures [][]string `json:"figures"`
	// Scales defaults to ["quick"].
	Scales []string `json:"scales,omitempty"`
	// Seeds defaults to [plan seed].
	Seeds []int64 `json:"seeds,omitempty"`
	// Workers defaults to [0].
	Workers []int `json:"workers,omitempty"`
}

// Plan is a full declarative campaign.
type Plan struct {
	// Name labels the campaign in reports. Filename-safe.
	Name string `json:"name"`
	// Seed drives every derived stream: task seeds left at 0, backoff
	// jitter, and sabotage scheduling.
	Seed int64 `json:"seed"`
	// Tasks lists explicit tasks; Matrix, when present, appends its
	// expansion. At least one task must result.
	Tasks  []Task  `json:"tasks,omitempty"`
	Matrix *Matrix `json:"matrix,omitempty"`
	// MaxProcs bounds concurrently running children. Default 2.
	MaxProcs int `json:"max_procs,omitempty"`
	// Retry is the relaunch policy (defaults documented on Retry).
	Retry Retry `json:"retry,omitempty"`
	// StallTimeoutSec declares a running child stalled when its journal
	// has not grown for this long; the supervisor kills and relaunches
	// it. Default 120.
	StallTimeoutSec float64 `json:"stall_timeout_sec,omitempty"`
	// PollIntervalSec is the healthcheck cadence. Default 0.25.
	PollIntervalSec float64 `json:"poll_interval_sec,omitempty"`
	// Sabotage lists supervisor-level chaos ops to inject (empty for a
	// clean campaign).
	Sabotage []Sabotage `json:"sabotage,omitempty"`
}

// Parse decodes a plan from JSON, rejecting unknown fields — a typo'd
// key is a validation error, not a silently ignored knob — and then
// validates it. The returned plan has Matrix expanded into Tasks and
// defaults resolved.
func Parse(data []byte) (*Plan, error) {
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	var p Plan
	if err := dec.Decode(&p); err != nil {
		return nil, invalidf("json", "%v", err)
	}
	if dec.More() {
		return nil, invalidf("json", "trailing data after the plan object")
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &p, nil
}

// filenameSafe reports whether s can name a directory entry on any
// filesystem we care about.
func filenameSafe(s string) bool {
	if s == "" || len(s) > 128 || s == "." || s == ".." {
		return false
	}
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
		case r == '-' || r == '_' || r == '.':
		default:
			return false
		}
	}
	return true
}

// reservedFlags are expdriver flags the supervisor owns; a task's Extra
// list may not re-set them.
var reservedFlags = map[string]bool{
	"-only": true, "-seed": true, "-workers": true, "-full": true,
	"-ckpt": true, "-resume": true, "-json": true, "-md": true,
}

// validFigures returns the registered figure names, sorted.
func validFigures() (map[string]bool, []string) {
	figs := exp.Figures()
	set := make(map[string]bool, len(figs))
	names := make([]string, 0, len(figs))
	for _, f := range figs {
		set[f.Name] = true
		names = append(names, f.Name)
	}
	sort.Strings(names)
	return set, names
}

// Validate checks the whole plan up front, expands Matrix into Tasks,
// and resolves defaults in place. It returns the first violation as a
// typed *ValidationError; a valid plan returns nil and is ready for a
// Supervisor.
func (p *Plan) Validate() error {
	if !filenameSafe(p.Name) {
		return invalidf("name", "%q is not a safe campaign name (letters, digits, - _ . only)", p.Name)
	}
	if p.Seed < 0 {
		return invalidf("seed", "must be ≥ 0, got %d", p.Seed)
	}
	if p.Matrix != nil {
		expanded, err := p.Matrix.expand(p.Seed)
		if err != nil {
			return err
		}
		p.Tasks = append(p.Tasks, expanded...)
		p.Matrix = nil
	}
	if len(p.Tasks) == 0 {
		return invalidf("tasks", "a plan needs at least one task")
	}
	figSet, figNames := validFigures()
	seen := make(map[string]bool, len(p.Tasks))
	for i := range p.Tasks {
		t := &p.Tasks[i]
		field := fmt.Sprintf("tasks[%d]", i)
		if !filenameSafe(t.Name) {
			return invalidf(field+".name", "%q is not a safe task name (letters, digits, - _ . only)", t.Name)
		}
		if seen[t.Name] {
			return invalidf(field+".name", "duplicate task name %q", t.Name)
		}
		seen[t.Name] = true
		if len(t.Figures) == 0 {
			return invalidf(field+".figures", "a task needs at least one figure")
		}
		for _, f := range t.Figures {
			if !figSet[f] {
				return invalidf(field+".figures", "unknown figure %q; valid figures: %s", f, strings.Join(figNames, ", "))
			}
		}
		switch t.Scale {
		case "":
			t.Scale = ScaleQuick
		case ScaleQuick, ScaleFull:
		default:
			return invalidf(field+".scale", "unknown scale %q (want %q or %q)", t.Scale, ScaleQuick, ScaleFull)
		}
		if t.Seed < 0 {
			return invalidf(field+".seed", "must be ≥ 0, got %d", t.Seed)
		}
		if t.Workers < 0 {
			return invalidf(field+".workers", "must be ≥ 0, got %d", t.Workers)
		}
		for _, e := range t.Extra {
			flagName := e
			if k := strings.IndexByte(flagName, '='); k >= 0 {
				flagName = flagName[:k]
			}
			if reservedFlags[flagName] {
				return invalidf(field+".extra", "flag %s is owned by the supervisor", flagName)
			}
		}
	}
	if p.MaxProcs == 0 {
		p.MaxProcs = 2
	}
	if p.MaxProcs < 1 {
		return invalidf("max_procs", "must be ≥ 1, got %d", p.MaxProcs)
	}
	if err := p.Retry.validate(); err != nil {
		return err
	}
	if p.StallTimeoutSec == 0 {
		p.StallTimeoutSec = 120
	}
	if p.StallTimeoutSec < 0 {
		return invalidf("stall_timeout_sec", "must be > 0, got %v", p.StallTimeoutSec)
	}
	if p.PollIntervalSec == 0 {
		p.PollIntervalSec = 0.25
	}
	if p.PollIntervalSec < 0 {
		return invalidf("poll_interval_sec", "must be > 0, got %v", p.PollIntervalSec)
	}
	for i := range p.Sabotage {
		s := &p.Sabotage[i]
		field := fmt.Sprintf("sabotage[%d]", i)
		if !sabotageKinds[s.Kind] {
			return invalidf(field+".kind", "unknown sabotage kind %q (want %s, %s or %s)",
				s.Kind, SabotageKill, SabotageStall, SabotageCorruptManifest)
		}
		if !seen[s.Task] {
			return invalidf(field+".task", "sabotage targets unknown task %q", s.Task)
		}
		if s.Attempt == 0 {
			s.Attempt = 1
		}
		if s.Attempt < 1 {
			return invalidf(field+".attempt", "must be ≥ 1, got %d", s.Attempt)
		}
		if s.AfterPoints == 0 {
			s.AfterPoints = 1
		}
		if s.AfterPoints < 1 {
			return invalidf(field+".after_points", "must be ≥ 1, got %d", s.AfterPoints)
		}
	}
	return nil
}

// validate checks and defaults the retry policy.
func (r *Retry) validate() error {
	if r.MaxAttempts == 0 {
		r.MaxAttempts = 3
	}
	if r.MaxAttempts < 1 {
		return invalidf("retry.max_attempts", "must be ≥ 1, got %d", r.MaxAttempts)
	}
	if r.BaseDelaySec == 0 {
		r.BaseDelaySec = 0.5
	}
	if r.BaseDelaySec < 0 {
		return invalidf("retry.base_delay_sec", "must be ≥ 0, got %v", r.BaseDelaySec)
	}
	if r.MaxDelaySec == 0 {
		r.MaxDelaySec = 15
	}
	if r.MaxDelaySec < r.BaseDelaySec {
		return invalidf("retry.max_delay_sec", "must be ≥ base_delay_sec (%v), got %v", r.BaseDelaySec, r.MaxDelaySec)
	}
	if r.JitterFrac == 0 {
		r.JitterFrac = 0.2
	}
	if r.JitterFrac < 0 || r.JitterFrac > 1 {
		return invalidf("retry.jitter_frac", "must be in [0, 1], got %v", r.JitterFrac)
	}
	return nil
}

// expand generates the matrix's cross product in deterministic
// axis-major order (figures outermost, workers innermost).
func (m *Matrix) expand(planSeed int64) ([]Task, error) {
	if len(m.Figures) == 0 {
		return nil, invalidf("matrix.figures", "a matrix needs at least one figure set")
	}
	scales := m.Scales
	if len(scales) == 0 {
		scales = []string{ScaleQuick}
	}
	seeds := m.Seeds
	if len(seeds) == 0 {
		seeds = []int64{planSeed}
	}
	workers := m.Workers
	if len(workers) == 0 {
		workers = []int{0}
	}
	var out []Task
	for _, figs := range m.Figures {
		for _, sc := range scales {
			for _, sd := range seeds {
				for _, w := range workers {
					name := fmt.Sprintf("m%d-%s-%s-s%d-w%d",
						len(out), strings.Join(figs, "."), sc, sd, w)
					out = append(out, Task{
						Name:    name,
						Figures: append([]string(nil), figs...),
						Scale:   sc,
						Seed:    sd,
						Workers: w,
					})
				}
			}
		}
	}
	return out, nil
}

// Clean returns a copy of the plan with every sabotage op stripped —
// the "undisturbed twin" a chaos oracle compares a sabotaged campaign
// against.
func (p *Plan) Clean() *Plan {
	cp := *p
	cp.Sabotage = nil
	cp.Tasks = append([]Task(nil), p.Tasks...)
	return &cp
}

// backoff returns the deterministic post-jitter delay to wait before
// launching the given attempt (attempt ≥ 2) of the named task.
func (p *Plan) backoff(task string, attempt int) time.Duration {
	d := p.Retry.BaseDelaySec
	for k := 2; k < attempt; k++ {
		d *= 2
		if d >= p.Retry.MaxDelaySec {
			break
		}
	}
	if d > p.Retry.MaxDelaySec {
		d = p.Retry.MaxDelaySec
	}
	u := jitterU(p.Seed, task, attempt)
	d *= 1 + p.Retry.JitterFrac*(u-0.5)
	return time.Duration(d * float64(time.Second))
}

// jitterU derives a uniform [0,1) draw purely from (seed, task,
// attempt) — splitmix64 over an FNV-1a hash, the same construction as
// exp.PointSeed — so backoff schedules replay identically.
func jitterU(seed int64, task string, attempt int) float64 {
	x := uint64(14695981039346656037)
	for i := 0; i < len(task); i++ {
		x ^= uint64(task[i])
		x *= 1099511628211
	}
	x ^= uint64(seed) * 0x9e3779b97f4a7c15
	x ^= uint64(attempt) * 0xbf58476d1ce4e5b9
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return float64(x>>11) / float64(1<<53)
}
