package plan

import (
	"bytes"
	"context"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// writeScript installs an executable shell script to act as a fake
// driver. Scripts receive the real expdriver command line; $RESULTS is
// pre-resolved to the task's -json path for convenience.
func writeScript(t *testing.T, body string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "fakedriver.sh")
	script := `#!/bin/sh
RESULTS=""
prev=""
for a in "$@"; do
	if [ "$prev" = "-json" ]; then RESULTS="$a"; fi
	prev="$a"
done
` + body + "\n"
	if err := os.WriteFile(path, []byte(script), 0o755); err != nil {
		t.Fatal(err)
	}
	return path
}

// fastPlan builds a validated single-task plan with test-speed retry
// and healthcheck settings.
func fastPlan(t *testing.T, tasks ...Task) *Plan {
	t.Helper()
	p := &Plan{
		Name:            "t",
		Seed:            1,
		Tasks:           tasks,
		MaxProcs:        2,
		Retry:           Retry{MaxAttempts: 2, BaseDelaySec: 0.01, MaxDelaySec: 0.02, JitterFrac: 0.1},
		StallTimeoutSec: 5,
		PollIntervalSec: 0.02,
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	return p
}

func newSupervisor(t *testing.T, p *Plan, driver string) *Supervisor {
	t.Helper()
	return &Supervisor{Plan: p, Driver: driver, Dir: t.TempDir(), Now: time.Now}
}

func TestSupervisorRequiresClock(t *testing.T) {
	s := &Supervisor{Plan: fastPlan(t, Task{Name: "a", Figures: []string{"fig7"}}), Driver: "/bin/true", Dir: t.TempDir()}
	if _, err := s.Run(context.Background()); err == nil {
		t.Fatal("Run accepted a nil Now")
	}
}

func TestSupervisorSuccess(t *testing.T) {
	driver := writeScript(t, `echo '{"figure":"fig7"}' > "$RESULTS"; exit 0`)
	p := fastPlan(t,
		Task{Name: "a", Figures: []string{"fig7"}},
		Task{Name: "b", Figures: []string{"fig8"}})
	s := newSupervisor(t, p, driver)
	rep, err := s.Run(context.Background())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for i, tr := range rep.Tasks {
		if tr.Outcome != OutcomeOK || tr.Attempts != 1 {
			t.Errorf("task[%d] = %+v, want ok on first attempt", i, tr)
		}
	}
	if rep.Tasks[0].Name != "a" || rep.Tasks[1].Name != "b" {
		t.Error("report rows are not in plan order")
	}
	res, err := rep.DeterministicResults(s)
	if err != nil {
		t.Fatalf("DeterministicResults: %v", err)
	}
	want := "{\"campaign\":\"t\",\"seed\":1}\n" +
		"{\"task\":\"a\",\"outcome\":\"ok\"}\n{\"figure\":\"fig7\"}\n" +
		"{\"task\":\"b\",\"outcome\":\"ok\"}\n{\"figure\":\"fig7\"}\n"
	if string(res) != want {
		t.Errorf("results = %q, want %q", res, want)
	}
	if !strings.Contains(rep.Render(), "outcome: 2 ok, 0 quarantined") {
		t.Errorf("Render tally wrong:\n%s", rep.Render())
	}
}

func TestSupervisorQuarantinesAfterRetries(t *testing.T) {
	driver := writeScript(t, `echo "synthetic failure" >&2; exit 1`)
	p := fastPlan(t, Task{Name: "a", Figures: []string{"fig7"}})
	s := newSupervisor(t, p, driver)
	rep, err := s.Run(context.Background())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	tr := rep.Tasks[0]
	if tr.Outcome != OutcomeQuarantined {
		t.Fatalf("outcome = %s, want quarantined", tr.Outcome)
	}
	if tr.Attempts != p.Retry.MaxAttempts {
		t.Errorf("Attempts = %d, want %d (every attempt should be retried)", tr.Attempts, p.Retry.MaxAttempts)
	}
	if tr.Diagnosis == nil {
		t.Fatal("quarantined task has no diagnosis")
	}
	if tr.Diagnosis.ExitStatus != "exit status 1" {
		t.Errorf("ExitStatus = %q", tr.Diagnosis.ExitStatus)
	}
	if !strings.Contains(tr.Diagnosis.StderrTail, "synthetic failure") {
		t.Errorf("StderrTail = %q, want the child's stderr", tr.Diagnosis.StderrTail)
	}
}

func TestSupervisorUsageErrorSkipsRetry(t *testing.T) {
	driver := writeScript(t, `echo "flag provided but not defined" >&2; exit 2`)
	p := fastPlan(t, Task{Name: "a", Figures: []string{"fig7"}})
	s := newSupervisor(t, p, driver)
	rep, err := s.Run(context.Background())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	tr := rep.Tasks[0]
	if tr.Outcome != OutcomeQuarantined || tr.Attempts != 1 {
		t.Errorf("usage error should quarantine on attempt 1, got %+v", tr)
	}
	if tr.ExitCode != 2 {
		t.Errorf("ExitCode = %d, want 2", tr.ExitCode)
	}
}

func TestSupervisorKillsStalledChild(t *testing.T) {
	// The fake driver journals nothing and never exits: the journal-
	// progress healthcheck must declare it stalled and kill it.
	driver := writeScript(t, `exec sleep 60`)
	p := fastPlan(t, Task{Name: "a", Figures: []string{"fig7"}})
	p.StallTimeoutSec = 0.2
	s := newSupervisor(t, p, driver)
	rep, err := s.Run(context.Background())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	tr := rep.Tasks[0]
	if tr.Outcome != OutcomeQuarantined {
		t.Fatalf("outcome = %s, want quarantined", tr.Outcome)
	}
	if tr.Stalls != p.Retry.MaxAttempts {
		t.Errorf("Stalls = %d, want %d (every attempt stalled)", tr.Stalls, p.Retry.MaxAttempts)
	}
	if tr.Diagnosis == nil || !strings.Contains(tr.Diagnosis.ExitStatus, "stalled") {
		t.Errorf("diagnosis should report the stall, got %+v", tr.Diagnosis)
	}
}

func TestSupervisorDrainSkipsQueuedTasks(t *testing.T) {
	// Task a ignores nothing: on SIGTERM it writes results and exits
	// 130 like a draining expdriver. Task b never gets a slot.
	driver := writeScript(t, `trap 'exit 130' TERM
for i in $(seq 1 600); do sleep 0.1; done`)
	p := fastPlan(t,
		Task{Name: "a", Figures: []string{"fig7"}},
		Task{Name: "b", Figures: []string{"fig8"}})
	p.MaxProcs = 1
	s := newSupervisor(t, p, driver)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(300 * time.Millisecond)
		cancel()
	}()
	rep, err := s.Run(ctx)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rep.Tasks[0].Outcome != OutcomeInterrupted {
		t.Errorf("task a outcome = %s, want interrupted", rep.Tasks[0].Outcome)
	}
	if rep.Tasks[1].Outcome != OutcomeSkipped {
		t.Errorf("task b outcome = %s, want skipped", rep.Tasks[1].Outcome)
	}
}

func TestSupervisorForceKillsStubborn(t *testing.T) {
	// The child ignores SIGTERM; only Force (SIGKILL) ends it.
	driver := writeScript(t, `trap '' TERM
for i in $(seq 1 600); do sleep 0.1; done`)
	p := fastPlan(t, Task{Name: "a", Figures: []string{"fig7"}})
	s := newSupervisor(t, p, driver)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(200 * time.Millisecond)
		cancel()
		time.Sleep(200 * time.Millisecond)
		s.Force()
	}()
	done := make(chan *Report, 1)
	go func() {
		rep, _ := s.Run(ctx)
		done <- rep
	}()
	select {
	case rep := <-done:
		if rep.Tasks[0].Outcome != OutcomeInterrupted {
			t.Errorf("outcome = %s, want interrupted", rep.Tasks[0].Outcome)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Force did not terminate a SIGTERM-ignoring child")
	}
}

// --- integration with the real expdriver -----------------------------

var (
	buildOnce   sync.Once
	builtDriver string
	buildErr    error
)

// realDriver builds cmd/expdriver once per test run.
func realDriver(t *testing.T) string {
	t.Helper()
	if testing.Short() {
		t.Skip("short mode: skipping real-driver integration")
	}
	buildOnce.Do(func() {
		dir, err := os.MkdirTemp("", "expfleet-driver-*")
		if err != nil {
			buildErr = err
			return
		}
		builtDriver = filepath.Join(dir, "expdriver")
		out, err := exec.Command("go", "build", "-o", builtDriver, "netconstant/cmd/expdriver").CombinedOutput()
		if err != nil {
			buildErr = err
			builtDriver = string(out)
		}
	})
	if buildErr != nil {
		t.Fatalf("building expdriver: %v: %s", buildErr, builtDriver)
	}
	return builtDriver
}

// TestCampaignSabotageByteIdentical is the supervision contract end to
// end: a campaign whose children are killed after one journaled point,
// wedged with SIGSTOP, and handed a corrupted manifest must still
// produce a deterministic results file byte-identical to its
// undisturbed twin.
func TestCampaignSabotageByteIdentical(t *testing.T) {
	driver := realDriver(t)
	sabotaged := &Plan{
		Name: "chaos",
		Seed: 11,
		Tasks: []Task{
			{Name: "a", Figures: []string{"fig7"}},
			{Name: "b", Figures: []string{"fig8"}},
		},
		MaxProcs:        2,
		Retry:           Retry{MaxAttempts: 4, BaseDelaySec: 0.01, MaxDelaySec: 0.05, JitterFrac: 0.1},
		StallTimeoutSec: 1.0,
		PollIntervalSec: 0.05,
		// Task a: killed on attempt 1, resumes on attempt 2 and is killed
		// again, then finds its manifest corrupted before attempt 3 —
		// which wipes the checkpoint and restarts fresh. Task b wedges
		// (SIGSTOP) on attempt 1 and must be caught by the journal-
		// progress healthcheck.
		Sabotage: []Sabotage{
			{Kind: SabotageKill, Task: "a", Attempt: 1, AfterPoints: 1},
			{Kind: SabotageKill, Task: "a", Attempt: 2, AfterPoints: 1},
			{Kind: SabotageCorruptManifest, Task: "a", Attempt: 3},
			{Kind: SabotageStall, Task: "b", Attempt: 1, AfterPoints: 1},
		},
	}
	if err := sabotaged.Validate(); err != nil {
		t.Fatal(err)
	}

	run := func(p *Plan) (*Supervisor, *Report, []byte) {
		s := &Supervisor{Plan: p, Driver: driver, Dir: t.TempDir(), Now: time.Now}
		rep, err := s.Run(context.Background())
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		res, err := rep.DeterministicResults(s)
		if err != nil {
			t.Fatalf("DeterministicResults: %v\nreport:\n%s", err, rep.Render())
		}
		return s, rep, res
	}

	_, sabRep, sabRes := run(sabotaged)
	_, cleanRep, cleanRes := run(sabotaged.Clean())

	for i, tr := range sabRep.Tasks {
		if tr.Outcome != OutcomeOK {
			t.Fatalf("sabotaged task %s: outcome %s (%+v)\n%s", tr.Name, tr.Outcome, tr.Diagnosis, sabRep.Render())
		}
		if tr.Attempts < 2 {
			t.Errorf("sabotaged task[%d] recovered without a relaunch (attempts=%d)", i, tr.Attempts)
		}
	}
	// The killed child resumed its journal at least once (attempt 2);
	// the wedged child was detected via journal stagnation.
	if sabRep.Tasks[0].Resumes < 1 {
		t.Errorf("task a: Resumes = %d, want ≥ 1", sabRep.Tasks[0].Resumes)
	}
	if sabRep.Tasks[1].Stalls < 1 {
		t.Errorf("task b: Stalls = %d, want ≥ 1", sabRep.Tasks[1].Stalls)
	}
	for _, tr := range cleanRep.Tasks {
		if tr.Outcome != OutcomeOK || tr.Attempts != 1 {
			t.Fatalf("clean task %s: %+v\n%s", tr.Name, tr, cleanRep.Render())
		}
	}
	if !bytes.Equal(sabRes, cleanRes) {
		t.Errorf("sabotaged and clean campaigns diverge:\n--- sabotaged ---\n%s\n--- clean ---\n%s", sabRes, cleanRes)
	}
}

// TestCampaignContinueOnFailure: a task that fails persistently is
// quarantined while its peers complete, and the deterministic results
// still carry the healthy tasks' outputs.
func TestCampaignContinueOnFailure(t *testing.T) {
	driver := realDriver(t)
	p := &Plan{
		Name: "partial",
		Seed: 5,
		Tasks: []Task{
			{Name: "good", Figures: []string{"fig7"}},
			{Name: "doomed", Figures: []string{"fig8"}, Extra: []string{"-failafter", "1"}},
		},
		MaxProcs:        2,
		Retry:           Retry{MaxAttempts: 2, BaseDelaySec: 0.01, MaxDelaySec: 0.02, JitterFrac: 0.1},
		StallTimeoutSec: 5,
		PollIntervalSec: 0.05,
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	s := &Supervisor{Plan: p, Driver: driver, Dir: t.TempDir(), Now: time.Now}
	rep, err := s.Run(context.Background())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rep.Tasks[0].Outcome != OutcomeOK {
		t.Errorf("good task: %+v", rep.Tasks[0])
	}
	doomed := rep.Tasks[1]
	if doomed.Outcome != OutcomeQuarantined {
		t.Fatalf("doomed task outcome = %s, want quarantined\n%s", doomed.Outcome, rep.Render())
	}
	if doomed.Diagnosis == nil {
		t.Fatal("doomed task has no diagnosis")
	}
	if doomed.Diagnosis.JournaledPoints == 0 || doomed.Diagnosis.LastFigure == "" {
		t.Errorf("diagnosis should locate the last journaled point, got %+v", doomed.Diagnosis)
	}
	res, err := rep.DeterministicResults(s)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(res, []byte(`{"task":"doomed","outcome":"quarantined"}`)) {
		t.Errorf("results missing the quarantine row:\n%s", res)
	}
	if !bytes.Contains(res, []byte(`{"task":"good","outcome":"ok"}`)) {
		t.Errorf("results missing the healthy row:\n%s", res)
	}
}
