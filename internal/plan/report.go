package plan

// The end-of-campaign report. Two artifacts with two contracts:
//
//   - Report (fleet.json, Render) carries the full operational story —
//     outcome, attempts, stalls, resume counts, wall time, quarantine
//     diagnoses. Its *rendering* is byte-deterministic in the data
//     (plan order, fixed formatting, no map iteration), but the data
//     itself legitimately differs between a disturbed and an
//     undisturbed campaign (a resumed task has more attempts).
//   - DeterministicResults (fleet-results.json) is the projection that
//     must be byte-identical between a sabotaged campaign that
//     recovered and its clean twin: per-task outcome plus the child's
//     own results.json bytes, which expdriver's resume contract
//     guarantees are byte-identical however often the task crashed.
//     CI's fleet-resume-gate diffs exactly this file.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// Diagnosis is the minimal triage attached to a quarantined task.
type Diagnosis struct {
	// ExitStatus describes how the final attempt died ("exit status 1",
	// "killed by signal", "stalled: no journal progress").
	ExitStatus string `json:"exit_status"`
	// JournaledPoints, LastFigure and LastIndex locate the last sweep
	// point that reached the task's journal before death.
	JournaledPoints int    `json:"journaled_points"`
	LastFigure      string `json:"last_figure,omitempty"`
	LastIndex       int    `json:"last_index,omitempty"`
	// StderrTail is the last few KB of the child's stderr.
	StderrTail string `json:"stderr_tail,omitempty"`
}

// TaskReport is one task's row in the campaign report.
type TaskReport struct {
	Name    string `json:"name"`
	Outcome string `json:"outcome"` // ok | quarantined | interrupted | skipped
	// Attempts counts launches (1 = succeeded first try). Stalls counts
	// attempts the supervisor killed for journal stagnation. Resumes
	// counts launches that started with -resume; ResumedPoints is how
	// many journaled sweep points the last resume replayed.
	Attempts      int `json:"attempts"`
	Stalls        int `json:"stalls,omitempty"`
	Resumes       int `json:"resumes,omitempty"`
	ResumedPoints int `json:"resumed_points,omitempty"`
	// ExitCode is the final attempt's (-1 for signal death).
	ExitCode    int        `json:"exit_code"`
	WallSeconds float64    `json:"wall_seconds"`
	Diagnosis   *Diagnosis `json:"diagnosis,omitempty"`
}

// Report is the aggregated campaign outcome, tasks in plan order.
type Report struct {
	Campaign string       `json:"campaign"`
	Seed     int64        `json:"seed"`
	Tasks    []TaskReport `json:"tasks"`
}

// Counts tallies outcomes.
func (r *Report) Counts() (ok, quarantined, interrupted, skipped int) {
	for _, t := range r.Tasks {
		switch t.Outcome {
		case OutcomeOK:
			ok++
		case OutcomeQuarantined:
			quarantined++
		case OutcomeInterrupted:
			interrupted++
		case OutcomeSkipped:
			skipped++
		}
	}
	return
}

// MarshalIndent renders the report as indented JSON with a trailing
// newline (the fleet.json artifact).
func (r *Report) MarshalIndent() ([]byte, error) {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// Render writes the human-readable campaign summary: one fixed-width
// row per task in plan order, then the outcome tally. Identical report
// data renders to identical bytes.
func (r *Report) Render() string {
	var b bytes.Buffer
	fmt.Fprintf(&b, "campaign %s (seed %d): %d tasks\n", r.Campaign, r.Seed, len(r.Tasks))
	fmt.Fprintf(&b, "%-24s %-12s %8s %7s %8s %8s %10s\n",
		"task", "outcome", "attempts", "stalls", "resumes", "points", "wall")
	for _, t := range r.Tasks {
		fmt.Fprintf(&b, "%-24s %-12s %8d %7d %8d %8d %9.1fs\n",
			t.Name, t.Outcome, t.Attempts, t.Stalls, t.Resumes, t.ResumedPoints, t.WallSeconds)
		if t.Diagnosis != nil {
			fmt.Fprintf(&b, "    quarantine: %s", t.Diagnosis.ExitStatus)
			if t.Diagnosis.LastFigure != "" {
				fmt.Fprintf(&b, "; last journaled point %s[%d] (%d points total)",
					t.Diagnosis.LastFigure, t.Diagnosis.LastIndex, t.Diagnosis.JournaledPoints)
			}
			b.WriteString("\n")
		}
	}
	ok, q, intr, skip := r.Counts()
	fmt.Fprintf(&b, "outcome: %d ok, %d quarantined, %d interrupted, %d skipped\n", ok, q, intr, skip)
	return b.String()
}

// DeterministicResults assembles the byte-stable aggregate: JSON lines
// with one {"task","outcome"} header per task in plan order, each "ok"
// task followed by the verbatim contents of its results.json. Attempts,
// timings and diagnoses are deliberately absent — a campaign that was
// killed, stalled and resumed must produce the same bytes as one that
// ran undisturbed.
func (r *Report) DeterministicResults(s *Supervisor) ([]byte, error) {
	var b bytes.Buffer
	fmt.Fprintf(&b, "{\"campaign\":%q,\"seed\":%d}\n", r.Campaign, r.Seed)
	for _, t := range r.Tasks {
		fmt.Fprintf(&b, "{\"task\":%q,\"outcome\":%q}\n", t.Name, t.Outcome)
		if t.Outcome != OutcomeOK {
			continue
		}
		data, err := os.ReadFile(filepath.Join(s.TaskDir(t.Name), "results.json"))
		if err != nil {
			return nil, fmt.Errorf("plan: task %s reported ok but has no results: %w", t.Name, err)
		}
		b.Write(data)
		if len(data) > 0 && data[len(data)-1] != '\n' {
			b.WriteByte('\n')
		}
	}
	return b.Bytes(), nil
}
