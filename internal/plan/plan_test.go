package plan

import (
	"errors"
	"strings"
	"testing"
	"time"
)

// validPlanJSON is a minimal plan that should parse and validate.
const validPlanJSON = `{
	"name": "smoke",
	"seed": 7,
	"tasks": [{"name": "a", "figures": ["fig7"]}]
}`

func TestParseValidPlanResolvesDefaults(t *testing.T) {
	p, err := Parse([]byte(validPlanJSON))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if p.MaxProcs != 2 {
		t.Errorf("MaxProcs default = %d, want 2", p.MaxProcs)
	}
	if p.Retry.MaxAttempts != 3 || p.Retry.BaseDelaySec != 0.5 || p.Retry.MaxDelaySec != 15 || p.Retry.JitterFrac != 0.2 {
		t.Errorf("Retry defaults = %+v", p.Retry)
	}
	if p.StallTimeoutSec != 120 || p.PollIntervalSec != 0.25 {
		t.Errorf("timeouts = %v / %v", p.StallTimeoutSec, p.PollIntervalSec)
	}
	if p.Tasks[0].Scale != ScaleQuick {
		t.Errorf("scale default = %q, want %q", p.Tasks[0].Scale, ScaleQuick)
	}
}

func TestParseRejectsUnknownField(t *testing.T) {
	_, err := Parse([]byte(`{"name":"x","tasks":[{"name":"a","figures":["fig7"]}],"retrys":{}}`))
	if !errors.Is(err, ErrInvalidPlan) {
		t.Fatalf("unknown field: err = %v, want ErrInvalidPlan", err)
	}
	if !strings.Contains(err.Error(), "retrys") {
		t.Errorf("error does not name the unknown field: %v", err)
	}
}

// rejects asserts the plan fails validation with a *ValidationError on
// the given field, wrapping ErrInvalidPlan.
func rejects(t *testing.T, p *Plan, field string) {
	t.Helper()
	err := p.Validate()
	if err == nil {
		t.Fatalf("Validate accepted a plan that should fail on %s", field)
	}
	if !errors.Is(err, ErrInvalidPlan) {
		t.Errorf("err = %v, want ErrInvalidPlan in chain", err)
	}
	var ve *ValidationError
	if !errors.As(err, &ve) {
		t.Fatalf("err = %T, want *ValidationError", err)
	}
	if ve.Field != field {
		t.Errorf("Field = %q, want %q (msg: %s)", ve.Field, field, ve.Msg)
	}
}

func basePlan() *Plan {
	return &Plan{Name: "p", Seed: 1, Tasks: []Task{{Name: "a", Figures: []string{"fig7"}}}}
}

func TestValidateRejections(t *testing.T) {
	p := basePlan()
	p.Name = "no/slashes"
	rejects(t, p, "name")

	p = basePlan()
	p.Tasks[0].Figures = []string{"fig99"}
	rejects(t, p, "tasks[0].figures")

	p = basePlan()
	p.Tasks[0].Scale = "medium"
	rejects(t, p, "tasks[0].scale")

	p = basePlan()
	p.Tasks = append(p.Tasks, Task{Name: "a", Figures: []string{"fig7"}})
	rejects(t, p, "tasks[1].name")

	p = basePlan()
	p.Tasks[0].Extra = []string{"-seed", "9"}
	rejects(t, p, "tasks[0].extra")

	p = basePlan()
	p.Tasks[0].Extra = []string{"-resume=/tmp/x"}
	rejects(t, p, "tasks[0].extra")

	p = basePlan()
	p.Sabotage = []Sabotage{{Kind: "melt-cpu", Task: "a"}}
	rejects(t, p, "sabotage[0].kind")

	p = basePlan()
	p.Sabotage = []Sabotage{{Kind: SabotageKill, Task: "ghost"}}
	rejects(t, p, "sabotage[0].task")

	p = basePlan()
	p.Retry = Retry{MaxAttempts: 1, BaseDelaySec: 5, MaxDelaySec: 1}
	rejects(t, p, "retry.max_delay_sec")

	p = basePlan()
	p.Tasks[0].Workers = -1
	rejects(t, p, "tasks[0].workers")
}

func TestUnknownFigureErrorListsValidNames(t *testing.T) {
	p := basePlan()
	p.Tasks[0].Figures = []string{"fig99"}
	err := p.Validate()
	if err == nil || !strings.Contains(err.Error(), "fig7") {
		t.Errorf("error should enumerate valid figures, got: %v", err)
	}
}

func TestMatrixExpansionDeterministic(t *testing.T) {
	p := &Plan{Name: "m", Seed: 3, Matrix: &Matrix{
		Figures: [][]string{{"fig7"}, {"fig8", "fig12"}},
		Seeds:   []int64{1, 2},
	}}
	if err := p.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if len(p.Tasks) != 4 {
		t.Fatalf("expanded %d tasks, want 4", len(p.Tasks))
	}
	wantNames := []string{
		"m0-fig7-quick-s1-w0", "m1-fig7-quick-s2-w0",
		"m2-fig8.fig12-quick-s1-w0", "m3-fig8.fig12-quick-s2-w0",
	}
	for i, w := range wantNames {
		if p.Tasks[i].Name != w {
			t.Errorf("task[%d] = %q, want %q", i, p.Tasks[i].Name, w)
		}
	}
	if p.Matrix != nil {
		t.Error("Matrix should be consumed by expansion")
	}
}

func TestBackoffDeterministicCappedAndGrowing(t *testing.T) {
	p := basePlan()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	p.Retry = Retry{MaxAttempts: 10, BaseDelaySec: 0.5, MaxDelaySec: 4, JitterFrac: 0.2}
	d2 := p.backoff("a", 2)
	if d2 != p.backoff("a", 2) {
		t.Error("backoff is not deterministic for identical inputs")
	}
	if d2 == p.backoff("b", 2) {
		t.Error("jitter should differ across task names")
	}
	// ±10% jitter around 0.5s for attempt 2.
	if d2 < time.Duration(0.45*float64(time.Second)) || d2 > time.Duration(0.55*float64(time.Second)) {
		t.Errorf("attempt-2 backoff = %v, want ~0.5s ±10%%", d2)
	}
	// Far attempts are capped at MaxDelay (plus jitter headroom).
	d9 := p.backoff("a", 9)
	if d9 > time.Duration(4*1.1*float64(time.Second)) {
		t.Errorf("attempt-9 backoff = %v, exceeds jittered cap", d9)
	}
	if d9 < time.Duration(4*0.9*float64(time.Second)) {
		t.Errorf("attempt-9 backoff = %v, below jittered cap floor", d9)
	}
}

func TestJitterURange(t *testing.T) {
	for attempt := 2; attempt < 200; attempt++ {
		u := jitterU(42, "task", attempt)
		if u < 0 || u >= 1 {
			t.Fatalf("jitterU out of [0,1): %v", u)
		}
	}
}

func TestCleanStripsSabotage(t *testing.T) {
	p := basePlan()
	p.Sabotage = []Sabotage{{Kind: SabotageKill, Task: "a", Attempt: 1}}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	c := p.Clean()
	if len(c.Sabotage) != 0 {
		t.Error("Clean left sabotage ops behind")
	}
	if len(p.Sabotage) != 1 {
		t.Error("Clean mutated the original plan")
	}
	if len(c.Tasks) != len(p.Tasks) {
		t.Error("Clean dropped tasks")
	}
}
