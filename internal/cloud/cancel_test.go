package cloud

import (
	"context"
	"errors"
	"sync"
	"testing"

	"netconstant/internal/cancel"
	"netconstant/internal/stats"
)

func cancelTestCluster(t *testing.T) *VirtualCluster {
	t.Helper()
	vc, err := NewProvider(ProviderConfig{Seed: 11}).Provision(8, 12)
	if err != nil {
		t.Fatal(err)
	}
	return vc
}

func TestCalibrateCtxCancelled(t *testing.T) {
	vc := cancelTestCluster(t)
	ctx, stop := context.WithCancel(context.Background())
	stop()
	cal, err := CalibrateCtx(ctx, vc, stats.NewRNG(1), CalibrationConfig{})
	if cal != nil {
		t.Error("cancelled calibration returned a partial trace")
	}
	if !errors.Is(err, cancel.ErrCanceled) || !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want typed cancellation", err)
	}

	// Sequential mode takes the per-pair path.
	cal, err = CalibrateCtx(ctx, vc, stats.NewRNG(1), CalibrationConfig{Sequential: true})
	if cal != nil || !errors.Is(err, cancel.ErrCanceled) {
		t.Errorf("sequential: cal=%v err=%v, want nil + typed cancellation", cal, err)
	}
}

func TestCalibrateTPCtxCancelled(t *testing.T) {
	vc := cancelTestCluster(t)
	ctx, stop := context.WithCancel(context.Background())
	stop()
	tc, err := CalibrateTPCtx(ctx, vc, stats.NewRNG(1), 3, 60, CalibrationConfig{})
	if tc != nil {
		t.Error("cancelled temporal calibration returned a partial trace")
	}
	var ce *cancel.Error
	if !errors.As(err, &ce) {
		t.Fatalf("err %T is not *cancel.Error", err)
	}
}

// TestCalibrateBackgroundUnchanged: the ctx-less wrappers must still
// return complete traces (byte-compatible with the pre-context code).
func TestCalibrateBackgroundUnchanged(t *testing.T) {
	vc := cancelTestCluster(t)
	cal := Calibrate(vc, stats.NewRNG(1), CalibrationConfig{})
	if cal == nil || cal.Rounds == 0 {
		t.Fatal("Calibrate returned no trace")
	}
	vc2 := cancelTestCluster(t)
	tc := CalibrateTP(vc2, stats.NewRNG(1), 2, 60, CalibrationConfig{})
	if tc == nil || len(tc.Steps) != 2 {
		t.Fatal("CalibrateTP returned no trace")
	}
}

// TestMemoWaiterCancellable: a waiter blocked on another request's
// in-flight computation must unblock with a typed cancellation when its
// own context ends, while the computation completes and is cached for
// later requests. Run under -race this also checks the memoCall
// publication ordering.
func TestMemoWaiterCancellable(t *testing.T) {
	m := NewCalibrationMemo(8)
	key := CalibrationKey{N: 4, ProvSeed: 1}

	computeStarted := make(chan struct{})
	computeRelease := make(chan struct{})
	var computeOnce sync.Once
	compute := func() (*TemporalCalibration, error) {
		computeOnce.Do(func() { close(computeStarted) })
		<-computeRelease
		vc, err := NewProvider(ProviderConfig{Seed: 5}).Provision(4, 6)
		if err != nil {
			return nil, err
		}
		return CalibrateTP(vc, stats.NewRNG(7), 2, 1, CalibrationConfig{}), nil
	}

	ownerDone := make(chan error, 1)
	go func() {
		_, err := m.GetOrComputeCtx(context.Background(), key, compute)
		ownerDone <- err
	}()
	<-computeStarted

	// The waiter joins the in-flight call, then its context is cancelled.
	waiterCtx, stopWaiter := context.WithCancel(context.Background())
	waiterDone := make(chan error, 1)
	go func() {
		_, err := m.GetOrComputeCtx(waiterCtx, key, compute)
		waiterDone <- err
	}()
	stopWaiter()
	werr := <-waiterDone
	if !errors.Is(werr, cancel.ErrCanceled) || !errors.Is(werr, context.Canceled) {
		t.Errorf("waiter err = %v, want typed cancellation", werr)
	}

	// Release the owner; its computation must finish and get cached.
	close(computeRelease)
	if err := <-ownerDone; err != nil {
		t.Fatalf("owner err: %v", err)
	}
	if got := m.Get(key); got == nil {
		t.Error("computation was not cached after waiter abandonment")
	}
}

// TestMemoSingleflightStillShared: concurrent same-key requests with
// live contexts still share one computation.
func TestMemoSingleflightStillShared(t *testing.T) {
	m := NewCalibrationMemo(8)
	key := CalibrationKey{N: 4, ProvSeed: 2}
	var wg sync.WaitGroup
	var mu sync.Mutex
	calls := 0
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := m.GetOrComputeCtx(context.Background(), key, func() (*TemporalCalibration, error) {
				mu.Lock()
				calls++
				mu.Unlock()
				vc, err := NewProvider(ProviderConfig{Seed: 5}).Provision(4, 6)
				if err != nil {
					return nil, err
				}
				return CalibrateTP(vc, stats.NewRNG(7), 1, 0, CalibrationConfig{}), nil
			})
			if err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if calls < 1 {
		t.Fatal("no computation ran")
	}
	// At most one computation can be in flight per key at a time; with
	// the cache populated after the first, late arrivals hit. Exactly-one
	// is not guaranteed only if a request raced in before the inflight
	// registration — impossible here because registration happens under
	// the same lock as the lookup.
	if calls != 1 {
		t.Errorf("computed %d times, want 1 (singleflight)", calls)
	}
}
