package cloud

import (
	"math/rand"

	"netconstant/internal/netmodel"
	"netconstant/internal/simnet"
	"netconstant/internal/stats"
	"netconstant/internal/topo"
)

// SimCluster is a virtual cluster whose network performance comes from the
// flow-level simulator instead of the synthetic closed-form model: pair
// measurements run actual probe flows that contend with Poisson background
// traffic on a simulated data-center topology. It is the substrate of the
// paper's ns-2 experiments (§V-E).
type SimCluster struct {
	Sim   *simnet.Sim
	Hosts []int // server node per VM
	rng   *rand.Rand

	backgrounds []*simnet.Background
	bulkBytes   float64
}

// SimClusterConfig parameterizes NewSimCluster.
type SimClusterConfig struct {
	Tree topo.TreeConfig
	// Topo, when non-nil, is used instead of building a tree from Tree —
	// e.g. a Clos or fat-tree fabric from the topo builders. Multi-path
	// fabrics are fine: the simulator routes with deterministic ECMP.
	Topo *topo.Topology
	// Alloc selects the simulator's bandwidth-sharing backend;
	// simnet.AllocDefault keeps the incremental max-min default.
	Alloc simnet.AllocatorKind
	// VMs is the number of cluster members, placed on distinct servers
	// chosen uniformly at random.
	VMs  int
	Seed int64
	// Background traffic (paper §V-A): BgLinks random machine pairs, each
	// repeatedly sending BgBytes after an exponential wait with mean
	// BgLambda seconds.
	BgLinks  int
	BgBytes  float64
	BgLambda float64
	// HotRacks, when positive, confines background sources to cross-rack
	// pairs within the first HotRacks racks. This concentrates persistent
	// congestion on a subset of uplinks — the stable interference pattern
	// that makes some virtual-cluster links durably slower than others
	// (the constant component RPCA recovers in the §V-E simulations).
	// Zero scatters sources uniformly.
	HotRacks int
	// ProbeBulk is the bandwidth-probe size (default 8 MB).
	ProbeBulk float64
}

// NewSimCluster builds the simulated cluster with its background traffic
// already running.
func NewSimCluster(cfg SimClusterConfig) *SimCluster {
	t := cfg.Topo
	if t == nil {
		t = topo.NewTree(cfg.Tree)
	}
	s := simnet.New(t)
	s.SetAllocator(cfg.Alloc)
	rng := stats.NewRNG(cfg.Seed)
	servers := t.Servers()
	if cfg.VMs <= 0 || cfg.VMs > len(servers) {
		panic("cloud: SimCluster VM count out of range")
	}
	if cfg.ProbeBulk == 0 {
		cfg.ProbeBulk = 8 << 20
	}
	hostIdx := stats.SampleWithoutReplacement(rng, len(servers), cfg.VMs)
	hosts := make([]int, cfg.VMs)
	for i, k := range hostIdx {
		hosts[i] = servers[k]
	}
	sc := &SimCluster{Sim: s, Hosts: hosts, rng: rng, bulkBytes: cfg.ProbeBulk}

	// Install background sources on random server pairs (possibly
	// including cluster members' hosts — interference is the point). With
	// HotRacks set, sources are cross-rack pairs inside the hot-rack
	// subset so their uplinks stay durably congested.
	pool := servers
	if cfg.HotRacks > 0 {
		pool = pool[:0:0]
		for _, srv := range servers {
			if t.Node(srv).Rack < cfg.HotRacks {
				pool = append(pool, srv)
			}
		}
	}
	wantCrossRack := cfg.HotRacks > 1
	for k := 0; k < cfg.BgLinks && len(pool) > 1; k++ {
		var a, b int
		for attempt := 0; ; attempt++ {
			a = pool[rng.Intn(len(pool))]
			b = pool[rng.Intn(len(pool))]
			if a != b && (!wantCrossRack || t.Node(a).Rack != t.Node(b).Rack || attempt > 32) {
				break
			}
		}
		bg := s.AddBackground(stats.Split(rng, int64(k)), a, b, cfg.BgBytes, cfg.BgLambda)
		sc.backgrounds = append(sc.backgrounds, bg)
	}
	return sc
}

// Size returns the number of VMs.
func (sc *SimCluster) Size() int { return len(sc.Hosts) }

// Now returns the simulator clock.
func (sc *SimCluster) Now() float64 { return sc.Sim.Now() }

// AdvanceTime runs the simulator forward by dt seconds (background flows
// progress meanwhile).
func (sc *SimCluster) AdvanceTime(dt float64) {
	if dt < 0 {
		panic("cloud: negative time advance")
	}
	sc.Sim.Eng.RunUntil(sc.Sim.Now() + dt)
}

// PairPerf measures the directed pair by running probe flows through the
// simulator — an actual measurement, so it advances simulated time and
// experiences whatever contention exists right now.
func (sc *SimCluster) PairPerf(i, j int) netmodel.Link {
	alpha, beta := sc.Sim.Pingpong(sc.Hosts[i], sc.Hosts[j], sc.bulkBytes)
	return netmodel.Link{Alpha: alpha, Beta: beta}
}

// StopBackground halts all background sources (e.g. to drain the
// simulation at the end of an experiment).
func (sc *SimCluster) StopBackground() {
	for _, b := range sc.backgrounds {
		b.Stop()
	}
}

// Transfer runs one data transfer between two VMs through the simulator
// and returns its elapsed time — the execution primitive used when
// collectives run on the simulated cluster.
func (sc *SimCluster) Transfer(i, j int, bytes float64) float64 {
	return sc.Sim.Transfer(sc.Hosts[i], sc.Hosts[j], bytes)
}

// CalibratePaired performs one all-link calibration on the simulated
// cluster using the paper's paired schedule with *genuinely concurrent*
// probes: in every round, ⌊N/2⌋ disjoint pairs run their bulk transfers
// simultaneously on the simulator, so probe flows contend with each other
// and with background traffic exactly as the paper's concern about
// "interference of concurrent message transfers" describes (§IV-B). It
// returns the measured performance matrix and the simulated time consumed.
func (sc *SimCluster) CalibratePaired() (*netmodel.PerfMatrix, float64) {
	n := sc.Size()
	perf := netmodel.NewPerfMatrix(n)
	start := sc.Now()
	for _, round := range PairSchedule(n) {
		// Latency probes: 1-byte flows, all pairs at once.
		alphas := make([]float64, len(round))
		pending := 0
		for k, pr := range round {
			k, pr := k, pr
			pending++
			probeStart := sc.Now()
			sc.Sim.StartFlow(sc.Hosts[pr[0]], sc.Hosts[pr[1]], 1, func(at float64) {
				alphas[k] = at - probeStart
				pending--
			})
		}
		for pending > 0 {
			if !sc.Sim.Eng.Step() {
				panic("cloud: simulator drained during paired calibration")
			}
		}
		// Bandwidth probes: bulk flows, all pairs at once.
		pending = 0
		for k, pr := range round {
			k, pr := k, pr
			pending++
			probeStart := sc.Now()
			sc.Sim.StartFlow(sc.Hosts[pr[0]], sc.Hosts[pr[1]], sc.bulkBytes, func(at float64) {
				elapsed := at - probeStart
				data := elapsed - alphas[k]
				if data <= 0 {
					data = elapsed
				}
				perf.SetLink(pr[0], pr[1], netmodel.Link{Alpha: alphas[k], Beta: sc.bulkBytes / data})
				pending--
			})
		}
		for pending > 0 {
			if !sc.Sim.Eng.Step() {
				panic("cloud: simulator drained during paired calibration")
			}
		}
	}
	return perf, sc.Now() - start
}
