package cloud

import (
	"context"
	"errors"
	"sync"
	"testing"

	"netconstant/internal/stats"
	"netconstant/internal/topo"
)

func memoKey(n int, seed int64) CalibrationKey {
	return CalibrationKey{
		Provider: ProviderConfig{Tree: topo.TreeConfig{Racks: 4, ServersPerRack: 4}, Seed: seed},
		N:        n, ProvSeed: seed + 1, RNGSeed: seed + 2, Steps: 3, Gap: 5,
	}
}

func measureFor(t *testing.T, key CalibrationKey) *TemporalCalibration {
	t.Helper()
	p := NewProvider(key.Provider)
	vc, err := p.Provision(key.N, key.ProvSeed)
	if err != nil {
		t.Fatal(err)
	}
	return CalibrateTP(vc, stats.NewRNG(key.RNGSeed), key.Steps, key.Gap, key.Cal)
}

// TestMemoHitReturnsEqualTrace: a hit replays the same trace (equal
// matrices and cost) through an independent deep copy.
func TestMemoHitReturnsEqualTrace(t *testing.T) {
	m := NewCalibrationMemo(4)
	key := memoKey(6, 100)
	computes := 0
	compute := func() (*TemporalCalibration, error) {
		computes++
		return measureFor(t, key), nil
	}
	a, err := m.GetOrCompute(key, compute)
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.GetOrCompute(key, compute)
	if err != nil {
		t.Fatal(err)
	}
	if computes != 1 {
		t.Fatalf("computed %d times, want 1", computes)
	}
	if a == b || a.Bandwidth == b.Bandwidth {
		t.Fatal("hits must return independent clones")
	}
	if a.TotalCost != b.TotalCost {
		t.Fatalf("costs differ: %v vs %v", a.TotalCost, b.TotalCost)
	}
	am, bm := a.Bandwidth.Matrix(), b.Bandwidth.Matrix()
	for i := 0; i < am.Rows(); i++ {
		for j := 0; j < am.Cols(); j++ {
			if am.At(i, j) != bm.At(i, j) {
				t.Fatalf("bandwidth differs at (%d,%d)", i, j)
			}
		}
	}
	// Mutating one clone must not leak into the cache.
	b.Bandwidth.Matrix().Set(0, 1, -1)
	c := m.Get(key)
	if c.Bandwidth.Matrix().At(0, 1) == -1 {
		t.Fatal("clone mutation leaked into the cached trace")
	}
	st := m.Stats()
	if st.Hits < 2 || st.Misses != 1 || st.Entries != 1 {
		t.Fatalf("stats %+v", st)
	}
}

// TestMemoConcurrentSingleFlight: concurrent requests for one key share a
// single computation.
func TestMemoConcurrentSingleFlight(t *testing.T) {
	m := NewCalibrationMemo(4)
	key := memoKey(6, 200)
	var mu sync.Mutex
	computes := 0
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := m.GetOrCompute(key, func() (*TemporalCalibration, error) {
				mu.Lock()
				computes++
				mu.Unlock()
				return measureFor(t, key), nil
			})
			if err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if computes != 1 {
		t.Fatalf("computed %d times under concurrency, want 1", computes)
	}
}

// TestMemoInvalidate: invalidation forces a fresh computation; errors are
// not cached.
func TestMemoInvalidate(t *testing.T) {
	m := NewCalibrationMemo(4)
	key := memoKey(6, 300)
	computes := 0
	compute := func() (*TemporalCalibration, error) {
		computes++
		return measureFor(t, key), nil
	}
	if _, err := m.GetOrCompute(key, compute); err != nil {
		t.Fatal(err)
	}
	if !m.Invalidate(key) {
		t.Fatal("Invalidate should report an existing entry")
	}
	if m.Invalidate(key) {
		t.Fatal("second Invalidate should find nothing")
	}
	if _, err := m.GetOrCompute(key, compute); err != nil {
		t.Fatal(err)
	}
	if computes != 2 {
		t.Fatalf("computed %d times, want 2 after invalidation", computes)
	}

	boom := errors.New("probe storm")
	k2 := memoKey(6, 301)
	if _, err := m.GetOrCompute(k2, func() (*TemporalCalibration, error) { return nil, boom }); !errors.Is(err, boom) {
		t.Fatalf("got %v, want compute error", err)
	}
	if _, err := m.GetOrCompute(k2, compute); err != nil {
		t.Fatalf("error must not be cached: %v", err)
	}

	m.InvalidateAll()
	if st := m.Stats(); st.Entries != 0 {
		t.Fatalf("entries after InvalidateAll: %d", st.Entries)
	}
}

// TestMemoLRUBound: the memo never holds more than its capacity and
// evicts least-recently-used keys first.
func TestMemoLRUBound(t *testing.T) {
	m := NewCalibrationMemo(2)
	tc := measureFor(t, memoKey(4, 400))
	k1, k2, k3 := memoKey(4, 401), memoKey(4, 402), memoKey(4, 403)
	m.Put(k1, tc)
	m.Put(k2, tc)
	if m.Get(k1) == nil { // touch k1 so k2 is the LRU
		t.Fatal("k1 missing")
	}
	m.Put(k3, tc)
	if st := m.Stats(); st.Entries != 2 {
		t.Fatalf("entries %d, want 2", st.Entries)
	}
	if m.Get(k2) != nil {
		t.Fatal("k2 should have been evicted as LRU")
	}
	if m.Get(k1) == nil || m.Get(k3) == nil {
		t.Fatal("k1 and k3 should survive")
	}
}

// TestTemporalCalibrationClone covers the deep copy itself, including the
// resilient-mode mask and per-step calibrations.
func TestTemporalCalibrationClone(t *testing.T) {
	key := memoKey(6, 500)
	key.Cal = CalibrationConfig{Resilient: true, DropProb: 0.3}
	tc := measureFor(t, key)
	if tc.Mask == nil {
		t.Fatal("resilient calibration should carry a mask")
	}
	cl := tc.Clone()
	if cl.Mask == tc.Mask || cl.Latency == tc.Latency || cl.Steps[0] == tc.Steps[0] || cl.Steps[0].Perf == tc.Steps[0].Perf {
		t.Fatal("clone shares state")
	}
	if cl.TotalCost != tc.TotalCost || len(cl.Steps) != len(tc.Steps) {
		t.Fatal("clone differs")
	}
	cl.Mask.Set(0, 0, 99)
	if tc.Mask.At(0, 0) == 99 {
		t.Fatal("mask mutation leaked")
	}
}

// TestMemoInvalidateDropsInflightInsert is the regression test for the
// invalidate-vs-inflight race: a computation that started before an
// Invalidate must not populate the cache when it finishes after it — the
// post-fault request would replay the pre-fault trace.
func TestMemoInvalidateDropsInflightInsert(t *testing.T) {
	m := NewCalibrationMemo(4)
	key := memoKey(6, 200)
	pre := measureFor(t, key)

	started := make(chan struct{})
	release := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		tc, err := m.GetOrCompute(key, func() (*TemporalCalibration, error) {
			close(started)
			<-release // hold the computation while Invalidate lands
			return pre, nil
		})
		if err != nil || tc == nil {
			t.Errorf("computing request: tc=%v err=%v", tc, err)
		}
	}()
	<-started
	m.Invalidate(key)
	close(release)
	<-done

	if got := m.Get(key); got != nil {
		t.Fatal("pre-invalidation compute repopulated the cache")
	}
}

// TestMemoInvalidateAllDropsInflightInsert: same fence through the global
// invalidation.
func TestMemoInvalidateAllDropsInflightInsert(t *testing.T) {
	m := NewCalibrationMemo(4)
	key := memoKey(6, 210)
	pre := measureFor(t, key)

	started := make(chan struct{})
	release := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		if _, err := m.GetOrCompute(key, func() (*TemporalCalibration, error) {
			close(started)
			<-release
			return pre, nil
		}); err != nil {
			t.Error(err)
		}
	}()
	<-started
	m.InvalidateAll()
	close(release)
	<-done

	if got := m.Get(key); got != nil {
		t.Fatal("pre-InvalidateAll compute repopulated the cache")
	}
}

// TestMemoInvalidateDetachesInflight: a request arriving after an
// Invalidate must start a fresh computation instead of joining (and
// receiving the result of) the stale in-flight one, and the fresh result
// is the one that ends up cached.
func TestMemoInvalidateDetachesInflight(t *testing.T) {
	m := NewCalibrationMemo(4)
	key := memoKey(6, 220)
	pre := measureFor(t, key)
	post := measureFor(t, key)
	post.TotalCost = pre.TotalCost + 1000 // distinguishable post-fault trace

	started := make(chan struct{})
	release := make(chan struct{})
	staleDone := make(chan struct{})
	go func() {
		defer close(staleDone)
		if _, err := m.GetOrCompute(key, func() (*TemporalCalibration, error) {
			close(started)
			<-release
			return pre, nil
		}); err != nil {
			t.Error(err)
		}
	}()
	<-started
	m.Invalidate(key)

	freshRan := false
	got, err := m.GetOrCompute(key, func() (*TemporalCalibration, error) {
		freshRan = true
		return post, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !freshRan {
		t.Fatal("post-invalidation request joined the stale in-flight computation")
	}
	if got.TotalCost != post.TotalCost {
		t.Fatalf("post-invalidation request got cost %v, want the fresh trace's %v", got.TotalCost, post.TotalCost)
	}
	close(release)
	<-staleDone

	cached := m.Get(key)
	if cached == nil {
		t.Fatal("fresh trace not cached")
	}
	if cached.TotalCost != post.TotalCost {
		t.Fatalf("cache holds cost %v, want the post-fault %v — stale insert won", cached.TotalCost, post.TotalCost)
	}
}

// TestMemoInvalidateRaceStress hammers GetOrCompute against Invalidate
// under the race detector: after every invalidation the cache must never
// serve a trace computed before it (cost stamps are monotonic per round).
func TestMemoInvalidateRaceStress(t *testing.T) {
	m := NewCalibrationMemo(8)
	key := memoKey(6, 230)
	base := measureFor(t, key)

	var mu sync.Mutex
	round := 0

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				tc, err := m.GetOrCompute(key, func() (*TemporalCalibration, error) {
					mu.Lock()
					r := round
					mu.Unlock()
					c := base.Clone()
					c.TotalCost = float64(r)
					return c, nil
				})
				if err != nil || tc == nil {
					t.Errorf("GetOrCompute: %v", err)
					return
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 25; i++ {
			mu.Lock()
			round++
			mu.Unlock()
			m.Invalidate(key)
		}
	}()
	wg.Wait()

	// After the dust settles the cached round stamp must be from after the
	// final invalidation (or the key absent entirely).
	mu.Lock()
	final := round
	mu.Unlock()
	if tc := m.Get(key); tc != nil && int(tc.TotalCost) < final {
		// A cached trace older than the last invalidation is exactly the
		// replay hazard the generation stamps exist to prevent. (Equal is
		// fine: a compute that started after the final Invalidate.)
		t.Fatalf("cache serves round %d, last invalidation was %d", int(tc.TotalCost), final)
	}
}

// TestMemoOwnerFairness is the cross-tenant fairness regression: under a
// shared memo, a hot tenant's burst must evict the hot tenant's own older
// traces, never a cold tenant's lone entry.
func TestMemoOwnerFairness(t *testing.T) {
	m := NewCalibrationMemo(4)
	tc := measureFor(t, memoKey(4, 500))

	coldKey := memoKey(4, 501)
	coldComputes := 0
	if _, err := m.GetOrComputeOwned(context.Background(), "cold", coldKey, func() (*TemporalCalibration, error) {
		coldComputes++
		return tc.Clone(), nil
	}); err != nil {
		t.Fatal(err)
	}

	// The hot tenant bursts well past the whole capacity.
	for i := 0; i < 10; i++ {
		key := memoKey(4, 600+int64(i))
		if _, err := m.GetOrComputeOwned(context.Background(), "hot", key, func() (*TemporalCalibration, error) {
			return tc.Clone(), nil
		}); err != nil {
			t.Fatal(err)
		}
		if st := m.Stats(); st.Entries > 4 {
			t.Fatalf("burst step %d: %d entries exceed capacity 4", i, st.Entries)
		}
	}

	// The cold tenant's entry must still be a hit.
	if _, err := m.GetOrComputeOwned(context.Background(), "cold", coldKey, func() (*TemporalCalibration, error) {
		coldComputes++
		return tc.Clone(), nil
	}); err != nil {
		t.Fatal(err)
	}
	if coldComputes != 1 {
		t.Fatalf("cold tenant recomputed %d times — its entry was evicted by the hot burst", coldComputes)
	}

	// And the hot tenant still retains the most recent traces it can hold.
	if m.Get(memoKey(4, 609)) == nil {
		t.Fatal("hot tenant's most recent trace should survive its own burst")
	}
}
