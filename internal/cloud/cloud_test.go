package cloud

import (
	"bytes"
	"math"
	"testing"

	"netconstant/internal/netmodel"
	"netconstant/internal/stats"
	"netconstant/internal/topo"
)

// smallProvider builds a compact data center for tests.
func smallProvider(seed int64) *Provider {
	return NewProvider(ProviderConfig{
		Tree: topo.TreeConfig{Racks: 4, ServersPerRack: 4},
		Seed: seed,
	})
}

func TestProvisionPlacement(t *testing.T) {
	p := smallProvider(1)
	vc, err := p.Provision(8, 42)
	if err != nil {
		t.Fatal(err)
	}
	if vc.Size() != 8 {
		t.Fatal("size")
	}
	for _, h := range vc.Hosts {
		if p.Topo.Node(h).Kind != topo.Server {
			t.Error("VM on non-server node")
		}
	}
	if vc.RackSpread() < 1 || vc.RackSpread() > 4 {
		t.Errorf("rack spread %d", vc.RackSpread())
	}
}

func TestProvisionErrors(t *testing.T) {
	p := smallProvider(2)
	if _, err := p.Provision(0, 1); err == nil {
		t.Error("zero size should error")
	}
	// Capacity: 16 servers × 8 slots = 128.
	if _, err := p.Provision(129, 1); err == nil {
		t.Error("over capacity should error")
	}
	vc, err := p.Provision(128, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Provision(1, 2); err == nil {
		t.Error("full provider should reject")
	}
	p.Release(vc)
	if _, err := p.Provision(1, 3); err != nil {
		t.Errorf("release should free capacity: %v", err)
	}
}

func TestGroundTruthStableWithoutDynamics(t *testing.T) {
	p := smallProvider(3)
	vc, _ := p.Provision(6, 7)
	vc.SetFreezeDynamics(true)
	l1 := vc.PairPerf(0, 1)
	vc.AdvanceTime(3600)
	l2 := vc.PairPerf(0, 1)
	if l1 != l2 {
		t.Error("frozen dynamics should be constant")
	}
	if l1.Beta <= 0 || l1.Alpha <= 0 {
		t.Error("nonpositive performance")
	}
}

func TestPairPerfSelfLoop(t *testing.T) {
	p := smallProvider(4)
	vc, _ := p.Provision(4, 1)
	l := vc.PairPerf(2, 2)
	if l.Alpha != 0 || !math.IsInf(l.Beta, 1) {
		t.Error("self loop should be free")
	}
}

func TestVolatilityBand(t *testing.T) {
	p := smallProvider(5)
	vc, _ := p.Provision(4, 9)
	truth := vc.TruePerf().Link(0, 1)
	// Sample many measurements; most should lie near the truth, a few may
	// spike.
	within := 0
	total := 500
	for k := 0; k < total; k++ {
		l := vc.PairPerf(0, 1)
		if l.Beta > truth.Beta*0.85 && l.Beta < truth.Beta*1.15 {
			within++
		}
	}
	frac := float64(within) / float64(total)
	if frac < 0.75 {
		t.Errorf("volatility band too wide: only %.2f within ±15%%", frac)
	}
	if frac == 1 {
		t.Error("expected at least one spike among 500 draws")
	}
}

func TestMigrationChangesGroundTruth(t *testing.T) {
	p := NewProvider(ProviderConfig{
		Tree:          topo.TreeConfig{Racks: 4, ServersPerRack: 4},
		Seed:          6,
		MigrationRate: 1000, // force migrations quickly
	})
	vc, _ := p.Provision(6, 11)
	migrated := 0
	vc.OnMigration(func(vm int) { migrated++ })
	before := vc.TruePerf()
	for k := 0; k < 200 && vc.Migrations() == 0; k++ {
		vc.AdvanceTime(3600)
	}
	if vc.Migrations() == 0 {
		t.Fatal("no migration occurred at extreme rate")
	}
	if migrated != vc.Migrations() {
		t.Error("hook count mismatch")
	}
	after := vc.TruePerf()
	if before.Bandwth.ApproxEqual(after.Bandwth, 1e-12) {
		t.Error("migration should change ground truth")
	}
}

func TestAdvanceTimeNegativePanics(t *testing.T) {
	p := smallProvider(7)
	vc, _ := p.Provision(2, 1)
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	vc.AdvanceTime(-1)
}

func TestPairSchedule(t *testing.T) {
	for _, n := range []int{2, 3, 4, 5, 8, 9} {
		rounds := PairSchedule(n)
		seen := map[[2]int]bool{}
		for _, round := range rounds {
			inRound := map[int]bool{}
			for _, pr := range round {
				if pr[0] == pr[1] {
					t.Fatalf("n=%d: self pair", n)
				}
				if seen[pr] {
					t.Fatalf("n=%d: duplicate pair %v", n, pr)
				}
				seen[pr] = true
				if inRound[pr[0]] || inRound[pr[1]] {
					t.Fatalf("n=%d: machine used twice in one round", n)
				}
				inRound[pr[0]] = true
				inRound[pr[1]] = true
			}
		}
		if len(seen) != n*(n-1) {
			t.Errorf("n=%d: covered %d ordered pairs, want %d", n, len(seen), n*(n-1))
		}
		// Round count ≈ 2(N-1) for even N (the paper's "2×N" overhead).
		if n%2 == 0 && len(rounds) != 2*(n-1) {
			t.Errorf("n=%d: %d rounds, want %d", n, len(rounds), 2*(n-1))
		}
	}
	if PairSchedule(1) != nil {
		t.Error("n=1 should have no schedule")
	}
}

func TestCalibrateCoversAllPairs(t *testing.T) {
	p := smallProvider(8)
	vc, _ := p.Provision(6, 13)
	rng := stats.NewRNG(99)
	cal := Calibrate(vc, rng, CalibrationConfig{})
	for i := 0; i < 6; i++ {
		for j := 0; j < 6; j++ {
			if i == j {
				continue
			}
			if cal.Perf.Link(i, j).Beta <= 0 {
				t.Fatalf("pair (%d,%d) not measured", i, j)
			}
		}
	}
	if cal.Cost <= 0 || cal.Rounds != 10 {
		t.Errorf("cost %v rounds %d", cal.Cost, cal.Rounds)
	}
}

func TestCalibrateSequentialCostsMore(t *testing.T) {
	p := smallProvider(9)
	vc1, _ := p.Provision(6, 17)
	vc2, _ := p.Provision(6, 17)
	rng := stats.NewRNG(1)
	paired := Calibrate(vc1, rng, CalibrationConfig{})
	seq := Calibrate(vc2, rng, CalibrationConfig{Sequential: true})
	if seq.Cost <= paired.Cost {
		t.Errorf("sequential %v should cost more than paired %v", seq.Cost, paired.Cost)
	}
	if seq.Rounds != 30 {
		t.Errorf("sequential rounds %d", seq.Rounds)
	}
}

func TestCalibrationCostScalesLinearly(t *testing.T) {
	// The Fig 4 shape: cost grows ~linearly in N for the paired schedule.
	typical := netmodel.Link{Alpha: 300e-6, Beta: 100e6}
	c64 := EstimateCalibrationCost(64, typical, CalibrationConfig{})
	c196 := EstimateCalibrationCost(196, typical, CalibrationConfig{})
	ratio := c196 / c64
	want := float64(2*195) / float64(2*63)
	if math.Abs(ratio-want) > 0.01 {
		t.Errorf("cost ratio %v want %v", ratio, want)
	}
	// Magnitudes from the paper (Fig 4 covers one TP-matrix = time step 10
	// calibrations): < 4 min at 64, ~10 min at 196.
	if 10*c64 > 4*60 {
		t.Errorf("64-VM TP calibration %v s, paper says < 4 min", 10*c64)
	}
	if tp196 := 10 * c196; tp196 < 5*60 || tp196 > 15*60 {
		t.Errorf("196-VM TP calibration %v s, paper says ~10 min", tp196)
	}
}

func TestCalibrateTP(t *testing.T) {
	p := smallProvider(10)
	vc, _ := p.Provision(5, 19)
	rng := stats.NewRNG(2)
	tc := CalibrateTP(vc, rng, 4, 60, CalibrationConfig{})
	if tc.Latency.Steps() != 4 || tc.Bandwidth.Steps() != 4 {
		t.Fatal("TP steps")
	}
	if tc.TotalCost <= 0 {
		t.Error("cost")
	}
	// Times strictly increasing.
	for k := 1; k < 4; k++ {
		if tc.Latency.Times[k] <= tc.Latency.Times[k-1] {
			t.Error("TP times not increasing")
		}
	}
	// Default step count.
	vc2, _ := p.Provision(3, 23)
	tc2 := CalibrateTP(vc2, rng, 0, 0, CalibrationConfig{})
	if tc2.Latency.Steps() != 10 {
		t.Errorf("default steps %d", tc2.Latency.Steps())
	}
}

func TestSnapshotTP(t *testing.T) {
	p := smallProvider(11)
	vc, _ := p.Provision(4, 29)
	tc := SnapshotTP(vc, 3, 10)
	if tc.Bandwidth.Steps() != 3 {
		t.Fatal("snapshot steps")
	}
	if tc.TotalCost != 0 {
		t.Error("snapshots are free")
	}
}

func TestTraceRecordReplay(t *testing.T) {
	p := smallProvider(12)
	vc, _ := p.Provision(4, 31)
	tr := Record(vc, 100, 25)
	if tr.Len() != 5 {
		t.Fatalf("trace length %d", tr.Len())
	}
	rc := NewReplay(tr)
	if rc.Size() != 4 {
		t.Fatal("replay size")
	}
	first := rc.PairPerf(0, 1)
	if first != tr.Perfs[0].Link(0, 1) {
		t.Error("replay should serve snapshot 0 at start")
	}
	rc.AdvanceTime(60)
	got := rc.PairPerf(0, 1)
	if got != tr.Perfs[2].Link(0, 1) {
		t.Error("replay should advance to snapshot at t=50")
	}
	rc.Seek(tr.Times[0])
	if rc.PairPerf(0, 1) != tr.Perfs[0].Link(0, 1) {
		t.Error("seek back")
	}
	if rc.Snapshot() != tr.Perfs[0] {
		t.Error("snapshot accessor")
	}
}

func TestTraceEncodeDecode(t *testing.T) {
	p := smallProvider(13)
	vc, _ := p.Provision(3, 37)
	tr := Record(vc, 50, 25)
	var buf bytes.Buffer
	if err := tr.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := DecodeTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != tr.Len() || back.N != tr.N {
		t.Fatal("shape")
	}
	for k := 0; k < tr.Len(); k++ {
		if !back.Perfs[k].Bandwth.ApproxEqual(tr.Perfs[k].Bandwth, 0) {
			t.Fatal("bandwidth content")
		}
		if !back.Perfs[k].Latency.ApproxEqual(tr.Perfs[k].Latency, 0) {
			t.Fatal("latency content")
		}
	}
}

func TestTraceInjectNoise(t *testing.T) {
	p := smallProvider(14)
	vc, _ := p.Provision(3, 41)
	tr := Record(vc, 50, 25)
	before := tr.Perfs[0].Bandwth.Clone()
	rng := stats.NewRNG(5)
	tr.InjectNoise(rng, 5, 0.2, 2)
	if before.ApproxEqual(tr.Perfs[0].Bandwth, 1e-12) {
		t.Error("noise should perturb the trace")
	}
}

func TestReplayPanics(t *testing.T) {
	mustPanic(t, func() { NewReplay(&Trace{}) })
	p := smallProvider(15)
	vc, _ := p.Provision(2, 43)
	tr := Record(vc, 10, 5)
	rc := NewReplay(tr)
	mustPanic(t, func() { rc.AdvanceTime(-1) })
	mustPanic(t, func() { Record(vc, 10, 0) })
}

func mustPanic(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	f()
}

func TestSimClusterMeasurement(t *testing.T) {
	sc := NewSimCluster(SimClusterConfig{
		Tree:     topo.TreeConfig{Racks: 4, ServersPerRack: 4, IntraRackBps: 100e6, InterRackBps: 1e9, HopLatency: 50e-6},
		VMs:      6,
		Seed:     3,
		BgLinks:  4,
		BgBytes:  1 << 20,
		BgLambda: 0.5,
		// Use a modest probe so the test is fast.
		ProbeBulk: 1 << 20,
	})
	defer sc.StopBackground()
	if sc.Size() != 6 {
		t.Fatal("size")
	}
	l := sc.PairPerf(0, 1)
	if l.Alpha <= 0 || l.Beta <= 0 {
		t.Errorf("bad measurement %+v", l)
	}
	// Bandwidth cannot exceed the fastest link.
	if l.Beta > 1e9 {
		t.Errorf("impossible bandwidth %v", l.Beta)
	}
	before := sc.Now()
	sc.AdvanceTime(1)
	if sc.Now() < before+1 {
		t.Error("advance time")
	}
	if el := sc.Transfer(0, 1, 1000); el <= 0 {
		t.Error("transfer elapsed")
	}
	mustPanic(t, func() { sc.AdvanceTime(-1) })
	mustPanic(t, func() {
		NewSimCluster(SimClusterConfig{Tree: topo.TreeConfig{Racks: 1, ServersPerRack: 2}, VMs: 99})
	})
}

func TestSameRackFasterThanCrossRack(t *testing.T) {
	// Placement heterogeneity: same-rack pairs should usually beat
	// cross-rack pairs in ground truth — this is what link selection
	// exploits.
	p := smallProvider(16)
	vc, _ := p.Provision(16, 47)
	vc.SetFreezeDynamics(true)
	var sameSum, crossSum float64
	var sameN, crossN int
	for i := 0; i < 16; i++ {
		for j := 0; j < 16; j++ {
			if i == j {
				continue
			}
			bw := vc.TruePerf().Link(i, j).Beta
			if p.Topo.SameRack(vc.Hosts[i], vc.Hosts[j]) {
				sameSum += bw
				sameN++
			} else {
				crossSum += bw
				crossN++
			}
		}
	}
	if sameN == 0 || crossN == 0 {
		t.Skip("degenerate placement")
	}
	if sameSum/float64(sameN) <= crossSum/float64(crossN) {
		t.Error("same-rack pairs should be faster on average")
	}
}

func TestRepairPerfMatrix(t *testing.T) {
	pm := netmodel.NewPerfMatrix(3)
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if i != j {
				pm.SetLink(i, j, netmodel.Link{Alpha: 1e-3, Beta: 1e6})
			}
		}
	}
	// Break one direction: reverse should be borrowed.
	pm.SetLink(0, 1, netmodel.Link{})
	// Break both directions of another pair: column median should fill.
	pm.SetLink(0, 2, netmodel.Link{})
	pm.SetLink(2, 0, netmodel.Link{})
	n := pm.Repair()
	if n == 0 {
		t.Fatal("nothing repaired")
	}
	if pm.Link(0, 1).Beta != 1e6 {
		t.Error("reverse-direction repair failed")
	}
	if pm.Link(0, 2).Beta != 1e6 || pm.Link(2, 0).Beta != 1e6 {
		t.Error("column-median repair failed")
	}
}

func TestCalibrateWithDropouts(t *testing.T) {
	p := smallProvider(30)
	vc, _ := p.Provision(8, 31)
	rng := stats.NewRNG(7)
	cal := Calibrate(vc, rng, CalibrationConfig{DropProb: 0.3})
	if cal.Dropped == 0 {
		t.Fatal("expected dropped probes at 30% drop rate")
	}
	// After repair, every off-diagonal cell must be positive.
	for i := 0; i < 8; i++ {
		for j := 0; j < 8; j++ {
			if i == j {
				continue
			}
			if cal.Perf.Link(i, j).Beta <= 0 || cal.Perf.Link(i, j).Alpha <= 0 {
				t.Fatalf("cell (%d,%d) not repaired: %+v", i, j, cal.Perf.Link(i, j))
			}
		}
	}
	if cal.Failed > 0 && cal.Repaired == 0 {
		t.Error("failed pairs should have been repaired")
	}
}

func TestAdvisorPipelineSurvivesDropouts(t *testing.T) {
	// End-to-end failure injection: with 20% probe failures, the RPCA
	// pipeline still recovers the constant within a reasonable tolerance.
	p := smallProvider(32)
	vc, _ := p.Provision(8, 33)
	rng := stats.NewRNG(8)
	tc := CalibrateTP(vc, rng, 10, 0, CalibrationConfig{DropProb: 0.2})
	if tc.Latency.Steps() != 10 {
		t.Fatal("steps")
	}
	// Every off-diagonal cell of every snapshot must be positive after
	// repair.
	for st := 0; st < tc.Bandwidth.Steps(); st++ {
		snap := tc.Bandwidth.Snapshot(st)
		for i := 0; i < 8; i++ {
			for j := 0; j < 8; j++ {
				if i != j && snap.At(i, j) <= 0 {
					t.Fatalf("unrepaired snapshot %d cell (%d,%d)", st, i, j)
				}
			}
		}
	}
}

func TestSnapshotPerfAndConfig(t *testing.T) {
	p := smallProvider(40)
	if p.Config().SlotsPerServer != 8 {
		t.Error("defaulted config")
	}
	vc, _ := p.Provision(4, 41)
	snap := vc.SnapshotPerf()
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			if i != j && snap.Link(i, j).Beta <= 0 {
				t.Fatal("snapshot cell missing")
			}
		}
	}
}

func TestTraceCloneAndInjectors(t *testing.T) {
	p := smallProvider(42)
	vc, _ := p.Provision(3, 43)
	tr := Record(vc, 100, 25)
	cl := tr.Clone()
	rng := stats.NewRNG(44)

	cl.InjectDrift(rng, 50, 0.1, 2)
	if tr.Perfs[2].Bandwth.ApproxEqual(cl.Perfs[2].Bandwth, 1e-9) {
		t.Error("drift should change the clone")
	}
	// Drift is cumulative: later snapshots deviate more on average.
	dev := func(k int) float64 {
		var s float64
		for i := 0; i < 3; i++ {
			for j := 0; j < 3; j++ {
				if i != j {
					o := tr.Perfs[k].Bandwth.At(i, j)
					n := cl.Perfs[k].Bandwth.At(i, j)
					d := (n - o) / o
					s += d * d
				}
			}
		}
		return s
	}
	if dev(0) > dev(tr.Len()-1)*10 {
		t.Errorf("drift variance should grow along the trace: first %v last %v", dev(0), dev(tr.Len()-1))
	}

	cl2 := tr.Clone()
	cl2.InjectBursts(rng, 1.0, 0, tr.Len(), 2, 3)
	changed := false
	for k := 0; k < tr.Len(); k++ {
		if !tr.Perfs[k].Bandwth.ApproxEqual(cl2.Perfs[k].Bandwth, 1e-9) {
			changed = true
		}
	}
	if !changed {
		t.Error("bursts with linkProb=1 should change the trace")
	}
	// Degenerate burst windows are no-ops.
	cl3 := tr.Clone()
	cl3.InjectBursts(rng, 1, 5, 2, 1, 3) // startHi <= startLo
	cl3.InjectBursts(rng, 1, 0, 2, 0, 3) // span < 1
	(&Trace{}).InjectBursts(rng, 1, 0, 1, 1, 1)
	(&Trace{}).InjectDrift(rng, 1, 0.1, 1)

	// Original untouched by clone mutations.
	if tr.Perfs[0].Bandwth.ApproxEqual(cl2.Perfs[0].Bandwth, 1e-9) && tr.Len() > 0 {
		// possible if burst missed snapshot 0 cells; just check clone identity
		_ = tr
	}
}

func TestReplayNow(t *testing.T) {
	p := smallProvider(45)
	vc, _ := p.Provision(2, 46)
	tr := Record(vc, 10, 5)
	rc := NewReplay(tr)
	start := rc.Now()
	rc.AdvanceTime(7)
	if rc.Now() != start+7 {
		t.Error("replay clock")
	}
}

func TestSimClusterCalibratePaired(t *testing.T) {
	mk := func() *SimCluster {
		return NewSimCluster(SimClusterConfig{
			Tree:      topo.TreeConfig{Racks: 4, ServersPerRack: 4, IntraRackBps: 100e6, InterRackBps: 200e6, HopLatency: 50e-6},
			VMs:       8,
			Seed:      60,
			ProbeBulk: 1 << 20,
		})
	}
	sc := mk()
	perf, cost := sc.CalibratePaired()
	if cost <= 0 {
		t.Fatal("paired calibration should consume simulated time")
	}
	for i := 0; i < 8; i++ {
		for j := 0; j < 8; j++ {
			if i == j {
				continue
			}
			l := perf.Link(i, j)
			if l.Alpha <= 0 || l.Beta <= 0 {
				t.Fatalf("pair (%d,%d) unmeasured: %+v", i, j, l)
			}
			if l.Beta > 100e6*1.01 {
				t.Fatalf("pair (%d,%d) impossible bandwidth %v", i, j, l.Beta)
			}
		}
	}
	// Paired calibration must be much cheaper in simulated time than
	// sequential pingpong over all ordered pairs.
	sc2 := mk()
	seqStart := sc2.Now()
	for i := 0; i < 8; i++ {
		for j := 0; j < 8; j++ {
			if i != j {
				sc2.PairPerf(i, j)
			}
		}
	}
	seqCost := sc2.Now() - seqStart
	if cost >= seqCost {
		t.Errorf("paired cost %v should beat sequential %v", cost, seqCost)
	}
}
