package cloud

import (
	"container/list"
	"context"
	"math"
	"sync"

	"netconstant/internal/cancel"
)

// CalibrationKey identifies a calibration trace by its measurement
// provenance: the provider that generated the cluster, the cluster size
// and provisioning seed, the measuring rng's seed, and the full
// measurement procedure (steps, gap, CalibrationConfig). Two calibrations
// with equal keys are deterministic replicas of each other, so one
// measured trace can stand in for all of them. Parameters that do not
// affect the measurement — maintenance thresholds, extraction methods,
// solver options — deliberately stay out of the key.
type CalibrationKey struct {
	Provider ProviderConfig
	N        int
	ProvSeed int64
	RNGSeed  int64
	Steps    int
	Gap      float64
	Cal      CalibrationConfig
}

// CalibrationMemo is a size-bounded, thread-safe LRU cache of calibration
// traces. Identical (provider, size, seeds, procedure) tuples are measured
// once per driver run; later requests replay the cached trace. Get and
// GetOrCompute return deep clones, so callers can hand the trace to an
// advisor (which keeps and may inspect it) without sharing state.
//
// Fault- and regime-change experiments that mutate the substrate between
// calibrations must Invalidate their key (or InvalidateAll) before
// re-calibrating, or they would replay the pre-fault trace.
type CalibrationMemo struct {
	mu  sync.Mutex
	cap int
	lru *list.List // front = most recent; values are *memoEntry
	byK map[CalibrationKey]*list.Element

	// ownerCost tracks the total measurement cost each owner currently
	// holds in the cache. Eviction charges the costliest owner first (see
	// put), which is what keeps a cold tenant's single entry alive while a
	// hot tenant bursts: the burst evicts the burster's own older traces,
	// not everyone else's.
	ownerCost map[string]float64

	hits, misses int
	// inflight serializes concurrent computations of the same key so a
	// parallel sweep computes each trace once instead of once per worker.
	// Waiters block on the call's done channel, which keeps them
	// cancellable: a waiter whose context ends abandons the wait (the
	// computation itself keeps running on the goroutine that started it).
	inflight map[CalibrationKey]*memoCall

	// gens and allGen stamp computations against invalidations: every
	// Invalidate(key) bumps gens[key] and every InvalidateAll bumps allGen.
	// A computation records both at start and its result is cached only if
	// neither moved — otherwise a compute that was racing an invalidation
	// would re-insert the pre-fault trace, exactly the replay hazard the
	// type doc warns about. The stale result is still returned to the
	// waiters of that round (they asked before the fault); it just never
	// outlives them in the cache.
	gens   map[CalibrationKey]uint64
	allGen uint64
}

type memoEntry struct {
	key   CalibrationKey
	tc    *TemporalCalibration
	owner string
	cost  float64
}

// entryCost prices a cached trace by its measurement volume: the probe
// cost the substrate charged to produce it, floored at one so zero-cost
// traces still count against their owner's share.
func entryCost(tc *TemporalCalibration) float64 {
	if tc == nil || tc.TotalCost <= 0 {
		return 1
	}
	return tc.TotalCost
}

// memoCall is one in-flight computation; tc/err are written exactly
// once, before done is closed. gen/allGen are the invalidation stamps the
// computation started under.
type memoCall struct {
	done        chan struct{}
	tc          *TemporalCalibration
	err         error
	gen, allGen uint64
}

// MemoStats reports cache effectiveness.
type MemoStats struct {
	Hits, Misses, Entries int
}

// NewCalibrationMemo creates a memo holding at most capacity traces
// (capacity <= 0 selects a default of 64).
func NewCalibrationMemo(capacity int) *CalibrationMemo {
	if capacity <= 0 {
		capacity = 64
	}
	return &CalibrationMemo{
		cap:       capacity,
		lru:       list.New(),
		byK:       map[CalibrationKey]*list.Element{},
		ownerCost: map[string]float64{},
		inflight:  map[CalibrationKey]*memoCall{},
		gens:      map[CalibrationKey]uint64{},
	}
}

// Get returns a deep clone of the cached trace for key, or nil.
func (m *CalibrationMemo) Get(key CalibrationKey) *TemporalCalibration {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if el, ok := m.byK[key]; ok {
		m.lru.MoveToFront(el)
		m.hits++
		return el.Value.(*memoEntry).tc.Clone()
	}
	m.misses++
	return nil
}

// Put stores a deep clone of tc under key, evicting the least recently
// used entry when full.
func (m *CalibrationMemo) Put(key CalibrationKey, tc *TemporalCalibration) {
	if m == nil || tc == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.put("", key, tc.Clone())
}

func (m *CalibrationMemo) put(owner string, key CalibrationKey, tc *TemporalCalibration) {
	if el, ok := m.byK[key]; ok {
		e := el.Value.(*memoEntry)
		m.ownerCost[e.owner] -= e.cost
		e.tc, e.owner, e.cost = tc, owner, entryCost(tc)
		m.ownerCost[owner] += e.cost
		m.lru.MoveToFront(el)
		return
	}
	e := &memoEntry{key: key, tc: tc, owner: owner, cost: entryCost(tc)}
	m.byK[key] = m.lru.PushFront(e)
	m.ownerCost[owner] += e.cost
	for m.lru.Len() > m.cap {
		m.removeElement(m.victim())
	}
}

// victim picks the entry to evict when the memo is full: the least
// recently used entry belonging to the owner holding the greatest total
// cached cost. With a single owner this degrades to plain LRU; with many,
// a hot tenant's burst cannibalizes its own older traces while a cold
// tenant's lone entry survives. Ties on cost break toward the owner whose
// entry has been idle longest, so no owner is privileged by name.
func (m *CalibrationMemo) victim() *list.Element {
	heaviest := math.Inf(-1)
	var pick *list.Element
	for el := m.lru.Back(); el != nil; el = el.Prev() {
		e := el.Value.(*memoEntry)
		if c := m.ownerCost[e.owner]; c > heaviest {
			// Walking back-to-front, the first entry seen for each owner is
			// that owner's LRU entry, so pick lands on the heaviest owner's
			// coldest trace.
			heaviest = c
			pick = el
		}
	}
	return pick
}

func (m *CalibrationMemo) removeElement(el *list.Element) {
	e := el.Value.(*memoEntry)
	m.lru.Remove(el)
	delete(m.byK, e.key)
	m.ownerCost[e.owner] -= e.cost
	if m.ownerCost[e.owner] <= 0 {
		delete(m.ownerCost, e.owner)
	}
}

// GetOrCompute returns a deep clone of the trace for key, calling compute
// (and caching its result) on the first request. Concurrent requests for
// the same key block on a single computation; distinct keys compute
// concurrently. A compute error is returned to every waiter and nothing
// is cached, so the next request retries.
func (m *CalibrationMemo) GetOrCompute(key CalibrationKey, compute func() (*TemporalCalibration, error)) (*TemporalCalibration, error) {
	//netlint:allow cancelflow GetOrCompute is the documented non-cancellable compat shim over GetOrComputeCtx
	return m.GetOrComputeCtx(context.Background(), key, compute)
}

// GetOrComputeCtx is GetOrCompute with cancellable waiting: a request
// that finds the key's computation already in flight blocks until
// either the computation finishes or ctx ends, in which case it
// abandons the wait with a *cancel.Error (matching cancel.ErrCanceled).
// The computation itself is never interrupted by a *waiter's* context —
// it belongs to the request that started it, which typically passes the
// same ctx into its compute closure (so cancelling the whole sweep
// still cancels the measurement).
func (m *CalibrationMemo) GetOrComputeCtx(ctx context.Context, key CalibrationKey, compute func() (*TemporalCalibration, error)) (*TemporalCalibration, error) {
	return m.GetOrComputeOwned(ctx, "", key, compute)
}

// GetOrComputeOwned is GetOrComputeCtx with fairness accounting: the
// cached entry is charged to owner (a tenant ID, figure name, or any
// stable identity), and eviction under pressure always falls on the
// owner holding the greatest total cached cost. Multi-tenant callers
// (the advisor daemon) pass their tenant ID here so one tenant's
// calibration burst cannot flush everyone else's traces.
func (m *CalibrationMemo) GetOrComputeOwned(ctx context.Context, owner string, key CalibrationKey, compute func() (*TemporalCalibration, error)) (*TemporalCalibration, error) {
	if m == nil {
		return compute()
	}
	m.mu.Lock()
	if el, ok := m.byK[key]; ok {
		m.lru.MoveToFront(el)
		m.hits++
		tc := el.Value.(*memoEntry).tc.Clone()
		m.mu.Unlock()
		return tc, nil
	}
	if call, ok := m.inflight[key]; ok {
		m.mu.Unlock()
		select {
		case <-call.done:
			if call.err != nil {
				// The computing request's error is surfaced to every
				// waiter of this round; nothing was cached, so a later
				// request retries from scratch.
				return nil, call.err
			}
			return call.tc.Clone(), nil
		case <-ctx.Done():
			return nil, cancel.Wrap("cloud.CalibrationMemo", 0, 0, context.Cause(ctx))
		}
	}
	call := &memoCall{done: make(chan struct{}), gen: m.gens[key], allGen: m.allGen}
	m.inflight[key] = call
	m.mu.Unlock()

	tc, err := compute()

	m.mu.Lock()
	m.misses++
	// Cache only if no invalidation raced the computation: the key's and
	// the global generation must be unchanged and this call must still be
	// the registered one (Invalidate detaches stale calls so a fresh
	// computation can start while the old one is still running).
	current := m.inflight[key] == call && m.gens[key] == call.gen && m.allGen == call.allGen
	if err == nil && current {
		m.put(owner, key, tc.Clone())
	}
	call.tc, call.err = tc, err
	if m.inflight[key] == call {
		delete(m.inflight, key)
	}
	m.mu.Unlock()
	close(call.done)

	if err != nil {
		return nil, err
	}
	// The computing request owns the freshly measured trace (a clone went
	// into the cache), so no extra copy is needed.
	return tc, nil
}

// Invalidate drops the entry for key (e.g. after injecting a fault into
// the substrate the key describes) and fences any computation of that key
// currently in flight: its eventual result is handed to the waiters that
// already joined it but is not cached, and a request arriving after the
// invalidation starts a fresh computation instead of joining the stale
// one. It reports whether a cached entry existed.
func (m *CalibrationMemo) Invalidate(key CalibrationKey) bool {
	if m == nil {
		return false
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.gens[key]++
	delete(m.inflight, key)
	el, ok := m.byK[key]
	if !ok {
		return false
	}
	m.removeElement(el)
	return true
}

// InvalidateAll empties the memo and fences every in-flight computation,
// with the same semantics per key as Invalidate.
func (m *CalibrationMemo) InvalidateAll() {
	if m == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.allGen++
	m.inflight = map[CalibrationKey]*memoCall{}
	m.lru.Init()
	m.byK = map[CalibrationKey]*list.Element{}
	m.ownerCost = map[string]float64{}
}

// Stats returns hit/miss counters and the current entry count.
func (m *CalibrationMemo) Stats() MemoStats {
	if m == nil {
		return MemoStats{}
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return MemoStats{Hits: m.hits, Misses: m.misses, Entries: m.lru.Len()}
}
