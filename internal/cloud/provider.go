// Package cloud is the repository's substitute for Amazon EC2 (DESIGN.md
// §2): a synthetic IaaS model in which virtual machines are placed on a
// simulated multi-rack data center and every VM pair has a *ground-truth
// constant* network performance (determined by placement, oversubscription
// and per-VM virtualization overhead) overlaid with dynamics — band-like
// volatility, sparse interference spikes, and rare regime changes caused
// by VM migration.
//
// Because the ground truth is known, the package can both generate
// realistic temporal performance matrices for the RPCA pipeline and verify
// recovery accuracy — something the paper could only approximate on the
// real cloud.
package cloud

import (
	"fmt"
	"math/rand"

	"netconstant/internal/stats"
	"netconstant/internal/topo"
)

// ProviderConfig parameterizes the synthetic data center. The zero value
// selects defaults modelled after the paper's environment: a 32×32
// two-level tree, 8 VM slots per server, EC2-medium-like bandwidth around
// 40–90 MB/s, sub-millisecond latency, and mild dynamics yielding
// Norm(N_E) ≈ 0.1 (the paper's measured EC2 value, §V-D).
type ProviderConfig struct {
	Tree           topo.TreeConfig
	SlotsPerServer int
	Seed           int64

	// Constant-component heterogeneity.
	BaseLatency      float64 // seconds, same-rack one-way
	CrossRackLatency float64 // seconds added per cross-rack pair
	LatencyJitter    float64 // relative per-pair latency spread
	VirtFactorMin    float64 // per-VM bandwidth multiplier lower bound
	VirtFactorMax    float64 // per-VM bandwidth multiplier upper bound
	CrossRackMin     float64 // cross-rack oversubscription multiplier bounds
	CrossRackMax     float64
	PairJitter       float64 // relative per-pair bandwidth spread

	// Dynamics.
	Volatility    float64 // relative std of the per-measurement band noise
	SpikeProb     float64 // probability a measurement is hit by interference
	SpikeAmp      float64 // max relative slowdown of a spike
	MigrationRate float64 // expected VM migrations per VM per day
}

func (c *ProviderConfig) applyDefaults() {
	if c.SlotsPerServer == 0 {
		c.SlotsPerServer = 8
	}
	if c.BaseLatency == 0 {
		c.BaseLatency = 250e-6
	}
	if c.CrossRackLatency == 0 {
		c.CrossRackLatency = 200e-6
	}
	if c.LatencyJitter == 0 {
		c.LatencyJitter = 0.15
	}
	if c.VirtFactorMin == 0 {
		c.VirtFactorMin = 0.45
	}
	if c.VirtFactorMax == 0 {
		c.VirtFactorMax = 0.95
	}
	if c.CrossRackMin == 0 {
		c.CrossRackMin = 0.3
	}
	if c.CrossRackMax == 0 {
		c.CrossRackMax = 0.8
	}
	if c.PairJitter == 0 {
		c.PairJitter = 0.1
	}
	if c.Volatility == 0 {
		c.Volatility = 0.04
	}
	if c.SpikeProb == 0 {
		c.SpikeProb = 0.05
	}
	if c.SpikeAmp == 0 {
		c.SpikeAmp = 1.5
	}
	if c.MigrationRate == 0 {
		c.MigrationRate = 0.4 // ~3 regime changes per week for a large cluster's hot pairs
	}
}

// Provider is a synthetic IaaS data center that can provision virtual
// clusters.
type Provider struct {
	Topo *topo.Topology
	cfg  ProviderConfig
	rng  *rand.Rand

	used    map[int]int // server node -> occupied slots
	servers []int
	// crossFactor memoizes the oversubscription multiplier per rack pair so
	// that it is a stable property of the data center, not of the cluster.
	crossFactor map[[2]int]float64
}

// NewProvider builds the data center described by cfg.
func NewProvider(cfg ProviderConfig) *Provider {
	cfg.applyDefaults()
	t := topo.NewTree(cfg.Tree)
	return &Provider{
		Topo:        t,
		cfg:         cfg,
		rng:         stats.NewRNG(cfg.Seed),
		used:        make(map[int]int),
		servers:     t.Servers(),
		crossFactor: make(map[[2]int]float64),
	}
}

// Config returns the effective (defaulted) configuration.
func (p *Provider) Config() ProviderConfig { return p.cfg }

// rackPairFactor returns the stable oversubscription multiplier for a rack
// pair, drawing it on first use.
func (p *Provider) rackPairFactor(r1, r2 int) float64 {
	if r1 == r2 {
		return 1
	}
	key := [2]int{min(r1, r2), max(r1, r2)}
	if f, ok := p.crossFactor[key]; ok {
		return f
	}
	f := stats.Uniform(p.rng, p.cfg.CrossRackMin, p.cfg.CrossRackMax)
	p.crossFactor[key] = f
	return f
}

// Provision places n VMs on servers with free slots, chosen uniformly at
// random (modelling the provider's opaque placement policy), and returns
// the virtual cluster. seed controls the cluster's own dynamics stream.
func (p *Provider) Provision(n int, seed int64) (*VirtualCluster, error) {
	if n <= 0 {
		return nil, fmt.Errorf("cloud: invalid cluster size %d", n)
	}
	free := 0
	for _, s := range p.servers {
		free += p.cfg.SlotsPerServer - p.used[s]
	}
	if n > free {
		return nil, fmt.Errorf("cloud: capacity exhausted: want %d VMs, %d slots free", n, free)
	}
	hosts := make([]int, n)
	for i := 0; i < n; i++ {
		for {
			s := p.servers[p.rng.Intn(len(p.servers))]
			if p.used[s] < p.cfg.SlotsPerServer {
				p.used[s]++
				hosts[i] = s
				break
			}
		}
	}
	vc := newVirtualCluster(p, hosts, seed)
	return vc, nil
}

// Release returns a cluster's slots to the provider.
func (p *Provider) Release(vc *VirtualCluster) {
	for _, h := range vc.Hosts {
		if p.used[h] > 0 {
			p.used[h]--
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
