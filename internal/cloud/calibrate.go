package cloud

import (
	"math"
	"math/rand"

	"netconstant/internal/netmodel"
)

// CalibrationConfig tunes the all-link calibration procedure (paper §IV-B,
// "Model calibration").
type CalibrationConfig struct {
	// BulkBytes is the large-message size used for the bandwidth probe.
	// The paper uses 8 MB, above which results are stable.
	BulkBytes float64
	// Sequential measures pairs one at a time (N(N−1) rounds) instead of
	// the paper's paired schedule (N/2 disjoint pairs per round, ≈2N
	// rounds). Sequential is the expensive baseline of the pairing
	// ablation.
	Sequential bool
	// RoundSync is the per-round synchronization overhead in seconds.
	RoundSync float64
	// InterferenceNoise is the extra relative measurement noise caused by
	// the N/2 concurrent transfers in paired mode.
	InterferenceNoise float64
	// DropProb injects measurement failures: each pair probe fails with
	// this probability (timeout, packet loss). A failed probe is retried
	// once; a pair that fails twice is left unmeasured and repaired from
	// the reverse direction or column statistics after the pass
	// (netmodel.PerfMatrix.Repair).
	DropProb float64
}

func (c *CalibrationConfig) applyDefaults() {
	if c.BulkBytes == 0 {
		c.BulkBytes = 8 << 20
	}
	if c.RoundSync == 0 {
		c.RoundSync = 0.05
	}
	if c.InterferenceNoise == 0 {
		c.InterferenceNoise = 0.02
	}
}

// Calibration is the result of one all-link measurement pass.
type Calibration struct {
	Perf   *netmodel.PerfMatrix
	Cost   float64 // elapsed cluster time consumed, seconds
	Rounds int
	// Dropped counts probes that failed at least once; Failed counts pairs
	// whose retry also failed (left for Repair); Repaired counts cells
	// filled in afterwards.
	Dropped  int
	Failed   int
	Repaired int
}

// pingpongTime is the SKaMPI-style probe duration under the α-β model: a
// 1-byte latency probe plus a bulk bandwidth probe.
func pingpongTime(l netmodel.Link, bulk float64) float64 {
	return l.TransferTime(1) + l.TransferTime(bulk)
}

// PairSchedule builds the paired measurement schedule: a sequence of
// rounds, each containing ⌊N/2⌋ disjoint ordered pairs, covering every
// ordered pair exactly once. It uses the circle method for the round-robin
// pairing and then mirrors each round for the reverse direction.
func PairSchedule(n int) [][][2]int {
	if n < 2 {
		return nil
	}
	// Circle method over m participants (m even; a bye for odd n).
	m := n
	if m%2 == 1 {
		m++
	}
	ids := make([]int, m)
	for i := range ids {
		ids[i] = i
	}
	var rounds [][][2]int
	for r := 0; r < m-1; r++ {
		var fwd, rev [][2]int
		for k := 0; k < m/2; k++ {
			a, b := ids[k], ids[m-1-k]
			if a < n && b < n {
				fwd = append(fwd, [2]int{a, b})
				rev = append(rev, [2]int{b, a})
			}
		}
		if len(fwd) > 0 {
			rounds = append(rounds, fwd, rev)
		}
		// Rotate all but the first.
		last := ids[m-1]
		copy(ids[2:], ids[1:m-1])
		ids[1] = last
	}
	return rounds
}

// Calibrate performs one all-link calibration on the cluster, advancing
// the cluster clock by the measurement cost as it goes, so that later
// rounds observe later network conditions.
func Calibrate(c Cluster, rng *rand.Rand, cfg CalibrationConfig) *Calibration {
	cfg.applyDefaults()
	n := c.Size()
	perf := netmodel.NewPerfMatrix(n)
	cal := &Calibration{Perf: perf}

	measure := func(i, j int, interference bool) netmodel.Link {
		if cfg.DropProb > 0 && rng.Float64() < cfg.DropProb {
			cal.Dropped++
			if rng.Float64() < cfg.DropProb { // retry also fails
				cal.Failed++
				return netmodel.Link{}
			}
		}
		l := c.PairPerf(i, j)
		if interference && cfg.InterferenceNoise > 0 {
			f := clampPositive(1 + cfg.InterferenceNoise*rng.NormFloat64())
			l.Beta *= f
			l.Alpha /= f
		}
		return l
	}

	if cfg.Sequential {
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if i == j {
					continue
				}
				l := measure(i, j, false)
				perf.SetLink(i, j, l)
				dt := pingpongTime(l, cfg.BulkBytes) + cfg.RoundSync
				c.AdvanceTime(dt)
				cal.Cost += dt
				cal.Rounds++
			}
		}
		cal.Repaired = perf.Repair()
		return cal
	}

	for _, round := range PairSchedule(n) {
		roundTime := 0.0
		for _, pr := range round {
			l := measure(pr[0], pr[1], true)
			perf.SetLink(pr[0], pr[1], l)
			if t := pingpongTime(l, cfg.BulkBytes); t > roundTime && !math.IsInf(t, 1) {
				roundTime = t
			}
		}
		dt := roundTime + cfg.RoundSync
		c.AdvanceTime(dt)
		cal.Cost += dt
		cal.Rounds++
	}
	cal.Repaired = perf.Repair()
	return cal
}

// TemporalCalibration is a series of calibrations assembled into the two
// TP-matrices of paper §III (latency and bandwidth).
type TemporalCalibration struct {
	Latency   *netmodel.TPMatrix
	Bandwidth *netmodel.TPMatrix
	TotalCost float64
}

// CalibrateTP performs `steps` calibrations separated by `gap` seconds of
// idle time and stacks them into TP-matrices. steps is the paper's "time
// step" tuning parameter (default 10).
func CalibrateTP(c Cluster, rng *rand.Rand, steps int, gap float64, cfg CalibrationConfig) *TemporalCalibration {
	if steps <= 0 {
		steps = 10
	}
	n := c.Size()
	tc := &TemporalCalibration{
		Latency:   netmodel.NewTPMatrix(n),
		Bandwidth: netmodel.NewTPMatrix(n),
	}
	for s := 0; s < steps; s++ {
		cal := Calibrate(c, rng, cfg)
		tc.TotalCost += cal.Cost
		tc.Latency.Append(c.Now(), cal.Perf.Latency)
		tc.Bandwidth.Append(c.Now(), cal.Perf.Bandwth)
		if s < steps-1 && gap > 0 {
			c.AdvanceTime(gap)
			tc.TotalCost += gap
		}
	}
	return tc
}

// SnapshotTP samples `steps` instantaneous performance matrices separated
// by `gap` seconds without charging measurement cost — used by trace
// generation and experiments that need ideal snapshots.
func SnapshotTP(c Cluster, steps int, gap float64) *TemporalCalibration {
	n := c.Size()
	tc := &TemporalCalibration{
		Latency:   netmodel.NewTPMatrix(n),
		Bandwidth: netmodel.NewTPMatrix(n),
	}
	for s := 0; s < steps; s++ {
		pm := snapshotOf(c)
		tc.Latency.Append(c.Now(), pm.Latency)
		tc.Bandwidth.Append(c.Now(), pm.Bandwth)
		if s < steps-1 && gap > 0 {
			c.AdvanceTime(gap)
		}
	}
	return tc
}

// snapshotOf samples every pair of any Cluster implementation.
func snapshotOf(c Cluster) *netmodel.PerfMatrix {
	n := c.Size()
	pm := netmodel.NewPerfMatrix(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			pm.SetLink(i, j, c.PairPerf(i, j))
		}
	}
	return pm
}

// EstimateCalibrationCost predicts the wall-clock cost of one paired
// calibration pass for a cluster of n VMs with typical link performance,
// without touching a cluster — the analytic curve behind Fig 4.
func EstimateCalibrationCost(n int, typical netmodel.Link, cfg CalibrationConfig) float64 {
	cfg.applyDefaults()
	rounds := len(PairSchedule(n))
	if cfg.Sequential {
		rounds = n * (n - 1)
	}
	return float64(rounds) * (pingpongTime(typical, cfg.BulkBytes) + cfg.RoundSync)
}
