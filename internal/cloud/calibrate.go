package cloud

import (
	"context"
	"math"
	"math/rand"
	"sort"

	"netconstant/internal/cancel"
	"netconstant/internal/mat"
	"netconstant/internal/netmodel"
)

// PairProber is an optional Cluster extension for substrates where a probe
// can fail outright — timeout, blackout, VM churn — rather than always
// return a value. The fault-injection layer (internal/faults) implements
// it; clusters without it are treated as never failing on their own (the
// legacy DropProb coin still applies).
type PairProber interface {
	ProbePair(i, j int) (netmodel.Link, error)
}

// CalibrationConfig tunes the all-link calibration procedure (paper §IV-B,
// "Model calibration").
type CalibrationConfig struct {
	// BulkBytes is the large-message size used for the bandwidth probe.
	// The paper uses 8 MB, above which results are stable.
	BulkBytes float64
	// Sequential measures pairs one at a time (N(N−1) rounds) instead of
	// the paper's paired schedule (N/2 disjoint pairs per round, ≈2N
	// rounds). Sequential is the expensive baseline of the pairing
	// ablation.
	Sequential bool
	// RoundSync is the per-round synchronization overhead in seconds.
	RoundSync float64
	// InterferenceNoise is the extra relative measurement noise caused by
	// the N/2 concurrent transfers in paired mode.
	InterferenceNoise float64
	// DropProb injects measurement failures: each pair probe fails with
	// this probability (timeout, packet loss). In legacy mode a failed
	// probe is retried once; a pair that fails twice is left unmeasured
	// and repaired from the reverse direction or column statistics after
	// the pass (netmodel.PerfMatrix.Repair). In resilient mode the retry
	// budget below applies instead.
	DropProb float64

	// Resilient enables the fault-tolerant measurement path: per-probe
	// retry budgets with exponential backoff, optional repeated probes
	// with MAD outlier rejection, a quality score per cell, and *honest*
	// gaps — pairs that exhaust their budget are marked missing for masked
	// decomposition instead of being silently repaired.
	Resilient bool
	// MaxRetries is the number of re-attempts after a failed probe
	// (resilient mode; default 2).
	MaxRetries int
	// ProbeTimeout is the cluster time charged for each failed probe
	// attempt, seconds (default 1).
	ProbeTimeout float64
	// RetryBackoff is the base of the exponential backoff slept (and
	// charged to cluster time) before the k-th retry: RetryBackoff·2^(k−1)
	// seconds (default 0.1).
	RetryBackoff float64
	// Repeats is how many times each pair is probed in resilient mode;
	// with ≥3 repeats the per-pair estimate is the median of the repeats
	// that survive MAD outlier rejection (default 1 — no repetition).
	Repeats int
	// MADCutoff is the modified-z-score threshold for rejecting a repeat
	// as an outlier (default 3.5, the standard Iglewicz–Hoaglin value).
	MADCutoff float64
}

func (c *CalibrationConfig) applyDefaults() {
	if c.BulkBytes == 0 {
		c.BulkBytes = 8 << 20
	}
	if c.RoundSync == 0 {
		c.RoundSync = 0.05
	}
	if c.InterferenceNoise == 0 {
		c.InterferenceNoise = 0.02
	}
	if c.MaxRetries == 0 {
		c.MaxRetries = 2
	}
	if c.ProbeTimeout == 0 {
		c.ProbeTimeout = 1
	}
	if c.RetryBackoff == 0 {
		c.RetryBackoff = 0.1
	}
	if c.Repeats == 0 {
		c.Repeats = 1
	}
	if c.MADCutoff == 0 {
		c.MADCutoff = 3.5
	}
}

// Calibration is the result of one all-link measurement pass.
type Calibration struct {
	Perf   *netmodel.PerfMatrix
	Cost   float64 // elapsed cluster time consumed, seconds
	Rounds int
	// Dropped counts probe attempts that failed; Failed counts pairs whose
	// whole budget failed (left missing / for Repair); Repaired counts
	// cells filled in afterwards (legacy mode only).
	Dropped  int
	Failed   int
	Repaired int

	// Resilient-mode accounting.
	Retries  int // re-attempts that were actually spent
	Outliers int // probe repeats rejected by MAD screening
	Missing  int // cells left unmeasured (masked, not repaired)
}

// Coverage returns the fraction of off-diagonal cells that hold a real
// measurement.
func (cal *Calibration) Coverage() float64 { return cal.Perf.Coverage() }

// MeanQuality returns the average per-cell quality score (1 for legacy
// calibrations without quality tracking).
func (cal *Calibration) MeanQuality() float64 { return cal.Perf.MeanQuality() }

// pingpongTime is the SKaMPI-style probe duration under the α-β model: a
// 1-byte latency probe plus a bulk bandwidth probe.
func pingpongTime(l netmodel.Link, bulk float64) float64 {
	return l.TransferTime(1) + l.TransferTime(bulk)
}

// PairSchedule builds the paired measurement schedule: a sequence of
// rounds, each containing ⌊N/2⌋ disjoint ordered pairs, covering every
// ordered pair exactly once. It uses the circle method for the round-robin
// pairing and then mirrors each round for the reverse direction.
func PairSchedule(n int) [][][2]int {
	if n < 2 {
		return nil
	}
	// Circle method over m participants (m even; a bye for odd n).
	m := n
	if m%2 == 1 {
		m++
	}
	ids := make([]int, m)
	for i := range ids {
		ids[i] = i
	}
	var rounds [][][2]int
	for r := 0; r < m-1; r++ {
		var fwd, rev [][2]int
		for k := 0; k < m/2; k++ {
			a, b := ids[k], ids[m-1-k]
			if a < n && b < n {
				fwd = append(fwd, [2]int{a, b})
				rev = append(rev, [2]int{b, a})
			}
		}
		if len(fwd) > 0 {
			rounds = append(rounds, fwd, rev)
		}
		// Rotate all but the first.
		last := ids[m-1]
		copy(ids[2:], ids[1:m-1])
		ids[1] = last
	}
	return rounds
}

// probeOnce runs a single probe attempt against the cluster, honouring the
// DropProb coin and, when the cluster supports it, genuine probe failures.
func probeOnce(c Cluster, rng *rand.Rand, cfg *CalibrationConfig, i, j int) (netmodel.Link, bool) {
	if cfg.DropProb > 0 && rng.Float64() < cfg.DropProb {
		return netmodel.Link{}, false
	}
	if pp, ok := c.(PairProber); ok {
		l, err := pp.ProbePair(i, j)
		if err != nil {
			return netmodel.Link{}, false
		}
		return l, true
	}
	return c.PairPerf(i, j), true
}

// madFilter returns the indices of samples surviving modified-z-score
// screening: |0.6745·(x−median)/MAD| ≤ cutoff. With MAD = 0 (at least
// half the samples identical) only exact-median samples survive a strict
// screen, so it degrades to keeping everything.
func madFilter(samples []float64, cutoff float64) []int {
	if len(samples) < 3 {
		idx := make([]int, len(samples))
		for i := range idx {
			idx[i] = i
		}
		return idx
	}
	sorted := append([]float64(nil), samples...)
	sort.Float64s(sorted)
	med := median(sorted)
	dev := make([]float64, len(samples))
	for i, v := range samples {
		dev[i] = math.Abs(v - med)
	}
	devSorted := append([]float64(nil), dev...)
	sort.Float64s(devSorted)
	mad := median(devSorted)
	if mad == 0 {
		idx := make([]int, len(samples))
		for i := range idx {
			idx[i] = i
		}
		return idx
	}
	var keep []int
	for i := range samples {
		if 0.6745*dev[i]/mad <= cutoff {
			keep = append(keep, i)
		}
	}
	return keep
}

func median(sorted []float64) float64 {
	n := len(sorted)
	if n == 0 {
		return 0
	}
	if n%2 == 1 {
		return sorted[n/2]
	}
	return 0.5 * (sorted[n/2-1] + sorted[n/2])
}

// pairProbe is the resilient measurement of one directed pair: up to
// 1+MaxRetries attempts with exponential backoff, then (on success)
// Repeats−1 further probes with MAD outlier rejection. It reports the
// final link estimate, whether any measurement succeeded, the cluster
// time consumed, and the quality score of the cell.
func pairProbe(c Cluster, rng *rand.Rand, cfg *CalibrationConfig, cal *Calibration, i, j int, interference bool) (netmodel.Link, bool, float64, float64) {
	elapsed := 0.0
	attempt := func() (netmodel.Link, bool) {
		l, ok := probeOnce(c, rng, cfg, i, j)
		if !ok {
			return netmodel.Link{}, false
		}
		if interference && cfg.InterferenceNoise > 0 {
			f := clampPositive(1 + cfg.InterferenceNoise*rng.NormFloat64())
			l.Beta *= f
			l.Alpha /= f
		}
		return l, true
	}

	var links []netmodel.Link
	retriesUsed := 0
	for rep := 0; rep < cfg.Repeats; rep++ {
		got := false
		for try := 0; try <= cfg.MaxRetries; try++ {
			if try > 0 {
				// Backoff is slept on the cluster clock before the retry.
				elapsed += cfg.RetryBackoff * math.Pow(2, float64(try-1))
				retriesUsed++
				cal.Retries++
			}
			l, ok := attempt()
			if !ok {
				cal.Dropped++
				elapsed += cfg.ProbeTimeout
				continue
			}
			if t := pingpongTime(l, cfg.BulkBytes); !math.IsInf(t, 1) && !math.IsNaN(t) {
				elapsed += t
			}
			links = append(links, l)
			got = true
			break
		}
		if !got && rep == 0 {
			// First repeat exhausted the budget: the pair is unmeasurable
			// right now; further repeats would only burn more budget.
			return netmodel.Link{}, false, elapsed, 0
		}
	}
	if len(links) == 0 {
		return netmodel.Link{}, false, elapsed, 0
	}

	// MAD screening on the bandwidth estimates; the median of the
	// survivors is the cell value.
	kept := links
	if len(links) >= 3 {
		betas := make([]float64, len(links))
		for k, l := range links {
			betas[k] = l.Beta
		}
		keep := madFilter(betas, cfg.MADCutoff)
		cal.Outliers += len(links) - len(keep)
		kept = kept[:0:0]
		for _, k := range keep {
			kept = append(kept, links[k])
		}
		if len(kept) == 0 {
			kept = links // degenerate screen: keep everything
		}
	}
	betas := make([]float64, len(kept))
	alphas := make([]float64, len(kept))
	for k, l := range kept {
		betas[k], alphas[k] = l.Beta, l.Alpha
	}
	sort.Float64s(betas)
	sort.Float64s(alphas)
	link := netmodel.Link{Alpha: median(alphas), Beta: median(betas)}

	// Quality: a clean full-agreement measurement scores 1; every retry
	// and every rejected repeat erodes trust in the cell.
	quality := 1.0
	quality *= math.Pow(0.7, float64(retriesUsed))
	quality *= float64(len(kept)) / float64(len(links))
	return link, true, elapsed, quality
}

// Calibrate performs one all-link calibration on the cluster, advancing
// the cluster clock by the measurement cost as it goes, so that later
// rounds observe later network conditions.
//
// In resilient mode (cfg.Resilient) failed probes are retried within a
// backoff budget, repeated probes are screened for outliers, every cell
// carries a quality score, and pairs that stay unmeasurable are marked
// missing rather than repaired — callers run masked RPCA over the gaps.
func Calibrate(c Cluster, rng *rand.Rand, cfg CalibrationConfig) *Calibration {
	//netlint:allow cancelflow Calibrate is the documented no-cancellation compat shim over CalibrateCtx; this Background root never outlives the call
	cal, _ := CalibrateCtx(context.Background(), c, rng, cfg)
	return cal
}

// CalibrateCtx is Calibrate with cancellation: the context is checked
// once per measurement round, and a cancelled context aborts with a
// *cancel.Error (matching cancel.ErrCanceled) carrying the rounds
// completed. The abandoned pass's partial measurements are discarded;
// cluster time already consumed stays consumed, exactly as a real
// interrupted measurement campaign would leave the cluster older but
// yield no trace.
func CalibrateCtx(ctx context.Context, c Cluster, rng *rand.Rand, cfg CalibrationConfig) (*Calibration, error) {
	cfg.applyDefaults()
	n := c.Size()
	perf := netmodel.NewPerfMatrix(n)
	cal := &Calibration{Perf: perf}
	if cfg.Resilient {
		perf.EnsureQuality()
	}

	// measure handles one directed pair and returns the cluster time it
	// consumed (always finite).
	measure := func(i, j int, interference bool) float64 {
		if cfg.Resilient {
			l, ok, dt, quality := pairProbe(c, rng, &cfg, cal, i, j, interference)
			if !ok {
				cal.Failed++
				cal.Missing++
				perf.MarkMissing(i, j)
				return dt
			}
			perf.SetLinkQ(i, j, l, quality)
			return dt
		}
		// Legacy path: one blind retry, repair afterwards.
		l, ok := probeOnce(c, rng, &cfg, i, j)
		if !ok {
			cal.Dropped++
			l, ok = probeOnce(c, rng, &cfg, i, j)
			if !ok { // retry also failed
				cal.Failed++
				perf.SetLink(i, j, netmodel.Link{})
				return 0
			}
		}
		if interference && cfg.InterferenceNoise > 0 {
			f := clampPositive(1 + cfg.InterferenceNoise*rng.NormFloat64())
			l.Beta *= f
			l.Alpha /= f
		}
		perf.SetLink(i, j, l)
		if t := pingpongTime(l, cfg.BulkBytes); !math.IsInf(t, 1) && !math.IsNaN(t) {
			return t
		}
		return 0
	}

	if cfg.Sequential {
		total := n * (n - 1)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if i == j {
					continue
				}
				if err := cancel.Check(ctx, "cloud.Calibrate", cal.Rounds, total); err != nil {
					return nil, err
				}
				dt := measure(i, j, false) + cfg.RoundSync
				c.AdvanceTime(dt)
				cal.Cost += dt
				cal.Rounds++
			}
		}
	} else {
		schedule := PairSchedule(n)
		for _, round := range schedule {
			if err := cancel.Check(ctx, "cloud.Calibrate", cal.Rounds, len(schedule)); err != nil {
				return nil, err
			}
			roundTime := 0.0
			for _, pr := range round {
				if t := measure(pr[0], pr[1], true); t > roundTime {
					roundTime = t
				}
			}
			dt := roundTime + cfg.RoundSync
			c.AdvanceTime(dt)
			cal.Cost += dt
			cal.Rounds++
		}
	}
	if !cfg.Resilient {
		cal.Repaired = perf.Repair()
	}
	return cal, nil
}

// TemporalCalibration is a series of calibrations assembled into the two
// TP-matrices of paper §III (latency and bandwidth).
type TemporalCalibration struct {
	Latency   *netmodel.TPMatrix
	Bandwidth *netmodel.TPMatrix
	TotalCost float64

	// Steps holds the per-row calibration results (nil for snapshot-based
	// temporal matrices, which have no measurement procedure to account
	// for).
	Steps []*Calibration
	// Mask is the steps×N² observation mask aligned with the TP-matrix
	// rows: 1 where the cell was measured, 0 where the probe budget was
	// exhausted. Nil means fully observed.
	Mask *mat.Dense
}

// Clone deep-copies the calibration, so a cached trace can be handed to
// multiple consumers without sharing mutable state.
func (tc *TemporalCalibration) Clone() *TemporalCalibration {
	if tc == nil {
		return nil
	}
	out := &TemporalCalibration{
		Latency:   tc.Latency.Clone(),
		Bandwidth: tc.Bandwidth.Clone(),
		TotalCost: tc.TotalCost,
	}
	if tc.Steps != nil {
		out.Steps = make([]*Calibration, len(tc.Steps))
		for i, cal := range tc.Steps {
			c := *cal
			c.Perf = cal.Perf.Clone()
			out.Steps[i] = &c
		}
	}
	if tc.Mask != nil {
		out.Mask = tc.Mask.Clone()
	}
	return out
}

// Coverage returns the observed fraction of the TP-matrix's off-diagonal
// cells (1 when no mask was recorded).
func (tc *TemporalCalibration) Coverage() float64 {
	if tc.Mask == nil {
		return 1
	}
	n := tc.Latency.N
	rows := tc.Mask.Rows()
	if rows == 0 || n < 2 {
		return 1
	}
	observed := 0
	for s := 0; s < rows; s++ {
		row := tc.Mask.Row(s)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if i != j && row[i*n+j] > 0.5 {
					observed++
				}
			}
		}
	}
	return float64(observed) / float64(rows*n*(n-1))
}

// CalibrateTP performs `steps` calibrations separated by `gap` seconds of
// idle time and stacks them into TP-matrices. steps is the paper's "time
// step" tuning parameter (default 10).
func CalibrateTP(c Cluster, rng *rand.Rand, steps int, gap float64, cfg CalibrationConfig) *TemporalCalibration {
	//netlint:allow cancelflow CalibrateTP is the documented no-cancellation compat shim over CalibrateTPCtx
	tc, _ := CalibrateTPCtx(context.Background(), c, rng, steps, gap, cfg)
	return tc
}

// CalibrateTPCtx is CalibrateTP with cancellation: the context is
// checked before every calibration step (and per round inside each
// step); a cancelled context aborts with a *cancel.Error and no trace.
func CalibrateTPCtx(ctx context.Context, c Cluster, rng *rand.Rand, steps int, gap float64, cfg CalibrationConfig) (*TemporalCalibration, error) {
	if steps <= 0 {
		steps = 10
	}
	n := c.Size()
	tc := &TemporalCalibration{
		Latency:   netmodel.NewTPMatrix(n),
		Bandwidth: netmodel.NewTPMatrix(n),
	}
	if cfg.Resilient {
		tc.Mask = mat.NewDense(steps, n*n)
	}
	for s := 0; s < steps; s++ {
		if err := cancel.Check(ctx, "cloud.CalibrateTP", s, steps); err != nil {
			return nil, err
		}
		cal, err := CalibrateCtx(ctx, c, rng, cfg)
		if err != nil {
			return nil, err
		}
		tc.TotalCost += cal.Cost
		tc.Steps = append(tc.Steps, cal)
		tc.Latency.Append(c.Now(), cal.Perf.Latency)
		tc.Bandwidth.Append(c.Now(), cal.Perf.Bandwth)
		if tc.Mask != nil {
			row := tc.Mask.Row(s)
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					if i != j && !cal.Perf.IsMissing(i, j) {
						row[i*n+j] = 1
					}
				}
			}
			// Diagonal cells are structurally zero in every row; marking
			// them observed keeps the mask from treating them as gaps.
			for i := 0; i < n; i++ {
				row[i*n+i] = 1
			}
		}
		if s < steps-1 && gap > 0 {
			c.AdvanceTime(gap)
			tc.TotalCost += gap
		}
	}
	return tc, nil
}

// SnapshotTP samples `steps` instantaneous performance matrices separated
// by `gap` seconds without charging measurement cost — used by trace
// generation and experiments that need ideal snapshots.
func SnapshotTP(c Cluster, steps int, gap float64) *TemporalCalibration {
	n := c.Size()
	tc := &TemporalCalibration{
		Latency:   netmodel.NewTPMatrix(n),
		Bandwidth: netmodel.NewTPMatrix(n),
	}
	for s := 0; s < steps; s++ {
		pm := snapshotOf(c)
		tc.Latency.Append(c.Now(), pm.Latency)
		tc.Bandwidth.Append(c.Now(), pm.Bandwth)
		if s < steps-1 && gap > 0 {
			c.AdvanceTime(gap)
		}
	}
	return tc
}

// snapshotOf samples every pair of any Cluster implementation.
func snapshotOf(c Cluster) *netmodel.PerfMatrix {
	n := c.Size()
	pm := netmodel.NewPerfMatrix(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			pm.SetLink(i, j, c.PairPerf(i, j))
		}
	}
	return pm
}

// EstimateCalibrationCost predicts the wall-clock cost of one paired
// calibration pass for a cluster of n VMs with typical link performance,
// without touching a cluster — the analytic curve behind Fig 4.
func EstimateCalibrationCost(n int, typical netmodel.Link, cfg CalibrationConfig) float64 {
	cfg.applyDefaults()
	rounds := len(PairSchedule(n))
	if cfg.Sequential {
		rounds = n * (n - 1)
	}
	return float64(rounds) * (pingpongTime(typical, cfg.BulkBytes) + cfg.RoundSync)
}
