package cloud

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"

	"netconstant/internal/stats"
)

// provisionTest builds a small cluster for the resilience tests.
func provisionTest(t *testing.T, n int, seed int64) *VirtualCluster {
	t.Helper()
	vc, err := smallProvider(seed).Provision(n, seed+1)
	if err != nil {
		t.Fatal(err)
	}
	return vc
}

// TestPairScheduleProperty is the randomized version of TestPairSchedule:
// for any n ≥ 2, even or odd, the schedule covers every ordered pair
// exactly once with disjoint pairs per round.
func TestPairScheduleProperty(t *testing.T) {
	prop := func(raw uint8) bool {
		n := 2 + int(raw)%39 // n in [2, 40]
		rounds := PairSchedule(n)
		seen := map[[2]int]bool{}
		for _, round := range rounds {
			inRound := map[int]bool{}
			for _, pr := range round {
				if pr[0] == pr[1] || pr[0] < 0 || pr[1] < 0 || pr[0] >= n || pr[1] >= n {
					return false
				}
				if seen[pr] || inRound[pr[0]] || inRound[pr[1]] {
					return false
				}
				seen[pr] = true
				inRound[pr[0]] = true
				inRound[pr[1]] = true
			}
		}
		return len(seen) == n*(n-1)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestSequentialDropoutFiniteCost is the regression test for the Inf-cost
// bug: with every probe dropped, the sequential path used to charge
// pingpongTime of a zero-bandwidth link — a division by zero whose +Inf
// propagated into Cost and the cluster clock. Both schedules must now
// yield finite costs no matter how many probes fail.
func TestSequentialDropoutFiniteCost(t *testing.T) {
	for _, sequential := range []bool{true, false} {
		vc := provisionTest(t, 6, 77)
		cal := Calibrate(vc, stats.NewRNG(78), CalibrationConfig{
			Sequential: sequential,
			DropProb:   1,
		})
		if math.IsInf(cal.Cost, 0) || math.IsNaN(cal.Cost) {
			t.Errorf("sequential=%v: cost %v", sequential, cal.Cost)
		}
		if now := vc.Now(); math.IsInf(now, 0) || math.IsNaN(now) {
			t.Errorf("sequential=%v: cluster clock %v", sequential, now)
		}
		if cal.Failed == 0 {
			t.Errorf("sequential=%v: expected failed pairs", sequential)
		}
	}
}

// TestCalibrationDeterminism: identical seeds and configs must produce
// byte-identical TP-matrices, in both legacy and resilient modes — the
// repo's experiments rely on run-to-run reproducibility.
func TestCalibrationDeterminism(t *testing.T) {
	for _, cfg := range []CalibrationConfig{
		{},
		{DropProb: 0.2},
		{Resilient: true, Repeats: 3, MaxRetries: 2},
	} {
		enc := func() []byte {
			vc := provisionTest(t, 6, 90)
			tc := CalibrateTP(vc, stats.NewRNG(91), 4, 10, cfg)
			var buf bytes.Buffer
			if err := tc.Latency.Encode(&buf); err != nil {
				t.Fatal(err)
			}
			if err := tc.Bandwidth.Encode(&buf); err != nil {
				t.Fatal(err)
			}
			return buf.Bytes()
		}
		if !bytes.Equal(enc(), enc()) {
			t.Errorf("config %+v: calibrations not byte-identical", cfg)
		}
	}
}

// TestResilientQualityAccounting: a lossy but recoverable calibration
// should measure everything (full coverage) while reporting the retries
// it spent and a mean quality strictly below a clean run's.
func TestResilientQualityAccounting(t *testing.T) {
	vc := provisionTest(t, 6, 95)
	cal := Calibrate(vc, stats.NewRNG(96), CalibrationConfig{
		Resilient: true,
		DropProb:  0.3,
		Repeats:   3,
	})
	if cal.Retries == 0 {
		t.Error("expected spent retries at 30% drop probability")
	}
	if cov := cal.Coverage(); cov < 0.9 {
		t.Errorf("coverage %v despite retry budget", cov)
	}
	if q := cal.MeanQuality(); q <= 0 || q >= 1 {
		t.Errorf("mean quality %v, want in (0,1)", q)
	}

	vc2 := provisionTest(t, 6, 95)
	clean := Calibrate(vc2, stats.NewRNG(96), CalibrationConfig{Resilient: true, Repeats: 3})
	if clean.MeanQuality() <= cal.MeanQuality() {
		t.Errorf("clean quality %v should beat lossy %v", clean.MeanQuality(), cal.MeanQuality())
	}
}
