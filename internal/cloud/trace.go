package cloud

import (
	"encoding/gob"
	"errors"
	"io"
	"math/rand"

	"netconstant/internal/netmodel"
	"netconstant/internal/stats"
)

// Trace is a recorded series of all-link performance snapshots of a
// virtual cluster — the paper's week-long EC2 calibration traces, which it
// replays for repeatable comparisons (§V-D3).
type Trace struct {
	N     int
	Times []float64
	Perfs []*netmodel.PerfMatrix
}

// Record samples the cluster every `interval` seconds for `duration`
// seconds (inclusive of t=0) and returns the trace.
func Record(c Cluster, duration, interval float64) *Trace {
	if interval <= 0 {
		panic("cloud: non-positive trace interval")
	}
	tr := &Trace{N: c.Size()}
	for elapsed := 0.0; elapsed <= duration; elapsed += interval {
		tr.Times = append(tr.Times, c.Now())
		tr.Perfs = append(tr.Perfs, snapshotOf(c))
		if elapsed+interval <= duration {
			c.AdvanceTime(interval)
		}
	}
	return tr
}

// Len returns the number of snapshots.
func (tr *Trace) Len() int { return len(tr.Perfs) }

// Clone deep-copies the trace (used before noise injection so sweeps can
// restart from the pristine recording).
func (tr *Trace) Clone() *Trace {
	out := &Trace{N: tr.N, Times: append([]float64(nil), tr.Times...)}
	for _, pm := range tr.Perfs {
		out.Perfs = append(out.Perfs, pm.Clone())
	}
	return out
}

// At returns the snapshot index whose time is closest to t (snapshots are
// time-ordered).
func (tr *Trace) At(t float64) int {
	best, bestDist := 0, -1.0
	for i, tm := range tr.Times {
		d := tm - t
		if d < 0 {
			d = -d
		}
		if bestDist < 0 || d < bestDist {
			best, bestDist = i, d
		}
	}
	return best
}

// InjectDrift overlays a cumulative per-link random walk plus sparse
// spikes — the paper's §V-D3 noise procedure ("we change the network
// performance by 1%... we repeat the process"). Each link's multiplicative
// factor takes `steps` ±1% steps *per snapshot* and carries over to the
// next snapshot, so the long-term performance itself drifts away from any
// earlier calibration; spikes add transient interference on top.
func (tr *Trace) InjectDrift(rng *rand.Rand, steps int, spikeProb, spikeAmp float64) {
	if tr.N == 0 {
		return
	}
	factor := make([]float64, tr.N*tr.N)
	for i := range factor {
		factor[i] = 1
	}
	for _, pm := range tr.Perfs {
		for i := 0; i < pm.N; i++ {
			for j := 0; j < pm.N; j++ {
				if i == j {
					continue
				}
				idx := i*pm.N + j
				for s := 0; s < steps; s++ {
					if rng.Float64() < 0.5 {
						factor[idx] *= 1.01
					} else {
						factor[idx] *= 0.99
					}
				}
				l := pm.Link(i, j)
				l.Beta *= factor[idx]
				l.Alpha /= factor[idx]
				if stats.Bernoulli(rng, spikeProb) {
					slow := 1 + spikeAmp*rng.Float64()
					l.Beta /= slow
					l.Alpha *= slow
				}
				pm.SetLink(i, j, l)
			}
		}
	}
}

// InjectBursts overlays correlated congestion episodes: each affected
// directed link (chosen with probability linkProb) suffers one contiguous
// burst of `span` snapshots starting uniformly within [startLo, startHi),
// during which its performance is degraded by a factor drawn from
// [2, 2+amp]. Bursts are the video-surveillance analogue the paper leans
// on — foreground objects that appear in some frames and pollute a
// per-link average while a robust constant estimate rejects them.
func (tr *Trace) InjectBursts(rng *rand.Rand, linkProb float64, startLo, startHi, span int, amp float64) {
	if tr.N == 0 || tr.Len() == 0 || span < 1 {
		return
	}
	if startLo < 0 {
		startLo = 0
	}
	if startHi > tr.Len() {
		startHi = tr.Len()
	}
	if startHi <= startLo {
		return
	}
	for i := 0; i < tr.N; i++ {
		for j := 0; j < tr.N; j++ {
			if i == j || !stats.Bernoulli(rng, linkProb) {
				continue
			}
			start := startLo + rng.Intn(startHi-startLo)
			slow := 2 + amp*rng.Float64()
			for k := start; k < start+span && k < tr.Len(); k++ {
				l := tr.Perfs[k].Link(i, j)
				l.Beta /= slow
				l.Alpha *= slow
				tr.Perfs[k].SetLink(i, j, l)
			}
		}
	}
}

// InjectNoise perturbs every snapshot with independent multiplicative
// 1%-step noise plus sparse spikes — transient interference without
// long-term drift. steps is the number of 1% steps applied to each cell;
// spikeProb/spikeAmp add sparse outliers.
func (tr *Trace) InjectNoise(rng *rand.Rand, steps int, spikeProb, spikeAmp float64) {
	for _, pm := range tr.Perfs {
		for i := 0; i < pm.N; i++ {
			for j := 0; j < pm.N; j++ {
				if i == j {
					continue
				}
				l := pm.Link(i, j)
				for s := 0; s < steps; s++ {
					if rng.Float64() < 0.5 {
						l.Beta *= 1.01
						l.Alpha *= 0.99
					} else {
						l.Beta *= 0.99
						l.Alpha *= 1.01
					}
				}
				if stats.Bernoulli(rng, spikeProb) {
					slow := 1 + spikeAmp*rng.Float64()
					l.Beta /= slow
					l.Alpha *= slow
				}
				pm.SetLink(i, j, l)
			}
		}
	}
}

type gobTrace struct {
	N     int
	Times []float64
	Lat   [][]float64
	Bw    [][]float64
}

// Encode serializes the trace with encoding/gob.
func (tr *Trace) Encode(w io.Writer) error {
	g := gobTrace{N: tr.N, Times: tr.Times}
	for _, pm := range tr.Perfs {
		g.Lat = append(g.Lat, netmodel.Vectorize(pm.Latency))
		g.Bw = append(g.Bw, netmodel.Vectorize(pm.Bandwth))
	}
	return gob.NewEncoder(w).Encode(g)
}

// DecodeTrace reads a trace written by Encode.
func DecodeTrace(r io.Reader) (*Trace, error) {
	var g gobTrace
	if err := gob.NewDecoder(r).Decode(&g); err != nil {
		return nil, err
	}
	if len(g.Lat) != len(g.Times) || len(g.Bw) != len(g.Times) {
		return nil, errors.New("cloud: corrupt trace")
	}
	tr := &Trace{N: g.N, Times: g.Times}
	for k := range g.Times {
		if len(g.Lat[k]) != g.N*g.N || len(g.Bw[k]) != g.N*g.N {
			return nil, errors.New("cloud: corrupt trace snapshot")
		}
		pm := &netmodel.PerfMatrix{
			N:       g.N,
			Latency: netmodel.Devectorize(g.Lat[k], g.N),
			Bandwth: netmodel.Devectorize(g.Bw[k], g.N),
		}
		tr.Perfs = append(tr.Perfs, pm)
	}
	return tr, nil
}

// ReplayCluster replays a recorded trace as a Cluster: PairPerf reads the
// snapshot nearest to the replay clock. It enables repeatable experiments
// on identical network conditions across compared strategies.
type ReplayCluster struct {
	trace *Trace
	now   float64
	cur   int
}

// NewReplay starts a replay of the trace at its first snapshot.
func NewReplay(tr *Trace) *ReplayCluster {
	if tr.Len() == 0 {
		panic("cloud: empty trace")
	}
	return &ReplayCluster{trace: tr, now: tr.Times[0]}
}

// Size returns the cluster size recorded in the trace.
func (rc *ReplayCluster) Size() int { return rc.trace.N }

// Now returns the replay clock.
func (rc *ReplayCluster) Now() float64 { return rc.now }

// AdvanceTime moves the replay clock forward.
func (rc *ReplayCluster) AdvanceTime(dt float64) {
	if dt < 0 {
		panic("cloud: negative time advance")
	}
	rc.now += dt
	for rc.cur+1 < rc.trace.Len() && rc.trace.Times[rc.cur+1] <= rc.now {
		rc.cur++
	}
}

// Seek jumps the replay clock to absolute time t (forward or backward).
func (rc *ReplayCluster) Seek(t float64) {
	rc.now = t
	rc.cur = rc.trace.At(t)
}

// PairPerf returns the recorded performance at the current replay point.
func (rc *ReplayCluster) PairPerf(i, j int) netmodel.Link {
	return rc.trace.Perfs[rc.cur].Link(i, j)
}

// Snapshot returns the full current performance matrix.
func (rc *ReplayCluster) Snapshot() *netmodel.PerfMatrix {
	return rc.trace.Perfs[rc.cur]
}
