package cloud

import (
	"math"
	"math/rand"

	"netconstant/internal/mat"
	"netconstant/internal/netmodel"
	"netconstant/internal/stats"
)

// Cluster is the abstraction the calibration and optimization layers work
// against: a set of VMs with time-varying pair-wise network performance.
// Implementations include the synthetic VirtualCluster, the trace-replay
// cluster, and the simnet-backed cluster.
type Cluster interface {
	// Size returns the number of VMs.
	Size() int
	// Now returns the cluster-local simulated time in seconds.
	Now() float64
	// AdvanceTime moves the cluster clock forward, letting dynamics
	// (volatility regime, migrations) evolve.
	AdvanceTime(dt float64)
	// PairPerf returns the instantaneous network performance of the
	// directed VM pair (i, j) — what a transfer started now experiences.
	PairPerf(i, j int) netmodel.Link
}

// VirtualCluster is a set of VMs provisioned on the synthetic provider.
// Each directed pair has a constant ground-truth α-β performance plus
// dynamics; migrations change the ground truth (the paper's "significant
// changes").
type VirtualCluster struct {
	provider *Provider
	Hosts    []int // server node per VM
	rng      *rand.Rand
	now      float64

	vmFactor []float64 // per-VM virtualization bandwidth multiplier
	pairBW   *mat.Dense
	pairLat  *mat.Dense

	migrations     int
	lastMigCheck   float64
	migrationHook  func(vm int)
	freezeDynamics bool
}

func newVirtualCluster(p *Provider, hosts []int, seed int64) *VirtualCluster {
	vc := &VirtualCluster{
		provider: p,
		Hosts:    hosts,
		rng:      stats.NewRNG(seed ^ 0x5eed),
		vmFactor: make([]float64, len(hosts)),
	}
	for i := range vc.vmFactor {
		vc.vmFactor[i] = stats.Uniform(vc.rng, p.cfg.VirtFactorMin, p.cfg.VirtFactorMax)
	}
	vc.rebuildGroundTruth()
	return vc
}

// rebuildGroundTruth derives the constant per-pair α-β parameters from the
// current placement and virtualization factors.
func (vc *VirtualCluster) rebuildGroundTruth() {
	n := len(vc.Hosts)
	if vc.pairBW == nil {
		vc.pairBW = mat.NewDense(n, n)
		vc.pairLat = mat.NewDense(n, n)
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			vc.pairBW.Set(i, j, vc.groundTruthBW(i, j))
			vc.pairLat.Set(i, j, vc.groundTruthLat(i, j))
		}
	}
}

// pairRand returns a deterministic per-pair unit-interval value so that
// pair jitter is stable across migrations of *other* VMs.
func (vc *VirtualCluster) pairRand(i, j, salt int) float64 {
	h := uint64(i)*0x9E37_79B9 + uint64(j)*0x85EB_CA6B + uint64(salt)*0xC2B2_AE35
	h ^= h >> 33
	h *= 0xFF51_AFD7_ED55_8CCD
	h ^= h >> 33
	return float64(h%1_000_000) / 1_000_000
}

func (vc *VirtualCluster) groundTruthBW(i, j int) float64 {
	p := vc.provider
	hi, hj := vc.Hosts[i], vc.Hosts[j]
	base := p.Topo.BottleneckCapacity(p.Topo.Route(hi, hj))
	if hi == hj {
		base = 4 * p.cfg.Tree.IntraRackBps // loop through the hypervisor switch
		if base == 0 {
			base = 4 * 1e9 / 8
		}
	}
	ri, rj := p.Topo.Node(hi).Rack, p.Topo.Node(hj).Rack
	f := p.rackPairFactor(ri, rj)
	jit := 1 + p.cfg.PairJitter*(2*vc.pairRand(i, j, 1)-1)
	return base * f * vc.vmFactor[i] * vc.vmFactor[j] * jit
}

func (vc *VirtualCluster) groundTruthLat(i, j int) float64 {
	p := vc.provider
	hi, hj := vc.Hosts[i], vc.Hosts[j]
	lat := p.cfg.BaseLatency
	if !p.Topo.SameRack(hi, hj) {
		lat += p.cfg.CrossRackLatency
	}
	jit := 1 + p.cfg.LatencyJitter*(2*vc.pairRand(i, j, 2)-1)
	return lat * jit
}

// Size returns the number of VMs.
func (vc *VirtualCluster) Size() int { return len(vc.Hosts) }

// Now returns the cluster-local clock.
func (vc *VirtualCluster) Now() float64 { return vc.now }

// Migrations returns how many VM migrations (regime changes) occurred.
func (vc *VirtualCluster) Migrations() int { return vc.migrations }

// OnMigration registers a hook invoked with the migrated VM index.
func (vc *VirtualCluster) OnMigration(f func(vm int)) { vc.migrationHook = f }

// SetFreezeDynamics disables volatility, spikes and migration when true —
// used by tests that need the pure constant component.
func (vc *VirtualCluster) SetFreezeDynamics(freeze bool) { vc.freezeDynamics = freeze }

// AdvanceTime moves the clock by dt seconds and stochastically triggers VM
// migrations at the configured rate.
func (vc *VirtualCluster) AdvanceTime(dt float64) {
	if dt < 0 {
		panic("cloud: negative time advance")
	}
	vc.now += dt
	if vc.freezeDynamics {
		return
	}
	perVMProb := vc.provider.cfg.MigrationRate * dt / 86400
	if perVMProb <= 0 {
		return
	}
	// A single migration check per call keeps cost linear in cluster size.
	for vm := range vc.Hosts {
		if stats.Bernoulli(vc.rng, perVMProb) {
			vc.migrate(vm)
		}
	}
}

// migrate re-places one VM on a random server and redraws its
// virtualization factor — the paper's "virtual machine is migrated to
// another rack" significant change.
func (vc *VirtualCluster) migrate(vm int) {
	p := vc.provider
	if p.used[vc.Hosts[vm]] > 0 {
		p.used[vc.Hosts[vm]]--
	}
	for {
		s := p.servers[vc.rng.Intn(len(p.servers))]
		if p.used[s] < p.cfg.SlotsPerServer {
			p.used[s]++
			vc.Hosts[vm] = s
			break
		}
	}
	vc.vmFactor[vm] = stats.Uniform(vc.rng, p.cfg.VirtFactorMin, p.cfg.VirtFactorMax)
	vc.rebuildGroundTruth()
	vc.migrations++
	if vc.migrationHook != nil {
		vc.migrationHook(vm)
	}
}

// PairPerf returns the instantaneous performance of the directed pair:
// ground truth perturbed by band volatility and occasional interference
// spikes.
func (vc *VirtualCluster) PairPerf(i, j int) netmodel.Link {
	if i == j {
		return netmodel.Link{Alpha: 0, Beta: math.Inf(1)}
	}
	bw := vc.pairBW.At(i, j)
	lat := vc.pairLat.At(i, j)
	if vc.freezeDynamics {
		return netmodel.Link{Alpha: lat, Beta: bw}
	}
	cfg := vc.provider.cfg
	bw *= clampPositive(1 + cfg.Volatility*vc.rng.NormFloat64())
	lat *= clampPositive(1 + cfg.Volatility*vc.rng.NormFloat64())
	if stats.Bernoulli(vc.rng, cfg.SpikeProb) {
		slow := 1 + cfg.SpikeAmp*vc.rng.Float64()
		bw /= slow
		lat *= slow
	}
	return netmodel.Link{Alpha: lat, Beta: bw}
}

// TruePerf returns the ground-truth constant performance matrix — the
// oracle the RPCA pipeline tries to recover. Only the synthetic cluster
// can provide this.
func (vc *VirtualCluster) TruePerf() *netmodel.PerfMatrix {
	n := vc.Size()
	pm := netmodel.NewPerfMatrix(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			pm.SetLink(i, j, netmodel.Link{Alpha: vc.pairLat.At(i, j), Beta: vc.pairBW.At(i, j)})
		}
	}
	return pm
}

// SnapshotPerf samples the instantaneous all-link performance — one
// performance matrix P_A(t) of paper §III.
func (vc *VirtualCluster) SnapshotPerf() *netmodel.PerfMatrix {
	n := vc.Size()
	pm := netmodel.NewPerfMatrix(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			pm.SetLink(i, j, vc.PairPerf(i, j))
		}
	}
	return pm
}

func clampPositive(x float64) float64 {
	if x < 0.05 {
		return 0.05
	}
	return x
}

func (vc *VirtualCluster) racksUsed() map[int]bool {
	out := make(map[int]bool)
	for _, h := range vc.Hosts {
		out[vc.provider.Topo.Node(h).Rack] = true
	}
	return out
}

// RackSpread returns the number of distinct racks hosting the cluster —
// larger clusters spread over more racks, which is why the paper sees
// bigger optimization gains at 196 instances than at 64 (Fig 8).
func (vc *VirtualCluster) RackSpread() int { return len(vc.racksUsed()) }
