package core

import (
	"context"
	"errors"
	"testing"

	"netconstant/internal/cancel"
	"netconstant/internal/cloud"
	"netconstant/internal/stats"
)

// TestAdvisorCalibrateCtxCancelled: a cancelled context must abort the
// advisor's calibrate-and-analyze path with a typed cancellation and
// leave no half-installed guidance.
func TestAdvisorCalibrateCtxCancelled(t *testing.T) {
	vc, err := cloud.NewProvider(cloud.ProviderConfig{Seed: 3}).Provision(8, 4)
	if err != nil {
		t.Fatal(err)
	}
	adv := NewAdvisor(vc, stats.NewRNG(5), AdvisorConfig{TimeStep: 3})
	ctx, stop := context.WithCancel(context.Background())
	stop()
	err = adv.CalibrateCtx(ctx)
	if !errors.Is(err, cancel.ErrCanceled) || !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want typed cancellation", err)
	}
	if adv.Constant() != nil || adv.Calibrations() != 0 {
		t.Error("cancelled calibration left partial advisor state installed")
	}
	// The advisor must still calibrate fine afterwards.
	if err := adv.Calibrate(); err != nil {
		t.Fatalf("post-cancel Calibrate: %v", err)
	}
	if adv.Constant() == nil {
		t.Error("guidance missing after successful calibration")
	}
}

// TestAdvisorAnalyzeCtxCancelled: cancellation must also reach the
// solver iterations when analyzing a pre-recorded trace.
func TestAdvisorAnalyzeCtxCancelled(t *testing.T) {
	vc, err := cloud.NewProvider(cloud.ProviderConfig{Seed: 3}).Provision(8, 4)
	if err != nil {
		t.Fatal(err)
	}
	tc := cloud.CalibrateTP(vc, stats.NewRNG(5), 3, 1, cloud.CalibrationConfig{})
	adv := NewAdvisor(vc, stats.NewRNG(6), AdvisorConfig{TimeStep: 3})
	ctx, stop := context.WithCancel(context.Background())
	stop()
	if err := adv.AnalyzeCalibrationCtx(ctx, tc); !errors.Is(err, cancel.ErrCanceled) {
		t.Fatalf("err = %v, want typed cancellation from the solver loop", err)
	}
}
