// Package core implements the paper's contribution: decoupling the
// constant component from dynamic cloud network performance with RPCA and
// using it to guide network-performance-aware optimizations (§III–IV).
//
// The central type is Advisor, which realizes Algorithm 1: calibrate a
// temporal performance matrix on a virtual cluster, run RPCA to obtain the
// constant component N_D and error component N_E, guide optimizations
// (FNF trees, greedy topology mapping) with N_D, judge the usefulness of
// optimization from Norm(N_E), monitor actual-vs-expected performance of
// the running operation, and re-calibrate when the difference exceeds the
// maintenance threshold.
package core

import (
	"fmt"
	"math"

	"netconstant/internal/mat"
	"netconstant/internal/netmodel"
	"netconstant/internal/rpca"
)

// Strategy identifies how the guidance performance matrix is obtained —
// the four comparison approaches of the paper's evaluation (§V-A).
type Strategy int

const (
	// Baseline applies no network awareness: binomial trees for
	// collectives, ring mapping for topology mapping (MPICH2 defaults).
	Baseline Strategy = iota
	// Heuristics uses the direct column average of a few measurements —
	// the ad-hoc approach of prior cloud work.
	Heuristics
	// RPCA uses the constant component recovered by robust PCA — the
	// paper's approach.
	RPCA
	// TopologyAware uses static topology knowledge (rack membership),
	// ignoring measured performance — the cluster-era comparison included
	// in the ns-2 simulations.
	TopologyAware
)

// String names the strategy as in the paper's figures.
func (s Strategy) String() string {
	switch s {
	case Baseline:
		return "Baseline"
	case Heuristics:
		return "Heuristics"
	case RPCA:
		return "RPCA"
	case TopologyAware:
		return "Topology-aware"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// HeuristicKind selects the direct-use estimator inside the Heuristics
// strategy. The paper reports similar results for all of them (§V-A,
// "Comparisons").
type HeuristicKind int

const (
	// HeuristicMean averages each link over the TP-matrix rows.
	HeuristicMean HeuristicKind = iota
	// HeuristicMin takes the best observation per link (optimistic).
	HeuristicMin
	// HeuristicEWMA exponentially weights recent observations.
	HeuristicEWMA
)

// String names the heuristic variant.
func (k HeuristicKind) String() string {
	switch k {
	case HeuristicMean:
		return "mean"
	case HeuristicMin:
		return "min"
	case HeuristicEWMA:
		return "ewma"
	default:
		return fmt.Sprintf("HeuristicKind(%d)", int(k))
	}
}

// HeuristicRow reduces a TP-matrix to a single row with the chosen
// estimator. better selects the per-link preference for HeuristicMin: for
// bandwidth bigger is better; for latency smaller is better.
func HeuristicRow(tp *netmodel.TPMatrix, kind HeuristicKind, biggerIsBetter bool) []float64 {
	steps := tp.Steps()
	width := tp.N * tp.N
	out := make([]float64, width)
	if steps == 0 {
		return out
	}
	m := tp.Matrix()
	switch kind {
	case HeuristicMin:
		copy(out, m.Row(0))
		for s := 1; s < steps; s++ {
			row := m.Row(s)
			for j, v := range row {
				if biggerIsBetter == (v > out[j]) {
					out[j] = v
				}
			}
		}
	case HeuristicEWMA:
		const alpha = 0.3
		copy(out, m.Row(0))
		for s := 1; s < steps; s++ {
			row := m.Row(s)
			for j, v := range row {
				out[j] = alpha*v + (1-alpha)*out[j]
			}
		}
	default: // HeuristicMean
		for s := 0; s < steps; s++ {
			row := m.Row(s)
			for j, v := range row {
				out[j] += v
			}
		}
		inv := 1 / float64(steps)
		for j := range out {
			out[j] *= inv
		}
	}
	return out
}

// Decomposition is the RPCA analysis of one TP-matrix.
type Decomposition struct {
	ConstantRow []float64 // the paper's P_D
	NormE       float64   // relative error norm ‖N_E‖/‖N_A‖ (L1)
	Iterations  int
	Converged   bool
	RankD       int
}

// DecomposeTP runs RPCA on a TP-matrix and extracts the constant row.
//
// Two deliberate adaptations for temporal performance matrices (documented
// in DESIGN.md):
//   - When opts.Lambda is zero, λ defaults to 1/√rows instead of the
//     literature's 1/√max(r,c). TP-matrices are extremely fat (time-step
//     rows × N² columns), where the square-matrix default makes the sparse
//     term so cheap that E absorbs broad structure and biases the constant
//     component.
//   - NormE is computed against the paper's §III definition of the
//     TE-matrix: N_E = N_A − N_D with N_D the row-constant matrix built
//     from the extracted row — not the solver's internal E, whose mass
//     depends on λ.
func DecomposeTP(tp *netmodel.TPMatrix, opts rpca.Options, extract rpca.ExtractMethod) (*Decomposition, error) {
	return DecomposeTPWith(rpca.NewSolver(), tp, opts, extract)
}

// DecomposeTPWith is DecomposeTP running on a caller-held solver, so
// repeated analyses of same-shaped TP-matrices (the advisor re-analyzes
// after every calibration and the Fig 5 sweep decomposes dozens of
// prefixes) reuse the iteration arena and warm-started SVT workspace
// instead of reallocating them.
func DecomposeTPWith(s *rpca.Solver, tp *netmodel.TPMatrix, opts rpca.Options, extract rpca.ExtractMethod) (*Decomposition, error) {
	a := tp.Matrix()
	if opts.Lambda == 0 && a.Rows() > 0 {
		opts.Lambda = 1 / math.Sqrt(float64(a.Rows()))
	}
	res, err := s.Decompose(a, opts)
	if err != nil {
		return nil, err
	}
	row := rpca.ConstantRow(res.D, extract)
	nd := rpca.ConstantMatrix(row, a.Rows())
	ne := a.Sub(nd)
	return &Decomposition{
		ConstantRow: row,
		NormE:       rpca.RelNorm(ne, a, rpca.NormL1, 0),
		Iterations:  res.Iterations,
		Converged:   res.Converged,
		RankD:       res.RankD,
	}, nil
}

// DecomposeTPMasked runs the masked IALM solver on a partially observed
// TP-matrix and extracts the constant row. mask is the rows×N² observation
// mask (1 = measured); nil falls back to the fully observed IALM path. The
// same fat-matrix λ default as DecomposeTP applies, and NormE is evaluated
// on the observed cells only — unobserved cells carry no evidence about
// the network's dynamism, so counting their (reconstructed) residual would
// understate it.
func DecomposeTPMasked(tp *netmodel.TPMatrix, mask *mat.Dense, opts rpca.IALMOptions, extract rpca.ExtractMethod) (*Decomposition, error) {
	return DecomposeTPMaskedWith(rpca.NewSolver(), tp, mask, opts, extract)
}

// DecomposeTPMaskedWith is DecomposeTPMasked on a caller-held solver (see
// DecomposeTPWith).
func DecomposeTPMaskedWith(s *rpca.Solver, tp *netmodel.TPMatrix, mask *mat.Dense, opts rpca.IALMOptions, extract rpca.ExtractMethod) (*Decomposition, error) {
	a := tp.Matrix()
	if opts.Lambda == 0 && a.Rows() > 0 {
		opts.Lambda = 1 / math.Sqrt(float64(a.Rows()))
	}
	res, err := s.DecomposeMasked(a, mask, opts)
	if err != nil {
		return nil, err
	}
	row := rpca.ConstantRow(res.D, extract)
	nd := rpca.ConstantMatrix(row, a.Rows())
	var num, den float64
	r, c := a.Dims()
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			if mask != nil && mask.At(i, j) < 0.5 {
				continue
			}
			num += math.Abs(a.At(i, j) - nd.At(i, j))
			den += math.Abs(a.At(i, j))
		}
	}
	normE := 0.0
	if den > 0 {
		normE = num / den
	}
	return &Decomposition{
		ConstantRow: row,
		NormE:       normE,
		Iterations:  res.Iterations,
		Converged:   res.Converged,
		RankD:       res.RankD,
	}, nil
}

// PerfFromRows assembles a performance matrix from constant latency and
// bandwidth rows (each of length N²).
func PerfFromRows(n int, latRow, bwRow []float64) *netmodel.PerfMatrix {
	return &netmodel.PerfMatrix{
		N:       n,
		Latency: netmodel.Devectorize(latRow, n),
		Bandwth: netmodel.Devectorize(bwRow, n),
	}
}

// Effectiveness grades Norm(N_E) into the paper's qualitative bands
// (§V-D3, §V-E): below ~0.1 optimizations gain >40%, around 0.2 they gain
// <20%, and beyond ~0.5 "the improvement of network performance aware
// optimizations becomes marginal".
type Effectiveness int

const (
	// Effective: the network is stable enough for large gains.
	Effective Effectiveness = iota
	// Moderate: gains shrink but RPCA still beats direct measurement use.
	Moderate
	// Marginal: the network is too dynamic; optimizations barely help.
	Marginal
)

// String names the grade.
func (e Effectiveness) String() string {
	switch e {
	case Effective:
		return "effective"
	case Moderate:
		return "moderate"
	default:
		return "marginal"
	}
}

// GradeEffectiveness maps Norm(N_E) to an Effectiveness band.
func GradeEffectiveness(normE float64) Effectiveness {
	switch {
	case normE < 0.2:
		return Effective
	case normE < 0.5:
		return Moderate
	default:
		return Marginal
	}
}

// oracleRow computes the "oracle" long-term row used by the Fig 5 accuracy
// sweep: the RPCA constant extracted from the *entire* TP-matrix.
func oracleRow(tp *netmodel.TPMatrix, opts rpca.Options, extract rpca.ExtractMethod) ([]float64, error) {
	d, err := DecomposeTP(tp, opts, extract)
	if err != nil {
		return nil, err
	}
	return d.ConstantRow, nil
}

// TimeStepAccuracy computes the paper's Fig 5 metric: the relative
// difference Norm(P_D) between the constant row predicted from only the
// first k rows and the oracle row from the whole matrix, for each k in
// steps.
func TimeStepAccuracy(tp *netmodel.TPMatrix, steps []int, opts rpca.Options, extract rpca.ExtractMethod) (map[int]float64, error) {
	oracle, err := oracleRow(tp, opts, extract)
	if err != nil {
		return nil, err
	}
	solver := rpca.NewSolver()
	out := make(map[int]float64, len(steps))
	for _, k := range steps {
		if k < 1 || k > tp.Steps() {
			return nil, fmt.Errorf("core: time step %d out of range [1,%d]", k, tp.Steps())
		}
		d, err := DecomposeTPWith(solver, tp.Head(k), opts, extract)
		if err != nil {
			return nil, err
		}
		out[k] = rpca.RelDiff(d.ConstantRow, oracle)
	}
	return out, nil
}

// WeightsTP converts latency and bandwidth TP-matrices into a TP-matrix of
// transfer-time weights for a fixed message size — used when the analysis
// should reflect the cost actually optimized.
func WeightsTP(lat, bw *netmodel.TPMatrix, msgBytes float64) *netmodel.TPMatrix {
	if lat.Steps() != bw.Steps() || lat.N != bw.N {
		panic("core: mismatched TP-matrices")
	}
	out := netmodel.NewTPMatrix(lat.N)
	for s := 0; s < lat.Steps(); s++ {
		pm := &netmodel.PerfMatrix{N: lat.N, Latency: lat.Snapshot(s), Bandwth: bw.Snapshot(s)}
		out.Append(lat.Times[s], pm.Weights(msgBytes))
	}
	return out
}
