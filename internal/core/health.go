package core

import (
	"fmt"

	"netconstant/internal/cloud"
)

// Confidence grades how much trust the advisor places in its current
// guidance, given the health of the calibration that produced it. It is
// orthogonal to Effectiveness: Effectiveness says whether the *network* is
// stable enough for optimizations to pay off; Confidence says whether the
// *measurements* were complete and clean enough to believe the analysis at
// all.
type Confidence int

const (
	// ConfidenceNone: the calibration is too damaged to trust any
	// measurement-guided strategy; fall back to the baseline.
	ConfidenceNone Confidence = iota
	// ConfidenceLow: enough signal survives for coarse heuristics, but the
	// RPCA constant component is not reliable.
	ConfidenceLow
	// ConfidenceReduced: the masked decomposition is usable but was
	// reconstructed through gaps; expect wider error bars.
	ConfidenceReduced
	// ConfidenceHigh: a clean, (nearly) fully observed calibration.
	ConfidenceHigh
)

// String names the confidence grade.
func (c Confidence) String() string {
	switch c {
	case ConfidenceHigh:
		return "high"
	case ConfidenceReduced:
		return "reduced"
	case ConfidenceLow:
		return "low"
	case ConfidenceNone:
		return "none"
	default:
		return fmt.Sprintf("Confidence(%d)", int(c))
	}
}

// CalibrationHealth summarizes the measurement quality of a temporal
// calibration — the inputs to the confidence grading ladder.
type CalibrationHealth struct {
	// Coverage is the fraction of off-diagonal TP-matrix cells that hold a
	// real measurement (1 for legacy fully-observed calibrations).
	Coverage float64
	// MeanQuality is the average per-cell quality score of the surviving
	// measurements.
	MeanQuality float64
	// OutlierRate is the fraction of cells whose probe repeats required MAD
	// rejection (outliers / total off-diagonal cells).
	OutlierRate float64
	// RetryExhaustion is the fraction of cells whose whole retry budget
	// failed, leaving the cell missing.
	RetryExhaustion float64
	// Converged reports whether the RPCA solvers hit their tolerance
	// before the iteration cap. Informational only: APG in particular
	// often exhausts its cap at tol 1e-7 while producing an accurate
	// decomposition, so convergence does not gate the confidence grade.
	Converged bool
	// Confidence is the grade derived from the fields above.
	Confidence Confidence
}

// AssessCalibration computes health metrics for a temporal calibration and
// grades them. converged is the RPCA convergence status of the analysis
// that consumed the calibration. A calibration without per-step accounting
// (legacy mode, replayed snapshots) is treated as fully observed.
func AssessCalibration(tc *cloud.TemporalCalibration, converged bool) CalibrationHealth {
	h := CalibrationHealth{Coverage: 1, MeanQuality: 1, Converged: converged}
	if tc != nil {
		h.Coverage = tc.Coverage()
		if len(tc.Steps) > 0 {
			n := tc.Latency.N
			cells := len(tc.Steps) * n * (n - 1)
			var q float64
			outliers, missing := 0, 0
			for _, cal := range tc.Steps {
				q += cal.MeanQuality()
				outliers += cal.Outliers
				missing += cal.Missing
			}
			h.MeanQuality = q / float64(len(tc.Steps))
			if cells > 0 {
				h.OutlierRate = float64(outliers) / float64(cells)
				h.RetryExhaustion = float64(missing) / float64(cells)
			}
		}
	}
	h.Confidence = gradeConfidence(h)
	return h
}

// gradeConfidence is the ladder: near-complete clean coverage earns High;
// moderate gaps (the masked solver's comfort zone) earn Reduced; heavy
// gaps leave only Low; beyond that the measurements are mostly noise.
func gradeConfidence(h CalibrationHealth) Confidence {
	switch {
	case h.Coverage >= 0.95 && h.RetryExhaustion <= 0.05:
		return ConfidenceHigh
	case h.Coverage >= 0.75:
		return ConfidenceReduced
	case h.Coverage >= 0.40:
		return ConfidenceLow
	default:
		return ConfidenceNone
	}
}

// FallbackStrategy maps a requested strategy through the confidence
// ladder: RPCA needs at least Reduced confidence, Heuristics at least Low,
// and anything below that degrades to the baseline. Strategies that do not
// consume measurements (Baseline, TopologyAware) pass through unchanged.
func FallbackStrategy(s Strategy, c Confidence) Strategy {
	switch s {
	case RPCA:
		switch {
		case c >= ConfidenceReduced:
			return RPCA
		case c >= ConfidenceLow:
			return Heuristics
		default:
			return Baseline
		}
	case Heuristics:
		if c >= ConfidenceLow {
			return Heuristics
		}
		return Baseline
	default:
		return s
	}
}
