package core

import (
	"math"
	"testing"

	"netconstant/internal/cloud"
	"netconstant/internal/faults"
	"netconstant/internal/netmodel"
	"netconstant/internal/stats"
)

// relErrBW is the mean per-link relative bandwidth error of an estimate
// against the ground-truth performance matrix.
func relErrBW(truth, got *netmodel.PerfMatrix, n int) float64 {
	var relErr float64
	count := 0
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			tb := truth.Bandwth.At(i, j)
			relErr += math.Abs(got.Bandwth.At(i, j)-tb) / tb
			count++
		}
	}
	return relErr / float64(count)
}

func TestConfidenceGradingAndFallback(t *testing.T) {
	cases := []struct {
		h    CalibrationHealth
		want Confidence
	}{
		{CalibrationHealth{Coverage: 1, Converged: true}, ConfidenceHigh},
		{CalibrationHealth{Coverage: 0.97, RetryExhaustion: 0.02, Converged: true}, ConfidenceHigh},
		{CalibrationHealth{Coverage: 0.97, Converged: false}, ConfidenceHigh},
		{CalibrationHealth{Coverage: 0.97, RetryExhaustion: 0.2, Converged: true}, ConfidenceReduced},
		{CalibrationHealth{Coverage: 0.8, Converged: true}, ConfidenceReduced},
		{CalibrationHealth{Coverage: 0.5, Converged: true}, ConfidenceLow},
		{CalibrationHealth{Coverage: 0.1, Converged: true}, ConfidenceNone},
	}
	for _, c := range cases {
		if got := gradeConfidence(c.h); got != c.want {
			t.Errorf("grade(%+v) = %v, want %v", c.h, got, c.want)
		}
	}

	fb := []struct {
		s    Strategy
		c    Confidence
		want Strategy
	}{
		{RPCA, ConfidenceHigh, RPCA},
		{RPCA, ConfidenceReduced, RPCA},
		{RPCA, ConfidenceLow, Heuristics},
		{RPCA, ConfidenceNone, Baseline},
		{Heuristics, ConfidenceLow, Heuristics},
		{Heuristics, ConfidenceNone, Baseline},
		{Baseline, ConfidenceNone, Baseline},
		{TopologyAware, ConfidenceNone, TopologyAware},
	}
	for _, c := range fb {
		if got := FallbackStrategy(c.s, c.c); got != c.want {
			t.Errorf("fallback(%v, %v) = %v, want %v", c.s, c.c, got, c.want)
		}
	}

	for c, want := range map[Confidence]string{
		ConfidenceHigh: "high", ConfidenceReduced: "reduced",
		ConfidenceLow: "low", ConfidenceNone: "none",
	} {
		if c.String() != want {
			t.Errorf("Confidence string %v", c)
		}
	}
}

// TestGracefulDegradationUnderFaults is the end-to-end acceptance check:
// a calibration run under ≥20% probe loss plus a transient rack blackout
// must still complete with finite cost, recover the constant component to
// within 2× the fault-free error, and report reduced confidence while
// still producing guidance.
func TestGracefulDegradationUnderFaults(t *testing.T) {
	const n = 8
	cfg := AdvisorConfig{
		Calibration: cloud.CalibrationConfig{Resilient: true},
	}

	// Fault-free resilient baseline.
	_, vc := testCluster(t, n, 40)
	adv0 := NewAdvisor(vc, stats.NewRNG(41), cfg)
	if err := adv0.Calibrate(); err != nil {
		t.Fatal(err)
	}
	truth := vc.TruePerf()
	baseErr := relErrBW(truth, adv0.Constant(), n)
	baseCost := adv0.CalibrationCost()
	if adv0.Confidence() != ConfidenceHigh {
		t.Fatalf("fault-free confidence = %v, health %+v", adv0.Confidence(), adv0.Health())
	}

	// Identically seeded cluster, now wrapped with faults: 25% probe loss
	// and a rack blackout. Retries stretch the faulted run to roughly 3×
	// the fault-free cost, so a window of 1.5× that cost covers about half
	// of it.
	p2, vc2 := testCluster(t, n, 40)
	rack := p2.Topo.Node(vc2.Hosts[0]).Rack
	fc := faults.Wrap(vc2, faults.Scenario{
		Seed:      42,
		ProbeLoss: 0.25,
		Blackouts: []faults.Blackout{
			faults.RackBlackout(p2.Topo, vc2.Hosts, rack, 0.1*baseCost, 1.5*baseCost),
		},
	})
	adv := NewAdvisor(fc, stats.NewRNG(41), cfg)
	if err := adv.Calibrate(); err != nil {
		t.Fatal(err)
	}

	cost := adv.CalibrationCost()
	if math.IsInf(cost, 0) || math.IsNaN(cost) || cost <= 0 {
		t.Fatalf("faulted calibration cost %v", cost)
	}
	tc := adv.LastCalibration()
	if tc.Mask == nil || tc.Coverage() >= 1 {
		t.Fatalf("faulted calibration should have gaps (coverage %v)", tc.Coverage())
	}

	faultErr := relErrBW(truth, adv.Constant(), n)
	if faultErr > 2*baseErr {
		t.Errorf("faulted constant error %.4f > 2× fault-free %.4f", faultErr, baseErr)
	}
	if adv.Confidence() >= ConfidenceHigh {
		t.Errorf("confidence under faults = %v, want below high (health %+v)",
			adv.Confidence(), adv.Health())
	}
	if adv.Confidence() <= ConfidenceNone {
		t.Errorf("confidence collapsed to none; health %+v", adv.Health())
	}

	// Guidance is still produced, through the fallback ladder if needed.
	tree := adv.PlanTree(RPCA, 0, 1<<20, nil, nil)
	if tree == nil {
		t.Fatal("no guidance tree under faults")
	}
	if s := adv.EffectiveStrategy(RPCA); s == Baseline {
		t.Errorf("RPCA degraded all the way to baseline; health %+v", adv.Health())
	}
	t.Logf("baseline err %.4f cost %.0f; faulted err %.4f cost %.0f coverage %.3f confidence %v",
		baseErr, baseCost, faultErr, cost, tc.Coverage(), adv.Confidence())
}

// TestObserveRegimeChange: sustained drift below the spike threshold must
// still trigger a re-calibration once the divergence EWMA stays above
// RegimeThreshold for RegimeWindow observations.
func TestObserveRegimeChange(t *testing.T) {
	_, vc := testCluster(t, 6, 50)
	adv := NewAdvisor(vc, stats.NewRNG(51), AdvisorConfig{Threshold: 1.0})
	if err := adv.Calibrate(); err != nil {
		t.Fatal(err)
	}

	// rel = 0.2: EWMA tops out at 0.2 < RegimeThreshold (0.5) — never fires.
	for k := 0; k < 20; k++ {
		trig, err := adv.Observe(1, 1.2)
		if err != nil {
			t.Fatal(err)
		}
		if trig {
			t.Fatal("mild drift should not trigger")
		}
	}
	if adv.Recalibrations() != 0 {
		t.Fatal("unexpected recalibration")
	}

	// rel = 0.8 (still below the 1.0 spike threshold): the EWMA crosses 0.5
	// and holds, so the regime detector must fire within a few observations.
	fired := false
	for k := 0; k < 15 && !fired; k++ {
		trig, err := adv.Observe(1, 1.8)
		if err != nil {
			t.Fatal(err)
		}
		fired = trig
	}
	if !fired {
		t.Fatal("sustained drift never triggered a regime re-calibration")
	}
	if adv.Recalibrations() != 1 {
		t.Errorf("recalibrations %d", adv.Recalibrations())
	}
	if adv.DivergenceEWMA() != 0 {
		t.Error("EWMA should reset after re-calibration")
	}
}
