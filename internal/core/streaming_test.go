package core

import (
	"context"
	"errors"
	"math"
	"testing"

	"netconstant/internal/stats"
)

// streamAdvisor calibrates a small cluster and opens a streaming session.
func streamAdvisor(t *testing.T, n int, cfg AdvisorConfig) *Advisor {
	t.Helper()
	_, vc := testCluster(t, n, 40)
	adv := NewAdvisor(vc, stats.NewRNG(4), cfg)
	if err := adv.Calibrate(); err != nil {
		t.Fatal(err)
	}
	if err := adv.BeginStreaming(); err != nil {
		t.Fatal(err)
	}
	return adv
}

func TestAdvisorStreamingLifecycle(t *testing.T) {
	adv := streamAdvisor(t, 6, AdvisorConfig{})
	if !adv.StreamingActive() {
		t.Fatal("session not active after BeginStreaming")
	}
	if adv.StreamingConstant() == nil {
		t.Fatal("no streaming constant")
	}
	// A fresh full calibration supersedes the session.
	if err := adv.Calibrate(); err != nil {
		t.Fatal(err)
	}
	if adv.StreamingActive() {
		t.Fatal("session survived a full calibration")
	}
	if adv.StreamingConstant() != nil {
		t.Fatal("streaming constant after session end")
	}
	if err := adv.PartialResolve(); !errors.Is(err, ErrNotStreaming) {
		t.Fatalf("PartialResolve err = %v, want ErrNotStreaming", err)
	}
	if err := adv.StreamPair(0, 1, nil, nil); !errors.Is(err, ErrNotStreaming) {
		t.Fatalf("StreamPair err = %v, want ErrNotStreaming", err)
	}
}

func TestAdvisorStreamPairAndPartialResolve(t *testing.T) {
	adv := streamAdvisor(t, 6, AdvisorConfig{})
	rows := adv.LastCalibration().Latency.Steps()
	lat := make([]float64, rows)
	bw := make([]float64, rows)
	for i := range lat {
		lat[i] = 5e-3 // a migrated pair: much slower latency,
		bw[i] = 1e6   // much thinner pipe
	}
	for _, pair := range [][2]int{{0, 1}, {1, 0}, {2, 5}} {
		if err := adv.StreamPair(pair[0], pair[1], lat, bw); err != nil {
			t.Fatal(err)
		}
	}
	if err := adv.StreamPair(9, 0, lat, bw); err == nil {
		t.Fatal("out-of-cluster pair accepted")
	}

	before := adv.Constant()
	if err := adv.PartialResolve(); err != nil {
		t.Fatal(err)
	}
	if adv.PartialResolves() != 1 {
		t.Fatalf("partial resolves = %d, want 1", adv.PartialResolves())
	}
	after := adv.Constant()
	if before == after {
		t.Fatal("partial re-solve did not install fresh guidance")
	}
	// The re-measured column must have pulled the constant toward the new
	// regime for that pair.
	if after.Latency.At(0, 1) <= before.Latency.At(0, 1) {
		t.Errorf("latency constant for the slowed pair did not increase: %v -> %v",
			before.Latency.At(0, 1), after.Latency.At(0, 1))
	}
	if adv.NormE() < 0 || adv.NormE() > 1 {
		t.Errorf("NormE out of range: %v", adv.NormE())
	}
}

// TestAdvisorObserveRegimeUsesPartialResolve: sustained sub-threshold
// drift with a session open must trigger a partial re-solve, not a full
// re-calibration.
func TestAdvisorObserveRegimeUsesPartialResolve(t *testing.T) {
	adv := streamAdvisor(t, 6, AdvisorConfig{Threshold: 1.0, RegimeWindow: 3})
	cals := adv.Calibrations()
	triggered := false
	for i := 0; i < 12 && !triggered; i++ {
		var err error
		// 80% persistent divergence: above RegimeThreshold (0.5), below
		// the 100% spike threshold.
		triggered, err = adv.Observe(1.0, 1.8)
		if err != nil {
			t.Fatal(err)
		}
	}
	if !triggered {
		t.Fatal("regime detector never triggered")
	}
	if adv.PartialResolves() != 1 {
		t.Fatalf("partial resolves = %d, want 1", adv.PartialResolves())
	}
	if adv.Calibrations() != cals {
		t.Fatalf("regime trigger ran a full calibration (%d -> %d)", cals, adv.Calibrations())
	}
	if !adv.StreamingActive() {
		t.Fatal("session closed by a partial re-solve")
	}
	if adv.DivergenceEWMA() != 0 {
		t.Fatal("partial re-solve did not reset the divergence EWMA")
	}

	// A hard spike still forces the full calibrate and closes the session.
	triggered, err := adv.Observe(1.0, 5.0)
	if err != nil {
		t.Fatal(err)
	}
	if !triggered || adv.Calibrations() != cals+1 {
		t.Fatalf("spike: triggered=%v calibrations %d (want %d)", triggered, adv.Calibrations(), cals+1)
	}
	if adv.StreamingActive() {
		t.Fatal("session survived a spike-triggered full calibration")
	}
}

// TestAdvisorVerifyStreaming pins the streaming session to the batch
// differential oracle at the acceptance tolerance.
func TestAdvisorVerifyStreaming(t *testing.T) {
	adv := streamAdvisor(t, 6, AdvisorConfig{})
	rows := adv.LastCalibration().Latency.Steps()
	lat := make([]float64, rows)
	bw := make([]float64, rows)
	for i := range lat {
		lat[i] = 300e-6
		bw[i] = 15e6
	}
	if err := adv.StreamPair(3, 4, lat, bw); err != nil {
		t.Fatal(err)
	}
	agLat, agBw, err := adv.VerifyStreaming()
	if err != nil {
		t.Fatal(err)
	}
	for _, ag := range []struct {
		name string
		rel  float64
	}{
		{"latency D", agLat.RelFroD}, {"latency constant", agLat.ConstantRel},
		{"bandwidth D", agBw.RelFroD}, {"bandwidth constant", agBw.ConstantRel},
	} {
		if math.IsNaN(ag.rel) || ag.rel > 1e-10 {
			t.Errorf("%s disagreement %.3e (want <= 1e-10)", ag.name, ag.rel)
		}
	}
}

func TestAdvisorBeginStreamingErrors(t *testing.T) {
	_, vc := testCluster(t, 4, 41)
	adv := NewAdvisor(vc, stats.NewRNG(5), AdvisorConfig{})
	if err := adv.BeginStreaming(); err == nil {
		t.Fatal("BeginStreaming before calibration did not error")
	}
	if err := adv.Calibrate(); err != nil {
		t.Fatal(err)
	}
	ctx, cancelFn := context.WithCancel(context.Background())
	cancelFn()
	if err := adv.BeginStreamingCtx(ctx); err == nil {
		t.Fatal("cancelled BeginStreamingCtx did not error")
	}
	if adv.StreamingActive() {
		t.Fatal("failed BeginStreaming left a session open")
	}
}
