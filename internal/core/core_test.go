package core

import (
	"context"
	"math"
	"testing"

	"netconstant/internal/cloud"
	"netconstant/internal/mat"
	"netconstant/internal/mpi"
	"netconstant/internal/netmodel"
	"netconstant/internal/rpca"
	"netconstant/internal/stats"
	"netconstant/internal/topo"
)

func testCluster(t *testing.T, n int, seed int64) (*cloud.Provider, *cloud.VirtualCluster) {
	t.Helper()
	p := cloud.NewProvider(cloud.ProviderConfig{
		Tree: topo.TreeConfig{Racks: 4, ServersPerRack: 8},
		Seed: seed,
	})
	vc, err := p.Provision(n, seed+1)
	if err != nil {
		t.Fatal(err)
	}
	return p, vc
}

func TestStrategyStrings(t *testing.T) {
	for s, want := range map[Strategy]string{
		Baseline: "Baseline", Heuristics: "Heuristics", RPCA: "RPCA", TopologyAware: "Topology-aware",
	} {
		if s.String() != want {
			t.Errorf("%d -> %s", s, s.String())
		}
	}
	if Strategy(9).String() == "" || HeuristicKind(9).String() == "" {
		t.Error("unknown strings")
	}
	for k, want := range map[HeuristicKind]string{HeuristicMean: "mean", HeuristicMin: "min", HeuristicEWMA: "ewma"} {
		if k.String() != want {
			t.Errorf("kind %v", k)
		}
	}
}

func TestHeuristicRow(t *testing.T) {
	tp := netmodel.NewTPMatrix(1)
	tp.Append(0, mat.FromRows([][]float64{{2}}))
	tp.Append(1, mat.FromRows([][]float64{{6}}))
	if got := HeuristicRow(tp, HeuristicMean, true)[0]; got != 4 {
		t.Errorf("mean %v", got)
	}
	if got := HeuristicRow(tp, HeuristicMin, true)[0]; got != 6 {
		t.Errorf("min (bigger better) %v", got)
	}
	if got := HeuristicRow(tp, HeuristicMin, false)[0]; got != 2 {
		t.Errorf("min (smaller better) %v", got)
	}
	ewma := HeuristicRow(tp, HeuristicEWMA, true)[0]
	if math.Abs(ewma-(0.3*6+0.7*2)) > 1e-12 {
		t.Errorf("ewma %v", ewma)
	}
	if HeuristicRow(netmodel.NewTPMatrix(1), HeuristicMean, true)[0] != 0 {
		t.Error("empty TP heuristic")
	}
}

func TestGradeEffectiveness(t *testing.T) {
	if GradeEffectiveness(0.1) != Effective || GradeEffectiveness(0.3) != Moderate || GradeEffectiveness(0.7) != Marginal {
		t.Error("grading")
	}
	if Effective.String() != "effective" || Moderate.String() != "moderate" || Marginal.String() != "marginal" {
		t.Error("strings")
	}
}

func TestAdvisorCalibrateAndRecover(t *testing.T) {
	_, vc := testCluster(t, 8, 10)
	rng := stats.NewRNG(1)
	adv := NewAdvisor(vc, rng, AdvisorConfig{})
	if adv.Constant() != nil {
		t.Error("constant before calibration")
	}
	if err := adv.Calibrate(); err != nil {
		t.Fatal(err)
	}
	if adv.Calibrations() != 1 {
		t.Error("calibration count")
	}
	if adv.CalibrationCost() <= 0 {
		t.Error("cost")
	}
	if adv.LastCalibration() == nil {
		t.Error("last calibration")
	}

	// The constant component should approximate the ground truth well —
	// much better than a single noisy snapshot would.
	truth := vc.TruePerf()
	con := adv.Constant()
	var relErr float64
	count := 0
	for i := 0; i < 8; i++ {
		for j := 0; j < 8; j++ {
			if i == j {
				continue
			}
			tb := truth.Bandwth.At(i, j)
			cb := con.Bandwth.At(i, j)
			relErr += math.Abs(cb-tb) / tb
			count++
		}
	}
	relErr /= float64(count)
	if relErr > 0.10 {
		t.Errorf("constant component mean rel error %.3f vs ground truth", relErr)
	}

	// NormE should land in the stable band for default dynamics (EC2-like
	// ≈ 0.1 per the paper).
	if adv.NormE() <= 0 || adv.NormE() > 0.35 {
		t.Errorf("NormE %.3f outside plausible band", adv.NormE())
	}
	if adv.Effectiveness() == Marginal {
		t.Error("default dynamics should not be graded marginal")
	}
}

func TestAdvisorGuidanceAndTrees(t *testing.T) {
	p, vc := testCluster(t, 8, 20)
	rng := stats.NewRNG(2)
	adv := NewAdvisor(vc, rng, AdvisorConfig{})
	if err := adv.Calibrate(); err != nil {
		t.Fatal(err)
	}
	if adv.GuidancePerf(RPCA) == nil || adv.GuidancePerf(Heuristics) == nil {
		t.Fatal("guidance matrices missing")
	}
	if adv.GuidancePerf(Baseline) != nil || adv.GuidancePerf(TopologyAware) != nil {
		t.Error("non-measurement strategies should have nil guidance")
	}
	msg := 8.0 * (1 << 20)
	for _, s := range []Strategy{Baseline, Heuristics, RPCA, TopologyAware} {
		tr := adv.PlanTree(s, 0, msg, p.Topo, vc.Hosts)
		if err := tr.Validate(); err != nil {
			t.Errorf("%v tree invalid: %v", s, err)
		}
	}
	// TopologyAware without topology info degrades to binomial.
	tr := adv.PlanTree(TopologyAware, 0, msg, nil, nil)
	bin := mpi.BinomialTree(8, 0)
	for i := range tr.Parent {
		if tr.Parent[i] != bin.Parent[i] {
			t.Error("fallback should be binomial")
			break
		}
	}
}

func TestAdvisorExpectedTimeAndObserve(t *testing.T) {
	_, vc := testCluster(t, 6, 30)
	rng := stats.NewRNG(3)
	adv := NewAdvisor(vc, rng, AdvisorConfig{Threshold: 0.5})
	if !math.IsNaN(adv.ExpectedTime(mpi.BinomialTree(6, 0), mpi.Broadcast, 100)) {
		t.Error("expected time before calibration should be NaN")
	}
	if err := adv.Calibrate(); err != nil {
		t.Fatal(err)
	}
	tr := adv.PlanTree(RPCA, 0, 1<<20, nil, nil)
	exp := adv.ExpectedTime(tr, mpi.Broadcast, 1<<20)
	if exp <= 0 {
		t.Fatalf("expected time %v", exp)
	}
	// Within threshold: no recalibration.
	trig, err := adv.Observe(exp, exp*1.2)
	if err != nil || trig {
		t.Error("should not trigger at 20% difference")
	}
	// Beyond threshold: recalibrates.
	trig, err = adv.Observe(exp, exp*2)
	if err != nil {
		t.Fatal(err)
	}
	if !trig || adv.Recalibrations() != 1 || adv.Calibrations() != 2 {
		t.Errorf("trigger=%v recal=%d cal=%d", trig, adv.Recalibrations(), adv.Calibrations())
	}
	// Degenerate expected values are ignored.
	if trig, _ := adv.Observe(0, 5); trig {
		t.Error("zero expected should not trigger")
	}
	if trig, _ := adv.Observe(math.NaN(), 5); trig {
		t.Error("NaN expected should not trigger")
	}
}

func TestAdvisorRPCABeatsHeuristicsOnSpikyData(t *testing.T) {
	// Construct a replay trace with heavy sparse spikes: the column mean is
	// polluted, the RPCA constant is not.
	_, vc := testCluster(t, 8, 40)
	tr := cloud.Record(vc, 9*60, 60) // 10 snapshots
	rng := stats.NewRNG(4)
	tr.InjectNoise(rng, 0, 0.25, 4) // strong sparse spikes
	truth := vc.TruePerf()

	rc := cloud.NewReplay(tr)
	tc := cloud.SnapshotTP(rc, 10, 60)
	adv := NewAdvisor(rc, stats.NewRNG(5), AdvisorConfig{})
	if err := adv.AnalyzeCalibration(tc); err != nil {
		t.Fatal(err)
	}
	errOf := func(pm *netmodel.PerfMatrix) float64 {
		var e float64
		for i := 0; i < 8; i++ {
			for j := 0; j < 8; j++ {
				if i != j {
					e += math.Abs(pm.Bandwth.At(i, j)-truth.Bandwth.At(i, j)) / truth.Bandwth.At(i, j)
				}
			}
		}
		return e
	}
	rpcaErr := errOf(adv.Constant())
	heurErr := errOf(adv.HeuristicPerf())
	if rpcaErr >= heurErr {
		t.Errorf("RPCA error %.3f should beat heuristics %.3f under sparse spikes", rpcaErr, heurErr)
	}
}

func TestTimeStepAccuracyDecreases(t *testing.T) {
	// Fig 5 shape: more calibration rows → smaller relative difference to
	// the oracle.
	_, vc := testCluster(t, 6, 50)
	tc := cloud.SnapshotTP(vc, 20, 60)
	acc, err := TimeStepAccuracy(tc.Bandwidth, []int{2, 5, 10, 20}, rpca.Options{}, rpca.ExtractMean)
	if err != nil {
		t.Fatal(err)
	}
	if acc[20] > acc[2] {
		t.Errorf("accuracy should improve with time step: %v", acc)
	}
	if acc[20] > 1e-6 {
		t.Errorf("full-matrix prediction should match oracle, got %v", acc[20])
	}
	if _, err := TimeStepAccuracy(tc.Bandwidth, []int{0}, rpca.Options{}, rpca.ExtractMean); err == nil {
		t.Error("time step 0 should error")
	}
	if _, err := TimeStepAccuracy(tc.Bandwidth, []int{99}, rpca.Options{}, rpca.ExtractMean); err == nil {
		t.Error("time step beyond rows should error")
	}
}

func TestWeightsTP(t *testing.T) {
	lat := netmodel.NewTPMatrix(2)
	bw := netmodel.NewTPMatrix(2)
	l := mat.NewDense(2, 2)
	l.Set(0, 1, 1)
	b := mat.NewDense(2, 2)
	b.Set(0, 1, 10)
	lat.Append(0, l)
	bw.Append(0, b)
	w := WeightsTP(lat, bw, 100)
	if got := w.Snapshot(0).At(0, 1); math.Abs(got-11) > 1e-12 {
		t.Errorf("weight %v", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("mismatch should panic")
		}
	}()
	WeightsTP(lat, netmodel.NewTPMatrix(3), 100)
}

func TestDecomposeTPEmptyErrors(t *testing.T) {
	if _, err := DecomposeTP(netmodel.NewTPMatrix(2), rpca.Options{}, rpca.ExtractMean); err == nil {
		t.Error("empty TP should error")
	}
}

// TestAdvisorSeedRobustness: the recovered constant beats the single worst
// snapshot for several independent clusters — the paper's core premise
// should not depend on a lucky seed.
func TestAdvisorSeedRobustness(t *testing.T) {
	for _, seed := range []int64{100, 200, 300} {
		_, vc := testCluster(t, 8, seed)
		adv := NewAdvisor(vc, stats.NewRNG(seed+1), AdvisorConfig{})
		if err := adv.Calibrate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		truth := vc.TruePerf()
		var rpcaErr float64
		for i := 0; i < 8; i++ {
			for j := 0; j < 8; j++ {
				if i != j {
					tb := truth.Bandwth.At(i, j)
					rpcaErr += math.Abs(adv.Constant().Bandwth.At(i, j)-tb) / tb
				}
			}
		}
		rpcaErr /= 56
		if rpcaErr > 0.12 {
			t.Errorf("seed %d: constant recovery error %.3f", seed, rpcaErr)
		}
	}
}

// TestAdvisorRecalibratorHook: an installed recalibrator owns every
// Observe-triggered full calibration (the daemon's memo/journal path),
// and clearing it restores the direct CalibrateCtx route.
func TestAdvisorRecalibratorHook(t *testing.T) {
	_, vc := testCluster(t, 6, 31)
	adv := NewAdvisor(vc, stats.NewRNG(4), AdvisorConfig{Threshold: 0.5})
	if err := adv.Calibrate(); err != nil {
		t.Fatal(err)
	}
	calsBefore := adv.Calibrations()
	hooked := 0
	adv.SetRecalibrator(func(ctx context.Context) error {
		hooked++
		return nil
	})
	tr := adv.PlanTree(RPCA, 0, 1<<20, nil, nil)
	exp := adv.ExpectedTime(tr, mpi.Broadcast, 1<<20)
	trig, err := adv.ObserveCtx(context.Background(), exp, exp*3)
	if err != nil || !trig {
		t.Fatalf("spike should trigger maintenance (trig=%v err=%v)", trig, err)
	}
	if hooked != 1 {
		t.Fatalf("hook ran %d times, want 1", hooked)
	}
	if adv.Calibrations() != calsBefore {
		t.Fatalf("hooked maintenance must not run the direct calibration path (%d -> %d)", calsBefore, adv.Calibrations())
	}
	adv.SetRecalibrator(nil)
	if trig, err = adv.Observe(exp, exp*3); err != nil || !trig {
		t.Fatalf("direct path after clearing hook (trig=%v err=%v)", trig, err)
	}
	if adv.Calibrations() != calsBefore+1 {
		t.Fatalf("direct maintenance should calibrate (%d -> %d)", calsBefore, adv.Calibrations())
	}
}
