package core

import (
	"math"
	"math/rand"

	"netconstant/internal/cloud"
	"netconstant/internal/mpi"
	"netconstant/internal/netmodel"
	"netconstant/internal/rpca"
	"netconstant/internal/topo"
)

// AdvisorConfig tunes the Advisor. Zero values select the paper's default
// experimental settings: time step 10, threshold 100%, L1 effectiveness
// norm, mean extraction.
type AdvisorConfig struct {
	// TimeStep is the number of calibration rows in the TP-matrix.
	TimeStep int
	// Threshold is the maintenance threshold of Algorithm 1 as a fraction
	// (1.0 = the paper's 100% default): re-calibrate when
	// |t − t′| / t′ ≥ Threshold.
	Threshold float64
	// Gap is the idle time between successive calibration rows, seconds.
	Gap float64
	// Calibration configures the measurement procedure.
	Calibration cloud.CalibrationConfig
	// RPCAOpts configures the solver (zero value = literature defaults).
	RPCAOpts rpca.Options
	// Extract selects the constant-row extraction method.
	Extract rpca.ExtractMethod
	// Heuristic selects the direct-use estimator for the Heuristics
	// strategy.
	Heuristic HeuristicKind
}

func (c *AdvisorConfig) applyDefaults() {
	if c.TimeStep == 0 {
		c.TimeStep = 10
	}
	if c.Threshold == 0 {
		c.Threshold = 1.0
	}
}

// Advisor binds the RPCA pipeline to a cluster and implements the
// calibrate → decompose → guide → monitor → re-calibrate loop of
// Algorithm 1.
type Advisor struct {
	cluster cloud.Cluster
	cfg     AdvisorConfig
	rng     *rand.Rand

	constant  *netmodel.PerfMatrix // P_D assembled from the two constant rows
	heuristic *netmodel.PerfMatrix // the Heuristics strategy's estimate
	normE     float64              // Norm(N_E) from the bandwidth TP-matrix

	calibrations  int
	totalCalCost  float64
	lastCal       *cloud.TemporalCalibration
	recalibraions int
}

// NewAdvisor creates an advisor; call Calibrate before asking for
// guidance.
func NewAdvisor(c cloud.Cluster, rng *rand.Rand, cfg AdvisorConfig) *Advisor {
	cfg.applyDefaults()
	return &Advisor{cluster: c, cfg: cfg, rng: rng}
}

// Calibrate measures the TP-matrix and runs the RPCA analysis (Algorithm 1
// lines 1–2). It returns the error of the RPCA solver, if any.
func (a *Advisor) Calibrate() error {
	tc := cloud.CalibrateTP(a.cluster, a.rng, a.cfg.TimeStep, a.cfg.Gap, a.cfg.Calibration)
	a.lastCal = tc
	a.calibrations++
	a.totalCalCost += tc.TotalCost
	return a.analyze(tc)
}

// AnalyzeCalibration installs a pre-recorded temporal calibration (e.g.
// from a replayed trace) instead of measuring a fresh one.
func (a *Advisor) AnalyzeCalibration(tc *cloud.TemporalCalibration) error {
	a.lastCal = tc
	a.calibrations++
	a.totalCalCost += tc.TotalCost
	return a.analyze(tc)
}

func (a *Advisor) analyze(tc *cloud.TemporalCalibration) error {
	latD, err := DecomposeTP(tc.Latency, a.cfg.RPCAOpts, a.cfg.Extract)
	if err != nil {
		return err
	}
	bwD, err := DecomposeTP(tc.Bandwidth, a.cfg.RPCAOpts, a.cfg.Extract)
	if err != nil {
		return err
	}
	n := tc.Latency.N
	a.constant = PerfFromRows(n, latD.ConstantRow, bwD.ConstantRow)
	a.normE = bwD.NormE
	a.heuristic = PerfFromRows(n,
		HeuristicRow(tc.Latency, a.cfg.Heuristic, false),
		HeuristicRow(tc.Bandwidth, a.cfg.Heuristic, true))
	return nil
}

// Constant returns the RPCA constant-component performance matrix (nil
// before the first calibration).
func (a *Advisor) Constant() *netmodel.PerfMatrix { return a.constant }

// HeuristicPerf returns the direct-use estimate for the Heuristics
// strategy.
func (a *Advisor) HeuristicPerf() *netmodel.PerfMatrix { return a.heuristic }

// NormE returns the relative error norm of the last analysis — the
// paper's effectiveness indicator.
func (a *Advisor) NormE() float64 { return a.normE }

// Effectiveness grades the last NormE.
func (a *Advisor) Effectiveness() Effectiveness { return GradeEffectiveness(a.normE) }

// Calibrations returns how many full calibrations have run.
func (a *Advisor) Calibrations() int { return a.calibrations }

// Recalibrations returns how many were triggered by the monitor.
func (a *Advisor) Recalibrations() int { return a.recalibraions }

// CalibrationCost returns the cumulative cluster time spent calibrating.
func (a *Advisor) CalibrationCost() float64 { return a.totalCalCost }

// LastCalibration exposes the most recent temporal calibration.
func (a *Advisor) LastCalibration() *cloud.TemporalCalibration { return a.lastCal }

// GuidancePerf returns the performance matrix a strategy plans with (nil
// for strategies that do not use measurements).
func (a *Advisor) GuidancePerf(s Strategy) *netmodel.PerfMatrix {
	switch s {
	case RPCA:
		return a.constant
	case Heuristics:
		return a.heuristic
	default:
		return nil
	}
}

// PlanTree builds the communication tree a strategy would use for a
// collective rooted at root with the given message size. dc and hosts are
// only consulted by TopologyAware (and may be nil otherwise).
func (a *Advisor) PlanTree(s Strategy, root int, msgBytes float64, dc *topo.Topology, hosts []int) *mpi.Tree {
	n := a.cluster.Size()
	switch s {
	case RPCA, Heuristics:
		perf := a.GuidancePerf(s)
		if perf == nil {
			return mpi.BinomialTree(n, root)
		}
		return mpi.FNFTree(perf.Weights(msgBytes), root)
	case TopologyAware:
		if dc == nil || hosts == nil {
			return mpi.BinomialTree(n, root)
		}
		return mpi.TopologyAwareTree(dc, hosts, root)
	default:
		return mpi.BinomialTree(n, root)
	}
}

// ExpectedTime estimates the collective's duration under the constant
// component — the expected performance t′ of Algorithm 1 line 5, using
// the α-β model so it extends to any message size.
func (a *Advisor) ExpectedTime(t *mpi.Tree, op mpi.Collective, msgBytes float64) float64 {
	if a.constant == nil {
		return math.NaN()
	}
	return mpi.RunCollective(mpi.NewAnalyticNet(a.constant), t, op, msgBytes)
}

// Observe implements the maintenance check of Algorithm 1 lines 4–9:
// compare the measured performance t against the expected t′ and
// re-calibrate when the relative difference reaches the threshold. It
// reports whether a re-calibration was triggered.
func (a *Advisor) Observe(expected, actual float64) (bool, error) {
	if expected <= 0 || math.IsNaN(expected) {
		return false, nil
	}
	if math.Abs(actual-expected)/expected < a.cfg.Threshold {
		return false, nil
	}
	a.recalibraions++
	return true, a.Calibrate()
}
