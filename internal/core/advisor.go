package core

import (
	"context"
	"math"
	"math/rand"

	"netconstant/internal/cloud"
	"netconstant/internal/mpi"
	"netconstant/internal/netmodel"
	"netconstant/internal/rpca"
	"netconstant/internal/topo"
)

// AdvisorConfig tunes the Advisor. Zero values select the paper's default
// experimental settings: time step 10, threshold 100%, L1 effectiveness
// norm, mean extraction.
type AdvisorConfig struct {
	// TimeStep is the number of calibration rows in the TP-matrix.
	TimeStep int
	// Threshold is the maintenance threshold of Algorithm 1 as a fraction
	// (1.0 = the paper's 100% default): re-calibrate when
	// |t − t′| / t′ ≥ Threshold.
	Threshold float64
	// Gap is the idle time between successive calibration rows, seconds.
	Gap float64
	// Calibration configures the measurement procedure.
	Calibration cloud.CalibrationConfig
	// RPCAOpts configures the solver (zero value = literature defaults).
	RPCAOpts rpca.Options
	// IALM configures the masked solver used when a calibration reports
	// missing cells (zero value = literature defaults).
	IALM rpca.IALMOptions
	// Extract selects the constant-row extraction method.
	Extract rpca.ExtractMethod
	// Heuristic selects the direct-use estimator for the Heuristics
	// strategy.
	Heuristic HeuristicKind
	// RegimeThreshold is the divergence EWMA level that counts an
	// observation toward a regime change — persistent sub-threshold drift
	// that Observe's spike check would never catch. Defaults to
	// Threshold/2.
	RegimeThreshold float64
	// RegimeWindow is how many consecutive over-RegimeThreshold
	// observations trigger an automatic re-calibration. Default 3.
	RegimeWindow int
}

func (c *AdvisorConfig) applyDefaults() {
	if c.TimeStep == 0 {
		c.TimeStep = 10
	}
	if c.Threshold == 0 {
		c.Threshold = 1.0
	}
	if c.RegimeThreshold == 0 {
		c.RegimeThreshold = c.Threshold / 2
	}
	if c.RegimeWindow == 0 {
		c.RegimeWindow = 3
	}
}

// Advisor binds the RPCA pipeline to a cluster and implements the
// calibrate → decompose → guide → monitor → re-calibrate loop of
// Algorithm 1.
type Advisor struct {
	cluster cloud.Cluster
	cfg     AdvisorConfig
	rng     *rand.Rand
	solver  *rpca.Solver // arena + SVT warm state reused across analyses

	constant  *netmodel.PerfMatrix // P_D assembled from the two constant rows
	heuristic *netmodel.PerfMatrix // the Heuristics strategy's estimate
	normE     float64              // Norm(N_E) from the bandwidth TP-matrix
	health    CalibrationHealth    // measurement health of the last analysis

	calibrations  int
	totalCalCost  float64
	lastCal       *cloud.TemporalCalibration
	recalibraions int
	recalibrator  func(ctx context.Context) error // optional maintenance hook (SetRecalibrator)

	// Divergence regime tracking (Observe): EWMA of the relative
	// actual-vs-expected difference and the current run length of
	// observations whose EWMA sits above RegimeThreshold.
	divEWMA   float64
	regimeRun int

	// Streaming session state (see streaming.go): when non-nil, regime
	// changes are served by a warm partial re-solve over the streaming
	// matrices instead of a full re-calibration.
	stream          *streamState
	partialResolves int
}

// NewAdvisor creates an advisor; call Calibrate before asking for
// guidance.
func NewAdvisor(c cloud.Cluster, rng *rand.Rand, cfg AdvisorConfig) *Advisor {
	cfg.applyDefaults()
	return &Advisor{cluster: c, cfg: cfg, rng: rng, solver: rpca.NewSolver()}
}

// Calibrate measures the TP-matrix and runs the RPCA analysis (Algorithm 1
// lines 1–2). It returns the error of the RPCA solver, if any.
func (a *Advisor) Calibrate() error {
	//netlint:allow cancelflow Calibrate is the documented no-cancellation compat shim over CalibrateCtx
	return a.CalibrateCtx(context.Background())
}

// CalibrateCtx is Calibrate with cancellation: the context threads
// through the measurement loop (cloud.CalibrateTPCtx) and into the
// solver iterations, so a cancelled context aborts with a *cancel.Error
// (matching cancel.ErrCanceled) and leaves the previous guidance in
// place — a half-measured calibration is never installed.
func (a *Advisor) CalibrateCtx(ctx context.Context) error {
	tc, err := cloud.CalibrateTPCtx(ctx, a.cluster, a.rng, a.cfg.TimeStep, a.cfg.Gap, a.cfg.Calibration)
	if err != nil {
		return err
	}
	a.lastCal = tc
	a.calibrations++
	a.totalCalCost += tc.TotalCost
	return a.analyze(ctx, tc)
}

// AnalyzeCalibration installs a pre-recorded temporal calibration (e.g.
// from a replayed trace) instead of measuring a fresh one.
func (a *Advisor) AnalyzeCalibration(tc *cloud.TemporalCalibration) error {
	//netlint:allow cancelflow AnalyzeCalibration is the documented no-cancellation compat shim over AnalyzeCalibrationCtx
	return a.AnalyzeCalibrationCtx(context.Background(), tc)
}

// AnalyzeCalibrationCtx is AnalyzeCalibration with cancellation
// threaded into the solver iteration loops.
func (a *Advisor) AnalyzeCalibrationCtx(ctx context.Context, tc *cloud.TemporalCalibration) error {
	a.lastCal = tc
	a.calibrations++
	a.totalCalCost += tc.TotalCost
	return a.analyze(ctx, tc)
}

func (a *Advisor) analyze(ctx context.Context, tc *cloud.TemporalCalibration) error {
	// Thread the context into per-call copies of the solver options; the
	// configured options stay context-free so an Advisor can be reused
	// across requests with different lifetimes.
	rpcaOpts := a.cfg.RPCAOpts
	rpcaOpts.Ctx = ctx
	ialmOpts := a.cfg.IALM
	ialmOpts.Ctx = ctx
	var latD, bwD *Decomposition
	var err error
	if tc.Mask != nil {
		// Partially observed calibration: the masked IALM solver
		// reconstructs the constant component through the gaps instead of
		// treating zero-filled holes as genuine (extreme) observations.
		latD, err = DecomposeTPMaskedWith(a.solver, tc.Latency, tc.Mask, ialmOpts, a.cfg.Extract)
		if err != nil {
			return err
		}
		bwD, err = DecomposeTPMaskedWith(a.solver, tc.Bandwidth, tc.Mask, ialmOpts, a.cfg.Extract)
		if err != nil {
			return err
		}
	} else {
		latD, err = DecomposeTPWith(a.solver, tc.Latency, rpcaOpts, a.cfg.Extract)
		if err != nil {
			return err
		}
		bwD, err = DecomposeTPWith(a.solver, tc.Bandwidth, rpcaOpts, a.cfg.Extract)
		if err != nil {
			return err
		}
	}
	n := tc.Latency.N
	a.constant = PerfFromRows(n, latD.ConstantRow, bwD.ConstantRow)
	a.normE = bwD.NormE
	a.health = AssessCalibration(tc, latD.Converged && bwD.Converged)
	a.heuristic = PerfFromRows(n,
		HeuristicRow(tc.Latency, a.cfg.Heuristic, false),
		HeuristicRow(tc.Bandwidth, a.cfg.Heuristic, true))
	// Fresh guidance resets the divergence regime tracker, and supersedes
	// any open streaming session: its matrices no longer describe the
	// installed guidance, so the caller must BeginStreaming again.
	a.divEWMA = 0
	a.regimeRun = 0
	a.stream = nil
	return nil
}

// Constant returns the RPCA constant-component performance matrix (nil
// before the first calibration).
func (a *Advisor) Constant() *netmodel.PerfMatrix { return a.constant }

// HeuristicPerf returns the direct-use estimate for the Heuristics
// strategy.
func (a *Advisor) HeuristicPerf() *netmodel.PerfMatrix { return a.heuristic }

// NormE returns the relative error norm of the last analysis — the
// paper's effectiveness indicator.
func (a *Advisor) NormE() float64 { return a.normE }

// Effectiveness grades the last NormE.
func (a *Advisor) Effectiveness() Effectiveness { return GradeEffectiveness(a.normE) }

// Health reports the measurement health of the last calibration (the zero
// value, Confidence none, before the first one).
func (a *Advisor) Health() CalibrationHealth { return a.health }

// Confidence is shorthand for Health().Confidence.
func (a *Advisor) Confidence() Confidence { return a.health.Confidence }

// EffectiveStrategy maps the requested strategy through the confidence
// fallback ladder: RPCA degrades to Heuristics and then Baseline as the
// calibration health drops, so a damaged calibration can never steer the
// collective with a constant component it does not actually support.
func (a *Advisor) EffectiveStrategy(s Strategy) Strategy {
	return FallbackStrategy(s, a.health.Confidence)
}

// Calibrations returns how many full calibrations have run.
func (a *Advisor) Calibrations() int { return a.calibrations }

// Recalibrations returns how many were triggered by the monitor.
func (a *Advisor) Recalibrations() int { return a.recalibraions }

// CalibrationCost returns the cumulative cluster time spent calibrating.
func (a *Advisor) CalibrationCost() float64 { return a.totalCalCost }

// LastCalibration exposes the most recent temporal calibration.
func (a *Advisor) LastCalibration() *cloud.TemporalCalibration { return a.lastCal }

// GuidancePerf returns the performance matrix a strategy plans with (nil
// for strategies that do not use measurements).
func (a *Advisor) GuidancePerf(s Strategy) *netmodel.PerfMatrix {
	switch s {
	case RPCA:
		return a.constant
	case Heuristics:
		return a.heuristic
	default:
		return nil
	}
}

// PlanTree builds the communication tree a strategy would use for a
// collective rooted at root with the given message size. dc and hosts are
// only consulted by TopologyAware (and may be nil otherwise).
func (a *Advisor) PlanTree(s Strategy, root int, msgBytes float64, dc *topo.Topology, hosts []int) *mpi.Tree {
	n := a.cluster.Size()
	if a.lastCal != nil {
		s = a.EffectiveStrategy(s)
	}
	switch s {
	case RPCA, Heuristics:
		perf := a.GuidancePerf(s)
		if perf == nil {
			return mpi.BinomialTree(n, root)
		}
		return mpi.FNFTree(perf.Weights(msgBytes), root)
	case TopologyAware:
		if dc == nil || hosts == nil {
			return mpi.BinomialTree(n, root)
		}
		return mpi.TopologyAwareTree(dc, hosts, root)
	default:
		return mpi.BinomialTree(n, root)
	}
}

// ExpectedTime estimates the collective's duration under the constant
// component — the expected performance t′ of Algorithm 1 line 5, using
// the α-β model so it extends to any message size.
func (a *Advisor) ExpectedTime(t *mpi.Tree, op mpi.Collective, msgBytes float64) float64 {
	if a.constant == nil {
		return math.NaN()
	}
	return mpi.RunCollective(mpi.NewAnalyticNet(a.constant), t, op, msgBytes)
}

// Observe implements the maintenance check of Algorithm 1 lines 4–9:
// compare the measured performance t against the expected t′ and
// re-calibrate when the relative difference reaches the threshold. A
// second, slower trigger catches regime changes the spike check misses:
// an EWMA of the relative divergence that stays above RegimeThreshold for
// RegimeWindow consecutive observations — sustained drift rather than a
// one-off outlier — also triggers maintenance. It reports whether
// maintenance was triggered.
//
// With a streaming session open (BeginStreaming), the regime trigger is
// served by a cheap warm partial re-solve over the streaming matrices
// instead of a full re-calibration; a hard spike past Threshold still
// forces the full calibrate (which closes the session).
func (a *Advisor) Observe(expected, actual float64) (bool, error) {
	//netlint:allow cancelflow Observe is the documented no-cancellation compat shim over ObserveCtx
	return a.ObserveCtx(context.Background(), expected, actual)
}

// ObserveCtx is Observe with cancellation threaded into whichever
// maintenance action the divergence triggers — the full re-calibration's
// measurement loop and solver, or the streaming partial re-solve.
func (a *Advisor) ObserveCtx(ctx context.Context, expected, actual float64) (bool, error) {
	if expected <= 0 || math.IsNaN(expected) {
		return false, nil
	}
	rel := math.Abs(actual-expected) / expected
	if rel >= a.cfg.Threshold {
		a.recalibraions++
		return true, a.recalibrate(ctx)
	}
	a.divEWMA = 0.3*rel + 0.7*a.divEWMA
	if a.divEWMA >= a.cfg.RegimeThreshold {
		a.regimeRun++
	} else {
		a.regimeRun = 0
	}
	if a.regimeRun >= a.cfg.RegimeWindow {
		if a.stream != nil {
			return true, a.PartialResolve()
		}
		a.recalibraions++
		return true, a.recalibrate(ctx)
	}
	return false, nil
}

// SetRecalibrator routes Observe-triggered full re-calibrations through f
// instead of the advisor's own CalibrateCtx. Long-lived hosts (the
// advisor daemon) install a hook that goes through their memoized,
// journaled calibration path, so maintenance the regime detector fires
// autonomously is cached and replayed exactly like a client-requested
// calibration. A nil f restores the direct path.
func (a *Advisor) SetRecalibrator(f func(ctx context.Context) error) { a.recalibrator = f }

// recalibrate runs a maintenance-triggered full calibration, through the
// installed hook when one is set.
func (a *Advisor) recalibrate(ctx context.Context) error {
	if a.recalibrator != nil {
		return a.recalibrator(ctx)
	}
	return a.CalibrateCtx(ctx)
}

// DivergenceEWMA exposes the current smoothed actual-vs-expected relative
// difference the regime detector tracks.
func (a *Advisor) DivergenceEWMA() float64 { return a.divEWMA }
