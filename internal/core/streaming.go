package core

// Streaming guidance maintenance: instead of re-running a full calibration
// and cold decomposition whenever measurements trickle in, the advisor can
// open a streaming session — two rpca.StreamingSolvers (latency and
// bandwidth) seeded from the last full calibration — and feed re-measured
// pair columns into it. The divergence-EWMA regime detector then triggers
// a cheap warm partial re-solve over the updated matrices rather than a
// cold restart; only a spike past the hard threshold still forces a full
// re-calibration (which ends the streaming session, since its matrices no
// longer describe the installed guidance).

import (
	"context"
	"errors"
	"fmt"
	"math"

	"netconstant/internal/netmodel"
	"netconstant/internal/rpca"
)

// streamState is an open streaming session: one solver per performance
// direction, both seeded from the same calibration.
type streamState struct {
	lat, bw *rpca.StreamingSolver
	n       int // cluster size; columns are the n² pair indices
}

// ErrNotStreaming is returned by streaming entry points when no session is
// open.
var ErrNotStreaming = errors.New("core: no streaming session — call BeginStreaming after a calibration")

// BeginStreaming opens a streaming session from the last full calibration.
//netlint:allow cancelflow BeginStreaming is the documented no-cancellation compat shim over BeginStreamingCtx
func (a *Advisor) BeginStreaming() error { return a.BeginStreamingCtx(context.Background()) }

// BeginStreamingCtx is BeginStreaming with cancellation. The context is
// retained for the session: it bounds every subsequent column ingestion
// and partial re-solve, mirroring how long-lived pipelines thread one
// cancellation scope through their update loops.
func (a *Advisor) BeginStreamingCtx(ctx context.Context) error {
	if a.lastCal == nil {
		return errors.New("core: BeginStreaming before any calibration")
	}
	if a.lastCal.Mask != nil {
		return errors.New("core: streaming requires a completely observed calibration")
	}
	rows := a.lastCal.Latency.Steps()
	if rows == 0 {
		return errors.New("core: BeginStreaming with an empty calibration")
	}
	ialm := a.cfg.IALM
	if ialm.Lambda == 0 {
		// Match the batch TP convention (DecomposeTPWith): λ = 1/√rows for
		// the fat TP-matrix, not the generic 1/√max-dim default.
		ialm.Lambda = 1 / math.Sqrt(float64(rows))
	}
	ialm.Ctx = ctx
	opts := rpca.StreamOptions{Extract: a.cfg.Extract, IALM: ialm, Ctx: ctx}
	lat, err := rpca.NewStreamingSolver(rows, opts)
	if err != nil {
		return err
	}
	bw, err := rpca.NewStreamingSolver(rows, opts)
	if err != nil {
		return err
	}
	if err := lat.Seed(a.lastCal.Latency.Matrix()); err != nil {
		return err
	}
	if err := bw.Seed(a.lastCal.Bandwidth.Matrix()); err != nil {
		return err
	}
	a.stream = &streamState{lat: lat, bw: bw, n: a.lastCal.Latency.N}
	return nil
}

// StreamingActive reports whether a streaming session is open.
func (a *Advisor) StreamingActive() bool { return a.stream != nil }

// EndStreaming closes the session (no-op when none is open). The installed
// guidance is left as the last partial re-solve produced it.
func (a *Advisor) EndStreaming() { a.stream = nil }

// StreamPair ingests a re-measured pair: the latency and bandwidth time
// series (length TimeStep) for the src→dst column of the TP-matrices. The
// fast tier refreshes that pair's constant estimate immediately; the
// authoritative constant updates at the next partial re-solve.
func (a *Advisor) StreamPair(src, dst int, lat, bw []float64) error {
	if a.stream == nil {
		return ErrNotStreaming
	}
	n := a.stream.n
	if src < 0 || src >= n || dst < 0 || dst >= n {
		return fmt.Errorf("core: StreamPair (%d,%d) outside %d-VM cluster", src, dst, n)
	}
	return a.StreamColumn(src*n+dst, lat, bw)
}

// StreamColumn is StreamPair addressed by raw TP-matrix column index.
func (a *Advisor) StreamColumn(j int, lat, bw []float64) error {
	if a.stream == nil {
		return ErrNotStreaming
	}
	if err := a.stream.lat.ReplaceColumn(j, lat); err != nil {
		return err
	}
	return a.stream.bw.ReplaceColumn(j, bw)
}

// StreamingConstant assembles the current streaming constant estimate —
// authoritative values from the last resolve, fast-tier projections for
// columns replaced since — without forcing a re-solve. Nil when no session
// is open.
func (a *Advisor) StreamingConstant() *netmodel.PerfMatrix {
	if a.stream == nil {
		return nil
	}
	return PerfFromRows(a.stream.n, a.stream.lat.Constant(), a.stream.bw.Constant())
}

// PartialResolves returns how many regime-triggered (or explicit) warm
// partial re-solves the streaming session(s) have run.
func (a *Advisor) PartialResolves() int { return a.partialResolves }

// PartialResolve runs the warm authoritative re-solve over both streaming
// matrices and installs the refreshed constant component and NormE as the
// advisor's guidance — the cheap alternative to a full re-calibration.
func (a *Advisor) PartialResolve() error {
	if a.stream == nil {
		return ErrNotStreaming
	}
	if _, err := a.stream.lat.Resolve(); err != nil {
		return err
	}
	if _, err := a.stream.bw.Resolve(); err != nil {
		return err
	}
	a.constant = PerfFromRows(a.stream.n, a.stream.lat.Constant(), a.stream.bw.Constant())
	a.normE = a.stream.bw.RelNormE()
	a.partialResolves++
	// Refreshed guidance resets the divergence regime tracker, exactly as
	// a full analyze() does.
	a.divEWMA = 0
	a.regimeRun = 0
	return nil
}

// VerifyStreaming runs the differential oracle on both streaming solvers:
// a cold batch solve of the identical matrices, compared against the warm
// streaming state. Chaos oracles and the CI stream gate call this to pin
// the streaming path to the batch solver.
func (a *Advisor) VerifyStreaming() (lat, bw rpca.StreamAgreement, err error) {
	if a.stream == nil {
		return lat, bw, ErrNotStreaming
	}
	if lat, err = a.stream.lat.Verify(); err != nil {
		return lat, bw, err
	}
	bw, err = a.stream.bw.Verify()
	return lat, bw, err
}
