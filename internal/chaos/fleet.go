package chaos

// The fleet oracle checks the campaign supervisor (internal/plan +
// cmd/expfleet's machinery) end to end under supervisor-level chaos:
// children SIGKILLed or SIGSTOPped after a seeded number of journaled
// points, and checkpoint manifests corrupted between attempts. The
// contract it enforces is the supervision theorem of this repo:
//
//   - every recoverably-sabotaged task completes, and the campaign's
//     deterministic results are byte-identical to an undisturbed twin's;
//   - a permanently failing task is quarantined — and ONLY such tasks
//     are: the quarantine set must match the sabotage exactly;
//   - un-sabotaged tasks never pay for their neighbors (continue on
//     failure).
//
// Unlike the in-process oracles this one launches real child processes,
// so it needs an expdriver binary (Options.Driver) and a wall clock
// (Options.Now — injected, since this package forbids reading the clock
// directly). Without a driver it is skipped.

import (
	"bytes"
	"context"
	"os"
	"time"

	"netconstant/internal/plan"
)

// Options configures the oracles that need outside machinery. The zero
// value disables them, keeping RunOracles self-contained.
type Options struct {
	// Driver is the expdriver binary the fleet oracle launches campaign
	// children with; empty skips the oracle.
	Driver string
	// Now supplies the supervisor's wall clock. Required when Driver is
	// set (pass time.Now from the command layer).
	Now func() time.Time
	// Daemon is the netconstantd binary the daemon oracle SIGKILLs and
	// restarts; empty skips the oracle.
	Daemon string
}

// RunOraclesWith runs every invariant oracle, including those enabled
// by opts, against one plan.
func RunOraclesWith(p Plan, opts Options) []Failure {
	fails := RunOracles(p)
	if opts.Driver != "" {
		fails = append(fails, oracleFleet(p, opts)...)
	}
	if opts.Daemon != "" {
		fails = append(fails, oracleDaemon(p, opts)...)
	}
	return fails
}

// supervisorOps extracts the plan's supervisor-level ops; when it has
// none the oracle injects a default kill so every campaign with a
// driver still proves supervision end to end.
func supervisorOps(p Plan) []Op {
	var out []Op
	for _, o := range p.Ops {
		switch o.Kind {
		case OpKillChild, OpStallChild, OpCorruptManifest:
			out = append(out, o)
		}
	}
	if len(out) == 0 {
		out = append(out, Op{Kind: OpKillChild, N: 1})
	}
	return out
}

// oracleFleet builds a three-task campaign — two healthy tasks that the
// plan's supervisor ops sabotage, plus one deliberately doomed task
// (-failafter, a persistent fatal failure) — runs it and its sabotage-
// free twin with real expdriver children, and compares outcomes and
// deterministic results.
func oracleFleet(p Plan, opts Options) (fails []Failure) {
	const oracle = "fleet"
	guard(oracle, &fails, func() {
		healthy := []string{"t0", "t1"}
		cp := &plan.Plan{
			Name: "chaosfleet",
			Seed: p.Seed,
			Tasks: []plan.Task{
				{Name: "t0", Figures: []string{"fig7"}},
				{Name: "t1", Figures: []string{"fig8"}},
				{Name: "doomed", Figures: []string{"fig12"}, Extra: []string{"-failafter", "1"}},
			},
			MaxProcs:        2,
			Retry:           plan.Retry{BaseDelaySec: 0.01, MaxDelaySec: 0.05, JitterFrac: 0.1},
			StallTimeoutSec: 2.0,
			PollIntervalSec: 0.05,
		}

		// Spread the supervisor ops round-robin over the healthy tasks,
		// each op hitting that task's next attempt, and give the retry
		// budget one spare attempt to recover in.
		attempts := map[string]int{}
		maxAttempt := 1
		for i, o := range supervisorOps(p) {
			task := healthy[i%len(healthy)]
			attempts[task]++
			if attempts[task] > maxAttempt {
				maxAttempt = attempts[task]
			}
			after := o.N
			if after < 1 {
				after = 1
			}
			kind := ""
			switch o.Kind {
			case OpKillChild:
				kind = plan.SabotageKill
			case OpStallChild:
				kind = plan.SabotageStall
			case OpCorruptManifest:
				kind = plan.SabotageCorruptManifest
			}
			cp.Sabotage = append(cp.Sabotage, plan.Sabotage{
				Kind: kind, Task: task, Attempt: attempts[task], AfterPoints: after,
			})
		}
		cp.Retry.MaxAttempts = maxAttempt + 2 // the doomed task burns 2, sabotage recovery needs 1 spare

		if err := cp.Validate(); err != nil {
			fails = append(fails, failf(oracle, "campaign plan invalid: %v", err))
			return
		}

		run := func(cp *plan.Plan, dir string) (*plan.Report, []byte, bool) {
			s := &plan.Supervisor{Plan: cp, Driver: opts.Driver, Dir: dir, Now: opts.Now}
			rep, err := s.Run(context.Background())
			if err != nil {
				fails = append(fails, failf(oracle, "supervisor: %v", err))
				return nil, nil, false
			}
			res, err := rep.DeterministicResults(s)
			if err != nil {
				fails = append(fails, failf(oracle, "deterministic results: %v\n%s", err, rep.Render()))
				return nil, nil, false
			}
			return rep, res, true
		}
		sabDir, err := os.MkdirTemp("", "chaos-fleet-")
		if err != nil {
			fails = append(fails, failf(oracle, "mkdtemp: %v", err))
			return
		}
		defer os.RemoveAll(sabDir)
		cleanDir, err := os.MkdirTemp("", "chaos-fleet-")
		if err != nil {
			fails = append(fails, failf(oracle, "mkdtemp: %v", err))
			return
		}
		defer os.RemoveAll(cleanDir)
		sabRep, sabRes, ok := run(cp, sabDir)
		if !ok {
			return
		}
		cleanRep, cleanRes, ok := run(cp.Clean(), cleanDir)
		if !ok {
			return
		}

		check := func(label string, rep *plan.Report, sabotaged bool) {
			for _, tr := range rep.Tasks {
				switch tr.Name {
				case "doomed":
					if tr.Outcome != plan.OutcomeQuarantined {
						fails = append(fails, failf(oracle, "%s: doomed task ended %s, want quarantined", label, tr.Outcome))
					} else if tr.Diagnosis == nil || tr.Diagnosis.JournaledPoints == 0 {
						fails = append(fails, failf(oracle, "%s: doomed task quarantined without a located last point", label))
					}
				default:
					if tr.Outcome != plan.OutcomeOK {
						fails = append(fails, failf(oracle, "%s: task %s ended %s (%+v) — recoverable sabotage must recover",
							label, tr.Name, tr.Outcome, tr.Diagnosis))
					}
					if !sabotaged && tr.Attempts != 1 {
						fails = append(fails, failf(oracle, "%s: undisturbed task %s took %d attempts", label, tr.Name, tr.Attempts))
					}
				}
			}
		}
		check("sabotaged", sabRep, true)
		check("clean", cleanRep, false)
		if !bytes.Equal(sabRes, cleanRes) {
			fails = append(fails, failf(oracle, "sabotaged campaign results diverge from the clean twin:\n--- sabotaged ---\n%s\n--- clean ---\n%s",
				sabRes, cleanRes))
		}
	})
	return fails
}
