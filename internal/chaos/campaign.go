package chaos

import (
	"fmt"
	"strings"

	"netconstant/internal/stats"
)

// RoundResult is one campaign round: the plan that ran and whatever
// invariants it broke.
type RoundResult struct {
	Round    int       `json:"round"`
	Plan     Plan      `json:"plan"`
	Failures []Failure `json:"failures,omitempty"`
}

// Report is a full campaign transcript. Identical (Seed, Rounds,
// MaxOps) inputs produce identical reports, byte for byte — that is the
// harness's own reproducibility contract, and what lets CI hand a
// failing seed to a laptop.
type Report struct {
	Seed   int64         `json:"seed"`
	Rounds int           `json:"rounds"`
	MaxOps int           `json:"max_ops"`
	Result []RoundResult `json:"result"`
}

// Failed returns the rounds that broke at least one invariant.
func (r Report) Failed() []RoundResult {
	var out []RoundResult
	for _, rr := range r.Result {
		if len(rr.Failures) > 0 {
			out = append(out, rr)
		}
	}
	return out
}

func (r Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "chaos campaign seed=%d rounds=%d maxops=%d\n", r.Seed, r.Rounds, r.MaxOps)
	for _, rr := range r.Result {
		status := "ok"
		if len(rr.Failures) > 0 {
			status = fmt.Sprintf("%d FAILURES", len(rr.Failures))
		}
		fmt.Fprintf(&b, "  round %d: %s — %s\n", rr.Round, rr.Plan, status)
		for _, f := range rr.Failures {
			fmt.Fprintf(&b, "    %s\n", f)
		}
	}
	return b.String()
}

// Campaign runs rounds seeded fault campaigns: each round draws a fresh
// plan from the campaign seed and checks every oracle against it. All
// derivation is splitmix-style from (seed, round), so reports replay
// exactly.
func Campaign(seed int64, rounds, maxOps int) Report {
	return CampaignWith(seed, rounds, maxOps, Options{})
}

// CampaignWith is Campaign with the externally-equipped oracles enabled
// (the fleet oracle, when opts carries a driver binary). Plan generation
// is identical either way — opts changes what is checked, not what is
// drawn — so a failing round's seed replays under either entry point.
func CampaignWith(seed int64, rounds, maxOps int, opts Options) Report {
	rep := Report{Seed: seed, Rounds: rounds, MaxOps: maxOps}
	for r := 0; r < rounds; r++ {
		roundSeed := seed + int64(r)*0x9e3779b97f4a7c // golden-ratio stride keeps round seeds well separated
		plan := GeneratePlan(stats.NewRNG(roundSeed), roundSeed, maxOps)
		rep.Result = append(rep.Result, RoundResult{
			Round:    r,
			Plan:     plan,
			Failures: RunOraclesWith(plan, opts),
		})
	}
	return rep
}

// Shrink reduces a failing plan to a minimal one that still fails,
// using greedy delta debugging: repeatedly drop whole ops, then halve
// numeric parameters, keeping any change under which `failing` still
// reports at least one violation, until a fixpoint. The returned plan
// is the small replayable reproducer to file with the bug.
//
// failing is the oracle under which p fails — RunOracles for a real
// campaign, or any predicate in tests. If p does not fail at all,
// Shrink returns it unchanged.
func Shrink(p Plan, failing func(Plan) []Failure) Plan {
	if len(failing(p)) == 0 {
		return p
	}
	cur := p
	for changed := true; changed; {
		changed = false

		// Pass 1: drop one op entirely.
		for i := 0; i < len(cur.Ops); i++ {
			if len(cur.Ops) == 1 {
				break
			}
			ops := make([]Op, 0, len(cur.Ops)-1)
			ops = append(ops, cur.Ops[:i]...)
			ops = append(ops, cur.Ops[i+1:]...)
			cand := Plan{Seed: cur.Seed, Ops: ops}
			if len(failing(cand)) > 0 {
				cur = cand
				changed = true
				break
			}
		}
		if changed {
			continue
		}

		// Pass 2: shrink one numeric field of one op.
	shrinkFields:
		for i := range cur.Ops {
			for _, cand := range shrinkOps(cur, i) {
				if len(failing(cand)) > 0 {
					cur = cand
					changed = true
					break shrinkFields
				}
			}
		}
	}
	return cur
}

// shrinkOps proposes smaller variants of op i: each halves or zeroes
// one numeric field, bounded so the sequence terminates.
func shrinkOps(p Plan, i int) []Plan {
	var out []Plan
	with := func(o Op) Plan {
		ops := append([]Op(nil), p.Ops...)
		ops[i] = o
		return Plan{Seed: p.Seed, Ops: ops}
	}
	o := p.Ops[i]
	if o.P > 0.01 {
		c := o
		c.P = o.P / 2
		out = append(out, with(c))
	}
	if o.N > 1 {
		c := o
		c.N = o.N / 2
		out = append(out, with(c))
	}
	if o.Duration > 0.05 {
		c := o
		c.Duration = o.Duration / 2
		out = append(out, with(c))
	}
	if o.Start != 0 {
		c := o
		c.Start = 0
		out = append(out, with(c))
	}
	return out
}
