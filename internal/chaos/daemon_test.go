package chaos

import (
	"os"
	"os/exec"
	"path/filepath"
	"sync"
	"testing"
)

var (
	daemonBuildOnce sync.Once
	builtDaemon     string
	daemonBuildErr  error
)

// realDaemon builds cmd/netconstantd once per test run.
func realDaemon(t *testing.T) string {
	t.Helper()
	if testing.Short() {
		t.Skip("short mode: skipping real-binary daemon oracle")
	}
	daemonBuildOnce.Do(func() {
		dir, err := os.MkdirTemp("", "chaos-daemon-bin-*")
		if err != nil {
			daemonBuildErr = err
			return
		}
		builtDaemon = filepath.Join(dir, "netconstantd")
		out, err := exec.Command("go", "build", "-o", builtDaemon, "netconstant/cmd/netconstantd").CombinedOutput()
		if err != nil {
			daemonBuildErr = err
			builtDaemon = string(out)
		}
	})
	if daemonBuildErr != nil {
		t.Fatalf("building netconstantd: %v: %s", daemonBuildErr, builtDaemon)
	}
	return builtDaemon
}

// TestDaemonOracleHolds SIGKILLs a real netconstantd at seeded points
// and requires restart-equivalence plus per-tenant quarantine
// containment — the oracle must report no failures.
func TestDaemonOracleHolds(t *testing.T) {
	opts := Options{Daemon: realDaemon(t)}
	// Two seeds land the SIGKILL at different trace offsets (KillPoint
	// derives from the seed when the plan carries no kill op).
	for _, p := range []Plan{
		{Seed: 3},
		{Seed: 8, Ops: []Op{{Kind: OpKill, N: 5}}},
	} {
		if fails := oracleDaemon(p, opts); len(fails) > 0 {
			t.Errorf("daemon oracle failures for seed %d:", p.Seed)
			for _, f := range fails {
				t.Errorf("  %s", f)
			}
		}
	}
}

// TestRunOraclesWithoutDaemonSkips keeps the zero Options equivalent to
// RunOracles for the daemon oracle too.
func TestRunOraclesWithoutDaemonSkips(t *testing.T) {
	p := Plan{Seed: 9, Ops: []Op{{Kind: OpTruncate, N: 1}}}
	a := RunOracles(p)
	b := RunOraclesWith(p, Options{})
	if len(a) != len(b) {
		t.Fatalf("RunOraclesWith(zero Options) = %v, RunOracles = %v", b, a)
	}
}
