package chaos

// The daemon oracle checks netconstantd's restart-equivalence contract
// end to end, against the real binary (Options.Daemon; skipped without
// one):
//
//   - a daemon SIGKILLed after a seeded number of acknowledged requests,
//     restarted on the same journal directory, and fed the rest of the
//     trace must answer status and advise probes byte-identically to an
//     uninterrupted twin — the journal is the state, the process is
//     disposable;
//   - a damaged tenant journal must quarantine that tenant alone: the
//     tenant answers with the typed "quarantined" refusal, /healthz
//     names exactly it, and every neighbor's probes stay byte-identical;
//   - a SIGTERM drain must exit 130 with snapshots sealed (the repo's
//     two-stage drain contract).
//
// The oracle never reads the clock: startup is synchronized on the
// daemon's "listening on <addr>" stdout line, and every trace request is
// played synchronously, so the SIGKILL always lands between acknowledged
// mutations — the crash window the journal must cover.

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
)

// daemonReq is one replayable request of the oracle's trace.
type daemonReq struct {
	method, path, body string
}

// daemonTrace is the seeded workload: three tenants created, calibrated
// and advanced, one quiet observation, one spike that triggers a
// recalibration through the daemon's memoized path.
func daemonTrace(p Plan) []daemonReq {
	tenants := daemonTenants()
	var tr []daemonReq
	for i, id := range tenants {
		cfg := fmt.Sprintf(`{"vms":6,"seed":%d,"steps":3,"racks":4,"servers_per_rack":4,"gap":5,"threshold":0.5}`,
			p.Seed+int64(i))
		tr = append(tr, daemonReq{"PUT", "/v1/tenants/" + id, cfg})
	}
	for _, id := range tenants {
		tr = append(tr, daemonReq{"POST", "/v1/tenants/" + id + "/calibrate", ""})
	}
	for _, id := range tenants {
		tr = append(tr, daemonReq{"POST", "/v1/tenants/" + id + "/advance", `{"dt":30}`})
	}
	return append(tr,
		daemonReq{"POST", "/v1/tenants/" + tenants[1] + "/observe", `{"expected":1,"actual":1.05}`},
		daemonReq{"POST", "/v1/tenants/" + tenants[0] + "/observe", `{"expected":1,"actual":9}`},
		daemonReq{"POST", "/v1/tenants/" + tenants[2] + "/advance", `{"dt":15}`},
	)
}

func daemonTenants() []string { return []string{"t0", "t1", "t2"} }

// daemonProc is one live netconstantd child plus the client pinned to
// its (freshly chosen) port.
type daemonProc struct {
	cmd    *exec.Cmd
	base   string
	client *http.Client
	stderr *bytes.Buffer
}

// startDaemon launches the binary on a fresh port and blocks until the
// "listening on" line reports the bound address (the socket accepts
// connections from that point on).
func startDaemon(bin, dir string) (*daemonProc, error) {
	cmd := exec.Command(bin, "-dir", dir, "-addr", "127.0.0.1:0")
	var errBuf bytes.Buffer
	cmd.Stderr = &errBuf
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	sc := bufio.NewScanner(stdout)
	for sc.Scan() {
		if _, addr, ok := strings.Cut(sc.Text(), "listening on "); ok {
			go io.Copy(io.Discard, stdout) // keep the pipe drained for the daemon's lifetime
			return &daemonProc{
				cmd:    cmd,
				base:   "http://" + strings.TrimSpace(addr),
				client: &http.Client{Transport: &http.Transport{}},
				stderr: &errBuf,
			}, nil
		}
	}
	cmd.Wait()
	return nil, fmt.Errorf("daemon exited before binding: %s", strings.TrimSpace(errBuf.String()))
}

// kill SIGKILLs the daemon — the crash under test.
func (d *daemonProc) kill() {
	d.client.CloseIdleConnections()
	d.cmd.Process.Kill()
	d.cmd.Wait()
}

// drain SIGTERMs the daemon and enforces the graceful-drain contract:
// exit code 130 (internal/cli's ExitInterrupted).
func (d *daemonProc) drain() error {
	d.client.CloseIdleConnections()
	if err := d.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		return err
	}
	err := d.cmd.Wait()
	if ee, ok := err.(*exec.ExitError); ok && ee.ExitCode() == 130 {
		return nil
	}
	if err == nil {
		return fmt.Errorf("daemon exited 0 on SIGTERM, want 130")
	}
	return fmt.Errorf("daemon on SIGTERM: %v (stderr: %s)", err, strings.TrimSpace(d.stderr.String()))
}

// do plays one request and returns the status and body.
func (d *daemonProc) do(r daemonReq) (int, string, error) {
	var body io.Reader
	if r.body != "" {
		body = strings.NewReader(r.body)
	}
	req, err := http.NewRequest(r.method, d.base+r.path, body)
	if err != nil {
		return 0, "", err
	}
	resp, err := d.client.Do(req)
	if err != nil {
		return 0, "", err
	}
	buf, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	return resp.StatusCode, string(buf), err
}

// play replays trace requests, requiring every one to be acknowledged.
func (d *daemonProc) play(label string, trace []daemonReq) error {
	for i, r := range trace {
		status, body, err := d.do(r)
		if err != nil {
			return fmt.Errorf("%s: request %d (%s %s): %v", label, i, r.method, r.path, err)
		}
		if status >= 300 {
			return fmt.Errorf("%s: request %d (%s %s): status %d: %s", label, i, r.method, r.path, status, strings.TrimSpace(body))
		}
	}
	return nil
}

// probe captures each tenant's externally visible state — the full
// status body plus an RPCA advise response — keyed by tenant, for
// byte-diffing across daemon incarnations.
func (d *daemonProc) probe(tenants []string) (map[string]string, error) {
	out := make(map[string]string, len(tenants))
	for _, id := range tenants {
		st1, status, err := d.do(daemonReq{"GET", "/v1/tenants/" + id, ""})
		if err != nil {
			return nil, fmt.Errorf("probe status %s: %v", id, err)
		}
		st2, advise, err := d.do(daemonReq{"POST", "/v1/tenants/" + id + "/advise", `{"strategy":"rpca","root":0,"msg_bytes":1048576}`})
		if err != nil {
			return nil, fmt.Errorf("probe advise %s: %v", id, err)
		}
		out[id] = fmt.Sprintf("status %d %sadvise %d %s", st1, status, st2, advise)
	}
	return out, nil
}

// oracleDaemon runs the restart-equivalence and quarantine-containment
// checks described at the top of this file.
func oracleDaemon(p Plan, opts Options) (fails []Failure) {
	const oracle = "daemon"
	guard(oracle, &fails, func() {
		trace := daemonTrace(p)
		tenants := daemonTenants()

		// Reference: the uninterrupted twin.
		refDir, err := os.MkdirTemp("", "chaos-daemon-ref-")
		if err != nil {
			fails = append(fails, failf(oracle, "mkdtemp: %v", err))
			return
		}
		defer os.RemoveAll(refDir)
		ref, err := startDaemon(opts.Daemon, refDir)
		if err != nil {
			fails = append(fails, failf(oracle, "reference start: %v", err))
			return
		}
		if err := ref.play("reference", trace); err != nil {
			ref.kill()
			fails = append(fails, failf(oracle, "%v", err))
			return
		}
		want, err := ref.probe(tenants)
		if err != nil {
			ref.kill()
			fails = append(fails, failf(oracle, "reference %v", err))
			return
		}
		if err := ref.drain(); err != nil {
			fails = append(fails, failf(oracle, "reference drain: %v", err))
			return
		}

		// Crash run: ack the first kill requests, SIGKILL, restart on the
		// same journals, replay the rest.
		kill := p.KillPoint(len(trace) - 1)
		dir, err := os.MkdirTemp("", "chaos-daemon-")
		if err != nil {
			fails = append(fails, failf(oracle, "mkdtemp: %v", err))
			return
		}
		defer os.RemoveAll(dir)
		d1, err := startDaemon(opts.Daemon, dir)
		if err != nil {
			fails = append(fails, failf(oracle, "crash-run start: %v", err))
			return
		}
		if err := d1.play("pre-kill", trace[:kill]); err != nil {
			d1.kill()
			fails = append(fails, failf(oracle, "%v", err))
			return
		}
		d1.kill()
		d2, err := startDaemon(opts.Daemon, dir)
		if err != nil {
			fails = append(fails, failf(oracle, "restart after SIGKILL at %d: %v", kill, err))
			return
		}
		defer d2.kill()
		if err := d2.play("post-restart", trace[kill:]); err != nil {
			fails = append(fails, failf(oracle, "SIGKILL at %d: %v", kill, err))
			return
		}
		got, err := d2.probe(tenants)
		if err != nil {
			fails = append(fails, failf(oracle, "crash-run %v", err))
			return
		}
		for _, id := range tenants {
			if got[id] != want[id] {
				fails = append(fails, failf(oracle,
					"restart-equivalence broken for %s (SIGKILL after %d requests):\n--- uninterrupted ---\n%s\n--- killed+restarted ---\n%s",
					id, kill, want[id], got[id]))
			}
		}
		if err := d2.drain(); err != nil {
			fails = append(fails, failf(oracle, "crash-run drain: %v", err))
			return
		}

		// Quarantine containment: damage t0's sealed snapshot, restart, and
		// require a typed per-tenant refusal with untouched neighbors.
		target := filepath.Join(dir, tenants[0]+".ncsnap")
		img, err := os.ReadFile(target)
		if err != nil || len(img) == 0 {
			target = filepath.Join(dir, tenants[0]+".nclog")
			if img, err = os.ReadFile(target); err != nil {
				fails = append(fails, failf(oracle, "read %s journal for damage: %v", tenants[0], err))
				return
			}
		}
		img[len(img)/2] ^= 0x40
		if err := os.WriteFile(target, img, 0o644); err != nil {
			fails = append(fails, failf(oracle, "write damaged %s: %v", target, err))
			return
		}
		d3, err := startDaemon(opts.Daemon, dir)
		if err != nil {
			fails = append(fails, failf(oracle, "restart on damaged %s must quarantine, not die: %v", tenants[0], err))
			return
		}
		defer d3.kill()
		status, body, err := d3.do(daemonReq{"GET", "/v1/tenants/" + tenants[0], ""})
		if err != nil {
			fails = append(fails, failf(oracle, "damaged-tenant status probe: %v", err))
			return
		}
		if status != http.StatusGone || !strings.Contains(body, `"code":"quarantined"`) {
			fails = append(fails, failf(oracle, "damaged tenant answered %d %s, want a typed 410 quarantined refusal", status, strings.TrimSpace(body)))
		}
		hstatus, health, err := d3.do(daemonReq{"GET", "/healthz", ""})
		if err != nil || hstatus != http.StatusOK {
			fails = append(fails, failf(oracle, "healthz on damaged dir: status %d, err %v", hstatus, err))
			return
		}
		if wantQ := fmt.Sprintf(`"quarantined":["%s"]`, tenants[0]); !strings.Contains(health, wantQ) {
			fails = append(fails, failf(oracle, "healthz must name exactly the damaged tenant (%s), got %s", wantQ, strings.TrimSpace(health)))
		}
		survivors, err := d3.probe(tenants[1:])
		if err != nil {
			fails = append(fails, failf(oracle, "neighbor %v", err))
			return
		}
		for _, id := range tenants[1:] {
			if survivors[id] != want[id] {
				fails = append(fails, failf(oracle,
					"quarantine of %s disturbed neighbor %s:\n--- before ---\n%s\n--- after ---\n%s",
					tenants[0], id, want[id], survivors[id]))
			}
		}
		if err := d3.drain(); err != nil {
			fails = append(fails, failf(oracle, "damaged-dir drain: %v", err))
		}
	})
	return fails
}
