package chaos

// Oracle 5: component-sharded max-min fill vs its oracles on ECMP Clos
// fabrics. A random small Clos fabric from the plan seed carries a
// seeded flow workload; the oracle demands that (a) the sharded
// incremental allocator stays bitwise equal to a whole-network reference
// fill after every event (simnet's own verifyGlobal differential), (b)
// the entire observable outcome — rate fingerprint, component counts,
// ECMP pair statistics, allocator agreement bits — is byte-identical at
// mat worker counts 1 and 8 and across repeated runs, (c) the max-min
// invariants hold at the end, and (d) the bottleneck-structure backend
// agrees with progressive filling within 1e-9 relative.

import (
	"math"
	"math/rand"

	"netconstant/internal/mat"
	"netconstant/internal/simnet"
	"netconstant/internal/stats"
	"netconstant/internal/topo"
)

// closAgreementTol bounds the max-min vs bottleneck-structure relative
// rate difference (floating-point noise only; theory says zero).
const closAgreementTol = 1e-9

// closObs captures one sharded-fill run bit-for-bit.
type closObs struct {
	Err         string
	Fingerprint uint64
	Components  int
	Flows       int
	PairsTotal  int
	PairsMulti  int
	AgreeBits   uint64
}

func oracleClos(p Plan) (fails []Failure) {
	const oracle = "clos"
	guard(oracle, &fails, func() {
		var runs [4]closObs
		for i, workers := range []int{1, 8, 1, 8} {
			old := mat.SetParallelism(workers)
			obs, ofail := shardedClosRun(p)
			mat.SetParallelism(old)
			fails = append(fails, ofail...)
			runs[i] = obs
			if obs.Err != "" {
				return
			}
		}
		for i := 1; i < len(runs); i++ {
			if runs[i] != runs[0] {
				fails = append(fails, failf(oracle,
					"sharded fill not byte-identical across worker counts/replays:\n  run 0 (1 worker): %+v\n  run %d: %+v",
					runs[0], i, runs[i]))
				return
			}
		}
	})
	return fails
}

// shardedClosRun drives one seeded workload over a random Clos fabric
// with the differential verifier armed and returns the bit-exact
// observation.
func shardedClosRun(p Plan) (closObs, []Failure) {
	const oracle = "clos"
	var fails []Failure
	rng := rand.New(rand.NewSource(p.Seed + 12000))
	fabric := topo.NewClos(topo.ClosConfig{
		Leaves:         2 + rng.Intn(4),
		ServersPerLeaf: 2 + rng.Intn(3),
		Spines:         2 + rng.Intn(3),
		ServerBps:      1e9 / 8,
	})
	s := simnet.New(fabric)
	s.SetVerifyGlobal(true)
	srv := fabric.Servers()
	for k := 0; k < 60; k++ {
		a := srv[rng.Intn(len(srv))]
		b := srv[rng.Intn(len(srv))]
		if a == b {
			continue
		}
		bytes := math.Pow(10, 5+3*rng.Float64())
		at := rng.Float64() * 2
		aa, bb := a, b
		s.Eng.Schedule(at, func() { s.StartFlow(aa, bb, bytes, nil) })
	}
	for k := 0; k < 3; k++ {
		a := srv[rng.Intn(len(srv))]
		b := srv[(a+1+rng.Intn(len(srv)-1))%len(srv)]
		if a == b {
			continue
		}
		s.AddBackground(stats.NewRNG(p.Seed+12100+int64(k)), a, b, 8<<20, 0.05)
	}
	s.Eng.RunUntil(3)

	var obs closObs
	comps, flows := s.RefillAll()
	obs.Components, obs.Flows = comps, flows
	obs.PairsTotal, obs.PairsMulti = s.ECMPPairs()
	obs.Fingerprint = s.RateFingerprint()
	agree := s.AllocatorAgreement()
	obs.AgreeBits = math.Float64bits(agree)
	if err := s.VerifyError(); err != nil {
		obs.Err = err.Error()
		fails = append(fails, failf(oracle, "sharded fill diverged from whole-network reference: %v", err))
		return obs, fails
	}
	if agree > closAgreementTol {
		fails = append(fails, failf(oracle, "bottleneck-structure backend disagrees with max-min by %g relative (tol %g)", agree, closAgreementTol))
	}
	if s.ActiveFlows() > 0 {
		if err := s.CheckInvariants(); err != nil {
			obs.Err = err.Error()
			fails = append(fails, failf(oracle, "max-min invariants violated on Clos fabric: %v", err))
		}
	}
	if obs.PairsMulti == 0 {
		fails = append(fails, failf(oracle, "workload routed %d pairs but none multipath — fabric not exercising ECMP", obs.PairsTotal))
	}
	return obs, fails
}
