package chaos

import (
	"encoding/json"
	"testing"

	"netconstant/internal/stats"
)

// TestGeneratePlanDeterministic: identical seeds draw identical plans.
func TestGeneratePlanDeterministic(t *testing.T) {
	a := GeneratePlan(stats.NewRNG(7), 7, 6)
	b := GeneratePlan(stats.NewRNG(7), 7, 6)
	ja, _ := json.Marshal(a)
	jb, _ := json.Marshal(b)
	if string(ja) != string(jb) {
		t.Fatalf("same seed, different plans:\n%s\n%s", ja, jb)
	}
	if len(a.Ops) < 1 || len(a.Ops) > 6 {
		t.Fatalf("plan has %d ops, want 1..6", len(a.Ops))
	}
}

// TestPlanScenarioComposition: fault ops compose into the scenario with
// max/sum semantics and windows scaled by the calibration cost.
func TestPlanScenarioComposition(t *testing.T) {
	p := Plan{Seed: 3, Ops: []Op{
		{Kind: OpProbeLoss, P: 0.1},
		{Kind: OpProbeLoss, P: 0.3},
		{Kind: OpStraggler, N: 1},
		{Kind: OpStraggler, N: 2},
		{Kind: OpBlackout, Start: 0.5, Duration: 1.0},
		{Kind: OpKill, N: 2}, // not a fault op; must not leak into the scenario
	}}
	sc := p.Scenario(10, 8)
	if sc.ProbeLoss != 0.3 {
		t.Errorf("ProbeLoss = %v, want max 0.3", sc.ProbeLoss)
	}
	if sc.Stragglers != 3 {
		t.Errorf("Stragglers = %d, want sum 3", sc.Stragglers)
	}
	if len(sc.Blackouts) != 1 || sc.Blackouts[0].Start != 5 || sc.Blackouts[0].Duration != 10 {
		t.Errorf("Blackouts = %+v, want one window [5,15)", sc.Blackouts)
	}
	if len(sc.Blackouts[0].VMs) != 4 {
		t.Errorf("blackout darkens %d VMs, want n/2 = 4", len(sc.Blackouts[0].VMs))
	}
	if sc.Seed != 3 {
		t.Errorf("Seed = %d, want the plan's", sc.Seed)
	}
}

// TestKillPoint: an explicit kill op wins (clamped); otherwise the
// seed picks a point in [1, max].
func TestKillPoint(t *testing.T) {
	if k := (Plan{Ops: []Op{{Kind: OpKill, N: 3}}}).KillPoint(8); k != 3 {
		t.Errorf("explicit kill = %d, want 3", k)
	}
	if k := (Plan{Ops: []Op{{Kind: OpKill, N: 9}}}).KillPoint(4); k != 4 {
		t.Errorf("clamped kill = %d, want 4", k)
	}
	for seed := int64(0); seed < 20; seed++ {
		k := (Plan{Seed: seed}).KillPoint(5)
		if k < 1 || k > 5 {
			t.Fatalf("seeded kill point %d out of [1,5] for seed %d", k, seed)
		}
	}
}

// TestShrinkRegression: the shrinker reduces a bloated failing plan to
// a minimal reproducer. The seeded predicate fails iff the plan carries
// a blackout op, so the minimal plan is exactly one (shrunken) blackout.
func TestShrinkRegression(t *testing.T) {
	failing := func(p Plan) []Failure {
		for _, o := range p.Ops {
			if o.Kind == OpBlackout {
				return []Failure{{Oracle: "fixture", Detail: "blackout present"}}
			}
		}
		return nil
	}
	bloated := Plan{Seed: 11, Ops: []Op{
		{Kind: OpProbeLoss, P: 0.4},
		{Kind: OpStraggler, N: 3},
		{Kind: OpBlackout, Start: 0.9, Duration: 1.2},
		{Kind: OpChurn, P: 4000},
		{Kind: OpBlackout, Start: 0.2, Duration: 0.8},
		{Kind: OpBitFlip, N: 4},
	}}
	minimal := Shrink(bloated, failing)
	if len(minimal.Ops) != 1 || minimal.Ops[0].Kind != OpBlackout {
		t.Fatalf("shrunk to %s, want exactly one blackout op", minimal)
	}
	if o := minimal.Ops[0]; o.Start != 0 || o.Duration > 0.05 {
		t.Errorf("numeric fields not minimized: %+v", o)
	}
	if len(failing(minimal)) == 0 {
		t.Fatal("shrinker returned a passing plan")
	}
	// A plan that never failed comes back untouched.
	passing := Plan{Seed: 1, Ops: []Op{{Kind: OpProbeLoss, P: 0.2}}}
	if got := Shrink(passing, failing); len(got.Ops) != 1 || got.Ops[0].P != 0.2 {
		t.Errorf("passing plan was modified: %s", got)
	}
}

// TestJournalOracleSeededPlans: the damage oracle holds across every
// damage kind on seeded plans — the checkpoint layer's recovery
// contract is exercised directly, without a full campaign.
func TestJournalOracleSeededPlans(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		p := Plan{Seed: seed, Ops: []Op{
			{Kind: OpTruncate, N: 3},
			{Kind: OpBitFlip, N: 3},
			{Kind: OpZeroFill, N: 3},
			{Kind: OpDupeRecord, N: 2},
		}}
		if fails := oracleJournal(p); len(fails) > 0 {
			t.Errorf("seed %d: %v", seed, fails)
		}
	}
}

// TestHealthOracleSeededPlan: a representative mixed-fault plan must
// satisfy the degradation ladder and determinism invariants.
func TestHealthOracleSeededPlan(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration-heavy")
	}
	p := Plan{Seed: 5, Ops: []Op{
		{Kind: OpProbeLoss, P: 0.25},
		{Kind: OpBlackout, Start: 0.1, Duration: 1.0},
		{Kind: OpStraggler, N: 1},
	}}
	if fails := oracleHealth(p); len(fails) > 0 {
		t.Errorf("health oracle: %v", fails)
	}
}

// TestCampaignReproducible is the harness's own contract: the same
// (seed, rounds, maxops) triple yields a byte-identical report — what
// makes a CI failure replayable on any machine. It doubles as the
// seeded soak smoke: both campaigns must also pass every oracle.
func TestCampaignReproducible(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full fault campaigns")
	}
	a := Campaign(42, 2, 5)
	b := Campaign(42, 2, 5)
	ja, err := json.MarshalIndent(a, "", " ")
	if err != nil {
		t.Fatal(err)
	}
	jb, err := json.MarshalIndent(b, "", " ")
	if err != nil {
		t.Fatal(err)
	}
	if string(ja) != string(jb) {
		t.Fatalf("same seed, different campaign reports:\n--- a ---\n%s\n--- b ---\n%s", ja, jb)
	}
	if failed := a.Failed(); len(failed) > 0 {
		t.Errorf("seeded campaign broke invariants:\n%s", a)
	}
}

// TestStreamOracleSeededPlans: the streaming differential oracle holds on
// seeded plans — batch agreement before and after a regime-triggered
// partial re-solve, bit-for-bit deterministic.
func TestStreamOracleSeededPlans(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration-heavy")
	}
	for seed := int64(1); seed <= 3; seed++ {
		p := Plan{Seed: seed}
		if fails := oracleStream(p); len(fails) > 0 {
			t.Errorf("seed %d: %v", seed, fails)
		}
	}
}
