package chaos

// Oracle 4: streaming decomposition vs batch differential oracle. The
// streaming RPCA path (core.Advisor.BeginStreaming + rpca.StreamingSolver)
// promises that its warm incremental state stays within 1e-10 relative
// error of a cold batch IALM run over the identical matrices — first on
// the very trace the batch path analyzed, then again after re-measured
// pair columns and a regime-triggered partial re-solve. The whole
// sequence, agreement numbers included, must also be bit-for-bit
// deterministic across identical runs.

import (
	"math"

	"netconstant/internal/cloud"
	"netconstant/internal/core"
	"netconstant/internal/exp"
	"netconstant/internal/rpca"
	"netconstant/internal/stats"
	"netconstant/internal/topo"
)

// streamAgreementTol is the acceptance bound on every streaming-vs-batch
// relative error the oracle checks.
const streamAgreementTol = 1e-10

// streamObs captures one streaming run bit-for-bit for the determinism
// comparison.
type streamObs struct {
	Err             string
	PartialResolves int
	Calibrations    int
	LatDBits        uint64 // lat agreement RelFroD after the partial re-solve
	BwDBits         uint64
	NormEBits       uint64
	ConstFold       uint64 // order-fixed fold over the constant matrices
}

func oracleStream(p Plan) (fails []Failure) {
	const oracle = "stream"
	guard(oracle, &fails, func() {
		first, ffail := streamedCalibration(p)
		fails = append(fails, ffail...)
		if first.Err == "" {
			second, sfail := streamedCalibration(p)
			fails = append(fails, sfail...)
			if first != second {
				fails = append(fails, failf(oracle, "nondeterministic streaming:\n  run 1: %+v\n  run 2: %+v", first, second))
			}
		}
	})
	return fails
}

// streamedCalibration runs one full streaming sequence: calibrate, open a
// session, verify against the batch oracle, stream seeded pair
// re-measurements, force the regime detector to trigger a partial
// re-solve, and verify again.
func streamedCalibration(p Plan) (streamObs, []Failure) {
	const oracle = "stream"
	var fails []Failure
	cfg := exp.Quick()
	n := cfg.SmallVMs

	prov := cloud.NewProvider(cloud.ProviderConfig{
		Tree: topo.TreeConfig{Racks: cfg.Racks, ServersPerRack: cfg.ServersPerRack},
		Seed: p.Seed + 11000,
	})
	vc, err := prov.Provision(n, p.Seed+11001)
	if err != nil {
		return streamObs{Err: err.Error()}, []Failure{failf(oracle, "provision: %v", err)}
	}
	adv := core.NewAdvisor(vc, stats.NewRNG(p.Seed+11002), core.AdvisorConfig{
		TimeStep: cfg.TimeStep,
	})
	if err := adv.Calibrate(); err != nil {
		return streamObs{Err: err.Error()}, []Failure{failf(oracle, "calibrate: %v", err)}
	}
	if err := adv.BeginStreaming(); err != nil {
		return streamObs{Err: err.Error()}, []Failure{failf(oracle, "begin streaming: %v", err)}
	}

	// Agreement on the very trace the batch path saw.
	checkAgreement := func(stage string) (lat, bw rpca.StreamAgreement, fatal bool) {
		lat, bw, err := adv.VerifyStreaming()
		if err != nil {
			fails = append(fails, failf(oracle, "%s: verify: %v", stage, err))
			return lat, bw, true
		}
		for _, c := range []struct {
			name string
			rel  float64
		}{
			{"latency D", lat.RelFroD}, {"latency constant", lat.ConstantRel},
			{"bandwidth D", bw.RelFroD}, {"bandwidth constant", bw.ConstantRel},
		} {
			if math.IsNaN(c.rel) || c.rel > streamAgreementTol {
				fails = append(fails, failf(oracle, "%s: %s streaming-vs-batch disagreement %.3e (tol %.0e)",
					stage, c.name, c.rel, streamAgreementTol))
			}
		}
		return lat, bw, false
	}
	if _, _, fatal := checkAgreement("seeded trace"); fatal {
		return streamObs{Err: "verify failed"}, fails
	}

	// Stream seeded pair re-measurements: a few pairs move to a different
	// performance regime, with spiky contamination — the workload shape
	// the sparse component exists to absorb.
	rng := stats.NewRNG(p.Seed + 11003)
	rows := adv.LastCalibration().Latency.Steps()
	for k := 0; k < 3; k++ {
		src, dst := rng.Intn(n), rng.Intn(n)
		if src == dst {
			dst = (dst + 1) % n
		}
		lat := make([]float64, rows)
		bw := make([]float64, rows)
		baseLat := 1e-4 * (1 + 5*rng.Float64())
		baseBw := 1e7 * (1 + 2*rng.Float64())
		for i := range lat {
			lat[i] = baseLat
			bw[i] = baseBw
			if rng.Float64() < 0.2 { // transient contention spike
				lat[i] *= 1 + 4*rng.Float64()
				bw[i] /= 1 + 4*rng.Float64()
			}
		}
		if err := adv.StreamPair(src, dst, lat, bw); err != nil {
			fails = append(fails, failf(oracle, "stream pair (%d,%d): %v", src, dst, err))
			return streamObs{Err: err.Error()}, fails
		}
	}

	// Sustained sub-threshold divergence must trigger a partial re-solve,
	// never a full re-calibration, and the re-solve must converge back to
	// the batch answer on the updated matrices.
	calsBefore := adv.Calibrations()
	triggered := false
	for i := 0; i < 12 && !triggered; i++ {
		triggered, err = adv.Observe(1.0, 1.8)
		if err != nil {
			fails = append(fails, failf(oracle, "observe: %v", err))
			return streamObs{Err: err.Error()}, fails
		}
	}
	if !triggered {
		fails = append(fails, failf(oracle, "regime detector never triggered on sustained divergence"))
	}
	if adv.PartialResolves() == 0 {
		fails = append(fails, failf(oracle, "regime trigger did not run a partial re-solve"))
	}
	if adv.Calibrations() != calsBefore {
		fails = append(fails, failf(oracle, "regime trigger escalated to a full calibration"))
	}
	if !adv.StreamingActive() {
		fails = append(fails, failf(oracle, "partial re-solve closed the streaming session"))
	}
	lat, bw, fatal := checkAgreement("after partial re-solve")
	if fatal {
		return streamObs{Err: "verify failed"}, fails
	}

	constant := adv.Constant()
	var fold uint64
	for _, d := range [][]float64{constant.Latency.Data(), constant.Bandwth.Data()} {
		for _, v := range d {
			fold = fold*0x100000001b3 ^ math.Float64bits(v)
		}
	}
	return streamObs{
		PartialResolves: adv.PartialResolves(),
		Calibrations:    adv.Calibrations(),
		LatDBits:        math.Float64bits(lat.RelFroD),
		BwDBits:         math.Float64bits(bw.RelFroD),
		NormEBits:       math.Float64bits(adv.NormE()),
		ConstFold:       fold,
	}, fails
}
