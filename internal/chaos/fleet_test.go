package chaos

import (
	"os"
	"os/exec"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

var (
	buildOnce   sync.Once
	builtDriver string
	buildErr    error
)

// realDriver builds cmd/expdriver once per test run.
func realDriver(t *testing.T) string {
	t.Helper()
	if testing.Short() {
		t.Skip("short mode: skipping real-driver fleet oracle")
	}
	buildOnce.Do(func() {
		dir, err := os.MkdirTemp("", "chaos-driver-*")
		if err != nil {
			buildErr = err
			return
		}
		builtDriver = filepath.Join(dir, "expdriver")
		out, err := exec.Command("go", "build", "-o", builtDriver, "netconstant/cmd/expdriver").CombinedOutput()
		if err != nil {
			buildErr = err
			builtDriver = string(out)
		}
	})
	if buildErr != nil {
		t.Fatalf("building expdriver: %v: %s", buildErr, builtDriver)
	}
	return builtDriver
}

func TestSupervisorOpsDefaultKill(t *testing.T) {
	ops := supervisorOps(Plan{Seed: 1, Ops: []Op{{Kind: OpProbeLoss, P: 0.1}}})
	if len(ops) != 1 || ops[0].Kind != OpKillChild {
		t.Fatalf("ops = %v, want one default kill-child", ops)
	}
	ops = supervisorOps(Plan{Seed: 1, Ops: []Op{
		{Kind: OpStallChild, N: 2}, {Kind: OpKill, N: 3}, {Kind: OpCorruptManifest},
	}})
	if len(ops) != 2 || ops[0].Kind != OpStallChild || ops[1].Kind != OpCorruptManifest {
		t.Fatalf("ops = %v, want the two supervisor-level ops in order", ops)
	}
}

func TestRunOraclesWithoutDriverSkipsFleet(t *testing.T) {
	// Options' zero value must keep RunOraclesWith equivalent to
	// RunOracles — no driver, no child processes.
	p := Plan{Seed: 4, Ops: []Op{{Kind: OpKillChild, N: 1}}}
	a := RunOracles(p)
	b := RunOraclesWith(p, Options{})
	if len(a) != len(b) {
		t.Fatalf("RunOraclesWith(zero Options) = %v, RunOracles = %v", b, a)
	}
}

// TestFleetOracleHoldsUnderEachOpKind runs the fleet oracle with a real
// expdriver for every supervisor-level op kind: the supervisor must
// recover each sabotage and keep results byte-identical, so the oracle
// reports no failures.
func TestFleetOracleHoldsUnderEachOpKind(t *testing.T) {
	driver := realDriver(t)
	opts := Options{Driver: driver, Now: time.Now}
	for _, kind := range []string{OpKillChild, OpStallChild, OpCorruptManifest} {
		t.Run(kind, func(t *testing.T) {
			p := Plan{Seed: 77, Ops: []Op{{Kind: kind, N: 1}}}
			if fails := oracleFleet(p, opts); len(fails) > 0 {
				t.Errorf("fleet oracle failures under %s:", kind)
				for _, f := range fails {
					t.Errorf("  %s", f)
				}
			}
		})
	}
}
