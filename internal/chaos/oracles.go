package chaos

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"sync/atomic"

	"netconstant/internal/cancel"
	"netconstant/internal/checkpoint"
	"netconstant/internal/cloud"
	"netconstant/internal/core"
	"netconstant/internal/exp"
	"netconstant/internal/faults"
	"netconstant/internal/stats"
	"netconstant/internal/topo"
)

// Failure is one oracle violation: an invariant the system under fault
// broke, with enough detail to understand the report without rerunning.
type Failure struct {
	Oracle string `json:"oracle"`
	Detail string `json:"detail"`
}

func (f Failure) String() string { return f.Oracle + ": " + f.Detail }

func failf(oracle, format string, args ...any) Failure {
	return Failure{Oracle: oracle, Detail: fmt.Sprintf(format, args...)}
}

// RunOracles checks every invariant oracle against one plan and returns
// the violations (nil when the system held up). The oracle families:
//
//   - journal: damaged journals (truncation, bit flips, zeroed ranges,
//     duplicated frames) must recover to a verbatim record prefix or
//     fail with a typed *checkpoint.CorruptError — never panic, never
//     return wrong records — and a recovered journal must accept new
//     appends.
//   - resume: a checkpointed sweep interrupted at the plan's kill point
//     and resumed must render byte-identical tables to a fresh run.
//   - health: resilient calibration under the plan's fault scenario must
//     keep Norm(N_E) finite, grade a health within range, honor the
//     confidence→strategy fallback ladder, and be bit-for-bit
//     deterministic across identical runs.
//   - stream: a streaming session fed the batch path's own trace and
//     seeded pair re-measurements must agree with a cold batch solve
//     within 1e-10 before and after a regime-triggered partial re-solve,
//     never escalate the regime trigger to a full calibration, and be
//     bit-for-bit deterministic across identical runs.
//   - clos: on a random ECMP Clos fabric, the component-sharded max-min
//     fill must stay bitwise equal to a whole-network reference fill,
//     byte-identical across mat worker counts 1 and 8 and across
//     replays, satisfy the max-min invariants, and agree with the
//     bottleneck-structure backend within 1e-9 relative.
func RunOracles(p Plan) []Failure {
	var fails []Failure
	fails = append(fails, oracleJournal(p)...)
	fails = append(fails, oracleResume(p)...)
	fails = append(fails, oracleHealth(p)...)
	fails = append(fails, oracleStream(p)...)
	fails = append(fails, oracleClos(p)...)
	return fails
}

// guard runs fn, converting a panic into an oracle failure; chaos
// campaigns must report a panic as a finding, not die on it.
func guard(oracle string, fails *[]Failure, fn func()) {
	defer func() {
		if r := recover(); r != nil {
			*fails = append(*fails, failf(oracle, "panic: %v", r))
		}
	}()
	fn()
}

// --- Oracle 1: journal damage round-trip -------------------------------

// journalRecords is how many seeded records the damage oracle journals
// before attacking the file.
const journalRecords = 10

func oracleJournal(p Plan) (fails []Failure) {
	const oracle = "journal"
	dir, err := os.MkdirTemp("", "chaos-journal-")
	if err != nil {
		return []Failure{failf(oracle, "mkdtemp: %v", err)}
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "journal.nclog")

	// Seed a journal with records of varied sizes.
	rng := stats.NewRNG(p.Seed ^ 0x6a09e667)
	j, err := checkpoint.Create(path)
	if err != nil {
		return []Failure{failf(oracle, "create: %v", err)}
	}
	orig := make([][]byte, journalRecords)
	for i := range orig {
		rec := make([]byte, 1+rng.Intn(600))
		rng.Read(rec)
		orig[i] = rec
		if err := j.Append(rec); err != nil {
			j.Close()
			return []Failure{failf(oracle, "append %d: %v", i, err)}
		}
	}
	if err := j.Close(); err != nil {
		return []Failure{failf(oracle, "close: %v", err)}
	}
	pristine, err := os.ReadFile(path)
	if err != nil {
		return []Failure{failf(oracle, "read back: %v", err)}
	}
	lastFrame := 8 + len(orig[len(orig)-1]) // [len u32][crc u32][payload]

	for _, op := range p.damageOps() {
		reps := op.N
		if reps < 1 {
			reps = 1
		}
		for r := 0; r < reps; r++ {
			data := damage(append([]byte(nil), pristine...), op.Kind, rng, lastFrame)
			guard(oracle, &fails, func() {
				fails = append(fails, checkDamaged(path, data, op.Kind, orig)...)
			})
		}
	}
	return fails
}

// damage applies one seeded corruption of the given kind to data.
// lastFrame is the byte length of the final record's frame (needed to
// duplicate it verbatim).
func damage(data []byte, kind string, rng *rand.Rand, lastFrame int) []byte {
	switch kind {
	case OpTruncate:
		return data[:rng.Intn(len(data))]
	case OpBitFlip:
		pos := rng.Intn(len(data))
		data[pos] ^= 1 << rng.Intn(8)
		return data
	case OpZeroFill:
		start := rng.Intn(len(data))
		end := start + 1 + rng.Intn(64)
		if end > len(data) {
			end = len(data)
		}
		for i := start; i < end; i++ {
			data[i] = 0
		}
		return data
	case OpDupeRecord:
		return append(data, data[len(data)-lastFrame:]...)
	default:
		return data
	}
}

// checkDamaged writes the damaged image and asserts the recovery
// contract: replay either fails typed or yields a verbatim prefix of
// the original records (duplicated-final-frame extras excepted), and a
// successfully recovered journal accepts and persists a fresh append.
func checkDamaged(path string, data []byte, kind string, orig [][]byte) (fails []Failure) {
	const oracle = "journal"
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return []Failure{failf(oracle, "write damaged image: %v", err)}
	}
	rec, err := checkpoint.Replay(path)
	if err != nil {
		if !errors.Is(err, checkpoint.ErrCorrupt) {
			fails = append(fails, failf(oracle, "%s: untyped replay error: %v", kind, err))
		}
		return fails // typed refusal is a correct outcome
	}
	last := orig[len(orig)-1]
	for i, got := range rec.Records {
		want := last // extras past the original count may only be copies of the final record (the dupe case)
		if i < len(orig) {
			want = orig[i]
		}
		if !bytes.Equal(got, want) {
			fails = append(fails, failf(oracle, "%s: recovered record %d is not a verbatim prefix (got %d bytes, want %d)",
				kind, i, len(got), len(want)))
			return fails
		}
	}
	if len(rec.Records) > len(orig) && kind != OpDupeRecord {
		fails = append(fails, failf(oracle, "%s: recovery invented %d extra records", kind, len(rec.Records)-len(orig)))
	}

	// A journal that replays must also reopen and extend: append one
	// probe record and replay again.
	j, reopen, err := checkpoint.Open(path)
	if err != nil {
		fails = append(fails, failf(oracle, "%s: replay succeeded but reopen failed: %v", kind, err))
		return fails
	}
	if len(reopen.Records) != len(rec.Records) {
		fails = append(fails, failf(oracle, "%s: open recovered %d records, replay %d", kind, len(reopen.Records), len(rec.Records)))
	}
	probe := []byte("chaos-probe-record")
	if err := j.Append(probe); err != nil {
		j.Close()
		fails = append(fails, failf(oracle, "%s: append after recovery: %v", kind, err))
		return fails
	}
	if err := j.Close(); err != nil {
		fails = append(fails, failf(oracle, "%s: close after recovery: %v", kind, err))
		return fails
	}
	after, err := checkpoint.Replay(path)
	if err != nil {
		fails = append(fails, failf(oracle, "%s: replay after recovery+append: %v", kind, err))
		return fails
	}
	if n := len(after.Records); n != len(rec.Records)+1 || !bytes.Equal(after.Records[n-1], probe) {
		fails = append(fails, failf(oracle, "%s: append after recovery not persisted (%d records, want %d)",
			kind, n, len(rec.Records)+1))
	}
	return fails
}

// --- Oracle 2: resume equals fresh -------------------------------------

// oracleResume runs a small checkpointed Fig 7 sweep, interrupts it at
// the plan's kill point, resumes from the journal at a different worker
// count, and requires the resumed tables to be byte-identical to an
// uninterrupted run's.
func oracleResume(p Plan) (fails []Failure) {
	const oracle = "resume"
	guard(oracle, &fails, func() {
		cfg := exp.Quick()
		cfg.Seed = p.Seed
		cfg.Runs = 6
		cfg.VMs = 8
		cfg.SmallVMs = 4

		fresh := cfg
		fresh.Workers = 2
		want, err := exp.Fig7Overall(fresh)
		if err != nil {
			fails = append(fails, failf(oracle, "fresh run: %v", err))
			return
		}

		dir, err := os.MkdirTemp("", "chaos-resume-")
		if err != nil {
			fails = append(fails, failf(oracle, "mkdtemp: %v", err))
			return
		}
		defer os.RemoveAll(dir)

		// Interrupted run: cancel once the kill point has journaled. With
		// several workers in flight the sweep may drain to completion
		// anyway — that is fine; the contract under test is that whatever
		// progress was journaled resumes to identical bytes.
		kill := int64(p.KillPoint(cfg.Runs - 1))
		interrupted := cfg
		interrupted.Workers = 4
		ctx, stop := context.WithCancel(context.Background())
		defer stop()
		interrupted.Ctx = ctx
		var done atomic.Int64
		interrupted.PointHook = func(string, int) {
			if done.Add(1) == kill {
				stop()
			}
		}
		ck, err := exp.OpenCheckpoint(dir, cfg)
		if err != nil {
			fails = append(fails, failf(oracle, "open checkpoint: %v", err))
			return
		}
		interrupted.Ckpt = ck
		if _, err := exp.Fig7Overall(interrupted); err != nil && !errors.Is(err, cancel.ErrCanceled) {
			ck.Close()
			fails = append(fails, failf(oracle, "interrupted run failed untyped: %v", err))
			return
		}
		if err := ck.Close(); err != nil {
			fails = append(fails, failf(oracle, "close checkpoint: %v", err))
			return
		}

		// Resume at a different worker count from the same journal.
		resumed := cfg
		resumed.Workers = 1
		ck2, err := exp.OpenCheckpoint(dir, cfg)
		if err != nil {
			fails = append(fails, failf(oracle, "reopen checkpoint: %v", err))
			return
		}
		defer ck2.Close()
		if ck2.Stats().ResumedPoints < int(kill) {
			fails = append(fails, failf(oracle, "journal lost progress: %d points resumed, want ≥ %d",
				ck2.Stats().ResumedPoints, kill))
		}
		resumed.Ckpt = ck2
		got, err := exp.Fig7Overall(resumed)
		if err != nil {
			fails = append(fails, failf(oracle, "resumed run: %v", err))
			return
		}
		if got.Table.String() != want.Table.String() || got.CDFTable.String() != want.CDFTable.String() {
			fails = append(fails, failf(oracle, "resumed tables differ from fresh (kill point %d)", kill))
		}
	})
	return fails
}

// --- Oracle 3: calibration-health ladder under faults ------------------

// healthObs captures one faulted calibration run bit-for-bit, so two
// identically seeded runs can be compared exactly.
type healthObs struct {
	Err        string
	NormEBits  uint64
	CovBits    uint64
	QualBits   uint64
	Confidence string
	Strategy   string
	Events     string
}

// oracleHealth provisions a small cluster, wraps it in the plan's fault
// scenario, runs the resilient calibration pipeline, and checks the
// degradation contract: health stays in range, Norm(N_E) stays finite,
// the advisor's effective strategy follows the confidence fallback
// ladder, guidance still plans a usable tree — and the whole run is
// bit-for-bit deterministic.
func oracleHealth(p Plan) (fails []Failure) {
	const oracle = "health"
	guard(oracle, &fails, func() {
		// The ladder itself must be monotone in confidence: more
		// confidence can never select a *less* capable strategy.
		rank := map[core.Strategy]int{core.Baseline: 0, core.Heuristics: 1, core.RPCA: 2}
		prev := -1
		for c := core.ConfidenceNone; c <= core.ConfidenceHigh; c++ {
			r := rank[core.FallbackStrategy(core.RPCA, c)]
			if r < prev {
				fails = append(fails, failf(oracle, "fallback ladder not monotone at confidence %v", c))
			}
			prev = r
		}

		first, ffail := faultedCalibration(p)
		fails = append(fails, ffail...)
		if first.Err == "" {
			second, sfail := faultedCalibration(p)
			fails = append(fails, sfail...)
			if first != second {
				fails = append(fails, failf(oracle, "nondeterministic under faults:\n  run 1: %+v\n  run 2: %+v", first, second))
			}
		}
	})
	return fails
}

// faultedCalibration is one observation for oracleHealth: baseline
// cost, faulted resilient calibration, invariant checks.
func faultedCalibration(p Plan) (healthObs, []Failure) {
	const oracle = "health"
	var fails []Failure
	cfg := exp.Quick()
	n := cfg.SmallVMs
	advCfg := core.AdvisorConfig{
		TimeStep:    cfg.TimeStep,
		Calibration: cloud.CalibrationConfig{Resilient: true},
	}
	build := func(seedShift int64) (*cloud.Provider, *cloud.VirtualCluster, error) {
		prov := cloud.NewProvider(cloud.ProviderConfig{
			Tree: topo.TreeConfig{Racks: cfg.Racks, ServersPerRack: cfg.ServersPerRack},
			Seed: p.Seed + 9000 + seedShift,
		})
		vc, err := prov.Provision(n, p.Seed+9001+seedShift)
		return prov, vc, err
	}

	// Fault-free run fixes the timescale the scenario windows scale to.
	_, vc0, err := build(0)
	if err != nil {
		return healthObs{Err: err.Error()}, []Failure{failf(oracle, "provision: %v", err)}
	}
	adv0 := core.NewAdvisor(vc0, stats.NewRNG(p.Seed+9002), advCfg)
	if err := adv0.Calibrate(); err != nil {
		return healthObs{Err: err.Error()}, []Failure{failf(oracle, "fault-free calibration failed: %v", err)}
	}
	baseCost := adv0.CalibrationCost()

	// Faulted run on an identically seeded sibling cluster.
	_, vc, err := build(0)
	if err != nil {
		return healthObs{Err: err.Error()}, []Failure{failf(oracle, "provision: %v", err)}
	}
	fc := faults.Wrap(vc, p.Scenario(baseCost, n))
	adv := core.NewAdvisor(fc, stats.NewRNG(p.Seed+9002), advCfg)
	if err := adv.Calibrate(); err != nil {
		// A typed, deterministic refusal under extreme faults is within
		// contract; the determinism comparison below still applies to it
		// via the error string.
		return healthObs{Err: err.Error()}, nil
	}

	h := adv.Health()
	if math.IsNaN(h.Coverage) || h.Coverage < 0 || h.Coverage > 1 {
		fails = append(fails, failf(oracle, "coverage out of range: %v", h.Coverage))
	}
	if math.IsNaN(h.MeanQuality) || h.MeanQuality < 0 || h.MeanQuality > 1 {
		fails = append(fails, failf(oracle, "mean quality out of range: %v", h.MeanQuality))
	}
	if ne := adv.NormE(); math.IsNaN(ne) || math.IsInf(ne, 0) {
		fails = append(fails, failf(oracle, "Norm(N_E) not finite: %v", ne))
	}
	strat := adv.EffectiveStrategy(core.RPCA)
	if want := core.FallbackStrategy(core.RPCA, h.Confidence); strat != want {
		fails = append(fails, failf(oracle, "ladder violated: confidence %v used %v, contract says %v",
			h.Confidence, strat, want))
	}
	if h.Confidence < core.ConfidenceReduced && strat == core.RPCA {
		fails = append(fails, failf(oracle, "RPCA guidance used at confidence %v", h.Confidence))
	}
	if tree := adv.PlanTree(core.RPCA, 0, cfg.MsgBytes, nil, nil); tree == nil {
		fails = append(fails, failf(oracle, "degraded guidance planned a nil tree"))
	}

	counts := fc.EventCounts()
	keys := make([]string, 0, len(counts))
	byKey := make(map[string]int, len(counts))
	for k, v := range counts {
		s := fmt.Sprint(k)
		keys = append(keys, s)
		byKey[s] = v
	}
	sort.Strings(keys)
	var ev bytes.Buffer
	for _, k := range keys {
		fmt.Fprintf(&ev, "%s=%d;", k, byKey[k])
	}

	return healthObs{
		NormEBits:  math.Float64bits(adv.NormE()),
		CovBits:    math.Float64bits(h.Coverage),
		QualBits:   math.Float64bits(h.MeanQuality),
		Confidence: h.Confidence.String(),
		Strategy:   strat.String(),
		Events:     ev.String(),
	}, fails
}
