// Package chaos is the deterministic chaos-soak harness: seeded
// randomized fault campaigns composed from the repo's fault injectors
// (internal/faults) and crash substrate (internal/checkpoint), checked
// against invariant oracles — journal recovery integrity, the
// calibration-health fallback ladder, Norm(N_E) finiteness, and
// resume-equals-fresh byte identity — with automatic shrinking of any
// failing campaign to a minimal replayable plan.
//
// Everything flows from a single seed: the same (seed, rounds) pair
// replays the identical campaign, op for op, so a failure in CI is a
// failure on a laptop. No wall clock, no process-global randomness.
package chaos

import (
	"fmt"
	"math/rand"
	"strings"

	"netconstant/internal/faults"
)

// Op kinds a plan can contain. Each arms one fault injector (or, for
// OpKill, sets where the resume oracle interrupts the sweep).
const (
	OpProbeLoss  = "probe-loss" // P: iid probe-loss probability
	OpHeavyTail  = "heavy-tail" // P: Pareto-outlier probability
	OpStraggler  = "straggler"  // N: persistently slow VMs
	OpBlackout   = "blackout"   // Start/Duration: correlated outage window (fractions of one calibration)
	OpPartition  = "partition"  // N + Start/Duration: transient group split
	OpChurn      = "churn"      // P: VM restarts per VM per day (scaled ×1000)
	OpKill       = "kill"       // N: interrupt the checkpointed sweep after N journaled points
	OpTruncate   = "truncate"   // journal damage: cut the tail at a seeded offset
	OpBitFlip    = "bit-flip"   // journal damage: flip one seeded bit
	OpZeroFill   = "zero-fill"  // journal damage: zero a seeded byte range
	OpDupeRecord = "dupe"       // journal damage: re-append a copy of the final frame

	// Supervisor-level ops, checked by the fleet oracle against a live
	// expfleet campaign (they are inert when no driver binary is
	// supplied — see Options.Driver).
	OpKillChild       = "kill-child"       // N: SIGKILL a campaign child after N journaled points
	OpStallChild      = "stall-child"      // N: SIGSTOP a campaign child after N journaled points
	OpCorruptManifest = "corrupt-manifest" // overwrite a task's checkpoint manifest before a launch
)

// opKinds is the generator's menu, fault ops weighted ahead of damage
// ops so most plans exercise the measurement path.
var opKinds = []string{
	OpProbeLoss, OpHeavyTail, OpStraggler, OpBlackout, OpPartition, OpChurn,
	OpKill, OpTruncate, OpBitFlip, OpZeroFill, OpDupeRecord,
	OpKillChild, OpStallChild, OpCorruptManifest,
}

// Op is one fault or crash action. Which fields matter depends on Kind;
// unused fields stay zero so plans print and shrink cleanly.
type Op struct {
	Kind     string  `json:"kind"`
	P        float64 `json:"p,omitempty"`        // probability / rate
	N        int     `json:"n,omitempty"`        // count (VMs, points, group size)
	Start    float64 `json:"start,omitempty"`    // window start, fraction of one calibration
	Duration float64 `json:"duration,omitempty"` // window length, fraction of one calibration
}

func (o Op) String() string {
	var b strings.Builder
	b.WriteString(o.Kind)
	if o.P != 0 {
		fmt.Fprintf(&b, " p=%.3f", o.P)
	}
	if o.N != 0 {
		fmt.Fprintf(&b, " n=%d", o.N)
	}
	if o.Duration != 0 {
		fmt.Fprintf(&b, " window=[%.2f,%.2f)", o.Start, o.Start+o.Duration)
	}
	return b.String()
}

// Plan is one replayable fault campaign: a seed (driving the injectors,
// the workload, and the damage offsets) plus the ops to arm.
type Plan struct {
	Seed int64 `json:"seed"`
	Ops  []Op  `json:"ops"`
}

func (p Plan) String() string {
	ops := make([]string, len(p.Ops))
	for i, o := range p.Ops {
		ops[i] = o.String()
	}
	return fmt.Sprintf("plan{seed=%d: %s}", p.Seed, strings.Join(ops, "; "))
}

// GeneratePlan draws a random plan of 1..maxOps ops. All randomness
// comes from rng, so identical streams yield identical plans.
func GeneratePlan(rng *rand.Rand, seed int64, maxOps int) Plan {
	if maxOps < 1 {
		maxOps = 1
	}
	nops := 1 + rng.Intn(maxOps)
	p := Plan{Seed: seed}
	for k := 0; k < nops; k++ {
		op := Op{Kind: opKinds[rng.Intn(len(opKinds))]}
		switch op.Kind {
		case OpProbeLoss:
			op.P = 0.05 + 0.35*rng.Float64()
		case OpHeavyTail:
			op.P = 0.05 + 0.25*rng.Float64()
		case OpStraggler:
			op.N = 1 + rng.Intn(3)
		case OpBlackout:
			op.Start = rng.Float64()
			op.Duration = 0.1 + 1.2*rng.Float64()
		case OpPartition:
			op.N = 2 + rng.Intn(3)
			op.Start = rng.Float64()
			op.Duration = 0.1 + 0.8*rng.Float64()
		case OpChurn:
			op.P = 500 + 4000*rng.Float64() // restarts/VM/day — compressed timescale
		case OpKill:
			op.N = 1 + rng.Intn(5)
		case OpBitFlip, OpZeroFill, OpTruncate, OpDupeRecord:
			op.N = 1 + rng.Intn(4) // damage intensity (repetitions)
		case OpKillChild, OpStallChild:
			op.N = 1 + rng.Intn(3) // journaled points before the hit
		}
		p.Ops = append(p.Ops, op)
	}
	return p
}

// Scenario composes the plan's fault ops into a faults.Scenario whose
// time windows are expressed in multiples of calCost (the duration of
// one fault-free calibration), over a cluster of n VMs.
func (p Plan) Scenario(calCost float64, n int) faults.Scenario {
	sc := faults.Scenario{Seed: p.Seed}
	for _, o := range p.Ops {
		switch o.Kind {
		case OpProbeLoss:
			if sc.ProbeLoss < o.P {
				sc.ProbeLoss = o.P
			}
		case OpHeavyTail:
			if sc.HeavyTailProb < o.P {
				sc.HeavyTailProb = o.P
			}
		case OpStraggler:
			sc.Stragglers += o.N
		case OpBlackout:
			// Dark the first half of the cluster for the window.
			vms := make([]int, 0, n/2)
			for vm := 0; vm < n/2; vm++ {
				vms = append(vms, vm)
			}
			sc.Blackouts = append(sc.Blackouts, faults.Blackout{
				VMs:      vms,
				Start:    o.Start * calCost,
				Duration: o.Duration * calCost,
				Label:    "chaos",
			})
		case OpPartition:
			g := o.N
			if g > n-1 {
				g = n - 1
			}
			group := make([]int, g)
			for i := range group {
				group[i] = i
			}
			sc.Partitions = append(sc.Partitions, faults.Partition{
				Group:    group,
				Start:    o.Start * calCost,
				Duration: o.Duration * calCost,
			})
		case OpChurn:
			sc.ChurnRate += o.P
		}
	}
	return sc
}

// KillPoint returns where the resume oracle should interrupt the sweep:
// the plan's OpKill count if present, else a seeded default in [1, max].
// The oracle always runs — a campaign without an explicit kill op still
// proves resume-equals-fresh.
func (p Plan) KillPoint(max int) int {
	for _, o := range p.Ops {
		if o.Kind == OpKill && o.N > 0 {
			if o.N > max {
				return max
			}
			return o.N
		}
	}
	k := int(p.Seed%int64(max)) + 1
	if k > max {
		k = max
	}
	return k
}

// damageOps returns the journal-damage ops in plan order; when the plan
// carries none, the journal oracle applies a seeded default truncation
// so every campaign exercises torn-tail recovery.
func (p Plan) damageOps() []Op {
	var out []Op
	for _, o := range p.Ops {
		switch o.Kind {
		case OpTruncate, OpBitFlip, OpZeroFill, OpDupeRecord:
			out = append(out, o)
		}
	}
	if len(out) == 0 {
		out = append(out, Op{Kind: OpTruncate, N: 1})
	}
	return out
}
