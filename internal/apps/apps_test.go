package apps

import (
	"math"
	"strings"
	"testing"

	"netconstant/internal/mpi"
	"netconstant/internal/netmodel"
)

func uniformNet(n int, alpha, beta float64) *mpi.AnalyticNet {
	pm := netmodel.NewPerfMatrix(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				pm.SetLink(i, j, netmodel.Link{Alpha: alpha, Beta: beta})
			}
		}
	}
	return mpi.NewAnalyticNet(pm)
}

func TestBreakdown(t *testing.T) {
	b := Breakdown{Computation: 1, Communication: 2, Overhead: 3}
	if b.Total() != 6 {
		t.Error("total")
	}
	b.Add(Breakdown{Computation: 1})
	if b.Computation != 2 {
		t.Error("add")
	}
	if !strings.Contains(b.String(), "total=") {
		t.Error("string")
	}
}

func TestNBodyRuns(t *testing.T) {
	n := 4
	tr := mpi.BinomialTree(n, 0)
	res, err := RunNBody(uniformNet(n, 1e-4, 1e8), tr, tr, NBodyConfig{
		Bodies: 64, Steps: 5, Ranks: n, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Breakdown.Communication <= 0 || res.Breakdown.Computation <= 0 {
		t.Errorf("breakdown %v", res.Breakdown)
	}
	if res.Energy <= 0 || math.IsNaN(res.Energy) {
		t.Errorf("energy %v", res.Energy)
	}
}

func TestNBodyDeterministic(t *testing.T) {
	n := 4
	tr := mpi.BinomialTree(n, 0)
	run := func() float64 {
		res, err := RunNBody(uniformNet(n, 1e-4, 1e8), tr, tr, NBodyConfig{
			Bodies: 32, Steps: 3, Ranks: n, Seed: 7,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Energy
	}
	if run() != run() {
		t.Error("N-body not deterministic")
	}
}

func TestNBodyMsgBytesOverride(t *testing.T) {
	n := 4
	tr := mpi.BinomialTree(n, 0)
	small, _ := RunNBody(uniformNet(n, 0, 1e6), tr, tr, NBodyConfig{Bodies: 32, Steps: 2, Ranks: n, MsgBytes: 1 << 10})
	large, _ := RunNBody(uniformNet(n, 0, 1e6), tr, tr, NBodyConfig{Bodies: 32, Steps: 2, Ranks: n, MsgBytes: 1 << 20})
	if large.Breakdown.Communication <= small.Breakdown.Communication {
		t.Error("bigger messages should cost more communication")
	}
}

func TestNBodyCommScalesWithSteps(t *testing.T) {
	n := 4
	tr := mpi.BinomialTree(n, 0)
	r1, _ := RunNBody(uniformNet(n, 0, 1e6), tr, tr, NBodyConfig{Bodies: 32, Steps: 2, Ranks: n, Seed: 1})
	r2, _ := RunNBody(uniformNet(n, 0, 1e6), tr, tr, NBodyConfig{Bodies: 32, Steps: 4, Ranks: n, Seed: 1})
	ratio := r2.Breakdown.Communication / r1.Breakdown.Communication
	if math.Abs(ratio-2) > 0.01 {
		t.Errorf("communication should double with steps: ratio %v", ratio)
	}
}

func TestNBodyErrors(t *testing.T) {
	tr := mpi.BinomialTree(4, 0)
	if _, err := RunNBody(uniformNet(4, 0, 1), tr, tr, NBodyConfig{}); err == nil {
		t.Error("zero config should error")
	}
	if _, err := RunNBody(uniformNet(4, 0, 1), tr, tr, NBodyConfig{Bodies: 8, Steps: 1, Ranks: 5}); err == nil {
		t.Error("rank mismatch should error")
	}
}

func TestCGRunsAndConverges(t *testing.T) {
	n := 4
	tr := mpi.BinomialTree(n, 0)
	res, err := RunCG(uniformNet(n, 1e-4, 1e8), tr, tr, CGConfig{VectorSize: 400, Ranks: n})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Errorf("CG did not converge: %d iters residual %v", res.Iterations, res.Residual)
	}
	if res.Breakdown.Communication <= 0 || res.Breakdown.Computation <= 0 {
		t.Errorf("breakdown %v", res.Breakdown)
	}
	if res.Iterations <= 0 {
		t.Error("iterations")
	}
}

func TestCGMoreUnknownsMoreIterations(t *testing.T) {
	// The paper's Fig 9a rationale: larger vectors need more iterations, so
	// communication time grows and network-aware optimization pays off.
	n := 4
	tr := mpi.BinomialTree(n, 0)
	small, err := RunCG(uniformNet(n, 0, 1e8), tr, tr, CGConfig{VectorSize: 100, Ranks: n})
	if err != nil {
		t.Fatal(err)
	}
	large, err := RunCG(uniformNet(n, 0, 1e8), tr, tr, CGConfig{VectorSize: 2500, Ranks: n})
	if err != nil {
		t.Fatal(err)
	}
	if large.Iterations <= small.Iterations {
		t.Errorf("iterations %d vs %d", large.Iterations, small.Iterations)
	}
	if large.Breakdown.Communication <= small.Breakdown.Communication {
		t.Error("communication should grow with problem size")
	}
}

func TestCGErrors(t *testing.T) {
	tr := mpi.BinomialTree(4, 0)
	if _, err := RunCG(uniformNet(4, 0, 1), tr, tr, CGConfig{}); err == nil {
		t.Error("zero config should error")
	}
	if _, err := RunCG(uniformNet(4, 0, 1), tr, tr, CGConfig{VectorSize: 10, Ranks: 3}); err == nil {
		t.Error("rank mismatch should error")
	}
}

func TestFasterNetworkReducesOnlyCommunication(t *testing.T) {
	n := 4
	tr := mpi.BinomialTree(n, 0)
	slow, _ := RunNBody(uniformNet(n, 1e-4, 1e6), tr, tr, NBodyConfig{Bodies: 32, Steps: 3, Ranks: n, Seed: 2})
	fast, _ := RunNBody(uniformNet(n, 1e-4, 1e9), tr, tr, NBodyConfig{Bodies: 32, Steps: 3, Ranks: n, Seed: 2})
	if fast.Breakdown.Communication >= slow.Breakdown.Communication {
		t.Error("faster network should reduce communication time")
	}
	if math.Abs(fast.Breakdown.Computation-slow.Breakdown.Computation) > 1e-12 {
		t.Error("computation time should be unaffected by the network")
	}
}
