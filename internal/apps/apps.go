// Package apps implements the paper's two real-world applications (§V-A,
// §V-D2): N-body (all-pairs gravity) and conjugate gradient (CG). Both run
// their actual numerics in-process while charging communication time to a
// simulated-time mpi.Network and computation time to a flop-rate model, so
// results are deterministic and the computation/communication/overhead
// breakdown of Fig 9 can be reported exactly.
//
// As in the paper, the all-to-all exchange both applications need is
// implemented as a gather followed by a broadcast (the MPICH2 composition),
// so the communication trees chosen by each strategy directly determine
// the communication time.
package apps

import (
	"errors"
	"fmt"
	"math"

	"netconstant/internal/mpi"
	"netconstant/internal/sparse"
	"netconstant/internal/stats"
)

// Breakdown partitions application elapsed time as in Fig 9: computation,
// communication, and "other overheads" (calibration + RPCA analysis).
type Breakdown struct {
	Computation   float64
	Communication float64
	Overhead      float64
}

// Total returns the end-to-end elapsed time.
func (b Breakdown) Total() float64 { return b.Computation + b.Communication + b.Overhead }

// Add accumulates another breakdown.
func (b *Breakdown) Add(o Breakdown) {
	b.Computation += o.Computation
	b.Communication += o.Communication
	b.Overhead += o.Overhead
}

// String renders the breakdown.
func (b Breakdown) String() string {
	return fmt.Sprintf("total=%.3fs comp=%.3fs comm=%.3fs overhead=%.3fs",
		b.Total(), b.Computation, b.Communication, b.Overhead)
}

// NBodyConfig parameterizes the N-body run. The zero value is completed
// with the paper's defaults: 2560 steps would be the full Fig 9b sweep,
// but Steps must be set explicitly; FlopRate defaults to 1 Gflop/s per
// rank.
type NBodyConfig struct {
	Bodies   int     // total bodies across all ranks
	Steps    int     // simulation steps (#Step in Fig 9b)
	Ranks    int     // number of processes; must divide into Bodies sensibly
	MsgBytes float64 // per-rank all-to-all chunk; 0 derives it from Bodies
	FlopRate float64 // simulated compute throughput per rank, flops/s
	DT       float64 // integration step
	Seed     int64
}

// NBodyResult reports the run.
type NBodyResult struct {
	Breakdown Breakdown
	// Energy is the final total kinetic energy — a physics checksum that
	// tests use to verify the numerics are real and deterministic.
	Energy float64
}

type body struct {
	pos, vel [3]float64
	mass     float64
}

// RunNBody executes the gravitational N-body loop: each step exchanges all
// positions via gather+broadcast on the supplied network and then
// integrates the owned chunk. Communication elapsed time comes from the
// network; computation time is flops/FlopRate.
func RunNBody(net mpi.Network, gather, bcast *mpi.Tree, cfg NBodyConfig) (*NBodyResult, error) {
	if cfg.Bodies <= 0 || cfg.Steps <= 0 || cfg.Ranks <= 0 {
		return nil, errors.New("apps: NBody needs positive Bodies, Steps and Ranks")
	}
	if gather.NumRanks() != cfg.Ranks || bcast.NumRanks() != cfg.Ranks {
		return nil, errors.New("apps: tree rank count mismatch")
	}
	if cfg.FlopRate <= 0 {
		cfg.FlopRate = 1e9
	}
	if cfg.DT <= 0 {
		cfg.DT = 1e-3
	}
	msg := cfg.MsgBytes
	if msg <= 0 {
		// Each rank ships its chunk of positions+masses: 4 float64s/body.
		msg = float64(cfg.Bodies) / float64(cfg.Ranks) * 32
	}

	// Initialize bodies deterministically on a disc with small random
	// velocities.
	rng := stats.NewRNG(cfg.Seed ^ 0xb0d1e5)
	bodies := make([]body, cfg.Bodies)
	for i := range bodies {
		r := 1 + rng.Float64()
		theta := 2 * math.Pi * rng.Float64()
		bodies[i].pos = [3]float64{r * math.Cos(theta), r * math.Sin(theta), 0.1 * rng.NormFloat64()}
		bodies[i].vel = [3]float64{0.05 * rng.NormFloat64(), 0.05 * rng.NormFloat64(), 0}
		bodies[i].mass = 1 / float64(cfg.Bodies)
	}

	res := &NBodyResult{}
	const g = 1.0
	const soft2 = 1e-4
	perRank := (cfg.Bodies + cfg.Ranks - 1) / cfg.Ranks

	for step := 0; step < cfg.Steps; step++ {
		// All-to-all position exchange (gather to root, broadcast back).
		res.Breakdown.Communication += mpi.RunAllToAll(net, gather, bcast, msg)

		// Each rank computes forces for its chunk against all bodies. The
		// numerics run here sequentially; the simulated cost is the
		// per-rank share (ranks compute in parallel).
		acc := make([][3]float64, cfg.Bodies)
		for i := range bodies {
			for j := range bodies {
				if i == j {
					continue
				}
				dx := bodies[j].pos[0] - bodies[i].pos[0]
				dy := bodies[j].pos[1] - bodies[i].pos[1]
				dz := bodies[j].pos[2] - bodies[i].pos[2]
				d2 := dx*dx + dy*dy + dz*dz + soft2
				inv := 1 / (d2 * math.Sqrt(d2))
				f := g * bodies[j].mass * inv
				acc[i][0] += f * dx
				acc[i][1] += f * dy
				acc[i][2] += f * dz
			}
		}
		for i := range bodies {
			for k := 0; k < 3; k++ {
				bodies[i].vel[k] += cfg.DT * acc[i][k]
				bodies[i].pos[k] += cfg.DT * bodies[i].vel[k]
			}
		}
		// ~20 flops per interaction; each rank owns perRank bodies.
		flops := float64(perRank) * float64(cfg.Bodies) * 20
		res.Breakdown.Computation += flops / cfg.FlopRate
	}

	for i := range bodies {
		v2 := bodies[i].vel[0]*bodies[i].vel[0] + bodies[i].vel[1]*bodies[i].vel[1] + bodies[i].vel[2]*bodies[i].vel[2]
		res.Energy += 0.5 * bodies[i].mass * v2
	}
	return res, nil
}

// CGConfig parameterizes the distributed conjugate gradient run of Fig 9a.
type CGConfig struct {
	VectorSize int     // unknowns in the linear system (the Fig 9a x-axis)
	Ranks      int     // number of processes
	FlopRate   float64 // simulated compute throughput per rank, flops/s
	Tol        float64 // convergence: ‖r‖ ≤ Tol·‖g0‖ (paper: 1e-5)
	MaxIter    int
}

// CGResult reports the run.
type CGResult struct {
	Breakdown  Breakdown
	Iterations int
	Converged  bool
	Residual   float64
}

// RunCG solves a 2-D Poisson system of about VectorSize unknowns with the
// real CG iteration, charging per-iteration communication (the vector
// all-to-all as gather+broadcast) to the network and SpMV flops to the
// compute model.
func RunCG(net mpi.Network, gather, bcast *mpi.Tree, cfg CGConfig) (*CGResult, error) {
	if cfg.VectorSize <= 0 || cfg.Ranks <= 0 {
		return nil, errors.New("apps: CG needs positive VectorSize and Ranks")
	}
	if gather.NumRanks() != cfg.Ranks || bcast.NumRanks() != cfg.Ranks {
		return nil, errors.New("apps: tree rank count mismatch")
	}
	if cfg.FlopRate <= 0 {
		cfg.FlopRate = 1e9
	}
	if cfg.Tol <= 0 {
		cfg.Tol = 1e-5
	}

	// Build a near-square 2-D Laplacian with ~VectorSize unknowns.
	nx := int(math.Sqrt(float64(cfg.VectorSize)))
	if nx < 1 {
		nx = 1
	}
	ny := (cfg.VectorSize + nx - 1) / nx
	a := sparse.Laplacian2D(nx, ny)
	n, _ := a.Dims()
	b := make([]float64, n)
	for i := range b {
		b[i] = math.Sin(float64(i) * 0.1)
	}

	res := &CGResult{}
	// Per-iteration costs: SpMV (2 flops per nonzero) plus vector ops
	// (~10n flops), split across ranks; the per-rank vector chunk travels
	// through gather+broadcast.
	perIterFlops := (2*float64(a.NNZ()) + 10*float64(n)) / float64(cfg.Ranks)
	chunkBytes := float64(n) / float64(cfg.Ranks) * 8

	out, err := sparse.CG(a, b, nil, sparse.CGOptions{
		Tol:     cfg.Tol,
		MaxIter: cfg.MaxIter,
		OnIteration: func(iter int, resid float64) {
			res.Breakdown.Computation += perIterFlops / cfg.FlopRate
			res.Breakdown.Communication += mpi.RunAllToAll(net, gather, bcast, chunkBytes)
		},
	})
	if err != nil {
		return nil, err
	}
	res.Iterations = out.Iterations
	res.Converged = out.Converged
	res.Residual = out.Residual
	return res, nil
}
