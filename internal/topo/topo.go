// Package topo models data-center network topologies: servers, switches,
// capacitated links, and shortest-path routing. The paper's simulations
// (§V-A) use a two-level tree — servers grouped into racks, rack switches
// connected by a core switch — which NewTree builds; a k-ary fat tree is
// provided as an extension for ablation studies.
package topo

import (
	"fmt"
)

// NodeKind distinguishes servers from switches.
type NodeKind int

const (
	// Server nodes host virtual machines and terminate flows.
	Server NodeKind = iota
	// Switch nodes only forward traffic.
	Switch
)

// Node is a vertex of the data-center graph.
type Node struct {
	ID   int
	Kind NodeKind
	Rack int // rack index for servers and rack switches; -1 for core
}

// LinkID identifies a (bidirectional) physical link.
type LinkID int

// Link is a capacitated bidirectional edge.
type Link struct {
	ID       LinkID
	A, B     int     // endpoint node IDs
	Capacity float64 // bytes per second, per direction
	Latency  float64 // seconds, per traversal
}

// Topology is an undirected graph of nodes and capacitated links.
type Topology struct {
	nodes   []Node
	links   []Link
	adj     [][]IncidentLink // node -> incident links
	servers []int            // server node IDs, maintained by AddNode
}

// IncidentLink is one adjacency entry: a link and the neighbor it leads
// to. Incident exposes these for external traversals (ECMP routing in
// simnet walks the shortest-path DAG through them).
type IncidentLink struct {
	Link LinkID
	Peer int
}

// New creates an empty topology.
func New() *Topology { return &Topology{} }

// AddNode appends a node and returns its ID.
func (t *Topology) AddNode(kind NodeKind, rack int) int {
	id := len(t.nodes)
	t.nodes = append(t.nodes, Node{ID: id, Kind: kind, Rack: rack})
	t.adj = append(t.adj, nil)
	if kind == Server {
		t.servers = append(t.servers, id)
	}
	return id
}

// AddLink connects nodes a and b with the given capacity (bytes/s) and
// latency (s), returning the link ID. It panics on invalid input; use
// AddLinkE when building from untrusted data.
func (t *Topology) AddLink(a, b int, capacity, latency float64) LinkID {
	id, err := t.AddLinkE(a, b, capacity, latency)
	if err != nil {
		panic(err)
	}
	return id
}

// AddLinkE is the fallible variant of AddLink. Errors wrap ErrNodeRange,
// ErrSelfLink, or ErrBadCapacity.
func (t *Topology) AddLinkE(a, b int, capacity, latency float64) (LinkID, error) {
	if a < 0 || a >= len(t.nodes) || b < 0 || b >= len(t.nodes) {
		return 0, fmt.Errorf("%w: link endpoints (%d,%d), %d nodes", ErrNodeRange, a, b, len(t.nodes))
	}
	if a == b {
		return 0, fmt.Errorf("%w: node %d", ErrSelfLink, a)
	}
	if capacity <= 0 {
		return 0, fmt.Errorf("%w: %g", ErrBadCapacity, capacity)
	}
	id := LinkID(len(t.links))
	t.links = append(t.links, Link{ID: id, A: a, B: b, Capacity: capacity, Latency: latency})
	t.adj[a] = append(t.adj[a], IncidentLink{Link: id, Peer: b})
	t.adj[b] = append(t.adj[b], IncidentLink{Link: id, Peer: a})
	return id, nil
}

// NumNodes returns the node count.
//netlint:hotpath
func (t *Topology) NumNodes() int { return len(t.nodes) }

// NumLinks returns the link count.
func (t *Topology) NumLinks() int { return len(t.links) }

// Node returns node metadata.
func (t *Topology) Node(id int) Node { return t.nodes[id] }

// Link returns link metadata.
//netlint:hotpath
func (t *Topology) Link(id LinkID) Link { return t.links[id] }

// Servers returns the IDs of all server nodes in creation order. The
// slice is the topology's own cached list — maintained by AddNode, so no
// per-call node scan — and must not be modified by the caller. (At 131k
// nodes the old rescan-per-call implementation was a measurable hot spot
// in placement and benchmark loops.)
func (t *Topology) Servers() []int { return t.servers }

// Incident returns the links incident to node id in creation order. The
// slice is the topology's own adjacency list; callers must not modify it.
//netlint:hotpath
func (t *Topology) Incident(id int) []IncidentLink { return t.adj[id] }

// Route returns the sequence of link IDs of THE shortest (hop-count) path
// from a to b, found by breadth-first search. It is only defined where
// that path is unique (trees, and same-switch pairs of richer fabrics);
// on a pair with several equal-cost shortest paths it panics with
// ErrMultiPath instead of silently picking one — multi-path fabrics must
// be routed by an ECMP-aware router (see simnet). It returns nil for
// a == b and also panics on bad endpoints or a disconnected pair; use
// RouteE when any of those can come from external input.
func (t *Topology) Route(a, b int) []LinkID {
	path, err := t.RouteE(a, b)
	if err != nil {
		panic(err)
	}
	return path
}

// RouteE is the fallible variant of Route. Errors wrap ErrNodeRange,
// ErrNoPath, or — when the pair has more than one equal-cost shortest
// path, so "the" route is ill-defined — ErrMultiPath.
func (t *Topology) RouteE(a, b int) ([]LinkID, error) {
	if a == b {
		return nil, nil
	}
	if a < 0 || a >= len(t.nodes) || b < 0 || b >= len(t.nodes) {
		return nil, fmt.Errorf("%w: route endpoints (%d,%d), %d nodes", ErrNodeRange, a, b, len(t.nodes))
	}
	// BFS with shortest-path counting (saturated at 2): nodes leave the
	// queue in nondecreasing distance, so by the time cur is dequeued all
	// its shortest-path predecessors have added their counts, and once
	// dist[cur] reaches dist[b] the count at b is final.
	prev := make([]IncidentLink, len(t.nodes))
	dist := make([]int32, len(t.nodes))
	npaths := make([]uint8, len(t.nodes))
	for i := range dist {
		dist[i] = -1
	}
	dist[a] = 0
	npaths[a] = 1
	queue := []int{a}
	for head := 0; head < len(queue); head++ {
		cur := queue[head]
		if dist[b] >= 0 && dist[cur] >= dist[b] {
			break
		}
		for _, e := range t.adj[cur] {
			switch {
			case dist[e.Peer] < 0:
				dist[e.Peer] = dist[cur] + 1
				npaths[e.Peer] = npaths[cur]
				prev[e.Peer] = IncidentLink{Link: e.Link, Peer: cur}
				queue = append(queue, e.Peer)
			case dist[e.Peer] == dist[cur]+1:
				// Another shortest-path predecessor of e.Peer.
				if npaths[e.Peer] += npaths[cur]; npaths[e.Peer] > 2 {
					npaths[e.Peer] = 2
				}
			}
		}
	}
	if dist[b] < 0 {
		return nil, fmt.Errorf("%w: from %d to %d", ErrNoPath, a, b)
	}
	if npaths[b] > 1 {
		return nil, fmt.Errorf("%w: from %d to %d (%d hops)", ErrMultiPath, a, b, dist[b])
	}
	var rev []LinkID
	for cur := b; cur != a; cur = prev[cur].Peer {
		rev = append(rev, prev[cur].Link)
	}
	// Reverse into forward order.
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev, nil
}

// PathLatency sums the per-hop latency of a path.
func (t *Topology) PathLatency(path []LinkID) float64 {
	var s float64
	for _, id := range path {
		s += t.links[id].Latency
	}
	return s
}

// BottleneckCapacity returns the minimum capacity along a path, or +Inf
// for the empty path.
func (t *Topology) BottleneckCapacity(path []LinkID) float64 {
	cap := infinity
	for _, id := range path {
		if c := t.links[id].Capacity; c < cap {
			cap = c
		}
	}
	return cap
}

const infinity = 1e308

// SameRack reports whether two server nodes live in the same rack.
func (t *Topology) SameRack(a, b int) bool {
	return t.nodes[a].Rack >= 0 && t.nodes[a].Rack == t.nodes[b].Rack
}

// TreeConfig parameterizes NewTree. The zero value selects the paper's
// simulation setup: 32 racks × 32 servers, 1 Gb/s intra-rack links and
// 10 Gb/s rack-to-core links (§V-A), 50 µs per-hop latency.
type TreeConfig struct {
	Racks          int
	ServersPerRack int
	IntraRackBps   float64 // server <-> rack-switch capacity, bytes/s
	InterRackBps   float64 // rack-switch <-> core capacity, bytes/s
	HopLatency     float64 // seconds per link traversal
}

func (c *TreeConfig) applyDefaults() {
	if c.Racks == 0 {
		c.Racks = 32
	}
	if c.ServersPerRack == 0 {
		c.ServersPerRack = 32
	}
	if c.IntraRackBps == 0 {
		c.IntraRackBps = 1e9 / 8 // 1 Gb/s
	}
	if c.InterRackBps == 0 {
		c.InterRackBps = 10e9 / 8 // 10 Gb/s
	}
	if c.HopLatency == 0 {
		c.HopLatency = 50e-6
	}
}

// NewTree builds the paper's two-level tree: each rack has a switch with
// its servers attached; all rack switches attach to one core switch.
func NewTree(cfg TreeConfig) *Topology {
	cfg.applyDefaults()
	t := New()
	core := t.AddNode(Switch, -1)
	for r := 0; r < cfg.Racks; r++ {
		sw := t.AddNode(Switch, r)
		t.AddLink(sw, core, cfg.InterRackBps, cfg.HopLatency)
		for s := 0; s < cfg.ServersPerRack; s++ {
			srv := t.AddNode(Server, r)
			t.AddLink(srv, sw, cfg.IntraRackBps, cfg.HopLatency)
		}
	}
	return t
}

// FatTreeConfig parameterizes NewFatTree. K must be even; the resulting
// fabric has K pods, (K/2)² core switches, and K²·K/4 servers.
type FatTreeConfig struct {
	K          int     // pod arity (even)
	LinkBps    float64 // uniform link capacity, bytes/s
	HopLatency float64
}

// NewFatTree builds a k-ary fat-tree (Al-Fares et al. style). Inter-pod
// (and some intra-pod) pairs have many equal-cost shortest paths, so
// Route/RouteE fail with ErrMultiPath on them; route such fabrics through
// simnet's ECMP resolver. It panics on an invalid arity; use NewFatTreeE
// when the shape comes from external input.
func NewFatTree(cfg FatTreeConfig) *Topology {
	t, err := NewFatTreeE(cfg)
	if err != nil {
		panic(err)
	}
	return t
}

// NewFatTreeE is the fallible variant of NewFatTree. Errors wrap
// ErrBadShape.
func NewFatTreeE(cfg FatTreeConfig) (*Topology, error) {
	if cfg.K < 2 || cfg.K%2 != 0 {
		return nil, fmt.Errorf("%w: fat-tree arity must be even and >= 2, got %d", ErrBadShape, cfg.K)
	}
	if cfg.LinkBps == 0 {
		cfg.LinkBps = 1e9 / 8
	}
	if cfg.HopLatency == 0 {
		cfg.HopLatency = 50e-6
	}
	k := cfg.K
	half := k / 2
	t := New()

	// Core switches: half*half of them.
	cores := make([]int, half*half)
	for i := range cores {
		cores[i] = t.AddNode(Switch, -1)
	}
	for pod := 0; pod < k; pod++ {
		aggs := make([]int, half)
		edges := make([]int, half)
		for i := 0; i < half; i++ {
			aggs[i] = t.AddNode(Switch, pod)
		}
		for i := 0; i < half; i++ {
			edges[i] = t.AddNode(Switch, pod)
		}
		// Aggregation i connects to cores [i*half, (i+1)*half).
		for i, agg := range aggs {
			for j := 0; j < half; j++ {
				t.AddLink(agg, cores[i*half+j], cfg.LinkBps, cfg.HopLatency)
			}
			for _, e := range edges {
				t.AddLink(agg, e, cfg.LinkBps, cfg.HopLatency)
			}
		}
		// Each edge switch hosts half servers.
		for _, e := range edges {
			for s := 0; s < half; s++ {
				srv := t.AddNode(Server, pod)
				t.AddLink(srv, e, cfg.LinkBps, cfg.HopLatency)
			}
		}
	}
	return t, nil
}
