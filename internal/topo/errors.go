package topo

import "errors"

// Sentinel errors for the fallible topology APIs (AddLinkE, RouteE). The
// historical AddLink/Route panic wrappers remain for construction-time
// code where a malformed topology is a programming bug, but callers that
// build topologies from external input should use the E variants and test
// with errors.Is.
var (
	// ErrNodeRange: a node index is outside [0, NumNodes).
	ErrNodeRange = errors.New("topo: node index out of range")
	// ErrSelfLink: both link endpoints name the same node.
	ErrSelfLink = errors.New("topo: self link")
	// ErrBadCapacity: a link capacity is zero or negative.
	ErrBadCapacity = errors.New("topo: non-positive capacity")
	// ErrNoPath: the endpoints are disconnected.
	ErrNoPath = errors.New("topo: no path between nodes")
	// ErrMultiPath: Route/RouteE was asked for "the" shortest path between
	// a pair that has several equal-cost shortest paths (Clos and fat-tree
	// fabrics). The single-route assumption does not hold there; use an
	// ECMP-aware router (simnet resolves multi-path pairs with a pure hash
	// over the pair ID) instead of silently picking an arbitrary path.
	ErrMultiPath = errors.New("topo: multiple equal-cost shortest paths")
	// ErrBadShape: a topology builder (NewClosE, NewFatTreeE) was given an
	// invalid shape parameter.
	ErrBadShape = errors.New("topo: invalid topology shape")
)
