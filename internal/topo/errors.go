package topo

import "errors"

// Sentinel errors for the fallible topology APIs (AddLinkE, RouteE). The
// historical AddLink/Route panic wrappers remain for construction-time
// code where a malformed topology is a programming bug, but callers that
// build topologies from external input should use the E variants and test
// with errors.Is.
var (
	// ErrNodeRange: a node index is outside [0, NumNodes).
	ErrNodeRange = errors.New("topo: node index out of range")
	// ErrSelfLink: both link endpoints name the same node.
	ErrSelfLink = errors.New("topo: self link")
	// ErrBadCapacity: a link capacity is zero or negative.
	ErrBadCapacity = errors.New("topo: non-positive capacity")
	// ErrNoPath: the endpoints are disconnected.
	ErrNoPath = errors.New("topo: no path between nodes")
)
