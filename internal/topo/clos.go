package topo

// Multi-stage Clos fabrics. The paper's simulations stop at a 1024-machine
// two-level tree (§V-A); these builders construct the leaf–spine (2-stage)
// and pod/super-spine (3-stage) Clos networks of real IaaS data centers so
// the simulator can be driven at 32k–131k machines. Both are multi-path
// fabrics: any cross-leaf pair has one equal-cost shortest path per spine
// (per spine×super-spine pair in the 3-stage form), so Route/RouteE refuse
// them with ErrMultiPath and flows must be placed by simnet's ECMP
// resolver.

import "fmt"

// ClosConfig parameterizes NewClos. The zero value of every field selects
// a default (2 stages, 16 leaves × 32 servers, 4 spines, 1 Gb/s server
// links, 4:1 oversubscription, 50 µs hops).
type ClosConfig struct {
	// Stages selects the fabric depth: 2 (leaf–spine) or 3 (pods of
	// leaf–spine fabrics joined by super-spines).
	Stages int
	// Leaves is the leaf-switch count (per pod when Stages == 3).
	Leaves int
	// ServersPerLeaf is the server count attached to each leaf.
	ServersPerLeaf int
	// Spines is the spine-switch count (per pod when Stages == 3); every
	// leaf connects to every (pod-local) spine.
	Spines int
	// Pods and SuperSpines shape the third stage; ignored when Stages == 2.
	// Every pod spine connects to every super-spine.
	Pods        int
	SuperSpines int
	// ServerBps is the server↔leaf link capacity, bytes/s.
	ServerBps float64
	// Oversubscription is the ratio of a switch tier's total downlink
	// capacity to its total uplink capacity (the standard data-center
	// knob): 1 is non-blocking, 4 means uplinks carry a quarter of the
	// downlink capacity. Applied at the leaf tier and, for 3-stage
	// fabrics, again at the pod-spine tier.
	Oversubscription float64
	// HopLatency is seconds per link traversal.
	HopLatency float64
}

func (c *ClosConfig) applyDefaults() {
	if c.Stages == 0 {
		c.Stages = 2
	}
	if c.Leaves == 0 {
		c.Leaves = 16
	}
	if c.ServersPerLeaf == 0 {
		c.ServersPerLeaf = 32
	}
	if c.Spines == 0 {
		c.Spines = 4
	}
	if c.Pods == 0 {
		c.Pods = 4
	}
	if c.SuperSpines == 0 {
		c.SuperSpines = c.Spines
	}
	if c.ServerBps == 0 {
		c.ServerBps = 1e9 / 8
	}
	if c.Oversubscription == 0 {
		c.Oversubscription = 4
	}
	if c.HopLatency == 0 {
		c.HopLatency = 50e-6
	}
}

// Machines returns the server count the configuration builds.
func (c ClosConfig) Machines() int {
	c.applyDefaults()
	n := c.Leaves * c.ServersPerLeaf
	if c.Stages == 3 {
		n *= c.Pods
	}
	return n
}

// NewClos builds the fabric, panicking on an invalid shape; use NewClosE
// when the configuration comes from external input.
func NewClos(cfg ClosConfig) *Topology {
	t, err := NewClosE(cfg)
	if err != nil {
		panic(err)
	}
	return t
}

// NewClosE builds a 2- or 3-stage Clos fabric. Servers are created leaf by
// leaf (so Servers() groups by leaf) and each server's Rack is its global
// leaf index, which keeps rack-oriented consumers (SameRack, hot-rack
// background placement) meaningful. Errors wrap ErrBadShape.
func NewClosE(cfg ClosConfig) (*Topology, error) {
	cfg.applyDefaults()
	switch {
	case cfg.Stages != 2 && cfg.Stages != 3:
		return nil, fmt.Errorf("%w: Clos stages must be 2 or 3, got %d", ErrBadShape, cfg.Stages)
	case cfg.Leaves < 1 || cfg.ServersPerLeaf < 1 || cfg.Spines < 1:
		return nil, fmt.Errorf("%w: Clos needs >=1 leaves (%d), servers per leaf (%d), spines (%d)",
			ErrBadShape, cfg.Leaves, cfg.ServersPerLeaf, cfg.Spines)
	case cfg.Stages == 3 && (cfg.Pods < 1 || cfg.SuperSpines < 1):
		return nil, fmt.Errorf("%w: 3-stage Clos needs >=1 pods (%d) and super-spines (%d)",
			ErrBadShape, cfg.Pods, cfg.SuperSpines)
	case !(cfg.Oversubscription > 0) || cfg.Oversubscription > 1e6:
		return nil, fmt.Errorf("%w: oversubscription must be in (0, 1e6], got %g", ErrBadShape, cfg.Oversubscription)
	case !(cfg.ServerBps > 0):
		return nil, fmt.Errorf("%w: server link capacity must be positive, got %g", ErrBadShape, cfg.ServerBps)
	}
	pods := 1
	if cfg.Stages == 3 {
		pods = cfg.Pods
	}
	// Tier capacities from the oversubscription ratio: each tier's total
	// uplink capacity is its total downlink capacity divided by the ratio,
	// spread evenly over its uplinks.
	leafDown := float64(cfg.ServersPerLeaf) * cfg.ServerBps
	leafUpBps := leafDown / (cfg.Oversubscription * float64(cfg.Spines))
	spineDown := float64(cfg.Leaves) * leafUpBps * float64(cfg.Spines)
	spineUpBps := 0.0
	if cfg.Stages == 3 {
		spineUpBps = spineDown / (cfg.Oversubscription * float64(cfg.Spines) * float64(cfg.SuperSpines))
	}

	t := New()
	var super []int
	if cfg.Stages == 3 {
		super = make([]int, cfg.SuperSpines)
		for i := range super {
			super[i] = t.AddNode(Switch, -1)
		}
	}
	for p := 0; p < pods; p++ {
		spines := make([]int, cfg.Spines)
		for i := range spines {
			spines[i] = t.AddNode(Switch, -1)
			for _, ss := range super {
				if _, err := t.AddLinkE(spines[i], ss, spineUpBps, cfg.HopLatency); err != nil {
					return nil, err
				}
			}
		}
		for l := 0; l < cfg.Leaves; l++ {
			rack := p*cfg.Leaves + l
			leaf := t.AddNode(Switch, rack)
			for _, sp := range spines {
				if _, err := t.AddLinkE(leaf, sp, leafUpBps, cfg.HopLatency); err != nil {
					return nil, err
				}
			}
			for s := 0; s < cfg.ServersPerLeaf; s++ {
				srv := t.AddNode(Server, rack)
				if _, err := t.AddLinkE(srv, leaf, cfg.ServerBps, cfg.HopLatency); err != nil {
					return nil, err
				}
			}
		}
	}
	return t, nil
}

// ClosShape picks a reasonable 2-stage leaf–spine shape for the requested
// machine count — the sizing cmd/simbench and the ext-clos figure share.
// Leaf width grows with scale (8, 32, then 64 servers per leaf) and the
// spine tier is sized at one spine per 16 leaves, clamped to [2, 32], with
// the default 4:1 oversubscription. The returned configuration builds
// ceil(machines/serversPerLeaf) full leaves, so Machines() can slightly
// exceed the request when it is not a multiple of the leaf width.
func ClosShape(machines int) ClosConfig {
	if machines < 1 {
		machines = 1
	}
	spl := 8
	switch {
	case machines > 8192:
		spl = 64
	case machines > 512:
		spl = 32
	}
	leaves := (machines + spl - 1) / spl
	spines := leaves / 16
	if spines < 2 {
		spines = 2
	}
	if spines > 32 {
		spines = 32
	}
	return ClosConfig{
		Stages:         2,
		Leaves:         leaves,
		ServersPerLeaf: spl,
		Spines:         spines,
	}
}
