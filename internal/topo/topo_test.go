package topo

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAddNodesAndLinks(t *testing.T) {
	g := New()
	a := g.AddNode(Server, 0)
	b := g.AddNode(Switch, 0)
	id := g.AddLink(a, b, 100, 0.001)
	if g.NumNodes() != 2 || g.NumLinks() != 1 {
		t.Fatal("counts")
	}
	l := g.Link(id)
	if l.A != a || l.B != b || l.Capacity != 100 || l.Latency != 0.001 {
		t.Error("link metadata")
	}
	if g.Node(a).Kind != Server || g.Node(b).Kind != Switch {
		t.Error("node kinds")
	}
}

func TestAddLinkPanics(t *testing.T) {
	g := New()
	a := g.AddNode(Server, 0)
	b := g.AddNode(Server, 0)
	mustPanic(t, func() { g.AddLink(a, 99, 1, 0) })
	mustPanic(t, func() { g.AddLink(a, a, 1, 0) })
	mustPanic(t, func() { g.AddLink(a, b, 0, 0) })
}

func mustPanic(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	f()
}

func TestRouteSameNode(t *testing.T) {
	g := New()
	a := g.AddNode(Server, 0)
	if g.Route(a, a) != nil {
		t.Error("route to self should be nil")
	}
}

func TestRouteNoPath(t *testing.T) {
	g := New()
	a := g.AddNode(Server, 0)
	b := g.AddNode(Server, 1)
	mustPanic(t, func() { g.Route(a, b) })
	mustPanic(t, func() { g.Route(-1, a) })
	_ = b
}

func TestTreeDefaults(t *testing.T) {
	tr := NewTree(TreeConfig{})
	// 1 core + 32 rack switches + 1024 servers.
	if tr.NumNodes() != 1+32+1024 {
		t.Fatalf("nodes %d", tr.NumNodes())
	}
	if len(tr.Servers()) != 1024 {
		t.Fatalf("servers %d", len(tr.Servers()))
	}
	// 32 uplinks + 1024 server links.
	if tr.NumLinks() != 32+1024 {
		t.Fatalf("links %d", tr.NumLinks())
	}
}

func TestTreeRouting(t *testing.T) {
	tr := NewTree(TreeConfig{Racks: 2, ServersPerRack: 2, IntraRackBps: 100, InterRackBps: 1000, HopLatency: 0.01})
	srv := tr.Servers()
	// Same-rack path: server -> rack switch -> server = 2 links.
	p := tr.Route(srv[0], srv[1])
	if len(p) != 2 {
		t.Errorf("same-rack path length %d", len(p))
	}
	if !tr.SameRack(srv[0], srv[1]) {
		t.Error("same rack")
	}
	// Cross-rack: server -> rack -> core -> rack -> server = 4 links.
	p2 := tr.Route(srv[0], srv[2])
	if len(p2) != 4 {
		t.Errorf("cross-rack path length %d", len(p2))
	}
	if tr.SameRack(srv[0], srv[2]) {
		t.Error("cross rack")
	}
	// Latency: 4 hops × 0.01.
	if got := tr.PathLatency(p2); got != 0.04 {
		t.Errorf("path latency %v", got)
	}
	// Bottleneck: server links are 100.
	if got := tr.BottleneckCapacity(p2); got != 100 {
		t.Errorf("bottleneck %v", got)
	}
	if tr.BottleneckCapacity(nil) < 1e300 {
		t.Error("empty path bottleneck should be huge")
	}
}

func TestRoutePathValidity(t *testing.T) {
	// Every consecutive pair of links on a route must share a node and the
	// route must start at src and end at dst.
	tr := NewTree(TreeConfig{Racks: 4, ServersPerRack: 4})
	srv := tr.Servers()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := srv[rng.Intn(len(srv))]
		b := srv[rng.Intn(len(srv))]
		if a == b {
			return true
		}
		path := tr.Route(a, b)
		cur := a
		for _, id := range path {
			l := tr.Link(id)
			switch cur {
			case l.A:
				cur = l.B
			case l.B:
				cur = l.A
			default:
				return false
			}
		}
		return cur == b
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestFatTree(t *testing.T) {
	ft := NewFatTree(FatTreeConfig{K: 4})
	// k=4: 16 servers, 4 cores, 8 agg, 8 edge.
	if len(ft.Servers()) != 16 {
		t.Fatalf("servers %d", len(ft.Servers()))
	}
	srv := ft.Servers()
	// Cross-pod pairs have (k/2)² equal-cost shortest paths; the
	// single-route API must refuse them with the typed error instead of
	// silently picking one.
	if _, err := ft.RouteE(srv[0], srv[15]); !errors.Is(err, ErrMultiPath) {
		t.Errorf("cross-pod route err = %v, want ErrMultiPath", err)
	}
	// Same-edge servers: a unique 2-hop path.
	if got := len(ft.Route(srv[0], srv[1])); got != 2 {
		t.Errorf("same-edge path %d", got)
	}
	mustPanic(t, func() { NewFatTree(FatTreeConfig{K: 3}) })
	mustPanic(t, func() { NewFatTree(FatTreeConfig{K: 0}) })
	if _, err := NewFatTreeE(FatTreeConfig{K: 5}); !errors.Is(err, ErrBadShape) {
		t.Errorf("odd arity err = %v, want ErrBadShape", err)
	}
}

func TestTreeRackAssignment(t *testing.T) {
	tr := NewTree(TreeConfig{Racks: 3, ServersPerRack: 2})
	counts := map[int]int{}
	for _, s := range tr.Servers() {
		counts[tr.Node(s).Rack]++
	}
	for r := 0; r < 3; r++ {
		if counts[r] != 2 {
			t.Errorf("rack %d has %d servers", r, counts[r])
		}
	}
}

func TestAddLinkETypedErrors(t *testing.T) {
	g := New()
	a := g.AddNode(Server, 0)
	b := g.AddNode(Server, 0)
	if _, err := g.AddLinkE(a, 99, 100, 0.001); !errors.Is(err, ErrNodeRange) {
		t.Errorf("out-of-range err = %v", err)
	}
	if _, err := g.AddLinkE(a, a, 100, 0.001); !errors.Is(err, ErrSelfLink) {
		t.Errorf("self-link err = %v", err)
	}
	if _, err := g.AddLinkE(a, b, 0, 0.001); !errors.Is(err, ErrBadCapacity) {
		t.Errorf("capacity err = %v", err)
	}
	if _, err := g.AddLinkE(a, b, 100, 0.001); err != nil {
		t.Errorf("valid link err = %v", err)
	}
	// The panicking wrapper carries the same typed error.
	defer func() {
		if r := recover(); r == nil {
			t.Error("AddLink should panic on self link")
		} else if err, ok := r.(error); !ok || !errors.Is(err, ErrSelfLink) {
			t.Errorf("panic value %v", r)
		}
	}()
	g.AddLink(a, a, 100, 0.001)
}

func TestRouteETypedErrors(t *testing.T) {
	g := New()
	a := g.AddNode(Server, 0)
	b := g.AddNode(Server, 0)
	c := g.AddNode(Server, 1)
	g.AddLink(a, b, 100, 0.001)

	if path, err := g.RouteE(a, a); err != nil || path != nil {
		t.Errorf("self route: %v %v", path, err)
	}
	if _, err := g.RouteE(a, 42); !errors.Is(err, ErrNodeRange) {
		t.Errorf("range err = %v", err)
	}
	if _, err := g.RouteE(a, c); !errors.Is(err, ErrNoPath) {
		t.Errorf("disconnected err = %v", err)
	}
	path, err := g.RouteE(a, b)
	if err != nil || len(path) != 1 {
		t.Errorf("connected route: %v %v", path, err)
	}
}
