package topo

import (
	"errors"
	"testing"
)

func TestClosTwoStage(t *testing.T) {
	g := NewClos(ClosConfig{Leaves: 4, ServersPerLeaf: 3, Spines: 2, Oversubscription: 2, ServerBps: 120})
	if got := len(g.Servers()); got != 12 {
		t.Fatalf("servers %d", got)
	}
	// 2 spines + 4 leaves + 12 servers.
	if g.NumNodes() != 2+4+12 {
		t.Fatalf("nodes %d", g.NumNodes())
	}
	// 4 leaves × 2 uplinks + 12 server links.
	if g.NumLinks() != 8+12 {
		t.Fatalf("links %d", g.NumLinks())
	}
	srv := g.Servers()
	// Same-leaf pair: unique 2-hop path through the leaf.
	if p := g.Route(srv[0], srv[1]); len(p) != 2 {
		t.Errorf("same-leaf path %d", len(p))
	}
	if !g.SameRack(srv[0], srv[2]) || g.SameRack(srv[0], srv[3]) {
		t.Error("leaf-as-rack assignment")
	}
	// Cross-leaf pair: one shortest path per spine.
	if _, err := g.RouteE(srv[0], srv[3]); !errors.Is(err, ErrMultiPath) {
		t.Errorf("cross-leaf route err = %v, want ErrMultiPath", err)
	}
	// Oversubscription 2 with 3 servers × 120 B/s: total uplink capacity
	// 180 over 2 spines = 90 per uplink.
	var uplinks int
	for i := 0; i < g.NumLinks(); i++ {
		l := g.Link(LinkID(i))
		if g.Node(l.A).Kind == Switch && g.Node(l.B).Kind == Switch {
			uplinks++
			if l.Capacity != 90 {
				t.Fatalf("uplink capacity %v, want 90", l.Capacity)
			}
		}
	}
	if uplinks != 8 {
		t.Fatalf("uplinks %d", uplinks)
	}
}

func TestClosThreeStage(t *testing.T) {
	cfg := ClosConfig{Stages: 3, Pods: 2, Leaves: 2, ServersPerLeaf: 2, Spines: 2, SuperSpines: 2}
	g := NewClos(cfg)
	if got := cfg.Machines(); got != 8 {
		t.Fatalf("Machines() = %d", got)
	}
	if got := len(g.Servers()); got != 8 {
		t.Fatalf("servers %d", got)
	}
	// 2 super + 2 pods × (2 spines + 2 leaves + 4 servers).
	if g.NumNodes() != 2+2*(2+2+4) {
		t.Fatalf("nodes %d", g.NumNodes())
	}
	// Per pod: 2 spines × 2 super links + 2 leaves × 2 uplinks + 4 server links.
	if g.NumLinks() != 2*(4+4+4) {
		t.Fatalf("links %d", g.NumLinks())
	}
	srv := g.Servers()
	// Cross-pod pairs are multipath (through any spine×super×spine combo).
	if _, err := g.RouteE(srv[0], srv[7]); !errors.Is(err, ErrMultiPath) {
		t.Errorf("cross-pod route err = %v, want ErrMultiPath", err)
	}
	// Every rack index is a distinct leaf across pods.
	racks := map[int]int{}
	for _, s := range srv {
		racks[g.Node(s).Rack]++
	}
	if len(racks) != 4 {
		t.Errorf("distinct leaf racks %d, want 4", len(racks))
	}
}

func TestClosTypedValidation(t *testing.T) {
	cases := []ClosConfig{
		{Stages: 4},
		{Leaves: -1},
		{Spines: -2},
		{Oversubscription: -1},
		{ServerBps: -5},
		{Stages: 3, Pods: -1},
	}
	for i, cfg := range cases {
		if _, err := NewClosE(cfg); !errors.Is(err, ErrBadShape) {
			t.Errorf("case %d: err = %v, want ErrBadShape", i, err)
		}
	}
	mustPanic(t, func() { NewClos(ClosConfig{Stages: 7}) })
}

func TestClosShape(t *testing.T) {
	for _, machines := range []int{1, 64, 512, 4096, 32768, 131072} {
		cfg := ClosShape(machines)
		if got := cfg.Machines(); got < machines {
			t.Errorf("ClosShape(%d).Machines() = %d", machines, got)
		}
		if _, err := NewClosE(cfg); err != nil {
			t.Errorf("ClosShape(%d) invalid: %v", machines, err)
		}
	}
	// The two benchmark scales must hit their exact machine counts.
	if got := ClosShape(32768).Machines(); got != 32768 {
		t.Errorf("32k shape builds %d machines", got)
	}
	if got := ClosShape(131072).Machines(); got != 131072 {
		t.Errorf("131k shape builds %d machines", got)
	}
}

func TestServersCached(t *testing.T) {
	g := NewTree(TreeConfig{Racks: 2, ServersPerRack: 2})
	a := g.Servers()
	b := g.Servers()
	if len(a) != 4 || &a[0] != &b[0] {
		t.Error("Servers() should return the cached slice without rescanning")
	}
	// The cache must track post-construction growth.
	g.AddNode(Switch, -1)
	g.AddNode(Server, 0)
	if got := len(g.Servers()); got != 5 {
		t.Errorf("servers after growth %d", got)
	}
}

func TestIncidentExposesAdjacency(t *testing.T) {
	g := New()
	a := g.AddNode(Server, 0)
	b := g.AddNode(Switch, 0)
	c := g.AddNode(Server, 0)
	l1 := g.AddLink(a, b, 100, 0)
	l2 := g.AddLink(b, c, 100, 0)
	inc := g.Incident(b)
	if len(inc) != 2 || inc[0].Link != l1 || inc[0].Peer != a || inc[1].Link != l2 || inc[1].Peer != c {
		t.Errorf("incident(b) = %+v", inc)
	}
	if len(g.Incident(a)) != 1 {
		t.Errorf("incident(a) = %+v", g.Incident(a))
	}
}
