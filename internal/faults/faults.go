// Package faults is the fault-injection substrate: a deterministic,
// seeded wrapper around any cloud.Cluster that overlays the failure modes
// real IaaS measurement campaigns hit — lost probes, heavy-tailed latency
// and bandwidth outliers, persistently slow straggler VMs, correlated
// rack-level blackouts, transient network partitions, and mid-calibration
// VM churn. The wrapped cluster implements cloud.PairProber, so the
// resilient calibration path (internal/cloud) sees genuine probe failures
// with typed errors, and every injected fault is recorded in an event log
// that tests and experiment sweeps can assert against.
//
// All randomness flows from the scenario seed through a single stream, so
// two identically configured clusters driven by the same probe sequence
// produce byte-identical fault schedules and calibrations.
package faults

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"netconstant/internal/cloud"
	"netconstant/internal/netmodel"
	"netconstant/internal/stats"
	"netconstant/internal/topo"
)

// ErrProbeLost is the sentinel unwrapped by every probe failure the
// injector produces.
var ErrProbeLost = errors.New("faults: probe lost")

// ProbeError describes one failed probe with its cause. It unwraps to
// ErrProbeLost.
type ProbeError struct {
	I, J   int
	Reason string // "loss", "blackout", "partition", "churn"
}

// Error formats the pair and cause.
func (e *ProbeError) Error() string {
	return fmt.Sprintf("faults: probe %d->%d lost (%s)", e.I, e.J, e.Reason)
}

// Unwrap makes errors.Is(err, ErrProbeLost) work.
func (e *ProbeError) Unwrap() error { return ErrProbeLost }

// Blackout is a correlated outage: every probe touching one of the listed
// VMs fails during [Start, Start+Duration).
type Blackout struct {
	VMs             []int
	Start, Duration float64
	Label           string // free-form tag for the event log, e.g. "rack 3"
}

func (b Blackout) active(now float64) bool {
	return now >= b.Start && now < b.Start+b.Duration
}

// RackBlackout builds a Blackout covering every cluster VM hosted in the
// given rack of the data-center topology. hosts maps VM index to server
// node (cloud.VirtualCluster.Hosts).
func RackBlackout(t *topo.Topology, hosts []int, rack int, start, duration float64) Blackout {
	b := Blackout{Start: start, Duration: duration, Label: fmt.Sprintf("rack %d", rack)}
	for vm, h := range hosts {
		if t.Node(h).Rack == rack {
			b.VMs = append(b.VMs, vm)
		}
	}
	return b
}

// Partition is a transient split: probes crossing between Group and the
// rest of the cluster fail during [Start, Start+Duration). Probes within
// either side still succeed.
type Partition struct {
	Group           []int
	Start, Duration float64
}

func (p Partition) active(now float64) bool {
	return now >= p.Start && now < p.Start+p.Duration
}

// Scenario composes the fault injectors. The zero value injects nothing;
// each field arms one injector independently, and all of them stack.
type Scenario struct {
	// Seed drives every stochastic injector. Two clusters wrapped with
	// identical scenarios and probed identically produce identical fault
	// schedules.
	Seed int64

	// ProbeLoss is the iid probability that any single probe attempt is
	// lost (timeout / dropped handshake).
	ProbeLoss float64

	// HeavyTailProb perturbs a probe with a Pareto-distributed slowdown:
	// with this probability the measured bandwidth is divided (and the
	// latency multiplied) by a factor drawn from a Pareto(HeavyTailAlpha)
	// tail. Alpha defaults to 1.5 — infinite variance, the regime "Noise
	// in the Clouds" reports for congested fabrics.
	HeavyTailProb  float64
	HeavyTailAlpha float64

	// Stragglers marks this many VMs (chosen by seed) as persistently
	// slow: every link touching one is degraded by StragglerFactor
	// (default 4).
	Stragglers      int
	StragglerFactor float64

	// Blackouts are correlated outage windows (see RackBlackout).
	Blackouts []Blackout

	// Partitions are transient group splits.
	Partitions []Partition

	// ChurnRate is the expected number of VM restarts per VM per day;
	// a churning VM is unreachable for ChurnDuration seconds (default 30).
	ChurnRate     float64
	ChurnDuration float64
}

func (sc *Scenario) applyDefaults() {
	if sc.HeavyTailAlpha == 0 {
		sc.HeavyTailAlpha = 1.5
	}
	if sc.StragglerFactor == 0 {
		sc.StragglerFactor = 4
	}
	if sc.ChurnDuration == 0 {
		sc.ChurnDuration = 30
	}
}

// EventKind classifies log entries.
type EventKind string

// Event kinds recorded by the injector.
const (
	EventProbeLoss      EventKind = "probe-loss"
	EventHeavyTail      EventKind = "heavy-tail"
	EventBlackoutStart  EventKind = "blackout-start"
	EventBlackoutEnd    EventKind = "blackout-end"
	EventPartitionStart EventKind = "partition-start"
	EventPartitionEnd   EventKind = "partition-end"
	EventChurnStart     EventKind = "churn-start"
	EventChurnEnd       EventKind = "churn-end"
	EventBlackoutDrop   EventKind = "blackout-drop"
	EventPartitionDrop  EventKind = "partition-drop"
	EventChurnDrop      EventKind = "churn-drop"
)

// Event is one fault occurrence. Pair faults carry the directed pair;
// state transitions carry the affected VM (or -1) in I.
type Event struct {
	Time float64
	Kind EventKind
	I, J int
	Note string
}

// maxLoggedEvents bounds the event log so long calibrations cannot grow
// it without limit; counters keep exact totals past the cap.
const maxLoggedEvents = 4096

// Cluster wraps an inner cloud.Cluster with the scenario's fault
// injectors. It implements cloud.Cluster and cloud.PairProber.
type Cluster struct {
	inner cloud.Cluster
	sc    Scenario
	rng   *rand.Rand

	straggler []bool
	churnEnd  []float64 // per-VM unreachable-until time; 0 = reachable
	blackOn   []bool    // per-blackout "currently active" edge detector
	partOn    []bool
	partSide  []map[int]bool
	blackSet  []map[int]bool

	events []Event
	counts map[EventKind]int
}

// Wrap builds the fault-injecting view of inner. The inner cluster is
// still advanced and probed through the wrapper; using both views
// concurrently is not supported.
func Wrap(inner cloud.Cluster, sc Scenario) *Cluster {
	sc.applyDefaults()
	n := inner.Size()
	c := &Cluster{
		inner:     inner,
		sc:        sc,
		rng:       stats.NewRNG(sc.Seed ^ 0xfa17),
		straggler: make([]bool, n),
		churnEnd:  make([]float64, n),
		blackOn:   make([]bool, len(sc.Blackouts)),
		partOn:    make([]bool, len(sc.Partitions)),
		counts:    make(map[EventKind]int),
	}
	if sc.Stragglers > 0 {
		perm := stats.Perm(c.rng, n)
		for k := 0; k < sc.Stragglers && k < n; k++ {
			c.straggler[perm[k]] = true
		}
	}
	for _, b := range sc.Blackouts {
		set := make(map[int]bool, len(b.VMs))
		for _, vm := range b.VMs {
			set[vm] = true
		}
		c.blackSet = append(c.blackSet, set)
	}
	for _, p := range sc.Partitions {
		set := make(map[int]bool, len(p.Group))
		for _, vm := range p.Group {
			set[vm] = true
		}
		c.partSide = append(c.partSide, set)
	}
	return c
}

// StragglerVMs returns the VM indices selected as stragglers, sorted.
func (c *Cluster) StragglerVMs() []int {
	var out []int
	for vm, s := range c.straggler {
		if s {
			out = append(out, vm)
		}
	}
	sort.Ints(out)
	return out
}

// Events returns the recorded fault log (capped; see EventCounts for
// exact totals).
func (c *Cluster) Events() []Event { return c.events }

// EventCounts returns exact per-kind fault totals, unaffected by the log
// cap.
func (c *Cluster) EventCounts() map[EventKind]int {
	out := make(map[EventKind]int, len(c.counts))
	for k, v := range c.counts {
		out[k] = v
	}
	return out
}

func (c *Cluster) log(kind EventKind, i, j int, note string) {
	c.counts[kind]++
	if len(c.events) < maxLoggedEvents {
		c.events = append(c.events, Event{Time: c.inner.Now(), Kind: kind, I: i, J: j, Note: note})
	}
}

// Size returns the inner cluster's size.
func (c *Cluster) Size() int { return c.inner.Size() }

// Now returns the inner cluster's clock.
func (c *Cluster) Now() float64 { return c.inner.Now() }

// AdvanceTime moves the inner clock and evolves the fault state: churn
// arrivals are drawn, and blackout/partition window transitions are
// logged.
func (c *Cluster) AdvanceTime(dt float64) {
	c.inner.AdvanceTime(dt)
	now := c.inner.Now()

	if c.sc.ChurnRate > 0 && dt > 0 {
		perVM := c.sc.ChurnRate * dt / 86400
		for vm := range c.churnEnd {
			if c.churnEnd[vm] > 0 && now >= c.churnEnd[vm] {
				c.log(EventChurnEnd, vm, -1, "")
				c.churnEnd[vm] = 0
			}
			if stats.Bernoulli(c.rng, perVM) {
				c.churnEnd[vm] = now + c.sc.ChurnDuration
				c.log(EventChurnStart, vm, -1, fmt.Sprintf("unreachable %.0fs", c.sc.ChurnDuration))
			}
		}
	}
	for k, b := range c.sc.Blackouts {
		if act := b.active(now); act != c.blackOn[k] {
			c.blackOn[k] = act
			if act {
				c.log(EventBlackoutStart, -1, -1, b.Label)
			} else {
				c.log(EventBlackoutEnd, -1, -1, b.Label)
			}
		}
	}
	for k, p := range c.sc.Partitions {
		if act := p.active(now); act != c.partOn[k] {
			c.partOn[k] = act
			if act {
				c.log(EventPartitionStart, -1, -1, fmt.Sprintf("group of %d", len(p.Group)))
			} else {
				c.log(EventPartitionEnd, -1, -1, "")
			}
		}
	}
}

// unavailable reports whether the directed pair cannot communicate right
// now, and why.
func (c *Cluster) unavailable(i, j int) (EventKind, string, bool) {
	now := c.inner.Now()
	if c.churnEnd[i] > now || c.churnEnd[j] > now {
		return EventChurnDrop, "churn", true
	}
	for k, b := range c.sc.Blackouts {
		if b.active(now) && (c.blackSet[k][i] || c.blackSet[k][j]) {
			return EventBlackoutDrop, "blackout", true
		}
	}
	for k, p := range c.sc.Partitions {
		if p.active(now) && c.partSide[k][i] != c.partSide[k][j] {
			return EventPartitionDrop, "partition", true
		}
	}
	return "", "", false
}

// perturb applies the value-level injectors (stragglers, heavy tail) to a
// measured link.
func (c *Cluster) perturb(i, j int, l netmodel.Link) netmodel.Link {
	if c.straggler[i] || c.straggler[j] {
		l.Beta /= c.sc.StragglerFactor
		l.Alpha *= c.sc.StragglerFactor
	}
	if c.sc.HeavyTailProb > 0 && c.rng.Float64() < c.sc.HeavyTailProb {
		// Pareto tail: factor = (1-u)^(-1/α) ≥ 1.
		f := math.Pow(1-c.rng.Float64(), -1/c.sc.HeavyTailAlpha)
		l.Beta /= f
		l.Alpha *= f
		c.log(EventHeavyTail, i, j, fmt.Sprintf("x%.1f", f))
	}
	return l
}

// PairPerf returns the instantaneous pair performance as an application
// transfer would experience it: perturbed by stragglers and heavy-tail
// episodes, and a dead link (zero bandwidth → infinite transfer time)
// while the pair is blacked out, partitioned, or churning.
func (c *Cluster) PairPerf(i, j int) netmodel.Link {
	if i == j {
		return c.inner.PairPerf(i, j)
	}
	if _, _, down := c.unavailable(i, j); down {
		return netmodel.Link{}
	}
	return c.perturb(i, j, c.inner.PairPerf(i, j))
}

// ProbePair implements cloud.PairProber: it runs one probe attempt and
// returns a typed error when the attempt is lost to iid probe loss or the
// pair is currently unreachable.
func (c *Cluster) ProbePair(i, j int) (netmodel.Link, error) {
	if kind, reason, down := c.unavailable(i, j); down {
		c.log(kind, i, j, "")
		return netmodel.Link{}, &ProbeError{I: i, J: j, Reason: reason}
	}
	if c.sc.ProbeLoss > 0 && c.rng.Float64() < c.sc.ProbeLoss {
		c.log(EventProbeLoss, i, j, "")
		return netmodel.Link{}, &ProbeError{I: i, J: j, Reason: "loss"}
	}
	return c.perturb(i, j, c.inner.PairPerf(i, j)), nil
}

var (
	_ cloud.Cluster    = (*Cluster)(nil)
	_ cloud.PairProber = (*Cluster)(nil)
)
