package faults

import (
	"bytes"
	"errors"
	"math"
	"reflect"
	"testing"

	"netconstant/internal/cloud"
	"netconstant/internal/stats"
	"netconstant/internal/topo"
)

func testCluster(t *testing.T, n int, seed int64) (*cloud.Provider, *cloud.VirtualCluster) {
	t.Helper()
	p := cloud.NewProvider(cloud.ProviderConfig{
		Tree: topo.TreeConfig{Racks: 4, ServersPerRack: 4},
		Seed: seed,
	})
	vc, err := p.Provision(n, seed+1)
	if err != nil {
		t.Fatal(err)
	}
	return p, vc
}

func TestProbeLossAndTypedErrors(t *testing.T) {
	_, vc := testCluster(t, 6, 1)
	fc := Wrap(vc, Scenario{Seed: 1, ProbeLoss: 1})
	_, err := fc.ProbePair(0, 1)
	if !errors.Is(err, ErrProbeLost) {
		t.Fatalf("err = %v, want ErrProbeLost", err)
	}
	var pe *ProbeError
	if !errors.As(err, &pe) || pe.I != 0 || pe.J != 1 || pe.Reason != "loss" {
		t.Errorf("probe error detail %+v", pe)
	}
	if got := fc.EventCounts()[EventProbeLoss]; got != 1 {
		t.Errorf("loss events %d", got)
	}
	// With zero loss the probe succeeds and matches the inner perturbation
	// path.
	fc2 := Wrap(vc, Scenario{Seed: 1})
	l, err := fc2.ProbePair(0, 1)
	if err != nil || l.Beta <= 0 {
		t.Errorf("clean probe: %v %v", l, err)
	}
}

func TestStragglersSlowTheirLinks(t *testing.T) {
	_, vc := testCluster(t, 8, 2)
	vc.SetFreezeDynamics(true)
	fc := Wrap(vc, Scenario{Seed: 3, Stragglers: 2, StragglerFactor: 8})
	slow := fc.StragglerVMs()
	if len(slow) != 2 {
		t.Fatalf("stragglers %v", slow)
	}
	isSlow := map[int]bool{slow[0]: true, slow[1]: true}
	for i := 0; i < 8; i++ {
		for j := 0; j < 8; j++ {
			if i == j {
				continue
			}
			truth := vc.PairPerf(i, j)
			got, err := fc.ProbePair(i, j)
			if err != nil {
				t.Fatal(err)
			}
			want := truth.Beta
			if isSlow[i] || isSlow[j] {
				want /= 8
			}
			if math.Abs(got.Beta-want) > 1e-6*want {
				t.Fatalf("pair %d->%d beta %v want %v", i, j, got.Beta, want)
			}
		}
	}
}

func TestHeavyTailOutliers(t *testing.T) {
	_, vc := testCluster(t, 4, 3)
	vc.SetFreezeDynamics(true)
	fc := Wrap(vc, Scenario{Seed: 4, HeavyTailProb: 0.5, HeavyTailAlpha: 1.2})
	truth := vc.PairPerf(0, 1)
	draws := 400
	for k := 0; k < draws; k++ {
		l, err := fc.ProbePair(0, 1)
		if err != nil {
			t.Fatal(err)
		}
		// Heavy tails only ever slow the link (Pareto factor ≥ 1).
		if l.Beta > truth.Beta*(1+1e-12) {
			t.Fatal("outlier should slow the link, never speed it up")
		}
	}
	hits := fc.EventCounts()[EventHeavyTail]
	if hits < draws/4 || hits > 3*draws/4 {
		t.Errorf("heavy-tail events %d/%d, want ≈ half", hits, draws)
	}
}

func TestRackBlackoutWindow(t *testing.T) {
	p, vc := testCluster(t, 8, 5)
	rack := p.Topo.Node(vc.Hosts[0]).Rack
	b := RackBlackout(p.Topo, vc.Hosts, rack, 100, 50)
	if len(b.VMs) == 0 {
		t.Fatal("blackout covers no VMs")
	}
	fc := Wrap(vc, Scenario{Seed: 6, Blackouts: []Blackout{b}})

	// Before the window: fine.
	if _, err := fc.ProbePair(0, 1); err != nil {
		t.Fatalf("pre-window probe failed: %v", err)
	}
	// Inside the window: every probe touching VM 0 fails.
	fc.AdvanceTime(120)
	_, err := fc.ProbePair(0, 1)
	if !errors.Is(err, ErrProbeLost) {
		t.Fatalf("in-window probe should fail, got %v", err)
	}
	var pe *ProbeError
	if !errors.As(err, &pe) || pe.Reason != "blackout" {
		t.Errorf("reason %+v", pe)
	}
	if l := fc.PairPerf(0, 1); !(l.Beta == 0) {
		t.Error("blacked-out PairPerf should be a dead link")
	}
	// A pair entirely outside the rack still works.
	var a, bIdx = -1, -1
	inRack := map[int]bool{}
	for _, vm := range b.VMs {
		inRack[vm] = true
	}
	for vm := 0; vm < 8; vm++ {
		if !inRack[vm] {
			if a < 0 {
				a = vm
			} else if bIdx < 0 {
				bIdx = vm
			}
		}
	}
	if a >= 0 && bIdx >= 0 {
		if _, err := fc.ProbePair(a, bIdx); err != nil {
			t.Errorf("outside-rack probe failed: %v", err)
		}
	}
	// After the window: recovered, with start/end events logged.
	fc.AdvanceTime(100)
	if _, err := fc.ProbePair(0, 1); err != nil {
		t.Fatalf("post-window probe failed: %v", err)
	}
	cnt := fc.EventCounts()
	if cnt[EventBlackoutStart] != 1 || cnt[EventBlackoutEnd] != 1 {
		t.Errorf("blackout transitions %v", cnt)
	}
}

func TestPartitionSplitsGroups(t *testing.T) {
	_, vc := testCluster(t, 6, 7)
	fc := Wrap(vc, Scenario{Seed: 8, Partitions: []Partition{{Group: []int{0, 1, 2}, Start: 0, Duration: 100}}})
	if _, err := fc.ProbePair(0, 3); !errors.Is(err, ErrProbeLost) {
		t.Error("cross-partition probe should fail")
	}
	if _, err := fc.ProbePair(0, 1); err != nil {
		t.Errorf("same-side probe failed: %v", err)
	}
	if _, err := fc.ProbePair(3, 4); err != nil {
		t.Errorf("other-side probe failed: %v", err)
	}
	fc.AdvanceTime(200)
	if _, err := fc.ProbePair(0, 3); err != nil {
		t.Errorf("post-partition probe failed: %v", err)
	}
}

func TestChurnMakesVMsTransientlyUnreachable(t *testing.T) {
	_, vc := testCluster(t, 6, 9)
	fc := Wrap(vc, Scenario{Seed: 10, ChurnRate: 60, ChurnDuration: 120})
	churned := false
	for k := 0; k < 500 && !churned; k++ {
		fc.AdvanceTime(60)
		churned = fc.EventCounts()[EventChurnStart] > 0
	}
	if !churned {
		t.Fatal("no churn despite high rate")
	}
	// Find the churned VM from the log and verify unreachability.
	vm := -1
	for _, ev := range fc.Events() {
		if ev.Kind == EventChurnStart {
			vm = ev.I
		}
	}
	other := (vm + 1) % 6
	if _, err := fc.ProbePair(vm, other); !errors.Is(err, ErrProbeLost) {
		t.Errorf("churning VM should be unreachable, got %v", err)
	}
	// The VM recovers once its window passes. It may churn again on a later
	// step, so keep advancing until we observe the recovered state.
	recovered := false
	for k := 0; k < 500 && !recovered; k++ {
		fc.AdvanceTime(60)
		if _, err := fc.ProbePair(vm, other); err == nil {
			recovered = true
		}
	}
	if !recovered {
		t.Error("churned VM never recovered")
	}
	if fc.EventCounts()[EventChurnEnd] == 0 {
		t.Error("churn end not logged")
	}
}

// TestFaultScheduleDeterminism: identical seeds must produce identical
// fault schedules, event logs, and calibrations — the reproducibility
// guarantee the resilience experiments rely on.
func TestFaultScheduleDeterminism(t *testing.T) {
	build := func() (*Cluster, *cloud.TemporalCalibration) {
		p, vc := testCluster(t, 8, 11)
		rack := p.Topo.Node(vc.Hosts[0]).Rack
		fc := Wrap(vc, Scenario{
			Seed:          12,
			ProbeLoss:     0.2,
			HeavyTailProb: 0.1,
			Stragglers:    1,
			Blackouts:     []Blackout{RackBlackout(p.Topo, vc.Hosts, rack, 50, 200)},
			ChurnRate:     200,
		})
		tc := cloud.CalibrateTP(fc, stats.NewRNG(13), 5, 10,
			cloud.CalibrationConfig{Resilient: true, Repeats: 3})
		return fc, tc
	}
	fc1, tc1 := build()
	fc2, tc2 := build()

	if !reflect.DeepEqual(fc1.Events(), fc2.Events()) {
		t.Error("event logs differ across identically seeded runs")
	}
	if !reflect.DeepEqual(fc1.EventCounts(), fc2.EventCounts()) {
		t.Error("event counts differ")
	}
	enc := func(tc *cloud.TemporalCalibration) []byte {
		var buf bytes.Buffer
		if err := tc.Bandwidth.Encode(&buf); err != nil {
			t.Fatal(err)
		}
		if err := tc.Latency.Encode(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	if !bytes.Equal(enc(tc1), enc(tc2)) {
		t.Error("calibrations not byte-identical under identical seeds and faults")
	}
	if tc1.TotalCost != tc2.TotalCost {
		t.Errorf("costs differ: %v vs %v", tc1.TotalCost, tc2.TotalCost)
	}
}

// TestResilientCalibrationUnderFaults: the calibration layer and the fault
// substrate compose — gaps are honest (masked), costs stay finite, and
// quality reflects the abuse.
func TestResilientCalibrationUnderFaults(t *testing.T) {
	p, vc := testCluster(t, 8, 20)
	rack := p.Topo.Node(vc.Hosts[0]).Rack
	fc := Wrap(vc, Scenario{
		Seed:      21,
		ProbeLoss: 0.25,
		Blackouts: []Blackout{RackBlackout(p.Topo, vc.Hosts, rack, 0, 1e12)},
	})
	tc := cloud.CalibrateTP(fc, stats.NewRNG(22), 4, 0,
		cloud.CalibrationConfig{Resilient: true, MaxRetries: 2})
	if math.IsInf(tc.TotalCost, 0) || math.IsNaN(tc.TotalCost) || tc.TotalCost <= 0 {
		t.Fatalf("cost %v", tc.TotalCost)
	}
	if tc.Mask == nil {
		t.Fatal("resilient calibration should record a mask")
	}
	cov := tc.Coverage()
	if cov >= 1 || cov <= 0 {
		t.Errorf("coverage %v should be partial under a permanent blackout", cov)
	}
	for _, cal := range tc.Steps {
		if cal.Missing == 0 {
			t.Error("blackout rows should have missing cells")
		}
		if q := cal.MeanQuality(); q <= 0 || q >= 1 {
			t.Errorf("mean quality %v should be degraded but nonzero", q)
		}
	}
}
