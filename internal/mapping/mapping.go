// Package mapping implements the paper's second basic workload (§II-C):
// generic topology mapping. A weighted task graph (edge weight = data
// volume to transfer) is assigned onto a machine graph (edge weight =
// network bandwidth) so that heavy communication lands on fast links. The
// paper compares the Greedy Heuristic of Hoefler & Snir against a ring
// mapping baseline, with the machine graph built from either direct
// measurements (Heuristics), the RPCA constant component (RPCA), or
// nothing (Baseline).
package mapping

import (
	"fmt"
	"math/rand"
	"sort"

	"netconstant/internal/mat"
	"netconstant/internal/netmodel"
	"netconstant/internal/stats"
)

// Graph is a weighted undirected graph over n vertices stored as a dense
// symmetric weight matrix; weight 0 means no edge.
type Graph struct {
	N int
	W *mat.Dense
}

// NewGraph allocates an empty graph.
func NewGraph(n int) *Graph {
	return &Graph{N: n, W: mat.NewDense(n, n)}
}

// SetEdge assigns the symmetric edge weight.
func (g *Graph) SetEdge(i, j int, w float64) {
	if i == j {
		panic("mapping: self edge")
	}
	g.W.Set(i, j, w)
	g.W.Set(j, i, w)
}

// Edge returns the edge weight (0 if absent).
func (g *Graph) Edge(i, j int) float64 { return g.W.At(i, j) }

// VertexWeight is the sum of the weights of all edges incident to v — the
// "weight of a vertex" used by the greedy heuristic.
func (g *Graph) VertexWeight(v int) float64 {
	var s float64
	for j := 0; j < g.N; j++ {
		s += g.W.At(v, j)
	}
	return s
}

// RandomTaskGraph generates the paper's topology-mapping workload: a
// connected random task graph with edge data volumes drawn uniformly from
// [minVol, maxVol] (5–10 MB in the paper) and the given extra edge
// density beyond a connecting ring.
func RandomTaskGraph(rng *rand.Rand, n int, density, minVol, maxVol float64) *Graph {
	g := NewGraph(n)
	if n < 2 {
		return g
	}
	// A ring guarantees connectivity.
	for i := 0; i < n; i++ {
		g.SetEdge(i, (i+1)%n, stats.Uniform(rng, minVol, maxVol))
	}
	for i := 0; i < n; i++ {
		for j := i + 2; j < n; j++ {
			if i == 0 && j == n-1 {
				continue // ring edge already present
			}
			if rng.Float64() < density {
				g.SetEdge(i, j, stats.Uniform(rng, minVol, maxVol))
			}
		}
	}
	return g
}

// MachineGraphFromPerf builds the machine graph H from a performance
// matrix: edge weight is the average of the two directed bandwidths
// (bigger = better connectivity).
func MachineGraphFromPerf(perf *netmodel.PerfMatrix) *Graph {
	g := NewGraph(perf.N)
	for i := 0; i < perf.N; i++ {
		for j := i + 1; j < perf.N; j++ {
			bw := 0.5 * (perf.Bandwth.At(i, j) + perf.Bandwth.At(j, i))
			g.SetEdge(i, j, bw)
		}
	}
	return g
}

// RingMapping is the baseline: task i runs on machine i (§V-A,
// "maps each vertex in the task graph to a vertex in the machine graph one
// by one like a ring").
func RingMapping(n int) []int {
	m := make([]int, n)
	for i := range m {
		m[i] = i
	}
	return m
}

// GreedyMap implements the Greedy Heuristic Algorithm of Hoefler & Snir as
// described in §II-C: start at the heaviest machine vertex, map it to the
// heaviest task vertex, then repeatedly map the heaviest unmapped machine
// neighbours of already-mapped machines to the task neighbours with the
// heaviest connections. It returns assign[task] = machine and requires the
// two graphs to have equal order.
func GreedyMap(task, machine *Graph) []int {
	assign, err := GreedyMapE(task, machine)
	if err != nil {
		panic(err)
	}
	return assign
}

// GreedyMapE is the fallible variant of GreedyMap; the error wraps
// ErrGraphMismatch.
func GreedyMapE(task, machine *Graph) ([]int, error) {
	if task.N != machine.N {
		return nil, fmt.Errorf("%w: %d vs %d", ErrGraphMismatch, task.N, machine.N)
	}
	n := task.N
	assign := make([]int, n) // task -> machine
	for i := range assign {
		assign[i] = -1
	}
	machineTask := make([]int, n) // machine -> task
	for i := range machineTask {
		machineTask[i] = -1
	}

	heaviest := func(g *Graph, used func(int) bool) int {
		best, bestW := -1, -1.0
		for v := 0; v < g.N; v++ {
			if used(v) {
				continue
			}
			if w := g.VertexWeight(v); w > bestW {
				best, bestW = v, w
			}
		}
		return best
	}

	v0 := heaviest(machine, func(int) bool { return false })
	s0 := heaviest(task, func(int) bool { return false })
	assign[s0] = v0
	machineTask[v0] = s0

	// Process mapped machine vertices in mapping order.
	queue := []int{v0}
	for head := 0; head < len(queue); head++ {
		v := queue[head]
		s := machineTask[v]
		// Unmapped machine neighbours of v, heaviest connection first.
		mn := neighboursByWeight(machine, v, func(u int) bool { return machineTask[u] != -1 })
		// Unmapped task neighbours of s, heaviest connection first.
		tn := neighboursByWeight(task, s, func(u int) bool { return assign[u] != -1 })
		k := 0
		for _, mu := range mn {
			var tu int
			if k < len(tn) {
				tu = tn[k]
				k++
			} else {
				// Task neighbours exhausted: take the globally heaviest
				// unmapped task so every machine still gets a distinct task.
				tu = heaviest(task, func(u int) bool { return assign[u] != -1 })
				if tu < 0 {
					break
				}
			}
			assign[tu] = mu
			machineTask[mu] = tu
			queue = append(queue, mu)
		}
	}

	// The machine graph may be disconnected (zero-bandwidth edges): sweep
	// up any leftovers deterministically.
	for s := 0; s < n; s++ {
		if assign[s] != -1 {
			continue
		}
		for v := 0; v < n; v++ {
			if machineTask[v] == -1 {
				assign[s] = v
				machineTask[v] = s
				break
			}
		}
	}
	return assign, nil
}

func neighboursByWeight(g *Graph, v int, skip func(int) bool) []int {
	type nw struct {
		u int
		w float64
	}
	var list []nw
	for u := 0; u < g.N; u++ {
		if u == v || skip(u) || g.W.At(v, u) <= 0 {
			continue
		}
		list = append(list, nw{u, g.W.At(v, u)})
	}
	sort.SliceStable(list, func(a, b int) bool { return list[a].w > list[b].w })
	out := make([]int, len(list))
	for i, e := range list {
		out[i] = e.u
	}
	return out
}

// Cost evaluates a mapping against actual link performance: every task
// edge (i, j) becomes a transfer of its data volume over the machine link
// (assign[i], assign[j]); each machine serializes its transfers
// (single-port), and the elapsed estimate is the busiest machine's total
// send time. It returns (elapsed, totalTransferTime).
func Cost(task *Graph, assign []int, perf *netmodel.PerfMatrix) (elapsed, total float64) {
	elapsed, total, err := CostE(task, assign, perf)
	if err != nil {
		panic(err)
	}
	return elapsed, total
}

// CostE is the fallible variant of Cost; the error wraps ErrBadAssignment.
func CostE(task *Graph, assign []int, perf *netmodel.PerfMatrix) (elapsed, total float64, err error) {
	if len(assign) != task.N {
		return 0, 0, fmt.Errorf("%w: assignment length %d, task order %d", ErrBadAssignment, len(assign), task.N)
	}
	perNode := make([]float64, perf.N)
	for i := 0; i < task.N; i++ {
		for j := i + 1; j < task.N; j++ {
			vol := task.Edge(i, j)
			if vol <= 0 {
				continue
			}
			mi, mj := assign[i], assign[j]
			if mi == mj {
				continue // co-located tasks communicate for free
			}
			t := perf.Link(mi, mj).TransferTime(vol)
			perNode[mi] += t
			total += t
		}
	}
	for _, t := range perNode {
		if t > elapsed {
			elapsed = t
		}
	}
	return elapsed, total, nil
}

// ValidatePermutation checks that assign is a bijection onto [0, n). The
// error wraps ErrBadAssignment.
func ValidatePermutation(assign []int) error {
	seen := make([]bool, len(assign))
	for task, m := range assign {
		if m < 0 || m >= len(assign) {
			return fmt.Errorf("%w: task %d assigned out-of-range machine %d", ErrBadAssignment, task, m)
		}
		if seen[m] {
			return fmt.Errorf("%w: machine %d assigned twice", ErrBadAssignment, m)
		}
		seen[m] = true
	}
	return nil
}
