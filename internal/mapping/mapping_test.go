package mapping

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"netconstant/internal/netmodel"
)

func TestGraphBasics(t *testing.T) {
	g := NewGraph(3)
	g.SetEdge(0, 1, 5)
	if g.Edge(0, 1) != 5 || g.Edge(1, 0) != 5 {
		t.Error("symmetric edge")
	}
	if g.Edge(0, 2) != 0 {
		t.Error("missing edge")
	}
	if g.VertexWeight(0) != 5 {
		t.Error("vertex weight")
	}
	mustPanic(t, func() { g.SetEdge(1, 1, 2) })
}

func mustPanic(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	f()
}

func TestRandomTaskGraphConnectivityAndBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := RandomTaskGraph(rng, 12, 0.3, 5e6, 10e6)
	// Ring edges guarantee each vertex has degree >= 2.
	for v := 0; v < 12; v++ {
		deg := 0
		for u := 0; u < 12; u++ {
			w := g.Edge(v, u)
			if w != 0 {
				deg++
				if w < 5e6 || w > 10e6 {
					t.Fatalf("edge weight %v out of [5MB,10MB]", w)
				}
			}
		}
		if deg < 2 {
			t.Fatalf("vertex %d degree %d", v, deg)
		}
	}
	// Tiny graph edge case.
	if RandomTaskGraph(rng, 1, 0.5, 1, 2).VertexWeight(0) != 0 {
		t.Error("single-vertex graph should be empty")
	}
}

// heterogeneousPerf builds a cloud-like performance matrix with per-VM
// virtualization factors (beta_ij ∝ f_i·f_j), the structure the greedy
// heuristic's vertex-weight ordering exploits.
func heterogeneousPerf(rng *rand.Rand, n int) *netmodel.PerfMatrix {
	f := make([]float64, n)
	for i := range f {
		f[i] = 0.2 + 0.8*rng.Float64()
	}
	pm := netmodel.NewPerfMatrix(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			jitter := 0.9 + 0.2*rng.Float64()
			pm.SetLink(i, j, netmodel.Link{Alpha: 1e-4, Beta: 100e6 * f[i] * f[j] * jitter})
		}
	}
	return pm
}

func TestMachineGraphFromPerf(t *testing.T) {
	pm := netmodel.NewPerfMatrix(2)
	pm.SetLink(0, 1, netmodel.Link{Alpha: 0, Beta: 10})
	pm.SetLink(1, 0, netmodel.Link{Alpha: 0, Beta: 20})
	g := MachineGraphFromPerf(pm)
	if g.Edge(0, 1) != 15 {
		t.Errorf("averaged bandwidth %v", g.Edge(0, 1))
	}
}

func TestRingMapping(t *testing.T) {
	m := RingMapping(4)
	for i := range m {
		if m[i] != i {
			t.Fatal("ring mapping should be identity")
		}
	}
	if err := ValidatePermutation(m); err != nil {
		t.Error(err)
	}
}

func TestGreedyMapIsPermutation(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(20)
		task := RandomTaskGraph(rng, n, 0.3, 5e6, 10e6)
		machine := MachineGraphFromPerf(heterogeneousPerf(rng, n))
		assign := GreedyMap(task, machine)
		return ValidatePermutation(assign) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestGreedyMapStartsAtHeaviest(t *testing.T) {
	// Machine 2 has the best total bandwidth; task 1 has the most data.
	machine := NewGraph(3)
	machine.SetEdge(0, 1, 1)
	machine.SetEdge(0, 2, 10)
	machine.SetEdge(1, 2, 10)
	task := NewGraph(3)
	task.SetEdge(0, 1, 100)
	task.SetEdge(1, 2, 100)
	assign := GreedyMap(task, machine)
	if assign[1] != 2 {
		t.Errorf("heaviest task should map to heaviest machine: %v", assign)
	}
}

func TestGreedyMapMismatchPanics(t *testing.T) {
	mustPanic(t, func() { GreedyMap(NewGraph(2), NewGraph(3)) })
}

func TestGreedyBeatsRingOnHeterogeneousNetwork(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var ringSum, greedySum float64
	for trial := 0; trial < 20; trial++ {
		n := 16
		perf := heterogeneousPerf(rng, n)
		task := RandomTaskGraph(rng, n, 0.2, 5e6, 10e6)
		machine := MachineGraphFromPerf(perf)
		ringEl, _ := Cost(task, RingMapping(n), perf)
		greedyEl, _ := Cost(task, GreedyMap(task, machine), perf)
		ringSum += ringEl
		greedySum += greedyEl
	}
	if greedySum >= ringSum {
		t.Errorf("greedy %v should beat ring %v", greedySum, ringSum)
	}
}

func TestCostModel(t *testing.T) {
	// Two tasks exchanging 100 bytes over a 10 B/s link: elapsed 10+α.
	task := NewGraph(2)
	task.SetEdge(0, 1, 100)
	perf := netmodel.NewPerfMatrix(2)
	perf.SetLink(0, 1, netmodel.Link{Alpha: 1, Beta: 10})
	perf.SetLink(1, 0, netmodel.Link{Alpha: 1, Beta: 10})
	el, total := Cost(task, []int{0, 1}, perf)
	if el != 11 || total != 11 {
		t.Errorf("cost %v/%v", el, total)
	}
	// Co-located tasks are free.
	el2, _ := Cost(task, []int{0, 0}, perf)
	if el2 != 0 {
		t.Errorf("co-located cost %v", el2)
	}
	mustPanic(t, func() { Cost(task, []int{0}, perf) })
}

func TestValidatePermutationErrors(t *testing.T) {
	if ValidatePermutation([]int{0, 0}) == nil {
		t.Error("duplicate should fail")
	}
	if ValidatePermutation([]int{0, 5}) == nil {
		t.Error("out of range should fail")
	}
	if ValidatePermutation([]int{1, 0}) != nil {
		t.Error("valid permutation rejected")
	}
}

func TestGreedyDeterministic(t *testing.T) {
	rng1 := rand.New(rand.NewSource(3))
	rng2 := rand.New(rand.NewSource(3))
	n := 10
	t1 := RandomTaskGraph(rng1, n, 0.3, 5e6, 10e6)
	t2 := RandomTaskGraph(rng2, n, 0.3, 5e6, 10e6)
	m1 := MachineGraphFromPerf(heterogeneousPerf(rng1, n))
	m2 := MachineGraphFromPerf(heterogeneousPerf(rng2, n))
	a1 := GreedyMap(t1, m1)
	a2 := GreedyMap(t2, m2)
	for i := range a1 {
		if a1[i] != a2[i] {
			t.Fatal("greedy mapping not deterministic")
		}
	}
}

func TestTypedErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	task := RandomTaskGraph(rng, 4, 0.5, 5e6, 1e7)
	machine := NewGraph(5)
	if _, err := GreedyMapE(task, machine); !errors.Is(err, ErrGraphMismatch) {
		t.Errorf("mismatch err = %v", err)
	}
	if _, _, err := CostE(task, []int{0, 1}, netmodel.NewPerfMatrix(4)); !errors.Is(err, ErrBadAssignment) {
		t.Errorf("short assignment err = %v", err)
	}
	if err := ValidatePermutation([]int{0, 0, 1}); !errors.Is(err, ErrBadAssignment) {
		t.Errorf("duplicate machine err = %v", err)
	}
	if err := ValidatePermutation([]int{0, 7, 1}); !errors.Is(err, ErrBadAssignment) {
		t.Errorf("range err = %v", err)
	}
	if err := ValidatePermutation([]int{2, 0, 1}); err != nil {
		t.Errorf("valid permutation err = %v", err)
	}
	// Panicking wrappers carry the typed error.
	defer func() {
		if r := recover(); r == nil {
			t.Error("GreedyMap should panic on mismatch")
		} else if err, ok := r.(error); !ok || !errors.Is(err, ErrGraphMismatch) {
			t.Errorf("panic value %v", r)
		}
	}()
	GreedyMap(task, machine)
}
