package mapping

import "errors"

// Sentinel errors for the fallible mapping APIs (GreedyMapE, CostE,
// ValidatePermutation). The panicking GreedyMap/Cost wrappers remain for
// internally generated graphs, where a mismatch is a programming bug.
var (
	// ErrGraphMismatch: the task and machine graphs have different orders.
	ErrGraphMismatch = errors.New("mapping: graph order mismatch")
	// ErrBadAssignment: an assignment is the wrong length or not a
	// permutation.
	ErrBadAssignment = errors.New("mapping: bad assignment")
)
