package netmodel

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"netconstant/internal/mat"
)

func TestLinkTransferTime(t *testing.T) {
	l := Link{Alpha: 0.001, Beta: 1e6}
	if got := l.TransferTime(1e6); math.Abs(got-1.001) > 1e-12 {
		t.Errorf("transfer time %v", got)
	}
	if !math.IsInf(Link{Alpha: 1, Beta: 0}.TransferTime(10), 1) {
		t.Error("zero bandwidth should be infinite time")
	}
}

func TestPerfMatrixLinks(t *testing.T) {
	p := NewPerfMatrix(3)
	p.SetLink(0, 1, Link{Alpha: 0.5, Beta: 100})
	l := p.Link(0, 1)
	if l.Alpha != 0.5 || l.Beta != 100 {
		t.Error("set/get link")
	}
	if p.Link(1, 0).Alpha != 0 {
		t.Error("asymmetric by default")
	}
}

func TestWeights(t *testing.T) {
	p := NewPerfMatrix(2)
	p.SetLink(0, 1, Link{Alpha: 1, Beta: 10})
	p.SetLink(1, 0, Link{Alpha: 2, Beta: 20})
	w := p.Weights(100)
	if w.At(0, 0) != 0 || w.At(1, 1) != 0 {
		t.Error("diagonal should be zero")
	}
	if math.Abs(w.At(0, 1)-11) > 1e-12 {
		t.Errorf("w(0,1)=%v", w.At(0, 1))
	}
	if math.Abs(w.At(1, 0)-7) > 1e-12 {
		t.Errorf("w(1,0)=%v", w.At(1, 0))
	}
}

func TestPerfMatrixClone(t *testing.T) {
	p := NewPerfMatrix(2)
	p.SetLink(0, 1, Link{Alpha: 1, Beta: 2})
	c := p.Clone()
	c.SetLink(0, 1, Link{Alpha: 9, Beta: 9})
	if p.Link(0, 1).Alpha != 1 {
		t.Error("clone aliases")
	}
}

func TestVectorizeRoundTrip(t *testing.T) {
	m := mat.FromRows([][]float64{{1, 2}, {3, 4}})
	v := Vectorize(m)
	want := []float64{1, 2, 3, 4}
	for i := range want {
		if v[i] != want[i] {
			t.Fatalf("vectorize %v", v)
		}
	}
	back := Devectorize(v, 2)
	if !back.ApproxEqual(m, 0) {
		t.Error("devectorize")
	}
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	Devectorize([]float64{1, 2, 3}, 2)
}

func TestTPMatrixAppendAndViews(t *testing.T) {
	tp := NewTPMatrix(2)
	s1 := mat.FromRows([][]float64{{0, 1}, {2, 0}})
	s2 := mat.FromRows([][]float64{{0, 3}, {4, 0}})
	tp.Append(0, s1)
	tp.Append(10, s2)
	if tp.Steps() != 2 {
		t.Fatal("steps")
	}
	if !tp.Snapshot(1).ApproxEqual(s2, 0) {
		t.Error("snapshot")
	}
	m := tp.Matrix()
	if m.Rows() != 2 || m.Cols() != 4 {
		t.Error("matrix dims")
	}
	if m.At(0, 1) != 1 || m.At(1, 2) != 4 {
		t.Error("matrix content")
	}
	h := tp.Head(1)
	if h.Steps() != 1 || h.Times[0] != 0 {
		t.Error("head")
	}
	if tp.Head(99).Steps() != 2 {
		t.Error("head clamp")
	}
	w := tp.Window(5, 15)
	if w.Steps() != 1 || w.Times[0] != 10 {
		t.Error("window")
	}
	c := tp.Clone()
	c.Append(20, s1)
	if tp.Steps() != 2 {
		t.Error("clone aliases")
	}
}

func TestTPMatrixAppendPanics(t *testing.T) {
	tp := NewTPMatrix(2)
	mustPanic(t, func() { tp.Append(0, mat.NewDense(3, 3)) })
	tp.Append(5, mat.NewDense(2, 2))
	mustPanic(t, func() { tp.Append(1, mat.NewDense(2, 2)) })
}

func mustPanic(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	f()
}

func TestTPMatrixGobRoundTrip(t *testing.T) {
	tp := NewTPMatrix(2)
	tp.Append(1, mat.FromRows([][]float64{{0, 5}, {6, 0}}))
	tp.Append(2, mat.FromRows([][]float64{{0, 7}, {8, 0}}))
	back, err := RoundTripBytes(tp)
	if err != nil {
		t.Fatal(err)
	}
	if back.Steps() != 2 || back.N != 2 {
		t.Fatal("round trip shape")
	}
	if !back.Snapshot(1).ApproxEqual(tp.Snapshot(1), 0) {
		t.Error("round trip content")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	m := mat.FromRows([][]float64{{1.5, -2}, {3.25, 1e-9}})
	var buf bytes.Buffer
	if err := WriteCSV(&buf, m); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !back.ApproxEqual(m, 0) {
		t.Error("csv round trip")
	}
}

func TestReadCSVBad(t *testing.T) {
	if _, err := ReadCSV(bytes.NewBufferString("1,notanumber\n")); err == nil {
		t.Error("bad csv should error")
	}
	m, err := ReadCSV(new(bytes.Buffer))
	if err != nil || m.Rows() != 0 {
		t.Error("empty csv")
	}
}

func TestInjectNoiseStep(t *testing.T) {
	tp := NewTPMatrix(2)
	snap := mat.FromRows([][]float64{{0, 100}, {100, 0}})
	tp.Append(0, snap)
	orig := tp.Matrix()
	rng := rand.New(rand.NewSource(1))
	tp.InjectNoiseStep(rng, 50)
	after := tp.Matrix()
	if orig.ApproxEqual(after, 0) {
		t.Error("noise should change matrix")
	}
	// Changes should be small multiplicative steps: within 1.01^50.
	for i := 0; i < after.Rows(); i++ {
		for j := 0; j < after.Cols(); j++ {
			o, a := orig.At(i, j), after.At(i, j)
			if o == 0 {
				if a != 0 {
					t.Error("zero cells should remain zero under multiplicative noise")
				}
				continue
			}
			ratio := a / o
			if ratio < math.Pow(0.99, 60) || ratio > math.Pow(1.01, 60) {
				t.Errorf("cell moved too far: ratio %v", ratio)
			}
		}
	}
	// No-op on empty.
	NewTPMatrix(2).InjectNoiseStep(rng, 10)
}

func TestInjectSpikes(t *testing.T) {
	tp := NewTPMatrix(2)
	tp.Append(0, mat.FromRows([][]float64{{0, 10}, {10, 0}}))
	rng := rand.New(rand.NewSource(2))
	tp.InjectSpikes(rng, 1.0, 2.0) // every cell spiked
	m := tp.Matrix()
	if m.At(0, 1) <= 10 || m.At(0, 2) <= 10 {
		t.Error("spikes should increase values")
	}
}

// Property: vectorize/devectorize is lossless for arbitrary square sizes.
func TestPropertyVectorizeRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(8)
		m := mat.RandomNormal(rng, n, n, 0, 5)
		return Devectorize(Vectorize(m), n).ApproxEqual(m, 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: gob round trip preserves every snapshot exactly.
func TestPropertyGobRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(5)
		tp := NewTPMatrix(n)
		steps := 1 + rng.Intn(6)
		for s := 0; s < steps; s++ {
			tp.Append(float64(s), mat.RandomNormal(rng, n, n, 10, 3))
		}
		back, err := RoundTripBytes(tp)
		if err != nil || back.Steps() != steps {
			return false
		}
		for s := 0; s < steps; s++ {
			if !back.Snapshot(s).ApproxEqual(tp.Snapshot(s), 0) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestRepairInNetmodel(t *testing.T) {
	pm := NewPerfMatrix(3)
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if i != j {
				pm.SetLink(i, j, Link{Alpha: 1e-3, Beta: 2e6})
			}
		}
	}
	pm.SetLink(1, 2, Link{Alpha: math.NaN(), Beta: math.NaN()})
	n := pm.Repair()
	if n != 2 { // one latency cell + one bandwidth cell
		t.Errorf("repaired %d cells", n)
	}
	if pm.Link(1, 2).Beta != 2e6 {
		t.Error("NaN cell should borrow the reverse direction")
	}
	// Fully-broken matrix: nothing to borrow, cells stay broken.
	empty := NewPerfMatrix(2)
	if empty.Repair() != 0 {
		t.Error("all-zero matrix has nothing to repair from")
	}
}

func TestDecodeTPMatrixCorrupt(t *testing.T) {
	if _, err := DecodeTPMatrix(bytes.NewBufferString("garbage")); err == nil {
		t.Error("garbage should fail to decode")
	}
}
