// Package netmodel defines the network performance abstractions of the
// paper (§III): the α-β link model, N×N performance matrices over a
// virtual cluster, temporal performance matrices (TP-matrix) that stack
// calibration snapshots as rows, and the noise-injection procedure used to
// study the impact of Norm(N_E) (§V-D3).
package netmodel

import (
	"bytes"
	"encoding/csv"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"math"
	"math/rand"
	"sort"
	"strconv"

	"netconstant/internal/mat"
)

// Link is the α-β model of a directed machine pair: transfer time for n
// bytes is Alpha + n/Beta.
type Link struct {
	Alpha float64 // latency in seconds
	Beta  float64 // bandwidth in bytes per second
}

// TransferTime estimates the α-β transfer time for a message of n bytes.
func (l Link) TransferTime(n float64) float64 {
	if l.Beta <= 0 {
		return math.Inf(1)
	}
	return l.Alpha + n/l.Beta
}

// PerfMatrix is a snapshot of all-link network performance of an N-VM
// virtual cluster: two N×N matrices holding per-pair latency (seconds) and
// bandwidth (bytes/second). The diagonal is zero-latency, infinite-speed
// loopback by convention and is ignored by the optimizers.
//
// Quality, when non-nil, carries a per-cell measurement quality score in
// [0, 1] shared by both matrices (a probe measures latency and bandwidth
// together): 1 is a clean first-attempt measurement, lower values mean the
// probe needed retries or had repeats rejected as outliers, and 0 marks a
// cell as *missing* — the probe exhausted its retry budget and the cell
// holds no measurement. A nil Quality is the legacy convention: every
// off-diagonal cell is assumed measured at full quality.
type PerfMatrix struct {
	N       int
	Latency *mat.Dense
	Bandwth *mat.Dense
	Quality *mat.Dense
}

// NewPerfMatrix allocates a zeroed N×N performance snapshot.
func NewPerfMatrix(n int) *PerfMatrix {
	return &PerfMatrix{N: n, Latency: mat.NewDense(n, n), Bandwth: mat.NewDense(n, n)}
}

// Link returns the α-β parameters of the directed pair (i, j).
func (p *PerfMatrix) Link(i, j int) Link {
	return Link{Alpha: p.Latency.At(i, j), Beta: p.Bandwth.At(i, j)}
}

// SetLink assigns the α-β parameters of the directed pair (i, j).
func (p *PerfMatrix) SetLink(i, j int, l Link) {
	p.Latency.Set(i, j, l.Alpha)
	p.Bandwth.Set(i, j, l.Beta)
}

// Weights converts the snapshot into a single N×N weight matrix of
// estimated transfer times for a message of msgBytes — the input format of
// the FNF and topology-mapping algorithms (a smaller weight means a better
// link, paper Fig 1). Diagonal entries are zero.
func (p *PerfMatrix) Weights(msgBytes float64) *mat.Dense {
	w := mat.NewDense(p.N, p.N)
	for i := 0; i < p.N; i++ {
		for j := 0; j < p.N; j++ {
			if i == j {
				continue
			}
			w.Set(i, j, p.Link(i, j).TransferTime(msgBytes))
		}
	}
	return w
}

// EnsureQuality allocates the quality matrix if absent. Cells start at 0
// (unmeasured); calibration marks each cell as it is probed.
func (p *PerfMatrix) EnsureQuality() {
	if p.Quality == nil {
		p.Quality = mat.NewDense(p.N, p.N)
	}
}

// SetLinkQ assigns the pair's α-β parameters together with a measurement
// quality score in [0, 1], allocating the quality matrix on first use.
func (p *PerfMatrix) SetLinkQ(i, j int, l Link, quality float64) {
	p.EnsureQuality()
	p.SetLink(i, j, l)
	if quality < 0 {
		quality = 0
	}
	if quality > 1 {
		quality = 1
	}
	p.Quality.Set(i, j, quality)
}

// MarkMissing records that the pair could not be measured: the cell keeps a
// zero link and quality 0 so downstream layers can mask it instead of
// consuming a silent zero.
func (p *PerfMatrix) MarkMissing(i, j int) {
	p.EnsureQuality()
	p.SetLink(i, j, Link{})
	p.Quality.Set(i, j, 0)
}

// QualityAt returns the cell's quality score; matrices without quality
// tracking report full quality for every off-diagonal cell.
func (p *PerfMatrix) QualityAt(i, j int) float64 {
	if i == j {
		return 0
	}
	if p.Quality == nil {
		return 1
	}
	return p.Quality.At(i, j)
}

// IsMissing reports whether the directed off-diagonal cell holds no
// measurement. With quality tracking a cell is missing iff its quality is
// zero; legacy matrices fall back to the non-positive-value convention
// used by Repair.
func (p *PerfMatrix) IsMissing(i, j int) bool {
	if i == j {
		return false
	}
	if p.Quality != nil {
		return !(p.Quality.At(i, j) > 0)
	}
	return !(p.Bandwth.At(i, j) > 0)
}

// Coverage returns the fraction of off-diagonal cells holding a
// measurement.
func (p *PerfMatrix) Coverage() float64 {
	if p.N < 2 {
		return 1
	}
	measured := 0
	for i := 0; i < p.N; i++ {
		for j := 0; j < p.N; j++ {
			if i != j && !p.IsMissing(i, j) {
				measured++
			}
		}
	}
	return float64(measured) / float64(p.N*(p.N-1))
}

// MeanQuality averages the quality score over all off-diagonal cells
// (missing cells count as 0). Without quality tracking it returns 1.
func (p *PerfMatrix) MeanQuality() float64 {
	if p.Quality == nil || p.N < 2 {
		return 1
	}
	var s float64
	for i := 0; i < p.N; i++ {
		for j := 0; j < p.N; j++ {
			if i != j {
				s += p.Quality.At(i, j)
			}
		}
	}
	return s / float64(p.N*(p.N-1))
}

// Clone returns a deep copy.
func (p *PerfMatrix) Clone() *PerfMatrix {
	out := &PerfMatrix{N: p.N, Latency: p.Latency.Clone(), Bandwth: p.Bandwth.Clone()}
	if p.Quality != nil {
		out.Quality = p.Quality.Clone()
	}
	return out
}

// Repair fills in missing measurements (non-positive or NaN cells) of a
// performance snapshot in place: a broken directed cell first borrows the
// reverse direction's value, and if both directions failed it falls back
// to the median of the valid entries in its column (the "other senders to
// this receiver" population). It returns how many cells were repaired.
// Diagonal cells are ignored. Snapshots where an entire column failed keep
// zero cells — callers should re-measure in that case.
//
// With quality tracking enabled, missingness is driven by the quality mask
// (a shared probe failure breaks latency and bandwidth together), repaired
// cells are down-scored instead of passing as real measurements
// (reverse-direction borrow: half the donor's quality; column median: 0.2),
// and cells that cannot be repaired stay marked missing so masked
// decomposition can exclude them.
func (p *PerfMatrix) Repair() int {
	repaired := 0
	bad := func(m *mat.Dense, i, j int) bool {
		if p.Quality != nil {
			return !(p.Quality.At(i, j) > 0)
		}
		return !(m.At(i, j) > 0) // catches NaN too
	}
	fix := func(m *mat.Dense, score bool) {
		colMedian := func(j int) float64 {
			var vals []float64
			for i := 0; i < p.N; i++ {
				if i == j {
					continue
				}
				if v := m.At(i, j); !bad(m, i, j) && v > 0 {
					vals = append(vals, v)
				}
			}
			if len(vals) == 0 {
				return 0
			}
			sort.Float64s(vals)
			if len(vals)%2 == 1 {
				return vals[len(vals)/2]
			}
			return 0.5 * (vals[len(vals)/2-1] + vals[len(vals)/2])
		}
		for i := 0; i < p.N; i++ {
			for j := 0; j < p.N; j++ {
				if i == j || !bad(m, i, j) {
					continue
				}
				if rev := m.At(j, i); !bad(m, j, i) && rev > 0 {
					m.Set(i, j, rev)
					if score && p.Quality != nil {
						p.Quality.Set(i, j, 0.5*p.Quality.At(j, i))
					}
					repaired++
					continue
				}
				if med := colMedian(j); med > 0 {
					m.Set(i, j, med)
					if score && p.Quality != nil {
						p.Quality.Set(i, j, 0.2)
					}
					repaired++
				}
			}
		}
	}
	fix(p.Latency, false)
	fix(p.Bandwth, true) // score once: the quality mask is shared
	return repaired
}

// Vectorize lays out an N×N matrix into an N²-vector by row order, the
// TP-matrix row format of paper §III.
func Vectorize(m *mat.Dense) []float64 {
	out := make([]float64, 0, m.Rows()*m.Cols())
	for i := 0; i < m.Rows(); i++ {
		out = append(out, m.Row(i)...)
	}
	return out
}

// Devectorize rebuilds an n×n matrix from its row-order vectorization.
func Devectorize(v []float64, n int) *mat.Dense {
	if len(v) != n*n {
		panic(fmt.Sprintf("netmodel: devectorize length %d != %d²", len(v), n))
	}
	m := mat.NewDense(n, n)
	copy(m.Data(), v)
	return m
}

// TPMatrix is a temporal performance matrix: each row is one vectorized
// all-link snapshot, rows ordered by measurement time. The number of rows
// is the paper's "time step" tuning parameter.
type TPMatrix struct {
	N     int       // cluster size; each row has N² entries
	Times []float64 // measurement times (simulated seconds)
	rows  [][]float64
}

// NewTPMatrix creates an empty TP-matrix for an N-VM cluster.
func NewTPMatrix(n int) *TPMatrix {
	return &TPMatrix{N: n}
}

// Append adds a snapshot taken at the given time. Rows must be appended in
// non-decreasing time order.
func (tp *TPMatrix) Append(t float64, snapshot *mat.Dense) {
	if snapshot.Rows() != tp.N || snapshot.Cols() != tp.N {
		panic("netmodel: snapshot dimension mismatch")
	}
	if len(tp.Times) > 0 && t < tp.Times[len(tp.Times)-1] {
		panic("netmodel: snapshots must be appended in time order")
	}
	tp.Times = append(tp.Times, t)
	tp.rows = append(tp.rows, Vectorize(snapshot))
}

// Steps returns the number of snapshots (rows).
func (tp *TPMatrix) Steps() int { return len(tp.rows) }

// Snapshot reconstructs the i-th snapshot as an N×N matrix.
func (tp *TPMatrix) Snapshot(i int) *mat.Dense {
	return Devectorize(tp.rows[i], tp.N)
}

// Matrix returns the steps×N² dense matrix view (copied) — the data matrix
// A handed to RPCA.
func (tp *TPMatrix) Matrix() *mat.Dense {
	m := mat.NewDense(len(tp.rows), tp.N*tp.N)
	for i, row := range tp.rows {
		copy(m.Row(i), row)
	}
	return m
}

// Head returns a new TP-matrix containing only the first k rows (a "time
// step" prefix used by the Fig 5 sweep). k larger than Steps() is clamped.
func (tp *TPMatrix) Head(k int) *TPMatrix {
	if k > len(tp.rows) {
		k = len(tp.rows)
	}
	out := NewTPMatrix(tp.N)
	for i := 0; i < k; i++ {
		out.Times = append(out.Times, tp.Times[i])
		out.rows = append(out.rows, append([]float64(nil), tp.rows[i]...))
	}
	return out
}

// Window returns the rows with Times in [t0, t1] as a new TP-matrix.
func (tp *TPMatrix) Window(t0, t1 float64) *TPMatrix {
	out := NewTPMatrix(tp.N)
	for i, tm := range tp.Times {
		if tm >= t0 && tm <= t1 {
			out.Times = append(out.Times, tm)
			out.rows = append(out.rows, append([]float64(nil), tp.rows[i]...))
		}
	}
	return out
}

// Clone deep-copies the TP-matrix.
func (tp *TPMatrix) Clone() *TPMatrix {
	out := NewTPMatrix(tp.N)
	out.Times = append(out.Times, tp.Times...)
	for _, r := range tp.rows {
		out.rows = append(out.rows, append([]float64(nil), r...))
	}
	return out
}

// gobTP mirrors TPMatrix for encoding (unexported fields are not encoded
// by gob directly).
type gobTP struct {
	N     int
	Times []float64
	Rows  [][]float64
}

// Encode serializes the TP-matrix with encoding/gob.
func (tp *TPMatrix) Encode(w io.Writer) error {
	return gob.NewEncoder(w).Encode(gobTP{N: tp.N, Times: tp.Times, Rows: tp.rows})
}

// DecodeTPMatrix reads a TP-matrix previously written by Encode.
func DecodeTPMatrix(r io.Reader) (*TPMatrix, error) {
	var g gobTP
	if err := gob.NewDecoder(r).Decode(&g); err != nil {
		return nil, err
	}
	if len(g.Times) != len(g.Rows) {
		return nil, errors.New("netmodel: corrupt TP-matrix: times/rows mismatch")
	}
	for _, row := range g.Rows {
		if len(row) != g.N*g.N {
			return nil, errors.New("netmodel: corrupt TP-matrix: row length mismatch")
		}
	}
	return &TPMatrix{N: g.N, Times: g.Times, rows: g.Rows}, nil
}

// WriteCSV writes a snapshot matrix as CSV (one row per line).
func WriteCSV(w io.Writer, m *mat.Dense) error {
	cw := csv.NewWriter(w)
	rec := make([]string, m.Cols())
	for i := 0; i < m.Rows(); i++ {
		for j := 0; j < m.Cols(); j++ {
			rec[j] = strconv.FormatFloat(m.At(i, j), 'g', -1, 64)
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a dense matrix from CSV.
func ReadCSV(r io.Reader) (*mat.Dense, error) {
	recs, err := csv.NewReader(r).ReadAll()
	if err != nil {
		return nil, err
	}
	if len(recs) == 0 {
		return mat.NewDense(0, 0), nil
	}
	rows := make([][]float64, len(recs))
	for i, rec := range recs {
		rows[i] = make([]float64, len(rec))
		for j, s := range rec {
			v, err := strconv.ParseFloat(s, 64)
			if err != nil {
				return nil, fmt.Errorf("netmodel: bad CSV cell (%d,%d): %w", i, j, err)
			}
			rows[i][j] = v
		}
	}
	return mat.FromRows(rows), nil
}

// RoundTripBytes is a convenience helper that encodes and re-decodes a
// TP-matrix through memory, used in tests and the trace tooling.
func RoundTripBytes(tp *TPMatrix) (*TPMatrix, error) {
	var buf bytes.Buffer
	if err := tp.Encode(&buf); err != nil {
		return nil, err
	}
	return DecodeTPMatrix(&buf)
}

// InjectNoiseStep applies one batch of the paper's noise procedure to the
// TP-matrix in place: each selected cell is increased or decreased by 1%
// (§V-D3, "for each time of adding noise, we change the network
// performance by 1%"). cells gives how many random cells to perturb.
func (tp *TPMatrix) InjectNoiseStep(rng *rand.Rand, cells int) {
	if len(tp.rows) == 0 {
		return
	}
	width := tp.N * tp.N
	for k := 0; k < cells; k++ {
		i := rng.Intn(len(tp.rows))
		j := rng.Intn(width)
		if rng.Float64() < 0.5 {
			tp.rows[i][j] *= 1.01
		} else {
			tp.rows[i][j] *= 0.99
		}
	}
}

// InjectSpikes adds sparse multiplicative spikes (factor amp, probability
// density per cell) — a faster way to reach high Norm(N_E) targets than
// repeated 1% steps, used by the Fig 10 sweep's upper range.
func (tp *TPMatrix) InjectSpikes(rng *rand.Rand, density, amp float64) {
	for _, row := range tp.rows {
		for j := range row {
			if rng.Float64() < density {
				row[j] *= 1 + amp*rng.Float64()
			}
		}
	}
}
