package rpca

// Online streaming RPCA: incremental constant-subspace tracking with the
// batch solver kept as a differential oracle.
//
// The batch pipeline re-decomposes a complete TP-matrix per epoch; the
// streaming solver instead ingests pair measurements column-by-column and
// maintains the constant component at two tiers:
//
//   - a fast tier, run per column: project the new measurement column onto
//     the warm left subspace held by the solver's mat.SVTWorkspace (the
//     leading left singular vectors of the last resolved low-rank
//     component), split the column into a low-rank part d̂ = U·(Uᵀa) and a
//     residual ê = a − d̂, and extract the column's constant estimate from
//     d̂. Cost O(rows·k) — no decomposition at all. Optionally (TrackEvery)
//     a single warm-started truncated SVT over the accumulated matrix
//     refreshes the subspace, which the workspace carries across widths
//     (CarryAcrossWidths), absorbing slow drift between resolves;
//
//   - an authoritative tier, Resolve: a warm-started IALM over the matrix
//     so far, identical in schedule, initialization and stopping rule to
//     the batch solver — only the SVT route differs, because the warm
//     subspace makes every D-step take the truncated route. This is the
//     "cheap partial re-solve" a regime change triggers instead of a cold
//     restart, and the per-epoch replacement for full re-decomposition.
//
// Verify runs the cold batch solver on the same matrix — the differential
// oracle — and reports how far the streaming state is from it, the same
// pattern as simnet's verifyGlobal: an independent re-derivation agreeing
// with the incremental state is strong evidence the tracking is right.

import (
	"context"
	"errors"
	"fmt"
	"math"

	"netconstant/internal/cancel"
	"netconstant/internal/mat"
)

// StreamOptions configures a StreamingSolver. The zero value selects the
// batch IALM defaults, median extraction, and subspace tracking on every
// appended column.
type StreamOptions struct {
	// Extract selects how per-column constant estimates are obtained; the
	// zero value is ExtractMedian, matching the batch pipeline default.
	Extract ExtractMethod
	// IALM configures the authoritative resolves (and the differential
	// oracle, which always runs the identical schedule cold). Its Ctx, if
	// set, cancels inside resolve iterations; the streaming update loop
	// itself is cancelled via StreamOptions.Ctx below.
	IALM IALMOptions
	// TrackEvery runs one warm truncated SVT over the accumulated matrix
	// every n appended columns to refresh the tracked subspace. 0 selects
	// 1 (every column); negative disables tracking between resolves.
	TrackEvery int
	// ResolveEvery triggers an authoritative warm resolve every n appended
	// columns. 0 disables cadence resolves — the caller (e.g. the advisor's
	// regime detector) decides when to resolve.
	ResolveEvery int
	// Ctx, when non-nil, is checked on every append and inside Seed's
	// ingestion loop; a cancelled context aborts with a *cancel.Error.
	Ctx context.Context
}

// StreamStats counts the work a StreamingSolver has done.
type StreamStats struct {
	Columns   int // columns ingested (Seed + AppendColumn)
	Replaced  int // columns overwritten by ReplaceColumn
	Tracked   int // fast-tier subspace-refresh SVTs
	Resolves  int // authoritative warm resolves
	FullSVDs  int // solver-lifetime SVT calls served by a full decomposition
	TruncSVDs int // solver-lifetime SVT calls served by the warm truncated route
}

// StreamAgreement is the differential-oracle verdict: the distance between
// the streaming solver's authoritative state and a cold batch IALM run on
// the identical matrix.
type StreamAgreement struct {
	RelFroD     float64 // ‖D_stream − D_batch‖F / max(1, ‖D_batch‖F)
	RelFroE     float64 // ‖E_stream − E_batch‖F / max(1, ‖E_batch‖F)
	ConstantRel float64 // RelDiff of the extracted constant rows
	StreamIters int     // iterations of the (warm) streaming resolve
	BatchIters  int     // iterations of the cold oracle solve
}

// StreamingSolver ingests TP-matrix columns one at a time and maintains
// the constant component incrementally. It is not safe for concurrent use.
type StreamingSolver struct {
	rows int
	opts StreamOptions

	// colData holds the accumulated matrix column-major (column j occupies
	// colData[j*rows : (j+1)*rows]) so appends are O(rows).
	colData []float64
	ncols   int

	// solver is the warm arena: carryWarm plus CarryAcrossWidths keep the
	// SVT subspace alive across widths and across resolves.
	solver *Solver

	// amat is the row-major materialization scratch for tracking/resolves.
	amat, aout []float64

	constant     []float64 // per-column constant estimates, streaming tier
	last         *Result   // last authoritative resolve (caller-owned clones)
	dirty        bool      // columns ingested or replaced since the last resolve
	trackTau     float64   // SVT threshold for subspace tracking; 0 = none yet
	sinceTrack   int
	sinceResolve int
	stats        StreamStats
	projBuf      []float64 // k-length projection scratch
	colBuf       []float64 // rows-length cleaned-column scratch
	sortBuf      []float64 // rows-length extraction scratch
	constantOld  []float64 // resolve-time snapshot (diagnostics for drift)
}

// NewStreamingSolver returns a streaming solver for TP-matrices with the
// given fixed number of rows (time steps per pair measurement column).
func NewStreamingSolver(rows int, opts StreamOptions) (*StreamingSolver, error) {
	if rows <= 0 {
		return nil, errors.New("rpca: streaming solver needs rows > 0")
	}
	if opts.TrackEvery == 0 {
		opts.TrackEvery = 1
	}
	s := &StreamingSolver{rows: rows, opts: opts, solver: NewSolver()}
	s.solver.carryWarm = true
	s.solver.svt.CarryAcrossWidths(true)
	return s, nil
}

// Rows returns the fixed column height.
func (s *StreamingSolver) Rows() int { return s.rows }

// Columns returns the number of columns ingested so far.
func (s *StreamingSolver) Columns() int { return s.ncols }

// Stats returns the work counters, including the shared SVT route stats.
func (s *StreamingSolver) Stats() StreamStats {
	st := s.stats
	st.FullSVDs, st.TruncSVDs = s.solver.SVTStats()
	return st
}

// Constant returns a copy of the current per-column constant row estimate
// P_D: authoritative values from the last resolve for the columns it saw,
// fast-tier projections for columns appended since.
func (s *StreamingSolver) Constant() []float64 {
	out := make([]float64, s.ncols)
	copy(out, s.constant)
	return out
}

// LastResult returns the last authoritative resolve, or nil before the
// first one. The matrices are owned by the solver's history — treat them
// as read-only.
func (s *StreamingSolver) LastResult() *Result { return s.last }

// Matrix materializes the accumulated TP-matrix (rows × Columns()) as a
// fresh caller-owned Dense.
func (s *StreamingSolver) Matrix() *mat.Dense {
	return s.matrixView().Clone()
}

// matrixView materializes the accumulated matrix row-major into the amat
// scratch and returns a view over it. The view is invalidated by the next
// append/materialize.
func (s *StreamingSolver) matrixView() *mat.Dense {
	r, c := s.rows, s.ncols
	if cap(s.amat) < r*c {
		s.amat = make([]float64, r*c)
	}
	s.amat = s.amat[:r*c]
	for j := 0; j < c; j++ {
		col := s.colData[j*r : (j+1)*r]
		for i, v := range col {
			s.amat[i*c+j] = v
		}
	}
	return mat.NewDenseData(r, c, s.amat)
}

// Seed ingests an existing TP-matrix (e.g. the advisor's last full
// calibration) column-by-column and runs an initial authoritative resolve,
// so subsequent appends start from a warm subspace.
func (s *StreamingSolver) Seed(a *mat.Dense) error {
	r, c := a.Dims()
	if r != s.rows {
		return fmt.Errorf("rpca: seed matrix has %d rows, streaming solver wants %d", r, s.rows)
	}
	col := make([]float64, r)
	for j := 0; j < c; j++ {
		if err := cancel.Check(s.opts.Ctx, "rpca.StreamSeed", j, c); err != nil {
			return err
		}
		for i := 0; i < r; i++ {
			col[i] = a.At(i, j)
		}
		s.ingest(col)
	}
	_, err := s.Resolve()
	return err
}

// ingest appends one column and its fast-tier constant estimate.
func (s *StreamingSolver) ingest(col []float64) {
	s.colData = append(s.colData, col...)
	s.ncols++
	s.stats.Columns++
	s.dirty = true
	s.sinceResolve++
	s.constant = append(s.constant, s.fastEstimate(col))
}

// AppendColumn ingests one new pair-measurement column (length Rows()):
// fast-tier constant estimate immediately, subspace-tracking SVT every
// TrackEvery columns, authoritative warm resolve every ResolveEvery.
func (s *StreamingSolver) AppendColumn(col []float64) error {
	if len(col) != s.rows {
		return fmt.Errorf("rpca: column length %d, want %d", len(col), s.rows)
	}
	if err := cancel.Check(s.opts.Ctx, "rpca.Stream", s.ncols, s.ncols+1); err != nil {
		return err
	}
	if err := checkFiniteSlice(col); err != nil {
		return err
	}
	s.ingest(col)

	if s.opts.ResolveEvery > 0 && s.sinceResolve >= s.opts.ResolveEvery {
		_, err := s.Resolve()
		return err
	}
	if s.opts.TrackEvery > 0 {
		s.sinceTrack++
		if s.sinceTrack >= s.opts.TrackEvery {
			s.track()
		}
	}
	return nil
}

// ReplaceColumn overwrites a previously ingested column (a re-measured
// pair) and refreshes its fast-tier constant estimate.
func (s *StreamingSolver) ReplaceColumn(j int, col []float64) error {
	if j < 0 || j >= s.ncols {
		return fmt.Errorf("rpca: replace column %d of %d", j, s.ncols)
	}
	if len(col) != s.rows {
		return fmt.Errorf("rpca: column length %d, want %d", len(col), s.rows)
	}
	if err := checkFiniteSlice(col); err != nil {
		return err
	}
	copy(s.colData[j*s.rows:(j+1)*s.rows], col)
	s.constant[j] = s.fastEstimate(col)
	s.dirty = true
	s.stats.Replaced++
	return nil
}

// fastEstimate splits col against the tracked subspace and extracts the
// column's constant value from the low-rank part. With no warm subspace
// yet (cold start, or the matrix is still square-ish) the raw column is
// used — the first resolve replaces these provisional values.
func (s *StreamingSolver) fastEstimate(col []float64) float64 {
	r := s.rows
	u, ur, k, _ := s.solver.svt.WarmSubspace()
	d := col
	if u != nil && ur == r {
		if cap(s.projBuf) < k {
			s.projBuf = make([]float64, k)
		}
		w := s.projBuf[:k]
		for l := range w {
			w[l] = 0
		}
		for i := 0; i < r; i++ {
			ai := col[i]
			urow := u[i*k : (i+1)*k]
			for l, ul := range urow {
				w[l] += ul * ai
			}
		}
		if cap(s.colBuf) < r {
			s.colBuf = make([]float64, r)
		}
		dhat := s.colBuf[:r]
		for i := 0; i < r; i++ {
			var v float64
			urow := u[i*k : (i+1)*k]
			for l, ul := range urow {
				v += ul * w[l]
			}
			dhat[i] = v
		}
		d = dhat
	}
	return extractValue(d, s.opts.Extract, &s.sortBuf)
}

// track refreshes the warm subspace with a single SVT over the matrix so
// far at the rank-revealing threshold remembered from the last resolve.
// Only the workspace's warm state is wanted; the thresholded output is
// discarded.
func (s *StreamingSolver) track() {
	s.sinceTrack = 0
	if s.trackTau <= 0 {
		return // no resolve yet — nothing rank-revealing to track against
	}
	a := s.matrixView()
	r, c := a.Dims()
	if cap(s.aout) < r*c {
		s.aout = make([]float64, r*c)
	}
	out := mat.NewDenseData(r, c, s.aout[:r*c])
	s.solver.svt.SVTInto(out, a, s.trackTau)
	s.stats.Tracked++
}

// Resolve runs the authoritative warm-started IALM over the matrix so far
// — the cheap partial re-solve a regime change triggers. The schedule,
// initialization and stopping rule are identical to the batch solver's;
// the warm subspace only changes which SVT route serves each D-step, so
// the result tracks the cold batch answer to the subspace-iteration
// tolerance (and is byte-identical whenever the truncated route does not
// engage). The constant row is re-extracted for every column.
func (s *StreamingSolver) Resolve() (*Result, error) {
	if s.ncols == 0 {
		return nil, errors.New("rpca: streaming resolve with no columns")
	}
	a := s.matrixView()
	res, err := s.solver.DecomposeIALM(a, s.opts.IALM)
	if err != nil {
		return nil, err
	}
	s.last = res
	s.dirty = false
	s.sinceResolve = 0
	s.sinceTrack = 0
	s.stats.Resolves++
	s.constantOld = append(s.constantOld[:0], s.constant...)
	s.constant = append(s.constant[:0], ConstantRow(res.D, s.opts.Extract)...)
	s.trackTau = trackThreshold(res.D, res.RankD)
	return res, nil
}

// Verify is the differential oracle: run the batch IALM cold (fresh
// solver, no warm state) on the accumulated matrix and compare it with the
// streaming solver's authoritative state, resolving first if columns
// arrived since the last resolve. The same-schedule guarantee means any
// disagreement beyond the truncated-SVT tolerance is a bug.
func (s *StreamingSolver) Verify() (StreamAgreement, error) {
	var ag StreamAgreement
	if s.last == nil || s.dirty {
		if _, err := s.Resolve(); err != nil {
			return ag, err
		}
	}
	batch, err := NewSolver().DecomposeIALM(s.matrixView(), s.opts.IALM)
	if err != nil {
		return ag, err
	}
	ag.RelFroD = mat.NormFroDiff(s.last.D, batch.D) / math.Max(1, batch.D.NormFrobenius())
	ag.RelFroE = mat.NormFroDiff(s.last.E, batch.E) / math.Max(1, batch.E.NormFrobenius())
	ag.ConstantRel = RelDiff(s.constant, ConstantRow(batch.D, s.opts.Extract))
	ag.StreamIters = s.last.Iterations
	ag.BatchIters = batch.Iterations
	return ag, nil
}

// RelNormE returns the paper's effectiveness metric over the accumulated
// matrix against the current constant row: ‖A − N_D‖₁ / ‖A‖₁, where N_D
// replicates the constant row. Cheap (one pass) and usable between
// resolves, since the constant row is maintained per column.
func (s *StreamingSolver) RelNormE() float64 {
	var num, den float64
	r := s.rows
	for j := 0; j < s.ncols; j++ {
		p := s.constant[j]
		col := s.colData[j*r : (j+1)*r]
		for _, v := range col {
			num += math.Abs(v - p)
			den += math.Abs(v)
		}
	}
	if den == 0 {
		return 0
	}
	v := num / den
	if v > 1 {
		v = 1
	}
	return v
}

// trackThreshold picks the subspace-tracking SVT threshold from a resolved
// low-rank component: half its smallest kept singular value, which keeps
// the tracked block at the resolved rank while rejecting residual noise
// directions. Returns 0 (tracking disabled) for a rank-0 component.
func trackThreshold(d *mat.Dense, rank int) float64 {
	if rank <= 0 {
		return 0
	}
	r, c := d.Dims()
	if r > c {
		// Track in the fat orientation the workspace uses.
		rank = min(rank, c)
	}
	vals, _ := mat.EigSym(d.Gram())
	if rank > len(vals) {
		rank = len(vals)
	}
	lam := vals[rank-1]
	if lam <= 0 {
		return 0
	}
	return 0.5 * math.Sqrt(lam)
}

// extractValue reduces a cleaned column to its constant estimate using the
// requested method. ExtractRank1 has no meaningful per-column analogue, so
// it falls back to the mean; resolves still honour it for the full row.
func extractValue(col []float64, method ExtractMethod, scratch *[]float64) float64 {
	n := len(col)
	if n == 0 {
		return 0
	}
	switch method {
	case ExtractMedian:
		if cap(*scratch) < n {
			*scratch = make([]float64, n)
		}
		tmp := (*scratch)[:n]
		copy(tmp, col)
		return median(tmp)
	default:
		var s float64
		for _, v := range col {
			s += v
		}
		return s / float64(n)
	}
}

// median sorts tmp in place and returns its median.
func median(tmp []float64) float64 {
	insertionSort(tmp)
	n := len(tmp)
	if n%2 == 1 {
		return tmp[n/2]
	}
	return 0.5 * (tmp[n/2-1] + tmp[n/2])
}

// insertionSort keeps the per-column extraction allocation-free; columns
// are short (tens of time steps), where insertion sort beats sort.Float64s.
func insertionSort(x []float64) {
	for i := 1; i < len(x); i++ {
		v := x[i]
		j := i - 1
		for j >= 0 && x[j] > v {
			x[j+1] = x[j]
			j--
		}
		x[j+1] = v
	}
}

// checkFiniteSlice rejects NaN/Inf measurement values with the package's
// typed non-finite error.
func checkFiniteSlice(col []float64) error {
	for i, v := range col {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("rpca: column entry %d is %v: %w", i, v, ErrNonFinite)
		}
	}
	return nil
}
