package rpca

import (
	"math"
	"math/rand"
	"testing"

	"netconstant/internal/mat"
)

// syntheticTP builds a fat temporal-performance-style matrix: a low-rank
// constant component plus sparse spikes, the workload the solvers target.
func syntheticTP(rng *rand.Rand, r, c, rank int, spikeFrac float64) *mat.Dense {
	u := mat.RandomNormal(rng, r, rank, 0, 1)
	v := mat.RandomNormal(rng, c, rank, 0, 1)
	a := mat.NewDense(r, c)
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			var s float64
			for l := 0; l < rank; l++ {
				s += u.At(i, l) * v.At(j, l)
			}
			a.Set(i, j, 10+s)
		}
	}
	n := int(spikeFrac * float64(r*c))
	for k := 0; k < n; k++ {
		a.Set(rng.Intn(r), rng.Intn(c), 10+20*rng.NormFloat64())
	}
	return a
}

// TestSolverMatchesPackageFunctions pins the arena solver to the
// package-level entry points (which are themselves arena-backed now, so
// this is a reuse-vs-fresh consistency check: a recycled Solver must give
// the same answers as a throwaway one).
func TestSolverMatchesPackageFunctions(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	s := NewSolver()
	for trial := 0; trial < 3; trial++ {
		a := syntheticTP(rng, 24, 256, 3, 0.05)

		fresh, err := Decompose(a, Options{MaxIter: 120})
		if err != nil {
			t.Fatal(err)
		}
		reused, err := s.Decompose(a, Options{MaxIter: 120})
		if err != nil {
			t.Fatal(err)
		}
		if fresh.Iterations != reused.Iterations || fresh.RankD != reused.RankD {
			t.Fatalf("trial %d: fresh (it=%d rank=%d) vs reused (it=%d rank=%d)",
				trial, fresh.Iterations, fresh.RankD, reused.Iterations, reused.RankD)
		}
		if d := mat.NormFroDiff(fresh.D, reused.D); d != 0 {
			t.Fatalf("trial %d: reused solver D deviates by %g", trial, d)
		}

		freshI, err := DecomposeIALM(a, IALMOptions{MaxIter: 120})
		if err != nil {
			t.Fatal(err)
		}
		reusedI, err := s.DecomposeIALM(a, IALMOptions{MaxIter: 120})
		if err != nil {
			t.Fatal(err)
		}
		if freshI.Iterations != reusedI.Iterations ||
			mat.NormFroDiff(freshI.D, reusedI.D) != 0 {
			t.Fatalf("trial %d: reused IALM deviates from fresh", trial)
		}
	}
}

// TestSolverResultsDetached checks the returned matrices are copies, not
// arena aliases: a later solve must not mutate an earlier result.
func TestSolverResultsDetached(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	s := NewSolver()
	a1 := syntheticTP(rng, 16, 128, 2, 0.05)
	a2 := syntheticTP(rng, 16, 128, 2, 0.05)
	r1, err := s.DecomposeIALM(a1, IALMOptions{MaxIter: 80})
	if err != nil {
		t.Fatal(err)
	}
	d1 := r1.D.Clone()
	if _, err := s.DecomposeIALM(a2, IALMOptions{MaxIter: 80}); err != nil {
		t.Fatal(err)
	}
	if mat.NormFroDiff(r1.D, d1) != 0 {
		t.Fatal("second solve mutated the first result: arena leaked into Result")
	}
}

// TestAPGStepAllocationFree is the headline regression for the arena
// rewrite: once the solver is bound and past the cold SVT, each APG
// iteration must perform zero heap allocations (sequential path;
// parallelism is forced to 1 because pool dispatch allocates task chunks).
func TestAPGStepAllocationFree(t *testing.T) {
	defer mat.SetParallelism(mat.SetParallelism(1))
	rng := rand.New(rand.NewSource(7))
	a := syntheticTP(rng, 48, 512, 3, 0.05)

	s := NewSolver()
	if _, err := s.Decompose(a, Options{MaxIter: 4}); err != nil {
		t.Fatal(err)
	}
	// Re-enter the iteration state by hand and warm it up.
	it := apgIter{s: s, a: a, lambda: 1 / math.Sqrt(512), mu: 0.5 * a.NormSpectral(),
		muBar: 1e-9, eta: 0.9, t: 1, tPrev: 1}
	for k := 0; k < 10; k++ {
		it.step()
	}
	if allocs := testing.AllocsPerRun(20, func() { it.step() }); allocs != 0 {
		t.Fatalf("APG step allocates %.1f objects/iteration, want 0", allocs)
	}
}

// TestIALMStepAllocationFree: same guarantee for the IALM iteration,
// masked variant included.
func TestIALMStepAllocationFree(t *testing.T) {
	defer mat.SetParallelism(mat.SetParallelism(1))
	rng := rand.New(rand.NewSource(8))
	a := syntheticTP(rng, 48, 512, 3, 0.05)

	s := NewSolver()
	if _, err := s.DecomposeIALM(a, IALMOptions{MaxIter: 4}); err != nil {
		t.Fatal(err)
	}
	it := ialmIter{s: s, a: a, lambda: 1 / math.Sqrt(512), mu: 0.1, muBar: 1e6, rho: 1.05}
	for k := 0; k < 10; k++ {
		it.step()
	}
	if allocs := testing.AllocsPerRun(20, func() { it.step() }); allocs != 0 {
		t.Fatalf("IALM step allocates %.1f objects/iteration, want 0", allocs)
	}

	// Masked: mark ~10% of entries unobserved, rebuild the fill, re-warm.
	mask := mat.NewDense(48, 512)
	md := mask.Data()
	for i := range md {
		if rng.Float64() < 0.9 {
			md[i] = 1
		}
	}
	if _, err := s.DecomposeMasked(a, mask, IALMOptions{MaxIter: 4}); err != nil {
		t.Fatal(err)
	}
	itm := ialmIter{s: s, a: s.fill, lambda: 1 / math.Sqrt(512), mu: 0.1, muBar: 1e6,
		rho: 1.05, masked: true}
	for k := 0; k < 10; k++ {
		itm.step()
	}
	if allocs := testing.AllocsPerRun(20, func() { itm.step() }); allocs != 0 {
		t.Fatalf("masked IALM step allocates %.1f objects/iteration, want 0", allocs)
	}
}

// TestSolverMaskedMatchesPackage: reused solver on the masked route agrees
// with the package function and keeps interpolating gaps.
func TestSolverMaskedMatchesPackage(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	a := syntheticTP(rng, 20, 160, 2, 0.03)
	mask := mat.NewDense(20, 160)
	md := mask.Data()
	for i := range md {
		if rng.Float64() < 0.85 {
			md[i] = 1
		}
	}
	fresh, err := DecomposeMasked(a, mask, IALMOptions{MaxIter: 150})
	if err != nil {
		t.Fatal(err)
	}
	s := NewSolver()
	// Prior unrelated solve: the arena must be fully re-initialized.
	if _, err := s.Decompose(syntheticTP(rng, 20, 160, 4, 0.1), Options{MaxIter: 30}); err != nil {
		t.Fatal(err)
	}
	reused, err := s.DecomposeMasked(a, mask, IALMOptions{MaxIter: 150})
	if err != nil {
		t.Fatal(err)
	}
	if fresh.Iterations != reused.Iterations || mat.NormFroDiff(fresh.D, reused.D) != 0 {
		t.Fatalf("masked reuse deviates: it %d vs %d, |ΔD| = %g",
			fresh.Iterations, reused.Iterations, mat.NormFroDiff(fresh.D, reused.D))
	}
}
