package rpca

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"testing"

	"netconstant/internal/cancel"
	"netconstant/internal/mat"
)

// streamTrace builds a synthetic TP-matrix and returns it split as a seed
// prefix plus the remaining columns in arrival order — the streaming
// workload: every column shares the same planted constant subspace, with
// sparse spikes.
func streamTrace(seed int64, r, c, rank int, spikeFrac float64) (*mat.Dense, [][]float64) {
	rng := rand.New(rand.NewSource(seed))
	a := syntheticTP(rng, r, c, rank, spikeFrac)
	seedCols := c / 2
	pre := mat.NewDense(r, seedCols)
	for i := 0; i < r; i++ {
		copy(pre.Row(i), a.Row(i)[:seedCols])
	}
	var rest [][]float64
	for j := seedCols; j < c; j++ {
		col := make([]float64, r)
		for i := 0; i < r; i++ {
			col[i] = a.At(i, j)
		}
		rest = append(rest, col)
	}
	return pre, rest
}

// TestStreamingAgreesWithBatch is the differential-oracle acceptance test:
// after seeding, appending the rest of a 196-pair trace column-by-column
// and resolving, the streaming state must agree with a cold batch IALM on
// the identical matrix within 1e-10 relative error — with rows ≥ 16 so the
// warm truncated SVT route actually serves the resolves.
func TestStreamingAgreesWithBatch(t *testing.T) {
	seedM, rest := streamTrace(7, 24, 196, 3, 0.05)
	s, err := NewStreamingSolver(24, StreamOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Seed(seedM); err != nil {
		t.Fatal(err)
	}
	for _, col := range rest {
		if err := s.AppendColumn(col); err != nil {
			t.Fatal(err)
		}
	}
	ag, err := s.Verify()
	if err != nil {
		t.Fatal(err)
	}
	if ag.RelFroD > 1e-10 || ag.RelFroE > 1e-10 {
		t.Fatalf("streaming vs batch disagreement: D %.3e, E %.3e (want <= 1e-10)", ag.RelFroD, ag.RelFroE)
	}
	if ag.ConstantRel > 1e-10 {
		t.Fatalf("constant-row disagreement %.3e (want <= 1e-10)", ag.ConstantRel)
	}
	st := s.Stats()
	if st.TruncSVDs == 0 {
		t.Fatal("warm truncated SVT route never engaged — streaming ran cold")
	}
	if st.Columns != 196 {
		t.Fatalf("columns = %d, want 196", st.Columns)
	}
}

// TestStreamingByteIdenticalWhenTruncatedDisabled pins the strongest form
// of agreement: with rows below the truncated-SVT gate the warm subspace
// cannot change any route decision, so the streaming resolve and the cold
// batch solve must be byte-identical.
func TestStreamingByteIdenticalWhenTruncatedDisabled(t *testing.T) {
	seedM, rest := streamTrace(11, 10, 64, 2, 0.05)
	s, err := NewStreamingSolver(10, StreamOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Seed(seedM); err != nil {
		t.Fatal(err)
	}
	for _, col := range rest {
		if err := s.AppendColumn(col); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.Resolve(); err != nil {
		t.Fatal(err)
	}
	batch, err := NewSolver().DecomposeIALM(s.Matrix(), IALMOptions{})
	if err != nil {
		t.Fatal(err)
	}
	sd, bd := s.LastResult().D.Data(), batch.D.Data()
	for i := range sd {
		if math.Float64bits(sd[i]) != math.Float64bits(bd[i]) {
			t.Fatalf("D[%d] differs bitwise: %v vs %v", i, sd[i], bd[i])
		}
	}
}

// TestStreamingDeterminism: two identical streaming runs must produce
// bit-identical constants, agreement numbers and counters.
func TestStreamingDeterminism(t *testing.T) {
	run := func() ([]float64, StreamStats) {
		seedM, rest := streamTrace(13, 24, 128, 3, 0.05)
		s, err := NewStreamingSolver(24, StreamOptions{ResolveEvery: 24})
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Seed(seedM); err != nil {
			t.Fatal(err)
		}
		for _, col := range rest {
			if err := s.AppendColumn(col); err != nil {
				t.Fatal(err)
			}
		}
		return s.Constant(), s.Stats()
	}
	c1, st1 := run()
	c2, st2 := run()
	if st1 != st2 {
		t.Fatalf("stats diverged: %+v vs %+v", st1, st2)
	}
	for j := range c1 {
		if math.Float64bits(c1[j]) != math.Float64bits(c2[j]) {
			t.Fatalf("constant[%d] differs bitwise across identical runs", j)
		}
	}
}

// TestStreamingFastTierTracksConstant: between resolves the projection
// estimates for fresh columns must already sit near the planted constant
// (the raw column medians would too, but the projection must not be worse).
func TestStreamingFastTierTracksConstant(t *testing.T) {
	seedM, rest := streamTrace(17, 24, 196, 1, 0.03)
	s, err := NewStreamingSolver(24, StreamOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Seed(seedM); err != nil {
		t.Fatal(err)
	}
	for _, col := range rest {
		if err := s.AppendColumn(col); err != nil {
			t.Fatal(err)
		}
	}
	// No resolve since seeding: columns past the seed width carry
	// fast-tier estimates. Batch-decompose the full matrix as the oracle.
	batch, err := NewSolver().DecomposeIALM(s.Matrix(), IALMOptions{})
	if err != nil {
		t.Fatal(err)
	}
	oracle := ConstantRow(batch.D, ExtractMedian)
	got := s.Constant()
	tail := RelDiff(got[98:], oracle[98:])
	if tail > 0.05 {
		t.Fatalf("fast-tier constant estimates off by %.3f relative (want <= 0.05)", tail)
	}
	if rel := s.RelNormE(); rel < 0 || rel > 1 {
		t.Fatalf("RelNormE out of range: %v", rel)
	}
}

// TestStreamingResolveCadence: ResolveEvery must trigger authoritative
// resolves at the configured cadence.
func TestStreamingResolveCadence(t *testing.T) {
	seedM, rest := streamTrace(19, 12, 64, 2, 0.05)
	s, err := NewStreamingSolver(12, StreamOptions{ResolveEvery: 8})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Seed(seedM); err != nil {
		t.Fatal(err)
	}
	for _, col := range rest {
		if err := s.AppendColumn(col); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	want := 1 + len(rest)/8 // seed resolve + one per 8 appended columns
	if st.Resolves != want {
		t.Fatalf("resolves = %d, want %d", st.Resolves, want)
	}
}

// TestStreamingReplaceColumn: a re-measured pair must refresh both the
// stored column and its constant estimate.
func TestStreamingReplaceColumn(t *testing.T) {
	seedM, _ := streamTrace(23, 12, 64, 2, 0)
	s, err := NewStreamingSolver(12, StreamOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Seed(seedM); err != nil {
		t.Fatal(err)
	}
	col := make([]float64, 12)
	for i := range col {
		col[i] = 42
	}
	if err := s.ReplaceColumn(3, col); err != nil {
		t.Fatal(err)
	}
	if got := s.Constant()[3]; math.Abs(got-42) > 1 {
		t.Fatalf("replaced column constant = %v, want ~42", got)
	}
	if err := s.ReplaceColumn(99, col); err == nil {
		t.Fatal("out-of-range replace did not error")
	}
	if err := s.ReplaceColumn(0, col[:5]); err == nil {
		t.Fatal("short column did not error")
	}
}

// TestStreamingCancellation: a cancelled context must abort appends and
// seeding with the typed cancellation error.
func TestStreamingCancellation(t *testing.T) {
	ctx, cancelFn := context.WithCancel(context.Background())
	cancelFn()
	s, err := NewStreamingSolver(12, StreamOptions{Ctx: ctx})
	if err != nil {
		t.Fatal(err)
	}
	col := make([]float64, 12)
	if err := s.AppendColumn(col); !errors.Is(err, cancel.ErrCanceled) {
		t.Fatalf("AppendColumn err = %v, want cancellation", err)
	}
	seedM, _ := streamTrace(29, 12, 32, 2, 0)
	if err := s.Seed(seedM); !errors.Is(err, cancel.ErrCanceled) {
		t.Fatalf("Seed err = %v, want cancellation", err)
	}
	if s.Columns() != 0 {
		t.Fatalf("cancelled appends still ingested %d columns", s.Columns())
	}
}

// TestStreamingRejectsBadInput: NaN/Inf measurement columns and shape
// mismatches must be rejected before touching state.
func TestStreamingRejectsBadInput(t *testing.T) {
	s, err := NewStreamingSolver(8, StreamOptions{})
	if err != nil {
		t.Fatal(err)
	}
	bad := make([]float64, 8)
	bad[3] = math.NaN()
	if err := s.AppendColumn(bad); !errors.Is(err, ErrNonFinite) {
		t.Fatalf("NaN column err = %v, want ErrNonFinite", err)
	}
	if err := s.AppendColumn(make([]float64, 5)); err == nil {
		t.Fatal("short column did not error")
	}
	if s.Columns() != 0 {
		t.Fatal("rejected columns were ingested")
	}
	if _, err := s.Resolve(); err == nil {
		t.Fatal("empty resolve did not error")
	}
	if _, err := NewStreamingSolver(0, StreamOptions{}); err == nil {
		t.Fatal("rows=0 did not error")
	}
}
