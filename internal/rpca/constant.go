package rpca

import (
	"math"
	"sort"

	"netconstant/internal/mat"
)

// The paper constrains the temporal constant matrix N_D to rank one with
// all rows identical (§III): every row is the same estimated pair-wise
// performance vector P_D. APG RPCA returns a general low-rank D, so a final
// projection onto the "all rows equal" set is needed. This file provides
// the extraction strategies ablated in DESIGN.md.

// ExtractMethod selects how the constant row is obtained from D.
type ExtractMethod int

const (
	// ExtractMedian (the default) uses the per-column median, robust to
	// residual spikes that leaked into D.
	ExtractMedian ExtractMethod = iota
	// ExtractMean projects D onto the all-rows-equal set by per-column
	// arithmetic mean — the Frobenius-optimal projection.
	ExtractMean
	// ExtractRank1 truncates D to its best rank-1 approximation σ·u·vᵀ and
	// returns mean(σ·u)·v, honouring the paper's rank(N_D)=1 formulation.
	ExtractRank1
)

// ConstantRow extracts the constant performance row P_D from a low-rank
// component D using the requested method.
func ConstantRow(d *mat.Dense, method ExtractMethod) []float64 {
	r, c := d.Dims()
	if r == 0 || c == 0 {
		return make([]float64, c)
	}
	switch method {
	case ExtractMedian:
		out := make([]float64, c)
		col := make([]float64, r)
		for j := 0; j < c; j++ {
			for i := 0; i < r; i++ {
				col[i] = d.At(i, j)
			}
			sort.Float64s(col)
			if r%2 == 1 {
				out[j] = col[r/2]
			} else {
				out[j] = 0.5 * (col[r/2-1] + col[r/2])
			}
		}
		return out
	case ExtractRank1:
		sigma, u, v := d.Rank1()
		var uMean float64
		for _, x := range u {
			uMean += x
		}
		uMean /= float64(len(u))
		out := make([]float64, c)
		for j := range out {
			out[j] = sigma * uMean * v[j]
		}
		return out
	default: // ExtractMean
		out := make([]float64, c)
		for i := 0; i < r; i++ {
			row := d.Row(i)
			for j, v := range row {
				out[j] += v
			}
		}
		inv := 1 / float64(r)
		for j := range out {
			out[j] *= inv
		}
		return out
	}
}

// ConstantMatrix replicates row p into an n-row matrix — the TC-matrix
// N_D of the paper, whose rank is one by construction.
func ConstantMatrix(p []float64, n int) *mat.Dense {
	m := mat.NewDense(n, len(p))
	for i := 0; i < n; i++ {
		copy(m.Row(i), p)
	}
	return m
}

// Norm selects the matrix norm used by the effectiveness metric.
type Norm int

const (
	// NormL1 is the entrywise L1 norm — the convex surrogate actually
	// minimized by the solver, and the default for Norm(N_E).
	NormL1 Norm = iota
	// NormL0 counts entries above a relative magnitude threshold,
	// matching the paper's ‖·‖₀ notation.
	NormL0
	// NormFro is the Frobenius norm.
	NormFro
)

// RelNorm computes the paper's effectiveness metric
// Norm(N_E) = ‖N_E‖ / ‖N_A‖, clamped to [0, 1]. For NormL0 the threshold
// is eps·max|A|; pass eps <= 0 for the default 1e-3.
func RelNorm(e, a *mat.Dense, norm Norm, eps float64) float64 {
	var num, den float64
	switch norm {
	case NormL0:
		if eps <= 0 {
			eps = 1e-3
		}
		thresh := eps * a.NormMax()
		num = e.NormL0(thresh)
		den = a.NormL0(thresh)
	case NormFro:
		num = e.NormFrobenius()
		den = a.NormFrobenius()
	default:
		num = e.NormL1()
		den = a.NormL1()
	}
	if den == 0 {
		return 0
	}
	v := num / den
	if v > 1 {
		v = 1
	}
	if v < 0 {
		v = 0
	}
	return v
}

// RelDiff is the relative difference metric of paper §V-C (Fig 5):
// Norm(P_D) = ‖P_D − P'_D‖ / ‖P'_D‖ for a predicted constant row P_D
// against the oracle row P'_D, using the L1 norm.
func RelDiff(predicted, oracle []float64) float64 {
	if len(predicted) != len(oracle) {
		panic("rpca: RelDiff length mismatch")
	}
	var num, den float64
	for i := range oracle {
		num += math.Abs(predicted[i] - oracle[i])
		den += math.Abs(oracle[i])
	}
	if den == 0 {
		if num == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return num / den
}
