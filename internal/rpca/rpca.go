// Package rpca implements Robust Principal Component Analysis by the
// Accelerated Proximal Gradient (APG) method with continuation — the
// algorithm family the paper adopts from Ji & Ye (its released sample code
// is the "RPCA via APG" implementation the paper cites in [35]).
//
// RPCA decomposes a data matrix A into a low-rank component D and a sparse
// component E by solving the convex relaxation
//
//	minimize   ‖D‖* + λ‖E‖₁   subject to   A = D + E
//
// which APG attacks through the sequence of smooth subproblems
//
//	minimize   μ‖D‖* + μλ‖E‖₁ + ½‖A − D − E‖F²
//
// with μ decreased geometrically (continuation) and Nesterov momentum on
// the (D, E) pair. Each iteration applies singular value thresholding to
// the low-rank block and soft thresholding to the sparse block.
//
// In this repository A is a temporal performance matrix (one row per
// all-link calibration of a virtual cluster), D captures the constant
// component of the network performance, and E the dynamic error (paper
// §III–IV).
package rpca

import (
	"context"
	"errors"
	"math"

	"netconstant/internal/cancel"
	"netconstant/internal/mat"
)

// Options configures the APG solver. The zero value selects the standard
// parameters from the literature: λ = 1/√max(r,c), μ₀ = 0.99‖A‖₂,
// μ̄ = 10⁻⁹μ₀, η = 0.9, tol = 10⁻⁷, 500 iterations max.
type Options struct {
	Lambda  float64 // sparsity weight; 0 selects 1/sqrt(max dim)
	Mu0     float64 // initial continuation parameter; 0 selects 0.99·‖A‖₂
	MuBar   float64 // final continuation parameter; 0 selects 1e-9·μ₀
	Eta     float64 // continuation decay in (0,1); 0 selects 0.9
	Tol     float64 // relative convergence tolerance; 0 selects 1e-7
	MaxIter int     // iteration cap; 0 selects 500
	// Ctx, when non-nil, is checked once per iteration: a cancelled
	// context aborts the solve with a *cancel.Error (matching
	// cancel.ErrCanceled) carrying the iteration count reached. Nil
	// means "never cancel" — the zero value keeps its old meaning.
	Ctx context.Context
}

// Result is an RPCA decomposition A = D + E.
type Result struct {
	D          *mat.Dense // low-rank (constant) component
	E          *mat.Dense // sparse (error) component
	Iterations int
	Converged  bool
	RankD      int // numerical rank of D after the final SVT
}

// Decompose runs APG RPCA on a. The input is not modified. Inputs with
// NaN/Inf entries are rejected with an error unwrapping to ErrNonFinite.
//
// Each call builds a throwaway Solver; callers decomposing many
// same-shaped matrices should hold a Solver and call its Decompose to
// reuse the iteration arena and the warm-started SVT workspace.
func Decompose(a *mat.Dense, opts Options) (*Result, error) {
	return NewSolver().Decompose(a, opts)
}

// DecomposeFullSVT is the reference APG implementation kept for ablation
// benchmarking (cmd/rpcabench) and cross-checking: it allocates every
// intermediate per iteration and computes a full SVD per SVT, exactly as
// the solver did before the arena/truncated-SVT rewrite. Production code
// should use Decompose or a Solver.
func DecomposeFullSVT(a *mat.Dense, opts Options) (*Result, error) {
	r, c := a.Dims()
	if r == 0 || c == 0 {
		return nil, errors.New("rpca: empty matrix")
	}
	if err := checkFinite(a); err != nil {
		return nil, err
	}
	lambda := opts.Lambda
	if lambda <= 0 {
		lambda = 1 / math.Sqrt(float64(max(r, c)))
	}
	mu := opts.Mu0
	if mu <= 0 {
		mu = 0.99 * a.NormSpectral()
		if mu == 0 {
			return &Result{D: mat.NewDense(r, c), E: mat.NewDense(r, c), Converged: true}, nil
		}
	}
	muBar := opts.MuBar
	if muBar <= 0 {
		muBar = 1e-9 * mu
	}
	eta := opts.Eta
	if eta <= 0 || eta >= 1 {
		eta = 0.9
	}
	tol := opts.Tol
	if tol <= 0 {
		tol = 1e-7
	}
	maxIter := opts.MaxIter
	if maxIter <= 0 {
		maxIter = 500
	}

	normA := a.NormFrobenius()
	d := mat.NewDense(r, c)
	e := mat.NewDense(r, c)
	dPrev := mat.NewDense(r, c)
	ePrev := mat.NewDense(r, c)
	t, tPrev := 1.0, 1.0

	res := &Result{}
	for k := 0; k < maxIter; k++ {
		if err := cancel.Check(opts.Ctx, "rpca.DecomposeFullSVT", k, maxIter); err != nil {
			return nil, err
		}
		// Momentum extrapolation Y = X_k + ((t_{k-1}-1)/t_k)(X_k - X_{k-1}).
		beta := (tPrev - 1) / t
		yd := momentum(d, dPrev, beta)
		ye := momentum(e, ePrev, beta)

		// Gradient of ½‖A − D − E‖F² w.r.t. (D, E) is (D+E−A, D+E−A);
		// with Lipschitz constant 2 the step is −½·grad.
		g := yd.Add(ye)
		g.SubInPlace(a) // g = Y_D + Y_E − A

		gd := yd.Sub(g.Scale(0.5))
		dNext, rank := gd.SVT(mu / 2)

		ge := ye.Sub(g.Scale(0.5))
		eNext := ge.SoftThreshold(lambda * mu / 2)

		// Convergence: relative change of the iterate pair.
		num := dNext.Sub(d).NormFrobenius() + eNext.Sub(e).NormFrobenius()
		den := math.Max(1, normA)

		dPrev, d = d, dNext
		ePrev, e = e, eNext
		tPrev, t = t, (1+math.Sqrt(1+4*t*t))/2
		//netlint:allow floatsafe mu and eta are solver constants and muBar derives from norms of the entry-validated (NaN/Inf-rejected) input
		mu = math.Max(eta*mu, muBar)

		res.Iterations = k + 1
		res.RankD = rank
		if num/den < tol {
			res.Converged = true
			break
		}
	}
	res.D = d
	res.E = e
	return res, nil
}

func momentum(cur, prev *mat.Dense, beta float64) *mat.Dense {
	if beta == 0 {
		return cur.Clone()
	}
	out := cur.Sub(prev)
	out.ScaleInPlace(beta)
	out.AddInPlace(cur)
	return out
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
