package rpca

import (
	"errors"
	"math"
	"testing"

	"netconstant/internal/mat"
	"netconstant/internal/stats"
)

// rank1Spiky builds A = row-constant rank-1 matrix + sparse spikes, the
// TP-matrix shape the pipeline feeds the solvers.
func rank1Spiky(r, c int, seed int64, spikeProb float64) (a, truth *mat.Dense) {
	rng := stats.NewRNG(seed)
	row := make([]float64, c)
	for j := range row {
		row[j] = 1 + 9*rng.Float64()
	}
	truth = mat.NewDense(r, c)
	a = mat.NewDense(r, c)
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			truth.Set(i, j, row[j])
			v := row[j]
			if rng.Float64() < spikeProb {
				v *= 1 + 3*rng.Float64()
			}
			a.Set(i, j, v)
		}
	}
	return a, truth
}

func TestDecomposeRejectsNonFinite(t *testing.T) {
	for name, v := range map[string]float64{"nan": math.NaN(), "inf": math.Inf(1), "-inf": math.Inf(-1)} {
		a := mat.NewDense(3, 4)
		a.Set(1, 2, v)
		if _, err := Decompose(a, Options{}); !errors.Is(err, ErrNonFinite) {
			t.Errorf("%s: Decompose err = %v, want ErrNonFinite", name, err)
		}
		if _, err := DecomposeIALM(a, IALMOptions{}); !errors.Is(err, ErrNonFinite) {
			t.Errorf("%s: DecomposeIALM err = %v, want ErrNonFinite", name, err)
		}
		mask := mat.NewDense(3, 4)
		mask.Apply(func(int, int, float64) float64 { return 1 })
		if _, err := DecomposeMasked(a, mask, IALMOptions{}); !errors.Is(err, ErrNonFinite) {
			t.Errorf("%s: DecomposeMasked err = %v, want ErrNonFinite", name, err)
		}
		var nfe *NonFiniteError
		_, err := Decompose(a, Options{})
		if !errors.As(err, &nfe) || nfe.Row != 1 || nfe.Col != 2 {
			t.Errorf("%s: position %+v", name, nfe)
		}
	}
}

func TestDecomposeMaskedRecoversThroughGaps(t *testing.T) {
	a, truth := rank1Spiky(10, 36, 7, 0.1)
	rng := stats.NewRNG(8)
	mask := mat.NewDense(10, 36)
	hidden := 0
	mask.Apply(func(i, j int, _ float64) float64 {
		if rng.Float64() < 0.2 {
			hidden++
			return 0
		}
		return 1
	})
	if hidden == 0 {
		t.Fatal("no cells hidden")
	}
	// Zero-fill the hidden cells — what a calibration with missing probes
	// actually hands over.
	holed := a.Clone()
	holed.Apply(func(i, j int, v float64) float64 {
		if mask.At(i, j) < 0.5 {
			return 0
		}
		return v
	})

	res, err := DecomposeMasked(holed, mask, IALMOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Error("masked solver did not converge")
	}
	maskedErr := relErrVs(res.D, truth)

	// The unmasked solver on the zero-filled matrix must be clearly worse:
	// every hole is an extreme negative outlier it has to absorb.
	plain, err := DecomposeIALM(holed, IALMOptions{})
	if err != nil {
		t.Fatal(err)
	}
	plainErr := relErrVs(plain.D, truth)
	if maskedErr > 0.10 {
		t.Errorf("masked recovery error %.4f too large", maskedErr)
	}
	if maskedErr >= plainErr {
		t.Errorf("masked error %.4f should beat zero-filled unmasked %.4f", maskedErr, plainErr)
	}
}

func TestDecomposeMaskedEdgeCases(t *testing.T) {
	a, _ := rank1Spiky(4, 9, 3, 0)
	// Nil mask delegates to IALM.
	r1, err := DecomposeMasked(a, nil, IALMOptions{})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := DecomposeIALM(a, IALMOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !r1.D.ApproxEqual(r2.D, 1e-9) {
		t.Error("nil mask should match DecomposeIALM")
	}
	// All-ones mask also delegates.
	ones := mat.NewDense(4, 9)
	ones.Apply(func(int, int, float64) float64 { return 1 })
	r3, err := DecomposeMasked(a, ones, IALMOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !r3.D.ApproxEqual(r2.D, 1e-9) {
		t.Error("full mask should match DecomposeIALM")
	}
	// Empty mask errors.
	if _, err := DecomposeMasked(a, mat.NewDense(4, 9), IALMOptions{}); !errors.Is(err, ErrEmptyMask) {
		t.Errorf("empty mask err = %v", err)
	}
	// Dimension mismatch errors.
	if _, err := DecomposeMasked(a, mat.NewDense(3, 9), IALMOptions{}); err == nil {
		t.Error("mask dim mismatch should error")
	}
}

func relErrVs(got, want *mat.Dense) float64 {
	var num, den float64
	r, c := want.Dims()
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			num += math.Abs(got.At(i, j) - want.At(i, j))
			den += math.Abs(want.At(i, j))
		}
	}
	return num / den
}
