package rpca

import (
	"errors"
	"fmt"
	"math"

	"netconstant/internal/mat"
)

// ErrNonFinite is the sentinel wrapped by NonFiniteError: the input matrix
// contains a NaN or ±Inf entry. RPCA iterations silently propagate
// non-finite values into every entry of D and E, so the solvers reject
// such inputs up front instead of returning a corrupt decomposition.
var ErrNonFinite = errors.New("rpca: non-finite input")

// NonFiniteError reports the first non-finite entry found in an input
// matrix. It unwraps to ErrNonFinite.
type NonFiniteError struct {
	Row, Col int
	Value    float64
}

// Error formats the offending position and value.
func (e *NonFiniteError) Error() string {
	return fmt.Sprintf("rpca: non-finite input at (%d,%d): %v", e.Row, e.Col, e.Value)
}

// Unwrap makes errors.Is(err, ErrNonFinite) work.
func (e *NonFiniteError) Unwrap() error { return ErrNonFinite }

// ErrEmptyMask is returned by DecomposeMasked when the mask observes no
// entry at all — there is nothing to decompose.
var ErrEmptyMask = errors.New("rpca: mask observes no entries")

// checkFinite scans a matrix and returns a *NonFiniteError for the first
// NaN/Inf entry, or nil if all entries are finite.
func checkFinite(a *mat.Dense) error {
	_, c := a.Dims()
	for idx, v := range a.Data() {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return &NonFiniteError{Row: idx / c, Col: idx % c, Value: v}
		}
	}
	return nil
}

// DecomposeMasked solves RPCA with missing entries: given an observation
// mask Ω (mask cell > 0.5 ⇔ observed), it finds D low-rank and E sparse
// with P_Ω(A) = P_Ω(D + E), leaving the unobserved entries of A free. This
// is the IALM iteration with missing-entry projection: each round the
// unobserved entries of the working matrix are refreshed from the current
// D + E (so they exert no pull of their own), the sparse component is
// confined to Ω (no error term can live where nothing was measured), and
// the multiplier/residual updates only count observed entries.
//
// Calibrations with probe gaps use this instead of zero-filling: a zero
// bandwidth cell fed to the unmasked solver looks like an extreme outlier
// and corrupts the constant component, whereas the mask lets the low-rank
// structure interpolate the gap.
//
// A nil mask (or an all-ones mask) reduces to DecomposeIALM.
func DecomposeMasked(a, mask *mat.Dense, opts IALMOptions) (*Result, error) {
	if mask == nil {
		return DecomposeIALM(a, opts)
	}
	r, c := a.Dims()
	if r == 0 || c == 0 {
		return nil, errors.New("rpca: empty matrix")
	}
	if mr, mc := mask.Dims(); mr != r || mc != c {
		return nil, fmt.Errorf("rpca: mask dims %dx%d != data %dx%d", mr, mc, r, c)
	}
	if err := checkFinite(a); err != nil {
		return nil, err
	}

	observed := func(i, j int) bool { return mask.At(i, j) > 0.5 }
	// aObs = P_Ω(A); unobserved entries start at zero and are refreshed
	// from D+E each iteration.
	aObs := mat.NewDense(r, c)
	nObs := 0
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			if observed(i, j) {
				aObs.Set(i, j, a.At(i, j))
				nObs++
			}
		}
	}
	if nObs == 0 {
		return nil, ErrEmptyMask
	}
	if nObs == r*c {
		return DecomposeIALM(a, opts)
	}

	lambda := opts.Lambda
	if lambda <= 0 {
		lambda = 1 / math.Sqrt(float64(max(r, c)))
	}
	normA2 := aObs.NormSpectral()
	if normA2 == 0 {
		return &Result{D: mat.NewDense(r, c), E: mat.NewDense(r, c), Converged: true}, nil
	}
	mu := opts.Mu0
	if mu <= 0 {
		mu = 1.25 / normA2
	}
	muBar := mu * 1e7
	rho := opts.Rho
	if rho <= 1 {
		rho = 1.5
	}
	tol := opts.Tol
	if tol <= 0 {
		tol = 1e-7
	}
	maxIter := opts.MaxIter
	if maxIter <= 0 {
		maxIter = 1000
	}

	normAF := aObs.NormFrobenius()
	scale := math.Max(normA2, aObs.NormMax()/lambda)
	y := aObs.Scale(1 / scale)
	e := mat.NewDense(r, c)
	fill := aObs.Clone() // P_Ω(A) + P_Ωᶜ(D+E), refreshed per iteration
	var d *mat.Dense
	res := &Result{}

	for k := 0; k < maxIter; k++ {
		// D-step: SVT of Fill − E + Y/μ at threshold 1/μ.
		t := fill.Sub(e)
		t.AddInPlace(y.Scale(1 / mu))
		var rank int
		d, rank = t.SVT(1 / mu)

		// E-step: soft threshold of Fill − D + Y/μ at λ/μ, confined to Ω.
		t = fill.Sub(d)
		t.AddInPlace(y.Scale(1 / mu))
		e = t.SoftThreshold(lambda / mu)
		e.Apply(func(i, j int, v float64) float64 {
			if observed(i, j) {
				return v
			}
			return 0
		})

		// Residual and multiplier updates on observed entries only.
		z := mat.NewDense(r, c)
		for i := 0; i < r; i++ {
			for j := 0; j < c; j++ {
				if observed(i, j) {
					z.Set(i, j, aObs.At(i, j)-d.At(i, j)-e.At(i, j))
				}
			}
		}
		y.AddInPlace(z.Scale(mu))
		mu = math.Min(rho*mu, muBar)

		// Refresh the unobserved fill from the current completion.
		for i := 0; i < r; i++ {
			for j := 0; j < c; j++ {
				if !observed(i, j) {
					fill.Set(i, j, d.At(i, j)+e.At(i, j))
				}
			}
		}

		res.Iterations = k + 1
		res.RankD = rank
		if z.NormFrobenius() <= tol*math.Max(1, normAF) {
			res.Converged = true
			break
		}
	}
	res.D = d
	res.E = e
	return res, nil
}
