package rpca

import (
	"errors"
	"fmt"
	"math"

	"netconstant/internal/mat"
)

// ErrNonFinite is the sentinel wrapped by NonFiniteError: the input matrix
// contains a NaN or ±Inf entry. RPCA iterations silently propagate
// non-finite values into every entry of D and E, so the solvers reject
// such inputs up front instead of returning a corrupt decomposition.
var ErrNonFinite = errors.New("rpca: non-finite input")

// NonFiniteError reports the first non-finite entry found in an input
// matrix. It unwraps to ErrNonFinite.
type NonFiniteError struct {
	Row, Col int
	Value    float64
}

// Error formats the offending position and value.
func (e *NonFiniteError) Error() string {
	return fmt.Sprintf("rpca: non-finite input at (%d,%d): %v", e.Row, e.Col, e.Value)
}

// Unwrap makes errors.Is(err, ErrNonFinite) work.
func (e *NonFiniteError) Unwrap() error { return ErrNonFinite }

// ErrEmptyMask is returned by DecomposeMasked when the mask observes no
// entry at all — there is nothing to decompose.
var ErrEmptyMask = errors.New("rpca: mask observes no entries")

// checkFinite scans a matrix and returns a *NonFiniteError for the first
// NaN/Inf entry, or nil if all entries are finite.
func checkFinite(a *mat.Dense) error {
	_, c := a.Dims()
	for idx, v := range a.Data() {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return &NonFiniteError{Row: idx / c, Col: idx % c, Value: v}
		}
	}
	return nil
}

// DecomposeMasked solves RPCA with missing entries: given an observation
// mask Ω (mask cell > 0.5 ⇔ observed), it finds D low-rank and E sparse
// with P_Ω(A) = P_Ω(D + E), leaving the unobserved entries of A free. This
// is the IALM iteration with missing-entry projection: each round the
// unobserved entries of the working matrix are refreshed from the current
// D + E (so they exert no pull of their own), the sparse component is
// confined to Ω (no error term can live where nothing was measured), and
// the multiplier/residual updates only count observed entries.
//
// Calibrations with probe gaps use this instead of zero-filling: a zero
// bandwidth cell fed to the unmasked solver looks like an extreme outlier
// and corrupts the constant component, whereas the mask lets the low-rank
// structure interpolate the gap.
//
// A nil mask (or an all-ones mask) reduces to DecomposeIALM.
//
// Each call builds a throwaway Solver; hot paths should hold a Solver and
// call its DecomposeMasked to reuse the arena and SVT warm state.
func DecomposeMasked(a, mask *mat.Dense, opts IALMOptions) (*Result, error) {
	return NewSolver().DecomposeMasked(a, mask, opts)
}
