package rpca

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"netconstant/internal/cancel"
	"netconstant/internal/mat"
)

func cancelTestMatrix() *mat.Dense {
	rng := rand.New(rand.NewSource(3))
	a := mat.NewDense(12, 20)
	d := a.Data()
	for i := range d {
		d[i] = rng.NormFloat64()
	}
	return a
}

// TestSolversReturnTypedCancel: every solver entry point must abort a
// pre-cancelled context with an error matching both cancel.ErrCanceled
// and context.Canceled, and never return a partial Result.
func TestSolversReturnTypedCancel(t *testing.T) {
	ctx, stop := context.WithCancel(context.Background())
	stop()
	a := cancelTestMatrix()
	mask := mat.NewDense(12, 20)
	md := mask.Data()
	for i := range md {
		if i%3 != 0 {
			md[i] = 1
		}
	}
	s := NewSolver()

	cases := []struct {
		name string
		run  func() (*Result, error)
	}{
		{"Decompose", func() (*Result, error) { return s.Decompose(a, Options{Ctx: ctx}) }},
		{"DecomposeIALM", func() (*Result, error) { return s.DecomposeIALM(a, IALMOptions{Ctx: ctx}) }},
		{"DecomposeMasked", func() (*Result, error) { return s.DecomposeMasked(a, mask, IALMOptions{Ctx: ctx}) }},
		{"DecomposeFullSVT", func() (*Result, error) { return DecomposeFullSVT(a, Options{Ctx: ctx}) }},
		{"package Decompose", func() (*Result, error) { return Decompose(a, Options{Ctx: ctx}) }},
	}
	for _, tc := range cases {
		res, err := tc.run()
		if res != nil {
			t.Errorf("%s: returned a partial result under cancellation", tc.name)
		}
		if !errors.Is(err, cancel.ErrCanceled) {
			t.Errorf("%s: err %v does not match cancel.ErrCanceled", tc.name, err)
		}
		if !errors.Is(err, context.Canceled) {
			t.Errorf("%s: err %v does not unwrap to context.Canceled", tc.name, err)
		}
	}
}

// TestSolverNilCtxUnchanged: the zero-value Options must still solve to
// completion (nil context never cancels).
func TestSolverNilCtxUnchanged(t *testing.T) {
	res, err := NewSolver().Decompose(cancelTestMatrix(), Options{MaxIter: 50})
	if err != nil {
		t.Fatalf("nil-ctx solve failed: %v", err)
	}
	if res.Iterations == 0 {
		t.Fatal("solver did not iterate")
	}
}

// TestSolverMidIterationCancel cancels after the first iteration via a
// context cancelled from the solve's own progress, and checks the
// provenance fields.
func TestSolverMidIterationCancel(t *testing.T) {
	ctx, stop := context.WithCancel(context.Background())
	a := cancelTestMatrix()
	// Cancel immediately: the solver observes it at iteration 0 and must
	// report Op and Total.
	stop()
	_, err := NewSolver().Decompose(a, Options{Ctx: ctx, MaxIter: 77})
	var ce *cancel.Error
	if !errors.As(err, &ce) {
		t.Fatalf("err %T is not *cancel.Error", err)
	}
	if ce.Op != "rpca.Decompose" || ce.Total != 77 {
		t.Errorf("provenance = %+v, want Op=rpca.Decompose Total=77", ce)
	}
}
