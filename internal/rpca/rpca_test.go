package rpca

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"netconstant/internal/mat"
)

// synth builds A = lowrank(rank) + sparse(density, amplitude) and returns
// all three matrices.
func synth(rng *rand.Rand, r, c, rank int, density, amplitude float64) (a, d, e *mat.Dense) {
	u := mat.RandomNormal(rng, r, rank, 0, 1)
	v := mat.RandomNormal(rng, c, rank, 0, 1)
	d = u.Mul(v.T())
	e = mat.NewDense(r, c)
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			if rng.Float64() < density {
				sign := 1.0
				if rng.Float64() < 0.5 {
					sign = -1
				}
				e.Set(i, j, sign*amplitude*(0.5+rng.Float64()))
			}
		}
	}
	a = d.Add(e)
	return a, d, e
}

func TestDecomposeExactRecovery(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a, dTrue, eTrue := synth(rng, 40, 40, 2, 0.05, 10)
	res, err := Decompose(a, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Error("did not converge")
	}
	relD := res.D.Sub(dTrue).NormFrobenius() / dTrue.NormFrobenius()
	relE := res.E.Sub(eTrue).NormFrobenius() / math.Max(1, eTrue.NormFrobenius())
	if relD > 0.02 {
		t.Errorf("low-rank recovery error %.4f", relD)
	}
	if relE > 0.1 {
		t.Errorf("sparse recovery error %.4f", relE)
	}
	if res.RankD > 6 {
		t.Errorf("rank blew up: %d", res.RankD)
	}
}

func TestDecomposeRank1TPStyle(t *testing.T) {
	// A TP-matrix-like input: all rows equal a constant vector plus sparse
	// spikes — exactly the paper's model. RPCA must recover the constant.
	rng := rand.New(rand.NewSource(2))
	n, m := 10, 64 // 10 calibrations of an 8-VM cluster
	constant := make([]float64, m)
	for j := range constant {
		constant[j] = 50 + 100*rng.Float64()
	}
	a := ConstantMatrix(constant, n)
	for i := 0; i < n; i++ {
		for j := 0; j < m; j++ {
			if rng.Float64() < 0.08 {
				a.Set(i, j, a.At(i, j)+200*rng.Float64())
			}
		}
	}
	res, err := Decompose(a, Options{})
	if err != nil {
		t.Fatal(err)
	}
	row := ConstantRow(res.D, ExtractMean)
	if rd := RelDiff(row, constant); rd > 0.05 {
		t.Errorf("constant row relative difference %.4f", rd)
	}
}

func TestDecomposeSumInvariant(t *testing.T) {
	// D + E must approximate A tightly after convergence.
	rng := rand.New(rand.NewSource(3))
	a, _, _ := synth(rng, 20, 30, 3, 0.1, 5)
	res, err := Decompose(a, Options{})
	if err != nil {
		t.Fatal(err)
	}
	diff := res.D.Add(res.E).Sub(a).NormFrobenius() / a.NormFrobenius()
	if diff > 1e-4 {
		t.Errorf("A = D + E violated: rel %v", diff)
	}
}

func TestDecomposeZeroMatrix(t *testing.T) {
	res, err := Decompose(mat.NewDense(5, 5), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Error("zero matrix should converge trivially")
	}
	if res.D.NormFrobenius() != 0 || res.E.NormFrobenius() != 0 {
		t.Error("zero decomposition expected")
	}
}

func TestDecomposeEmpty(t *testing.T) {
	if _, err := Decompose(mat.NewDense(0, 5), Options{}); err == nil {
		t.Error("empty matrix should error")
	}
}

func TestDecomposeMaxIter(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a, _, _ := synth(rng, 15, 15, 2, 0.1, 5)
	res, err := Decompose(a, Options{MaxIter: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Converged {
		t.Error("2 iterations should not converge")
	}
	if res.Iterations != 2 {
		t.Errorf("iterations %d", res.Iterations)
	}
}

func TestDecomposeCustomLambda(t *testing.T) {
	// Large lambda forces E towards zero; D absorbs everything.
	rng := rand.New(rand.NewSource(5))
	a, _, _ := synth(rng, 12, 12, 2, 0.1, 5)
	res, err := Decompose(a, Options{Lambda: 100})
	if err != nil {
		t.Fatal(err)
	}
	if res.E.NormL1() > 1e-6*a.NormL1() {
		t.Errorf("huge lambda should suppress E, got ‖E‖₁=%v", res.E.NormL1())
	}
}

func TestConstantRowMethodsAgreeOnCleanInput(t *testing.T) {
	p := []float64{1, 2, 3, 4}
	d := ConstantMatrix(p, 6)
	for _, m := range []ExtractMethod{ExtractMean, ExtractMedian, ExtractRank1} {
		row := ConstantRow(d, m)
		for j := range p {
			if math.Abs(row[j]-p[j]) > 1e-9 {
				t.Errorf("method %v: row[%d]=%v want %v", m, j, row[j], p[j])
			}
		}
	}
}

func TestConstantRowMedianRobustness(t *testing.T) {
	p := []float64{10, 20, 30}
	d := ConstantMatrix(p, 5)
	d.Set(0, 0, 1e6) // one gross outlier
	mean := ConstantRow(d, ExtractMean)
	med := ConstantRow(d, ExtractMedian)
	if math.Abs(med[0]-10) > 1e-9 {
		t.Errorf("median should resist outlier: %v", med[0])
	}
	if math.Abs(mean[0]-10) < 1 {
		t.Errorf("mean should be pulled by outlier: %v", mean[0])
	}
}

func TestConstantRowMedianEvenRows(t *testing.T) {
	d := mat.FromRows([][]float64{{1}, {3}, {5}, {7}})
	med := ConstantRow(d, ExtractMedian)
	if med[0] != 4 {
		t.Errorf("even-row median %v", med[0])
	}
}

func TestConstantRowEmpty(t *testing.T) {
	row := ConstantRow(mat.NewDense(0, 3), ExtractMean)
	if len(row) != 3 {
		t.Error("empty extraction length")
	}
}

func TestConstantMatrixRank(t *testing.T) {
	m := ConstantMatrix([]float64{1, 2, 3}, 4)
	if r := m.Rank(0); r != 1 {
		t.Errorf("TC-matrix rank %d, want 1", r)
	}
}

func TestRelNorm(t *testing.T) {
	a := mat.FromRows([][]float64{{10, 10}, {10, 10}})
	e := mat.FromRows([][]float64{{1, 1}, {1, 1}})
	if v := RelNorm(e, a, NormL1, 0); math.Abs(v-0.1) > 1e-12 {
		t.Errorf("L1 relnorm %v", v)
	}
	if v := RelNorm(e, a, NormFro, 0); math.Abs(v-0.1) > 1e-12 {
		t.Errorf("Fro relnorm %v", v)
	}
	// L0: all |e|=1 > 1e-3·10, all |a|=10 > threshold → ratio 1.
	if v := RelNorm(e, a, NormL0, 0); v != 1 {
		t.Errorf("L0 relnorm %v", v)
	}
	// L0 with a coarser threshold that excludes E entries.
	if v := RelNorm(e, a, NormL0, 0.5); v != 0 {
		t.Errorf("L0 coarse relnorm %v", v)
	}
	// Zero denominator.
	z := mat.NewDense(2, 2)
	if RelNorm(e, z, NormL1, 0) != 0 {
		t.Error("zero denominator should give 0")
	}
	// Clamp to 1.
	big := mat.FromRows([][]float64{{100, 100}, {100, 100}})
	if RelNorm(big, a, NormL1, 0) != 1 {
		t.Error("relnorm should clamp at 1")
	}
}

func TestRelDiff(t *testing.T) {
	if v := RelDiff([]float64{1, 2}, []float64{1, 2}); v != 0 {
		t.Errorf("identical reldiff %v", v)
	}
	if v := RelDiff([]float64{2, 2}, []float64{1, 3}); math.Abs(v-0.5) > 1e-12 {
		t.Errorf("reldiff %v", v)
	}
	if !math.IsInf(RelDiff([]float64{1}, []float64{0}), 1) {
		t.Error("zero oracle with nonzero prediction should be +Inf")
	}
	if RelDiff([]float64{0}, []float64{0}) != 0 {
		t.Error("all-zero reldiff should be 0")
	}
	defer func() {
		if recover() == nil {
			t.Error("length mismatch should panic")
		}
	}()
	RelDiff([]float64{1}, []float64{1, 2})
}

// TestRPCAPaperExample reproduces the paper's Figure 2 walk-through: five
// calibrations of a 4-machine cluster whose link performance is constant
// with occasional spikes; RPCA recovers a rank-one N_D whose row is the
// constant performance matrix.
func TestRPCAPaperExample(t *testing.T) {
	// Simplified 4-machine topology of Fig 2(a): weights between machines.
	base := []float64{
		0, 2, 4, 6,
		2, 0, 3, 5,
		4, 3, 0, 2,
		6, 5, 2, 0,
	}
	n := 5
	a := ConstantMatrix(base, n)
	// Calibration noise: a couple of interference spikes.
	a.Set(1, 1*4+2, 9) // link (1,2) spiked during calibration 1
	a.Set(3, 2*4+3, 7) // link (2,3) spiked during calibration 3
	res, err := Decompose(a, Options{})
	if err != nil {
		t.Fatal(err)
	}
	row := ConstantRow(res.D, ExtractMean)
	if rd := RelDiff(row, base); rd > 0.12 {
		t.Errorf("Fig 2 constant recovery rel diff %.4f", rd)
	}
	// The error norm should be small but nonzero.
	rel := RelNorm(res.E, a, NormL1, 0)
	if rel <= 0 || rel > 0.3 {
		t.Errorf("Fig 2 Norm(N_E)=%v out of expected band", rel)
	}
}

// Property: for random constant-plus-sparse inputs the recovered constant
// row is closer to the truth than any single calibration row (the paper's
// core claim against ad-hoc measurement use).
func TestPropertyBeatsSingleMeasurement(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nRows, nCols := 8+rng.Intn(6), 25
		constant := make([]float64, nCols)
		for j := range constant {
			constant[j] = 10 + 90*rng.Float64()
		}
		a := ConstantMatrix(constant, nRows)
		for i := 0; i < nRows; i++ {
			for j := 0; j < nCols; j++ {
				// Mild volatility on every entry plus sparse spikes.
				a.Set(i, j, a.At(i, j)*(1+0.02*rng.NormFloat64()))
				if rng.Float64() < 0.1 {
					a.Set(i, j, a.At(i, j)+100*rng.Float64())
				}
			}
		}
		res, err := Decompose(a, Options{})
		if err != nil {
			return false
		}
		row := ConstantRow(res.D, ExtractMean)
		rpcaErr := RelDiff(row, constant)
		worst := 0.0
		for i := 0; i < nRows; i++ {
			if d := RelDiff(a.Row(i), constant); d > worst {
				worst = d
			}
		}
		return rpcaErr <= worst+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// Property: RelNorm is scale-invariant — scaling A and E together leaves
// the metric unchanged.
func TestPropertyRelNormScaleInvariant(t *testing.T) {
	f := func(seed int64, scale float64) bool {
		scale = 0.1 + math.Abs(math.Mod(scale, 10))
		rng := rand.New(rand.NewSource(seed))
		a := mat.RandomNormal(rng, 5, 5, 10, 2)
		e := mat.RandomNormal(rng, 5, 5, 0, 1)
		v1 := RelNorm(e, a, NormL1, 0)
		v2 := RelNorm(e.Scale(scale), a.Scale(scale), NormL1, 0)
		return math.Abs(v1-v2) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
