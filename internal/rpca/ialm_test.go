package rpca

import (
	"math"
	"math/rand"
	"testing"

	"netconstant/internal/mat"
)

func TestIALMExactRecovery(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	a, dTrue, eTrue := synth(rng, 40, 40, 2, 0.05, 10)
	res, err := DecomposeIALM(a, IALMOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Error("IALM did not converge")
	}
	relD := res.D.Sub(dTrue).NormFrobenius() / dTrue.NormFrobenius()
	relE := res.E.Sub(eTrue).NormFrobenius() / math.Max(1, eTrue.NormFrobenius())
	if relD > 0.02 {
		t.Errorf("IALM low-rank recovery error %.4f", relD)
	}
	if relE > 0.1 {
		t.Errorf("IALM sparse recovery error %.4f", relE)
	}
}

func TestIALMAgreesWithAPG(t *testing.T) {
	// Two independent solvers must land on (numerically) the same
	// decomposition of a well-posed instance.
	rng := rand.New(rand.NewSource(22))
	a, _, _ := synth(rng, 25, 30, 2, 0.08, 8)
	apg, err := Decompose(a, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ialm, err := DecomposeIALM(a, IALMOptions{})
	if err != nil {
		t.Fatal(err)
	}
	diff := apg.D.Sub(ialm.D).NormFrobenius() / math.Max(1, apg.D.NormFrobenius())
	if diff > 0.02 {
		t.Errorf("APG and IALM disagree on D: rel %.4f", diff)
	}
}

func TestIALMConvergesFasterThanAPG(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	a, _, _ := synth(rng, 30, 30, 3, 0.05, 10)
	apg, err := Decompose(a, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ialm, err := DecomposeIALM(a, IALMOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if ialm.Iterations >= apg.Iterations {
		t.Errorf("IALM (%d iters) expected to beat APG (%d iters)", ialm.Iterations, apg.Iterations)
	}
}

func TestIALMSumInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	a, _, _ := synth(rng, 15, 20, 2, 0.1, 5)
	res, err := DecomposeIALM(a, IALMOptions{})
	if err != nil {
		t.Fatal(err)
	}
	rel := res.D.Add(res.E).Sub(a).NormFrobenius() / a.NormFrobenius()
	if rel > 1e-5 {
		t.Errorf("A = D + E violated: %v", rel)
	}
}

func TestIALMEdgeCases(t *testing.T) {
	if _, err := DecomposeIALM(mat.NewDense(0, 3), IALMOptions{}); err == nil {
		t.Error("empty should error")
	}
	res, err := DecomposeIALM(mat.NewDense(4, 4), IALMOptions{})
	if err != nil || !res.Converged {
		t.Error("zero matrix should converge trivially")
	}
	// MaxIter respected.
	rng := rand.New(rand.NewSource(25))
	a, _, _ := synth(rng, 10, 10, 2, 0.1, 5)
	lim, err := DecomposeIALM(a, IALMOptions{MaxIter: 2})
	if err != nil {
		t.Fatal(err)
	}
	if lim.Iterations != 2 || lim.Converged {
		t.Errorf("MaxIter handling: %d converged=%v", lim.Iterations, lim.Converged)
	}
}

func TestIALMConstantRowPipeline(t *testing.T) {
	// End-to-end: TP-style matrix through IALM gives the same constant row
	// as through APG.
	rng := rand.New(rand.NewSource(26))
	constant := make([]float64, 49)
	for j := range constant {
		constant[j] = 20 + 80*rng.Float64()
	}
	a := ConstantMatrix(constant, 10)
	for i := 0; i < 10; i++ {
		for j := 0; j < 49; j++ {
			if rng.Float64() < 0.07 {
				a.Set(i, j, a.At(i, j)*(1+2*rng.Float64()))
			}
		}
	}
	apg, _ := Decompose(a, Options{Lambda: 0.316})
	ialm, _ := DecomposeIALM(a, IALMOptions{Lambda: 0.316})
	rowA := ConstantRow(apg.D, ExtractMedian)
	rowI := ConstantRow(ialm.D, ExtractMedian)
	if d := RelDiff(rowA, rowI); d > 0.03 {
		t.Errorf("constant rows disagree: %v", d)
	}
	if d := RelDiff(rowI, constant); d > 0.05 {
		t.Errorf("IALM constant recovery: %v", d)
	}
}
