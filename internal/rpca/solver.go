package rpca

// Solver is the arena-backed engine behind Decompose, DecomposeIALM and
// DecomposeMasked. It owns every per-iteration buffer plus a warm-started
// truncated-SVT workspace, so solving a sequence of same-shaped temporal
// performance matrices — the advisor re-analyzes after every calibration —
// performs zero heap allocations in steady-state iterations: each step is
// a handful of fused elementwise kernels and one (usually truncated) SVT
// into preallocated storage.
//
// A Solver is not safe for concurrent use. The package-level functions
// construct a throwaway Solver per call and remain the convenient entry
// points; hot paths hold one Solver and reuse it.

import (
	"errors"
	"fmt"
	"math"

	"netconstant/internal/cancel"
	"netconstant/internal/mat"
)

// Solver holds the iteration arena. The zero value is not usable; call
// NewSolver. Buffers bind lazily to the first decomposed shape and rebind
// automatically when the shape changes.
type Solver struct {
	rows, cols int
	svt        *mat.SVTWorkspace

	// carryWarm, set by the streaming solver, keeps the SVT warm subspace
	// across solves (and, with the workspace's CarryAcrossWidths, across
	// widths) instead of resetting it per bind — the whole point of
	// warm-started incremental re-solves. Batch solvers leave it false:
	// independent solves must not inherit a previous problem's subspace.
	carryWarm bool

	// APG slots. dPrev/ePrev double as the "next" iterate target each
	// step, so the rotation needs no third buffer.
	d, e, dPrev, ePrev, yd, ye, g *mat.Dense

	// IALM / masked slots.
	y, t, z, aObs, fill *mat.Dense

	obs []bool // masked route: observed-entry flags, row-major
}

// NewSolver returns a Solver with an empty arena.
func NewSolver() *Solver {
	return &Solver{svt: mat.NewSVTWorkspace()}
}

// SVTStats reports how many SVT calls over the solver's lifetime used a
// full decomposition and how many the warm-started truncated route —
// diagnostics for benchmarking the partial-SVD acceleration.
func (s *Solver) SVTStats() (full, truncated int) { return s.svt.Stats() }

// bind (re)allocates the arena for an r×c problem. Unless carryWarm is
// set, binding resets the SVT warm state even at the already-bound shape
// (each batch solve must not inherit the previous solve's subspace).
func (s *Solver) bind(r, c int) {
	if !s.carryWarm {
		s.svt.Reset()
	}
	if s.rows == r && s.cols == c {
		return
	}
	s.rows, s.cols = r, c
	s.d = mat.NewDense(r, c)
	s.e = mat.NewDense(r, c)
	s.dPrev = mat.NewDense(r, c)
	s.ePrev = mat.NewDense(r, c)
	s.yd = mat.NewDense(r, c)
	s.ye = mat.NewDense(r, c)
	s.g = mat.NewDense(r, c)
	s.y = mat.NewDense(r, c)
	s.t = mat.NewDense(r, c)
	s.z = mat.NewDense(r, c)
	s.aObs = mat.NewDense(r, c)
	s.fill = mat.NewDense(r, c)
	s.obs = make([]bool, r*c)
}

// --- APG ---------------------------------------------------------------

// apgIter carries the per-solve scalar state of the APG continuation loop;
// step advances one iteration against the solver arena.
type apgIter struct {
	s         *Solver
	a         *mat.Dense
	lambda    float64
	mu, muBar float64
	eta       float64
	t, tPrev  float64
}

// step performs one APG iteration: Nesterov extrapolation, gradient step,
// SVT on the low-rank block, soft threshold on the sparse block, iterate
// rotation and continuation decay. It returns the unnormalized iterate
// change and the post-SVT rank. Allocation-free after arena binding.
//netlint:hotpath
func (it *apgIter) step() (num float64, rank int) {
	s := it.s
	beta := (it.tPrev - 1) / it.t
	mat.MomentumInto(s.yd, s.d, s.dPrev, beta)
	mat.MomentumInto(s.ye, s.e, s.ePrev, beta)

	// g = Y_D + Y_E − A; the gradient step subtracts g/2 from each block.
	mat.LinComb3Into(s.g, 1, s.yd, 1, s.ye, -1, it.a)
	mat.LinComb2Into(s.yd, 1, s.yd, -0.5, s.g)
	rank = s.svt.SVTInto(s.dPrev, s.yd, it.mu/2) // next D into the spare slot
	mat.LinComb2Into(s.ye, 1, s.ye, -0.5, s.g)
	mat.SoftThresholdInto(s.ePrev, s.ye, it.lambda*it.mu/2)

	num = mat.NormFroDiff(s.dPrev, s.d) + mat.NormFroDiff(s.ePrev, s.e)
	s.d, s.dPrev = s.dPrev, s.d
	s.e, s.ePrev = s.ePrev, s.e
	it.tPrev, it.t = it.t, (1+math.Sqrt(1+4*it.t*it.t))/2
	//netlint:allow floatsafe mu/eta/muBar are solver constants seeded from norms of the entry-validated (NaN/Inf-rejected) input
	it.mu = math.Max(it.eta*it.mu, it.muBar)
	return num, rank
}

// Decompose runs APG RPCA on a (see the package-level Decompose for the
// algorithm description). The input is not modified; the returned matrices
// are owned by the caller, not the arena.
func (s *Solver) Decompose(a *mat.Dense, opts Options) (*Result, error) {
	r, c := a.Dims()
	if r == 0 || c == 0 {
		return nil, errors.New("rpca: empty matrix")
	}
	if err := checkFinite(a); err != nil {
		return nil, err
	}
	lambda := opts.Lambda
	if lambda <= 0 {
		lambda = 1 / math.Sqrt(float64(max(r, c)))
	}
	mu := opts.Mu0
	if mu <= 0 {
		mu = 0.99 * a.NormSpectral()
		if mu == 0 {
			return &Result{D: mat.NewDense(r, c), E: mat.NewDense(r, c), Converged: true}, nil
		}
	}
	muBar := opts.MuBar
	if muBar <= 0 {
		muBar = 1e-9 * mu
	}
	eta := opts.Eta
	if eta <= 0 || eta >= 1 {
		eta = 0.9
	}
	tol := opts.Tol
	if tol <= 0 {
		tol = 1e-7
	}
	maxIter := opts.MaxIter
	if maxIter <= 0 {
		maxIter = 500
	}

	s.bind(r, c)
	s.d.Zero()
	s.e.Zero()
	s.dPrev.Zero()
	s.ePrev.Zero()
	den := math.Max(1, a.NormFrobenius())
	it := apgIter{s: s, a: a, lambda: lambda, mu: mu, muBar: muBar, eta: eta, t: 1, tPrev: 1}

	res := &Result{}
	for k := 0; k < maxIter; k++ {
		if err := cancel.Check(opts.Ctx, "rpca.Decompose", k, maxIter); err != nil {
			return nil, err
		}
		num, rank := it.step()
		res.Iterations = k + 1
		res.RankD = rank
		if num/den < tol {
			res.Converged = true
			break
		}
	}
	res.D = s.d.Clone()
	res.E = s.e.Clone()
	return res, nil
}

// --- IALM --------------------------------------------------------------

// ialmIter carries the scalar state of the IALM loop over the arena.
type ialmIter struct {
	s          *Solver
	a          *mat.Dense // the working data matrix (aObs-filled for masked)
	lambda     float64
	mu, muBar  float64
	rho        float64
	masked     bool
	refD, refE *mat.Dense // not owned; aliases of arena slots
}

// step performs one IALM iteration against the arena: SVT D-step, soft
// threshold E-step (mask-confined when masked), residual, multiplier
// update and penalty growth. Returns the residual Frobenius norm and the
// post-SVT rank. Allocation-free after arena binding.
//netlint:hotpath
func (it *ialmIter) step() (resid float64, rank int) {
	s := it.s
	inv := 1 / it.mu

	// D-step: SVT of A − E + Y/μ at threshold 1/μ.
	mat.LinComb3Into(s.t, 1, it.a, -1, s.e, inv, s.y)
	rank = s.svt.SVTInto(s.d, s.t, inv)

	// E-step: soft threshold of A − D + Y/μ at λ/μ.
	mat.LinComb3Into(s.t, 1, it.a, -1, s.d, inv, s.y)
	mat.SoftThresholdInto(s.e, s.t, it.lambda*inv)
	if it.masked {
		ed := s.e.Data()
		for i, ob := range s.obs {
			if !ob {
				ed[i] = 0
			}
		}
	}

	// Residual z = A − D − E (observed entries only when masked).
	mat.LinComb3Into(s.z, 1, it.a, -1, s.d, -1, s.e)
	if it.masked {
		zd := s.z.Data()
		for i, ob := range s.obs {
			if !ob {
				zd[i] = 0
			}
		}
	}
	mat.AddScaledInPlace(s.y, it.mu, s.z)
	//netlint:allow floatsafe mu/rho/muBar are solver constants seeded from norms of the entry-validated (NaN/Inf-rejected) input
	it.mu = math.Min(it.rho*it.mu, it.muBar)

	if it.masked {
		// Refresh the unobserved fill from the current completion D+E.
		fd, dd, ed := it.a.Data(), s.d.Data(), s.e.Data()
		for i, ob := range s.obs {
			if !ob {
				fd[i] = dd[i] + ed[i]
			}
		}
	}
	return s.z.NormFrobenius(), rank
}

// DecomposeIALM runs the inexact-ALM solver on a over the arena (see the
// package-level DecomposeIALM). The returned matrices are caller-owned.
func (s *Solver) DecomposeIALM(a *mat.Dense, opts IALMOptions) (*Result, error) {
	r, c := a.Dims()
	if r == 0 || c == 0 {
		return nil, errors.New("rpca: empty matrix")
	}
	if err := checkFinite(a); err != nil {
		return nil, err
	}
	lambda, mu, muBar, rho, tol, maxIter, normAF, scale, zero := ialmParams(a, opts)
	if zero {
		return &Result{D: mat.NewDense(r, c), E: mat.NewDense(r, c), Converged: true}, nil
	}

	s.bind(r, c)
	s.e.Zero()
	s.d.Zero()
	s.y.CopyFrom(a)
	s.y.ScaleInPlace(1 / scale)
	it := ialmIter{s: s, a: a, lambda: lambda, mu: mu, muBar: muBar, rho: rho}

	res := &Result{}
	for k := 0; k < maxIter; k++ {
		if err := cancel.Check(opts.Ctx, "rpca.DecomposeIALM", k, maxIter); err != nil {
			return nil, err
		}
		resid, rank := it.step()
		res.Iterations = k + 1
		res.RankD = rank
		if resid <= tol*math.Max(1, normAF) {
			res.Converged = true
			break
		}
	}
	res.D = s.d.Clone()
	res.E = s.e.Clone()
	return res, nil
}

// ialmParams resolves IALM defaults against the (possibly mask-projected)
// data matrix; zero reports the all-zero input shortcut.
func ialmParams(a *mat.Dense, opts IALMOptions) (lambda, mu, muBar, rho, tol float64, maxIter int, normAF, scale float64, zero bool) {
	r, c := a.Dims()
	lambda = opts.Lambda
	if lambda <= 0 {
		lambda = 1 / math.Sqrt(float64(max(r, c)))
	}
	normA2 := a.NormSpectral()
	if normA2 == 0 {
		return 0, 0, 0, 0, 0, 0, 0, 0, true
	}
	mu = opts.Mu0
	if mu <= 0 {
		mu = 1.25 / normA2
	}
	muBar = mu * 1e7
	rho = opts.Rho
	if rho <= 1 {
		rho = 1.5
	}
	tol = opts.Tol
	if tol <= 0 {
		tol = 1e-7
	}
	maxIter = opts.MaxIter
	if maxIter <= 0 {
		maxIter = 1000
	}
	normAF = a.NormFrobenius()
	//netlint:allow floatsafe both operands are norms of the entry-validated (NaN/Inf-rejected) input, hence finite
	scale = math.Max(normA2, a.NormMax()/lambda)
	return lambda, mu, muBar, rho, tol, maxIter, normAF, scale, false
}

// DecomposeMasked runs the missing-entry IALM variant over the arena (see
// the package-level DecomposeMasked for semantics). The returned matrices
// are caller-owned.
func (s *Solver) DecomposeMasked(a, mask *mat.Dense, opts IALMOptions) (*Result, error) {
	if mask == nil {
		return s.DecomposeIALM(a, opts)
	}
	r, c := a.Dims()
	if r == 0 || c == 0 {
		return nil, errors.New("rpca: empty matrix")
	}
	if mr, mc := mask.Dims(); mr != r || mc != c {
		return nil, fmt.Errorf("rpca: mask dims %dx%d != data %dx%d", mr, mc, r, c)
	}
	if err := checkFinite(a); err != nil {
		return nil, err
	}

	s.bind(r, c)
	ad, md := a.Data(), mask.Data()
	obsData := s.aObs.Data()
	nObs := 0
	for i := range obsData {
		if md[i] > 0.5 {
			s.obs[i] = true
			obsData[i] = ad[i]
			nObs++
		} else {
			s.obs[i] = false
			obsData[i] = 0
		}
	}
	if nObs == 0 {
		return nil, ErrEmptyMask
	}
	if nObs == r*c {
		return s.DecomposeIALM(a, opts)
	}

	lambda, mu, muBar, rho, tol, maxIter, normAF, scale, zero := ialmParams(s.aObs, opts)
	if zero {
		return &Result{D: mat.NewDense(r, c), E: mat.NewDense(r, c), Converged: true}, nil
	}

	s.e.Zero()
	s.d.Zero()
	s.y.CopyFrom(s.aObs)
	s.y.ScaleInPlace(1 / scale)
	s.fill.CopyFrom(s.aObs) // P_Ω(A) + P_Ωᶜ(D+E), refreshed per iteration
	it := ialmIter{s: s, a: s.fill, lambda: lambda, mu: mu, muBar: muBar, rho: rho, masked: true}

	res := &Result{}
	for k := 0; k < maxIter; k++ {
		if err := cancel.Check(opts.Ctx, "rpca.DecomposeMasked", k, maxIter); err != nil {
			return nil, err
		}
		resid, rank := it.step()
		res.Iterations = k + 1
		res.RankD = rank
		if resid <= tol*math.Max(1, normAF) {
			res.Converged = true
			break
		}
	}
	res.D = s.d.Clone()
	res.E = s.e.Clone()
	return res, nil
}
