package rpca

import (
	"context"

	"netconstant/internal/mat"
)

// IALMOptions configures the Inexact Augmented Lagrange Multiplier solver
// (Lin, Chen & Ma — the other standard RPCA algorithm from the sample-code
// collection the paper cites). The zero value selects the published
// defaults: λ = 1/√max(r,c), μ₀ = 1.25/‖A‖₂, ρ = 1.5, tol = 1e-7,
// 1000 iterations max.
type IALMOptions struct {
	Lambda  float64
	Mu0     float64
	Rho     float64
	Tol     float64
	MaxIter int
	// Ctx, when non-nil, is checked once per iteration: a cancelled
	// context aborts the solve with a *cancel.Error (matching
	// cancel.ErrCanceled). Nil means "never cancel".
	Ctx context.Context
}

// DecomposeIALM solves the RPCA program with the inexact ALM method:
// each iteration alternates singular value thresholding of A − E + Y/μ
// and soft thresholding of A − D + Y/μ, then updates the multiplier
// Y ← Y + μ(A − D − E) and grows μ geometrically. It typically converges
// in far fewer iterations than APG (each being one SVD), making it a
// useful cross-check: two independent solvers agreeing on D and E is
// strong evidence the decomposition is right.
// Each call builds a throwaway Solver; hot paths should hold a Solver and
// call its DecomposeIALM to reuse the arena and SVT warm state.
func DecomposeIALM(a *mat.Dense, opts IALMOptions) (*Result, error) {
	return NewSolver().DecomposeIALM(a, opts)
}
