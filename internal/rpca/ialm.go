package rpca

import (
	"errors"
	"math"

	"netconstant/internal/mat"
)

// IALMOptions configures the Inexact Augmented Lagrange Multiplier solver
// (Lin, Chen & Ma — the other standard RPCA algorithm from the sample-code
// collection the paper cites). The zero value selects the published
// defaults: λ = 1/√max(r,c), μ₀ = 1.25/‖A‖₂, ρ = 1.5, tol = 1e-7,
// 1000 iterations max.
type IALMOptions struct {
	Lambda  float64
	Mu0     float64
	Rho     float64
	Tol     float64
	MaxIter int
}

// DecomposeIALM solves the RPCA program with the inexact ALM method:
// each iteration alternates singular value thresholding of A − E + Y/μ
// and soft thresholding of A − D + Y/μ, then updates the multiplier
// Y ← Y + μ(A − D − E) and grows μ geometrically. It typically converges
// in far fewer iterations than APG (each being one SVD), making it a
// useful cross-check: two independent solvers agreeing on D and E is
// strong evidence the decomposition is right.
func DecomposeIALM(a *mat.Dense, opts IALMOptions) (*Result, error) {
	r, c := a.Dims()
	if r == 0 || c == 0 {
		return nil, errors.New("rpca: empty matrix")
	}
	if err := checkFinite(a); err != nil {
		return nil, err
	}
	lambda := opts.Lambda
	if lambda <= 0 {
		lambda = 1 / math.Sqrt(float64(max(r, c)))
	}
	normA2 := a.NormSpectral()
	if normA2 == 0 {
		return &Result{D: mat.NewDense(r, c), E: mat.NewDense(r, c), Converged: true}, nil
	}
	mu := opts.Mu0
	if mu <= 0 {
		mu = 1.25 / normA2
	}
	muBar := mu * 1e7
	rho := opts.Rho
	if rho <= 1 {
		rho = 1.5
	}
	tol := opts.Tol
	if tol <= 0 {
		tol = 1e-7
	}
	maxIter := opts.MaxIter
	if maxIter <= 0 {
		maxIter = 1000
	}

	normAF := a.NormFrobenius()
	// Multiplier warm start: Y = A / max(‖A‖₂, ‖A‖∞/λ).
	scale := math.Max(normA2, a.NormMax()/lambda)
	y := a.Scale(1 / scale)
	e := mat.NewDense(r, c)
	var d *mat.Dense
	res := &Result{}

	for k := 0; k < maxIter; k++ {
		// D-step: SVT of A − E + Y/μ at threshold 1/μ.
		t := a.Sub(e)
		t.AddInPlace(y.Scale(1 / mu))
		var rank int
		d, rank = t.SVT(1 / mu)

		// E-step: soft threshold of A − D + Y/μ at λ/μ.
		t = a.Sub(d)
		t.AddInPlace(y.Scale(1 / mu))
		e = t.SoftThreshold(lambda / mu)

		// Multiplier and penalty updates.
		z := a.Sub(d)
		z.SubInPlace(e)
		y.AddInPlace(z.Scale(mu))
		mu = math.Min(rho*mu, muBar)

		res.Iterations = k + 1
		res.RankD = rank
		if z.NormFrobenius() <= tol*math.Max(1, normAF) {
			res.Converged = true
			break
		}
	}
	res.D = d
	res.E = e
	return res, nil
}
