package mpi

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"netconstant/internal/mat"
	"netconstant/internal/netmodel"
	"netconstant/internal/simnet"
	"netconstant/internal/topo"
)

// uniformPerf builds an N-rank performance matrix where every link has the
// same α and β.
func uniformPerf(n int, alpha, beta float64) *netmodel.PerfMatrix {
	pm := netmodel.NewPerfMatrix(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				pm.SetLink(i, j, netmodel.Link{Alpha: alpha, Beta: beta})
			}
		}
	}
	return pm
}

func TestBinomialTreeStructure(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 7, 8, 16, 25} {
		for _, root := range []int{0, n / 2, n - 1} {
			tr := BinomialTree(n, root)
			if err := tr.Validate(); err != nil {
				t.Fatalf("n=%d root=%d: %v", n, root, err)
			}
			// Binomial tree depth is ⌊log₂ n⌋ (the round count is
			// ⌈log₂ n⌉, but the deepest chain has ⌊log₂ n⌋ edges).
			wantDepth := 0
			for 1<<(wantDepth+1) <= n {
				wantDepth++
			}
			if d := tr.Depth(); d != wantDepth {
				t.Errorf("n=%d: depth %d want %d", n, d, wantDepth)
			}
		}
	}
}

func TestBinomialSubtreeSizes(t *testing.T) {
	tr := BinomialTree(4, 0)
	sizes := tr.SubtreeSizes()
	if sizes[0] != 4 {
		t.Errorf("root subtree %d", sizes[0])
	}
	// First child of the root has the larger subtree (send order).
	kids := tr.Children[0]
	if len(kids) != 2 || sizes[kids[0]] < sizes[kids[1]] {
		t.Errorf("children %v sizes %v: first child should have the larger subtree", kids, sizes)
	}
}

func TestTreeValidateErrors(t *testing.T) {
	tr := BinomialTree(4, 0)
	tr.Root = 9
	if tr.Validate() == nil {
		t.Error("bad root")
	}
	tr = BinomialTree(4, 0)
	tr.Parent[0] = 2
	if tr.Validate() == nil {
		t.Error("root with parent")
	}
	tr = BinomialTree(4, 0)
	tr.Parent[3] = 0 // inconsistent with children lists
	if tr.Validate() == nil {
		t.Error("inconsistent parent")
	}
	mustPanic(t, func() { newEmptyTree(3, 5) })
}

func mustPanic(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	f()
}

// TestFNFPaperExample mirrors the running example of the paper's Fig 1:
// six machines, machine 0 as root (the paper's Machine 1), a weight matrix
// under which FNF picks machine 2 first, then machines 1 and 5, giving a
// longest path of total weight 5; raising the weight of the first-picked
// link restructures the tree and lengthens the critical path (Fig 1b /
// §III's motivation for individual link accuracy).
func TestFNFPaperExample(t *testing.T) {
	inf := 1e9
	w := mat.FromRows([][]float64{
		// to:  0    1    2    3    4    5
		{0, 3, 2, 4, 5, 6}, // from 0 (root)
		{3, 0, 4, 2, 5, 6}, // from 1
		{2, 4, 0, 5, 6, 2}, // from 2
		{4, 2, 5, 0, 6, 5}, // from 3
		{5, 5, 6, 6, 0, 4}, // from 4
		{6, 6, 2, 5, 4, 0}, // from 5
	})
	_ = inf
	tr := FNFTree(w, 0)
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	// Iteration 1: 0 picks 2 (weight 2).
	if tr.Parent[2] != 0 {
		t.Errorf("first pick should be machine 2, parents %v", tr.Parent)
	}
	// Iteration 2: 0 picks 1 (weight 3), 2 picks 5 (weight 2).
	if tr.Parent[1] != 0 || tr.Parent[5] != 2 {
		t.Errorf("second iteration parents %v", tr.Parent)
	}
	// Iteration 3: 0 picks 3 (weight 4)? 0's best remaining is 3 (4) vs 4
	// (5) → 3; then 2 picks 4 (6) vs 1 picks 4 (5) — order is selection
	// order: 0, 2, 1 → 0 takes 3, 2 takes 4 (weight 6)... check tree is
	// fully valid and longest path matches the hand computation.
	got := tr.LongestPathWeight(w)
	want := 8.0 // 0->2 (2) + 2->4 (6)
	if tr.Parent[4] == 1 {
		want = 8 // 1 path 0->1(3)+1->4(5)
	}
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("longest path %v want %v (parents %v)", got, want, tr.Parent)
	}

	// The paper's second point: changing one link weight restructures the
	// tree and can lengthen the critical path.
	w2 := w.Clone()
	w2.Set(0, 2, 4.5)
	tr2 := FNFTree(w2, 0)
	if tr2.Parent[2] == 0 && tr2.Parent[1] == 0 && tr2.Parent[5] == 2 {
		t.Error("perturbed weights should change the FNF structure")
	}
	if err := tr2.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestFNFPrefersGoodLinks(t *testing.T) {
	// FNF always doubles the sender set each iteration (binomial shape),
	// but within each iteration every sender grabs its cheapest remaining
	// link. With the root's links far cheaper than everyone else's, the
	// root must pick greedily in index order: 1, then 2, then 4 (three
	// iterations → root has 3 children).
	n := 6
	w := mat.NewDense(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			if i == 0 {
				w.Set(i, j, float64(j)) // root prefers low indices
			} else {
				w.Set(i, j, 100+float64(j))
			}
		}
	}
	tr := FNFTree(w, 0)
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	kids := tr.Children[0]
	if len(kids) != 3 || kids[0] != 1 || kids[1] != 2 {
		t.Errorf("root children %v: greedy order violated", kids)
	}
	// Every non-root sender also picked its cheapest available link
	// (weights 100+j prefer low j).
	for v := 1; v < n; v++ {
		if tr.Parent[v] == -1 {
			t.Errorf("node %d unattached", v)
		}
	}
	mustPanic(t, func() { FNFTree(mat.NewDense(2, 3), 0) })
}

func TestTopologyAwareTree(t *testing.T) {
	dc := topo.NewTree(topo.TreeConfig{Racks: 3, ServersPerRack: 4})
	srv := dc.Servers()
	// 9 ranks over 3 racks.
	hosts := []int{srv[0], srv[1], srv[2], srv[4], srv[5], srv[6], srv[8], srv[9], srv[10]}
	tr := TopologyAwareTree(dc, hosts, 0)
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	// Each rank's first member relays for its rack: members of rack 1
	// (ranks 3,4,5) must be reachable without leaving {3,4,5} except via
	// the representative 3.
	for _, rank := range []int{4, 5} {
		if p := tr.Parent[rank]; p != 3 && p != 4 {
			t.Errorf("rank %d should have an intra-rack parent, got %d", rank, p)
		}
	}
	// Representative of rack 1 hangs off an inter-rack edge.
	if tr.Parent[3] != 0 && tr.Parent[3] != 6 {
		t.Errorf("rack-1 representative parent %d", tr.Parent[3])
	}
}

func TestRingOrder(t *testing.T) {
	r := RingOrder(4, 2)
	want := []int{2, 3, 0, 1}
	for i := range want {
		if r[i] != want[i] {
			t.Fatalf("ring %v", r)
		}
	}
}

func TestBroadcastTimingUniform(t *testing.T) {
	// Uniform α=0, β=1 network: binomial broadcast of m bytes over
	// 2^k ranks takes exactly k·m.
	for _, k := range []int{1, 2, 3} {
		n := 1 << k
		net := NewAnalyticNet(uniformPerf(n, 0, 1))
		el := RunCollective(net, BinomialTree(n, 0), Broadcast, 10)
		want := float64(k) * 10
		if math.Abs(el-want) > 1e-9 {
			t.Errorf("n=%d broadcast elapsed %v want %v", n, el, want)
		}
	}
}

func TestScatterTimingUniform(t *testing.T) {
	// Uniform α=0, β=1: single-port binomial scatter of per-rank chunk m
	// takes (n−1)·m.
	n := 8
	net := NewAnalyticNet(uniformPerf(n, 0, 1))
	el := RunCollective(net, BinomialTree(n, 0), Scatter, 5)
	want := float64(n-1) * 5
	if math.Abs(el-want) > 1e-9 {
		t.Errorf("scatter elapsed %v want %v", el, want)
	}
}

func TestGatherReduceDuality(t *testing.T) {
	// On a symmetric uniform network, gather mirrors scatter and reduce
	// mirrors broadcast (the paper observes matching results for duals).
	n := 8
	tr := BinomialTree(n, 0)
	scatter := RunCollective(NewAnalyticNet(uniformPerf(n, 0.001, 2)), tr, Scatter, 7)
	gather := RunCollective(NewAnalyticNet(uniformPerf(n, 0.001, 2)), tr, Gather, 7)
	if math.Abs(scatter-gather) > 1e-9 {
		t.Errorf("gather %v vs scatter %v", gather, scatter)
	}
	bcast := RunCollective(NewAnalyticNet(uniformPerf(n, 0.001, 2)), tr, Broadcast, 7)
	reduce := RunCollective(NewAnalyticNet(uniformPerf(n, 0.001, 2)), tr, Reduce, 7)
	if math.Abs(bcast-reduce) > 1e-9 {
		t.Errorf("reduce %v vs broadcast %v", reduce, bcast)
	}
}

func TestBroadcastSingleRank(t *testing.T) {
	net := NewAnalyticNet(uniformPerf(1, 0, 1))
	if el := RunCollective(net, BinomialTree(1, 0), Broadcast, 100); el != 0 {
		t.Errorf("single-rank broadcast %v", el)
	}
}

func TestAllToAll(t *testing.T) {
	n := 4
	tr := BinomialTree(n, 0)
	net := NewAnalyticNet(uniformPerf(n, 0, 1))
	el := RunAllToAll(net, tr, tr, 3)
	g := RunCollective(NewAnalyticNet(uniformPerf(n, 0, 1)), tr, Gather, 3)
	b := RunCollective(NewAnalyticNet(uniformPerf(n, 0, 1)), tr, Broadcast, float64(n)*3)
	if math.Abs(el-(g+b)) > 1e-9 {
		t.Errorf("alltoall %v want %v", el, g+b)
	}
}

func TestCollectiveString(t *testing.T) {
	names := map[Collective]string{Broadcast: "broadcast", Scatter: "scatter", Gather: "gather", Reduce: "reduce"}
	for c, want := range names {
		if c.String() != want {
			t.Errorf("%v", c)
		}
	}
	if Collective(99).String() == "" {
		t.Error("unknown collective string")
	}
}

func TestAnalyticNetPanics(t *testing.T) {
	net := NewAnalyticNet(uniformPerf(3, 0, 1))
	mustPanic(t, func() { net.Send(1, 1, 5, nil) })
	mustPanic(t, func() { net.Send(0, 9, 5, nil) })
	mustPanic(t, func() { RunCollective(net, BinomialTree(3, 0), Collective(42), 1) })
}

func TestFNFBeatsBinomialOnHeterogeneousNetwork(t *testing.T) {
	// The core premise: with uneven pair-wise performance, FNF broadcast
	// beats the blind binomial tree on average.
	rng := rand.New(rand.NewSource(11))
	n := 16
	var fnfSum, binSum float64
	trials := 20
	for tr := 0; tr < trials; tr++ {
		pm := netmodel.NewPerfMatrix(n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if i == j {
					continue
				}
				// Bandwidth spans two orders of magnitude.
				beta := math.Pow(10, 6+2*rng.Float64())
				pm.SetLink(i, j, netmodel.Link{Alpha: 1e-4, Beta: beta})
			}
		}
		msg := 1e6
		w := pm.Weights(msg)
		fnfSum += RunCollective(NewAnalyticNet(pm), FNFTree(w, 0), Broadcast, msg)
		binSum += RunCollective(NewAnalyticNet(pm), BinomialTree(n, 0), Broadcast, msg)
	}
	if fnfSum >= binSum {
		t.Errorf("FNF total %v should beat binomial %v", fnfSum, binSum)
	}
	improvement := (binSum - fnfSum) / binSum
	if improvement < 0.2 {
		t.Errorf("FNF improvement %.2f lower than expected on a heterogeneous net", improvement)
	}
}

func TestSimNetworkBroadcast(t *testing.T) {
	dc := topo.NewTree(topo.TreeConfig{Racks: 2, ServersPerRack: 4, IntraRackBps: 1e6, InterRackBps: 8e6, HopLatency: 1e-5})
	sim := simnet.New(dc)
	srv := dc.Servers()
	hosts := srv[:8]
	net := NewSimNetwork(sim, hosts)
	el := RunCollective(net, BinomialTree(8, 0), Broadcast, 1e5)
	if el <= 0 {
		t.Fatalf("elapsed %v", el)
	}
	// Lower bound: 3 sequential rounds of 0.1s each at full bandwidth.
	if el < 0.3 {
		t.Errorf("broadcast too fast: %v", el)
	}
	mustPanic(t, func() { net.Send(0, 0, 1, nil) })
}

func TestSimVsAnalyticAgreementWithoutContention(t *testing.T) {
	// With one flow at a time and matching α-β parameters, the simulator
	// and the analytic model should agree closely on broadcast time.
	dc := topo.NewTree(topo.TreeConfig{Racks: 1, ServersPerRack: 4, IntraRackBps: 1e6, HopLatency: 5e-5})
	sim := simnet.New(dc)
	hosts := dc.Servers()
	n := 4
	net := NewSimNetwork(sim, hosts)
	tr := BinomialTree(n, 0)
	msg := 1e5
	simTime := RunCollective(net, tr, Broadcast, msg)

	pm := netmodel.NewPerfMatrix(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				pm.SetLink(i, j, netmodel.Link{Alpha: 1e-4, Beta: 1e6})
			}
		}
	}
	anaTime := RunCollective(NewAnalyticNet(pm), tr, Broadcast, msg)
	if math.Abs(simTime-anaTime)/anaTime > 0.05 {
		t.Errorf("sim %v vs analytic %v", simTime, anaTime)
	}
}

func TestFNFTreeDegradedWeightsTerminates(t *testing.T) {
	// A fully degraded calibration leaves +Inf (unmeasured) and NaN
	// weights. FNF must still terminate with a complete tree — picking
	// unmeasured receivers smallest-index-first as a last resort —
	// instead of spinning with no receiver ever joining (the advise CLI
	// used to hang here under heavy probe loss).
	inf := math.Inf(1)
	cases := map[string]*mat.Dense{
		"all-inf": mat.FromRows([][]float64{
			{0, inf, inf, inf},
			{inf, 0, inf, inf},
			{inf, inf, 0, inf},
			{inf, inf, inf, 0},
		}),
		"nan-mixed": mat.FromRows([][]float64{
			{0, math.NaN(), inf, inf},
			{inf, 0, math.NaN(), inf},
			{inf, inf, 0, inf},
			{math.NaN(), inf, inf, 0},
		}),
		"one-finite-row": mat.FromRows([][]float64{
			{0, 2, inf, inf},
			{inf, 0, inf, inf},
			{inf, inf, 0, inf},
			{inf, inf, inf, 0},
		}),
	}
	for name, w := range cases {
		done := make(chan *Tree, 1)
		go func() { done <- FNFTree(w, 0) }()
		select {
		case tr := <-done:
			if err := tr.Validate(); err != nil {
				t.Errorf("%s: %v", name, err)
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("%s: FNFTree did not terminate", name)
		}
	}
}
