// Package mpi is an in-process message-passing runtime with simulated
// time. It provides the communication substrate of the paper's workloads:
// point-to-point transfers over either an analytic α-β network or the
// flow-level simulator, communication trees (MPICH2-style binomial, the
// FNF network-aware tree of Banikazemi et al., and a Kandalla/Subramoni-
// style topology-aware tree), and the collective operations evaluated in
// the paper — broadcast, scatter, gather, reduce, and the gather+broadcast
// all-to-all used by the N-body and CG applications.
package mpi

import (
	"fmt"

	"netconstant/internal/des"
	"netconstant/internal/netmodel"
	"netconstant/internal/simnet"
)

// Network abstracts the transport collectives run on. Ranks are VM
// indices. Implementations must invoke the done callback with the
// simulated completion time of each transfer.
type Network interface {
	// Now returns the current simulated time.
	Now() float64
	// Send starts a transfer of the given size between two ranks and
	// invokes done when the last byte arrives.
	Send(src, dst int, bytes float64, done func(at float64))
	// Run advances simulated time until every outstanding Send has
	// completed.
	Run()
}

// AnalyticNet executes transfers under the α-β model of a performance
// matrix: a transfer of n bytes on link (i, j) takes α_ij + n/β_ij,
// independent of other traffic. It is the estimator used both for
// planning (expected performance t′ in Algorithm 1) and for trace-replay
// experiments.
type AnalyticNet struct {
	eng         *des.Engine
	perf        *netmodel.PerfMatrix
	outstanding int
}

// NewAnalyticNet wraps a performance snapshot as an executable network.
func NewAnalyticNet(perf *netmodel.PerfMatrix) *AnalyticNet {
	return &AnalyticNet{eng: des.NewEngine(), perf: perf}
}

// Now returns the current simulated time.
func (a *AnalyticNet) Now() float64 { return a.eng.Now() }

// Send schedules the α-β completion of the transfer.
func (a *AnalyticNet) Send(src, dst int, bytes float64, done func(at float64)) {
	if src == dst {
		panic("mpi: send to self")
	}
	if src < 0 || src >= a.perf.N || dst < 0 || dst >= a.perf.N {
		panic(fmt.Sprintf("mpi: rank out of range: %d -> %d (N=%d)", src, dst, a.perf.N))
	}
	d := a.perf.Link(src, dst).TransferTime(bytes)
	a.outstanding++
	a.eng.After(d, func() {
		a.outstanding--
		if done != nil {
			done(a.eng.Now())
		}
	})
}

// Run drains the event queue.
func (a *AnalyticNet) Run() {
	for a.outstanding > 0 {
		if !a.eng.Step() {
			panic("mpi: analytic network stalled with outstanding sends")
		}
	}
}

// SimNetwork executes transfers as flows on the flow-level simulator, so
// concurrent tree edges and background traffic contend for link capacity —
// the execution mode of the paper's ns-2 experiments.
type SimNetwork struct {
	Sim         *simnet.Sim
	Hosts       []int // rank -> server node
	outstanding int
}

// NewSimNetwork wraps a simulator and a rank-to-server mapping.
func NewSimNetwork(sim *simnet.Sim, hosts []int) *SimNetwork {
	return &SimNetwork{Sim: sim, Hosts: hosts}
}

// Now returns the simulator clock.
func (s *SimNetwork) Now() float64 { return s.Sim.Now() }

// Send starts a flow between the ranks' hosts.
func (s *SimNetwork) Send(src, dst int, bytes float64, done func(at float64)) {
	if src == dst {
		panic("mpi: send to self")
	}
	s.outstanding++
	s.Sim.StartFlow(s.Hosts[src], s.Hosts[dst], bytes, func(at float64) {
		s.outstanding--
		if done != nil {
			done(at)
		}
	})
}

// Run steps the simulator until all collective transfers complete.
// Background flows keep the queue non-empty, so Run tracks its own
// outstanding count rather than draining the engine.
func (s *SimNetwork) Run() {
	for s.outstanding > 0 {
		if !s.Sim.Eng.Step() {
			panic("mpi: simulated network stalled with outstanding sends")
		}
	}
}
