package mpi

import (
	"fmt"

	"netconstant/internal/mat"
)

// This file implements the round-structured collective algorithms of
// Thakur & Rabenseifner ("Optimization of collective communication
// operations in MPICH", the paper's reference [39]): ring and
// recursive-doubling allgather, ring allreduce (reduce-scatter +
// allgather), pairwise-exchange all-to-all, and pipelined (segmented)
// broadcast. They extend the tree collectives with the algorithms an
// MPI library would actually select from, and give the network-aware
// planner more schedules to choose between.

// transfer is one point-to-point message inside a round.
type transfer struct {
	src, dst int
	bytes    float64
}

// runRounds executes a schedule of synchronized rounds: all transfers of a
// round start together, and the next round begins when every transfer of
// the current round has completed (the barrier-synchronized model used for
// analyzing round-based collectives). Returns the elapsed time.
func runRounds(net Network, rounds [][]transfer) float64 {
	start := net.Now()
	var runRound func(r int)
	done := start
	runRound = func(r int) {
		if r >= len(rounds) {
			return
		}
		pending := len(rounds[r])
		if pending == 0 {
			runRound(r + 1)
			return
		}
		for _, t := range rounds[r] {
			net.Send(t.src, t.dst, t.bytes, func(at float64) {
				if at > done {
					done = at
				}
				pending--
				if pending == 0 {
					runRound(r + 1)
				}
			})
		}
	}
	runRound(0)
	net.Run()
	return done - start
}

// RingAllgather implements the bandwidth-optimal ring allgather: in each
// of n−1 rounds, every rank forwards the newest block it holds to its
// right neighbour. order gives the ring permutation (ranks in ring
// positions); chunkBytes is the per-rank contribution. Returns elapsed
// time.
func RingAllgather(net Network, order []int, chunkBytes float64) float64 {
	n := len(order)
	if n < 2 {
		return 0
	}
	rounds := make([][]transfer, n-1)
	for r := 0; r < n-1; r++ {
		round := make([]transfer, 0, n)
		for i := 0; i < n; i++ {
			round = append(round, transfer{src: order[i], dst: order[(i+1)%n], bytes: chunkBytes})
		}
		rounds[r] = round
	}
	return runRounds(net, rounds)
}

// RecursiveDoublingAllgather implements the latency-optimal
// recursive-doubling allgather for a power-of-two number of ranks: in
// round k, rank i exchanges all data gathered so far with rank i XOR 2^k,
// so the payload doubles every round. For non-power-of-two rank counts it
// falls back to the ring algorithm. order maps algorithm positions to
// ranks.
func RecursiveDoublingAllgather(net Network, order []int, chunkBytes float64) float64 {
	n := len(order)
	if n < 2 {
		return 0
	}
	if n&(n-1) != 0 {
		return RingAllgather(net, order, chunkBytes)
	}
	var rounds [][]transfer
	for k := 1; k < n; k <<= 1 {
		round := make([]transfer, 0, n)
		for i := 0; i < n; i++ {
			peer := i ^ k
			// Both directions of the exchange.
			round = append(round, transfer{src: order[i], dst: order[peer], bytes: float64(k) * chunkBytes})
		}
		rounds = append(rounds, round)
	}
	return runRounds(net, rounds)
}

// RingAllreduce implements the bandwidth-optimal ring allreduce:
// a reduce-scatter phase (n−1 rounds of one chunk each) followed by a ring
// allgather (another n−1 rounds). totalBytes is the full vector size; each
// round moves totalBytes/n per rank. Returns elapsed time.
func RingAllreduce(net Network, order []int, totalBytes float64) float64 {
	n := len(order)
	if n < 2 {
		return 0
	}
	chunk := totalBytes / float64(n)
	rounds := make([][]transfer, 0, 2*(n-1))
	for phase := 0; phase < 2; phase++ {
		for r := 0; r < n-1; r++ {
			round := make([]transfer, 0, n)
			for i := 0; i < n; i++ {
				round = append(round, transfer{src: order[i], dst: order[(i+1)%n], bytes: chunk})
			}
			rounds = append(rounds, round)
		}
	}
	return runRounds(net, rounds)
}

// PairwiseAlltoall implements the pairwise-exchange all-to-all: in round
// k (k = 1..n−1), rank i exchanges its dedicated chunk with rank
// (i + k) mod n. chunkBytes is the per-destination chunk size. Returns
// elapsed time.
func PairwiseAlltoall(net Network, order []int, chunkBytes float64) float64 {
	n := len(order)
	if n < 2 {
		return 0
	}
	rounds := make([][]transfer, n-1)
	for k := 1; k < n; k++ {
		round := make([]transfer, 0, n)
		for i := 0; i < n; i++ {
			round = append(round, transfer{src: order[i], dst: order[(i+k)%n], bytes: chunkBytes})
		}
		rounds[k-1] = round
	}
	return runRounds(net, rounds)
}

// PipelinedBroadcast streams the message down a chain in `segments`
// equal pieces: the head holds the data and each node forwards a segment
// to its successor as soon as it has received it (and has finished
// forwarding the previous segment). With S segments over a chain of
// length L, the analytic time is (S + L − 1) segment-transfer times —
// far better than a binomial tree for large messages on uniform networks.
// chain lists the ranks in order, chain[0] being the root.
func PipelinedBroadcast(net Network, chain []int, msgBytes float64, segments int) float64 {
	n := len(chain)
	if n < 2 || msgBytes <= 0 {
		return 0
	}
	if segments < 1 {
		segments = 1
	}
	segBytes := msgBytes / float64(segments)
	start := net.Now()
	finish := start

	// sendSeg(i, s) forwards segment s from chain[i] to chain[i+1] once
	// both the segment has arrived at i and link i->i+1 is free.
	// arrived[i] = number of segments fully received by node i;
	// busy[i] = whether link i->i+1 is currently transmitting;
	// sent[i] = segments already forwarded on link i.
	arrived := make([]int, n)
	arrived[0] = segments
	busy := make([]bool, n)
	sent := make([]int, n)

	var pump func(i int)
	pump = func(i int) {
		if i >= n-1 || busy[i] || sent[i] >= segments || sent[i] >= arrived[i] {
			return
		}
		busy[i] = true
		net.Send(chain[i], chain[i+1], segBytes, func(at float64) {
			busy[i] = false
			sent[i]++
			arrived[i+1]++
			if i+1 == n-1 && arrived[i+1] == segments && at > finish {
				finish = at
			}
			pump(i)     // next segment on this link
			pump(i + 1) // wake the downstream link
		})
	}
	pump(0)
	net.Run()
	return finish - start
}

// ChainFromWeights orders ranks into a low-weight chain greedily: starting
// at root, repeatedly append the unvisited rank with the smallest weight
// from the current tail — the pipelined-broadcast analogue of FNF.
func ChainFromWeights(w *mat.Dense, root int) []int {
	n := w.Rows()
	if root < 0 || root >= n {
		panic(fmt.Sprintf("mpi: chain root %d out of range", root))
	}
	chain := make([]int, 0, n)
	used := make([]bool, n)
	cur := root
	used[cur] = true
	chain = append(chain, cur)
	for len(chain) < n {
		best, bestW := -1, 0.0
		for v := 0; v < n; v++ {
			if used[v] {
				continue
			}
			if best < 0 || w.At(cur, v) < bestW {
				best, bestW = v, w.At(cur, v)
			}
		}
		used[best] = true
		chain = append(chain, best)
		cur = best
	}
	return chain
}

// AutoBroadcast picks between the binomial tree and a pipelined chain the
// way an MPI library switches algorithms by message size: small messages
// are latency-bound (binomial, log n rounds), large messages are
// bandwidth-bound (pipelined chain). It plans both from the weight matrix
// and returns the better schedule's elapsed time together with the name of
// the winner. The estimate network supplies planning costs; the exec
// network is charged for the chosen schedule.
func AutoBroadcast(estimate func() Network, exec Network, w *mat.Dense, root int, msgBytes float64, segments int) (float64, string) {
	tree := FNFTree(w, root)
	chain := ChainFromWeights(w, root)

	treeTime := RunCollective(estimate(), tree, Broadcast, msgBytes)
	chainTime := PipelinedBroadcast(estimate(), chain, msgBytes, segments)
	if treeTime <= chainTime {
		return RunCollective(exec, tree, Broadcast, msgBytes), "binomial"
	}
	return PipelinedBroadcast(exec, chain, msgBytes, segments), "pipelined"
}
