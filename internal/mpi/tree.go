package mpi

import (
	"fmt"
	"math"

	"netconstant/internal/mat"
	"netconstant/internal/topo"
)

// Tree is a rooted communication tree over n ranks. Children are stored in
// send order: a parent transmits to Children[node][0] first, and a child
// picked earlier relays to a larger subtree.
type Tree struct {
	Root     int
	Parent   []int // Parent[Root] == -1
	Children [][]int
}

// NumRanks returns the number of ranks spanned by the tree.
func (t *Tree) NumRanks() int { return len(t.Parent) }

// Validate checks structural invariants: exactly one root, every non-root
// has a parent consistent with the children lists, and the tree is
// connected and acyclic.
func (t *Tree) Validate() error {
	n := len(t.Parent)
	if t.Root < 0 || t.Root >= n {
		return fmt.Errorf("mpi: root %d out of range", t.Root)
	}
	if t.Parent[t.Root] != -1 {
		return fmt.Errorf("mpi: root has parent %d", t.Parent[t.Root])
	}
	childCount := 0
	for node, kids := range t.Children {
		for _, c := range kids {
			if c < 0 || c >= n {
				return fmt.Errorf("mpi: child %d out of range", c)
			}
			if t.Parent[c] != node {
				return fmt.Errorf("mpi: child %d of %d has parent %d", c, node, t.Parent[c])
			}
			childCount++
		}
	}
	if childCount != n-1 {
		return fmt.Errorf("mpi: %d edges for %d ranks", childCount, n)
	}
	// Reachability from the root.
	seen := make([]bool, n)
	stack := []int{t.Root}
	seen[t.Root] = true
	count := 0
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		count++
		for _, c := range t.Children[v] {
			if seen[c] {
				return fmt.Errorf("mpi: node %d reached twice", c)
			}
			seen[c] = true
			stack = append(stack, c)
		}
	}
	if count != n {
		return fmt.Errorf("mpi: only %d of %d ranks reachable", count, n)
	}
	return nil
}

// SubtreeSizes returns, for every node, the number of ranks in its subtree
// (including itself) — the chunk multiplier for tree-based scatter/gather.
func (t *Tree) SubtreeSizes() []int {
	n := len(t.Parent)
	sizes := make([]int, n)
	var walk func(v int) int
	walk = func(v int) int {
		s := 1
		for _, c := range t.Children[v] {
			s += walk(c)
		}
		sizes[v] = s
		return s
	}
	walk(t.Root)
	return sizes
}

// Depth returns the maximum number of edges from the root to any node.
func (t *Tree) Depth() int {
	var walk func(v int) int
	walk = func(v int) int {
		d := 0
		for _, c := range t.Children[v] {
			if cd := walk(c) + 1; cd > d {
				d = cd
			}
		}
		return d
	}
	return walk(t.Root)
}

// LongestPathWeight returns the maximum root-to-leaf sum of edge weights —
// the "total weight of the longest path" of the paper's Fig 1 example.
func (t *Tree) LongestPathWeight(w *mat.Dense) float64 {
	var walk func(v int) float64
	walk = func(v int) float64 {
		best := 0.0
		for _, c := range t.Children[v] {
			if d := w.At(v, c) + walk(c); d > best {
				best = d
			}
		}
		return best
	}
	return walk(t.Root)
}

func newEmptyTree(n, root int) *Tree {
	if root < 0 || root >= n {
		panic(fmt.Sprintf("mpi: root %d out of range for %d ranks", root, n))
	}
	t := &Tree{Root: root, Parent: make([]int, n), Children: make([][]int, n)}
	for i := range t.Parent {
		t.Parent[i] = -1
	}
	return t
}

func (t *Tree) addEdge(parent, child int) {
	t.Parent[child] = parent
	t.Children[parent] = append(t.Children[parent], child)
}

// BinomialTree builds the MPICH2 baseline binomial tree: in round k the
// 2^k ranks that already hold the data each transmit to the rank 2^k
// positions away (mod n, relative to the root). It ignores network
// performance entirely — the paper's Baseline.
func BinomialTree(n, root int) *Tree {
	t := newEmptyTree(n, root)
	for mask := 1; mask < n; mask <<= 1 {
		for rel := 0; rel < mask && rel+mask < n; rel++ {
			src := (root + rel) % n
			dst := (root + rel + mask) % n
			t.addEdge(src, dst)
		}
	}
	return t
}

// FNFTree builds the Fastest-Node-First binomial tree of Banikazemi et
// al., the paper's network-performance-aware tree (§II-C): in each
// iteration every already-selected machine, in selection order, grabs the
// unselected machine with the best (smallest) weight to it.
func FNFTree(w *mat.Dense, root int) *Tree {
	n := w.Rows()
	if w.Cols() != n {
		panic("mpi: FNF weight matrix must be square")
	}
	t := newEmptyTree(n, root)
	selected := []int{root}
	inU := make([]bool, n)
	for i := 0; i < n; i++ {
		inU[i] = i != root
	}
	remaining := n - 1
	for remaining > 0 {
		// One iteration: each sender (in selection order) picks at most one
		// receiver; receivers join `selected` only after the iteration.
		var joined []int
		for _, s := range selected {
			if remaining == 0 {
				break
			}
			// Pick the best receiver. Unmeasured pairs carry +Inf (or NaN)
			// weights; they are only ever picked when a sender has no
			// finite-weight candidate left, smallest index first, so a
			// degraded weight matrix still yields a complete tree instead
			// of looping forever with no receiver joining.
			best := -1
			bestW := math.Inf(1)
			for u := 0; u < n; u++ {
				if !inU[u] {
					continue
				}
				wu := w.At(s, u)
				if math.IsNaN(wu) {
					wu = math.Inf(1)
				}
				if best < 0 || wu < bestW {
					bestW = wu
					best = u
				}
			}
			if best < 0 {
				break
			}
			inU[best] = false
			remaining--
			t.addEdge(s, best)
			joined = append(joined, best)
		}
		selected = append(selected, joined...)
	}
	return t
}

// TopologyAwareTree builds a two-level tree from static topology
// knowledge, in the spirit of Kandalla et al. and Subramoni et al.: one
// representative per rack forms an inter-rack binomial tree rooted at the
// root's rack, and each representative runs an intra-rack binomial tree.
// It uses rack membership only (no measured performance) — the "Topology"
// comparison of the paper's simulations (§V-E).
func TopologyAwareTree(t *topo.Topology, hosts []int, root int) *Tree {
	n := len(hosts)
	tree := newEmptyTree(n, root)

	// Group ranks by rack, the root's rack first.
	rackOf := func(rank int) int { return t.Node(hosts[rank]).Rack }
	rackMembers := map[int][]int{}
	var rackOrder []int
	seen := map[int]bool{}
	// Root's rack first, then others in rank order for determinism.
	order := make([]int, 0, n)
	order = append(order, root)
	for r := 0; r < n; r++ {
		if r != root {
			order = append(order, r)
		}
	}
	for _, rank := range order {
		rk := rackOf(rank)
		if !seen[rk] {
			seen[rk] = true
			rackOrder = append(rackOrder, rk)
		}
		rackMembers[rk] = append(rackMembers[rk], rank)
	}

	// Representatives: the first member of each rack (the root for its own
	// rack).
	reps := make([]int, len(rackOrder))
	for i, rk := range rackOrder {
		reps[i] = rackMembers[rk][0]
	}

	// Binomial tree among representatives (rep 0 is the root).
	nr := len(reps)
	for mask := 1; mask < nr; mask <<= 1 {
		for rel := 0; rel < mask && rel+mask < nr; rel++ {
			tree.addEdge(reps[rel], reps[rel+mask])
		}
	}

	// Intra-rack binomial trees below each representative.
	for _, rk := range rackOrder {
		members := rackMembers[rk]
		nm := len(members)
		for mask := 1; mask < nm; mask <<= 1 {
			for rel := 0; rel < mask && rel+mask < nm; rel++ {
				tree.addEdge(members[rel], members[rel+mask])
			}
		}
	}
	return tree
}

// RingOrder returns ranks in a ring starting at root — used by the ring
// mapping baseline in the topology-mapping workload.
func RingOrder(n, root int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = (root + i) % n
	}
	return out
}
