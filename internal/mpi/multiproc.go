package mpi

import (
	"fmt"

	"netconstant/internal/mat"
	"netconstant/internal/netmodel"
)

// The paper assumes one process per machine and notes that "the extension
// to multiple processes per machine is straightforward" (§II-C). This file
// provides that extension: rank-level performance matrices expanded from
// machine-level ones, with co-located ranks connected by a fast loopback
// link, so every tree algorithm and collective works unchanged on ranks.

// Placement maps ranks to machines: MachineOf[rank] = machine index.
type Placement struct {
	MachineOf []int
	machines  int
}

// NewPlacement validates and wraps a rank→machine assignment over
// `machines` machines.
func NewPlacement(machineOf []int, machines int) (*Placement, error) {
	if len(machineOf) == 0 {
		return nil, fmt.Errorf("mpi: empty placement")
	}
	for r, m := range machineOf {
		if m < 0 || m >= machines {
			return nil, fmt.Errorf("mpi: rank %d on machine %d out of range [0,%d)", r, m, machines)
		}
	}
	return &Placement{MachineOf: machineOf, machines: machines}, nil
}

// RoundRobinPlacement assigns rank r to machine r mod machines — the
// interleaved layout MPI launchers often default to.
func RoundRobinPlacement(machines, perMachine int) *Placement {
	mo := make([]int, machines*perMachine)
	for r := range mo {
		mo[r] = r % machines
	}
	return &Placement{MachineOf: mo, machines: machines}
}

// BlockPlacement assigns ranks to machines in contiguous blocks of
// perMachine ranks (machine 0 gets ranks 0..p−1, etc.).
func BlockPlacement(machines, perMachine int) *Placement {
	mo := make([]int, machines*perMachine)
	for r := range mo {
		mo[r] = r / perMachine
	}
	return &Placement{MachineOf: mo, machines: machines}
}

// Ranks returns the number of ranks.
func (p *Placement) Ranks() int { return len(p.MachineOf) }

// Machines returns the number of machines.
func (p *Placement) Machines() int { return p.machines }

// Colocated reports whether two ranks share a machine.
func (p *Placement) Colocated(a, b int) bool {
	return p.MachineOf[a] == p.MachineOf[b]
}

// ExpandPerf lifts a machine-level performance matrix to rank level:
// ranks on different machines inherit their machines' link, co-located
// ranks get the loopback link `local` (shared-memory transfer: very high
// bandwidth, very low latency).
func ExpandPerf(machine *netmodel.PerfMatrix, p *Placement, local netmodel.Link) *netmodel.PerfMatrix {
	if p.machines != machine.N {
		panic(fmt.Sprintf("mpi: placement spans %d machines, perf matrix has %d", p.machines, machine.N))
	}
	n := p.Ranks()
	out := netmodel.NewPerfMatrix(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			if p.Colocated(i, j) {
				out.SetLink(i, j, local)
				continue
			}
			out.SetLink(i, j, machine.Link(p.MachineOf[i], p.MachineOf[j]))
		}
	}
	return out
}

// ExpandWeights lifts a machine-level weight matrix to rank level with
// localWeight for co-located pairs, for tree algorithms that take weights
// directly.
func ExpandWeights(machineW *mat.Dense, p *Placement, localWeight float64) *mat.Dense {
	if p.machines != machineW.Rows() {
		panic("mpi: placement/weight size mismatch")
	}
	n := p.Ranks()
	out := mat.NewDense(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			if p.Colocated(i, j) {
				out.Set(i, j, localWeight)
				continue
			}
			out.Set(i, j, machineW.At(p.MachineOf[i], p.MachineOf[j]))
		}
	}
	return out
}

// FNFTreeMultiProcess builds a rank-level broadcast tree for a
// multi-process placement hierarchically: an FNF tree over machines
// (network-aware link selection where it matters) with one representative
// rank per machine, and a binomial tree among the co-located ranks under
// each representative (shared-memory fanout). The result pays exactly
// machines−1 network edges.
//
// Running FNF directly on loopback-expanded rank weights does NOT achieve
// this: FNF's doubling forces every selected rank to grab a receiver each
// iteration, so once a machine's local ranks are exhausted its senders
// are pushed onto network links prematurely. The hierarchical composition
// is the natural "multiple processes per machine" extension the paper
// alludes to in §II-C.
func FNFTreeMultiProcess(machineW *mat.Dense, p *Placement, root int) *Tree {
	machines := p.Machines()
	if machineW.Rows() != machines {
		panic("mpi: placement/weight size mismatch")
	}
	rootMachine := p.MachineOf[root]
	mt := FNFTree(machineW, rootMachine)

	// Group ranks by machine; the root leads its own machine, otherwise
	// the lowest rank does.
	members := make([][]int, machines)
	for r, m := range p.MachineOf {
		members[m] = append(members[m], r)
	}
	rep := make([]int, machines)
	for m := range rep {
		if len(members[m]) == 0 {
			rep[m] = -1
			continue
		}
		rep[m] = members[m][0]
	}
	rep[rootMachine] = root

	tree := newEmptyTree(p.Ranks(), root)
	// Machine-level edges between representatives, in FNF order.
	var walk func(m int)
	walk = func(m int) {
		for _, child := range mt.Children[m] {
			if rep[child] >= 0 && rep[m] >= 0 {
				tree.addEdge(rep[m], rep[child])
			}
			walk(child)
		}
	}
	walk(rootMachine)

	// Intra-machine binomial fanout below each representative.
	for m := 0; m < machines; m++ {
		locals := members[m]
		if len(locals) < 2 {
			continue
		}
		// Order locals with the representative first.
		ordered := make([]int, 0, len(locals))
		ordered = append(ordered, rep[m])
		for _, r := range locals {
			if r != rep[m] {
				ordered = append(ordered, r)
			}
		}
		for mask := 1; mask < len(ordered); mask <<= 1 {
			for rel := 0; rel < mask && rel+mask < len(ordered); rel++ {
				tree.addEdge(ordered[rel], ordered[rel+mask])
			}
		}
	}
	return tree
}

// CrossMachineEdges counts tree edges that cross machines — the network
// transfers a schedule will actually pay for.
func CrossMachineEdges(t *Tree, p *Placement) int {
	n := t.NumRanks()
	count := 0
	for v := 0; v < n; v++ {
		if t.Parent[v] >= 0 && !p.Colocated(v, t.Parent[v]) {
			count++
		}
	}
	return count
}
