package mpi

import (
	"math"
	"testing"

	"netconstant/internal/netmodel"
)

func TestRoundRobinPlacement(t *testing.T) {
	p := RoundRobinPlacement(3, 2)
	if p.MachineOf[0] != 0 || p.MachineOf[1] != 1 || p.MachineOf[3] != 0 {
		t.Errorf("round robin assignment %v", p.MachineOf)
	}
}

func TestFNFTreeMultiProcessValidAndRooted(t *testing.T) {
	machineW := uniformPerf(3, 0, 1).Weights(10)
	p := RoundRobinPlacement(3, 3)
	// Root on a non-zero machine.
	tree := FNFTreeMultiProcess(machineW, p, 4)
	if err := tree.Validate(); err != nil {
		t.Fatal(err)
	}
	if tree.Root != 4 {
		t.Error("root rank")
	}
	if got := CrossMachineEdges(tree, p); got != 2 {
		t.Errorf("cross edges %d want 2", got)
	}
	mustPanic(t, func() { FNFTreeMultiProcess(machineW, BlockPlacement(4, 1), 0) })
}

func TestPlacementBasics(t *testing.T) {
	p := BlockPlacement(3, 2)
	if p.Ranks() != 6 || p.Machines() != 3 {
		t.Fatal("block placement shape")
	}
	if !p.Colocated(0, 1) || p.Colocated(1, 2) {
		t.Error("colocated")
	}
	if _, err := NewPlacement([]int{0, 1, 5}, 3); err == nil {
		t.Error("out-of-range machine should error")
	}
	if _, err := NewPlacement(nil, 3); err == nil {
		t.Error("empty placement should error")
	}
	if pl, err := NewPlacement([]int{0, 2, 1}, 3); err != nil || pl.Ranks() != 3 {
		t.Error("valid placement rejected")
	}
}

func TestExpandPerf(t *testing.T) {
	machine := uniformPerf(2, 1e-3, 1e6)
	p := BlockPlacement(2, 2)
	local := netmodel.Link{Alpha: 1e-6, Beta: 1e10}
	rank := ExpandPerf(machine, p, local)
	if rank.N != 4 {
		t.Fatal("expanded size")
	}
	// Co-located ranks 0,1 get the loopback.
	if rank.Link(0, 1) != local {
		t.Error("loopback link")
	}
	// Cross-machine ranks inherit the machine link.
	if rank.Link(0, 2).Beta != 1e6 {
		t.Error("network link")
	}
	mustPanic(t, func() { ExpandPerf(machine, BlockPlacement(3, 1), local) })
}

func TestExpandWeights(t *testing.T) {
	machine := uniformPerf(2, 0, 1).Weights(10)
	p := BlockPlacement(2, 3)
	w := ExpandWeights(machine, p, 0.001)
	if w.Rows() != 6 {
		t.Fatal("size")
	}
	if w.At(0, 1) != 0.001 || w.At(0, 3) != 10 {
		t.Errorf("weights: local %v network %v", w.At(0, 1), w.At(0, 3))
	}
	mustPanic(t, func() { ExpandWeights(machine, BlockPlacement(3, 1), 1) })
}

func TestFNFTreeMultiProcessPrefersLocalFanout(t *testing.T) {
	// 4 machines × 4 ranks: the FNF tree should pay for far fewer network
	// edges than machines-1 × per-machine ranks would naively suggest —
	// ideally machines−1 cross edges (one network hop per machine).
	machines, per := 4, 4
	machineW := uniformPerf(machines, 0, 1).Weights(100)
	p := BlockPlacement(machines, per)
	tree := FNFTreeMultiProcess(machineW, p, 0)
	if err := tree.Validate(); err != nil {
		t.Fatal(err)
	}
	cross := CrossMachineEdges(tree, p)
	if cross != machines-1 {
		t.Errorf("cross-machine edges %d, want %d (local fanout first)", cross, machines-1)
	}
}

func TestMultiProcessBroadcastBeatsNaive(t *testing.T) {
	// Broadcast over 16 ranks on 4 machines with *heterogeneous* machine
	// links: the placement-aware tree pays machines−1 network transfers
	// over the best links; a placement-blind binomial tree under
	// round-robin placement crosses machines on arbitrary (possibly slow)
	// links many more times.
	machines, per := 4, 4
	machinePerf := uniformPerf(machines, 1e-3, 1e6)
	// Links touching machine 3 are 10× slower, except the decent path in
	// from machine 1.
	for m := 0; m < machines-1; m++ {
		machinePerf.SetLink(m, 3, netmodel.Link{Alpha: 1e-3, Beta: 1e5})
		machinePerf.SetLink(3, m, netmodel.Link{Alpha: 1e-3, Beta: 1e5})
	}
	machinePerf.SetLink(1, 3, netmodel.Link{Alpha: 1e-3, Beta: 8e5})
	// A shuffled placement: rank-order neighbours land on arbitrary
	// machines, so the blind binomial tree crosses machines on whatever
	// links rank order happens to hit (including the slow ones).
	p, err := NewPlacement([]int{0, 1, 2, 3, 3, 2, 1, 0, 0, 1, 2, 3, 3, 2, 1, 0}, machines)
	if err != nil {
		t.Fatal(err)
	}
	_ = per
	local := netmodel.Link{Alpha: 1e-6, Beta: 1e10}
	rankPerf := ExpandPerf(machinePerf, p, local)

	msg := 1e6
	aware := FNFTreeMultiProcess(machinePerf.Weights(msg), p, 0)
	blind := BinomialTree(p.Ranks(), 0)

	if ca, cb := CrossMachineEdges(aware, p), CrossMachineEdges(blind, p); ca >= cb {
		t.Errorf("aware tree should cross machines less: %d vs %d", ca, cb)
	}
	tAware := RunCollective(NewAnalyticNet(rankPerf), aware, Broadcast, msg)
	tBlind := RunCollective(NewAnalyticNet(rankPerf), blind, Broadcast, msg)
	if tAware >= tBlind {
		t.Errorf("placement-aware %v should beat blind %v", tAware, tBlind)
	}
	// Lower bound sanity: at least one full network transfer.
	if tAware < msg/1e6 {
		t.Errorf("aware time %v below a single transfer", tAware)
	}
}

func TestMultiProcessScatterConsistency(t *testing.T) {
	// Scatter over the multi-process tree distributes one chunk per rank;
	// elapsed must exceed the pure network volume lower bound.
	machines, per := 2, 4
	machinePerf := uniformPerf(machines, 0, 1e6)
	p := BlockPlacement(machines, per)
	local := netmodel.Link{Alpha: 0, Beta: 1e12}
	rankPerf := ExpandPerf(machinePerf, p, local)
	chunk := 1e5
	tree := FNFTreeMultiProcess(machinePerf.Weights(chunk), p, 0)
	el := RunCollective(NewAnalyticNet(rankPerf), tree, Scatter, chunk)
	// Root's machine must push 4 chunks (the other machine's subtree)
	// across the network at 1e6 B/s → ≥ 0.4 s.
	if el < 4*chunk/1e6-1e-9 {
		t.Errorf("scatter %v below network lower bound", el)
	}
	if math.IsInf(el, 0) || math.IsNaN(el) {
		t.Error("degenerate elapsed")
	}
}
