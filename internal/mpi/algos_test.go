package mpi

import (
	"math"
	"testing"

	"netconstant/internal/netmodel"
)

func ringOrderN(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

func TestRingAllgatherTiming(t *testing.T) {
	// Uniform α=0, β=1: n−1 synchronized rounds of one chunk each.
	n := 8
	net := NewAnalyticNet(uniformPerf(n, 0, 1))
	el := RingAllgather(net, ringOrderN(n), 10)
	want := float64(n-1) * 10
	if math.Abs(el-want) > 1e-9 {
		t.Errorf("ring allgather %v want %v", el, want)
	}
	if RingAllgather(NewAnalyticNet(uniformPerf(1, 0, 1)), []int{0}, 5) != 0 {
		t.Error("single rank should be free")
	}
}

func TestRecursiveDoublingAllgatherTiming(t *testing.T) {
	// Uniform α=0, β=1, power-of-two ranks: rounds carry 1,2,4,... chunks,
	// total (n−1) chunk-times — same bandwidth term as ring, fewer rounds.
	n := 8
	net := NewAnalyticNet(uniformPerf(n, 0, 1))
	el := RecursiveDoublingAllgather(net, ringOrderN(n), 10)
	want := float64(n-1) * 10 // 1+2+4 = 7 chunks
	if math.Abs(el-want) > 1e-9 {
		t.Errorf("recursive doubling %v want %v", el, want)
	}
}

func TestRecursiveDoublingLatencyAdvantage(t *testing.T) {
	// With latency-dominated messages, recursive doubling (log n rounds)
	// beats the ring (n−1 rounds).
	n := 16
	alpha := 1.0
	tiny := 1e-6
	ring := RingAllgather(NewAnalyticNet(uniformPerf(n, alpha, 1e9)), ringOrderN(n), tiny)
	rd := RecursiveDoublingAllgather(NewAnalyticNet(uniformPerf(n, alpha, 1e9)), ringOrderN(n), tiny)
	if rd >= ring {
		t.Errorf("recursive doubling %v should beat ring %v on latency", rd, ring)
	}
	if math.Abs(ring-float64(n-1)*alpha) > 1e-3 {
		t.Errorf("ring latency rounds: %v", ring)
	}
	if math.Abs(rd-4*alpha) > 1e-3 {
		t.Errorf("recursive doubling rounds: %v", rd)
	}
}

func TestRecursiveDoublingFallback(t *testing.T) {
	// Non-power-of-two falls back to ring.
	n := 6
	rd := RecursiveDoublingAllgather(NewAnalyticNet(uniformPerf(n, 0, 1)), ringOrderN(n), 10)
	ring := RingAllgather(NewAnalyticNet(uniformPerf(n, 0, 1)), ringOrderN(n), 10)
	if rd != ring {
		t.Errorf("fallback mismatch: %v vs %v", rd, ring)
	}
}

func TestRingAllreduceTiming(t *testing.T) {
	// 2(n−1) rounds of total/n bytes each.
	n := 4
	net := NewAnalyticNet(uniformPerf(n, 0, 1))
	el := RingAllreduce(net, ringOrderN(n), 100)
	want := float64(2*(n-1)) * 100 / float64(n)
	if math.Abs(el-want) > 1e-9 {
		t.Errorf("ring allreduce %v want %v", el, want)
	}
	if RingAllreduce(NewAnalyticNet(uniformPerf(1, 0, 1)), []int{0}, 5) != 0 {
		t.Error("single rank")
	}
}

func TestPairwiseAlltoallTiming(t *testing.T) {
	n := 5
	net := NewAnalyticNet(uniformPerf(n, 0, 1))
	el := PairwiseAlltoall(net, ringOrderN(n), 10)
	want := float64(n-1) * 10
	if math.Abs(el-want) > 1e-9 {
		t.Errorf("pairwise alltoall %v want %v", el, want)
	}
}

func TestPipelinedBroadcastTiming(t *testing.T) {
	// Chain of L=3 links, S=4 segments, α=0, β=1, msg 120 → segment 30:
	// time = (S + L − 1)·30 = 180.
	n := 4
	net := NewAnalyticNet(uniformPerf(n, 0, 1))
	el := PipelinedBroadcast(net, ringOrderN(n), 120, 4)
	want := (4.0 + 3 - 1) * 30
	if math.Abs(el-want) > 1e-9 {
		t.Errorf("pipelined broadcast %v want %v", el, want)
	}
	if PipelinedBroadcast(NewAnalyticNet(uniformPerf(1, 0, 1)), []int{0}, 100, 4) != 0 {
		t.Error("single rank")
	}
	if PipelinedBroadcast(NewAnalyticNet(uniformPerf(2, 0, 1)), []int{0, 1}, 0, 4) != 0 {
		t.Error("empty message")
	}
	// segments < 1 is clamped to 1 (plain chain forwarding).
	el1 := PipelinedBroadcast(NewAnalyticNet(uniformPerf(n, 0, 1)), ringOrderN(n), 120, 0)
	if math.Abs(el1-3*120) > 1e-9 {
		t.Errorf("unsegmented chain %v", el1)
	}
}

func TestPipelinedBeatsBinomialForLargeMessages(t *testing.T) {
	// Bandwidth-bound regime: pipelining approaches 1× the transfer time,
	// the binomial tree needs log n of them.
	n := 8
	msg := 1e6
	pm := uniformPerf(n, 1e-5, 1e6)
	binom := RunCollective(NewAnalyticNet(pm), BinomialTree(n, 0), Broadcast, msg)
	pipe := PipelinedBroadcast(NewAnalyticNet(pm), ringOrderN(n), msg, 32)
	if pipe >= binom {
		t.Errorf("pipelined %v should beat binomial %v for big messages", pipe, binom)
	}
}

func TestBinomialBeatsPipelinedForSmallMessages(t *testing.T) {
	n := 16
	msg := 10.0
	pm := uniformPerf(n, 0.1, 1e9)
	binom := RunCollective(NewAnalyticNet(pm), BinomialTree(n, 0), Broadcast, msg)
	pipe := PipelinedBroadcast(NewAnalyticNet(pm), ringOrderN(n), msg, 4)
	if binom >= pipe {
		t.Errorf("binomial %v should beat pipelined %v for tiny messages", binom, pipe)
	}
}

func TestChainFromWeights(t *testing.T) {
	pm := uniformPerf(4, 0, 1)
	// Make 0->2 cheap, 2->3 cheap, 3->1 cheap.
	pm.SetLink(0, 2, netmodel.Link{Alpha: 0, Beta: 100})
	pm.SetLink(2, 3, netmodel.Link{Alpha: 0, Beta: 100})
	w := pm.Weights(100)
	chain := ChainFromWeights(w, 0)
	if chain[0] != 0 || chain[1] != 2 || chain[2] != 3 {
		t.Errorf("greedy chain %v", chain)
	}
	seen := map[int]bool{}
	for _, v := range chain {
		if seen[v] {
			t.Fatal("duplicate in chain")
		}
		seen[v] = true
	}
	mustPanic(t, func() { ChainFromWeights(w, 9) })
}

func TestAutoBroadcastSwitchesByMessageSize(t *testing.T) {
	n := 8
	pm := uniformPerf(n, 1e-2, 1e6)
	w := pm.Weights(1 << 20)
	estimate := func() Network { return NewAnalyticNet(pm) }

	_, small := AutoBroadcast(estimate, NewAnalyticNet(pm), w, 0, 100, 16)
	if small != "binomial" {
		t.Errorf("small message picked %s", small)
	}
	_, large := AutoBroadcast(estimate, NewAnalyticNet(pm), w, 0, 64<<20, 16)
	if large != "pipelined" {
		t.Errorf("large message picked %s", large)
	}
}

func TestRunRoundsEmptyRound(t *testing.T) {
	net := NewAnalyticNet(uniformPerf(2, 0, 1))
	el := runRounds(net, [][]transfer{{}, {{src: 0, dst: 1, bytes: 10}}})
	if math.Abs(el-10) > 1e-9 {
		t.Errorf("empty round handling: %v", el)
	}
}
