package mpi

import "fmt"

// Collective identifies one of the four basic operations studied by the
// paper (§II-C) plus the composed all-to-all used by its applications.
type Collective int

// The supported collective operations.
const (
	Broadcast Collective = iota
	Scatter
	Gather
	Reduce
)

// String names the collective.
func (c Collective) String() string {
	switch c {
	case Broadcast:
		return "broadcast"
	case Scatter:
		return "scatter"
	case Gather:
		return "gather"
	case Reduce:
		return "reduce"
	default:
		return fmt.Sprintf("collective(%d)", int(c))
	}
}

// RunCollective executes the collective on the network along the tree and
// returns the elapsed simulated time. msgBytes is the per-rank message
// size (for broadcast/reduce the full message; for scatter/gather the
// per-rank chunk, so internal edges carry subtree-size × msgBytes).
func RunCollective(net Network, t *Tree, op Collective, msgBytes float64) float64 {
	switch op {
	case Broadcast:
		return runTopDown(net, t, func(child int) float64 { return msgBytes })
	case Scatter:
		sizes := t.SubtreeSizes()
		return runTopDown(net, t, func(child int) float64 { return float64(sizes[child]) * msgBytes })
	case Gather:
		sizes := t.SubtreeSizes()
		return runBottomUp(net, t, func(node int) float64 { return float64(sizes[node]) * msgBytes })
	case Reduce:
		return runBottomUp(net, t, func(node int) float64 { return msgBytes })
	default:
		panic("mpi: unknown collective")
	}
}

// runTopDown executes broadcast-style dissemination: a node that holds the
// data transmits to its children sequentially (single-port sender); a
// child becomes a sender once its receive completes. bytesFor gives the
// payload of the edge into each child. Returns the elapsed time until the
// last rank holds its data.
func runTopDown(net Network, t *Tree, bytesFor func(child int) float64) float64 {
	start := net.Now()
	finish := start
	var onReady func(node int)
	onReady = func(node int) {
		if at := net.Now(); at > finish {
			finish = at
		}
		children := t.Children[node]
		var sendNext func(k int)
		sendNext = func(k int) {
			if k >= len(children) {
				return
			}
			child := children[k]
			net.Send(node, child, bytesFor(child), func(float64) {
				onReady(child)
				sendNext(k + 1)
			})
		}
		sendNext(0)
	}
	onReady(t.Root)
	net.Run()
	return finish - start
}

// runBottomUp executes gather-style aggregation: a node transmits its
// (combined) data to its parent once all of its children have delivered.
// bytesFor gives the payload a node sends upward. Returns the elapsed time
// until the root holds everything.
func runBottomUp(net Network, t *Tree, bytesFor func(node int) float64) float64 {
	start := net.Now()
	finish := start
	n := t.NumRanks()
	pending := make([]int, n)
	for v := 0; v < n; v++ {
		pending[v] = len(t.Children[v])
	}
	var nodeDone func(node int)
	nodeDone = func(node int) {
		// All children of `node` delivered; node forwards upward.
		if node == t.Root {
			if at := net.Now(); at > finish {
				finish = at
			}
			return
		}
		parent := t.Parent[node]
		net.Send(node, parent, bytesFor(node), func(float64) {
			pending[parent]--
			if pending[parent] == 0 {
				nodeDone(parent)
			}
		})
	}
	for v := 0; v < n; v++ {
		if pending[v] == 0 {
			nodeDone(v)
		}
	}
	net.Run()
	return finish - start
}

// RunAllToAll executes the simple all-to-all composition the paper's
// applications use (§V-A, "we implement the all-to-all communication with
// a gather followed by a broadcast, which is also used in MPICH2"):
// per-rank chunks are gathered to the root along gatherTree, then the
// combined buffer (n×msgBytes) is broadcast along bcastTree. Returns the
// total elapsed time.
func RunAllToAll(net Network, gatherTree, bcastTree *Tree, msgBytes float64) float64 {
	g := RunCollective(net, gatherTree, Gather, msgBytes)
	b := RunCollective(net, bcastTree, Broadcast, float64(gatherTree.NumRanks())*msgBytes)
	return g + b
}
