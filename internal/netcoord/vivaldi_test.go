package netcoord

import (
	"math"
	"math/rand"
	"testing"

	"netconstant/internal/cloud"
	"netconstant/internal/mat"
	"netconstant/internal/stats"
	"netconstant/internal/topo"
)

// euclideanMatrix builds a perfectly embeddable distance matrix from
// random points in the plane.
func euclideanMatrix(rng *rand.Rand, n int) *mat.Dense {
	pts := make([][2]float64, n)
	for i := range pts {
		pts[i] = [2]float64{rng.Float64() * 100, rng.Float64() * 100}
	}
	d := mat.NewDense(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			dx := pts[i][0] - pts[j][0]
			dy := pts[i][1] - pts[j][1]
			d.Set(i, j, math.Sqrt(dx*dx+dy*dy)+1) // +1 avoids zero distances
		}
	}
	return d
}

func TestVivaldiConvergesOnEuclideanInput(t *testing.T) {
	rng := stats.NewRNG(1)
	n := 12
	d := euclideanMatrix(rng, n)
	s := New(n, Config{})
	s.Train(rng, 20000, func(i, j int) float64 { return d.At(i, j) })
	median, p90 := s.FitError(d)
	if median > 0.12 {
		t.Errorf("median fit error %.3f on embeddable input", median)
	}
	if p90 > 0.4 {
		t.Errorf("p90 fit error %.3f on embeddable input", p90)
	}
}

func TestVivaldiBasics(t *testing.T) {
	s := New(3, Config{})
	if s.N() != 3 {
		t.Fatal("N")
	}
	if s.Predict(1, 1) != 0 {
		t.Error("self distance")
	}
	rng := stats.NewRNG(2)
	// Ignored updates.
	s.Update(0, 0, 5, rng)
	s.Update(0, 1, -1, rng)
	if s.Predict(0, 1) != 0 {
		t.Error("no-op updates should leave origin coordinates")
	}
	// A real update moves node 0 away from node 1.
	s.Update(0, 1, 10, rng)
	if s.Predict(0, 1) == 0 {
		t.Error("update should move the coordinate")
	}
	// Train with n < 2 is a no-op.
	New(1, Config{}).Train(rng, 10, func(i, j int) float64 { return 1 })
}

func TestVivaldiNoHeight(t *testing.T) {
	rng := stats.NewRNG(3)
	s := New(4, Config{NoHeight: true})
	s.Train(rng, 1000, func(i, j int) float64 { return 5 })
	for _, h := range s.heights {
		if h != 0 {
			t.Error("heights should stay zero with NoHeight")
		}
	}
}

func TestAnalyzeTrianglesMetricSpace(t *testing.T) {
	// A true metric space has zero violations.
	rng := stats.NewRNG(4)
	d := euclideanMatrix(rng, 10)
	st := AnalyzeTriangles(d)
	if st.Violations != 0 {
		t.Errorf("euclidean matrix had %d violations", st.Violations)
	}
	if st.Triples != 10*9*8 {
		t.Errorf("triples %d", st.Triples)
	}
}

func TestAnalyzeTrianglesDetectsViolation(t *testing.T) {
	d := mat.NewDense(3, 3)
	d.Set(0, 1, 1)
	d.Set(1, 0, 1)
	d.Set(1, 2, 1)
	d.Set(2, 1, 1)
	d.Set(0, 2, 5) // 5 > 1+1: violation
	d.Set(2, 0, 5)
	st := AnalyzeTriangles(d)
	if st.Violations == 0 {
		t.Fatal("violation not detected")
	}
	if st.Worst.Severity < 1.4 {
		t.Errorf("worst severity %.2f", st.Worst.Severity)
	}
	mustPanic(t, func() { AnalyzeTriangles(mat.NewDense(2, 3)) })
}

func mustPanic(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	f()
}

// TestCloudPerformanceViolatesTriangles executes the paper's §IV-B
// argument: the transfer-time "distances" of a virtual cluster violate
// the triangle inequality (because per-VM virtualization factors compose
// multiplicatively), so coordinate embeddings cannot represent them.
func TestCloudPerformanceViolatesTriangles(t *testing.T) {
	p := cloud.NewProvider(cloud.ProviderConfig{
		Tree: topo.TreeConfig{Racks: 8, ServersPerRack: 8},
		Seed: 5,
	})
	vc, err := p.Provision(16, 6)
	if err != nil {
		t.Fatal(err)
	}
	vc.SetFreezeDynamics(true)
	w := vc.TruePerf().Weights(8 << 20)
	st := AnalyzeTriangles(w)
	if st.Rate < 0.02 {
		t.Errorf("cloud transfer-time matrix should violate triangles: rate %.4f", st.Rate)
	}
	if st.MeanSeverity <= 0 {
		t.Error("violations should have positive severity")
	}
}

// TestVivaldiUnderperformsOnCloudWeights shows why the paper rejects
// coordinates: the embedding error on a virtual cluster's transfer-time
// matrix stays far above what direct calibration + RPCA achieves (a few
// percent, see internal/core tests).
func TestVivaldiUnderperformsOnCloudWeights(t *testing.T) {
	p := cloud.NewProvider(cloud.ProviderConfig{
		Tree: topo.TreeConfig{Racks: 8, ServersPerRack: 8},
		Seed: 7,
	})
	vc, err := p.Provision(16, 8)
	if err != nil {
		t.Fatal(err)
	}
	vc.SetFreezeDynamics(true)
	w := vc.TruePerf().Weights(8 << 20)
	rng := stats.NewRNG(9)
	s := New(16, Config{})
	s.Train(rng, 30000, func(i, j int) float64 { return w.At(i, j) })
	median, _ := s.FitError(w)
	if median < 0.08 {
		t.Errorf("unexpectedly good embedding (median %.3f) of a non-metric matrix", median)
	}
}
