// Package netcoord implements the Vivaldi network coordinate system
// (Dabek et al., the paper's reference [11]) and triangle-inequality
// analysis. The paper dismisses coordinate approaches for IaaS clouds
// because "the triangle condition is not satisfied" in data-center
// networks (§IV-B); this package makes that argument executable: it can
// embed a cluster's measured performance into coordinates, report the
// achievable prediction accuracy, and quantify the triangle-inequality
// violations that bound it.
package netcoord

import (
	"fmt"
	"math"
	"math/rand"

	"netconstant/internal/mat"
)

// Config parameterizes the Vivaldi system. The zero value selects the
// published defaults: 3 dimensions plus height, ce = cc = 0.25.
type Config struct {
	Dim    int
	Ce     float64 // error-estimate sensitivity
	Cc     float64 // coordinate timestep scale
	Height bool    // set by default via applyDefaults
	// NoHeight disables the height component (pure Euclidean embedding).
	NoHeight bool
}

func (c *Config) applyDefaults() {
	if c.Dim == 0 {
		c.Dim = 3
	}
	if c.Ce == 0 {
		c.Ce = 0.25
	}
	if c.Cc == 0 {
		c.Cc = 0.25
	}
	c.Height = !c.NoHeight
}

// System embeds n nodes into a low-dimensional space with heights; the
// predicted distance between two nodes is the Euclidean distance of their
// coordinates plus both heights.
type System struct {
	cfg     Config
	coords  [][]float64
	heights []float64
	errs    []float64 // relative error estimates, start at 1
}

// New creates a coordinate system for n nodes at the origin with unit
// error estimates.
func New(n int, cfg Config) *System {
	cfg.applyDefaults()
	s := &System{
		cfg:     cfg,
		coords:  make([][]float64, n),
		heights: make([]float64, n),
		errs:    make([]float64, n),
	}
	for i := range s.coords {
		s.coords[i] = make([]float64, cfg.Dim)
		s.errs[i] = 1
	}
	return s
}

// N returns the number of nodes.
func (s *System) N() int { return len(s.coords) }

// Predict returns the coordinate-space distance between nodes i and j.
func (s *System) Predict(i, j int) float64 {
	if i == j {
		return 0
	}
	var d2 float64
	for k := range s.coords[i] {
		diff := s.coords[i][k] - s.coords[j][k]
		d2 += diff * diff
	}
	d := math.Sqrt(d2)
	if s.cfg.Height {
		d += s.heights[i] + s.heights[j]
	}
	return d
}

// Update applies one Vivaldi sample: node i measured distance `rtt`
// (any non-negative dissimilarity — latency, or a transfer-time weight)
// to node j, and adjusts its own coordinate. Non-positive samples are
// ignored.
func (s *System) Update(i, j int, rtt float64, rng *rand.Rand) {
	if i == j || rtt <= 0 {
		return
	}
	pred := s.Predict(i, j)
	// Sample weight balances local and remote error.
	w := s.errs[i] / (s.errs[i] + s.errs[j])
	es := math.Abs(pred-rtt) / rtt
	// Update the error estimate with an exponential moving average.
	s.errs[i] = es*s.cfg.Ce*w + s.errs[i]*(1-s.cfg.Ce*w)
	if s.errs[i] > 2 {
		s.errs[i] = 2
	}

	// Unit vector from j towards i; random direction when coincident.
	dir := make([]float64, s.cfg.Dim)
	var norm float64
	for k := range dir {
		dir[k] = s.coords[i][k] - s.coords[j][k]
		norm += dir[k] * dir[k]
	}
	norm = math.Sqrt(norm)
	if norm < 1e-12 {
		for k := range dir {
			dir[k] = rng.NormFloat64()
		}
		norm = mat.VecNorm2(dir)
		if norm == 0 {
			return
		}
	}
	for k := range dir {
		dir[k] /= norm
	}

	delta := s.cfg.Cc * w
	force := delta * (rtt - pred)
	for k := range dir {
		s.coords[i][k] += force * dir[k]
	}
	if s.cfg.Height {
		s.heights[i] += force * 0.1
		if s.heights[i] < 0 {
			s.heights[i] = 0
		}
	}
}

// Train runs `samples` random-pair updates against the measure function
// (symmetric sampling: both endpoints update).
func (s *System) Train(rng *rand.Rand, samples int, measure func(i, j int) float64) {
	n := s.N()
	if n < 2 {
		return
	}
	for t := 0; t < samples; t++ {
		i := rng.Intn(n)
		j := rng.Intn(n)
		if i == j {
			continue
		}
		d := measure(i, j)
		s.Update(i, j, d, rng)
		s.Update(j, i, d, rng)
	}
}

// FitError reports the median and 90th-percentile relative prediction
// error of the embedding against a full distance matrix (diagonal
// ignored).
func (s *System) FitError(truth *mat.Dense) (median, p90 float64) {
	n := s.N()
	var errsAll []float64
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j || truth.At(i, j) <= 0 {
				continue
			}
			e := math.Abs(s.Predict(i, j)-truth.At(i, j)) / truth.At(i, j)
			errsAll = append(errsAll, e)
		}
	}
	if len(errsAll) == 0 {
		return 0, 0
	}
	sortFloats(errsAll)
	return quantile(errsAll, 0.5), quantile(errsAll, 0.9)
}

// TriangleViolation describes one violated triple.
type TriangleViolation struct {
	I, J, K  int
	Severity float64 // d(i,k) / (d(i,j)+d(j,k)) − 1, > 0
}

// TriangleStats summarizes triangle-inequality violations in a distance
// matrix: for every ordered triple (i, j, k), the direct distance d(i,k)
// should not exceed the detour d(i,j)+d(j,k). Rate is the violated
// fraction; MeanSeverity averages the relative excess over violations;
// Worst is the most severe violation.
type TriangleStats struct {
	Triples      int
	Violations   int
	Rate         float64
	MeanSeverity float64
	Worst        TriangleViolation
}

// AnalyzeTriangles scans all triples of a symmetric-or-not distance
// matrix (diagonal ignored; non-positive entries skipped).
func AnalyzeTriangles(d *mat.Dense) TriangleStats {
	n := d.Rows()
	if d.Cols() != n {
		panic(fmt.Sprintf("netcoord: distance matrix must be square, got %dx%d", n, d.Cols()))
	}
	var st TriangleStats
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if j == i {
				continue
			}
			for k := 0; k < n; k++ {
				if k == i || k == j {
					continue
				}
				direct := d.At(i, k)
				detour := d.At(i, j) + d.At(j, k)
				if direct <= 0 || detour <= 0 {
					continue
				}
				st.Triples++
				if direct > detour {
					st.Violations++
					sev := direct/detour - 1
					st.MeanSeverity += sev
					if sev > st.Worst.Severity {
						st.Worst = TriangleViolation{I: i, J: j, K: k, Severity: sev}
					}
				}
			}
		}
	}
	if st.Violations > 0 {
		st.MeanSeverity /= float64(st.Violations)
	}
	if st.Triples > 0 {
		st.Rate = float64(st.Violations) / float64(st.Triples)
	}
	return st
}

func sortFloats(xs []float64) {
	// insertion sort is fine for the modest slices used here, but use the
	// stdlib for clarity.
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return math.NaN()
	}
	pos := q * float64(len(sorted)-1)
	lo := int(pos)
	if lo >= len(sorted)-1 {
		return sorted[len(sorted)-1]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}
