package simnet

import (
	"math"
	"math/rand"
	"testing"

	"netconstant/internal/mat"
	"netconstant/internal/topo"
)

// randomFabric builds a small random Clos or fat-tree from the seed rng —
// multi-path fabrics that exercise ECMP routing and component sharding.
func randomFabric(rng *rand.Rand) *topo.Topology {
	switch rng.Intn(3) {
	case 0:
		return topo.NewClos(topo.ClosConfig{
			Leaves:         2 + rng.Intn(3),
			ServersPerLeaf: 2 + rng.Intn(2),
			Spines:         2 + rng.Intn(2),
			ServerBps:      1e6,
		})
	case 1:
		return topo.NewClos(topo.ClosConfig{
			Stages:         3,
			Pods:           2,
			Leaves:         2,
			ServersPerLeaf: 2,
			Spines:         2,
			SuperSpines:    2,
			ServerBps:      1e6,
		})
	default:
		return topo.NewFatTree(topo.FatTreeConfig{K: 4, LinkBps: 1e6, HopLatency: 1e-4})
	}
}

// loadFabric drives a seeded workload — staggered random pair flows plus
// background churn — to simulated time 3 and returns the simulator with
// flows still in flight. configure, if non-nil, runs on the fresh
// simulator before any flow starts.
func loadFabric(tr *topo.Topology, seed int64, verify bool, configure func(*Sim)) *Sim {
	s := New(tr)
	s.SetVerifyGlobal(verify)
	if configure != nil {
		configure(s)
	}
	rng := rand.New(rand.NewSource(seed))
	srv := tr.Servers()
	for k := 0; k < 50; k++ {
		a := srv[rng.Intn(len(srv))]
		b := srv[rng.Intn(len(srv))]
		if a == b {
			continue
		}
		bytes := math.Pow(10, 4+3*rng.Float64())
		at := rng.Float64() * 2
		aa, bb := a, b
		s.Eng.Schedule(at, func() { s.StartFlow(aa, bb, bytes, nil) })
	}
	for k := 0; k < 4; k++ {
		a := srv[rng.Intn(len(srv))]
		b := srv[(a+1+rng.Intn(len(srv)-1))%len(srv)]
		if a == b {
			continue
		}
		s.AddBackground(rand.New(rand.NewSource(seed*100+int64(k))), a, b, 5e5, 0.05)
	}
	s.Eng.RunUntil(3)
	return s
}

// Property test for the tentpole: on random Clos and fat-tree fabrics
// with random placements and background flows, the component-sharded
// parallel fill must be byte-identical to the sequential fill at every
// worker count, and to the whole-network reference fill (verifyGlobal
// runs the global allocator side by side after every event).
func TestPropertyShardedByteIdenticalAcrossWorkers(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		tr := randomFabric(rand.New(rand.NewSource(seed)))
		var want uint64
		for i, workers := range []int{1, 2, 8} {
			old := mat.SetParallelism(workers)
			s := loadFabric(tr, seed, true, nil)
			comps, flows := s.RefillAll()
			fp := s.RateFingerprint()
			mat.SetParallelism(old)
			if err := s.VerifyError(); err != nil {
				t.Fatalf("seed %d workers %d: sharded fill diverged from global: %v", seed, workers, err)
			}
			if comps < 1 && flows > 0 {
				t.Fatalf("seed %d workers %d: refill saw %d components for %d flows", seed, workers, comps, flows)
			}
			if i == 0 {
				want = fp
			} else if fp != want {
				t.Fatalf("seed %d: rate fingerprint differs at %d workers: %#x != %#x", seed, workers, fp, want)
			}
		}
	}
}

// The sharding ablation switch must not change a single bit either: the
// joint fill over the whole dirty range and the per-component fills are
// the same arithmetic.
func TestShardedVsUnshardedByteIdentical(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		tr := randomFabric(rand.New(rand.NewSource(seed + 40)))
		run := func(sharded bool) uint64 {
			s := loadFabric(tr, seed, false, func(s *Sim) {
				if prev := s.SetShardedFill(sharded); !prev {
					t.Fatal("sharded fill should default on")
				}
			})
			s.RefillAll()
			return s.RateFingerprint()
		}
		if fa, fb := run(true), run(false); fa != fb {
			t.Fatalf("seed %d: sharded %#x != unsharded %#x", seed, fa, fb)
		}
	}
}

// The parallel dispatch path (>= shardParMinFlows dirty flows across >= 2
// components) must also be byte-identical: many disjoint same-leaf pairs
// form many independent components, and a RefillAll seeds them all at
// once.
func TestManyComponentParallelRefill(t *testing.T) {
	tr := topo.NewClos(topo.ClosConfig{Leaves: 32, ServersPerLeaf: 4, Spines: 2, ServerBps: 1e6})
	srv := tr.Servers()
	build := func() *Sim {
		s := New(tr)
		s.SetVerifyGlobal(true)
		// Three flows per leaf, strictly leaf-local: each leaf is its own
		// connected component of the sharing graph.
		for leaf := 0; leaf < 32; leaf++ {
			base := leaf * 4
			s.StartFlow(srv[base], srv[base+1], 1e9, nil)
			s.StartFlow(srv[base+1], srv[base+2], 1e9, nil)
			s.StartFlow(srv[base+2], srv[base+3], 1e9, nil)
		}
		s.Eng.RunUntil(1)
		return s
	}
	var want uint64
	for i, workers := range []int{1, 8} {
		old := mat.SetParallelism(workers)
		s := build()
		comps, flows := s.RefillAll()
		fp := s.RateFingerprint()
		mat.SetParallelism(old)
		if err := s.VerifyError(); err != nil {
			t.Fatalf("workers %d: %v", workers, err)
		}
		if comps != 32 || flows != 96 {
			t.Fatalf("workers %d: refill shape (%d comps, %d flows), want (32, 96)", workers, comps, flows)
		}
		if i == 0 {
			want = fp
		} else if fp != want {
			t.Fatalf("parallel refill fingerprint %#x != sequential %#x", fp, want)
		}
	}
}

// The bottleneck-structure backend must agree with progressive-filling
// max-min within floating-point tolerance on random fabrics, and a
// simulation run entirely under it must satisfy the max-min invariants.
func TestBottleneckBackendAgreesWithMaxMin(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		tr := randomFabric(rand.New(rand.NewSource(seed + 80)))
		s := loadFabric(tr, seed, false, nil)
		if rel := s.AllocatorAgreement(); rel > 1e-9 {
			t.Fatalf("seed %d: backends disagree by %g relative", seed, rel)
		}
		// Re-run the same workload under the bottleneck backend.
		b := New(tr)
		if prev := b.SetAllocator(AllocBottleneck); prev != AllocMaxMin {
			t.Fatalf("default allocator = %v", prev)
		}
		if got := b.SetAllocator(AllocDefault); got != AllocBottleneck {
			t.Fatalf("AllocDefault query returned %v", got)
		}
		rng := rand.New(rand.NewSource(seed))
		srv := tr.Servers()
		for k := 0; k < 30; k++ {
			x := srv[rng.Intn(len(srv))]
			y := srv[rng.Intn(len(srv))]
			if x == y {
				continue
			}
			xx, yy := x, y
			b.Eng.Schedule(rng.Float64(), func() { b.StartFlow(xx, yy, 1e5+rng.Float64()*1e6, nil) })
		}
		b.Eng.RunUntil(2)
		if b.ActiveFlows() > 0 {
			if err := b.CheckInvariants(); err != nil {
				t.Fatalf("seed %d: bottleneck backend violates max-min invariants: %v", seed, err)
			}
		}
		b.Eng.Run()
		if b.ActiveFlows() != 0 {
			t.Fatalf("seed %d: bottleneck backend stalled with %d flows", seed, b.ActiveFlows())
		}
	}
}

// RefillAll under a max-min backend recomputes the standing allocation
// bit for bit: the fingerprint must not move and unchanged flows must
// keep their completion timers (the event count stays put).
func TestRefillAllIsANoOp(t *testing.T) {
	tr := randomFabric(rand.New(rand.NewSource(3)))
	s := loadFabric(tr, 3, true, nil)
	before := s.RateFingerprint()
	for i := 0; i < 3; i++ {
		if _, flows := s.RefillAll(); flows != s.ActiveFlows() {
			t.Fatalf("refill %d visited %d flows, %d active", i, flows, s.ActiveFlows())
		}
	}
	if after := s.RateFingerprint(); after != before {
		t.Fatalf("RefillAll changed rates: %#x -> %#x", before, after)
	}
	if err := s.VerifyError(); err != nil {
		t.Fatal(err)
	}
}

// ECMP routing: cached pair paths must be valid shortest paths, stable
// across simulators, independent of flow order, and must match
// topo.Route exactly on unique-path topologies.
func TestECMPRouting(t *testing.T) {
	g := topo.NewClos(topo.ClosConfig{Leaves: 4, ServersPerLeaf: 2, Spines: 4, ServerBps: 1e6})
	srv := g.Servers()
	s1, s2 := New(g), New(g)
	seen := map[topo.LinkID]bool{}
	for i := 0; i < len(srv); i++ {
		for j := 0; j < len(srv); j++ {
			if i == j {
				continue
			}
			p1, m1, err := s1.routeFor(srv[i], srv[j])
			if err != nil {
				t.Fatalf("route %d->%d: %v", srv[i], srv[j], err)
			}
			p2, m2, _ := s2.routeFor(srv[i], srv[j])
			if len(p1) != len(p2) || m1 != m2 {
				t.Fatalf("route %d->%d not reproducible", srv[i], srv[j])
			}
			for k := range p1 {
				if p1[k] != p2[k] {
					t.Fatalf("route %d->%d differs across simulators", srv[i], srv[j])
				}
			}
			// Validate the walk: consecutive links share nodes, src to dst.
			cur := srv[i]
			for _, id := range p1 {
				l := g.Link(id)
				switch cur {
				case l.A:
					cur = l.B
				case l.B:
					cur = l.A
				default:
					t.Fatalf("route %d->%d: disconnected walk", srv[i], srv[j])
				}
				seen[id] = true
			}
			if cur != srv[j] {
				t.Fatalf("route %d->%d ends at %d", srv[i], srv[j], cur)
			}
			// Same-leaf pairs are unique-path (2 hops); cross-leaf pairs
			// have one path per spine and must be flagged multipath.
			if g.SameRack(srv[i], srv[j]) {
				if m1 || len(p1) != 2 {
					t.Fatalf("same-leaf route %d->%d: multi=%v len=%d", srv[i], srv[j], m1, len(p1))
				}
			} else {
				if !m1 || len(p1) != 4 {
					t.Fatalf("cross-leaf route %d->%d: multi=%v len=%d", srv[i], srv[j], m1, len(p1))
				}
			}
		}
	}
	// The pair hash must actually spread load: with 4 spines and 56
	// cross-leaf pairs, several distinct uplinks must be exercised.
	uplinks := 0
	for id := range seen {
		l := g.Link(id)
		if g.Node(l.A).Kind == topo.Switch && g.Node(l.B).Kind == topo.Switch {
			uplinks++
		}
	}
	if uplinks < 8 {
		t.Errorf("ECMP used only %d distinct uplinks", uplinks)
	}

	// Unique-path topologies: ECMP resolves to exactly topo.Route's path.
	tr := topo.NewTree(topo.TreeConfig{Racks: 3, ServersPerRack: 3})
	st := New(tr)
	tsrv := tr.Servers()
	for i := 0; i < len(tsrv); i++ {
		for j := 0; j < len(tsrv); j++ {
			if i == j {
				continue
			}
			want := tr.Route(tsrv[i], tsrv[j])
			got, multi, err := st.routeFor(tsrv[i], tsrv[j])
			if err != nil || multi || len(got) != len(want) {
				t.Fatalf("tree route %d->%d: multi=%v err=%v", tsrv[i], tsrv[j], multi, err)
			}
			for k := range want {
				if got[k] != want[k] {
					t.Fatalf("tree route %d->%d deviates from topo.Route", tsrv[i], tsrv[j])
				}
			}
		}
	}
	total, multi := st.ECMPPairs()
	if total != 0 || multi != 0 {
		t.Errorf("routeFor must not populate the pair cache (%d, %d)", total, multi)
	}
	st.StartFlow(tsrv[0], tsrv[1], 10, nil)
	if total, multi = st.ECMPPairs(); total != 1 || multi != 0 {
		t.Errorf("pair stats after one tree flow: (%d, %d)", total, multi)
	}
}

// Flows on a multipath fabric must actually traverse ECMP-chosen paths:
// StartFlow panics would surface here if routing refused multi-path
// pairs the way topo.Route does.
func TestStartFlowAcrossMultipathFabric(t *testing.T) {
	g := topo.NewClos(topo.ClosConfig{Leaves: 2, ServersPerLeaf: 2, Spines: 2, ServerBps: 100})
	s := New(g)
	srv := g.Servers()
	elapsed := s.Transfer(srv[0], srv[2], 100) // cross-leaf
	if elapsed <= 0 {
		t.Fatalf("elapsed %v", elapsed)
	}
	if _, multi := s.ECMPPairs(); multi != 1 {
		t.Errorf("cross-leaf pair not counted as multipath")
	}
}
