package simnet

// ECMP multi-path routing. Clos and fat-tree fabrics give most pairs many
// equal-cost shortest paths, so topo.Route/RouteE refuse them with
// topo.ErrMultiPath; the simulator resolves every pair itself with
// equal-cost multi-path hashing, the way data-center switches do:
//
//   - a breadth-first pass from the destination labels each node with its
//     hop distance, which makes the shortest-path DAG implicit (every
//     neighbor one hop closer is a legal next hop);
//   - the flow walks from the source choosing among the legal next hops
//     with a pure hash over (src, dst, current node) — no RNG, no global
//     state — so a pair's path depends only on the topology and the pair
//     ID. Results are therefore identical at any seed, worker count, or
//     flow arrival order, and unique-path topologies (trees) resolve to
//     exactly the path topo.Route returns.
//
// Like real per-destination ECMP, all flows of a pair share one path (the
// route cache in Sim.StartFlow keys on the pair), concentrating a pair's
// probes on the same links while spreading distinct pairs across the
// fabric.

import (
	"fmt"

	"netconstant/internal/topo"
)

// mix64 is the splitmix64 finalizer — the same avalanche construction the
// experiment harness uses for PointSeed.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// pairHash is the pure per-pair hash seeding the next-hop choices.
func pairHash(src, dst int) uint64 {
	return mix64(uint64(int64(src)<<32|int64(uint32(dst))) ^ 0x9e3779b97f4a7c15)
}

// routeFor computes the (src, dst) path: the unique shortest path when
// there is one, otherwise the ECMP-hashed choice among the equal-cost
// shortest paths. multi reports whether any hop had more than one legal
// next hop. BFS scratch lives on the Sim (routing runs on the single
// event-loop goroutine), so steady-state routing of a cached pair set
// allocates only the returned path.
//netlint:hotpath
func (s *Sim) routeFor(src, dst int) (path []topo.LinkID, multi bool, err error) {
	t := s.Topo
	n := t.NumNodes()
	if src < 0 || src >= n || dst < 0 || dst >= n {
		//netlint:allow hotalloc error construction sits on the invalid-endpoint path, never on steady-state routing
		return nil, false, fmt.Errorf("%w: route endpoints (%d,%d), %d nodes", topo.ErrNodeRange, src, dst, n)
	}
	if len(s.ecmpDist) < n {
		//netlint:allow hotalloc BFS scratch grows once per topology size, then is reused for every routed pair
		s.ecmpDist = make([]int32, n)
		//netlint:allow hotalloc BFS scratch grows once per topology size, then is reused for every routed pair
		s.ecmpQueue = make([]int32, 0, n)
	}
	dist := s.ecmpDist[:n]
	for i := range dist {
		dist[i] = -1
	}
	// BFS from dst. Nodes dequeue in nondecreasing distance, so once the
	// frontier reaches dist[src] every node at distance <= dist[src] — all
	// the walk below can touch — is labeled, and the scan can stop.
	queue := s.ecmpQueue[:0]
	dist[dst] = 0
	queue = append(queue, int32(dst))
	for head := 0; head < len(queue); head++ {
		cur := int(queue[head])
		if dist[src] >= 0 && dist[cur] >= dist[src] {
			break
		}
		for _, e := range t.Incident(cur) {
			if dist[e.Peer] < 0 {
				dist[e.Peer] = dist[cur] + 1
				queue = append(queue, int32(e.Peer))
			}
		}
	}
	s.ecmpQueue = queue[:0]
	if dist[src] < 0 {
		//netlint:allow hotalloc error construction sits on the disconnected-pair path, never on steady-state routing
		return nil, false, fmt.Errorf("%w: from %d to %d", topo.ErrNoPath, src, dst)
	}
	// Hash-walk the shortest-path DAG toward dst.
	h := pairHash(src, dst)
	//netlint:allow hotalloc the returned path is the one by-design allocation (see doc comment); StartFlow caches it per pair
	path = make([]topo.LinkID, 0, dist[src])
	for cur := src; cur != dst; {
		d := dist[cur]
		cands := s.ecmpCands[:0]
		for _, e := range t.Incident(cur) {
			if dist[e.Peer] == d-1 {
				cands = append(cands, e)
			}
		}
		s.ecmpCands = cands[:0]
		pick := 0
		if len(cands) > 1 {
			multi = true
			pick = int(mix64(h^uint64(cur)*0x9e3779b97f4a7c15) % uint64(len(cands)))
		}
		path = append(path, cands[pick].Link)
		cur = cands[pick].Peer
	}
	return path, multi, nil
}

// ECMPPairs reports how many (src, dst) pairs have been routed so far and
// how many of them resolved over a multi-path portion of the fabric.
func (s *Sim) ECMPPairs() (total, multipath int) {
	return len(s.routes), s.multiPairs
}
