// Package simnet is a deterministic flow-level network simulator — the
// repository's substitute for the paper's ns-2 setup (§V-A). Flows are
// routed over a topo.Topology; concurrently active flows share link
// capacity by progressive-filling max-min fairness, recomputed on every
// flow arrival and departure. Poisson background-traffic generators
// reproduce the paper's interference model (message size + expected
// waiting time λ), and measurement probes implement SKaMPI-style pingpong
// calibration on top of the simulator.
package simnet

import (
	"fmt"
	"math"
	"math/rand"

	"netconstant/internal/des"
	"netconstant/internal/stats"
	"netconstant/internal/topo"
)

// Flow is an in-flight data transfer.
type Flow struct {
	ID       int64
	Src, Dst int // server node IDs
	Bytes    float64

	path       []topo.LinkID
	remaining  float64
	rate       float64 // bytes/s currently allocated
	lastUpdate float64
	completion *des.Timer
	done       func(at float64)
	finished   bool
	start      float64
}

// Finished reports whether the flow has completed.
func (f *Flow) Finished() bool { return f.finished }

// Start returns the simulated time the flow was submitted.
func (f *Flow) Start() float64 { return f.start }

// Sim is a flow-level network simulator over a fixed topology.
type Sim struct {
	Topo *topo.Topology
	Eng  *des.Engine

	nextID    int64
	active    map[int64]*Flow
	linkFlows map[topo.LinkID]map[int64]*Flow
}

// New creates a simulator for the given topology with its own event engine.
func New(t *topo.Topology) *Sim {
	return &Sim{
		Topo:      t,
		Eng:       des.NewEngine(),
		active:    make(map[int64]*Flow),
		linkFlows: make(map[topo.LinkID]map[int64]*Flow),
	}
}

// Now returns the current simulated time.
func (s *Sim) Now() float64 { return s.Eng.Now() }

// StartFlow submits a transfer of the given size between two server nodes.
// done (optional) fires when the last byte is delivered. The model charges
// the path propagation latency up front, then drains the flow at its
// max-min fair share of the path bandwidth.
func (s *Sim) StartFlow(src, dst int, bytes float64, done func(at float64)) *Flow {
	if src == dst {
		panic("simnet: flow to self")
	}
	if bytes < 0 {
		panic("simnet: negative flow size")
	}
	path := s.Topo.Route(src, dst)
	f := &Flow{
		ID:    s.nextID,
		Src:   src,
		Dst:   dst,
		Bytes: bytes,
		path:  path,
		done:  done,
		start: s.Now(),
	}
	s.nextID++
	latency := s.Topo.PathLatency(path)
	if bytes == 0 {
		s.Eng.After(latency, func() { s.finish(f) })
		return f
	}
	f.remaining = bytes
	s.Eng.After(latency, func() { s.activate(f) })
	return f
}

func (s *Sim) activate(f *Flow) {
	f.lastUpdate = s.Now()
	s.active[f.ID] = f
	for _, l := range f.path {
		m := s.linkFlows[l]
		if m == nil {
			m = make(map[int64]*Flow)
			s.linkFlows[l] = m
		}
		m[f.ID] = f
	}
	s.recompute()
}

func (s *Sim) finish(f *Flow) {
	f.finished = true
	if f.done != nil {
		f.done(s.Now())
	}
}

func (s *Sim) complete(f *Flow) {
	delete(s.active, f.ID)
	for _, l := range f.path {
		delete(s.linkFlows[l], f.ID)
	}
	f.rate = 0
	f.remaining = 0
	s.finish(f)
	s.recompute()
}

// recompute performs progressive-filling max-min fair allocation over all
// active flows, then reschedules their completion events.
func (s *Sim) recompute() {
	now := s.Now()
	// Drain progress accrued under the previous allocation.
	for _, f := range s.active {
		f.remaining -= f.rate * (now - f.lastUpdate)
		if f.remaining < 0 {
			f.remaining = 0
		}
		f.lastUpdate = now
	}

	// Progressive filling.
	type linkState struct {
		capLeft float64
		flows   map[int64]*Flow
		nUnfix  int
	}
	links := make(map[topo.LinkID]*linkState, len(s.linkFlows))
	for id, flows := range s.linkFlows {
		if len(flows) == 0 {
			continue
		}
		links[id] = &linkState{
			capLeft: s.Topo.Link(id).Capacity,
			flows:   flows,
			nUnfix:  len(flows),
		}
	}
	unfixed := make(map[int64]*Flow, len(s.active))
	for id, f := range s.active {
		unfixed[id] = f
		f.rate = 0
	}
	for len(unfixed) > 0 {
		// Find the bottleneck link: the minimum fair share among links that
		// still carry unfixed flows.
		bottleneck := topo.LinkID(-1)
		minShare := math.Inf(1)
		for id, ls := range links {
			if ls.nUnfix == 0 {
				continue
			}
			share := ls.capLeft / float64(ls.nUnfix)
			if share < minShare {
				minShare = share
				bottleneck = id
			}
		}
		if bottleneck < 0 {
			// No capacitated links left (cannot happen: every flow crosses
			// at least one link), but guard against an infinite loop.
			for _, f := range unfixed {
				f.rate = math.Inf(1)
			}
			break
		}
		// Fix every unfixed flow on the bottleneck at minShare.
		for fid, f := range links[bottleneck].flows {
			if _, ok := unfixed[fid]; !ok {
				continue
			}
			f.rate = minShare
			delete(unfixed, fid)
			for _, l := range f.path {
				ls := links[l]
				ls.capLeft -= minShare
				if ls.capLeft < 0 {
					ls.capLeft = 0
				}
				ls.nUnfix--
			}
		}
	}

	// Reschedule completions under the new rates.
	for _, f := range s.active {
		if f.completion != nil {
			f.completion.Cancel()
			f.completion = nil
		}
		if f.rate <= 0 {
			continue
		}
		eta := f.remaining / f.rate
		ff := f
		f.completion = s.Eng.After(eta, func() { s.complete(ff) })
	}
}

// ActiveFlows returns the number of currently draining flows.
func (s *Sim) ActiveFlows() int { return len(s.active) }

// RunUntilDone advances the simulation until the given flow completes.
// It panics if the event queue drains first (a stalled flow would
// otherwise hang silently).
func (s *Sim) RunUntilDone(f *Flow) {
	for !f.finished {
		if !s.Eng.Step() {
			panic(fmt.Sprintf("simnet: event queue drained before flow %d completed", f.ID))
		}
	}
}

// Transfer synchronously sends bytes from src to dst and returns the
// elapsed simulated time. Background flows continue to progress and
// interfere during the transfer.
func (s *Sim) Transfer(src, dst int, bytes float64) float64 {
	start := s.Now()
	f := s.StartFlow(src, dst, bytes, nil)
	s.RunUntilDone(f)
	return s.Now() - start
}

// Pingpong measures round-trip style calibration like SKaMPI's
// Pingpong_Send_Recv (paper §IV-B): the latency estimate is the elapsed
// time of a 1-byte message, the bandwidth estimate is bulkBytes divided by
// the elapsed time of a bulk transfer (8 MB by default in the paper).
func (s *Sim) Pingpong(src, dst int, bulkBytes float64) (alpha, beta float64) {
	alpha = s.Transfer(src, dst, 1)
	elapsed := s.Transfer(src, dst, bulkBytes)
	data := elapsed - alpha // subtract the latency component of the α-β model
	if data <= 0 {
		data = elapsed
	}
	beta = bulkBytes / data
	return alpha, beta
}

// Background is a handle to a Poisson background-traffic source.
type Background struct {
	stopped bool
}

// Stop halts the source after its current message (if any) completes.
func (b *Background) Stop() { b.stopped = true }

// AddBackground installs a background-traffic source on a fixed (src, dst)
// pair: it repeatedly waits an exponential time with mean lambda seconds
// (the paper's "waiting time satisfies Poisson distribution with expected
// value λ") and then sends msgBytes. The source runs until stopped.
func (s *Sim) AddBackground(rng *rand.Rand, src, dst int, msgBytes, lambda float64) *Background {
	b := &Background{}
	var loop func()
	loop = func() {
		if b.stopped {
			return
		}
		wait := stats.Exponential(rng, lambda)
		s.Eng.After(wait, func() {
			if b.stopped {
				return
			}
			s.StartFlow(src, dst, msgBytes, func(float64) { loop() })
		})
	}
	loop()
	return b
}

// CheckInvariants verifies the max-min allocation's feasibility and
// work-conservation properties at the current instant:
//   - feasibility: on every link, the allocated rates sum to at most the
//     capacity (within tolerance);
//   - positivity: every active flow has a positive rate;
//   - work conservation: every active flow is bottlenecked somewhere — it
//     crosses at least one link whose capacity is (nearly) fully used.
//
// It returns an error describing the first violation. Intended for tests.
func (s *Sim) CheckInvariants() error {
	const tol = 1e-6
	used := make(map[topo.LinkID]float64)
	for _, f := range s.active {
		if f.rate <= 0 {
			return fmt.Errorf("simnet: active flow %d has non-positive rate %v", f.ID, f.rate)
		}
		for _, l := range f.path {
			used[l] += f.rate
		}
	}
	for id, u := range used {
		capac := s.Topo.Link(id).Capacity
		if u > capac*(1+tol) {
			return fmt.Errorf("simnet: link %d oversubscribed: %v > %v", id, u, capac)
		}
	}
	for _, f := range s.active {
		bottlenecked := false
		for _, l := range f.path {
			if used[l] >= s.Topo.Link(l).Capacity*(1-1e-3) {
				bottlenecked = true
				break
			}
		}
		if !bottlenecked {
			return fmt.Errorf("simnet: flow %d (rate %v) is not bottlenecked on any link", f.ID, f.rate)
		}
	}
	return nil
}
