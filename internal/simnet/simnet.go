// Package simnet is a deterministic flow-level network simulator — the
// repository's substitute for the paper's ns-2 setup (§V-A). Flows are
// routed over a topo.Topology; concurrently active flows share link
// capacity by progressive-filling max-min fairness, recomputed on every
// flow arrival and departure. Poisson background-traffic generators
// reproduce the paper's interference model (message size + expected
// waiting time λ), and measurement probes implement SKaMPI-style pingpong
// calibration on top of the simulator.
package simnet

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync/atomic"

	"netconstant/internal/des"
	"netconstant/internal/mat"
	"netconstant/internal/stats"
	"netconstant/internal/topo"
)

// Flow is an in-flight data transfer.
type Flow struct {
	ID       int64
	Src, Dst int // server node IDs
	Bytes    float64

	path       []topo.LinkID
	remaining  float64
	rate       float64 // bytes/s currently allocated
	lastUpdate float64
	completion *des.Timer
	done       func(at float64)
	finished   bool
	start      float64

	// Scratch used by the incremental allocator within one recompute.
	newRate float64
	unfixed bool
	visited int64 // collectDirty epoch stamp
}

// Finished reports whether the flow has completed.
func (f *Flow) Finished() bool { return f.finished }

// Start returns the simulated time the flow was submitted.
func (f *Flow) Start() float64 { return f.start }

// Sim is a flow-level network simulator over a fixed topology.
type Sim struct {
	Topo *topo.Topology
	Eng  *des.Engine

	nextID int64
	active map[int64]*Flow
	// linkFlows is indexed by LinkID (link IDs are dense, assigned in
	// creation order); each entry lists the active flows crossing that
	// link, removed by swap-with-last. Both allocators are visiting-order
	// independent, so the unordered slice is safe.
	linkFlows [][]*Flow

	// routes caches (src, dst) -> path + propagation latency. The
	// topology is immutable once the simulation starts and background
	// sources and probes reuse the same endpoint pairs over and over, so
	// routing BFS — two O(nodes) allocations per call — is paid once per
	// pair instead of once per flow. Cached paths are shared between
	// flows and never mutated.
	routes map[int64]routeEntry

	// alloc selects the bandwidth-sharing backend; see AllocatorKind.
	alloc AllocatorKind
	// sharded selects component-restricted filling: each connected
	// component of the dirty subgraph fills independently (possibly in
	// parallel on the mat worker pool). Off, the whole dirty range fills
	// jointly — the pre-sharding allocator, kept as an ablation baseline.
	sharded bool
	// verifyGlobal, when set, re-derives every active flow's rate with a
	// fresh whole-network fill after each incremental recompute and
	// records the first bitwise mismatch in verifyErr.
	verifyGlobal bool
	verifyErr    error

	// Reusable scratch for the incremental allocator. Marks are epoch
	// stamps (linkStamp per link, Flow.visited per flow) so no per-event
	// clearing is needed; linkSlot maps a dirty link to its index in the
	// fill slices and is always written before it is read.
	dirtyFlows []*Flow
	dirtyLinks []topo.LinkID
	comps      []compSpan // connected components of the dirty subgraph
	allSeeds   []topo.LinkID
	epoch      int64
	linkStamp  []int64   // per-link collectDirty epoch
	linkSlot   []int32   // dirty link -> index into fill slices
	fillCap    []float64 // residual capacity per dirty link
	fillUnfix  []int32   // unfixed-flow count per dirty link

	// ECMP routing scratch (see ecmp.go) and cached-pair statistics.
	ecmpDist   []int32
	ecmpQueue  []int32
	ecmpCands  []topo.IncidentLink
	multiPairs int
}

// compSpan addresses one connected component of the dirty subgraph as
// half-open index ranges into dirtyLinks and dirtyFlows. collectDirty
// discovers components seed by seed, so each component's links and flows
// occupy contiguous ranges; the spans are the index-addressed result
// slots the parallel fill shards write into.
type compSpan struct {
	linkLo, linkHi int
	flowLo, flowHi int
}

type routeEntry struct {
	path    []topo.LinkID
	latency float64
}

// defaultGlobalFill makes New return simulators running the global
// (pre-optimization) allocator; benchmarks flip it to time unmodified
// higher layers end to end against both allocators.
var defaultGlobalFill atomic.Bool

// SetDefaultGlobalFill selects the allocator used by subsequently created
// simulators and returns the previous setting. Intended for benchmarks
// and ablation studies; the incremental allocator is the default.
func SetDefaultGlobalFill(on bool) bool { return defaultGlobalFill.Swap(on) }

// New creates a simulator for the given topology with its own event engine.
func New(t *topo.Topology) *Sim {
	alloc := AllocMaxMin
	if defaultGlobalFill.Load() {
		alloc = AllocGlobalMaxMin
	}
	return &Sim{
		Topo:      t,
		Eng:       des.NewEngine(),
		active:    make(map[int64]*Flow),
		linkFlows: make([][]*Flow, t.NumLinks()),
		linkStamp: make([]int64, t.NumLinks()),
		linkSlot:  make([]int32, t.NumLinks()),
		routes:    make(map[int64]routeEntry),
		alloc:     alloc,
		sharded:   true,
	}
}

// SetGlobalFill selects this simulator's allocator (true = whole-network
// refill on every event) and returns the previous setting. It is the
// boolean legacy face of SetAllocator, which see for the full menu.
func (s *Sim) SetGlobalFill(on bool) bool {
	prev := s.alloc == AllocGlobalMaxMin
	if on {
		s.alloc = AllocGlobalMaxMin
	} else {
		s.alloc = AllocMaxMin
	}
	return prev
}

// Now returns the current simulated time.
func (s *Sim) Now() float64 { return s.Eng.Now() }

// StartFlow submits a transfer of the given size between two server nodes.
// done (optional) fires when the last byte is delivered. The model charges
// the path propagation latency up front, then drains the flow at its
// max-min fair share of the path bandwidth.
func (s *Sim) StartFlow(src, dst int, bytes float64, done func(at float64)) *Flow {
	if src == dst {
		panic("simnet: flow to self")
	}
	if bytes < 0 {
		panic("simnet: negative flow size")
	}
	key := int64(src)<<32 | int64(int32(dst))
	re, ok := s.routes[key]
	if !ok {
		path, multi, err := s.routeFor(src, dst)
		if err != nil {
			panic(err)
		}
		re.path = path
		re.latency = s.Topo.PathLatency(re.path)
		s.routes[key] = re
		if multi {
			s.multiPairs++
		}
	}
	f := &Flow{
		ID:    s.nextID,
		Src:   src,
		Dst:   dst,
		Bytes: bytes,
		path:  re.path,
		done:  done,
		start: s.Now(),
	}
	s.nextID++
	latency := re.latency
	if bytes == 0 {
		s.Eng.After(latency, func() { s.finish(f) })
		return f
	}
	f.remaining = bytes
	s.Eng.After(latency, func() { s.activate(f) })
	return f
}

// ensureLink grows the per-link arrays to cover l; links are normally all
// present at New, but the topology may have grown since.
func (s *Sim) ensureLink(l topo.LinkID) {
	for int(l) >= len(s.linkFlows) {
		s.linkFlows = append(s.linkFlows, nil)
		s.linkStamp = append(s.linkStamp, 0)
		s.linkSlot = append(s.linkSlot, 0)
	}
}

func (s *Sim) activate(f *Flow) {
	f.lastUpdate = s.Now()
	s.active[f.ID] = f
	for _, l := range f.path {
		s.ensureLink(l)
		s.linkFlows[l] = append(s.linkFlows[l], f)
	}
	s.recompute(f.path)
}

func (s *Sim) finish(f *Flow) {
	f.finished = true
	if f.done != nil {
		f.done(s.Now())
	}
}

func (s *Sim) complete(f *Flow) {
	delete(s.active, f.ID)
	for _, l := range f.path {
		flows := s.linkFlows[l]
		for i, g := range flows {
			if g == f {
				flows[i] = flows[len(flows)-1]
				flows[len(flows)-1] = nil
				s.linkFlows[l] = flows[:len(flows)-1]
				break
			}
		}
	}
	f.rate = 0
	f.remaining = 0
	f.completion = nil
	s.finish(f)
	s.recompute(f.path)
}

// recompute restores the max-min fair allocation after a flow arrived or
// departed on the given path. The incremental allocator confines the
// progressive filling to the dirty subgraph — the links of the changed
// path plus every flow sharing them, expanded transitively — which is the
// changed flow's whole connected component in the flow↔link sharing
// graph. Max-min allocations decompose independently per component, and
// component-restricted filling performs the same floating-point
// operations as a whole-network fill does on that component, so rates
// stay byte-identical to the global recompute (asserted by the
// differential tests via verifyGlobal).
func (s *Sim) recompute(seeds []topo.LinkID) {
	if s.alloc == AllocGlobalMaxMin {
		s.recomputeGlobal()
		return
	}
	s.collectDirty(seeds)
	s.fillDirty()
	s.commitDirty()
	if s.verifyGlobal && s.verifyErr == nil && s.alloc == AllocMaxMin {
		s.verifyErr = s.verifyAgainstGlobal()
	}
}

// collectDirty gathers the connected component(s) of the seed links into
// s.dirtyLinks / s.dirtyFlows by breadth-first expansion over shared
// links, recording each component's index span in s.comps. Expanding one
// seed to exhaustion before starting the next keeps every component
// contiguous; a seed already absorbed by an earlier component is skipped
// by its epoch stamp. The common case — a background flow arriving on an
// otherwise quiet leaf path — visits O(path length) state.
func (s *Sim) collectDirty(seeds []topo.LinkID) {
	s.dirtyFlows = s.dirtyFlows[:0]
	s.dirtyLinks = s.dirtyLinks[:0]
	s.comps = s.comps[:0]
	s.epoch++
	ep := s.epoch
	for _, seed := range seeds {
		s.ensureLink(seed)
		if s.linkStamp[seed] == ep || len(s.linkFlows[seed]) == 0 {
			continue
		}
		sp := compSpan{linkLo: len(s.dirtyLinks), flowLo: len(s.dirtyFlows)}
		s.linkStamp[seed] = ep
		s.dirtyLinks = append(s.dirtyLinks, seed)
		for i := sp.linkLo; i < len(s.dirtyLinks); i++ {
			for _, f := range s.linkFlows[s.dirtyLinks[i]] {
				if f.visited == ep {
					continue
				}
				f.visited = ep
				s.dirtyFlows = append(s.dirtyFlows, f)
				for _, l := range f.path {
					if s.linkStamp[l] != ep {
						s.linkStamp[l] = ep
						s.dirtyLinks = append(s.dirtyLinks, l)
					}
				}
			}
		}
		sp.linkHi = len(s.dirtyLinks)
		sp.flowHi = len(s.dirtyFlows)
		s.comps = append(s.comps, sp)
	}
}

// shardParMinFlows gates parallel dispatch of component fills: below this
// many dirty flows the fill is too cheap to amortize handing shards to
// the worker pool.
const shardParMinFlows = 64

// fillDirty computes each dirty flow's share into f.newRate. The prepass
// seeds the fill state (residual capacity, unfixed count, slot index) for
// every dirty link globally; the spans in s.comps then address disjoint
// ranges of that state, so the per-component fills are independent and —
// when there are enough components and flows to pay for dispatch — run
// concurrently on the mat worker pool. Per-component filling performs
// exactly the floating-point operations a joint fill performs on that
// component (a joint fill's selections restricted to one component occur
// in that component's local-min order and touch only its state), so the
// result is byte-identical at any worker count, sharded or not.
//
//netlint:hotpath
func (s *Sim) fillDirty() {
	s.fillCap = s.fillCap[:0]
	s.fillUnfix = s.fillUnfix[:0]
	for k, l := range s.dirtyLinks {
		s.linkSlot[l] = int32(k)
		s.fillCap = append(s.fillCap, s.Topo.Link(l).Capacity)
		s.fillUnfix = append(s.fillUnfix, int32(len(s.linkFlows[l])))
	}
	for _, f := range s.dirtyFlows {
		f.unfixed = true
	}
	if !s.sharded {
		// Ablation baseline: one joint fill over the whole dirty range,
		// exactly the pre-sharding allocator. Every bottleneck round
		// rescans all dirty links, so a refill with C components costs
		// roughly C times the sharded scan volume.
		s.fillSpan(compSpan{0, len(s.dirtyLinks), 0, len(s.dirtyFlows)})
		return
	}
	if len(s.comps) >= 2 && len(s.dirtyFlows) >= shardParMinFlows && mat.Parallelism() > 1 {
		//netlint:allow hotalloc one closure per sharded refill dispatch, amortized over all component fills it fans out
		mat.ParallelShards(len(s.comps), func(c int) { s.fillSpan(s.comps[c]) })
		return
	}
	for _, sp := range s.comps {
		s.fillSpan(sp)
	}
}

// fillSpan fills one component span with the selected backend.
//
//netlint:hotpath
func (s *Sim) fillSpan(sp compSpan) {
	if s.alloc == AllocBottleneck {
		s.fillSpanBottleneck(sp)
		return
	}
	s.fillSpanMaxMin(sp)
}

// fillSpanMaxMin runs progressive filling restricted to one component
// span, leaving each flow's share in f.newRate. Bottleneck ties are
// broken by the smallest link ID so the result is independent of
// discovery order. Concurrent spans are safe: a component's flows, their
// paths, and the span's fill slots are disjoint from every other span's
// by construction.
//
//netlint:hotpath
func (s *Sim) fillSpanMaxMin(sp compSpan) {
	remaining := sp.flowHi - sp.flowLo
	for remaining > 0 {
		// Bottleneck: minimum fair share among the span's links that still
		// carry unfixed flows; ties go to the smallest link ID.
		best := -1
		bestLink := topo.LinkID(-1)
		minShare := math.Inf(1)
		for k := sp.linkLo; k < sp.linkHi; k++ {
			if s.fillUnfix[k] == 0 {
				continue
			}
			l := s.dirtyLinks[k]
			share := s.fillCap[k] / float64(s.fillUnfix[k])
			//netlint:allow floatsafe exact equality is the smallest-link-ID tie-break; shares of equal links are bit-identical quotients and capacities are validated finite at AddLink
			if share < minShare || (share == minShare && l < bestLink) {
				minShare = share
				best = k
				bestLink = l
			}
		}
		if best < 0 {
			// No capacitated links left (cannot happen: every flow crosses
			// at least one link), but guard against an infinite loop.
			for i := sp.flowLo; i < sp.flowHi; i++ {
				if f := s.dirtyFlows[i]; f.unfixed {
					f.newRate = math.Inf(1)
					f.unfixed = false
				}
			}
			break
		}
		// Fix every unfixed flow on the bottleneck at minShare. Every flow
		// on a dirty link is in the dirty set by construction, and each
		// link's residual decreases by the same minShare per crossing
		// flow, so visiting order cannot change a single bit.
		for _, f := range s.linkFlows[bestLink] {
			if !f.unfixed {
				continue
			}
			f.newRate = minShare
			f.unfixed = false
			remaining--
			for _, l := range f.path {
				k := s.linkSlot[l]
				s.fillCap[k] -= minShare
				if s.fillCap[k] < 0 {
					s.fillCap[k] = 0
				}
				s.fillUnfix[k]--
			}
		}
	}
}

// commitDirty applies the freshly computed shares: flows whose rate
// actually changed are drained at their old rate up to now and their
// completion timer is rescheduled; flows whose share is unchanged keep
// their timer (it still fires at the exact completion instant because the
// rate has been constant since it was scheduled). Rescheduling happens in
// ascending flow-ID order so engine sequence numbers — the DES tie-break
// — are assigned deterministically.
func (s *Sim) commitDirty() {
	sort.Sort(flowsByID(s.dirtyFlows))
	now := s.Now()
	for _, f := range s.dirtyFlows {
		//netlint:allow floatsafe skip-if-unchanged wants bit-identity: a rate recomputed to the same bits must not reschedule the completion timer
		if f.newRate == f.rate && f.completion != nil {
			continue
		}
		f.remaining -= f.rate * (now - f.lastUpdate)
		if f.remaining < 0 {
			f.remaining = 0
		}
		f.lastUpdate = now
		f.rate = f.newRate
		if f.completion != nil {
			f.completion.Cancel()
			f.completion = nil
		}
		if f.rate <= 0 {
			continue
		}
		eta := f.remaining / f.rate
		ff := f
		f.completion = s.Eng.After(eta, func() { s.complete(ff) })
	}
}

type flowsByID []*Flow

func (v flowsByID) Len() int           { return len(v) }
func (v flowsByID) Less(i, j int) bool { return v[i].ID < v[j].ID }
func (v flowsByID) Swap(i, j int)      { v[i], v[j] = v[j], v[i] }

// recomputeGlobal is the pre-optimization allocator: drain every active
// flow, refill the whole network, reschedule every completion. Kept as
// the ablation baseline; it uses the same smallest-link-ID tie-break as
// the incremental path so the two are comparable bit for bit.
func (s *Sim) recomputeGlobal() {
	now := s.Now()
	for _, f := range s.active {
		f.remaining -= f.rate * (now - f.lastUpdate)
		if f.remaining < 0 {
			f.remaining = 0
		}
		f.lastUpdate = now
	}
	rates := s.referenceRates()
	for _, f := range s.active {
		f.rate = rates[f.ID]
	}
	// Reschedule completions under the new rates, in flow-ID order for
	// deterministic engine sequence numbers.
	ordered := make([]*Flow, 0, len(s.active))
	for _, f := range s.active {
		ordered = append(ordered, f)
	}
	sort.Sort(flowsByID(ordered))
	for _, f := range ordered {
		if f.completion != nil {
			f.completion.Cancel()
			f.completion = nil
		}
		if f.rate <= 0 {
			continue
		}
		eta := f.remaining / f.rate
		ff := f
		f.completion = s.Eng.After(eta, func() { s.complete(ff) })
	}
}

// referenceRates computes a whole-network progressive fill from scratch
// and returns the resulting per-flow rates without touching simulator
// state. It is the specification the incremental allocator is verified
// against.
func (s *Sim) referenceRates() map[int64]float64 {
	type linkState struct {
		capLeft float64
		nUnfix  int
	}
	links := make(map[topo.LinkID]*linkState, len(s.linkFlows))
	for i, flows := range s.linkFlows {
		if len(flows) == 0 {
			continue
		}
		id := topo.LinkID(i)
		links[id] = &linkState{
			capLeft: s.Topo.Link(id).Capacity,
			nUnfix:  len(flows),
		}
	}
	rates := make(map[int64]float64, len(s.active))
	unfixed := make(map[int64]*Flow, len(s.active))
	for id, f := range s.active {
		unfixed[id] = f
	}
	for len(unfixed) > 0 {
		bottleneck := topo.LinkID(-1)
		minShare := math.Inf(1)
		for id, ls := range links {
			if ls.nUnfix == 0 {
				continue
			}
			share := ls.capLeft / float64(ls.nUnfix)
			//netlint:allow floatsafe exact equality is the smallest-link-ID tie-break mirroring the incremental allocator bit for bit
			if share < minShare || (share == minShare && id < bottleneck) {
				minShare = share
				bottleneck = id
			}
		}
		if bottleneck < 0 {
			for id := range unfixed {
				rates[id] = math.Inf(1)
			}
			break
		}
		for _, f := range s.linkFlows[bottleneck] {
			if _, ok := unfixed[f.ID]; !ok {
				continue
			}
			rates[f.ID] = minShare
			delete(unfixed, f.ID)
			for _, l := range f.path {
				ls := links[l]
				ls.capLeft -= minShare
				if ls.capLeft < 0 {
					ls.capLeft = 0
				}
				ls.nUnfix--
			}
		}
	}
	return rates
}

// verifyAgainstGlobal compares every active flow's incremental rate with
// a fresh whole-network fill, bit for bit.
func (s *Sim) verifyAgainstGlobal() error {
	ref := s.referenceRates()
	for id, f := range s.active {
		//netlint:allow floatsafe this differential check is bit-for-bit by design: incremental and global fills must agree exactly, not within tolerance
		if want := ref[id]; f.rate != want {
			return fmt.Errorf("simnet: t=%v flow %d: incremental rate %v != global rate %v (diff %g)",
				s.Now(), id, f.rate, want, f.rate-want)
		}
	}
	return nil
}

// ActiveFlows returns the number of currently draining flows.
func (s *Sim) ActiveFlows() int { return len(s.active) }

// RunUntilDone advances the simulation until the given flow completes.
// It panics if the event queue drains first (a stalled flow would
// otherwise hang silently).
func (s *Sim) RunUntilDone(f *Flow) {
	for !f.finished {
		if !s.Eng.Step() {
			panic(fmt.Sprintf("simnet: event queue drained before flow %d completed", f.ID))
		}
	}
}

// Transfer synchronously sends bytes from src to dst and returns the
// elapsed simulated time. Background flows continue to progress and
// interfere during the transfer.
func (s *Sim) Transfer(src, dst int, bytes float64) float64 {
	start := s.Now()
	f := s.StartFlow(src, dst, bytes, nil)
	s.RunUntilDone(f)
	return s.Now() - start
}

// Pingpong measures round-trip style calibration like SKaMPI's
// Pingpong_Send_Recv (paper §IV-B): the latency estimate is the elapsed
// time of a 1-byte message, the bandwidth estimate is bulkBytes divided by
// the elapsed time of a bulk transfer (8 MB by default in the paper).
func (s *Sim) Pingpong(src, dst int, bulkBytes float64) (alpha, beta float64) {
	alpha = s.Transfer(src, dst, 1)
	elapsed := s.Transfer(src, dst, bulkBytes)
	data := elapsed - alpha // subtract the latency component of the α-β model
	if data <= 0 {
		data = elapsed
	}
	beta = bulkBytes / data
	return alpha, beta
}

// Background is a handle to a Poisson background-traffic source.
type Background struct {
	stopped bool
}

// Stop halts the source after its current message (if any) completes.
func (b *Background) Stop() { b.stopped = true }

// AddBackground installs a background-traffic source on a fixed (src, dst)
// pair: it repeatedly waits an exponential time with mean lambda seconds
// (the paper's "waiting time satisfies Poisson distribution with expected
// value λ") and then sends msgBytes. The source runs until stopped.
func (s *Sim) AddBackground(rng *rand.Rand, src, dst int, msgBytes, lambda float64) *Background {
	b := &Background{}
	var loop func()
	loop = func() {
		if b.stopped {
			return
		}
		wait := stats.Exponential(rng, lambda)
		s.Eng.After(wait, func() {
			if b.stopped {
				return
			}
			s.StartFlow(src, dst, msgBytes, func(float64) { loop() })
		})
	}
	loop()
	return b
}

// CheckInvariants verifies the defining properties of a max-min fair
// allocation at the current instant:
//   - feasibility: on every link, the allocated rates sum to at most the
//     capacity (within tolerance);
//   - positivity: every active flow has a positive rate;
//   - work conservation: every active flow is bottlenecked somewhere — it
//     crosses at least one link whose capacity is (nearly) fully used;
//   - max-min bottleneck condition: on that saturated link the flow's
//     rate is at least as large as every other flow's (within tolerance),
//     i.e. no flow could be sped up without slowing a smaller-or-equal
//     flow — the textbook characterization of max-min fairness.
//
// It returns an error describing the first violation. Intended for tests.
func (s *Sim) CheckInvariants() error {
	const tol = 1e-6
	// Walk flows in ID order: link utilization sums then accumulate in a
	// fixed order (float addition does not commute across reorderings)
	// and the first violation reported is the same on every run.
	flows := make([]*Flow, 0, len(s.active))
	for _, f := range s.active {
		flows = append(flows, f)
	}
	sort.Sort(flowsByID(flows))
	used := make(map[topo.LinkID]float64)
	maxRate := make(map[topo.LinkID]float64)
	for _, f := range flows {
		if f.rate <= 0 {
			return fmt.Errorf("simnet: active flow %d has non-positive rate %v", f.ID, f.rate)
		}
		for _, l := range f.path {
			used[l] += f.rate
			if f.rate > maxRate[l] {
				maxRate[l] = f.rate
			}
		}
	}
	links := make([]topo.LinkID, 0, len(used))
	for id := range used {
		links = append(links, id)
	}
	sort.Slice(links, func(i, j int) bool { return links[i] < links[j] })
	for _, id := range links {
		u := used[id]
		capac := s.Topo.Link(id).Capacity
		if u > capac*(1+tol) {
			return fmt.Errorf("simnet: link %d oversubscribed: %v > %v", id, u, capac)
		}
	}
	for _, f := range flows {
		bottleneck := topo.LinkID(-1)
		for _, l := range f.path {
			if used[l] < s.Topo.Link(l).Capacity*(1-1e-3) {
				continue
			}
			bottleneck = l
			if f.rate*(1+tol) >= maxRate[l] {
				break // saturated link where f is (one of) the largest flows
			}
			bottleneck = -1
		}
		if bottleneck < 0 {
			return fmt.Errorf("simnet: flow %d (rate %v) has no saturated path link where its rate is maximal", f.ID, f.rate)
		}
	}
	return nil
}
