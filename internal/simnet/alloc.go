package simnet

// Allocator backends and the exported knobs around the component-sharded
// fill: allocator selection, the sharding ablation switch, whole-network
// refills for benchmarking, rate fingerprints for byte-identity checks,
// and the bottleneck-structure backend.

import (
	"math"
	"sort"

	"netconstant/internal/topo"
)

// AllocatorKind selects the bandwidth-sharing backend of a Sim.
type AllocatorKind int

const (
	// AllocDefault leaves the current backend unchanged (SetAllocator
	// with AllocDefault is a pure query).
	AllocDefault AllocatorKind = iota
	// AllocMaxMin is the incremental max-min allocator: progressive
	// filling restricted to the dirty component(s), sharded across
	// components. The default.
	AllocMaxMin
	// AllocGlobalMaxMin refills the whole network on every event — the
	// pre-optimization baseline, bit-identical to AllocMaxMin.
	AllocGlobalMaxMin
	// AllocBottleneck is the bottleneck-structure backend (after
	// Ros-Giralt et al.): level-synchronous water-filling that freezes
	// every current-minimum link per round instead of one. It computes
	// the same max-min allocation in exact arithmetic, but its
	// floating-point rounding may differ from progressive filling by
	// ulps, so it is differential-tested within tolerance, never bit for
	// bit.
	AllocBottleneck
)

// String names the allocator for reports and benchmark JSON.
func (k AllocatorKind) String() string {
	switch k {
	case AllocDefault:
		return "default"
	case AllocMaxMin:
		return "maxmin"
	case AllocGlobalMaxMin:
		return "global-maxmin"
	case AllocBottleneck:
		return "bottleneck-structure"
	}
	return "unknown"
}

// SetAllocator selects the bandwidth-sharing backend and returns the
// previous one. AllocDefault queries without changing. Switching between
// backends mid-simulation is allowed — the next event recomputes rates
// under the new backend.
func (s *Sim) SetAllocator(k AllocatorKind) AllocatorKind {
	prev := s.alloc
	if k != AllocDefault {
		s.alloc = k
	}
	return prev
}

// SetShardedFill toggles component-restricted filling and returns the
// previous setting. Off, every event fills its whole dirty range jointly
// (the pre-sharding allocator); rates are byte-identical either way, so
// this is purely a performance ablation.
func (s *Sim) SetShardedFill(on bool) bool {
	prev := s.sharded
	s.sharded = on
	return prev
}

// SetVerifyGlobal arms (or disarms) the differential oracle: after every
// incremental max-min recompute, every active flow's rate is re-derived
// with a fresh whole-network fill and the first bitwise mismatch is
// recorded (see VerifyError). Quadratic — tests only. The check only
// runs under AllocMaxMin; the bottleneck backend is not bit-comparable.
func (s *Sim) SetVerifyGlobal(on bool) bool {
	prev := s.verifyGlobal
	s.verifyGlobal = on
	return prev
}

// VerifyError returns the first differential-oracle mismatch, or nil.
func (s *Sim) VerifyError() error { return s.verifyErr }

// RefillAll recomputes every active flow's allocation from scratch by
// seeding the recompute with every occupied link. Under max-min backends
// the result bit-equals the standing rates, so unchanged flows keep
// their completion timers and simulation state is undisturbed — which
// makes RefillAll repeatable for benchmarking the fill itself. It
// returns the dirty-subgraph shape of the refill: the number of
// connected components and of active flows visited (1 and ActiveFlows()
// under AllocGlobalMaxMin, which has no component structure).
func (s *Sim) RefillAll() (components, flows int) {
	s.allSeeds = s.allSeeds[:0]
	for i, fl := range s.linkFlows {
		if len(fl) > 0 {
			s.allSeeds = append(s.allSeeds, topo.LinkID(i))
		}
	}
	s.recompute(s.allSeeds)
	if s.alloc == AllocGlobalMaxMin {
		return 1, len(s.active)
	}
	return len(s.comps), len(s.dirtyFlows)
}

// RateFingerprint folds every active flow's ID and exact rate bits into
// one 64-bit hash, in flow-ID order. Two simulators (or two runs) with
// byte-identical allocations produce equal fingerprints; a single ulp of
// divergence changes the value. Used by the byte-identity gates in the
// benchmarks and chaos oracles.
func (s *Sim) RateFingerprint() uint64 {
	ids := make([]int64, 0, len(s.active))
	for id := range s.active {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	h := uint64(0x243f6a8885a308d3)
	for _, id := range ids {
		h = mix64(h ^ uint64(id))
		h = mix64(h ^ math.Float64bits(s.active[id].rate))
	}
	return h
}

// fillSpanBottleneck fills one component span with the
// bottleneck-structure backend: each round finds the minimum fair share
// among the span's links, freezes the whole level — every link currently
// at that minimum — and fixes all their flows at that share. Level
// membership is decided from the pre-round state before any flow is
// fixed, because fixing flows on one level link perturbs the residual
// share of its siblings.
func (s *Sim) fillSpanBottleneck(sp compSpan) {
	remaining := sp.flowHi - sp.flowLo
	var level []int
	for remaining > 0 {
		minShare := math.Inf(1)
		for k := sp.linkLo; k < sp.linkHi; k++ {
			if s.fillUnfix[k] == 0 {
				continue
			}
			if share := s.fillCap[k] / float64(s.fillUnfix[k]); share < minShare {
				minShare = share
			}
		}
		if math.IsInf(minShare, 1) {
			for i := sp.flowLo; i < sp.flowHi; i++ {
				if f := s.dirtyFlows[i]; f.unfixed {
					f.newRate = math.Inf(1)
					f.unfixed = false
				}
			}
			return
		}
		level = level[:0]
		for k := sp.linkLo; k < sp.linkHi; k++ {
			if s.fillUnfix[k] > 0 && s.fillCap[k]/float64(s.fillUnfix[k]) == minShare {
				level = append(level, k)
			}
		}
		// At least the first link attaining the minimum still has an
		// unfixed flow, so every round makes progress.
		for _, k := range level {
			for _, f := range s.linkFlows[s.dirtyLinks[k]] {
				if !f.unfixed {
					continue
				}
				f.newRate = minShare
				f.unfixed = false
				remaining--
				for _, l := range f.path {
					kk := s.linkSlot[l]
					s.fillCap[kk] -= minShare
					if s.fillCap[kk] < 0 {
						s.fillCap[kk] = 0
					}
					s.fillUnfix[kk]--
				}
			}
		}
	}
}

// bottleneckRates computes a whole-network bottleneck-structure fill
// from scratch and returns the per-flow rates without touching simulator
// state — the specification side of AllocatorAgreement.
func (s *Sim) bottleneckRates() map[int64]float64 {
	capLeft := make([]float64, len(s.linkFlows))
	nUnfix := make([]int, len(s.linkFlows))
	occupied := make([]topo.LinkID, 0, len(s.linkFlows))
	for i, flows := range s.linkFlows {
		if len(flows) == 0 {
			continue
		}
		id := topo.LinkID(i)
		occupied = append(occupied, id)
		capLeft[i] = s.Topo.Link(id).Capacity
		nUnfix[i] = len(flows)
	}
	rates := make(map[int64]float64, len(s.active))
	remaining := len(s.active)
	level := make([]topo.LinkID, 0, len(occupied))
	for remaining > 0 {
		minShare := math.Inf(1)
		for _, l := range occupied {
			if nUnfix[l] == 0 {
				continue
			}
			if share := capLeft[l] / float64(nUnfix[l]); share < minShare {
				minShare = share
			}
		}
		if math.IsInf(minShare, 1) {
			for id := range s.active {
				if _, done := rates[id]; !done {
					rates[id] = math.Inf(1)
				}
			}
			return rates
		}
		level = level[:0]
		for _, l := range occupied {
			if nUnfix[l] > 0 && capLeft[l]/float64(nUnfix[l]) == minShare {
				level = append(level, l)
			}
		}
		for _, l := range level {
			for _, f := range s.linkFlows[l] {
				if _, done := rates[f.ID]; done {
					continue
				}
				rates[f.ID] = minShare
				remaining--
				for _, pl := range f.path {
					capLeft[pl] -= minShare
					if capLeft[pl] < 0 {
						capLeft[pl] = 0
					}
					nUnfix[pl]--
				}
			}
		}
	}
	return rates
}

// AllocatorAgreement recomputes the current allocation from scratch with
// both backends — progressive-filling max-min and bottleneck-structure —
// and returns the maximum relative per-flow rate difference, without
// touching simulator state. Theory says the two compute the same
// allocation; the observed value is floating-point rounding skew
// (typically well under 1e-12, asserted ≤1e-9 by the differential
// tests).
func (s *Sim) AllocatorAgreement() float64 {
	ref := s.referenceRates()
	bs := s.bottleneckRates()
	ids := make([]int64, 0, len(ref))
	for id := range ref {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	var maxRel float64
	for _, id := range ids {
		a, b := ref[id], bs[id]
		if math.IsInf(a, 1) && math.IsInf(b, 1) {
			continue
		}
		d := math.Abs(a - b)
		if m := math.Max(math.Abs(a), math.Abs(b)); m > 0 {
			d /= m
		}
		if d > maxRel {
			maxRel = d
		}
	}
	return maxRel
}
