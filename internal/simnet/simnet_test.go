package simnet

import (
	"math"
	"math/rand"
	"testing"

	"netconstant/internal/topo"
)

// twoRackSim builds a small deterministic test fabric:
// 2 racks × 2 servers, intra 100 B/s, inter 1000 B/s, hop latency 0.01 s.
func twoRackSim() (*Sim, []int) {
	tr := topo.NewTree(topo.TreeConfig{Racks: 2, ServersPerRack: 2, IntraRackBps: 100, InterRackBps: 1000, HopLatency: 0.01})
	return New(tr), tr.Servers()
}

func TestSingleFlowTiming(t *testing.T) {
	s, srv := twoRackSim()
	// Same-rack transfer: 2 hops latency (0.02) + 100 bytes at 100 B/s = 1.02 s.
	elapsed := s.Transfer(srv[0], srv[1], 100)
	if math.Abs(elapsed-1.02) > 1e-9 {
		t.Errorf("same-rack elapsed %v", elapsed)
	}
	// Cross-rack: 4 hops (0.04) + bottleneck is the 100 B/s server link.
	elapsed = s.Transfer(srv[0], srv[2], 100)
	if math.Abs(elapsed-1.04) > 1e-9 {
		t.Errorf("cross-rack elapsed %v", elapsed)
	}
}

func TestZeroByteFlow(t *testing.T) {
	s, srv := twoRackSim()
	elapsed := s.Transfer(srv[0], srv[1], 0)
	if math.Abs(elapsed-0.02) > 1e-12 {
		t.Errorf("zero-byte flow should take pure latency, got %v", elapsed)
	}
}

func TestFlowPanics(t *testing.T) {
	s, srv := twoRackSim()
	mustPanic(t, func() { s.StartFlow(srv[0], srv[0], 1, nil) })
	mustPanic(t, func() { s.StartFlow(srv[0], srv[1], -5, nil) })
}

func mustPanic(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	f()
}

func TestFairSharingTwoFlowsSameLink(t *testing.T) {
	// Two flows from the same server share its 100 B/s uplink: each gets 50.
	s, srv := twoRackSim()
	var t1, t2 float64
	f1 := s.StartFlow(srv[0], srv[1], 100, func(at float64) { t1 = at })
	f2 := s.StartFlow(srv[0], srv[1], 100, func(at float64) { t2 = at })
	s.RunUntilDone(f1)
	s.RunUntilDone(f2)
	// Both: 0.02 latency + 100 bytes at 50 B/s = 2.02.
	if math.Abs(t1-2.02) > 1e-9 || math.Abs(t2-2.02) > 1e-9 {
		t.Errorf("shared flows finished at %v, %v", t1, t2)
	}
}

func TestFairSharingDisjointPaths(t *testing.T) {
	// Flows on disjoint paths do not interfere.
	s, srv := twoRackSim()
	var t1 float64
	f1 := s.StartFlow(srv[0], srv[1], 100, func(at float64) { t1 = at })
	f2 := s.StartFlow(srv[2], srv[3], 100, nil)
	s.RunUntilDone(f1)
	s.RunUntilDone(f2)
	if math.Abs(t1-1.02) > 1e-9 {
		t.Errorf("disjoint flow slowed down: %v", t1)
	}
}

func TestMaxMinRateRedistribution(t *testing.T) {
	// A short flow finishing early returns capacity to a long flow.
	s, srv := twoRackSim()
	var tLong float64
	long := s.StartFlow(srv[0], srv[1], 150, func(at float64) { tLong = at })
	s.StartFlow(srv[0], srv[1], 50, nil)
	s.RunUntilDone(long)
	// Phase 1: both at 50 B/s until the short flow drains 50 bytes (1 s
	// after activation at 0.02). Long has 100 left, then runs at 100 B/s
	// for 1 s. Total: 0.02 + 1 + 1 = 2.02.
	if math.Abs(tLong-2.02) > 1e-6 {
		t.Errorf("long flow finished at %v, want 2.02", tLong)
	}
}

func TestCrossRackContentionOnUplink(t *testing.T) {
	// Many cross-rack flows can saturate the 1000 B/s core uplink.
	tr := topo.NewTree(topo.TreeConfig{Racks: 2, ServersPerRack: 20, IntraRackBps: 100, InterRackBps: 1000, HopLatency: 1e-12})
	s := New(tr)
	srv := tr.Servers()
	// 20 flows rack0 -> rack1, each limited to min(100, 1000/20=50) = 50 B/s.
	var last float64
	var flows []*Flow
	for i := 0; i < 20; i++ {
		f := s.StartFlow(srv[i], srv[20+i], 100, func(at float64) { last = at })
		flows = append(flows, f)
	}
	for _, f := range flows {
		s.RunUntilDone(f)
	}
	if math.Abs(last-2.0) > 1e-6 {
		t.Errorf("uplink-contended flows finished at %v, want 2.0", last)
	}
}

func TestPingpong(t *testing.T) {
	s, srv := twoRackSim()
	alpha, beta := s.Pingpong(srv[0], srv[1], 1000)
	// Alpha ≈ 2 hops latency + 1 byte at 100 B/s = 0.02 + 0.01 = 0.03.
	if math.Abs(alpha-0.03) > 1e-9 {
		t.Errorf("alpha %v", alpha)
	}
	// Beta ≈ 100 B/s (the bottleneck link).
	if math.Abs(beta-100) > 1.0 {
		t.Errorf("beta %v", beta)
	}
}

func TestBackgroundTrafficInterferes(t *testing.T) {
	s, srv := twoRackSim()
	rng := rand.New(rand.NewSource(1))
	// Heavy background: essentially always sending on the same path.
	bg := s.AddBackground(rng, srv[0], srv[1], 1e6, 0.001)
	elapsed := s.Transfer(srv[0], srv[1], 100)
	bg.Stop()
	// With a competitor almost always active, the probe should take about
	// twice the exclusive time (1.02); allow a broad band.
	if elapsed < 1.5 {
		t.Errorf("background should slow the probe: %v", elapsed)
	}
}

func TestBackgroundStop(t *testing.T) {
	s, srv := twoRackSim()
	rng := rand.New(rand.NewSource(2))
	bg := s.AddBackground(rng, srv[0], srv[1], 100, 0.5)
	bg.Stop()
	// After stopping, the queue should drain in bounded steps.
	steps := 0
	for s.Eng.Step() {
		steps++
		if steps > 10000 {
			t.Fatal("background did not stop")
		}
	}
}

func TestActiveFlowsAccounting(t *testing.T) {
	s, srv := twoRackSim()
	f := s.StartFlow(srv[0], srv[1], 100, nil)
	if s.ActiveFlows() != 0 {
		t.Error("flow should not be active before latency elapses")
	}
	s.Eng.RunUntil(0.03)
	if s.ActiveFlows() != 1 {
		t.Error("flow should be active after activation")
	}
	s.RunUntilDone(f)
	if s.ActiveFlows() != 0 {
		t.Error("flow should be removed after completion")
	}
	if !f.Finished() {
		t.Error("finished flag")
	}
	if f.Start() != 0 {
		t.Error("start time")
	}
}

func TestRunUntilDonePanicsOnDrain(t *testing.T) {
	s, srv := twoRackSim()
	f := &Flow{ID: 999}
	_ = srv
	mustPanic(t, func() { s.RunUntilDone(f) })
}

// Conservation property: total bytes delivered equals total bytes sent for
// a randomized batch of concurrent flows.
func TestPropertyAllFlowsComplete(t *testing.T) {
	tr := topo.NewTree(topo.TreeConfig{Racks: 4, ServersPerRack: 4, IntraRackBps: 1e6, InterRackBps: 4e6, HopLatency: 1e-4})
	srv := tr.Servers()
	for seed := int64(0); seed < 10; seed++ {
		s := New(tr)
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(20)
		completed := 0
		var flows []*Flow
		for i := 0; i < n; i++ {
			a := srv[rng.Intn(len(srv))]
			b := srv[rng.Intn(len(srv))]
			if a == b {
				continue
			}
			f := s.StartFlow(a, b, 1000+rng.Float64()*1e6, func(float64) { completed++ })
			flows = append(flows, f)
		}
		s.Eng.Run()
		if completed != len(flows) {
			t.Fatalf("seed %d: %d/%d flows completed", seed, completed, len(flows))
		}
		for _, f := range flows {
			if !f.Finished() {
				t.Fatalf("seed %d: unfinished flow", seed)
			}
		}
	}
}

// Monotonicity property: adding a competing flow never speeds up a probe.
func TestPropertyContentionMonotonic(t *testing.T) {
	tr := topo.NewTree(topo.TreeConfig{Racks: 2, ServersPerRack: 4, IntraRackBps: 1e5, InterRackBps: 2e5, HopLatency: 1e-4})
	srv := tr.Servers()
	for seed := int64(0); seed < 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		a, b := srv[0], srv[4+rng.Intn(4)]
		bytes := 1e5 * (0.5 + rng.Float64())

		clean := New(tr).Transfer(a, b, bytes)

		s := New(tr)
		s.StartFlow(srv[1], srv[5], 1e6, nil) // competitor sharing the uplink
		loaded := s.Transfer(a, b, bytes)

		if loaded+1e-9 < clean {
			t.Fatalf("seed %d: contention sped up transfer: %v < %v", seed, loaded, clean)
		}
	}
}

func TestDeterministicReplay(t *testing.T) {
	run := func() float64 {
		s, srv := twoRackSim()
		rng := rand.New(rand.NewSource(7))
		s.AddBackground(rng, srv[2], srv[3], 500, 0.2)
		s.AddBackground(rng, srv[0], srv[2], 300, 0.1)
		return s.Transfer(srv[0], srv[1], 1000)
	}
	if run() != run() {
		t.Error("same seed should replay identically")
	}
}

// Property: the max-min allocation is feasible, positive, and
// work-conserving throughout a randomized run.
func TestPropertyMaxMinInvariants(t *testing.T) {
	tr := topo.NewTree(topo.TreeConfig{Racks: 3, ServersPerRack: 4, IntraRackBps: 1e6, InterRackBps: 2e6, HopLatency: 1e-4})
	srv := tr.Servers()
	for seed := int64(0); seed < 6; seed++ {
		s := New(tr)
		rng := rand.New(rand.NewSource(seed))
		for k := 0; k < 25; k++ {
			a := srv[rng.Intn(len(srv))]
			b := srv[rng.Intn(len(srv))]
			if a == b {
				continue
			}
			s.StartFlow(a, b, 1e5+rng.Float64()*1e6, nil)
		}
		steps := 0
		for s.Eng.Step() {
			if err := s.CheckInvariants(); err != nil {
				t.Fatalf("seed %d after %d steps: %v", seed, steps, err)
			}
			steps++
			if steps > 100000 {
				t.Fatal("simulation did not drain")
			}
		}
	}
}

// Differential test for the tentpole optimization: on seeded random
// workloads — staggered arrivals, mixed sizes, background churn — every
// incremental recompute must produce rates bitwise equal to a fresh
// whole-network progressive fill over the same state. verifyGlobal makes
// the simulator itself run the reference allocator side by side after
// every event.
func TestDifferentialIncrementalVsGlobal(t *testing.T) {
	topos := []*topo.Topology{
		topo.NewTree(topo.TreeConfig{Racks: 3, ServersPerRack: 4, IntraRackBps: 1e6, InterRackBps: 2e6, HopLatency: 1e-4}),
		topo.NewTree(topo.TreeConfig{Racks: 4, ServersPerRack: 8, IntraRackBps: 1e8, InterRackBps: 4e8, HopLatency: 5e-5}),
		topo.NewFatTree(topo.FatTreeConfig{K: 4, LinkBps: 1e8, HopLatency: 1e-4}),
	}
	for seed := int64(1); seed <= 4; seed++ {
		for ti, tr := range topos {
			s := New(tr)
			s.verifyGlobal = true
			rng := rand.New(rand.NewSource(seed))
			srv := tr.Servers()
			// Staggered foreground arrivals with a wide size spread so
			// flows overlap and components merge and split repeatedly.
			for k := 0; k < 40; k++ {
				a := srv[rng.Intn(len(srv))]
				b := srv[rng.Intn(len(srv))]
				if a == b {
					continue
				}
				bytes := math.Pow(10, 4+3*rng.Float64())
				at := rng.Float64() * 2
				aa, bb := a, b
				s.Eng.Schedule(at, func() { s.StartFlow(aa, bb, bytes, nil) })
			}
			// Background churn on a few fixed pairs.
			var bgs []*Background
			for k := 0; k < 5; k++ {
				a := srv[rng.Intn(len(srv))]
				b := srv[(rng.Intn(len(srv)-1)+1+a)%len(srv)]
				if a == b {
					continue
				}
				bgs = append(bgs, s.AddBackground(rand.New(rand.NewSource(seed*100+int64(k))), a, b, 5e5, 0.05))
			}
			s.Eng.RunUntil(3)
			for _, b := range bgs {
				b.Stop()
			}
			s.Eng.RunUntil(6)
			if s.verifyErr != nil {
				t.Fatalf("seed %d topo %d: incremental diverged from global: %v", seed, ti, s.verifyErr)
			}
			if s.ActiveFlows() != 0 {
				// Background flows submitted before Stop may still drain.
				s.Eng.Run()
			}
			if s.verifyErr != nil {
				t.Fatalf("seed %d topo %d (drain): %v", seed, ti, s.verifyErr)
			}
		}
	}
}

// The global ablation allocator must drive the simulation to the same
// flow completion outcomes as the incremental one (times may differ only
// in the last ulps from drain-accrual order, so compare counts and
// near-equal clocks).
func TestGlobalFillAblationAgrees(t *testing.T) {
	tr := topo.NewTree(topo.TreeConfig{Racks: 3, ServersPerRack: 4, IntraRackBps: 1e6, InterRackBps: 2e6, HopLatency: 1e-4})
	srv := tr.Servers()
	run := func(global bool) (int, float64) {
		s := New(tr)
		s.SetGlobalFill(global)
		rng := rand.New(rand.NewSource(9))
		completed := 0
		for k := 0; k < 30; k++ {
			a := srv[rng.Intn(len(srv))]
			b := srv[rng.Intn(len(srv))]
			if a == b {
				continue
			}
			at := rng.Float64()
			bytes := 1e5 + rng.Float64()*1e6
			aa, bb := a, b
			s.Eng.Schedule(at, func() {
				s.StartFlow(aa, bb, bytes, func(float64) { completed++ })
			})
		}
		s.Eng.Run()
		return completed, s.Now()
	}
	nInc, tInc := run(false)
	nGlb, tGlb := run(true)
	if nInc != nGlb {
		t.Fatalf("completion counts differ: incremental %d, global %d", nInc, nGlb)
	}
	if math.Abs(tInc-tGlb) > 1e-9*math.Max(tInc, tGlb) {
		t.Fatalf("final clocks diverged beyond ulp noise: incremental %v, global %v", tInc, tGlb)
	}
}

// Property test over richer seeded workloads than the static-arrival one
// above: flows arrive over time, with background churn, and after every
// event the allocation must satisfy feasibility, positivity, and the
// max-min bottleneck condition.
func TestPropertyMaxMinInvariantsChurn(t *testing.T) {
	tr := topo.NewTree(topo.TreeConfig{Racks: 4, ServersPerRack: 4, IntraRackBps: 1e6, InterRackBps: 3e6, HopLatency: 1e-4})
	srv := tr.Servers()
	for seed := int64(0); seed < 8; seed++ {
		s := New(tr)
		rng := rand.New(rand.NewSource(seed))
		for k := 0; k < 30; k++ {
			a := srv[rng.Intn(len(srv))]
			b := srv[rng.Intn(len(srv))]
			if a == b {
				continue
			}
			at := rng.Float64() * 3
			bytes := 1e4 + rng.Float64()*2e6
			aa, bb := a, b
			s.Eng.Schedule(at, func() { s.StartFlow(aa, bb, bytes, nil) })
		}
		bg := s.AddBackground(rand.New(rand.NewSource(seed+50)), srv[0], srv[len(srv)-1], 3e5, 0.1)
		steps := 0
		for s.Eng.Step() {
			if err := s.CheckInvariants(); err != nil {
				t.Fatalf("seed %d after %d steps: %v", seed, steps, err)
			}
			steps++
			if steps > 5000 {
				bg.Stop()
			}
			if steps > 200000 {
				t.Fatal("simulation did not drain")
			}
		}
	}
}
