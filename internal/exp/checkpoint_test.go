package exp

import (
	"context"
	"errors"
	"math/rand"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"netconstant/internal/cancel"
)

// TestSweepResumeByteIdentical is the PR's resume acceptance test at the
// package level: a figure interrupted mid-sweep (graceful cancellation
// after a few journaled points) and resumed from its checkpoint — at a
// different worker count — must render byte-identical tables to an
// uninterrupted run.
func TestSweepResumeByteIdentical(t *testing.T) {
	cfg := Quick()
	cfg.Runs = 8
	cfg.VMs = 8
	cfg.SmallVMs = 4

	fresh := cfg
	fresh.Workers = 2
	want, err := Fig7Overall(fresh)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()

	// Interrupted run: cancel after 3 journaled points, 4 workers.
	interrupted := cfg
	interrupted.Workers = 4
	ctx, stop := context.WithCancel(context.Background())
	interrupted.Ctx = ctx
	var done atomic.Int64
	interrupted.PointHook = func(string, int) {
		if done.Add(1) == 3 {
			stop()
		}
	}
	ck, err := OpenCheckpoint(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	interrupted.Ckpt = ck
	_, err = Fig7Overall(interrupted)
	stop()
	if !errors.Is(err, cancel.ErrCanceled) {
		t.Fatalf("interrupted run: err = %v, want typed cancellation", err)
	}
	var ce *cancel.Error
	if !errors.As(err, &ce) {
		t.Fatalf("interrupted run: err = %T, want *cancel.Error", err)
	}
	if ce.Done < 3 || ce.Done >= ce.Total {
		t.Fatalf("cancel provenance = %d/%d, want partial progress ≥ 3", ce.Done, ce.Total)
	}
	if err := ck.Close(); err != nil {
		t.Fatal(err)
	}

	// Resumed run: same checkpoint dir, different worker count.
	resumed := cfg
	resumed.Workers = 1
	ck2, err := OpenCheckpoint(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer ck2.Close()
	if st := ck2.Stats(); st.ResumedPoints < 3 {
		t.Fatalf("resumed %d points, want ≥ 3 journaled", st.ResumedPoints)
	}
	resumed.Ckpt = ck2
	var recomputed atomic.Int64
	resumed.PointHook = func(string, int) { recomputed.Add(1) }
	got, err := Fig7Overall(resumed)
	if err != nil {
		t.Fatal(err)
	}
	if int(recomputed.Load())+ck2.Stats().ResumedPoints != cfg.Runs {
		t.Errorf("recomputed %d + resumed %d != %d points",
			recomputed.Load(), ck2.Stats().ResumedPoints, cfg.Runs)
	}
	if got.Table.String() != want.Table.String() || got.CDFTable.String() != want.CDFTable.String() {
		t.Errorf("resumed tables differ from an uninterrupted run:\n--- fresh ---\n%s%s\n--- resumed ---\n%s%s",
			want.Table, want.CDFTable, got.Table, got.CDFTable)
	}
}

// TestCheckpointManifestMismatch: a journal recorded under one
// configuration must refuse to resume a run with a different one.
func TestCheckpointManifestMismatch(t *testing.T) {
	dir := t.TempDir()
	cfg := Quick()
	ck, err := OpenCheckpoint(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := ck.Close(); err != nil {
		t.Fatal(err)
	}
	other := cfg
	other.Seed = cfg.Seed + 1
	if _, err := OpenCheckpoint(dir, other); !errors.Is(err, ErrManifestMismatch) {
		t.Fatalf("err = %v, want ErrManifestMismatch", err)
	}
	// Workers is presentation, not content: a different worker count must
	// still resume.
	moreWorkers := cfg
	moreWorkers.Workers = 7
	ck2, err := OpenCheckpoint(dir, moreWorkers)
	if err != nil {
		t.Fatalf("worker-count change refused: %v", err)
	}
	ck2.Close()
}

// TestCheckpointSeedInvalidatesPoints: journaled slots only replay when
// the per-point provenance seed matches.
func TestCheckpointSeedInvalidatesPoints(t *testing.T) {
	dir := t.TempDir()
	cfg := Quick()
	ck, err := OpenCheckpoint(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer ck.Close()
	data, err := gobEncode(&struct{ V int }{41})
	if err != nil {
		t.Fatal(err)
	}
	if err := ck.recordPoint("figX", 2, PointSeed("figX", cfg.Seed, 2), data); err != nil {
		t.Fatal(err)
	}
	if _, ok := ck.lookup("figX", 2, PointSeed("figX", cfg.Seed, 2)); !ok {
		t.Error("matching provenance not replayed")
	}
	if _, ok := ck.lookup("figX", 2, PointSeed("figX", cfg.Seed+1, 2)); ok {
		t.Error("stale provenance replayed")
	}
	if _, ok := ck.lookup("figY", 2, PointSeed("figY", cfg.Seed, 2)); ok {
		t.Error("wrong figure replayed")
	}
}

// TestFigureTablesRoundTrip: finished figures journal their rendered
// tables and replay them across a reopen.
func TestFigureTablesRoundTrip(t *testing.T) {
	dir := t.TempDir()
	cfg := Quick()
	ck, err := OpenCheckpoint(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	tb := NewTable("T", "a", "b")
	tb.AddRow("1", "2")
	tb.AddNote("n = %d", 3)
	if err := ck.RecordFigure("fig7", []*Table{tb}); err != nil {
		t.Fatal(err)
	}
	if err := ck.Close(); err != nil {
		t.Fatal(err)
	}
	ck2, err := OpenCheckpoint(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer ck2.Close()
	got, ok := ck2.FigureTables("fig7")
	if !ok || len(got) != 1 {
		t.Fatalf("FigureTables = %v, %v; want the recorded table back", got, ok)
	}
	if got[0].String() != tb.String() {
		t.Errorf("table round-trip mismatch:\n%s\nvs\n%s", got[0], tb)
	}
	if _, ok := ck2.FigureTables("fig8"); ok {
		t.Error("unrecorded figure reported as finished")
	}
}

// TestRunPointsCancelDrains: cancellation is a graceful drain — no
// goroutine outlives the sweep, in-flight points complete, and the
// typed error reports partial progress.
func TestRunPointsCancelDrains(t *testing.T) {
	base := runtime.NumGoroutine()
	ctx, stop := context.WithCancel(context.Background())
	cfg := Config{Seed: 1, Workers: 4, Ctx: ctx}
	var completed atomic.Int64
	err := runPoints(cfg, "drain", 64, nil, nil, func(i int, _ *rand.Rand) error {
		if completed.Add(1) == 5 {
			stop()
		}
		return nil
	})
	stop()
	var ce *cancel.Error
	if !errors.As(err, &ce) || !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want *cancel.Error wrapping context.Canceled", err)
	}
	if ce.Done != int(completed.Load()) || ce.Total != 64 {
		t.Errorf("provenance %d/%d, completed %d", ce.Done, ce.Total, completed.Load())
	}
	// All workers must have exited by the time runPoints returns.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > base && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > base {
		t.Errorf("goroutines leaked: %d > %d baseline", n, base)
	}
}
