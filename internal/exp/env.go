package exp

import (
	"context"
	"math/rand"
	"time"

	"netconstant/internal/cloud"
	"netconstant/internal/core"
	"netconstant/internal/mapping"
	"netconstant/internal/mpi"
	"netconstant/internal/netmodel"
	"netconstant/internal/stats"
	"netconstant/internal/topo"
)

// Config scales the experiments. Quick (the default for tests and benches)
// shrinks cluster sizes and repetition counts so the full suite runs in
// seconds; Full reproduces the paper's scales (196 VMs, 1024-machine
// simulation, ≥100 repetitions) and is what cmd/expdriver -full runs.
type Config struct {
	Seed int64
	// VMs is the virtual cluster size (paper default 196).
	VMs int
	// SmallVMs is the smaller cluster of Fig 8 (paper: 64).
	SmallVMs int
	// Runs is the repetition count per data point (paper: >100).
	Runs int
	// MsgBytes is the collective message size (paper default 8 MB).
	MsgBytes float64
	// TimeStep is the TP-matrix row count (paper default 10).
	TimeStep int
	// Racks/ServersPerRack shape the synthetic data center.
	Racks          int
	ServersPerRack int
	// SimMachines is the simulated-cluster size for Fig 12/13 (paper: 1024
	// = 32×32).
	SimRacks          int
	SimServersPerRack int
	SimVMs            int
	// MigrationRate is VM migrations per VM per day.
	MigrationRate float64
	// Workers bounds how many sweep points run concurrently (0 =
	// GOMAXPROCS). Output tables are byte-identical at any setting.
	Workers int
	// Clock, when non-nil, supplies wall-clock readings for the few
	// results that are *about* real time (Fig 4's "< 1 min per RPCA"
	// claim). It is nil by default so internal/exp performs no wall-clock
	// reads — the determinism analyzer (cmd/netlint) enforces that — and
	// the affected cells report as skipped; cmd/expdriver injects
	// time.Now.
	Clock func() time.Time
	// Memo, when non-nil, caches calibration traces across figures:
	// identical (provider config, cluster size, seeds, calibration
	// procedure) tuples are measured once per driver run and replayed.
	// With a memo the calibration is always measured on a throwaway
	// identically seeded replica — cache hits and misses are
	// indistinguishable, so results stay deterministic at any worker
	// count (they differ from Memo=nil runs, whose calibration consumes
	// the environment's own rng and cluster streams).
	Memo *cloud.CalibrationMemo
	// Ctx, when non-nil, cancels the sweep: workers stop claiming new
	// points once it is done (in-flight points drain to completion and
	// are checkpointed), and the figure returns a *cancel.Error matching
	// cancel.ErrCanceled. The context also threads into calibration and
	// the RPCA solver loops. Nil means "never cancel".
	Ctx context.Context
	// Ckpt, when non-nil, journals every completed sweep point (keyed by
	// the figure name and its hashed PointSeed) and, on a resumed run,
	// replays journaled points instead of recomputing them. Because each
	// point's result lands in an index-addressed slot and each point's
	// rng stream is derived purely from (figure, seed, index), a resumed
	// sweep produces byte-identical tables to an uninterrupted one.
	Ckpt *Checkpoint
	// PointHook, when non-nil, is called after each sweep point completes
	// (and, when Ckpt is set, after it is journaled) with the figure name
	// and point index. Points run on worker goroutines, so the hook must
	// be safe for concurrent use. Used by crash/cancellation testing to
	// interrupt a run at a precise point count.
	PointHook func(figure string, index int)
}

// Quick returns a configuration sized for tests and laptops.
func Quick() Config {
	return Config{
		Seed:              1,
		VMs:               16,
		SmallVMs:          8,
		Runs:              12,
		MsgBytes:          8 << 20,
		TimeStep:          10,
		Racks:             8,
		ServersPerRack:    8,
		SimRacks:          8,
		SimServersPerRack: 8,
		SimVMs:            12,
		MigrationRate:     0.03,
	}
}

// Full returns the paper-scale configuration.
func Full() Config {
	return Config{
		Seed:              1,
		VMs:               196,
		SmallVMs:          64,
		Runs:              100,
		MsgBytes:          8 << 20,
		TimeStep:          10,
		Racks:             32,
		ServersPerRack:    32,
		SimRacks:          32,
		SimServersPerRack: 32,
		SimVMs:            64,
		MigrationRate:     0.003,
	}
}

// env bundles a provisioned synthetic cluster with a calibrated advisor.
type env struct {
	cfg      Config
	provider *cloud.Provider
	cluster  *cloud.VirtualCluster
	advisor  *core.Advisor
	rng      *rand.Rand
}

// newEnv provisions a cluster of n VMs and calibrates the advisor once.
func newEnv(cfg Config, n int, seedOffset int64) (*env, error) {
	return newEnvWith(cfg, n, seedOffset, cloud.ProviderConfig{})
}

// newEnvWith is newEnv with provider overrides (tree, seed and migration
// rate are still filled from cfg).
func newEnvWith(cfg Config, n int, seedOffset int64, pc cloud.ProviderConfig) (*env, error) {
	return newEnvAdv(cfg, n, seedOffset, pc, core.AdvisorConfig{TimeStep: cfg.TimeStep})
}

// newEnvAdv is the general entry point: provider overrides plus an
// advisor configuration (so figures sweeping advisor parameters pay for
// a single calibration instead of calibrating a throwaway advisor
// first). When cfg.Memo is set, the initial calibration goes through the
// calibration-trace memo: identical (provider config, size, seeds,
// calibration config) tuples are measured once per driver run.
func newEnvAdv(cfg Config, n int, seedOffset int64, pc cloud.ProviderConfig, advCfg core.AdvisorConfig) (*env, error) {
	pc.Tree = topo.TreeConfig{Racks: cfg.Racks, ServersPerRack: cfg.ServersPerRack}
	pc.Seed = cfg.Seed + seedOffset
	pc.MigrationRate = cfg.MigrationRate
	if advCfg.TimeStep == 0 {
		advCfg.TimeStep = cfg.TimeStep
	}
	p := cloud.NewProvider(pc)
	vc, err := p.Provision(n, cfg.Seed+seedOffset+1)
	if err != nil {
		return nil, err
	}
	rng := stats.NewRNG(cfg.Seed + seedOffset + 2)
	adv := core.NewAdvisor(vc, rng, advCfg)
	if err := calibrateEnv(cfg, n, seedOffset, pc, advCfg, vc, adv); err != nil {
		return nil, err
	}
	return &env{cfg: cfg, provider: p, cluster: vc, advisor: adv, rng: rng}, nil
}

// calibrateEnv runs the advisor's initial calibration. Without a memo it
// measures the environment's own cluster (the advisor's normal path).
// With one, the trace is fetched from the memo — measured on first use
// against a throwaway replica provisioned from the same provider config
// and seeds, so every requester (hit or miss) sees the identical trace
// and leaves its own rng/cluster streams untouched — then installed via
// AnalyzeCalibration, with the cluster clock advanced by the measurement
// cost it would have paid. Maintenance re-calibrations (Advisor.Calibrate
// from Observe/Maintain) still measure the live, evolved cluster and
// never consult the memo; experiments that mutate the substrate under a
// previously memoized key must call Memo.Invalidate.
func calibrateEnv(cfg Config, n int, seedOffset int64, pc cloud.ProviderConfig, advCfg core.AdvisorConfig, vc *cloud.VirtualCluster, adv *core.Advisor) error {
	ctx := cfg.context()
	if cfg.Memo == nil {
		return adv.CalibrateCtx(ctx)
	}
	key := cloud.CalibrationKey{
		Provider: pc,
		N:        n,
		ProvSeed: cfg.Seed + seedOffset + 1,
		RNGSeed:  cfg.Seed + seedOffset + 2,
		Steps:    advCfg.TimeStep,
		Gap:      advCfg.Gap,
		Cal:      advCfg.Calibration,
	}
	tc, err := cfg.Memo.GetOrComputeCtx(ctx, key, func() (*cloud.TemporalCalibration, error) {
		replica, err := cloud.NewProvider(pc).Provision(n, key.ProvSeed)
		if err != nil {
			return nil, err
		}
		return cloud.CalibrateTPCtx(ctx, replica, stats.NewRNG(key.RNGSeed), key.Steps, key.Gap, advCfg.Calibration)
	})
	if err != nil {
		return err
	}
	vc.AdvanceTime(tc.TotalCost)
	return adv.AnalyzeCalibrationCtx(ctx, tc)
}

// collectiveElapsed plans the strategy's tree against the advisor guidance
// and executes it against the instantaneous snapshot — the trace-replay
// methodology of §V-D.
func (e *env) collectiveElapsed(s core.Strategy, op mpi.Collective, root int, snapshot *netmodel.PerfMatrix) float64 {
	tree := e.advisor.PlanTree(s, root, e.cfg.MsgBytes, e.provider.Topo, e.cluster.Hosts)
	return mpi.RunCollective(mpi.NewAnalyticNet(snapshot), tree, op, e.cfg.MsgBytes)
}

// mappingElapsed evaluates the topology-mapping workload for a strategy:
// the task graph is mapped with the strategy's machine graph (ring for
// Baseline) and costed against the instantaneous snapshot.
func (e *env) mappingElapsed(s core.Strategy, task *mapping.Graph, snapshot *netmodel.PerfMatrix) float64 {
	n := e.cluster.Size()
	var assign []int
	switch s {
	case core.Baseline, core.TopologyAware:
		assign = mapping.RingMapping(n)
	default:
		guide := e.advisor.GuidancePerf(s)
		machine := mapping.MachineGraphFromPerf(guide)
		assign = mapping.GreedyMap(task, machine)
	}
	elapsed, _ := mapping.Cost(task, assign, snapshot)
	return elapsed
}

// strategiesEC2 are the approaches compared on the cloud (no topology
// information is available on EC2, §V-A).
var strategiesEC2 = []core.Strategy{core.Baseline, core.Heuristics, core.RPCA}

// strategiesSim adds the topology-aware approach available in simulation.
var strategiesSim = []core.Strategy{core.Baseline, core.TopologyAware, core.Heuristics, core.RPCA}

// meanOf averages a slice.
func meanOf(xs []float64) float64 { return stats.Mean(xs) }
