package exp

import (
	"errors"
	"math/rand"

	"netconstant/internal/cloud"
	"netconstant/internal/core"
	"netconstant/internal/mapping"
	"netconstant/internal/mpi"
	"netconstant/internal/netmodel"
	"netconstant/internal/rpca"
	"netconstant/internal/stats"
)

// traceTP builds the two TP-matrices from the first `steps` snapshots of a
// trace.
func traceTP(tr *cloud.Trace, steps int) (*cloud.TemporalCalibration, error) {
	if steps > tr.Len() {
		return nil, errors.New("exp: trace shorter than requested time step")
	}
	tc := &cloud.TemporalCalibration{
		Latency:   netmodel.NewTPMatrix(tr.N),
		Bandwidth: netmodel.NewTPMatrix(tr.N),
	}
	for s := 0; s < steps; s++ {
		tc.Latency.Append(tr.Times[s], tr.Perfs[s].Latency)
		tc.Bandwidth.Append(tr.Times[s], tr.Perfs[s].Bandwth)
	}
	return tc, nil
}

// traceNormE measures Norm(N_E) of a trace's bandwidth TP-matrix via RPCA.
func traceNormE(tr *cloud.Trace, steps int) (float64, error) {
	tc, err := traceTP(tr, steps)
	if err != nil {
		return 0, err
	}
	d, err := core.DecomposeTP(tc.Bandwidth, rpca.Options{}, rpca.ExtractMean)
	if err != nil {
		return 0, err
	}
	return d.NormE, nil
}

// TargetNormE implements the paper's §V-D3 procedure: perturb a copy of
// the trace with repeated ±1% per-measurement changes plus correlated
// interference bursts, escalating the intensity until the RPCA-measured
// Norm(N_E) reaches the predefined target. It returns the noisy trace and
// the achieved value.
func TargetNormE(tr *cloud.Trace, steps int, target float64, rng *rand.Rand) (*cloud.Trace, float64, error) {
	best := tr.Clone()
	cur, err := traceNormE(best, steps)
	if err != nil {
		return nil, 0, err
	}
	for intensity := 1; intensity <= 4096 && cur < target; intensity = intensity*2 + 1 {
		candidate := tr.Clone()
		noiseRNG := stats.Split(rng, int64(intensity))
		// The dominant mechanism is independent per-measurement noise
		// (repeated ±1% changes around the constant): it swamps the
		// calibration, so every estimator's plan degrades toward a blind
		// one — the paper's "the network is so dynamic that network
		// performance aware optimizations have little impact" — without
		// creating a persistent trend a stale plan could keep riding. (A
		// cumulative random walk is a martingale: past ordering keeps
		// predicting the future and improvement never decays; InjectDrift
		// provides that variant for contrast.)
		denseSteps := intensity * 2 / 3
		if denseSteps < 1 {
			denseSteps = 1
		}
		candidate.InjectNoise(noiseRNG, denseSteps, capF(0.02+0.005*float64(intensity), 0.1), 3)
		// Secondary mechanism: correlated congestion bursts inside the
		// calibration window, which pull a direct per-link average much
		// further than the robust constant estimate (the RPCA-vs-
		// Heuristics gap of Fig 10b widens with Norm(N_E)).
		burstSpan := 2 * steps / 5
		if burstSpan < 1 {
			burstSpan = 1
		}
		burstP := capF(0.08+0.04*float64(intensity), 0.45)
		candidate.InjectBursts(noiseRNG, burstP, 0, steps-burstSpan/2, burstSpan, capF(2*float64(intensity), 10))
		cur, err = traceNormE(candidate, steps)
		if err != nil {
			return nil, 0, err
		}
		best = candidate
	}
	return best, cur, nil
}

// replayStudy replays a trace: the advisor analyzes the first `steps`
// snapshots, then every later snapshot hosts one run of each strategy.
// It returns raw elapsed samples per strategy and app.
type replayStudy struct {
	NormE  float64
	Elapsd map[core.Strategy]map[string][]float64
}

func runReplay(cfg Config, tr *cloud.Trace, rng *rand.Rand) (*replayStudy, error) {
	rc := cloud.NewReplay(tr)
	adv := core.NewAdvisor(rc, rng, core.AdvisorConfig{TimeStep: cfg.TimeStep})
	tc, err := traceTP(tr, cfg.TimeStep)
	if err != nil {
		return nil, err
	}
	if err := adv.AnalyzeCalibration(tc); err != nil {
		return nil, err
	}
	st := &replayStudy{NormE: adv.NormE(), Elapsd: map[core.Strategy]map[string][]float64{}}
	for _, s := range strategiesEC2 {
		st.Elapsd[s] = map[string][]float64{}
	}
	n := tr.N
	for k := cfg.TimeStep; k < tr.Len(); k++ {
		snap := tr.Perfs[k]
		root := rng.Intn(n)
		task := mapping.RandomTaskGraph(rng, n, 0.1, 5<<20, 10<<20)
		for _, s := range strategiesEC2 {
			tree := adv.PlanTree(s, root, cfg.MsgBytes, nil, nil)
			b := mpi.RunCollective(mpi.NewAnalyticNet(snap), tree, mpi.Broadcast, cfg.MsgBytes)
			sc := mpi.RunCollective(mpi.NewAnalyticNet(snap), tree, mpi.Scatter, cfg.MsgBytes)
			st.Elapsd[s]["broadcast"] = append(st.Elapsd[s]["broadcast"], b)
			st.Elapsd[s]["scatter"] = append(st.Elapsd[s]["scatter"], sc)

			var assign []int
			if guide := adv.GuidancePerf(s); guide != nil {
				assign = mapping.GreedyMap(task, mapping.MachineGraphFromPerf(guide))
			} else {
				assign = mapping.RingMapping(n)
			}
			mel, _ := mapping.Cost(task, assign, snap)
			st.Elapsd[s]["mapping"] = append(st.Elapsd[s]["mapping"], mel)
		}
	}
	return st, nil
}

// Fig10Result reports the Norm(N_E) impact sweep.
type Fig10Result struct {
	TableA *Table // RPCA improvement over Baseline per app vs Norm(N_E)
	TableB *Table // RPCA improvement over Heuristics (broadcast) vs Norm(N_E)
	// ImprovementOverBaseline maps achieved NormE -> app -> improvement.
	ImprovementOverBaseline map[float64]map[string]float64
	// ImprovementOverHeuristics maps achieved NormE -> broadcast improvement.
	ImprovementOverHeuristics map[float64]float64
}

// Fig10ErrorImpact regenerates Figure 10: noise is injected into a
// recorded trace until Norm(N_E) reaches each target, and the expected
// improvement of RPCA over Baseline (10a) and over Heuristics (10b) is
// computed by trace replay. The paper: >40% improvement below 0.1, <20%
// above 0.2, and RPCA ~20% ahead of Heuristics at 0.2.
func Fig10ErrorImpact(cfg Config, targets []float64) (*Fig10Result, error) {
	if len(targets) == 0 {
		targets = []float64{0.05, 0.1, 0.2, 0.3, 0.4}
	}
	e, err := newEnvWith(cfg, cfg.VMs, 1000, noiseProvider())
	if err != nil {
		return nil, err
	}
	// Record a trace long enough for calibration + replay runs. The sweep
	// needs many samples to average out burst placement, so it uses at
	// least 40 replay snapshots regardless of cfg.Runs.
	replayRuns := cfg.Runs
	if replayRuns < 40 {
		replayRuns = 40
	}
	snapshots := cfg.TimeStep + replayRuns
	tr := cloud.Record(e.cluster, float64(snapshots-1)*30*60, 30*60)

	res := &Fig10Result{
		TableA:                    NewTable("Fig 10a: expected improvement of RPCA over Baseline vs Norm(N_E)", "Norm(N_E)", "broadcast", "scatter", "mapping"),
		TableB:                    NewTable("Fig 10b: RPCA improvement over Heuristics (broadcast) vs Norm(N_E)", "Norm(N_E)", "improvement"),
		ImprovementOverBaseline:   map[float64]map[string]float64{},
		ImprovementOverHeuristics: map[float64]float64{},
	}
	// Each target is averaged over several independently noised traces so
	// that burst placement does not dominate (the paper repeats each
	// experiment >100 times).
	//
	// Only the stats.Split calls consume e.rng (the noising and the replay
	// read the split-off streams exclusively), so the splits are pre-derived
	// sequentially in the exact order the nested loops made them and the
	// heavy (target, seed) points fan out over the worker pool.
	// The rng-bearing inputs live apart from the serializable outputs so
	// completed points can gob-journal into the crash checkpoint (a
	// *rand.Rand does not round-trip; a replayStudy does).
	const noiseSeeds = 3
	type fig10Input struct {
		noiseRNG, replayRNG *rand.Rand
	}
	type fig10Point struct {
		Achieved float64
		St       *replayStudy
	}
	inputs := make([]fig10Input, len(targets)*noiseSeeds)
	for ti, target := range targets {
		for seed := 0; seed < noiseSeeds; seed++ {
			in := &inputs[ti*noiseSeeds+seed]
			in.noiseRNG = stats.Split(e.rng, int64(target*1000)+int64(seed))
			in.replayRNG = stats.Split(e.rng, 7+int64(target*1000)+int64(seed))
		}
	}
	points := make([]fig10Point, len(inputs))
	//netlint:allow journalsafe replayStudy.Elapsd is a map, so fig10 journal bytes are not reproducible; decode is still correct and replay is slot-addressed by provenance key — flattening the study is deferred
	if err := sweepPoints(cfg, "fig10", points, func(i int, _ *rand.Rand) error {
		in := inputs[i]
		target := targets[i/noiseSeeds]
		noisy, achieved, err := TargetNormE(tr, cfg.TimeStep, target, in.noiseRNG)
		if err != nil {
			return err
		}
		points[i].Achieved = achieved
		points[i].St, err = runReplay(cfg, noisy, in.replayRNG)
		return err
	}); err != nil {
		return nil, err
	}
	for ti := range targets {
		agg := map[core.Strategy]map[string][]float64{}
		for _, s := range strategiesEC2 {
			agg[s] = map[string][]float64{}
		}
		var achievedSum float64
		for seed := 0; seed < noiseSeeds; seed++ {
			p := &points[ti*noiseSeeds+seed]
			achievedSum += p.Achieved
			for _, s := range strategiesEC2 {
				for app, xs := range p.St.Elapsd[s] {
					agg[s][app] = append(agg[s][app], xs...)
				}
			}
		}
		achieved := achievedSum / noiseSeeds
		// Trimmed means: heavy drift produces lognormal-tailed samples that
		// would otherwise let a handful of catastrophic draws dominate.
		imp := map[string]float64{}
		for _, app := range []string{"broadcast", "scatter", "mapping"} {
			imp[app] = stats.RelImprovement(
				stats.TrimmedMean(agg[core.Baseline][app], 0.1),
				stats.TrimmedMean(agg[core.RPCA][app], 0.1))
		}
		overH := stats.RelImprovement(
			stats.TrimmedMean(agg[core.Heuristics]["broadcast"], 0.1),
			stats.TrimmedMean(agg[core.RPCA]["broadcast"], 0.1))
		res.ImprovementOverBaseline[achieved] = imp
		res.ImprovementOverHeuristics[achieved] = overH
		res.TableA.AddRow(f(achieved), pct(imp["broadcast"]), pct(imp["scatter"]), pct(imp["mapping"]))
		res.TableB.AddRow(f(achieved), pct(overH))
	}
	return res, nil
}

// Fig11Result reports the detailed Norm(N_E)=0.2 study.
type Fig11Result struct {
	Table      *Table
	CDFTable   *Table
	NormE      float64
	Normalized map[core.Strategy]map[string]float64
}

// Fig11Detailed regenerates Figure 11: the full strategy comparison on a
// trace noised to Norm(N_E)=0.2, where the paper reports RPCA beating
// Baseline by 20–28% and Heuristics by 12–20%.
func Fig11Detailed(cfg Config) (*Fig11Result, error) {
	e, err := newEnvWith(cfg, cfg.VMs, 1100, noiseProvider())
	if err != nil {
		return nil, err
	}
	replayRuns := cfg.Runs
	if replayRuns < 40 {
		replayRuns = 40
	}
	snapshots := cfg.TimeStep + replayRuns
	tr := cloud.Record(e.cluster, float64(snapshots-1)*30*60, 30*60)
	st := &replayStudy{Elapsd: map[core.Strategy]map[string][]float64{}}
	for _, s := range strategiesEC2 {
		st.Elapsd[s] = map[string][]float64{}
	}
	// As in Fig 10, the Split calls are pre-derived in the original order
	// and the heavy per-seed noising + replay runs in parallel.
	var achieved float64
	const noiseSeeds = 3
	type fig11Input struct {
		noiseRNG, replayRNG *rand.Rand
	}
	type fig11Point struct {
		Achieved float64
		St       *replayStudy
	}
	inputs := make([]fig11Input, noiseSeeds)
	for seed := int64(0); seed < noiseSeeds; seed++ {
		inputs[seed].noiseRNG = stats.Split(e.rng, 11+seed)
		inputs[seed].replayRNG = stats.Split(e.rng, 100+seed)
	}
	points := make([]fig11Point, noiseSeeds)
	//netlint:allow journalsafe replayStudy.Elapsd is a map, so fig11 journal bytes are not reproducible; decode is still correct and replay is slot-addressed by provenance key — flattening the study is deferred
	if err := sweepPoints(cfg, "fig11", points, func(i int, _ *rand.Rand) error {
		in := inputs[i]
		noisy, a, err := TargetNormE(tr, cfg.TimeStep, 0.2, in.noiseRNG)
		if err != nil {
			return err
		}
		points[i].Achieved = a
		points[i].St, err = runReplay(cfg, noisy, in.replayRNG)
		return err
	}); err != nil {
		return nil, err
	}
	for seed := 0; seed < noiseSeeds; seed++ {
		achieved += points[seed].Achieved / noiseSeeds
		for _, s := range strategiesEC2 {
			for app, xs := range points[seed].St.Elapsd[s] {
				st.Elapsd[s][app] = append(st.Elapsd[s][app], xs...)
			}
		}
	}
	res := &Fig11Result{
		Table:      NewTable("Fig 11a: mean elapsed normalized to Baseline at Norm(N_E)=0.2", "strategy", "broadcast", "scatter", "mapping"),
		NormE:      achieved,
		Normalized: map[core.Strategy]map[string]float64{},
	}
	for _, s := range strategiesEC2 {
		res.Normalized[s] = map[string]float64{}
		row := []string{s.String()}
		for _, app := range []string{"broadcast", "scatter", "mapping"} {
			norm := meanOf(st.Elapsd[s][app]) / meanOf(st.Elapsd[core.Baseline][app])
			res.Normalized[s][app] = norm
			row = append(row, f(norm))
		}
		res.Table.AddRow(row...)
	}
	res.Table.AddNote("achieved Norm(N_E) = %.3f", achieved)

	res.CDFTable = NewTable("Fig 11b: broadcast elapsed-time CDF at Norm(N_E)=0.2 (seconds)", "percentile", "Baseline", "Heuristics", "RPCA")
	cdfs := map[core.Strategy]*stats.CDF{}
	for _, s := range strategiesEC2 {
		cdfs[s] = stats.NewCDF(st.Elapsd[s]["broadcast"])
	}
	for _, q := range []float64{0.1, 0.25, 0.5, 0.75, 0.9, 1.0} {
		res.CDFTable.AddRow(pct(q), f(cdfs[core.Baseline].Quantile(q)), f(cdfs[core.Heuristics].Quantile(q)), f(cdfs[core.RPCA].Quantile(q)))
	}
	return res, nil
}

// noiseProvider narrows the provider's constant heterogeneity to the
// band-like spread of homogeneous cloud instances (a few ×, not 10×), so
// that heavy injected drift can genuinely reorder link performance — the
// regime the paper's Fig 10/11 noise study explores.
func noiseProvider() cloud.ProviderConfig {
	return cloud.ProviderConfig{
		VirtFactorMin: 0.55,
		VirtFactorMax: 0.95,
		CrossRackMin:  0.45,
		CrossRackMax:  0.85,
	}
}

func capF(v, max float64) float64 {
	if v > max {
		return max
	}
	return v
}
