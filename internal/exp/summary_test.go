package exp

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"

	"netconstant/internal/cancel"
	"netconstant/internal/checkpoint"
)

// partialCheckpoint runs fig7 under Quick() until n points are
// journaled, then cancels, leaving a resumable checkpoint dir behind.
func partialCheckpoint(t *testing.T, n int64) (string, Config) {
	t.Helper()
	cfg := Quick()
	cfg.Runs = 8
	cfg.VMs = 8
	cfg.SmallVMs = 4
	dir := t.TempDir()

	run := cfg
	run.Workers = 1
	ctx, stop := context.WithCancel(context.Background())
	defer stop()
	run.Ctx = ctx
	var done atomic.Int64
	run.PointHook = func(string, int) {
		if done.Add(1) == n {
			stop()
		}
	}
	ck, err := OpenCheckpoint(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	run.Ckpt = ck
	if _, err := Fig7Overall(run); !errors.Is(err, cancel.ErrCanceled) {
		t.Fatalf("partial run: err = %v, want cancellation", err)
	}
	if err := ck.Close(); err != nil {
		t.Fatal(err)
	}
	return dir, cfg
}

// TestSummarizeJournal: the summary must report the journaled point
// count and locate the last appended point — this is what supervisor
// healthchecks and quarantine diagnoses quote.
func TestSummarizeJournal(t *testing.T) {
	dir, _ := partialCheckpoint(t, 3)
	sum, err := SummarizeJournal(filepath.Join(dir, JournalName))
	if err != nil {
		t.Fatal(err)
	}
	if sum.Points < 3 {
		t.Errorf("Points = %d, want ≥ 3", sum.Points)
	}
	if sum.LastFigure != "fig7" {
		t.Errorf("LastFigure = %q, want fig7", sum.LastFigure)
	}
	if sum.Unknown != 0 || sum.TornBytes != 0 {
		t.Errorf("clean journal reported Unknown=%d TornBytes=%d", sum.Unknown, sum.TornBytes)
	}
}

// TestSummarizeJournalUnknownKind: records from a future writer must be
// tallied as Unknown, not failed on — summaries are for triage.
func TestSummarizeJournalUnknownKind(t *testing.T) {
	dir, _ := partialCheckpoint(t, 2)
	path := filepath.Join(dir, JournalName)
	j, _, err := checkpoint.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := gobEncode(ckptRecord{Kind: "hologram", Figure: "fig99"})
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append(raw); err != nil {
		t.Fatal(err)
	}
	if err := j.Append([]byte("not gob at all")); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	sum, err := SummarizeJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Unknown != 2 {
		t.Errorf("Unknown = %d, want 2", sum.Unknown)
	}
	if sum.LastFigure != "fig7" {
		t.Errorf("LastFigure = %q: unknown records must not displace the last point", sum.LastFigure)
	}
}

// TestSummarizeJournalTornTail: a torn final append is tolerated and
// reported, matching the substrate's recovery semantics.
func TestSummarizeJournalTornTail(t *testing.T) {
	dir, _ := partialCheckpoint(t, 3)
	path := filepath.Join(dir, JournalName)
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, buf[:len(buf)-7], 0o644); err != nil {
		t.Fatal(err)
	}
	sum, err := SummarizeJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if sum.TornBytes == 0 {
		t.Error("TornBytes = 0 after truncating the final record")
	}
	if sum.Points < 2 {
		t.Errorf("Points = %d, want the intact prefix's points", sum.Points)
	}
}

// TestCheckCheckpointDir covers the supervisor's triage tree: healthy
// dirs verify, missing pieces and corruption are errors, and corruption
// matches checkpoint.ErrCorrupt.
func TestCheckCheckpointDir(t *testing.T) {
	dir, _ := partialCheckpoint(t, 3)
	if err := CheckCheckpointDir(dir); err != nil {
		t.Fatalf("healthy dir: %v", err)
	}

	t.Run("missing manifest", func(t *testing.T) {
		d, _ := partialCheckpoint(t, 2)
		if err := os.Remove(filepath.Join(d, ManifestName)); err != nil {
			t.Fatal(err)
		}
		if err := CheckCheckpointDir(d); err == nil {
			t.Error("missing manifest verified")
		}
	})
	t.Run("missing journal", func(t *testing.T) {
		d, _ := partialCheckpoint(t, 2)
		if err := os.Remove(filepath.Join(d, JournalName)); err != nil {
			t.Fatal(err)
		}
		if err := CheckCheckpointDir(d); err == nil {
			t.Error("missing journal verified")
		}
	})
	t.Run("corrupt manifest", func(t *testing.T) {
		d, _ := partialCheckpoint(t, 2)
		if err := os.WriteFile(filepath.Join(d, ManifestName), []byte("garbage"), 0o644); err != nil {
			t.Fatal(err)
		}
		err := CheckCheckpointDir(d)
		if !errors.Is(err, checkpoint.ErrCorrupt) {
			t.Errorf("corrupt manifest: err = %v, want ErrCorrupt", err)
		}
	})
	t.Run("corrupt journal body", func(t *testing.T) {
		d, _ := partialCheckpoint(t, 3)
		path := filepath.Join(d, JournalName)
		buf, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		buf[len(buf)/2] ^= 0xff // mid-file damage, not a torn tail
		if err := os.WriteFile(path, buf, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := CheckCheckpointDir(d); !errors.Is(err, checkpoint.ErrCorrupt) {
			t.Errorf("corrupt journal: err = %v, want ErrCorrupt", err)
		}
	})
	t.Run("empty dir", func(t *testing.T) {
		if err := CheckCheckpointDir(t.TempDir()); err == nil {
			t.Error("empty dir verified")
		}
	})
}
