package exp

import (
	"testing"

	"netconstant/internal/cloud"
)

// TestMemoSharedAcrossFig6Thresholds: all six threshold points of Fig 6
// request the identical calibration tuple, so a memo computes it once and
// serves the rest from cache.
func TestMemoSharedAcrossFig6Thresholds(t *testing.T) {
	cfg := Quick()
	cfg.Memo = cloud.NewCalibrationMemo(0)
	if _, err := Fig6Threshold(cfg, nil, 0); err != nil {
		t.Fatal(err)
	}
	st := cfg.Memo.Stats()
	if st.Misses != 1 {
		t.Fatalf("misses = %d, want 1 (one measurement for the whole sweep)", st.Misses)
	}
	if st.Hits < 5 {
		t.Fatalf("hits = %d, want >= 5 (remaining threshold points)", st.Hits)
	}
}

// TestMemoDeterministicAcrossWorkers: with a memo installed, results are
// still byte-identical at any worker count — hits and misses are
// indistinguishable because even the first requester replays a trace
// measured on a throwaway replica.
func TestMemoDeterministicAcrossWorkers(t *testing.T) {
	run := func(workers int) string {
		cfg := Quick()
		cfg.Workers = workers
		cfg.Memo = cloud.NewCalibrationMemo(0)
		r6, err := Fig6Threshold(cfg, nil, 0)
		if err != nil {
			t.Fatal(err)
		}
		r8, err := Fig8ClusterSize(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return r6.Table.String() + r8.Table.String()
	}
	serial := run(1)
	parallel := run(4)
	if serial != parallel {
		t.Fatalf("memoized tables differ between workers=1 and workers=4:\n--- workers=1 ---\n%s\n--- workers=4 ---\n%s", serial, parallel)
	}
}

// TestMemoRepeatRunsIdentical: two memoized runs from fresh memos agree,
// i.e. the memo introduces no order-of-first-use dependence.
func TestMemoRepeatRunsIdentical(t *testing.T) {
	run := func() string {
		cfg := Quick()
		cfg.Memo = cloud.NewCalibrationMemo(0)
		r, err := Fig6Threshold(cfg, nil, 0)
		if err != nil {
			t.Fatal(err)
		}
		return r.Table.String()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("memoized runs differ:\n%s\nvs\n%s", a, b)
	}
}
