package exp

// Deterministic parallel sweep harness. Every figure is a grid of sweep
// points (parameter × repetition); runPoints fans the points out over a
// bounded worker pool while keeping the output tables byte-identical at
// any worker count:
//
//   - each point gets its own rand.Rand seeded purely from
//     (figure name, point index, base seed) — no point ever reads
//     another's stream, and no shared stream is consumed in fan-out
//     order, so scheduling cannot influence a single draw;
//   - results are written into index-addressed slots and aggregated in
//     index order by the caller, so floating-point accumulation order is
//     fixed;
//   - when points can fail, the error returned is the one at the lowest
//     index, regardless of which worker hit an error first.
//
// Figures whose repetitions share mutable state (an evolving cluster, a
// live simulator, a shared rng) split into two phases: a sequential
// input-generation pass that performs the stateful work in the exact
// order the sequential code did, then a parallel pure-evaluation pass
// over the recorded inputs. That keeps their outputs byte-identical to
// the original nested loops, not merely statistically equivalent.

import (
	"bytes"
	"context"
	"encoding/gob"
	"hash/fnv"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"

	"netconstant/internal/cancel"
)

// workers resolves the configured worker count: Config.Workers if
// positive, else GOMAXPROCS.
func (c Config) workers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// context resolves the configured cancellation context (Background when
// none was injected).
func (c Config) context() context.Context {
	if c.Ctx != nil {
		return c.Ctx
	}
	//netlint:allow cancelflow Config.Ctx nil means the sweep runs uncancellable by design; context.Cause below needs a non-nil root
	return context.Background()
}

// PointSeed derives the deterministic seed of sweep point i of a figure.
// The figure name and base seed are hashed together with the index
// (FNV-1a, then a splitmix64-style finalizer for avalanche), so distinct
// figures and neighboring indices get uncorrelated streams without
// consuming any shared generator.
func PointSeed(figure string, base int64, i int) int64 {
	h := fnv.New64a()
	h.Write([]byte(figure))
	var buf [16]byte
	u := uint64(base)
	v := uint64(i)
	for k := 0; k < 8; k++ {
		buf[k] = byte(u >> (8 * k))
		buf[8+k] = byte(v >> (8 * k))
	}
	h.Write(buf[:])
	x := h.Sum64()
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return int64(x &^ (1 << 63))
}

// pointRNG is the per-point generator handed to each sweep point.
func pointRNG(figure string, base int64, i int) *rand.Rand {
	return rand.New(rand.NewSource(PointSeed(figure, base, i)))
}

// runPoints executes fn for every point index in [0, n) whose skip flag
// is unset, on up to cfg.workers() goroutines. Every started point runs
// to completion even if an earlier one failed; the returned error is the
// lowest-index failure, so the outcome is independent of scheduling.
//
// after, when non-nil, runs on the worker goroutine right after a point's
// fn succeeds (checkpoint journaling and the PointHook live there); an
// after error counts as that point's failure.
//
// Cancellation is a graceful drain: once cfg.Ctx is done, workers stop
// claiming new points, in-flight points finish (and are journaled), and
// — if no point itself failed — the sweep returns a *cancel.Error
// carrying how many of the n points were complete (journaled skips
// included).
func runPoints(cfg Config, figure string, n int, skip []bool, after func(i int) error, fn func(i int, rng *rand.Rand) error) error {
	if n <= 0 {
		return nil
	}
	ctx := cfg.context()
	workers := cfg.workers()
	if workers > n {
		workers = n
	}
	nskip := 0
	for _, s := range skip {
		if s {
			nskip++
		}
	}
	errs := make([]error, n)
	run := func(i int) {
		errs[i] = fn(i, pointRNG(figure, cfg.Seed, i))
		if errs[i] == nil && after != nil {
			errs[i] = after(i)
		}
	}
	var processed atomic.Int64
	if workers == 1 {
		for i := 0; i < n; i++ {
			if skip != nil && skip[i] {
				continue
			}
			if ctx.Err() != nil {
				break
			}
			run(i)
			processed.Add(1)
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= n {
						return
					}
					if skip != nil && skip[i] {
						continue
					}
					if ctx.Err() != nil {
						return
					}
					run(i)
					processed.Add(1)
				}
			}()
		}
		wg.Wait()
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	if done := int(processed.Load()) + nskip; done < n {
		return cancel.Wrap("exp/"+figure, done, n, context.Cause(ctx))
	}
	return nil
}

// gobEncode/gobDecode are the checkpoint payload codec. Gob preserves
// exact float64 bit patterns (NaN and ±Inf included), which the
// byte-identical-resume guarantee depends on.
func gobEncode(v any) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func gobDecode(data []byte, v any) error {
	return gob.NewDecoder(bytes.NewReader(data)).Decode(v)
}

// sweepPoints is the checkpointed sweep harness every figure builds on:
// pts is the sweep's index-addressed result slice, and fn(i, rng) fills
// pts[i] (and nothing else). With cfg.Ckpt set, each completed point's
// slot is gob-journaled under its hashed PointSeed, and a resumed run
// restores journaled slots and skips their indices — the provenance key
// means a journal recorded under a different figure, seed, or index can
// never replay into the wrong slot.
func sweepPoints[T any](cfg Config, figure string, pts []T, fn func(i int, rng *rand.Rand) error) error {
	n := len(pts)
	var skip []bool
	if cfg.Ckpt != nil {
		skip = make([]bool, n)
		for i := 0; i < n; i++ {
			data, ok := cfg.Ckpt.lookup(figure, i, PointSeed(figure, cfg.Seed, i))
			if !ok {
				continue
			}
			var restored T
			if err := gobDecode(data, &restored); err != nil {
				// Undecodable slot (e.g. the figure's point type changed):
				// recompute it rather than guess.
				continue
			}
			pts[i] = restored
			skip[i] = true
		}
	}
	after := func(i int) error {
		if cfg.Ckpt != nil {
			data, err := gobEncode(&pts[i])
			if err != nil {
				return err
			}
			if err := cfg.Ckpt.recordPoint(figure, i, PointSeed(figure, cfg.Seed, i), data); err != nil {
				return err
			}
		}
		if cfg.PointHook != nil {
			cfg.PointHook(figure, i)
		}
		return nil
	}
	return runPoints(cfg, figure, n, skip, after, fn)
}
