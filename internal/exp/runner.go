package exp

// Deterministic parallel sweep harness. Every figure is a grid of sweep
// points (parameter × repetition); runPoints fans the points out over a
// bounded worker pool while keeping the output tables byte-identical at
// any worker count:
//
//   - each point gets its own rand.Rand seeded purely from
//     (figure name, point index, base seed) — no point ever reads
//     another's stream, and no shared stream is consumed in fan-out
//     order, so scheduling cannot influence a single draw;
//   - results are written into index-addressed slots and aggregated in
//     index order by the caller, so floating-point accumulation order is
//     fixed;
//   - when points can fail, the error returned is the one at the lowest
//     index, regardless of which worker hit an error first.
//
// Figures whose repetitions share mutable state (an evolving cluster, a
// live simulator, a shared rng) split into two phases: a sequential
// input-generation pass that performs the stateful work in the exact
// order the sequential code did, then a parallel pure-evaluation pass
// over the recorded inputs. That keeps their outputs byte-identical to
// the original nested loops, not merely statistically equivalent.

import (
	"hash/fnv"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
)

// workers resolves the configured worker count: Config.Workers if
// positive, else GOMAXPROCS.
func (c Config) workers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// PointSeed derives the deterministic seed of sweep point i of a figure.
// The figure name and base seed are hashed together with the index
// (FNV-1a, then a splitmix64-style finalizer for avalanche), so distinct
// figures and neighboring indices get uncorrelated streams without
// consuming any shared generator.
func PointSeed(figure string, base int64, i int) int64 {
	h := fnv.New64a()
	h.Write([]byte(figure))
	var buf [16]byte
	u := uint64(base)
	v := uint64(i)
	for k := 0; k < 8; k++ {
		buf[k] = byte(u >> (8 * k))
		buf[8+k] = byte(v >> (8 * k))
	}
	h.Write(buf[:])
	x := h.Sum64()
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return int64(x &^ (1 << 63))
}

// pointRNG is the per-point generator handed to each sweep point.
func pointRNG(figure string, base int64, i int) *rand.Rand {
	return rand.New(rand.NewSource(PointSeed(figure, base, i)))
}

// runPoints executes fn for every point index in [0, n) on up to
// `workers` goroutines. Every point runs to completion even if an
// earlier one failed; the returned error is the lowest-index failure, so
// the outcome is independent of scheduling.
func runPoints(figure string, baseSeed int64, workers, n int, fn func(i int, rng *rand.Rand) error) error {
	if n <= 0 {
		return nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	errs := make([]error, n)
	if workers == 1 {
		for i := 0; i < n; i++ {
			errs[i] = fn(i, pointRNG(figure, baseSeed, i))
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= n {
						return
					}
					errs[i] = fn(i, pointRNG(figure, baseSeed, i))
				}
			}()
		}
		wg.Wait()
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
