// Package exp is the experiment harness: one function per table/figure of
// the paper's evaluation (§V), each returning a text table with the same
// rows/series the paper reports. cmd/expdriver runs them all and writes
// EXPERIMENTS.md; bench_test.go exposes one benchmark per figure.
package exp

import (
	"encoding/json"
	"fmt"
	"strings"
)

// Table is a titled text table.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, header ...string) *Table {
	return &Table{Title: title, Header: header}
}

// AddRow appends a row; cells may be fewer than headers (padded empty).
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.Header))
	copy(row, cells)
	t.Rows = append(t.Rows, row)
}

// AddNote attaches a footnote shown under the table.
func (t *Table) AddNote(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// String renders the table as aligned text.
func (t *Table) String() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var sb strings.Builder
	sb.WriteString(t.Title)
	sb.WriteByte('\n')
	line := func(cells []string) {
		for i, c := range cells {
			fmt.Fprintf(&sb, "%-*s", widths[i]+2, c)
		}
		sb.WriteByte('\n')
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&sb, "note: %s\n", n)
	}
	return sb.String()
}

// Markdown renders the table as a GitHub-flavoured markdown table.
func (t *Table) Markdown() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "### %s\n\n", t.Title)
	sb.WriteString("| " + strings.Join(t.Header, " | ") + " |\n")
	sb.WriteString("|" + strings.Repeat("---|", len(t.Header)) + "\n")
	for _, row := range t.Rows {
		sb.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&sb, "\n*%s*\n", n)
	}
	sb.WriteByte('\n')
	return sb.String()
}

// f formats a float compactly for table cells.
func f(v float64) string { return fmt.Sprintf("%.4g", v) }

// itoa formats an integer for table cells.
func itoa(v int) string { return fmt.Sprintf("%d", v) }

// pct formats a fraction as a percentage.
func pct(v float64) string { return fmt.Sprintf("%.1f%%", 100*v) }

// JSON renders the table as a machine-readable object:
// {"title": ..., "header": [...], "rows": [[...]], "notes": [...]}.
func (t *Table) JSON() ([]byte, error) {
	return json.Marshal(struct {
		Title  string     `json:"title"`
		Header []string   `json:"header"`
		Rows   [][]string `json:"rows"`
		Notes  []string   `json:"notes,omitempty"`
	}{t.Title, t.Header, t.Rows, t.Notes})
}
