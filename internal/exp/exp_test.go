package exp

import (
	"strings"
	"testing"
	"time"

	"netconstant/internal/core"
)

func quick() Config { return Quick() }

func TestTableRendering(t *testing.T) {
	tb := NewTable("title", "a", "bb")
	tb.AddRow("1")
	tb.AddRow("22", "333")
	tb.AddNote("hello %d", 5)
	s := tb.String()
	if !strings.Contains(s, "title") || !strings.Contains(s, "333") || !strings.Contains(s, "hello 5") {
		t.Errorf("render:\n%s", s)
	}
	md := tb.Markdown()
	if !strings.Contains(md, "| a | bb |") {
		t.Errorf("markdown:\n%s", md)
	}
	if f(1.5) != "1.5" || pct(0.25) != "25.0%" {
		t.Error("formatters")
	}
}

func TestFig4CalibrationShape(t *testing.T) {
	cfg := quick()
	cfg.Clock = time.Now // the test asserts the paper's "< 1 min" wall-clock claim
	res, err := Fig4Calibration(cfg, []int{16, 64, 196})
	if err != nil {
		t.Fatal(err)
	}
	// Linearity: cost(196)/cost(64) ≈ 195/63.
	r := res.CostSeconds[196] / res.CostSeconds[64]
	if r < 2.5 || r > 3.7 {
		t.Errorf("cost ratio %v not ~linear", r)
	}
	// Paper magnitudes: < 4 min at 64, ~10 min at 196.
	if res.CostSeconds[64] > 4*60 {
		t.Errorf("64-instance calibration %.1fs > 4 min", res.CostSeconds[64])
	}
	if res.CostSeconds[196] < 5*60 || res.CostSeconds[196] > 15*60 {
		t.Errorf("196-instance calibration %.1fs not ~10 min", res.CostSeconds[196])
	}
	// §V-B: RPCA runs in well under a minute. Skipped under the race
	// detector, whose instrumentation slows the solver by an order of
	// magnitude.
	if !raceEnabled && res.RPCASeconds > 60 {
		t.Errorf("RPCA took %.1fs, paper claims < 1 min", res.RPCASeconds)
	}
	if len(res.Table.Rows) != 3 {
		t.Error("table rows")
	}
}

func TestFig5TimeStepShape(t *testing.T) {
	cfg := quick()
	cfg.VMs = 8
	res, err := Fig5TimeStep(cfg, []int{2, 5, 10, 20})
	if err != nil {
		t.Fatal(err)
	}
	if res.RelDiff[20] > res.RelDiff[2] {
		t.Errorf("relative difference should shrink with time step: %v", res.RelDiff)
	}
	// At step 10 the paper is within 10%; allow a slightly looser band for
	// the quick configuration.
	if res.RelDiff[10] > 0.15 {
		t.Errorf("step-10 relative difference %.3f too large", res.RelDiff[10])
	}
}

func TestFig6ThresholdShape(t *testing.T) {
	cfg := quick()
	cfg.VMs = 10
	res, err := Fig6Threshold(cfg, []float64{0.1, 1.0, 2.0}, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Small thresholds recalibrate more and pay more maintenance.
	if res.Recalibrations[0.1] < res.Recalibrations[2.0] {
		t.Errorf("recalibrations: %v", res.Recalibrations)
	}
	if res.Recalibrations[0.1] > 0 && res.MaintenancePerRun[0.1] <= res.MaintenancePerRun[2.0] {
		t.Errorf("maintenance: low threshold %v should exceed high %v",
			res.MaintenancePerRun[0.1], res.MaintenancePerRun[2.0])
	}
	if len(res.Table.Rows) != 3 {
		t.Error("rows")
	}
}

func TestFig7OverallShape(t *testing.T) {
	res, err := Fig7Overall(quick())
	if err != nil {
		t.Fatal(err)
	}
	for _, app := range []string{"broadcast", "scatter", "mapping"} {
		rpca := res.Normalized[core.RPCA][app]
		heur := res.Normalized[core.Heuristics][app]
		if rpca >= 1 {
			t.Errorf("%s: RPCA normalized %v should beat Baseline", app, rpca)
		}
		if heur >= 1 {
			t.Errorf("%s: Heuristics normalized %v should beat Baseline", app, heur)
		}
		if rpca > heur+0.02 {
			t.Errorf("%s: RPCA (%v) should not lose to Heuristics (%v)", app, rpca, heur)
		}
	}
	// The headline: substantial improvement on broadcast (paper: 32–40%).
	if imp := 1 - res.Normalized[core.RPCA]["broadcast"]; imp < 0.15 {
		t.Errorf("broadcast improvement %.2f too small", imp)
	}
	// EC2-like dynamics: Norm(N_E) around 0.1.
	if res.NormE < 0.01 || res.NormE > 0.35 {
		t.Errorf("NormE %.3f outside the plausible band", res.NormE)
	}
	if res.CDFTable == nil || len(res.CDFTable.Rows) == 0 {
		t.Error("CDF table missing")
	}
}

func TestFig8ClusterSizeShape(t *testing.T) {
	res, err := Fig8ClusterSize(quick())
	if err != nil {
		t.Fatal(err)
	}
	cfg := quick()
	for _, n := range []int{cfg.SmallVMs, cfg.VMs} {
		if res.Improvement[n]["broadcast"] <= 0 {
			t.Errorf("n=%d: broadcast improvement %v", n, res.Improvement[n]["broadcast"])
		}
	}
}

func TestFig9aCGShape(t *testing.T) {
	cfg := quick()
	cfg.VMs = 8
	res, err := Fig9aCG(cfg, []int{100, 6400})
	if err != nil {
		t.Fatal(err)
	}
	small := res.Totals["100"]
	large := res.Totals["6400"]
	// Small problems are dominated by the calibration overhead: RPCA is
	// slower than the overhead-free baseline (the paper's observation).
	if small[core.RPCA] <= small[core.Baseline] {
		t.Errorf("small CG: RPCA %v should pay overhead vs baseline %v", small[core.RPCA], small[core.Baseline])
	}
	// Communication dominates at scale and RPCA's trees win it back.
	bd := res.Breakdowns["6400"][core.RPCA]
	if bd.Communication <= bd.Computation {
		t.Errorf("CG should be network-bound: %v", bd)
	}
	rpcaComm := res.Breakdowns["6400"][core.RPCA].Communication
	baseComm := res.Breakdowns["6400"][core.Baseline].Communication
	if rpcaComm >= baseComm {
		t.Errorf("large CG: RPCA comm %v should beat baseline %v", rpcaComm, baseComm)
	}
	_ = large
}

func TestFig9bNBodyShape(t *testing.T) {
	cfg := quick()
	cfg.VMs = 8
	res, err := Fig9bNBodySteps(cfg, []int{4, 16}, 64)
	if err != nil {
		t.Fatal(err)
	}
	// Communication grows with steps; RPCA beats Baseline on communication.
	c4 := res.Breakdowns["4"][core.RPCA].Communication
	c16 := res.Breakdowns["16"][core.RPCA].Communication
	if c16 <= c4 {
		t.Error("communication should grow with #Step")
	}
	if res.Breakdowns["16"][core.RPCA].Communication >= res.Breakdowns["16"][core.Baseline].Communication {
		t.Error("RPCA should reduce N-body communication")
	}
}

func TestFig9cNBodyShape(t *testing.T) {
	cfg := quick()
	cfg.VMs = 8
	res, err := Fig9cNBodyMsg(cfg, []float64{1 << 10, 256 << 10}, 8, 64)
	if err != nil {
		t.Fatal(err)
	}
	small := res.Breakdowns["1024"][core.RPCA].Communication
	big := res.Breakdowns["262144"][core.RPCA].Communication
	if big <= small {
		t.Error("communication should grow with message size")
	}
}

func TestFig10ErrorImpactShape(t *testing.T) {
	cfg := quick()
	cfg.VMs = 10
	cfg.Runs = 10
	res, err := Fig10ErrorImpact(cfg, []float64{0.05, 0.35})
	if err != nil {
		t.Fatal(err)
	}
	// Identify the low and high achieved NormE points.
	var lo, hi float64 = 2, -1
	for ne := range res.ImprovementOverBaseline {
		if ne < lo {
			lo = ne
		}
		if ne > hi {
			hi = ne
		}
	}
	if hi <= lo {
		t.Fatalf("degenerate sweep: lo=%v hi=%v", lo, hi)
	}
	// The paper's trend: improvement decreases as NormE grows.
	if res.ImprovementOverBaseline[hi]["broadcast"] >= res.ImprovementOverBaseline[lo]["broadcast"]+0.05 {
		t.Errorf("improvement should shrink with NormE: lo=%v hi=%v",
			res.ImprovementOverBaseline[lo], res.ImprovementOverBaseline[hi])
	}
	// At low NormE, RPCA gives a solid improvement.
	if res.ImprovementOverBaseline[lo]["broadcast"] < 0.1 {
		t.Errorf("low-NormE broadcast improvement %v too small", res.ImprovementOverBaseline[lo]["broadcast"])
	}
}

func TestFig11DetailedShape(t *testing.T) {
	cfg := quick()
	cfg.VMs = 10
	cfg.Runs = 20
	res, err := Fig11Detailed(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.NormE < 0.15 {
		t.Errorf("noise targeting failed: NormE %.3f", res.NormE)
	}
	if res.Normalized[core.RPCA]["broadcast"] >= 1 {
		t.Error("RPCA should still beat Baseline at NormE=0.2")
	}
	if res.Normalized[core.RPCA]["broadcast"] > res.Normalized[core.Heuristics]["broadcast"]+0.03 {
		t.Errorf("RPCA (%v) should not lose to Heuristics (%v) at NormE=0.2",
			res.Normalized[core.RPCA]["broadcast"], res.Normalized[core.Heuristics]["broadcast"])
	}
	if res.CDFTable == nil {
		t.Error("CDF table missing")
	}
}

func TestFig12BackgroundShape(t *testing.T) {
	cfg := quick()
	cfg.SimVMs = 8
	cfg.TimeStep = 5
	res, err := Fig12Background(cfg, []float64{1, 20}, []float64{10 << 20, 100 << 20})
	if err != nil {
		t.Fatal(err)
	}
	// More frequent background (small λ) → larger NormE.
	if res.ByLambda[1] <= res.ByLambda[20] {
		t.Errorf("NormE should shrink with λ: %v", res.ByLambda)
	}
	// Larger background messages → larger NormE.
	if res.ByMsg[100<<20] <= res.ByMsg[10<<20] {
		t.Errorf("NormE should grow with bg message size: %v", res.ByMsg)
	}
}

func TestFig13SimulationShape(t *testing.T) {
	cfg := quick()
	cfg.SimVMs = 12
	cfg.Runs = 20
	cfg.TimeStep = 5
	res, err := Fig13Simulation(cfg, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	rpca := res.Normalized[core.RPCA]["broadcast"]
	topoN := res.Normalized[core.TopologyAware]["broadcast"]
	// Paper: RPCA 25–40% ahead of Baseline; accept >=10% under the quick
	// configuration.
	if rpca >= 0.9 {
		t.Errorf("RPCA normalized %v should clearly beat Baseline in simulation", rpca)
	}
	// Topology-aware ≈ Baseline in a dynamic environment (paper §V-E);
	// give it a generous band around 1.
	if topoN < 0.7 || topoN > 1.3 {
		t.Errorf("Topology-aware normalized %v should be near Baseline", topoN)
	}
	if rpca >= topoN {
		t.Errorf("RPCA (%v) should beat Topology-aware (%v)", rpca, topoN)
	}
	// RPCA should at least match Heuristics (paper: 10–15% ahead).
	if heur := res.Normalized[core.Heuristics]["broadcast"]; rpca > heur+0.05 {
		t.Errorf("RPCA (%v) should not lose to Heuristics (%v)", rpca, heur)
	}
	if res.CDFTable == nil || len(res.CDFTable.Rows) != 6 {
		t.Error("CDF table shape")
	}
}

// TestWeekTraceRecalibrations mirrors the paper's §V-C observation: over a
// week-long run with the default 100% threshold, re-calibration is rare
// (the paper saw three calibrations in total: day 0, day 2, day 5).
func TestWeekTraceRecalibrations(t *testing.T) {
	cfg := quick()
	cfg.VMs = 10
	res, err := Fig6Threshold(cfg, []float64{1.0}, 7)
	if err != nil {
		t.Fatal(err)
	}
	recals := res.Recalibrations[1.0]
	if recals > 8 {
		t.Errorf("a week at threshold=100%% should rarely recalibrate, got %d", recals)
	}
	// And the guard must actually be able to fire: a tight threshold over
	// the same week must trigger more often.
	tight, err := Fig6Threshold(cfg, []float64{0.1}, 7)
	if err != nil {
		t.Fatal(err)
	}
	if tight.Recalibrations[0.1] <= recals {
		t.Errorf("threshold=10%% (%d) should recalibrate more than 100%% (%d)",
			tight.Recalibrations[0.1], recals)
	}
}

// TestFig7SeedRobustness guards the central claim against seed tuning:
// RPCA must beat Baseline on broadcast for several independent worlds.
func TestFig7SeedRobustness(t *testing.T) {
	for _, seed := range []int64{2, 3, 5, 8} {
		cfg := quick()
		cfg.Seed = seed
		res, err := Fig7Overall(cfg)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if norm := res.Normalized[core.RPCA]["broadcast"]; norm >= 0.95 {
			t.Errorf("seed %d: RPCA normalized broadcast %v should clearly beat Baseline", seed, norm)
		}
	}
}
