package exp

// Checkpoint bridges the experiment harness to the crash-safety
// substrate (internal/checkpoint): a journal of completed sweep points
// and finished figures, plus a manifest snapshot that pins the
// configuration the journal belongs to.
//
// Record provenance is the hashed PointSeed already used to derive each
// point's rng stream: a journaled point replays only into the exact
// (figure, index, seed) slot it was computed for, so resuming with a
// different seed or figure shape recomputes instead of replaying wrong
// state. Whole-figure completion records store the rendered tables, so
// a resumed driver run skips finished figures entirely (environment
// setup included) and still emits byte-identical output.

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"netconstant/internal/checkpoint"
)

// JournalName and ManifestName are the file names inside a checkpoint
// directory.
const (
	JournalName  = "journal.nclog"
	ManifestName = "manifest.ncsnap"
)

// ErrManifestMismatch reports a -resume against a checkpoint directory
// whose journal was recorded under a different experiment
// configuration (seed, scale, figure profile).
var ErrManifestMismatch = errors.New("exp: checkpoint manifest does not match the current configuration")

// manifest pins every Config field that shapes sweep contents. Workers
// is deliberately absent: resuming with a different worker count must
// (and does) produce byte-identical tables.
type manifest struct {
	Version           int
	Seed              int64
	VMs               int
	SmallVMs          int
	Runs              int
	MsgBytes          float64
	TimeStep          int
	Racks             int
	ServersPerRack    int
	SimRacks          int
	SimServersPerRack int
	SimVMs            int
	MigrationRate     float64
	Memo              bool
}

func manifestOf(cfg Config) manifest {
	return manifest{
		Version:           1,
		Seed:              cfg.Seed,
		VMs:               cfg.VMs,
		SmallVMs:          cfg.SmallVMs,
		Runs:              cfg.Runs,
		MsgBytes:          cfg.MsgBytes,
		TimeStep:          cfg.TimeStep,
		Racks:             cfg.Racks,
		ServersPerRack:    cfg.ServersPerRack,
		SimRacks:          cfg.SimRacks,
		SimServersPerRack: cfg.SimServersPerRack,
		SimVMs:            cfg.SimVMs,
		MigrationRate:     cfg.MigrationRate,
		Memo:              cfg.Memo != nil,
	}
}

// ckptRecord is the journal's record payload (gob-framed inside the
// CRC-framed journal records).
type ckptRecord struct {
	Kind   string // "point" or "figure"
	Figure string
	Index  int    // point index (points only)
	Seed   int64  // PointSeed for points, Config.Seed for figures
	Data   []byte // gob of the point slot, or gob of []*Table
}

type pointKey struct {
	figure string
	index  int
}

type pointRecord struct {
	seed int64
	data []byte
}

// Checkpoint journals sweep progress for one experiment configuration.
// recordPoint (via sweepPoints) is safe for concurrent use.
type Checkpoint struct {
	j        *checkpoint.Journal
	baseSeed int64

	mu      sync.Mutex
	points  map[pointKey]pointRecord
	figures map[string][]byte

	resumedPoints  int
	resumedFigures int
}

// CheckpointStats reports what a resumed run replayed from the journal.
type CheckpointStats struct {
	ResumedPoints  int
	ResumedFigures int
}

// OpenCheckpoint opens (or creates) the checkpoint directory for cfg,
// recovering any journaled progress. A directory recorded under a
// different configuration is refused with ErrManifestMismatch; a
// damaged journal or manifest surfaces the substrate's typed corruption
// error (checkpoint.ErrCorrupt). Torn tails from a crash mid-append are
// recovered from silently — that is the substrate's job.
func OpenCheckpoint(dir string, cfg Config) (*Checkpoint, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	want := manifestOf(cfg)
	manPath := filepath.Join(dir, ManifestName)
	if payload, err := checkpoint.LoadSnapshot(manPath); err == nil {
		var got manifest
		if err := json.Unmarshal(payload, &got); err != nil {
			return nil, fmt.Errorf("exp: unreadable checkpoint manifest %s: %w", manPath, err)
		}
		if got != want {
			return nil, fmt.Errorf("%w: journal has seed=%d vms=%d runs=%d, run wants seed=%d vms=%d runs=%d (full diff: %+v vs %+v)",
				ErrManifestMismatch, got.Seed, got.VMs, got.Runs, want.Seed, want.VMs, want.Runs, got, want)
		}
	} else if os.IsNotExist(err) {
		payload, merr := json.Marshal(want)
		if merr != nil {
			return nil, merr
		}
		if err := checkpoint.SaveSnapshot(manPath, payload); err != nil {
			return nil, err
		}
	} else {
		return nil, err
	}

	j, rec, err := checkpoint.Open(filepath.Join(dir, JournalName))
	if err != nil {
		return nil, err
	}
	ck := &Checkpoint{
		j:        j,
		baseSeed: cfg.Seed,
		points:   map[pointKey]pointRecord{},
		figures:  map[string][]byte{},
	}
	for _, raw := range rec.Records {
		var r ckptRecord
		if err := gobDecode(raw, &r); err != nil {
			j.Close()
			return nil, fmt.Errorf("exp: undecodable checkpoint record: %v: %w", err, checkpoint.ErrCorrupt)
		}
		switch r.Kind {
		case "point":
			// Later duplicates win (a double-appended frame replays the
			// same bytes, so the choice is immaterial there).
			ck.points[pointKey{figure: r.Figure, index: r.Index}] = pointRecord{seed: r.Seed, data: r.Data}
			ck.resumedPoints++
		case "figure":
			if r.Seed == cfg.Seed {
				ck.figures[r.Figure] = r.Data
				ck.resumedFigures++
			}
		default:
			// Unknown kinds are skipped: a newer writer may add record
			// kinds an older reader can safely ignore.
		}
	}
	return ck, nil
}

// lookup returns the journaled slot payload for (figure, index) when its
// recorded provenance seed matches.
func (ck *Checkpoint) lookup(figure string, index int, seed int64) ([]byte, bool) {
	if ck == nil {
		return nil, false
	}
	ck.mu.Lock()
	defer ck.mu.Unlock()
	pr, ok := ck.points[pointKey{figure: figure, index: index}]
	if !ok || pr.seed != seed {
		return nil, false
	}
	return pr.data, true
}

// recordPoint journals a completed point slot. The append is durable
// (fsynced) before it returns.
func (ck *Checkpoint) recordPoint(figure string, index int, seed int64, data []byte) error {
	raw, err := gobEncode(&ckptRecord{Kind: "point", Figure: figure, Index: index, Seed: seed, Data: data})
	if err != nil {
		return err
	}
	if err := ck.j.Append(raw); err != nil {
		return err
	}
	ck.mu.Lock()
	ck.points[pointKey{figure: figure, index: index}] = pointRecord{seed: seed, data: data}
	ck.mu.Unlock()
	return nil
}

// FigureTables returns the journaled rendered tables of a finished
// figure, or ok=false when the figure must (re)run.
func (ck *Checkpoint) FigureTables(figure string) ([]*Table, bool) {
	if ck == nil {
		return nil, false
	}
	ck.mu.Lock()
	data, ok := ck.figures[figure]
	ck.mu.Unlock()
	if !ok {
		return nil, false
	}
	var tables []*Table
	if err := gobDecode(data, &tables); err != nil {
		return nil, false // recompute rather than guess
	}
	return tables, true
}

// RecordFigure journals a figure's finished tables so a resumed run can
// skip the figure wholesale.
func (ck *Checkpoint) RecordFigure(figure string, tables []*Table) error {
	data, err := gobEncode(&tables)
	if err != nil {
		return err
	}
	raw, err := gobEncode(&ckptRecord{Kind: "figure", Figure: figure, Seed: ck.baseSeed, Data: data})
	if err != nil {
		return err
	}
	if err := ck.j.Append(raw); err != nil {
		return err
	}
	ck.mu.Lock()
	ck.figures[figure] = data
	ck.mu.Unlock()
	return nil
}

// JournalSummary describes a checkpoint journal's contents from the
// outside: how much progress it holds and where that progress stopped.
// The expfleet supervisor reads it for healthchecks (is the child's
// journal growing?) and for quarantine diagnoses (what was the last
// journaled point before the task died?).
type JournalSummary struct {
	// Points and Figures count the decodable records of each kind.
	Points  int
	Figures int
	// LastFigure and LastIndex identify the most recently appended
	// point record; LastFigure is "" when the journal holds no points.
	LastFigure string
	LastIndex  int
	// Unknown counts records that did not gob-decode as checkpoint
	// records (a newer writer's kinds, or foreign payloads).
	Unknown int
	// TornBytes reports trailing bytes discarded as a torn final
	// append, exactly as checkpoint.Recovery does.
	TornBytes int64
}

// SummarizeJournal replays the journal at path read-only and tallies
// its records. Damage beyond a torn tail surfaces as the substrate's
// typed corruption error (matching checkpoint.ErrCorrupt).
func SummarizeJournal(path string) (JournalSummary, error) {
	rec, err := checkpoint.Replay(path)
	if err != nil {
		return JournalSummary{}, err
	}
	sum := JournalSummary{TornBytes: rec.TornBytes}
	for _, raw := range rec.Records {
		var r ckptRecord
		if err := gobDecode(raw, &r); err != nil {
			sum.Unknown++
			continue
		}
		switch r.Kind {
		case "point":
			sum.Points++
			sum.LastFigure = r.Figure
			sum.LastIndex = r.Index
		case "figure":
			sum.Figures++
		default:
			sum.Unknown++
		}
	}
	return sum, nil
}

// CheckCheckpointDir verifies that a checkpoint directory is resumable
// without opening it for writing: the manifest snapshot must load and
// parse, and the journal must replay. It does not compare the manifest
// against any configuration — that is OpenCheckpoint's job — so a
// supervisor can triage "corrupt, wipe and restart fresh" apart from
// "healthy, relaunch with -resume". A missing journal or manifest is an
// error (the directory holds no usable checkpoint); corruption matches
// checkpoint.ErrCorrupt.
func CheckCheckpointDir(dir string) error {
	payload, err := checkpoint.LoadSnapshot(filepath.Join(dir, ManifestName))
	if err != nil {
		return err
	}
	var m manifest
	if err := json.Unmarshal(payload, &m); err != nil {
		return fmt.Errorf("exp: unreadable checkpoint manifest in %s: %v: %w", dir, err, checkpoint.ErrCorrupt)
	}
	if _, err := SummarizeJournal(filepath.Join(dir, JournalName)); err != nil {
		return err
	}
	return nil
}

// Stats reports how much journaled progress this Checkpoint recovered
// when it was opened.
func (ck *Checkpoint) Stats() CheckpointStats {
	if ck == nil {
		return CheckpointStats{}
	}
	ck.mu.Lock()
	defer ck.mu.Unlock()
	return CheckpointStats{ResumedPoints: ck.resumedPoints, ResumedFigures: ck.resumedFigures}
}

// Close closes the underlying journal.
func (ck *Checkpoint) Close() error {
	if ck == nil {
		return nil
	}
	return ck.j.Close()
}
