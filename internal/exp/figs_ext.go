package exp

import (
	"fmt"
	"math/rand"

	"netconstant/internal/cloud"
	"netconstant/internal/core"
	"netconstant/internal/cost"
	"netconstant/internal/mpi"
	"netconstant/internal/netcoord"
	"netconstant/internal/netmodel"
	"netconstant/internal/rpca"
	"netconstant/internal/stats"
	"netconstant/internal/workflow"
)

// The Ext* experiments go beyond the paper's evaluation: the economic
// impact of the approach (its stated future work), the extended collective
// algorithms of MPICH as alternative schedules, and a quantitative version
// of the paper's argument against network coordinate systems.

// ExtEconomicsResult prices the Fig 7 broadcast workload.
type ExtEconomicsResult struct {
	Table *Table
	// BreakEvenRuns under per-second billing.
	BreakEvenRuns float64
	// NetSavings after cfg.Runs executions, dollars, per-second billing.
	NetSavings float64
}

// ExtEconomics evaluates the paper's future-work question: does the
// RPCA-guided optimization pay for its calibration in dollars? It prices
// the measured baseline and RPCA broadcast times under 2013 EC2 m1.medium
// pricing with per-second and hourly billing.
func ExtEconomics(cfg Config) (*ExtEconomicsResult, error) {
	e, err := newEnv(cfg, cfg.VMs, 2000)
	if err != nil {
		return nil, err
	}
	// Two phases: the cluster evolution and rng draws stay sequential, the
	// pure replay evaluation fans out.
	type econInput struct {
		snap *netmodel.PerfMatrix
		root int
	}
	inputs := make([]econInput, cfg.Runs)
	for r := 0; r < cfg.Runs; r++ {
		e.cluster.AdvanceTime(30 * 60)
		inputs[r] = econInput{snap: e.cluster.SnapshotPerf(), root: e.rng.Intn(cfg.VMs)}
	}
	type econEval struct{ Base, Rpca float64 }
	evals := make([]econEval, cfg.Runs)
	if err := sweepPoints(cfg, "ext-economics", evals, func(r int, _ *rand.Rand) error {
		in := inputs[r]
		evals[r] = econEval{
			Base: e.collectiveElapsed(core.Baseline, mpi.Broadcast, in.root, in.snap),
			Rpca: e.collectiveElapsed(core.RPCA, mpi.Broadcast, in.root, in.snap),
		}
		return nil
	}); err != nil {
		return nil, err
	}
	var baseSum, rpcaSum float64
	for r := 0; r < cfg.Runs; r++ {
		baseSum += evals[r].Base
		rpcaSum += evals[r].Rpca
	}
	baseMean := baseSum / float64(cfg.Runs)
	rpcaMean := rpcaSum / float64(cfg.Runs)
	overhead := e.advisor.CalibrationCost()

	res := &ExtEconomicsResult{
		Table: NewTable("Ext: economics of RPCA-guided broadcast (m1.medium, $0.12/VM-h)",
			"billing", "baseline $/run", "RPCA $/run", "overhead $", "break-even runs", fmt.Sprintf("net after %d runs $", cfg.Runs)),
	}
	for _, bill := range []struct {
		name string
		p    cost.Pricing
	}{
		{"per-second", cost.Pricing{VMPerHour: 0.12}},
		{"hourly", cost.Pricing{VMPerHour: 0.12, BillingGranularity: 3600}},
	} {
		c, err := cost.Compare(bill.p, cfg.VMs, cfg.Runs, baseMean, rpcaMean, overhead)
		if err != nil {
			return nil, err
		}
		if bill.name == "per-second" {
			res.BreakEvenRuns = c.BreakEvenRuns
			res.NetSavings = c.NetSavings
		}
		res.Table.AddRow(bill.name, fmt.Sprintf("%.5f", c.BaselineCost), fmt.Sprintf("%.5f", c.OptimizedCost),
			fmt.Sprintf("%.5f", c.OverheadCost), f(c.BreakEvenRuns), fmt.Sprintf("%.5f", c.NetSavings))
	}
	res.Table.AddNote("mean broadcast: baseline %.3f s, RPCA %.3f s; calibration %.0f s", baseMean, rpcaMean, overhead)
	return res, nil
}

// ExtCollectivesResult compares all-to-all implementations.
type ExtCollectivesResult struct {
	Table *Table
	// Elapsed maps implementation name -> mean elapsed seconds.
	Elapsed map[string]float64
}

// ExtCollectives compares the paper's gather+broadcast all-to-all (the
// MPICH2 composition its applications use) against the pairwise-exchange
// all-to-all and a ring allreduce carrying the same data volume, each
// planned with the RPCA constant component where the algorithm can use
// ordering (chain/ring order from weights).
func ExtCollectives(cfg Config) (*ExtCollectivesResult, error) {
	e, err := newEnv(cfg, cfg.VMs, 2100)
	if err != nil {
		return nil, err
	}
	n := cfg.VMs
	chunk := 1 << 20 // 1 MB per-rank chunk
	res := &ExtCollectivesResult{
		Table:   NewTable("Ext: all-to-all implementations (1 MB per-rank chunks, RPCA-guided)", "implementation", "mean elapsed (s)"),
		Elapsed: map[string]float64{},
	}
	snaps := make([]*netmodel.PerfMatrix, cfg.Runs)
	for r := 0; r < cfg.Runs; r++ {
		e.cluster.AdvanceTime(30 * 60)
		snaps[r] = e.cluster.SnapshotPerf()
	}
	type collEval struct{ Gb, Pw, Ring float64 }
	evals := make([]collEval, cfg.Runs)
	if err := sweepPoints(cfg, "ext-collectives", evals, func(r int, _ *rand.Rand) error {
		snap := snaps[r]
		w := e.advisor.Constant().Weights(float64(chunk))
		tree := e.advisor.PlanTree(core.RPCA, 0, float64(chunk), nil, nil)
		order := mpi.ChainFromWeights(w, 0)
		evals[r] = collEval{
			Gb:   mpi.RunAllToAll(mpi.NewAnalyticNet(snap), tree, tree, float64(chunk)),
			Pw:   mpi.PairwiseAlltoall(mpi.NewAnalyticNet(snap), order, float64(chunk)),
			Ring: mpi.RingAllreduce(mpi.NewAnalyticNet(snap), order, float64(chunk)*float64(n)),
		}
		return nil
	}); err != nil {
		return nil, err
	}
	sums := map[string]float64{}
	for r := 0; r < cfg.Runs; r++ {
		sums["gather+broadcast (paper)"] += evals[r].Gb
		sums["pairwise exchange"] += evals[r].Pw
		sums["ring allreduce (same volume)"] += evals[r].Ring
	}
	for name, s := range sums {
		res.Elapsed[name] = s / float64(cfg.Runs)
	}
	for _, name := range []string{"gather+broadcast (paper)", "pairwise exchange", "ring allreduce (same volume)"} {
		res.Table.AddRow(name, f(res.Elapsed[name]))
	}
	return res, nil
}

// ExtCoordinatesResult quantifies the §IV-B coordinate argument.
type ExtCoordinatesResult struct {
	Table *Table
	// TriangleViolationRate over the cluster's transfer-time matrix.
	TriangleViolationRate float64
	// VivaldiMedianErr is the embedding's median relative prediction error.
	VivaldiMedianErr float64
	// RPCAMedianErr is the RPCA constant's median relative error against
	// the same matrix.
	RPCAMedianErr float64
}

// ExtCoordinates makes the paper's dismissal of network coordinates
// (§IV-B) quantitative: it measures the triangle-inequality violation rate
// of a virtual cluster's transfer-time matrix, then compares the accuracy
// achievable by a Vivaldi embedding (which assumes a metric space) against
// the RPCA constant component on the same cluster.
func ExtCoordinates(cfg Config) (*ExtCoordinatesResult, error) {
	e, err := newEnv(cfg, cfg.VMs, 2200)
	if err != nil {
		return nil, err
	}
	msg := cfg.MsgBytes
	truth := e.cluster.TruePerf().Weights(msg)

	tri := netcoord.AnalyzeTriangles(truth)

	// Vivaldi trained on live (noisy) measurements, like any deployment.
	rng := stats.NewRNG(cfg.Seed + 2201)
	sys := netcoord.New(cfg.VMs, netcoord.Config{})
	sys.Train(rng, 4000*cfg.VMs, func(i, j int) float64 {
		return e.cluster.PairPerf(i, j).TransferTime(msg)
	})
	vMed, _ := sys.FitError(truth)

	// RPCA constant error against the same ground truth.
	con := e.advisor.Constant().Weights(msg)
	var errsAll []float64
	for i := 0; i < cfg.VMs; i++ {
		for j := 0; j < cfg.VMs; j++ {
			if i == j {
				continue
			}
			tw := truth.At(i, j)
			errsAll = append(errsAll, absF(con.At(i, j)-tw)/tw)
		}
	}
	rMed := stats.Quantile(sortedCopy(errsAll), 0.5)

	res := &ExtCoordinatesResult{
		Table:                 NewTable("Ext: why coordinates fail on clouds (§IV-B, quantified)", "metric", "value"),
		TriangleViolationRate: tri.Rate,
		VivaldiMedianErr:      vMed,
		RPCAMedianErr:         rMed,
	}
	res.Table.AddRow("triangle-inequality violation rate", pct(tri.Rate))
	res.Table.AddRow("worst violation severity", pct(tri.Worst.Severity))
	res.Table.AddRow("Vivaldi median prediction error", pct(vMed))
	res.Table.AddRow("RPCA constant median error", pct(rMed))
	res.Table.AddNote("Norm(N_E) = %.3f; Vivaldi assumes a metric space, the cloud's pair-wise performance is not one", e.advisor.NormE())
	return res, nil
}

func absF(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func sortedCopy(xs []float64) []float64 {
	out := append([]float64(nil), xs...)
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// ExtSolverAgreement cross-checks the two RPCA solvers on a real
// calibration, reporting agreement and iteration counts — evidence the
// decomposition is algorithm-independent.
func ExtSolverAgreement(cfg Config) (*Table, error) {
	e, err := newEnv(cfg, cfg.VMs, 2300)
	if err != nil {
		return nil, err
	}
	tc := e.advisor.LastCalibration()
	a := tc.Bandwidth.Matrix()
	lambda := 0.316
	apg, err := rpca.Decompose(a, rpca.Options{Lambda: lambda})
	if err != nil {
		return nil, err
	}
	ialm, err := rpca.DecomposeIALM(a, rpca.IALMOptions{Lambda: lambda})
	if err != nil {
		return nil, err
	}
	rowA := rpca.ConstantRow(apg.D, rpca.ExtractMedian)
	rowI := rpca.ConstantRow(ialm.D, rpca.ExtractMedian)
	tb := NewTable("Ext: APG vs IALM solver agreement on a real calibration", "metric", "APG", "IALM")
	tb.AddRow("iterations", fmt.Sprint(apg.Iterations), fmt.Sprint(ialm.Iterations))
	tb.AddRow("converged", fmt.Sprint(apg.Converged), fmt.Sprint(ialm.Converged))
	tb.AddRow("rank(D)", fmt.Sprint(apg.RankD), fmt.Sprint(ialm.RankD))
	tb.AddNote("constant rows differ by %.4f (relative L1)", rpca.RelDiff(rowA, rowI))
	return tb, nil
}

// ExtWorkflowResult compares workflow scheduling strategies.
type ExtWorkflowResult struct {
	Table *Table
	// Normalized maps scheduler name -> mean actual makespan normalized to
	// round-robin.
	Normalized map[string]float64
}

// ExtWorkflow evaluates the paper's workflow future work: a layered
// scientific-workflow DAG is scheduled onto the virtual cluster with
// round-robin, network-blind HEFT, and HEFT guided by the Heuristics
// estimate and by the RPCA constant component; every plan is evaluated
// against the instantaneous network of each run.
func ExtWorkflow(cfg Config) (*ExtWorkflowResult, error) {
	e, err := newEnv(cfg, cfg.VMs, 2400)
	if err != nil {
		return nil, err
	}
	const flopRate = 1e9
	type wfInput struct {
		snap *netmodel.PerfMatrix
		dag  *workflow.DAG
	}
	inputs := make([]wfInput, cfg.Runs)
	for r := 0; r < cfg.Runs; r++ {
		e.cluster.AdvanceTime(30 * 60)
		inputs[r] = wfInput{
			snap: e.cluster.SnapshotPerf(),
			dag:  workflow.RandomDAG(e.rng, 5, cfg.VMs/2, 4<<20, 32<<20, 5e8, 2e9),
		}
	}
	// Journaled per point (journalsafe): a slice of named pairs in fixed
	// scheduler order instead of a map, so a point's gob bytes are
	// reproducible run to run.
	type wfEval struct {
		Scheduler string
		Makespan  float64
	}
	schedulers := []string{"round-robin", "HEFT (blind)", "HEFT + Heuristics", "HEFT + RPCA"}
	evals := make([][]wfEval, cfg.Runs)
	if err := sweepPoints(cfg, "ext-workflow", evals, func(r int, _ *rand.Rand) error {
		in := inputs[r]
		plans := map[string][]int{}
		plans["round-robin"] = workflow.RoundRobin(in.dag, cfg.VMs)
		if s, err := workflow.HEFT(in.dag, cfg.VMs, flopRate, nil); err == nil {
			plans["HEFT (blind)"] = s.VMOf
		}
		if s, err := workflow.HEFT(in.dag, cfg.VMs, flopRate, e.advisor.HeuristicPerf()); err == nil {
			plans["HEFT + Heuristics"] = s.VMOf
		}
		if s, err := workflow.HEFT(in.dag, cfg.VMs, flopRate, e.advisor.Constant()); err == nil {
			plans["HEFT + RPCA"] = s.VMOf
		}
		var ms []wfEval
		for _, name := range schedulers {
			assign, ok := plans[name]
			if !ok {
				continue
			}
			v, err := workflow.Evaluate(in.dag, assign, cfg.VMs, flopRate, in.snap)
			if err != nil {
				return err
			}
			ms = append(ms, wfEval{Scheduler: name, Makespan: v})
		}
		evals[r] = ms
		return nil
	}); err != nil {
		return nil, err
	}
	sums := map[string]float64{}
	for r := 0; r < cfg.Runs; r++ {
		for _, ev := range evals[r] {
			sums[ev.Scheduler] += ev.Makespan
		}
	}
	res := &ExtWorkflowResult{
		Table:      NewTable("Ext: scientific workflow scheduling (makespan normalized to round-robin)", "scheduler", "normalized makespan"),
		Normalized: map[string]float64{},
	}
	base := sums["round-robin"]
	for _, name := range []string{"round-robin", "HEFT (blind)", "HEFT + Heuristics", "HEFT + RPCA"} {
		res.Normalized[name] = sums[name] / base
		res.Table.AddRow(name, f(res.Normalized[name]))
	}
	return res, nil
}

// AccuracyResult reports the §V-D3 "accuracy of performance estimations"
// study.
type AccuracyResult struct {
	Table *Table
	// MeanRelDiff maps strategy name -> mean |estimated − measured| /
	// measured for broadcast elapsed time.
	MeanRelDiff map[string]float64
}

// AccuracyStudy reproduces the paper's trace-replay validation (§V-D3 /
// its technical-report Appendix B): the α-β estimate of a collective's
// elapsed time, computed from a measured performance matrix, is compared
// against the *actual* execution of the same schedule on the flow-level
// simulator (where real contention applies). The paper reports average
// differences of 18% for Baseline and 9% for RPCA; the estimator should
// track reality within tens of percent, and better for RPCA's schedules
// (which avoid the congested, hard-to-predict links).
func AccuracyStudy(cfg Config) (*AccuracyResult, error) {
	sc := simClusterFor(cfg, 1, 64<<20, 2*cfg.SimVMs, maxI(2, cfg.SimRacks/2), 2500)
	defer sc.StopBackground()
	rng := stats.NewRNG(cfg.Seed + 2501)
	adv := core.NewAdvisor(sc, rng, core.AdvisorConfig{TimeStep: cfg.TimeStep})
	tc := cloudSnapshotTP(sc, cfg.TimeStep)
	if err := adv.AnalyzeCalibration(tc); err != nil {
		return nil, err
	}

	diffs := map[string][]float64{}
	net := mpi.NewSimNetwork(sc.Sim, sc.Hosts)
	n := cfg.SimVMs
	for r := 0; r < cfg.Runs; r++ {
		root := rng.Intn(n)
		// A fresh measured snapshot is the estimator's input.
		snap := cloudSnapshotTP(sc, 1)
		snapPerf := core.PerfFromRows(n, snap.Latency.Matrix().Row(0), snap.Bandwidth.Matrix().Row(0))
		for _, s := range []core.Strategy{core.Baseline, core.RPCA} {
			tree := adv.PlanTree(s, root, cfg.MsgBytes, sc.Sim.Topo, sc.Hosts)
			estimated := mpi.RunCollective(mpi.NewAnalyticNet(snapPerf), tree, mpi.Broadcast, cfg.MsgBytes)
			measured := mpi.RunCollective(net, tree, mpi.Broadcast, cfg.MsgBytes)
			if measured > 0 {
				diffs[s.String()] = append(diffs[s.String()], absF(estimated-measured)/measured)
			}
		}
	}
	res := &AccuracyResult{
		Table:       NewTable("§V-D3: accuracy of the trace-replay estimation vs live execution", "strategy", "mean |est−meas|/meas"),
		MeanRelDiff: map[string]float64{},
	}
	for _, name := range []string{"Baseline", "RPCA"} {
		m := stats.Mean(diffs[name])
		res.MeanRelDiff[name] = m
		res.Table.AddRow(name, pct(m))
	}
	res.Table.AddNote("paper reports 18%% (Baseline) and 9%% (RPCA) average difference on EC2")
	return res, nil
}

func maxI(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// cloudSnapshotTP adapts cloud.SnapshotTP with the 5-second gap the sim
// experiments use.
func cloudSnapshotTP(sc *cloud.SimCluster, steps int) *cloud.TemporalCalibration {
	return cloud.SnapshotTP(sc, steps, 5)
}
