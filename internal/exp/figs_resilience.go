package exp

import (
	"fmt"
	"math"
	"math/rand"

	"netconstant/internal/cloud"
	"netconstant/internal/core"
	"netconstant/internal/faults"
	"netconstant/internal/stats"
	"netconstant/internal/topo"
)

// ExtResilienceResult is the fault-injection sweep: how calibration
// coverage, analysis accuracy, and advisor confidence degrade as probes
// are lost and racks black out.
type ExtResilienceResult struct {
	Table *Table
	// BaselineErr is the fault-free constant-component error vs truth.
	BaselineErr float64
	// WorstErr is the largest error across the faulted scenarios.
	WorstErr float64
}

// ExtResilience measures graceful degradation end to end. Each scenario
// provisions an identically seeded cluster, wraps it with a fault
// scenario (probe loss sweep, with and without a rack blackout spanning
// part of the calibration), runs the resilient calibration + masked RPCA
// pipeline, and reports coverage, mean measurement quality, Norm(N_E),
// the constant component's relative error against the ground truth, and
// the confidence-graded strategy the advisor would actually use.
func ExtResilience(cfg Config) (*ExtResilienceResult, error) {
	const seedOffset = 7000
	build := func() (*cloud.Provider, *cloud.VirtualCluster, error) {
		p := cloud.NewProvider(cloud.ProviderConfig{
			Tree: topo.TreeConfig{Racks: cfg.Racks, ServersPerRack: cfg.ServersPerRack},
			Seed: cfg.Seed + seedOffset,
		})
		vc, err := p.Provision(cfg.SmallVMs, cfg.Seed+seedOffset+1)
		return p, vc, err
	}

	// Fault-free resilient run: the reference cost and error.
	_, vc0, err := build()
	if err != nil {
		return nil, err
	}
	advCfg := core.AdvisorConfig{
		TimeStep:    cfg.TimeStep,
		Calibration: cloud.CalibrationConfig{Resilient: true},
	}
	adv0 := core.NewAdvisor(vc0, stats.NewRNG(cfg.Seed+seedOffset+2), advCfg)
	if err := adv0.Calibrate(); err != nil {
		return nil, err
	}
	truth := vc0.TruePerf()
	baseCost := adv0.CalibrationCost()

	relErr := func(adv *core.Advisor) float64 {
		con := adv.Constant()
		var sum float64
		count := 0
		n := truth.N
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if i == j {
					continue
				}
				tb := truth.Bandwth.At(i, j)
				sum += math.Abs(con.Bandwth.At(i, j)-tb) / tb
				count++
			}
		}
		return sum / float64(count)
	}

	res := &ExtResilienceResult{
		Table: NewTable(fmt.Sprintf("Ext: calibration resilience under injected faults (%d VMs)", cfg.SmallVMs),
			"probe loss", "blackout", "coverage", "mean quality", "Norm(N_E)", "rel err vs truth", "confidence", "strategy used"),
		BaselineErr: relErr(adv0),
	}
	res.Table.AddRow("0%", "no", "100.0%", "1.00",
		fmt.Sprintf("%.4f", adv0.NormE()), fmt.Sprintf("%.4f", res.BaselineErr),
		adv0.Confidence().String(), adv0.EffectiveStrategy(core.RPCA).String())
	res.WorstErr = res.BaselineErr

	// Each scenario provisions its own identically seeded cluster, so the
	// sweep fans out over the worker pool; rows are emitted in scenario
	// order afterwards.
	type scenario struct {
		loss     float64
		blackout bool
	}
	var scenarios []scenario
	for _, loss := range []float64{0.1, 0.2, 0.4} {
		for _, blackout := range []bool{false, true} {
			scenarios = append(scenarios, scenario{loss, blackout})
		}
	}
	// Each sweep slot holds the scenario's serializable row data (not the
	// advisor itself), so completed scenarios gob-journal into the crash
	// checkpoint.
	type resPoint struct {
		Coverage    float64
		MeanQuality float64
		NormE       float64
		RelErr      float64
		Confidence  string
		Strategy    string
	}
	pts := make([]resPoint, len(scenarios))
	if err := sweepPoints(cfg, "ext-resilience", pts, func(i int, _ *rand.Rand) error {
		p, vc, err := build()
		if err != nil {
			return err
		}
		sc := faults.Scenario{Seed: cfg.Seed + seedOffset + 3, ProbeLoss: scenarios[i].loss}
		if scenarios[i].blackout {
			rack := p.Topo.Node(vc.Hosts[0]).Rack
			sc.Blackouts = []faults.Blackout{
				faults.RackBlackout(p.Topo, vc.Hosts, rack, 0.1*baseCost, 1.5*baseCost),
			}
		}
		fc := faults.Wrap(vc, sc)
		adv := core.NewAdvisor(fc, stats.NewRNG(cfg.Seed+seedOffset+2), advCfg)
		if err := adv.Calibrate(); err != nil {
			return err
		}
		h := adv.Health()
		pts[i] = resPoint{
			Coverage:    h.Coverage,
			MeanQuality: h.MeanQuality,
			NormE:       adv.NormE(),
			RelErr:      relErr(adv),
			Confidence:  h.Confidence.String(),
			Strategy:    adv.EffectiveStrategy(core.RPCA).String(),
		}
		return nil
	}); err != nil {
		return nil, err
	}
	for i, scen := range scenarios {
		p := pts[i]
		if p.RelErr > res.WorstErr {
			res.WorstErr = p.RelErr
		}
		yn := "no"
		if scen.blackout {
			yn = "yes"
		}
		res.Table.AddRow(
			fmt.Sprintf("%.0f%%", 100*scen.loss), yn,
			fmt.Sprintf("%.1f%%", 100*p.Coverage),
			fmt.Sprintf("%.2f", p.MeanQuality),
			fmt.Sprintf("%.4f", p.NormE),
			fmt.Sprintf("%.4f", p.RelErr),
			p.Confidence,
			p.Strategy,
		)
	}
	res.Table.AddNote("blackout: first VM's rack dark from %.0fs for %.0fs (fault-free calibration costs %.0fs)",
		0.1*baseCost, 1.5*baseCost, baseCost)
	res.Table.AddNote("resilient calibration: retries + MAD screening + missing-cell masking; analysis: masked IALM")
	return res, nil
}
