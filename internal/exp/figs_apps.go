package exp

import (
	"fmt"
	"math/rand"

	"netconstant/internal/apps"
	"netconstant/internal/core"
	"netconstant/internal/mpi"
	"netconstant/internal/netmodel"
)

// Fig9Result reports a real-application sweep with per-strategy breakdowns.
type Fig9Result struct {
	Table *Table
	// Totals maps sweep value -> strategy -> total elapsed seconds.
	Totals map[string]map[core.Strategy]float64
	// Breakdowns maps sweep value -> strategy -> breakdown.
	Breakdowns map[string]map[core.Strategy]apps.Breakdown
}

// appTrees plans the gather and broadcast trees a strategy uses for the
// applications' all-to-all (root fixed at rank 0, as both operations share
// the root in the MPICH2 composition).
func (e *env) appTrees(s core.Strategy, msg float64) (*mpi.Tree, *mpi.Tree) {
	t := e.advisor.PlanTree(s, 0, msg, e.provider.Topo, e.cluster.Hosts)
	return t, t
}

// overheadFor returns the "Other Overheads" component of Fig 9: the
// calibration plus RPCA analysis cost, charged to strategies that require
// measurements.
func (e *env) overheadFor(s core.Strategy) float64 {
	if s == core.Baseline || s == core.TopologyAware {
		return 0
	}
	// One calibration per application execution (paper §V-A: "the temporal
	// performance matrix is calibrated once for one execution").
	return e.advisor.CalibrationCost() / float64(e.advisor.Calibrations())
}

// runAppSweep is the shared two-phase harness of the Fig 9 family: a
// sequential pass evolves the cluster and snapshots it per sweep value
// (preserving the exact rng/clock sequence of the original loop), then
// the per-value application runs — pure given a snapshot — fan out over
// the worker pool. Rows and result maps are filled in sweep order, so
// tables are byte-identical at any worker count.
func runAppSweep(e *env, figure string, res *Fig9Result, keys []string,
	eval func(i int, s core.Strategy, snap *netmodel.PerfMatrix) (apps.Breakdown, error)) error {
	cfg := e.cfg
	snaps := make([]*netmodel.PerfMatrix, len(keys))
	for i := range keys {
		e.cluster.AdvanceTime(60)
		snaps[i] = e.cluster.SnapshotPerf()
	}
	evals := make([][]apps.Breakdown, len(keys))
	if err := sweepPoints(cfg, figure, evals, func(i int, _ *rand.Rand) error {
		bds := make([]apps.Breakdown, len(strategiesEC2))
		for si, s := range strategiesEC2 {
			bd, err := eval(i, s, snaps[i])
			if err != nil {
				return err
			}
			bd.Overhead = e.overheadFor(s)
			bds[si] = bd
		}
		evals[i] = bds
		return nil
	}); err != nil {
		return err
	}
	for i, key := range keys {
		res.Totals[key] = map[core.Strategy]float64{}
		res.Breakdowns[key] = map[core.Strategy]apps.Breakdown{}
		for si, s := range strategiesEC2 {
			bd := evals[i][si]
			res.Totals[key][s] = bd.Total()
			res.Breakdowns[key][s] = bd
			res.Table.AddRow(key, s.String(), f(bd.Computation), f(bd.Communication), f(bd.Overhead), f(bd.Total()))
		}
	}
	return nil
}

// Fig9aCG regenerates Figure 9(a): CG total time (computation,
// communication, overheads) versus vector size for Baseline (MPICH2),
// Heuristics and RPCA. Small vectors are dominated by calibration
// overhead; large vectors show the paper's ~31% gain over Baseline.
func Fig9aCG(cfg Config, vectorSizes []int) (*Fig9Result, error) {
	if len(vectorSizes) == 0 {
		vectorSizes = []int{1000, 4000, 16000, 64000}
	}
	e, err := newEnv(cfg, cfg.VMs, 900)
	if err != nil {
		return nil, err
	}
	res := &Fig9Result{
		Table:      NewTable("Fig 9a: CG elapsed time vs vector size", "vector size", "strategy", "comp (s)", "comm (s)", "overhead (s)", "total (s)"),
		Totals:     map[string]map[core.Strategy]float64{},
		Breakdowns: map[string]map[core.Strategy]apps.Breakdown{},
	}
	keys := make([]string, len(vectorSizes))
	for i, vs := range vectorSizes {
		keys[i] = fmt.Sprint(vs)
	}
	err = runAppSweep(e, "fig9a", res, keys, func(i int, s core.Strategy, snap *netmodel.PerfMatrix) (apps.Breakdown, error) {
		vs := vectorSizes[i]
		chunk := float64(vs) / float64(cfg.VMs) * 8
		g, b := e.appTrees(s, chunk)
		out, err := apps.RunCG(mpi.NewAnalyticNet(snap), g, b, apps.CGConfig{
			VectorSize: vs,
			Ranks:      cfg.VMs,
			MaxIter:    4000,
		})
		if err != nil {
			return apps.Breakdown{}, err
		}
		return out.Breakdown, nil
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// Fig9bNBodySteps regenerates Figure 9(b): N-body elapsed time versus
// #Step at a fixed 1 MB message.
func Fig9bNBodySteps(cfg Config, steps []int, bodies int) (*Fig9Result, error) {
	if len(steps) == 0 {
		steps = []int{10, 40, 160, 640}
	}
	if bodies == 0 {
		bodies = 128
	}
	e, err := newEnv(cfg, cfg.VMs, 910)
	if err != nil {
		return nil, err
	}
	res := &Fig9Result{
		Table:      NewTable("Fig 9b: N-body elapsed time vs #Step (1 MB messages)", "#Step", "strategy", "comp (s)", "comm (s)", "overhead (s)", "total (s)"),
		Totals:     map[string]map[core.Strategy]float64{},
		Breakdowns: map[string]map[core.Strategy]apps.Breakdown{},
	}
	const msg = 1 << 20
	keys := make([]string, len(steps))
	for i, st := range steps {
		keys[i] = fmt.Sprint(st)
	}
	err = runAppSweep(e, "fig9b", res, keys, func(i int, s core.Strategy, snap *netmodel.PerfMatrix) (apps.Breakdown, error) {
		g, b := e.appTrees(s, msg)
		out, err := apps.RunNBody(mpi.NewAnalyticNet(snap), g, b, apps.NBodyConfig{
			Bodies: bodies, Steps: steps[i], Ranks: cfg.VMs, MsgBytes: msg, Seed: cfg.Seed,
		})
		if err != nil {
			return apps.Breakdown{}, err
		}
		return out.Breakdown, nil
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// Fig9cNBodyMsg regenerates Figure 9(c): N-body elapsed time versus
// message size at a fixed #Step.
func Fig9cNBodyMsg(cfg Config, msgs []float64, steps, bodies int) (*Fig9Result, error) {
	if len(msgs) == 0 {
		msgs = []float64{1 << 10, 16 << 10, 128 << 10, 1 << 20}
	}
	if steps == 0 {
		steps = 64
	}
	if bodies == 0 {
		bodies = 128
	}
	e, err := newEnv(cfg, cfg.VMs, 920)
	if err != nil {
		return nil, err
	}
	res := &Fig9Result{
		Table:      NewTable("Fig 9c: N-body elapsed time vs message size", "msg bytes", "strategy", "comp (s)", "comm (s)", "overhead (s)", "total (s)"),
		Totals:     map[string]map[core.Strategy]float64{},
		Breakdowns: map[string]map[core.Strategy]apps.Breakdown{},
	}
	keys := make([]string, len(msgs))
	for i, msg := range msgs {
		keys[i] = fmt.Sprint(int(msg))
	}
	err = runAppSweep(e, "fig9c", res, keys, func(i int, s core.Strategy, snap *netmodel.PerfMatrix) (apps.Breakdown, error) {
		msg := msgs[i]
		g, b := e.appTrees(s, msg)
		out, err := apps.RunNBody(mpi.NewAnalyticNet(snap), g, b, apps.NBodyConfig{
			Bodies: bodies, Steps: steps, Ranks: cfg.VMs, MsgBytes: msg, Seed: cfg.Seed,
		})
		if err != nil {
			return apps.Breakdown{}, err
		}
		return out.Breakdown, nil
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}
