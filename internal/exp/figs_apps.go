package exp

import (
	"fmt"

	"netconstant/internal/apps"
	"netconstant/internal/core"
	"netconstant/internal/mpi"
)

// Fig9Result reports a real-application sweep with per-strategy breakdowns.
type Fig9Result struct {
	Table *Table
	// Totals maps sweep value -> strategy -> total elapsed seconds.
	Totals map[string]map[core.Strategy]float64
	// Breakdowns maps sweep value -> strategy -> breakdown.
	Breakdowns map[string]map[core.Strategy]apps.Breakdown
}

// appTrees plans the gather and broadcast trees a strategy uses for the
// applications' all-to-all (root fixed at rank 0, as both operations share
// the root in the MPICH2 composition).
func (e *env) appTrees(s core.Strategy, msg float64) (*mpi.Tree, *mpi.Tree) {
	t := e.advisor.PlanTree(s, 0, msg, e.provider.Topo, e.cluster.Hosts)
	return t, t
}

// overheadFor returns the "Other Overheads" component of Fig 9: the
// calibration plus RPCA analysis cost, charged to strategies that require
// measurements.
func (e *env) overheadFor(s core.Strategy) float64 {
	if s == core.Baseline || s == core.TopologyAware {
		return 0
	}
	// One calibration per application execution (paper §V-A: "the temporal
	// performance matrix is calibrated once for one execution").
	return e.advisor.CalibrationCost() / float64(e.advisor.Calibrations())
}

// Fig9aCG regenerates Figure 9(a): CG total time (computation,
// communication, overheads) versus vector size for Baseline (MPICH2),
// Heuristics and RPCA. Small vectors are dominated by calibration
// overhead; large vectors show the paper's ~31% gain over Baseline.
func Fig9aCG(cfg Config, vectorSizes []int) (*Fig9Result, error) {
	if len(vectorSizes) == 0 {
		vectorSizes = []int{1000, 4000, 16000, 64000}
	}
	e, err := newEnv(cfg, cfg.VMs, 900)
	if err != nil {
		return nil, err
	}
	res := &Fig9Result{
		Table:      NewTable("Fig 9a: CG elapsed time vs vector size", "vector size", "strategy", "comp (s)", "comm (s)", "overhead (s)", "total (s)"),
		Totals:     map[string]map[core.Strategy]float64{},
		Breakdowns: map[string]map[core.Strategy]apps.Breakdown{},
	}
	for _, vs := range vectorSizes {
		key := fmt.Sprint(vs)
		res.Totals[key] = map[core.Strategy]float64{}
		res.Breakdowns[key] = map[core.Strategy]apps.Breakdown{}
		e.cluster.AdvanceTime(60)
		snap := e.cluster.SnapshotPerf()
		chunk := float64(vs) / float64(cfg.VMs) * 8
		for _, s := range strategiesEC2 {
			g, b := e.appTrees(s, chunk)
			out, err := apps.RunCG(mpi.NewAnalyticNet(snap), g, b, apps.CGConfig{
				VectorSize: vs,
				Ranks:      cfg.VMs,
				MaxIter:    4000,
			})
			if err != nil {
				return nil, err
			}
			out.Breakdown.Overhead = e.overheadFor(s)
			res.Totals[key][s] = out.Breakdown.Total()
			res.Breakdowns[key][s] = out.Breakdown
			res.Table.AddRow(key, s.String(), f(out.Breakdown.Computation), f(out.Breakdown.Communication), f(out.Breakdown.Overhead), f(out.Breakdown.Total()))
		}
	}
	return res, nil
}

// Fig9bNBodySteps regenerates Figure 9(b): N-body elapsed time versus
// #Step at a fixed 1 MB message.
func Fig9bNBodySteps(cfg Config, steps []int, bodies int) (*Fig9Result, error) {
	if len(steps) == 0 {
		steps = []int{10, 40, 160, 640}
	}
	if bodies == 0 {
		bodies = 128
	}
	e, err := newEnv(cfg, cfg.VMs, 910)
	if err != nil {
		return nil, err
	}
	res := &Fig9Result{
		Table:      NewTable("Fig 9b: N-body elapsed time vs #Step (1 MB messages)", "#Step", "strategy", "comp (s)", "comm (s)", "overhead (s)", "total (s)"),
		Totals:     map[string]map[core.Strategy]float64{},
		Breakdowns: map[string]map[core.Strategy]apps.Breakdown{},
	}
	const msg = 1 << 20
	for _, st := range steps {
		key := fmt.Sprint(st)
		res.Totals[key] = map[core.Strategy]float64{}
		res.Breakdowns[key] = map[core.Strategy]apps.Breakdown{}
		e.cluster.AdvanceTime(60)
		snap := e.cluster.SnapshotPerf()
		for _, s := range strategiesEC2 {
			g, b := e.appTrees(s, msg)
			out, err := apps.RunNBody(mpi.NewAnalyticNet(snap), g, b, apps.NBodyConfig{
				Bodies: bodies, Steps: st, Ranks: cfg.VMs, MsgBytes: msg, Seed: cfg.Seed,
			})
			if err != nil {
				return nil, err
			}
			out.Breakdown.Overhead = e.overheadFor(s)
			res.Totals[key][s] = out.Breakdown.Total()
			res.Breakdowns[key][s] = out.Breakdown
			res.Table.AddRow(key, s.String(), f(out.Breakdown.Computation), f(out.Breakdown.Communication), f(out.Breakdown.Overhead), f(out.Breakdown.Total()))
		}
	}
	return res, nil
}

// Fig9cNBodyMsg regenerates Figure 9(c): N-body elapsed time versus
// message size at a fixed #Step.
func Fig9cNBodyMsg(cfg Config, msgs []float64, steps, bodies int) (*Fig9Result, error) {
	if len(msgs) == 0 {
		msgs = []float64{1 << 10, 16 << 10, 128 << 10, 1 << 20}
	}
	if steps == 0 {
		steps = 64
	}
	if bodies == 0 {
		bodies = 128
	}
	e, err := newEnv(cfg, cfg.VMs, 920)
	if err != nil {
		return nil, err
	}
	res := &Fig9Result{
		Table:      NewTable("Fig 9c: N-body elapsed time vs message size", "msg bytes", "strategy", "comp (s)", "comm (s)", "overhead (s)", "total (s)"),
		Totals:     map[string]map[core.Strategy]float64{},
		Breakdowns: map[string]map[core.Strategy]apps.Breakdown{},
	}
	for _, msg := range msgs {
		key := fmt.Sprint(int(msg))
		res.Totals[key] = map[core.Strategy]float64{}
		res.Breakdowns[key] = map[core.Strategy]apps.Breakdown{}
		e.cluster.AdvanceTime(60)
		snap := e.cluster.SnapshotPerf()
		for _, s := range strategiesEC2 {
			g, b := e.appTrees(s, msg)
			out, err := apps.RunNBody(mpi.NewAnalyticNet(snap), g, b, apps.NBodyConfig{
				Bodies: bodies, Steps: steps, Ranks: cfg.VMs, MsgBytes: msg, Seed: cfg.Seed,
			})
			if err != nil {
				return nil, err
			}
			out.Breakdown.Overhead = e.overheadFor(s)
			res.Totals[key][s] = out.Breakdown.Total()
			res.Breakdowns[key][s] = out.Breakdown
			res.Table.AddRow(key, s.String(), f(out.Breakdown.Computation), f(out.Breakdown.Communication), f(out.Breakdown.Overhead), f(out.Breakdown.Total()))
		}
	}
	return res, nil
}
