package exp

// Streaming extension study: the incremental constant-subspace tracker
// against its batch differential oracle. A calibrated advisor opens a
// streaming session, re-measures a seeded set of pairs from the evolved
// cluster (per-pair time series sampled from instantaneous snapshots),
// lets sustained divergence trigger the regime detector's partial
// re-solve, and pins the warm streaming state to a cold batch IALM solve
// before and after. Purely deterministic — latency/throughput of the
// streaming path itself is cmd/streambench's job; this table is about
// accuracy.

import (
	"fmt"
	"math"
)

// extStreamMaxObserve caps the divergence observations driven at the
// regime detector before the study gives up waiting for a trigger.
const extStreamMaxObserve = 12

// ExtStreaming runs the streaming-vs-batch accuracy study.
func ExtStreaming(cfg Config) (*Table, error) {
	e, err := newEnv(cfg, cfg.VMs, 2600)
	if err != nil {
		return nil, err
	}
	adv := e.advisor
	if err := adv.BeginStreamingCtx(cfg.context()); err != nil {
		return nil, err
	}
	seedLat, seedBw, err := adv.VerifyStreaming()
	if err != nil {
		return nil, err
	}

	// Re-measure a seeded set of pairs: the cluster evolves (background
	// traffic, migrations) between TimeStep instantaneous snapshots, and
	// each re-measured pair's column is its time series across them.
	rows := adv.LastCalibration().Latency.Steps()
	snaps := make([]struct{ lat, bw [][]float64 }, 0, rows)
	for s := 0; s < rows; s++ {
		e.cluster.AdvanceTime(30 * 60)
		perf := e.cluster.SnapshotPerf()
		lat := make([][]float64, cfg.VMs)
		bw := make([][]float64, cfg.VMs)
		for i := 0; i < cfg.VMs; i++ {
			lat[i] = append([]float64(nil), perf.Latency.Row(i)...)
			bw[i] = append([]float64(nil), perf.Bandwth.Row(i)...)
		}
		snaps = append(snaps, struct{ lat, bw [][]float64 }{lat, bw})
	}
	pairs := min(cfg.VMs, 12)
	replaced := 0
	for k := 0; k < pairs; k++ {
		src, dst := e.rng.Intn(cfg.VMs), e.rng.Intn(cfg.VMs)
		if src == dst {
			continue
		}
		lat := make([]float64, rows)
		bw := make([]float64, rows)
		for s := range snaps {
			lat[s] = snaps[s].lat[src][dst]
			bw[s] = snaps[s].bw[src][dst]
		}
		if err := adv.StreamPair(src, dst, lat, bw); err != nil {
			return nil, err
		}
		replaced++
	}

	// Sustained 80% divergence: over the regime threshold, under the hard
	// spike threshold — must resolve via the warm partial path.
	triggered := false
	for i := 0; i < extStreamMaxObserve && !triggered; i++ {
		if triggered, err = adv.Observe(1.0, 1.8); err != nil {
			return nil, err
		}
	}
	postLat, postBw, err := adv.VerifyStreaming()
	if err != nil {
		return nil, err
	}

	tb := NewTable("Ext: streaming decomposition vs batch differential oracle",
		"metric", "latency", "bandwidth")
	tb.AddRow("seed trace: rel ‖D_stream−D_batch‖F",
		fmtRel(seedLat.RelFroD), fmtRel(seedBw.RelFroD))
	tb.AddRow("seed trace: constant row rel diff",
		fmtRel(seedLat.ConstantRel), fmtRel(seedBw.ConstantRel))
	tb.AddRow("after partial re-solve: rel ‖D_stream−D_batch‖F",
		fmtRel(postLat.RelFroD), fmtRel(postBw.RelFroD))
	tb.AddRow("after partial re-solve: constant row rel diff",
		fmtRel(postLat.ConstantRel), fmtRel(postBw.ConstantRel))
	tb.AddRow("warm/batch iterations",
		fmt.Sprintf("%d/%d", postLat.StreamIters, postLat.BatchIters),
		fmt.Sprintf("%d/%d", postBw.StreamIters, postBw.BatchIters))
	tb.AddNote("%d pair columns re-measured from the evolved cluster; regime trigger=%v, partial re-solves=%d, full calibrations=%d, Norm(N_E)=%.4f",
		replaced, triggered, adv.PartialResolves(), adv.Calibrations(), adv.NormE())
	worst := math.Max(math.Max(postLat.RelFroD, postBw.RelFroD),
		math.Max(postLat.ConstantRel, postBw.ConstantRel))
	if math.IsNaN(worst) {
		return nil, fmt.Errorf("exp: NaN streaming-vs-batch disagreement")
	}
	tb.AddNote("worst post-resolve disagreement %.2e (acceptance bound 1e-10)", worst)
	return tb, nil
}

// fmtRel renders a relative-error cell.
func fmtRel(v float64) string { return fmt.Sprintf("%.2e", v) }
