//go:build race

package exp

// raceEnabled relaxes wall-clock assertions: race instrumentation slows
// compute-bound code 10-20x, which says nothing about the paper's claims.
const raceEnabled = true
