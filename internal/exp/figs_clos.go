package exp

// ext-clos: scaling the simulated evaluation past the paper. The paper's
// ns-2 study stops at a 1024-machine two-level tree (§V-A); this
// extension rebuilds the §V-E measurement pipeline on multi-stage Clos
// fabrics with ECMP routing, where the incremental max-min allocator's
// component sharding actually matters: background flows spread across
// the fabric shatter the flow↔link sharing graph into many independent
// components. Each sweep point reports the fabric shape, how much of the
// routed pair set is genuinely multi-path, the component structure of a
// whole-network refill, the agreement between the progressive-filling
// and bottleneck-structure backends, and Norm(N_E) from a calibrated
// decomposition — evidence the paper's "constant from change" finding
// survives on modern fabrics two orders of magnitude larger.

import (
	"math/rand"

	"netconstant/internal/cloud"
	"netconstant/internal/topo"
)

// ExtClosResult reports the Clos-fabric scaling study.
type ExtClosResult struct {
	Table *Table
	// Points holds one entry per swept fabric size.
	Points []ExtClosPoint
}

// ExtClosPoint is one swept fabric size (exported fields: the sweep
// checkpoints gob-encode it).
type ExtClosPoint struct {
	Machines   int
	Nodes      int
	Links      int
	BgSources  int
	PairsTotal int
	PairsMulti int
	Components int
	Flows      int
	Agreement  float64 // max relative max-min vs bottleneck-structure rate diff
	NormE      float64
}

// extClosScales picks the swept fabric sizes: modest in quick mode so CI
// and tests stay fast, beyond the paper's 1024 machines in full mode.
// The 32k/131k points live in cmd/simbench, not here — a figure sweep
// re-runs per point and would pay the large-fabric build repeatedly.
func extClosScales(cfg Config) []int {
	if cfg.Runs >= 100 {
		return []int{1024, 4096, 16384}
	}
	return []int{64, 256}
}

// ExtClos runs the Clos scaling study.
func ExtClos(cfg Config) (*ExtClosResult, error) {
	scales := extClosScales(cfg)
	pts := make([]ExtClosPoint, len(scales))
	if err := sweepPoints(cfg, "ext-clos", pts, func(i int, _ *rand.Rand) error {
		machines := scales[i]
		shape := topo.ClosShape(machines)
		fabric := topo.NewClos(shape)
		vms := cfg.SimVMs
		if vms > machines {
			vms = machines
		}
		bgSources := machines / 16
		if bgSources < 2 {
			bgSources = 2
		}
		sc := cloud.NewSimCluster(cloud.SimClusterConfig{
			Topo:     fabric,
			VMs:      vms,
			Seed:     cfg.Seed + 1500 + int64(machines),
			BgLinks:  bgSources,
			BgBytes:  32 << 20,
			BgLambda: 1,
			// The §V-E probe size; large fabrics still calibrate only the
			// VM pairs, so the point cost is dominated by background churn.
			ProbeBulk: 1 << 20,
		})
		defer sc.StopBackground()
		// Let the background reach steady state before measuring.
		sc.AdvanceTime(2)
		comps, flows := sc.Sim.RefillAll()
		total, multi := sc.Sim.ECMPPairs()
		agree := sc.Sim.AllocatorAgreement()
		ne, err := simNormE(cfg, sc)
		if err != nil {
			return err
		}
		pts[i] = ExtClosPoint{
			Machines:   machines,
			Nodes:      fabric.NumNodes(),
			Links:      fabric.NumLinks(),
			BgSources:  bgSources,
			PairsTotal: total,
			PairsMulti: multi,
			Components: comps,
			Flows:      flows,
			Agreement:  agree,
			NormE:      ne,
		}
		return nil
	}); err != nil {
		return nil, err
	}
	res := &ExtClosResult{
		Table: NewTable("ext-clos: §V-E pipeline on ECMP Clos fabrics beyond the paper's 1024 machines",
			"machines", "nodes", "links", "ECMP pairs", "multipath", "refill comps", "flows", "maxmin vs BS", "Norm(N_E)"),
		Points: pts,
	}
	for _, p := range pts {
		res.Table.AddRow(itoa(p.Machines), itoa(p.Nodes), itoa(p.Links),
			itoa(p.PairsTotal), itoa(p.PairsMulti), itoa(p.Components), itoa(p.Flows),
			f(p.Agreement), f(p.NormE))
	}
	res.Table.AddNote("multi-stage Clos via topo.ClosShape, deterministic ECMP routing, component-sharded max-min fill")
	return res, nil
}
