package exp

// Figure is a runnable entry of the experiment registry: one figure (or
// extension study) of the paper's evaluation, producing one or more
// tables.
type Figure struct {
	Name string
	Desc string
	Run  func(cfg Config) ([]*Table, error)
}

// Figures returns the full experiment registry in presentation order. The
// drivers (cmd/expdriver, cmd/simbench) iterate this list rather than
// hard-coding their own.
func Figures() []Figure {
	return []Figure{
		{"fig4", "calibration overhead vs #instances", func(cfg Config) ([]*Table, error) {
			r, err := Fig4Calibration(cfg, nil)
			if err != nil {
				return nil, err
			}
			return []*Table{r.Table}, nil
		}},
		{"fig5", "long-term accuracy vs time step", func(cfg Config) ([]*Table, error) {
			r, err := Fig5TimeStep(cfg, nil)
			if err != nil {
				return nil, err
			}
			return []*Table{r.Table}, nil
		}},
		{"fig6", "maintenance threshold sweep", func(cfg Config) ([]*Table, error) {
			days := 2.0
			if cfg.Runs >= 100 {
				days = 7
			}
			r, err := Fig6Threshold(cfg, nil, days)
			if err != nil {
				return nil, err
			}
			return []*Table{r.Table}, nil
		}},
		{"fig7", "overall EC2-style comparison + broadcast CDF", func(cfg Config) ([]*Table, error) {
			r, err := Fig7Overall(cfg)
			if err != nil {
				return nil, err
			}
			return []*Table{r.Table, r.CDFTable}, nil
		}},
		{"fig8", "improvement vs cluster size", func(cfg Config) ([]*Table, error) {
			r, err := Fig8ClusterSize(cfg)
			if err != nil {
				return nil, err
			}
			return []*Table{r.Table}, nil
		}},
		{"fig9a", "CG vs vector size", func(cfg Config) ([]*Table, error) {
			sizes := []int{1000, 4000, 16000, 64000}
			if cfg.Runs >= 100 {
				sizes = []int{1000, 16000, 64000, 256000, 1024000}
			}
			r, err := Fig9aCG(cfg, sizes)
			if err != nil {
				return nil, err
			}
			return []*Table{r.Table}, nil
		}},
		{"fig9b", "N-body vs #Step", func(cfg Config) ([]*Table, error) {
			steps := []int{10, 40, 160, 640}
			bodies := 128
			if cfg.Runs >= 100 {
				steps = []int{10, 40, 160, 640, 2560}
				bodies = 256
			}
			r, err := Fig9bNBodySteps(cfg, steps, bodies)
			if err != nil {
				return nil, err
			}
			return []*Table{r.Table}, nil
		}},
		{"fig9c", "N-body vs message size", func(cfg Config) ([]*Table, error) {
			r, err := Fig9cNBodyMsg(cfg, nil, 0, 0)
			if err != nil {
				return nil, err
			}
			return []*Table{r.Table}, nil
		}},
		{"fig10", "impact of Norm(N_E)", func(cfg Config) ([]*Table, error) {
			r, err := Fig10ErrorImpact(cfg, nil)
			if err != nil {
				return nil, err
			}
			return []*Table{r.TableA, r.TableB}, nil
		}},
		{"fig11", "detailed study at Norm(N_E)=0.2", func(cfg Config) ([]*Table, error) {
			r, err := Fig11Detailed(cfg)
			if err != nil {
				return nil, err
			}
			return []*Table{r.Table, r.CDFTable}, nil
		}},
		{"fig12", "background traffic vs Norm(N_E)", func(cfg Config) ([]*Table, error) {
			r, err := Fig12Background(cfg, nil, nil)
			if err != nil {
				return nil, err
			}
			return []*Table{r.TableA, r.TableB}, nil
		}},
		{"fig13", "simulated-cluster comparison + CDF", func(cfg Config) ([]*Table, error) {
			r, err := Fig13Simulation(cfg, 0, 0)
			if err != nil {
				return nil, err
			}
			return []*Table{r.Table, r.CDFTable}, nil
		}},
		{"ext-econ", "economics of the optimization (paper future work)", func(cfg Config) ([]*Table, error) {
			r, err := ExtEconomics(cfg)
			if err != nil {
				return nil, err
			}
			return []*Table{r.Table}, nil
		}},
		{"ext-collectives", "all-to-all implementation comparison", func(cfg Config) ([]*Table, error) {
			r, err := ExtCollectives(cfg)
			if err != nil {
				return nil, err
			}
			return []*Table{r.Table}, nil
		}},
		{"ext-coords", "why network coordinates fail (quantified §IV-B)", func(cfg Config) ([]*Table, error) {
			r, err := ExtCoordinates(cfg)
			if err != nil {
				return nil, err
			}
			return []*Table{r.Table}, nil
		}},
		{"ext-stream", "streaming decomposition vs batch oracle", func(cfg Config) ([]*Table, error) {
			t, err := ExtStreaming(cfg)
			if err != nil {
				return nil, err
			}
			return []*Table{t}, nil
		}},
		{"ext-solvers", "APG vs IALM agreement", func(cfg Config) ([]*Table, error) {
			t, err := ExtSolverAgreement(cfg)
			if err != nil {
				return nil, err
			}
			return []*Table{t}, nil
		}},
		{"ext-workflow", "scientific workflow scheduling (paper future work)", func(cfg Config) ([]*Table, error) {
			r, err := ExtWorkflow(cfg)
			if err != nil {
				return nil, err
			}
			return []*Table{r.Table}, nil
		}},
		{"ext-clos", "§V-E pipeline on ECMP Clos fabrics past 1024 machines", func(cfg Config) ([]*Table, error) {
			r, err := ExtClos(cfg)
			if err != nil {
				return nil, err
			}
			return []*Table{r.Table}, nil
		}},
		{"ext-resilience", "graceful degradation under injected faults", func(cfg Config) ([]*Table, error) {
			r, err := ExtResilience(cfg)
			if err != nil {
				return nil, err
			}
			return []*Table{r.Table}, nil
		}},
		{"accuracy", "trace-replay estimation accuracy (§V-D3)", func(cfg Config) ([]*Table, error) {
			r, err := AccuracyStudy(cfg)
			if err != nil {
				return nil, err
			}
			return []*Table{r.Table}, nil
		}},
	}
}
