package exp

import (
	"fmt"
	"math/rand"
	"time"

	"netconstant/internal/cloud"
	"netconstant/internal/core"
	"netconstant/internal/mapping"
	"netconstant/internal/mat"
	"netconstant/internal/mpi"
	"netconstant/internal/netmodel"
	"netconstant/internal/rpca"
	"netconstant/internal/stats"
)

// Fig4Result reports calibration overhead versus cluster size.
type Fig4Result struct {
	Table *Table
	// CostSeconds maps cluster size to estimated paired-calibration cost.
	CostSeconds map[int]float64
	// RPCASeconds is the measured wall-clock time of one RPCA analysis at
	// the largest size (paper: < 1 minute at 196 instances).
	RPCASeconds float64
}

// Fig4Calibration regenerates Figure 4: the overhead of calibrating one
// temporal performance matrix for different numbers of instances, plus the
// §V-B claim that one RPCA run costs well under a minute.
func Fig4Calibration(cfg Config, sizes []int) (*Fig4Result, error) {
	if len(sizes) == 0 {
		sizes = []int{16, 32, 64, 128, 196}
	}
	// EC2-medium-like reference link for the analytic curve (the paper's
	// pingpong bandwidth regime).
	typical := netmodel.Link{Alpha: 300e-6, Beta: 100e6}
	res := &Fig4Result{
		Table:       NewTable("Fig 4: calibration overhead vs #instances (time step = 10)", "instances", "est. cost (min)", "measured (min)"),
		CostSeconds: map[int]float64{},
	}
	// Each size is an independent sweep point: its own provisioned
	// cluster, no shared state. Fields are exported so completed points
	// gob-journal into the crash checkpoint.
	type fig4Point struct {
		Est      float64
		Measured string
	}
	pts := make([]fig4Point, len(sizes))
	if err := sweepPoints(cfg, "fig4", pts, func(i int, _ *rand.Rand) error {
		n := sizes[i]
		// The figure covers one whole TP-matrix: time-step (10) calibration
		// passes.
		pts[i].Est = float64(cfg.TimeStep) * cloud.EstimateCalibrationCost(n, typical, cloud.CalibrationConfig{})
		if n <= cfg.VMs*2 { // actually run the small sizes
			e, err := newEnv(cfg, n, int64(n))
			if err == nil {
				cal := cloud.CalibrateTP(e.cluster, e.rng, cfg.TimeStep, 0, cloud.CalibrationConfig{})
				pts[i].Measured = f(cal.TotalCost / 60)
			}
		}
		return nil
	}); err != nil {
		return nil, err
	}
	for i, n := range sizes {
		res.CostSeconds[n] = pts[i].Est
		res.Table.AddRow(fmt.Sprint(n), f(pts[i].Est/60), pts[i].Measured)
	}

	// Measure the RPCA analysis cost at the largest requested size. The
	// wall clock is injected (Config.Clock): this figure is *about* real
	// time, but reading time.Now here would hand every run a different
	// table and break the byte-identical-output invariant for everyone
	// who doesn't opt in.
	nMax := sizes[len(sizes)-1]
	rng := stats.NewRNG(cfg.Seed)
	a := mat.RandomNormal(rng, cfg.TimeStep, nMax*nMax, 50e6, 5e6)
	var start time.Time
	if cfg.Clock != nil {
		start = cfg.Clock()
	}
	if _, err := rpca.Decompose(a, rpca.Options{}); err != nil {
		return nil, err
	}
	if cfg.Clock != nil {
		res.RPCASeconds = cfg.Clock().Sub(start).Seconds()
		res.Table.AddNote("one RPCA analysis at %d instances took %.2f s wall clock (paper: < 1 min)", nMax, res.RPCASeconds)
	} else {
		res.Table.AddNote("one RPCA analysis at %d instances ran to convergence; wall-clock timing skipped (no Config.Clock injected)", nMax)
	}
	return res, nil
}

// Fig5Result reports the time-step accuracy sweep.
type Fig5Result struct {
	Table *Table
	// RelDiff maps time step to the relative difference of the predicted
	// long-term performance against the whole-trace oracle.
	RelDiff map[int]float64
}

// Fig5TimeStep regenerates Figure 5: the relative difference of long-term
// performance for different time steps; the paper selects the largest
// step within 10% (step = 10).
func Fig5TimeStep(cfg Config, steps []int) (*Fig5Result, error) {
	if len(steps) == 0 {
		steps = []int{2, 3, 5, 8, 10, 15, 20, 30}
	}
	maxStep := steps[0]
	for _, s := range steps {
		if s > maxStep {
			maxStep = s
		}
	}
	e, err := newEnv(cfg, cfg.VMs, 500)
	if err != nil {
		return nil, err
	}
	tc := cloud.SnapshotTP(e.cluster, maxStep, 30*60)
	rel, err := core.TimeStepAccuracy(tc.Bandwidth, steps, rpca.Options{}, rpca.ExtractMean)
	if err != nil {
		return nil, err
	}
	res := &Fig5Result{Table: NewTable("Fig 5: relative difference of long-term performance vs time step", "time step", "relative difference"), RelDiff: rel}
	for _, s := range steps {
		res.Table.AddRow(fmt.Sprint(s), pct(rel[s]))
	}
	res.Table.AddNote("paper selects the largest step within 10%%: step = 10")
	return res, nil
}

// Fig6Result reports the maintenance-threshold sweep.
type Fig6Result struct {
	Table *Table
	// AvgBcast and MaintenancePerRun are indexed by threshold.
	AvgBcast          map[float64]float64
	MaintenancePerRun map[float64]float64
	Recalibrations    map[float64]int
}

// Fig6Threshold regenerates Figure 6: broadcast performance and the
// breakdown of communication time versus update-maintenance overhead for
// different thresholds, over a multi-day run with one operation every 30
// minutes (the paper's week-long methodology).
func Fig6Threshold(cfg Config, thresholds []float64, days float64) (*Fig6Result, error) {
	if len(thresholds) == 0 {
		thresholds = []float64{0.1, 0.2, 0.5, 1.0, 1.5, 2.0}
	}
	if days <= 0 {
		days = 2
	}
	runs := int(days * 48) // one run every 30 minutes
	res := &Fig6Result{
		Table:             NewTable("Fig 6: maintenance threshold sweep (broadcast, 8 MB)", "threshold", "avg Bcast (s)", "maintenance/run (s)", "avg response (s)", "recalibrations"),
		AvgBcast:          map[float64]float64{},
		MaintenancePerRun: map[float64]float64{},
		Recalibrations:    map[float64]int{},
	}
	// Each threshold replays the same cluster dynamics (same seed offset)
	// under a different maintenance policy — fully independent points. The
	// identically-seeded initial calibrations are where the calibration
	// memo collapses the sweep's measurement cost to a single computation.
	type fig6Point struct {
		Avg, Maintenance float64
		Recals           int
	}
	pts := make([]fig6Point, len(thresholds))
	err := sweepPoints(cfg, "fig6", pts, func(i int, _ *rand.Rand) error {
		th := thresholds[i]
		e, err := newEnvAdv(cfg, cfg.VMs, 600, cloud.ProviderConfig{},
			core.AdvisorConfig{TimeStep: cfg.TimeStep, Threshold: th})
		if err != nil {
			return err
		}
		initialCost := e.advisor.CalibrationCost()
		var bcastSum float64
		root := 0
		for r := 0; r < runs; r++ {
			e.cluster.AdvanceTime(30 * 60)
			snap := e.cluster.SnapshotPerf()
			tree := e.advisor.PlanTree(core.RPCA, root, cfg.MsgBytes, nil, nil)
			expected := e.advisor.ExpectedTime(tree, mpi.Broadcast, cfg.MsgBytes)
			actual := mpi.RunCollective(mpi.NewAnalyticNet(snap), tree, mpi.Broadcast, cfg.MsgBytes)
			bcastSum += actual
			if _, err := e.advisor.Observe(expected, actual); err != nil {
				return err
			}
		}
		pts[i] = fig6Point{
			Avg:         bcastSum / float64(runs),
			Maintenance: (e.advisor.CalibrationCost() - initialCost) / float64(runs),
			Recals:      e.advisor.Recalibrations(),
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for i, th := range thresholds {
		res.AvgBcast[th] = pts[i].Avg
		res.MaintenancePerRun[th] = pts[i].Maintenance
		res.Recalibrations[th] = pts[i].Recals
		res.Table.AddRow(pct(th), f(pts[i].Avg), f(pts[i].Maintenance), f(pts[i].Avg+pts[i].Maintenance), fmt.Sprint(pts[i].Recals))
	}
	res.Table.AddNote("%d runs over %.1f days, one broadcast every 30 min", runs, days)
	return res, nil
}

// Fig7Result reports the headline EC2-style comparison.
type Fig7Result struct {
	Table    *Table
	CDFTable *Table
	// Normalized maps strategy -> app -> mean elapsed normalized to
	// Baseline (lower is better).
	Normalized map[core.Strategy]map[string]float64
	NormE      float64
	// BcastTimes holds the raw broadcast samples per strategy for CDFs.
	BcastTimes map[core.Strategy][]float64
}

// Fig7Overall regenerates Figure 7: the average performance of broadcast,
// scatter and topology mapping under Baseline/Heuristics/RPCA, normalized
// to Baseline, plus the broadcast CDF. The paper reports RPCA beating
// Baseline by 32–40% and Heuristics by 8–10% with Norm(N_E) ≈ 0.1.
func Fig7Overall(cfg Config) (*Fig7Result, error) {
	e, err := newEnv(cfg, cfg.VMs, 700)
	if err != nil {
		return nil, err
	}
	apps := []string{"broadcast", "scatter", "mapping"}
	sums := map[core.Strategy]map[string]float64{}
	bcast := map[core.Strategy][]float64{}
	for _, s := range strategiesEC2 {
		sums[s] = map[string]float64{}
	}
	// Phase 1 (sequential): evolve the cluster and draw each repetition's
	// inputs in the original order, so every snapshot and rng draw is
	// unchanged. Phase 2 (parallel): evaluate the strategies against the
	// recorded inputs — pure given a snapshot. Aggregation in repetition
	// order keeps sums byte-identical to the sequential nested loop.
	type fig7Input struct {
		snap *netmodel.PerfMatrix
		root int
		task *mapping.Graph
	}
	inputs := make([]fig7Input, cfg.Runs)
	for r := 0; r < cfg.Runs; r++ {
		e.cluster.AdvanceTime(30 * 60)
		snap := e.cluster.SnapshotPerf()
		root := e.rng.Intn(cfg.VMs) // paper: root randomly chosen
		task := mapping.RandomTaskGraph(e.rng, cfg.VMs, 0.1, 5<<20, 10<<20)
		inputs[r] = fig7Input{snap: snap, root: root, task: task}
	}
	type fig7Eval struct{ B, Sc, M float64 }
	evals := make([][]fig7Eval, cfg.Runs)
	if err := sweepPoints(cfg, "fig7", evals, func(r int, _ *rand.Rand) error {
		in := inputs[r]
		ev := make([]fig7Eval, len(strategiesEC2))
		for si, s := range strategiesEC2 {
			ev[si] = fig7Eval{
				B:  e.collectiveElapsed(s, mpi.Broadcast, in.root, in.snap),
				Sc: e.collectiveElapsed(s, mpi.Scatter, in.root, in.snap),
				M:  e.mappingElapsed(s, in.task, in.snap),
			}
		}
		evals[r] = ev
		return nil
	}); err != nil {
		return nil, err
	}
	for r := 0; r < cfg.Runs; r++ {
		for si, s := range strategiesEC2 {
			sums[s]["broadcast"] += evals[r][si].B
			bcast[s] = append(bcast[s], evals[r][si].B)
			sums[s]["scatter"] += evals[r][si].Sc
			sums[s]["mapping"] += evals[r][si].M
		}
	}
	res := &Fig7Result{
		Table:      NewTable("Fig 7a: mean elapsed normalized to Baseline (196-instance analogue)", "strategy", "broadcast", "scatter", "mapping"),
		Normalized: map[core.Strategy]map[string]float64{},
		NormE:      e.advisor.NormE(),
		BcastTimes: bcast,
	}
	for _, s := range strategiesEC2 {
		res.Normalized[s] = map[string]float64{}
		row := []string{s.String()}
		for _, app := range apps {
			norm := sums[s][app] / sums[core.Baseline][app]
			res.Normalized[s][app] = norm
			row = append(row, f(norm))
		}
		res.Table.AddRow(row...)
	}
	res.Table.AddNote("Norm(N_E) = %.3f (paper: ~0.1 on EC2)", res.NormE)

	res.CDFTable = NewTable("Fig 7b: broadcast elapsed-time CDF (seconds)", "percentile", "Baseline", "Heuristics", "RPCA")
	cdfs := map[core.Strategy]*stats.CDF{}
	for _, s := range strategiesEC2 {
		cdfs[s] = stats.NewCDF(bcast[s])
	}
	for _, q := range []float64{0.1, 0.25, 0.5, 0.75, 0.9, 1.0} {
		res.CDFTable.AddRow(pct(q), f(cdfs[core.Baseline].Quantile(q)), f(cdfs[core.Heuristics].Quantile(q)), f(cdfs[core.RPCA].Quantile(q)))
	}
	return res, nil
}

// Fig8Result reports improvement versus cluster size and message size.
type Fig8Result struct {
	Table *Table
	// Improvement maps cluster size -> app -> fractional improvement of
	// RPCA over Baseline.
	Improvement map[int]map[string]float64
}

// Fig8ClusterSize regenerates Figure 8: the RPCA-over-Baseline improvement
// for different numbers of instances; the paper finds larger clusters
// (spread over more racks) gain more.
func Fig8ClusterSize(cfg Config) (*Fig8Result, error) {
	res := &Fig8Result{
		Table:       NewTable("Fig 8: RPCA improvement over Baseline vs cluster size", "instances", "broadcast", "scatter", "mapping", "rack spread"),
		Improvement: map[int]map[string]float64{},
	}
	// Each cluster size is an independent world — its own provider,
	// cluster and advisor — so the sizes run as parallel sweep points.
	sizes := []int{cfg.SmallVMs, cfg.VMs}
	// Journaled per point (journalsafe): named fields, not a map, so the
	// gob bytes of a point are reproducible run to run.
	type fig8Point struct {
		Broadcast, Scatter, Mapping float64
		Spread                      int
	}
	pts := make([]fig8Point, len(sizes))
	err := sweepPoints(cfg, "fig8", pts, func(i int, _ *rand.Rand) error {
		n := sizes[i]
		sub := cfg
		sub.VMs = n
		e, err := newEnv(sub, n, 800+int64(n))
		if err != nil {
			return err
		}
		sums := map[core.Strategy]map[string]float64{
			core.Baseline: {}, core.RPCA: {},
		}
		for r := 0; r < cfg.Runs; r++ {
			e.cluster.AdvanceTime(30 * 60)
			snap := e.cluster.SnapshotPerf()
			root := e.rng.Intn(n)
			task := mapping.RandomTaskGraph(e.rng, n, 0.1, 5<<20, 10<<20)
			for s := range sums {
				sums[s]["broadcast"] += e.collectiveElapsed(s, mpi.Broadcast, root, snap)
				sums[s]["scatter"] += e.collectiveElapsed(s, mpi.Scatter, root, snap)
				sums[s]["mapping"] += e.mappingElapsed(s, task, snap)
			}
		}
		imp := func(app string) float64 {
			return stats.RelImprovement(sums[core.Baseline][app], sums[core.RPCA][app])
		}
		pts[i] = fig8Point{
			Broadcast: imp("broadcast"),
			Scatter:   imp("scatter"),
			Mapping:   imp("mapping"),
			Spread:    e.cluster.RackSpread(),
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for i, n := range sizes {
		res.Improvement[n] = map[string]float64{
			"broadcast": pts[i].Broadcast, "scatter": pts[i].Scatter, "mapping": pts[i].Mapping,
		}
		res.Table.AddRow(fmt.Sprint(n), pct(pts[i].Broadcast), pct(pts[i].Scatter), pct(pts[i].Mapping), fmt.Sprint(pts[i].Spread))
	}
	return res, nil
}
