package exp

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync/atomic"
	"testing"
)

// TestPointSeedStable pins the seeding scheme: seeds are pure functions
// of (figure, base, index), distinct across figures and indices, and
// never negative (rand.NewSource takes any int64, but keeping them
// positive makes them printable/debuggable).
func TestPointSeedStable(t *testing.T) {
	a := PointSeed("fig7", 1, 0)
	if PointSeed("fig7", 1, 0) != a {
		t.Fatal("PointSeed not deterministic")
	}
	seen := map[int64]string{}
	for _, fig := range []string{"fig4", "fig7", "fig12a"} {
		for base := int64(1); base <= 3; base++ {
			for i := 0; i < 50; i++ {
				s := PointSeed(fig, base, i)
				if s < 0 {
					t.Fatalf("negative seed for (%s,%d,%d)", fig, base, i)
				}
				key := fmt.Sprintf("%s/%d/%d", fig, base, i)
				if prev, ok := seen[s]; ok {
					t.Fatalf("seed collision: %s and %s", prev, key)
				}
				seen[s] = key
			}
		}
	}
}

// TestRunPointsLowestIndexError verifies the error contract: every point
// runs even after a failure, and the reported error is the lowest-index
// one regardless of scheduling.
func TestRunPointsLowestIndexError(t *testing.T) {
	for _, workers := range []int{1, 4} {
		var ran atomic.Int64
		errLow := errors.New("low")
		errHigh := errors.New("high")
		err := runPoints(Config{Seed: 1, Workers: workers}, "t", 16, nil, nil, func(i int, _ *rand.Rand) error {
			ran.Add(1)
			switch i {
			case 3:
				return errLow
			case 11:
				return errHigh
			}
			return nil
		})
		if !errors.Is(err, errLow) {
			t.Fatalf("workers=%d: got %v, want lowest-index error", workers, err)
		}
		if ran.Load() != 16 {
			t.Fatalf("workers=%d: ran %d of 16 points", workers, ran.Load())
		}
	}
}

// stripWallClock drops note lines reporting measured wall-clock time.
func stripWallClock(s string) string {
	var out []string
	for _, line := range strings.Split(s, "\n") {
		if !strings.Contains(line, "wall clock") {
			out = append(out, line)
		}
	}
	return strings.Join(out, "\n")
}

// figuresForDeterminism runs one figure from each port pattern and
// renders its tables.
func figuresForDeterminism(t *testing.T, cfg Config) string {
	t.Helper()
	var out string
	// Independent per-point environments. (Fig 4's table carries a
	// wall-clock timing note — the one legitimately nondeterministic line —
	// which is stripped before comparison.)
	r4, err := Fig4Calibration(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	out += stripWallClock(r4.Table.String())
	// Two-phase: sequential stateful inputs, parallel pure evaluation.
	r7, err := Fig7Overall(cfg)
	if err != nil {
		t.Fatal(err)
	}
	out += r7.Table.String()
	// Independent simulated clusters per point.
	r12, err := Fig12Background(cfg, []float64{1, 10}, []float64{10 << 20, 100 << 20})
	if err != nil {
		t.Fatal(err)
	}
	out += r12.TableA.String() + r12.TableB.String()
	// Pre-derived Split streams feeding parallel noising + replay.
	r11, err := Fig11Detailed(cfg)
	if err != nil {
		t.Fatal(err)
	}
	out += r11.Table.String() + r11.CDFTable.String()
	return out
}

// TestWorkerCountInvariance is the PR's determinism acceptance test: the
// rendered tables must be byte-identical with 1 worker and with 4.
func TestWorkerCountInvariance(t *testing.T) {
	cfg1 := Quick()
	cfg1.Workers = 1
	cfg4 := Quick()
	cfg4.Workers = 4
	serial := figuresForDeterminism(t, cfg1)
	parallel := figuresForDeterminism(t, cfg4)
	if serial != parallel {
		t.Fatalf("tables differ between -workers 1 and -workers 4:\n--- workers=1 ---\n%s\n--- workers=4 ---\n%s", serial, parallel)
	}
}
