package exp

import (
	"encoding/json"
	"fmt"
	"math"
	"testing"
)

func TestExtEconomicsShape(t *testing.T) {
	cfg := quick()
	res, err := ExtEconomics(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// RPCA broadcast saves money per run, so break-even is finite, and with
	// enough runs the net is positive under per-second billing.
	if math.IsInf(res.BreakEvenRuns, 1) {
		t.Fatal("optimization should save money per run")
	}
	if res.BreakEvenRuns <= 0 {
		t.Errorf("break-even %v should be positive (calibration costs money)", res.BreakEvenRuns)
	}
	if len(res.Table.Rows) != 2 {
		t.Error("two billing rows expected")
	}
}

func TestExtCollectivesShape(t *testing.T) {
	cfg := quick()
	res, err := ExtCollectives(cfg)
	if err != nil {
		t.Fatal(err)
	}
	gb := res.Elapsed["gather+broadcast (paper)"]
	pw := res.Elapsed["pairwise exchange"]
	if gb <= 0 || pw <= 0 {
		t.Fatal("elapsed times missing")
	}
	// Pairwise exchange parallelizes across ranks; the rooted
	// gather+broadcast funnels everything through one node and should be
	// slower for the same volume.
	if pw >= gb {
		t.Errorf("pairwise %v expected to beat gather+broadcast %v", pw, gb)
	}
}

func TestExtCoordinatesShape(t *testing.T) {
	cfg := quick()
	res, err := ExtCoordinates(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The cluster's transfer-time matrix must violate the triangle
	// inequality (that is the paper's argument).
	if res.TriangleViolationRate < 0.01 {
		t.Errorf("triangle violation rate %.4f too small", res.TriangleViolationRate)
	}
	// And the coordinate embedding must be clearly worse than the RPCA
	// constant at predicting pair-wise performance.
	if res.VivaldiMedianErr <= res.RPCAMedianErr {
		t.Errorf("Vivaldi (%.3f) should be worse than RPCA (%.3f)",
			res.VivaldiMedianErr, res.RPCAMedianErr)
	}
	if res.RPCAMedianErr > 0.10 {
		t.Errorf("RPCA constant median error %.3f unexpectedly large", res.RPCAMedianErr)
	}
}

func TestExtSolverAgreement(t *testing.T) {
	cfg := quick()
	cfg.VMs = 8
	tb, err := ExtSolverAgreement(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 3 || len(tb.Notes) != 1 {
		t.Errorf("table shape: %d rows %d notes", len(tb.Rows), len(tb.Notes))
	}
}

func TestExtWorkflowShape(t *testing.T) {
	cfg := quick()
	res, err := ExtWorkflow(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rpca := res.Normalized["HEFT + RPCA"]
	blind := res.Normalized["HEFT (blind)"]
	if rpca >= 1 {
		t.Errorf("RPCA-guided HEFT %v should beat round-robin", rpca)
	}
	if rpca > blind+0.02 {
		t.Errorf("RPCA-guided HEFT (%v) should not lose to blind HEFT (%v)", rpca, blind)
	}
	if res.Normalized["round-robin"] != 1 {
		t.Error("normalization")
	}
}

func TestAccuracyStudyShape(t *testing.T) {
	cfg := quick()
	cfg.SimVMs = 10
	cfg.Runs = 10
	cfg.TimeStep = 5
	res, err := AccuracyStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	base := res.MeanRelDiff["Baseline"]
	rpca := res.MeanRelDiff["RPCA"]
	if base <= 0 || rpca <= 0 {
		t.Fatal("relative differences missing")
	}
	// The α-β estimator must track live execution within tens of percent.
	if base > 0.6 || rpca > 0.6 {
		t.Errorf("estimation error too large: base %.3f rpca %.3f", base, rpca)
	}
	// The paper finds RPCA's schedules easier to predict than Baseline's;
	// allow a tolerance band rather than a strict inequality.
	if rpca > base+0.10 {
		t.Errorf("RPCA estimation error %.3f should not exceed baseline %.3f by much", rpca, base)
	}
}

func TestTableJSON(t *testing.T) {
	tb := NewTable("x", "a", "b")
	tb.AddRow("1", "2")
	tb.AddNote("n")
	data, err := tb.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var back struct {
		Title  string     `json:"title"`
		Header []string   `json:"header"`
		Rows   [][]string `json:"rows"`
		Notes  []string   `json:"notes"`
	}
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Title != "x" || len(back.Rows) != 1 || back.Rows[0][1] != "2" || back.Notes[0] != "n" {
		t.Errorf("round trip: %+v", back)
	}
}

func TestExtStreamingShape(t *testing.T) {
	cfg := quick()
	cfg.VMs = 8
	tb, err := ExtStreaming(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 5 || len(tb.Notes) != 2 {
		t.Fatalf("table shape: %d rows %d notes", len(tb.Rows), len(tb.Notes))
	}
	// The differential oracle's acceptance bound, stated in the second note.
	for _, row := range tb.Rows[:4] {
		for _, cell := range row[1:] {
			var v float64
			if _, err := fmt.Sscanf(cell, "%e", &v); err != nil {
				t.Fatalf("cell %q: %v", cell, err)
			}
			if v > 1e-10 {
				t.Errorf("streaming-vs-batch disagreement %s in %v", cell, row)
			}
		}
	}
}

func TestExtClosShape(t *testing.T) {
	cfg := quick()
	res, err := ExtClos(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 2 {
		t.Fatalf("quick sweep has %d points", len(res.Points))
	}
	for _, p := range res.Points {
		if p.Machines < 64 || p.Nodes <= p.Machines || p.Links < p.Machines {
			t.Errorf("fabric shape implausible: %+v", p)
		}
		// Clos cross-leaf pairs dominate, so ECMP must have resolved some
		// pairs over multiple equal-cost paths.
		if p.PairsMulti == 0 || p.PairsMulti > p.PairsTotal {
			t.Errorf("multipath pair count %d/%d", p.PairsMulti, p.PairsTotal)
		}
		if p.Components < 1 || p.Flows < p.Components {
			t.Errorf("refill shape: %d components, %d flows", p.Components, p.Flows)
		}
		// The two allocator backends must agree to floating-point noise.
		if p.Agreement > 1e-9 {
			t.Errorf("allocator agreement %g", p.Agreement)
		}
		if !(p.NormE >= 0) {
			t.Errorf("Norm(N_E) = %v", p.NormE)
		}
	}
	if len(res.Table.Rows) != 2 {
		t.Error("table rows")
	}
}
