package exp

import (
	"fmt"
	"math"
	"math/rand"

	"netconstant/internal/cloud"
	"netconstant/internal/core"
	"netconstant/internal/mapping"
	"netconstant/internal/mpi"
	"netconstant/internal/netmodel"
	"netconstant/internal/rpca"
	"netconstant/internal/stats"
	"netconstant/internal/topo"
)

// simClusterFor builds the simulated cluster of the paper's §V-E setup
// with the given background-traffic parameters.
func simClusterFor(cfg Config, bgLambda, bgBytes float64, bgLinks, hotRacks int, seedOffset int64) *cloud.SimCluster {
	return cloud.NewSimCluster(cloud.SimClusterConfig{
		Tree: topo.TreeConfig{
			Racks:          cfg.SimRacks,
			ServersPerRack: cfg.SimServersPerRack,
			// Oversubscribed uplinks (two server-links worth of capacity
			// per rack): a handful of concurrent cross-rack background
			// flows saturates an uplink, producing the persistent
			// congestion pattern that differentiates pair performance in
			// the paper's simulations.
			IntraRackBps: 1e9 / 8,
			InterRackBps: 2e9 / 8,
		},
		VMs:      cfg.SimVMs,
		Seed:     cfg.Seed + seedOffset,
		BgLinks:  bgLinks,
		BgBytes:  bgBytes,
		BgLambda: bgLambda,
		HotRacks: hotRacks,
		// A 1 MB probe keeps simulated calibration affordable while still
		// hitting the bandwidth regime.
		ProbeBulk: 1 << 20,
	})
}

// simNormE calibrates the simulated cluster and measures Norm(N_E).
func simNormE(cfg Config, sc *cloud.SimCluster) (float64, error) {
	tc := cloud.SnapshotTP(sc, cfg.TimeStep, 5)
	d, err := core.DecomposeTP(tc.Bandwidth, rpca.Options{}, rpca.ExtractMean)
	if err != nil {
		return 0, err
	}
	return d.NormE, nil
}

// Fig12Result reports the background-traffic sensitivity study.
type Fig12Result struct {
	TableA *Table // Norm(N_E) vs λ
	TableB *Table // Norm(N_E) vs background message size
	// ByLambda and ByMsg map the swept parameter to the measured Norm(N_E).
	ByLambda map[float64]float64
	ByMsg    map[float64]float64
}

// Fig12Background regenerates Figure 12: the correlation between
// background traffic and Norm(N_E) on the simulated cluster. The paper
// finds N_E shrinking as λ grows (12a) and growing roughly linearly with
// the background message size (12b).
func Fig12Background(cfg Config, lambdas, msgSizes []float64) (*Fig12Result, error) {
	if len(lambdas) == 0 {
		lambdas = []float64{1, 5, 10, 30}
	}
	if len(msgSizes) == 0 {
		msgSizes = []float64{10 << 20, 50 << 20, 100 << 20, 250 << 20}
	}
	bgLinks := cfg.SimVMs
	res := &Fig12Result{
		TableA:   NewTable("Fig 12a: Norm(N_E) vs background λ (100 MB messages)", "λ (s)", "Norm(N_E)"),
		TableB:   NewTable("Fig 12b: Norm(N_E) vs background message size (λ = 5 s)", "msg (MB)", "Norm(N_E)"),
		ByLambda: map[float64]float64{},
		ByMsg:    map[float64]float64{},
	}
	// Every point builds and calibrates its own simulated cluster, so the
	// sweep is embarrassingly parallel.
	neLambda := make([]float64, len(lambdas))
	if err := sweepPoints(cfg, "fig12a", neLambda, func(i int, _ *rand.Rand) error {
		sc := simClusterFor(cfg, lambdas[i], 100<<20, bgLinks, 0, 1200+int64(lambdas[i]))
		ne, err := simNormE(cfg, sc)
		sc.StopBackground()
		neLambda[i] = ne
		return err
	}); err != nil {
		return nil, err
	}
	for i, l := range lambdas {
		res.ByLambda[l] = neLambda[i]
		res.TableA.AddRow(f(l), f(neLambda[i]))
	}
	neMsg := make([]float64, len(msgSizes))
	if err := sweepPoints(cfg, "fig12b", neMsg, func(i int, _ *rand.Rand) error {
		sc := simClusterFor(cfg, 5, msgSizes[i], bgLinks, 0, 1300+int64(msgSizes[i]/(1<<20)))
		ne, err := simNormE(cfg, sc)
		sc.StopBackground()
		neMsg[i] = ne
		return err
	}); err != nil {
		return nil, err
	}
	for i, m := range msgSizes {
		res.ByMsg[m] = neMsg[i]
		res.TableB.AddRow(f(m/(1<<20)), f(neMsg[i]))
	}
	return res, nil
}

// Fig13Result reports the simulated-cluster strategy comparison.
type Fig13Result struct {
	Table      *Table
	CDFTable   *Table
	NormE      float64
	Normalized map[core.Strategy]map[string]float64
}

// Fig13Simulation regenerates Figure 13: broadcast, scatter and topology
// mapping on the simulated cluster with background traffic tuned near
// Norm(N_E)=0.1, comparing Baseline, Topology-aware, Heuristics and RPCA.
// The paper finds Topology-aware ≈ Baseline in the dynamic environment
// and RPCA 25–40% ahead of both.
func Fig13Simulation(cfg Config, bgLambda, bgBytes float64) (*Fig13Result, error) {
	if bgLambda == 0 {
		bgLambda = 1
	}
	if bgBytes == 0 {
		bgBytes = 64 << 20
	}
	// Background confined to half the racks, so their uplinks carry a
	// persistent congestion pattern for the constant component to capture.
	hot := cfg.SimRacks / 2
	if hot < 2 {
		hot = 2
	}
	sc := simClusterFor(cfg, bgLambda, bgBytes, 2*cfg.SimVMs, hot, 1400)
	defer sc.StopBackground()
	rng := stats.NewRNG(cfg.Seed + 1401)

	adv := core.NewAdvisor(sc, rng, core.AdvisorConfig{TimeStep: cfg.TimeStep})
	tc := cloud.SnapshotTP(sc, cfg.TimeStep, 5)
	if err := adv.AnalyzeCalibration(tc); err != nil {
		return nil, err
	}

	n := cfg.SimVMs
	elapsed := map[core.Strategy]map[string][]float64{}
	for _, s := range strategiesSim {
		elapsed[s] = map[string][]float64{}
	}
	// The collectives contend with background traffic on the live
	// simulator, so they (and every rng/snapshot draw) stay sequential in
	// the original order; the topology-mapping evaluation is pure given the
	// recorded task graph and snapshot and fans out over the worker pool.
	type fig13Input struct {
		task     *mapping.Graph
		snapPerf *netmodel.PerfMatrix
	}
	inputs := make([]fig13Input, cfg.Runs)
	net := mpi.NewSimNetwork(sc.Sim, sc.Hosts)
	for r := 0; r < cfg.Runs; r++ {
		root := rng.Intn(n)
		task := mapping.RandomTaskGraph(rng, n, 0.1, 5<<20, 10<<20)
		// A fresh measured snapshot prices the mapping workload.
		snap := cloud.SnapshotTP(sc, 1, 0)
		snapPerf := core.PerfFromRows(n,
			snap.Latency.Matrix().Row(0),
			snap.Bandwidth.Matrix().Row(0))
		inputs[r] = fig13Input{task: task, snapPerf: snapPerf}
		for _, s := range strategiesSim {
			tree := adv.PlanTree(s, root, cfg.MsgBytes, sc.Sim.Topo, sc.Hosts)
			// Collectives execute on the live simulator, one by one (as in
			// the paper's methodology), so they contend with background
			// traffic.
			b := mpi.RunCollective(net, tree, mpi.Broadcast, cfg.MsgBytes)
			scEl := mpi.RunCollective(net, tree, mpi.Scatter, cfg.MsgBytes)
			elapsed[s]["broadcast"] = append(elapsed[s]["broadcast"], b)
			elapsed[s]["scatter"] = append(elapsed[s]["scatter"], scEl)
		}
	}
	mapElapsed := make([][]float64, cfg.Runs)
	if err := sweepPoints(cfg, "fig13", mapElapsed, func(r int, _ *rand.Rand) error {
		in := inputs[r]
		mels := make([]float64, len(strategiesSim))
		for si, s := range strategiesSim {
			var assign []int
			if guide := adv.GuidancePerf(s); guide != nil {
				assign = mapping.GreedyMap(in.task, mapping.MachineGraphFromPerf(guide))
			} else {
				assign = mapping.RingMapping(n)
			}
			mel, _, err := mapping.CostE(in.task, assign, in.snapPerf)
			if err != nil {
				return fmt.Errorf("fig13 run %d strategy %v: %w", r, s, err)
			}
			if math.IsNaN(mel) || math.IsInf(mel, 0) {
				// A degraded weight matrix (unmeasured pairs left at
				// NaN/Inf) would otherwise flow into the table as a
				// plausible-looking MEL point.
				return fmt.Errorf("fig13 run %d strategy %v: degraded weight matrix yields non-finite MEL %v", r, s, mel)
			}
			mels[si] = mel
		}
		mapElapsed[r] = mels
		return nil
	}); err != nil {
		return nil, err
	}
	for r := 0; r < cfg.Runs; r++ {
		for si, s := range strategiesSim {
			elapsed[s]["mapping"] = append(elapsed[s]["mapping"], mapElapsed[r][si])
		}
	}

	res := &Fig13Result{
		Table:      NewTable("Fig 13a: simulated cluster, mean elapsed normalized to Baseline", "strategy", "broadcast", "scatter", "mapping"),
		NormE:      adv.NormE(),
		Normalized: map[core.Strategy]map[string]float64{},
	}
	for _, s := range strategiesSim {
		res.Normalized[s] = map[string]float64{}
		row := []string{s.String()}
		for _, app := range []string{"broadcast", "scatter", "mapping"} {
			norm := meanOf(elapsed[s][app]) / meanOf(elapsed[core.Baseline][app])
			res.Normalized[s][app] = norm
			row = append(row, f(norm))
		}
		res.Table.AddRow(row...)
	}
	res.Table.AddNote("measured Norm(N_E) = %.3f (paper tunes background to ~0.1)", res.NormE)

	res.CDFTable = NewTable("Fig 13b: broadcast elapsed-time CDF (seconds)", "percentile", "Baseline", "Topology-aware", "Heuristics", "RPCA")
	cdfs := map[core.Strategy]*stats.CDF{}
	for _, s := range strategiesSim {
		cdfs[s] = stats.NewCDF(elapsed[s]["broadcast"])
	}
	for _, q := range []float64{0.1, 0.25, 0.5, 0.75, 0.9, 1.0} {
		res.CDFTable.AddRow(pct(q),
			f(cdfs[core.Baseline].Quantile(q)),
			f(cdfs[core.TopologyAware].Quantile(q)),
			f(cdfs[core.Heuristics].Quantile(q)),
			f(cdfs[core.RPCA].Quantile(q)))
	}
	return res, nil
}
