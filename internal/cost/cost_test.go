package cost

import (
	"math"
	"strings"
	"testing"
)

func TestJobCostPerSecondBilling(t *testing.T) {
	p := Pricing{VMPerHour: 0.12}
	// 10 VMs × 3600 s = 10 VM-hours × $0.12 = $1.20.
	if got := p.JobCost(10, 3600); math.Abs(got-1.2) > 1e-12 {
		t.Errorf("job cost %v", got)
	}
	if p.JobCost(0, 100) != 0 || p.JobCost(3, -1) != 0 {
		t.Error("degenerate inputs should cost 0")
	}
}

func TestJobCostHourlyRounding(t *testing.T) {
	p := Pricing{VMPerHour: 0.12, BillingGranularity: 3600}
	// 61 minutes rounds up to 2 hours.
	if got := p.JobCost(1, 3660); math.Abs(got-0.24) > 1e-12 {
		t.Errorf("hourly rounding %v", got)
	}
	// Exactly one hour bills one hour.
	if got := p.JobCost(1, 3600); math.Abs(got-0.12) > 1e-12 {
		t.Errorf("exact hour %v", got)
	}
}

func TestCompareBasic(t *testing.T) {
	p := Pricing{VMPerHour: 0.12}
	// Baseline 1000 s, optimized 700 s, overhead 600 s on 16 VMs.
	c, err := Compare(p, 16, 100, 1000, 700, 600)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(c.SavingsFrac-0.3) > 1e-9 {
		t.Errorf("savings frac %v", c.SavingsFrac)
	}
	// Break-even: overhead 600 s / savings 300 s per run = 2 runs.
	if math.Abs(c.BreakEvenRuns-2) > 1e-9 {
		t.Errorf("break-even %v", c.BreakEvenRuns)
	}
	if c.NetSavings <= 0 {
		t.Errorf("100 runs should net positive: %v", c.NetSavings)
	}
	if !strings.Contains(c.String(), "break-even") {
		t.Error("string rendering")
	}
}

func TestCompareNoSavings(t *testing.T) {
	p := Pricing{VMPerHour: 0.12}
	c, err := Compare(p, 4, 10, 100, 120, 50)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(c.BreakEvenRuns, 1) {
		t.Error("slower optimization should never break even")
	}
	if c.NetSavings >= 0 {
		t.Error("net should be negative")
	}
}

func TestCompareErrors(t *testing.T) {
	p := Pricing{VMPerHour: 0.12}
	if _, err := Compare(p, 0, 1, 1, 1, 1); err == nil {
		t.Error("zero VMs should error")
	}
	if _, err := Compare(p, 2, -1, 1, 1, 1); err == nil {
		t.Error("negative runs should error")
	}
	if _, err := Compare(p, 2, 1, -1, 1, 1); err == nil {
		t.Error("negative durations should error")
	}
}

func TestHourlyBillingCanEraseSavings(t *testing.T) {
	// With hourly granularity, shaving 10 minutes off a 70-minute job
	// still bills 2 hours — the optimization saves nothing in dollars.
	p := Pricing{VMPerHour: 0.12, BillingGranularity: 3600}
	c, err := Compare(p, 8, 10, 70*60, 61*60, 0)
	if err != nil {
		t.Fatal(err)
	}
	if c.SavingsPerRun != 0 {
		t.Errorf("hourly billing should erase sub-hour savings, got %v", c.SavingsPerRun)
	}
	// But crossing the hour boundary does pay.
	c2, _ := Compare(p, 8, 10, 70*60, 59*60, 0)
	if c2.SavingsPerRun <= 0 {
		t.Error("crossing the boundary should save a full billed hour")
	}
}
