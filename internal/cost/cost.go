// Package cost models the pay-as-you-go economics of network-performance-
// aware optimization — the paper's stated future work ("we plan to
// investigate the economic impacts of our approach", §VI). Because IaaS
// clusters bill per VM-time, reducing a distributed job's elapsed time
// reduces its dollar cost, but calibration burns paid cluster time first;
// the interesting quantities are the net savings and the break-even point
// where calibration has amortized.
package cost

import (
	"errors"
	"fmt"
	"math"
)

// Pricing describes an instance type's billing.
type Pricing struct {
	// VMPerHour is the on-demand price per VM-hour (2013 EC2 m1.medium:
	// $0.12).
	VMPerHour float64
	// BillingGranularity is the rounding unit in seconds: 3600 for classic
	// hourly billing, 60 for per-minute, 1 for per-second. Zero selects
	// per-second.
	BillingGranularity float64
}

func (p Pricing) granularity() float64 {
	if p.BillingGranularity <= 0 {
		return 1
	}
	return p.BillingGranularity
}

// JobCost returns the dollar cost of occupying `vms` instances for
// `elapsedSeconds`, rounded up to the billing granularity.
func (p Pricing) JobCost(vms int, elapsedSeconds float64) float64 {
	if vms <= 0 || elapsedSeconds < 0 {
		return 0
	}
	g := p.granularity()
	billed := math.Ceil(elapsedSeconds/g) * g
	return float64(vms) * billed / 3600 * p.VMPerHour
}

// Comparison is the economic outcome of applying a network-aware
// optimization to a recurring job.
type Comparison struct {
	// Per-run dollar costs.
	BaselineCost  float64
	OptimizedCost float64
	// OverheadCost is the one-time calibration + analysis cost in dollars.
	OverheadCost float64
	// SavingsPerRun is BaselineCost − OptimizedCost.
	SavingsPerRun float64
	// SavingsFrac is SavingsPerRun / BaselineCost.
	SavingsFrac float64
	// BreakEvenRuns is how many runs amortize the overhead
	// (+Inf when the optimization does not save anything).
	BreakEvenRuns float64
	// NetSavings reports total savings after `Runs` executions.
	Runs       int
	NetSavings float64
}

// Compare evaluates the economics of running a job `runs` times:
// baselineSec and optimizedSec are per-run elapsed times; overheadSec is
// the one-time calibration cost — all on a cluster of `vms` instances.
func Compare(p Pricing, vms, runs int, baselineSec, optimizedSec, overheadSec float64) (Comparison, error) {
	if vms <= 0 || runs < 0 {
		return Comparison{}, errors.New("cost: invalid cluster size or run count")
	}
	if baselineSec < 0 || optimizedSec < 0 || overheadSec < 0 {
		return Comparison{}, errors.New("cost: negative durations")
	}
	c := Comparison{
		BaselineCost:  p.JobCost(vms, baselineSec),
		OptimizedCost: p.JobCost(vms, optimizedSec),
		OverheadCost:  p.JobCost(vms, overheadSec),
		Runs:          runs,
	}
	c.SavingsPerRun = c.BaselineCost - c.OptimizedCost
	if c.BaselineCost > 0 {
		c.SavingsFrac = c.SavingsPerRun / c.BaselineCost
	}
	if c.SavingsPerRun > 0 {
		c.BreakEvenRuns = c.OverheadCost / c.SavingsPerRun
	} else {
		c.BreakEvenRuns = math.Inf(1)
	}
	c.NetSavings = float64(runs)*c.SavingsPerRun - c.OverheadCost
	return c, nil
}

// String renders the comparison.
func (c Comparison) String() string {
	return fmt.Sprintf("baseline $%.4f/run, optimized $%.4f/run (%.1f%% cheaper), overhead $%.4f, break-even %.1f runs, net after %d runs: $%.4f",
		c.BaselineCost, c.OptimizedCost, 100*c.SavingsFrac, c.OverheadCost, c.BreakEvenRuns, c.Runs, c.NetSavings)
}
