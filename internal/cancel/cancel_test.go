package cancel

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"
)

func TestCheckLiveContext(t *testing.T) {
	if err := Check(context.Background(), "op", 0, 0); err != nil {
		t.Fatalf("live context: got %v, want nil", err)
	}
	var noCtx context.Context // nil ctx is the documented "never cancels" case
	if err := Check(noCtx, "op", 0, 0); err != nil {
		t.Fatalf("nil context: got %v, want nil", err)
	}
}

func TestCheckCanceledContext(t *testing.T) {
	ctx, stop := context.WithCancel(context.Background())
	stop()
	err := Check(ctx, "exp/fig7", 5, 12)
	if err == nil {
		t.Fatal("canceled context: got nil error")
	}
	if !errors.Is(err, ErrCanceled) {
		t.Errorf("errors.Is(err, ErrCanceled) = false for %v", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("errors.Is(err, context.Canceled) = false for %v", err)
	}
	var ce *Error
	if !errors.As(err, &ce) {
		t.Fatalf("errors.As(*Error) failed for %T", err)
	}
	if ce.Op != "exp/fig7" || ce.Done != 5 || ce.Total != 12 {
		t.Errorf("provenance = %+v, want Op=exp/fig7 Done=5 Total=12", ce)
	}
	if got := err.Error(); !strings.Contains(got, "5/12") || !strings.Contains(got, "exp/fig7") {
		t.Errorf("message %q lacks progress provenance", got)
	}
}

func TestCheckDeadline(t *testing.T) {
	ctx, stop := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer stop()
	err := Check(ctx, "rpca.Decompose", 3, 100)
	if !errors.Is(err, ErrCanceled) {
		t.Errorf("deadline abort should match ErrCanceled, got %v", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("deadline abort should unwrap to DeadlineExceeded, got %v", err)
	}
}

func TestWrapDefaultsCause(t *testing.T) {
	err := Wrap("op", 0, 0, nil)
	if !errors.Is(err, context.Canceled) {
		t.Errorf("nil cause should default to context.Canceled, got %v", err)
	}
}

func TestTotalZeroMessage(t *testing.T) {
	err := Wrap("cloud.CalibrationMemo", 0, 0, context.Canceled)
	if got := err.Error(); strings.Contains(got, "0/0") {
		t.Errorf("Total==0 should omit the progress fraction, got %q", got)
	}
}

// TestUnwrapChain pins the full errors.Is/Unwrap contract: a wrapped
// deadline abort matches the sentinel and its cause — and does NOT
// match the cause it doesn't carry.
func TestUnwrapChain(t *testing.T) {
	err := Wrap("exp/fig7", 5, 12, context.DeadlineExceeded)
	if !errors.Is(err, ErrCanceled) {
		t.Errorf("errors.Is(err, ErrCanceled) = false")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("errors.Is(err, context.DeadlineExceeded) = false")
	}
	if errors.Is(err, context.Canceled) {
		t.Errorf("a deadline abort must not match context.Canceled")
	}
	var ce *Error
	if !errors.As(err, &ce) {
		t.Fatalf("errors.As(*Error) failed for %T", err)
	}
	if ce.Unwrap() != context.DeadlineExceeded {
		t.Errorf("Unwrap() = %v, want the context cause", ce.Unwrap())
	}
	// Wrapping a *cancel.Error inside a plain fmt wrapper must keep the
	// whole chain visible — this is how exp sweeps surface cancellations
	// through figure-level error wrapping.
	outer := &Error{Op: "outer", Cause: err}
	if !errors.Is(outer, ErrCanceled) || !errors.Is(outer, context.DeadlineExceeded) {
		t.Errorf("nested *Error broke the chain: %v", outer)
	}
}

// TestMessageFormat pins the exact rendering both with and without a
// unit count, since supervisor diagnoses and operator logs quote it.
func TestMessageFormat(t *testing.T) {
	withTotal := Wrap("exp/fig7", 5, 12, context.Canceled)
	if got, want := withTotal.Error(), "exp/fig7: canceled after 5/12: context canceled"; got != want {
		t.Errorf("message = %q, want %q", got, want)
	}
	noTotal := Wrap("cloud.CalibrateTP", 3, 0, context.DeadlineExceeded)
	if got, want := noTotal.Error(), "cloud.CalibrateTP: canceled: context deadline exceeded"; got != want {
		t.Errorf("message = %q, want %q", got, want)
	}
}
