// Package cancel defines the repo-wide typed cancellation error. Every
// long-running entry point (exp sweeps, cloud calibration, rpca solver
// iterations) that aborts because a context was cancelled or its
// deadline expired returns a *cancel.Error, which
//
//   - matches errors.Is(err, cancel.ErrCanceled) so callers can treat
//     all cancellations uniformly,
//   - unwraps to the context's cause (context.Canceled or
//     context.DeadlineExceeded), so errors.Is against those still works,
//   - carries partial-progress provenance: the operation name and how
//     many of how many units of work had completed when the abort was
//     observed. A half-finished sweep reports "exp/fig7: canceled after
//     5/12 points", not a bare "context canceled".
//
// The package sits below every other internal package (it imports only
// the stdlib), so core, cloud, rpca and exp can all share the sentinel
// without an import cycle.
package cancel

import (
	"context"
	"errors"
	"fmt"
)

// ErrCanceled is the sentinel matched by every typed cancellation
// error. errors.Is(err, ErrCanceled) is true for any *Error.
var ErrCanceled = errors.New("canceled")

// Error is a typed cancellation with partial-progress provenance.
type Error struct {
	// Op names the aborted operation, e.g. "exp/fig7" or
	// "cloud.CalibrateTP".
	Op string
	// Done and Total describe partial progress in the operation's own
	// units (sweep points, calibration steps, solver iterations). Total
	// is 0 when the operation has no meaningful unit count.
	Done, Total int
	// Cause is the context's cancellation cause, typically
	// context.Canceled or context.DeadlineExceeded.
	Cause error
}

func (e *Error) Error() string {
	if e.Total > 0 {
		return fmt.Sprintf("%s: canceled after %d/%d: %v", e.Op, e.Done, e.Total, e.Cause)
	}
	return fmt.Sprintf("%s: canceled: %v", e.Op, e.Cause)
}

// Is makes every *Error match the ErrCanceled sentinel.
func (e *Error) Is(target error) bool { return target == ErrCanceled }

// Unwrap exposes the context cause, so errors.Is(err, context.Canceled)
// and errors.Is(err, context.DeadlineExceeded) see through the wrapper.
func (e *Error) Unwrap() error { return e.Cause }

// Wrap builds a typed cancellation error. A nil cause defaults to
// context.Canceled.
func Wrap(op string, done, total int, cause error) error {
	if cause == nil {
		cause = context.Canceled
	}
	return &Error{Op: op, Done: done, Total: total, Cause: cause}
}

// Check returns nil while ctx is live and a typed *Error once it is
// done. A nil ctx never cancels. done/total record the caller's
// progress at the moment of the check.
func Check(ctx context.Context, op string, done, total int) error {
	if ctx == nil {
		return nil
	}
	if ctx.Err() == nil {
		return nil
	}
	return Wrap(op, done, total, context.Cause(ctx))
}
