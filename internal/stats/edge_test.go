package stats

// Regression tests for the edge-case panics fixed in the stats layer:
//   - CDF.Points(1) divided by k-1 == 0 before its single-point guard ran;
//   - NewHistogram(xs, nbins) called make([]int, nbins) with negative nbins
//     and folded NaN samples into min/max, poisoning every bin index;
//   - Quantile(sorted, NaN) fell through both clamp branches and indexed
//     the sample with a garbage truncated-NaN position.
// Each test panicked (or indexed out of range) on the seed implementation.

import (
	"math"
	"testing"
)

func TestCDFPointsSinglePoint(t *testing.T) {
	cases := []struct {
		name   string
		sample []float64
		want   [2]float64
	}{
		{"several observations", []float64{3, 1, 2}, [2]float64{3, 1}},
		{"one observation", []float64{7}, [2]float64{7, 1}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			pts := NewCDF(c.sample).Points(1)
			if len(pts) != 1 {
				t.Fatalf("Points(1) returned %d points, want 1", len(pts))
			}
			if pts[0] != c.want {
				t.Errorf("Points(1) = %v, want %v", pts[0], c.want)
			}
		})
	}
	if pts := NewCDF(nil).Points(1); pts != nil {
		t.Errorf("empty CDF Points(1) = %v, want nil", pts)
	}
}

func TestCDFPointsCoverage(t *testing.T) {
	// Points(k) for k in [1, n] must always start from a valid index and
	// end at the sample maximum with cumulative probability 1.
	sample := []float64{5, 1, 4, 2, 3, 9, 8, 7, 6, 0}
	c := NewCDF(sample)
	for k := 1; k <= len(sample)+3; k++ {
		pts := c.Points(k)
		want := k
		if want > len(sample) {
			want = len(sample)
		}
		if len(pts) != want {
			t.Fatalf("Points(%d) returned %d points, want %d", k, len(pts), want)
		}
		last := pts[len(pts)-1]
		if last[0] != 9 || last[1] != 1 {
			t.Errorf("Points(%d) last = %v, want [9 1]", k, last)
		}
	}
}

func TestNewHistogramEdgeCases(t *testing.T) {
	nan := math.NaN()
	cases := []struct {
		name   string
		xs     []float64
		nbins  int
		counts []int
	}{
		{"negative nbins", []float64{1, 2, 3}, -4, []int{}},
		{"negative nbins empty sample", nil, -1, []int{}},
		{"zero nbins", []float64{1, 2, 3}, 0, []int{}},
		{"all NaN", []float64{nan, nan}, 3, []int{0, 0, 0}},
		{"NaN-laced sample", []float64{nan, 0, nan, 1, 2, 3, nan}, 2, []int{2, 2}},
		{"inf-laced sample", []float64{math.Inf(1), 0, 1, math.Inf(-1)}, 2, []int{1, 1}},
		{"single repeated value with NaN", []float64{nan, 5, 5}, 4, []int{2, 0, 0, 0}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			h := NewHistogram(c.xs, c.nbins)
			if len(h.Counts) != len(c.counts) {
				t.Fatalf("Counts length %d, want %d", len(h.Counts), len(c.counts))
			}
			for i, want := range c.counts {
				if h.Counts[i] != want {
					t.Errorf("Counts[%d] = %d, want %d (full: %v)", i, h.Counts[i], want, h.Counts)
				}
			}
		})
	}
	// The NaN-laced range must come from the finite samples only.
	h := NewHistogram([]float64{nan, 2, 8, nan}, 2)
	if h.Min != 2 || h.Max != 8 {
		t.Errorf("NaN-laced histogram range [%v, %v], want [2, 8]", h.Min, h.Max)
	}
}

func TestQuantileNaN(t *testing.T) {
	sorted := []float64{1, 2, 3, 4}
	if got := Quantile(sorted, math.NaN()); !math.IsNaN(got) {
		t.Errorf("Quantile(sorted, NaN) = %v, want NaN", got)
	}
	// Single-element and empty samples keep their existing contract.
	if got := Quantile([]float64{7}, math.NaN()); got != 7 {
		t.Errorf("Quantile([7], NaN) = %v, want 7", got)
	}
	if got := Quantile(nil, math.NaN()); !math.IsNaN(got) {
		t.Errorf("Quantile(nil, NaN) = %v, want NaN", got)
	}
	// The fix must not disturb ordinary quantiles.
	if got := Quantile(sorted, 0.5); got != 2.5 {
		t.Errorf("Quantile(sorted, 0.5) = %v, want 2.5", got)
	}
}

func FuzzQuantile(f *testing.F) {
	f.Add(0.5, 1.0, 2.0, 3.0)
	f.Add(math.NaN(), 0.0, 0.0, 0.0)
	f.Add(-1.5, 9.0, -4.0, 2.5)
	f.Add(2.0, 1.0, 1.0, 1.0)
	f.Fuzz(func(t *testing.T, q, a, b, c float64) {
		xs := []float64{a, b, c}
		// Quantile requires sorted input; NaN-laced samples are allowed to
		// produce NaN but must never panic.
		sorted := append([]float64(nil), xs...)
		for i := 1; i < len(sorted); i++ {
			for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
				sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
			}
		}
		got := Quantile(sorted, q)
		if math.IsNaN(got) {
			return
		}
		lo, hi := sorted[0], sorted[len(sorted)-1]
		if !math.IsNaN(lo) && !math.IsNaN(hi) && (got < math.Min(lo, hi) || got > math.Max(lo, hi)) {
			t.Errorf("Quantile(%v, %v) = %v outside sample range", sorted, q, got)
		}
	})
}
