package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary holds descriptive statistics of a sample.
type Summary struct {
	N      int
	Mean   float64
	Std    float64 // sample standard deviation (n-1 denominator)
	Min    float64
	Max    float64
	Median float64
	P5     float64
	P95    float64
}

// Summarize computes descriptive statistics for xs. It returns the zero
// Summary for an empty sample.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: math.Inf(1), Max: math.Inf(-1)}
	var sum float64
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(len(xs))
	var sq float64
	for _, x := range xs {
		d := x - s.Mean
		sq += d * d
	}
	if len(xs) > 1 {
		s.Std = math.Sqrt(sq / float64(len(xs)-1))
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	s.Median = Quantile(sorted, 0.5)
	s.P5 = Quantile(sorted, 0.05)
	s.P95 = Quantile(sorted, 0.95)
	return s
}

// Quantile returns the q-quantile (0 <= q <= 1) of an ascending-sorted
// sample using linear interpolation between order statistics. A NaN q has
// no defined order statistic and yields NaN.
func Quantile(sorted []float64, q float64) float64 {
	n := len(sorted)
	if n == 0 {
		return math.NaN()
	}
	if n == 1 {
		return sorted[0]
	}
	if math.IsNaN(q) {
		return math.NaN()
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[n-1]
	}
	pos := q * float64(n-1)
	lo := int(math.Floor(pos))
	frac := pos - float64(lo)
	if lo+1 >= n {
		return sorted[n-1]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// Mean returns the arithmetic mean of xs (NaN for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// TrimmedMean returns the mean of xs after discarding the lowest and
// highest trim fraction of observations (e.g. trim=0.1 drops 10% at each
// end). It is robust to the heavy-tailed samples that extreme network
// dynamics produce. Returns NaN for empty input; trim is clamped to
// [0, 0.5).
func TrimmedMean(xs []float64, trim float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	if trim < 0 {
		trim = 0
	}
	if trim >= 0.5 {
		trim = 0.49
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	k := int(trim * float64(len(sorted)))
	kept := sorted[k : len(sorted)-k]
	return Mean(kept)
}

// GeoMean returns the geometric mean of strictly positive xs.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var sum float64
	for _, x := range xs {
		if x <= 0 {
			return math.NaN()
		}
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs)))
}

// CDF is an empirical cumulative distribution function over a sample.
type CDF struct {
	sorted []float64
}

// NewCDF builds an empirical CDF from the sample (which is copied).
func NewCDF(xs []float64) *CDF {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return &CDF{sorted: s}
}

// At returns P(X <= x) under the empirical distribution.
func (c *CDF) At(x float64) float64 {
	if len(c.sorted) == 0 {
		return math.NaN()
	}
	idx := sort.SearchFloat64s(c.sorted, math.Nextafter(x, math.Inf(1)))
	return float64(idx) / float64(len(c.sorted))
}

// Quantile returns the q-quantile of the sample.
func (c *CDF) Quantile(q float64) float64 { return Quantile(c.sorted, q) }

// Points returns up to k (x, P(X<=x)) pairs evenly spaced through the
// sample, convenient for rendering a CDF curve (paper Figs 7b, 11b, 13b).
func (c *CDF) Points(k int) [][2]float64 {
	n := len(c.sorted)
	if n == 0 || k <= 0 {
		return nil
	}
	if k > n {
		k = n
	}
	out := make([][2]float64, 0, k)
	for i := 0; i < k; i++ {
		idx := n - 1
		if k > 1 {
			idx = i * (n - 1) / (k - 1)
		}
		out = append(out, [2]float64{c.sorted[idx], float64(idx+1) / float64(n)})
	}
	return out
}

// Len returns the number of observations in the CDF.
func (c *CDF) Len() int { return len(c.sorted) }

// Histogram bins a sample into nbins equal-width bins over [min,max].
type Histogram struct {
	Min, Max float64
	Counts   []int
}

// NewHistogram bins xs into nbins equal-width bins spanning the sample
// range. A non-positive nbins yields an empty histogram. Non-finite samples
// (NaN, ±Inf) carry no binnable magnitude and are ignored; if no finite
// sample remains the histogram is empty.
func NewHistogram(xs []float64, nbins int) Histogram {
	if nbins < 0 {
		nbins = 0
	}
	h := Histogram{Counts: make([]int, nbins)}
	if nbins == 0 {
		return h
	}
	finite := 0
	for _, x := range xs {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			continue
		}
		if finite == 0 {
			h.Min, h.Max = x, x
		} else {
			if x < h.Min {
				h.Min = x
			}
			if x > h.Max {
				h.Max = x
			}
		}
		finite++
	}
	if finite == 0 {
		return h
	}
	width := (h.Max - h.Min) / float64(nbins)
	if width == 0 {
		h.Counts[0] = finite
		return h
	}
	for _, x := range xs {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			continue
		}
		i := int((x - h.Min) / width)
		if i >= nbins {
			i = nbins - 1
		}
		if i < 0 {
			i = 0
		}
		h.Counts[i]++
	}
	return h
}

// String renders the summary on one line.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.4g std=%.4g min=%.4g p50=%.4g p95=%.4g max=%.4g",
		s.N, s.Mean, s.Std, s.Min, s.Median, s.P95, s.Max)
}

// RelImprovement returns (base-opt)/base, the fractional improvement of opt
// over base; e.g. 0.3 means "30% faster than base". Returns NaN if base==0.
func RelImprovement(base, opt float64) float64 {
	if base == 0 {
		return math.NaN()
	}
	return (base - opt) / base
}
