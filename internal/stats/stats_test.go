package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewRNGDeterminism(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
}

func TestSplitIndependence(t *testing.T) {
	parent1 := NewRNG(7)
	parent2 := NewRNG(7)
	c1 := Split(parent1, 1)
	c2 := Split(parent2, 1)
	for i := 0; i < 50; i++ {
		if c1.Float64() != c2.Float64() {
			t.Fatal("split with same parent+tag should be deterministic")
		}
	}
	// Different tags should (overwhelmingly) give different streams.
	d1 := Split(NewRNG(7), 1)
	d2 := Split(NewRNG(7), 2)
	same := true
	for i := 0; i < 10; i++ {
		if d1.Float64() != d2.Float64() {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different tags produced identical streams")
	}
}

func TestUniformRange(t *testing.T) {
	r := NewRNG(1)
	for i := 0; i < 1000; i++ {
		x := Uniform(r, 2, 5)
		if x < 2 || x >= 5 {
			t.Fatalf("uniform out of range: %v", x)
		}
	}
}

func TestNormalMoments(t *testing.T) {
	r := NewRNG(2)
	xs := make([]float64, 20000)
	for i := range xs {
		xs[i] = Normal(r, 10, 3)
	}
	s := Summarize(xs)
	if math.Abs(s.Mean-10) > 0.1 {
		t.Errorf("normal mean %.3f, want ~10", s.Mean)
	}
	if math.Abs(s.Std-3) > 0.1 {
		t.Errorf("normal std %.3f, want ~3", s.Std)
	}
}

func TestExponentialMean(t *testing.T) {
	r := NewRNG(3)
	xs := make([]float64, 20000)
	for i := range xs {
		xs[i] = Exponential(r, 5)
	}
	m := Mean(xs)
	if math.Abs(m-5) > 0.2 {
		t.Errorf("exponential mean %.3f, want ~5", m)
	}
	if Exponential(r, 0) != 0 || Exponential(r, -1) != 0 {
		t.Error("nonpositive mean should yield 0")
	}
}

func TestPoissonMean(t *testing.T) {
	r := NewRNG(4)
	for _, lambda := range []float64{0.5, 3, 30, 800} {
		var sum float64
		n := 5000
		for i := 0; i < n; i++ {
			sum += float64(Poisson(r, lambda))
		}
		m := sum / float64(n)
		if math.Abs(m-lambda) > 0.1*lambda+0.2 {
			t.Errorf("poisson(%v) mean %.3f", lambda, m)
		}
	}
	if Poisson(r, 0) != 0 || Poisson(r, -2) != 0 {
		t.Error("nonpositive lambda should yield 0")
	}
}

func TestBernoulli(t *testing.T) {
	r := NewRNG(5)
	hits := 0
	n := 20000
	for i := 0; i < n; i++ {
		if Bernoulli(r, 0.25) {
			hits++
		}
	}
	p := float64(hits) / float64(n)
	if math.Abs(p-0.25) > 0.02 {
		t.Errorf("bernoulli rate %.3f, want ~0.25", p)
	}
}

func TestSampleWithoutReplacement(t *testing.T) {
	r := NewRNG(6)
	s := SampleWithoutReplacement(r, 10, 5)
	seen := map[int]bool{}
	for _, v := range s {
		if v < 0 || v >= 10 {
			t.Fatalf("out of range: %d", v)
		}
		if seen[v] {
			t.Fatalf("duplicate: %d", v)
		}
		seen[v] = true
	}
	defer func() {
		if recover() == nil {
			t.Error("expected panic for k > n")
		}
	}()
	SampleWithoutReplacement(r, 3, 4)
}

func TestSummarizeBasics(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.Median != 3 {
		t.Errorf("unexpected summary: %+v", s)
	}
	if math.Abs(s.Std-math.Sqrt(2.5)) > 1e-12 {
		t.Errorf("std %.6f", s.Std)
	}
	if z := Summarize(nil); z.N != 0 {
		t.Error("empty summary should be zero")
	}
}

func TestQuantile(t *testing.T) {
	sorted := []float64{10, 20, 30, 40}
	cases := []struct{ q, want float64 }{
		{0, 10}, {1, 40}, {0.5, 25}, {1.0 / 3, 20},
	}
	for _, c := range cases {
		if got := Quantile(sorted, c.q); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Quantile(%v)=%v want %v", c.q, got, c.want)
		}
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Error("empty quantile should be NaN")
	}
	if Quantile([]float64{7}, 0.9) != 7 {
		t.Error("single-element quantile")
	}
}

func TestMeanGeoMean(t *testing.T) {
	if Mean([]float64{2, 4}) != 3 {
		t.Error("mean")
	}
	if !math.IsNaN(Mean(nil)) {
		t.Error("mean of empty should be NaN")
	}
	if g := GeoMean([]float64{1, 4}); math.Abs(g-2) > 1e-12 {
		t.Errorf("geomean %v", g)
	}
	if !math.IsNaN(GeoMean([]float64{1, -1})) {
		t.Error("geomean with nonpositive should be NaN")
	}
}

func TestCDF(t *testing.T) {
	c := NewCDF([]float64{1, 2, 3, 4})
	if c.At(0) != 0 {
		t.Error("At below min")
	}
	if c.At(2) != 0.5 {
		t.Errorf("At(2)=%v", c.At(2))
	}
	if c.At(10) != 1 {
		t.Error("At above max")
	}
	pts := c.Points(4)
	if len(pts) != 4 || pts[3][1] != 1 {
		t.Errorf("points: %v", pts)
	}
	if c.Len() != 4 {
		t.Error("len")
	}
	if NewCDF(nil).Points(3) != nil {
		t.Error("empty points should be nil")
	}
}

func TestCDFMonotonic(t *testing.T) {
	r := NewRNG(8)
	xs := make([]float64, 200)
	for i := range xs {
		xs[i] = r.NormFloat64()
	}
	c := NewCDF(xs)
	prev := -1.0
	for x := -4.0; x <= 4.0; x += 0.1 {
		p := c.At(x)
		if p < prev {
			t.Fatalf("CDF not monotone at %v", x)
		}
		prev = p
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram([]float64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}, 5)
	total := 0
	for _, c := range h.Counts {
		total += c
	}
	if total != 10 {
		t.Errorf("histogram lost mass: %v", h.Counts)
	}
	// Degenerate: all equal values.
	h2 := NewHistogram([]float64{3, 3, 3}, 4)
	if h2.Counts[0] != 3 {
		t.Errorf("degenerate histogram: %v", h2.Counts)
	}
}

func TestRelImprovement(t *testing.T) {
	if RelImprovement(10, 7) != 0.3 {
		t.Error("rel improvement")
	}
	if !math.IsNaN(RelImprovement(0, 1)) {
		t.Error("zero base should be NaN")
	}
}

func TestQuantilePropertyBounds(t *testing.T) {
	f := func(raw []float64, q float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		q = math.Abs(math.Mod(q, 1))
		s := Summarize(xs)
		cdf := NewCDF(xs)
		v := cdf.Quantile(q)
		return v >= s.Min-1e-9 && v <= s.Max+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSummaryString(t *testing.T) {
	s := Summarize([]float64{1, 2})
	if s.String() == "" {
		t.Error("empty string")
	}
}

func TestLogNormal(t *testing.T) {
	r := NewRNG(9)
	xs := make([]float64, 20000)
	for i := range xs {
		xs[i] = LogNormal(r, 0, 0.5)
	}
	for _, x := range xs {
		if x <= 0 {
			t.Fatal("lognormal must be positive")
		}
	}
	// Median of lognormal(0, σ) is e^0 = 1.
	med := NewCDF(xs).Quantile(0.5)
	if math.Abs(med-1) > 0.05 {
		t.Errorf("lognormal median %.3f", med)
	}
}

func TestPerm(t *testing.T) {
	r := NewRNG(10)
	p := Perm(r, 6)
	seen := map[int]bool{}
	for _, v := range p {
		if v < 0 || v >= 6 || seen[v] {
			t.Fatalf("bad permutation %v", p)
		}
		seen[v] = true
	}
}

func TestTrimmedMean(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 100} // outlier
	plain := Mean(xs)
	trimmed := TrimmedMean(xs, 0.2) // drops 1 and 100
	if trimmed != 3 {
		t.Errorf("trimmed mean %v want 3", trimmed)
	}
	if trimmed >= plain {
		t.Error("trimming should reduce the outlier's pull")
	}
	if !math.IsNaN(TrimmedMean(nil, 0.1)) {
		t.Error("empty should be NaN")
	}
	// Clamps: negative trim behaves like mean; >=0.5 keeps at least the middle.
	if TrimmedMean(xs, -1) != plain {
		t.Error("negative trim should behave like mean")
	}
	if v := TrimmedMean(xs, 0.9); math.IsNaN(v) {
		t.Error("over-trim should still return a value")
	}
}
