// Package stats provides seeded random samplers, summary statistics and
// empirical distribution helpers used throughout the netconstant simulators
// and experiment harness.
//
// Every sampler takes an explicit *rand.Rand so that all stochastic
// components of the repository are deterministic given a seed; no package in
// this module reads the wall clock or the global rand source.
package stats

import (
	"math"
	"math/rand"
)

// NewRNG returns a deterministic random source for the given seed.
func NewRNG(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// Split derives a child RNG from a parent, so that concurrent components can
// each own an independent deterministic stream. The child's seed mixes the
// parent stream with the supplied tag.
func Split(r *rand.Rand, tag int64) *rand.Rand {
	const mix = int64(0x1E3779B97F4A7C15) // golden-ratio mixing constant, truncated to int64
	return rand.New(rand.NewSource(r.Int63() ^ (tag * mix)))
}

// Uniform samples from [lo, hi).
func Uniform(r *rand.Rand, lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// Normal samples from a Gaussian with the given mean and standard deviation.
func Normal(r *rand.Rand, mean, stddev float64) float64 {
	return mean + stddev*r.NormFloat64()
}

// LogNormal samples from a log-normal distribution whose underlying normal
// has parameters mu and sigma.
func LogNormal(r *rand.Rand, mu, sigma float64) float64 {
	return math.Exp(Normal(r, mu, sigma))
}

// Exponential samples an exponential waiting time with the given mean
// (i.e. rate 1/mean). It is the inter-arrival distribution of a Poisson
// process, used by the background-traffic generators (paper §V-A).
func Exponential(r *rand.Rand, mean float64) float64 {
	if mean <= 0 {
		return 0
	}
	return r.ExpFloat64() * mean
}

// Poisson samples a Poisson-distributed count with expectation lambda using
// Knuth's method for small lambda and a normal approximation for large
// lambda (where the exact method would need thousands of uniforms).
func Poisson(r *rand.Rand, lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	if lambda > 500 {
		// Normal approximation with continuity correction.
		n := int(math.Round(Normal(r, lambda, math.Sqrt(lambda))))
		if n < 0 {
			n = 0
		}
		return n
	}
	l := math.Exp(-lambda)
	k := 0
	p := 1.0
	for {
		p *= r.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// Bernoulli returns true with probability p.
func Bernoulli(r *rand.Rand, p float64) bool {
	return r.Float64() < p
}

// Perm returns a random permutation of n elements.
func Perm(r *rand.Rand, n int) []int {
	return r.Perm(n)
}

// SampleWithoutReplacement returns k distinct integers in [0, n).
// It panics if k > n.
func SampleWithoutReplacement(r *rand.Rand, n, k int) []int {
	if k > n {
		panic("stats: sample size exceeds population")
	}
	p := r.Perm(n)
	out := make([]int, k)
	copy(out, p[:k])
	return out
}
