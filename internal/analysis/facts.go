package analysis

import (
	"fmt"
	"go/types"
	"reflect"
	"sort"
)

// A Fact is a typed claim an analyzer proves about a types.Object while
// analyzing the object's defining package, stored so that passes over
// downstream packages (packages that import the definer) can consume it.
// This is the stdlib-only analogue of golang.org/x/tools/go/analysis
// facts: because the Loader type-checks every module-internal package
// exactly once and shares the resulting *types.Package instances through
// its importer cache, object identity is stable across passes and facts
// can be keyed directly by types.Object.
//
// Concrete fact types must be pointers to structs and implement AFact.
// By convention facts are only useful on exported objects — an
// unexported object cannot be referenced downstream, so nothing can look
// its facts up — but exporting on unexported objects is permitted (the
// defining package's own later analyzers may consume them).
type Fact interface {
	// AFact is a marker; it has no behaviour.
	AFact()
}

// factKey identifies one (object, fact type) cell in the store.
type factKey struct {
	obj types.Object
	typ reflect.Type
}

// factStore holds every fact exported during one Session, across all
// packages and analyzers. It is not safe for concurrent use; a Session
// runs packages in dependency order, one at a time.
type factStore struct {
	m map[factKey]Fact
}

func newFactStore() *factStore {
	return &factStore{m: map[factKey]Fact{}}
}

func (s *factStore) export(obj types.Object, f Fact) error {
	t := reflect.TypeOf(f)
	if t == nil || t.Kind() != reflect.Ptr {
		return fmt.Errorf("fact %T is not a pointer to a struct", f)
	}
	s.m[factKey{obj, t}] = f
	return nil
}

func (s *factStore) imports(obj types.Object, f Fact) bool {
	t := reflect.TypeOf(f)
	got, ok := s.m[factKey{obj, t}]
	if !ok {
		return false
	}
	reflect.ValueOf(f).Elem().Set(reflect.ValueOf(got).Elem())
	return true
}

// ExportObjectFact records fact about obj for consumption by later
// passes in the same Session (including passes over downstream
// packages). fact must be a pointer to a struct. Outside a Session
// (the legacy package-level Run) facts are stored per-call and vanish
// with the pass — fixture tests that need propagation use a Session.
func (p *Pass) ExportObjectFact(obj types.Object, fact Fact) {
	if p.facts == nil || obj == nil {
		return
	}
	if err := p.facts.export(obj, fact); err != nil {
		panic(fmt.Sprintf("analysis: ExportObjectFact(%v): %v", obj, err))
	}
}

// ImportObjectFact copies into fact the fact of fact's concrete type
// previously exported about obj, reporting whether one was found. fact
// must be a pointer to a struct of the same type the exporter used.
func (p *Pass) ImportObjectFact(obj types.Object, fact Fact) bool {
	if p.facts == nil || obj == nil {
		return false
	}
	return p.facts.imports(obj, fact)
}

// A Session runs analyzers over a sequence of packages in dependency
// order, threading one fact store through every pass so that facts
// exported while analyzing a dependency are visible to passes over its
// dependents. Run packages dependencies-first (LoadDeps returns them in
// that order); a fact exported after its consumer has already run is
// silently useless.
type Session struct {
	facts *factStore
}

// NewSession creates an empty session.
func NewSession() *Session {
	return &Session{facts: newFactStore()}
}

// Run applies each analyzer to pkg exactly like the package-level Run,
// with two additions: passes see the session's shared fact store, and
// an allow comment that names an analyzer in this run yet suppresses
// nothing is itself reported (a decorative suppression hides nothing
// today and will silently hide a regression tomorrow).
func (s *Session) Run(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	return runWithFacts(pkg, analyzers, s.facts)
}

func runWithFacts(pkg *Package, analyzers []*Analyzer, facts *factStore) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
			facts:     facts,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.PkgPath, err)
		}
		diags = append(diags, pass.diagnostics...)
	}
	// An allow may name any analyzer in the suite, not just the ones in
	// this run — running a single analyzer (as the fixture tests do) must
	// not reclassify other analyzers' suppressions as unknown names.
	known := make(map[string]bool, len(analyzers))
	ran := make(map[string]bool, len(analyzers))
	for _, a := range All() {
		known[a.Name] = true
	}
	for _, a := range analyzers {
		known[a.Name] = true
		ran[a.Name] = true
	}
	allows, bad := collectAllows(pkg.Fset, pkg.Files, known)
	diags, used := filterAllowed(pkg.Fset, diags, allows)
	for key, pos := range allows {
		if used[key] || !ran[key.analyzer] {
			continue
		}
		bad = append(bad, Diagnostic{
			Pos:      pos,
			Message:  "netlint:allow " + key.analyzer + " suppresses nothing: the finding it silenced is gone — delete the comment",
			Analyzer: AllowAnalyzerName,
		})
	}
	diags = append(diags, bad...)
	sort.SliceStable(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })
	return diags, nil
}
