package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Goroutinepurity encodes the contract the PR 3 sweep runner and the PR 2
// mat worker pool rely on for byte-identical `-workers N` output: a
// goroutine body may only publish results through index-addressed slice
// slots (`errs[i] = …`), never by mutating shared captured state, whose
// final value would depend on goroutine interleaving. Inside `go func`
// closures in internal/exp and internal/mat it flags writes where the
// target is captured from outside the closure:
//
//   - plain or compound assignment (and ++/--) to a captured variable;
//   - writes into a captured map (also a data race);
//   - writes through a captured pointer or to a field of a captured value.
//
// Indexing into a captured slice stays legal — distinctness of the indices
// is the runner's seed-hashing job, not something syntax can prove — and
// anything declared inside the closure is free game.
var Goroutinepurity = &Analyzer{
	Name: "goroutinepurity",
	Doc:  "inside go func closures, only index-addressed slice slots may be written through captures",
	Run:  runGoroutinepurity,
}

var goroutinepurityRestricted = [][]string{
	{"internal", "exp"},
	{"internal", "mat"},
}

func runGoroutinepurity(pass *Pass) error {
	restricted := false
	for _, segs := range goroutinepurityRestricted {
		if pathHasSegments(pass.Pkg.Path(), segs...) {
			restricted = true
			break
		}
	}
	if !restricted {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if g, ok := n.(*ast.GoStmt); ok {
				if lit, ok := g.Call.Fun.(*ast.FuncLit); ok {
					checkGoroutineBody(pass, lit)
				}
			}
			return true
		})
	}
	return nil
}

// checkGoroutineBody walks one goroutine closure. Nested function
// literals share the root's capture boundary (running them still happens
// on this goroutine), but a nested `go func` starts a goroutine of its
// own and is checked separately by the outer Inspect.
func checkGoroutineBody(pass *Pass, root *ast.FuncLit) {
	var walk func(n ast.Node)
	walk = func(n ast.Node) {
		ast.Inspect(n, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				if _, ok := n.Call.Fun.(*ast.FuncLit); ok {
					for _, arg := range n.Call.Args {
						walk(arg)
					}
					return false
				}
			case *ast.AssignStmt:
				if n.Tok == token.DEFINE {
					return true // := can only create or shadow, never write a capture
				}
				for _, lhs := range n.Lhs {
					checkGoroutineWrite(pass, root, lhs)
				}
			case *ast.IncDecStmt:
				checkGoroutineWrite(pass, root, n.X)
			}
			return true
		})
	}
	walk(root.Body)
}

func checkGoroutineWrite(pass *Pass, root *ast.FuncLit, lhs ast.Expr) {
	switch e := lhs.(type) {
	case *ast.Ident:
		if e.Name == "_" {
			return
		}
		obj, ok := pass.TypesInfo.ObjectOf(e).(*types.Var)
		if !ok || declaredWithin(obj, root) {
			return
		}
		pass.Reportf(e.Pos(),
			"goroutine writes captured variable %s: the final value depends on interleaving — publish through an index-addressed slice slot instead",
			e.Name)
	case *ast.IndexExpr:
		base, ok := baseIdent(e.X)
		if !ok {
			return
		}
		obj, isVar := pass.TypesInfo.ObjectOf(base).(*types.Var)
		if !isVar || declaredWithin(obj, root) {
			return
		}
		if t := pass.TypesInfo.TypeOf(e.X); t != nil {
			if _, isMap := t.Underlying().(*types.Map); isMap {
				pass.Reportf(e.Pos(),
					"goroutine writes captured map %s: concurrent map writes race and land in arrival order — collect into per-index slots and merge after the join",
					base.Name)
			}
		}
		// Captured slice/array slot: the sanctioned publishing pattern.
	case *ast.StarExpr:
		if base, ok := baseIdent(e.X); ok {
			if obj, isVar := pass.TypesInfo.ObjectOf(base).(*types.Var); isVar && !declaredWithin(obj, root) {
				pass.Reportf(e.Pos(),
					"goroutine writes through captured pointer %s: the pointee's final value depends on interleaving — use an index-addressed slice slot",
					base.Name)
			}
		}
	case *ast.SelectorExpr:
		if base, ok := baseIdent(e.X); ok {
			if obj, isVar := pass.TypesInfo.ObjectOf(base).(*types.Var); isVar && !declaredWithin(obj, root) {
				pass.Reportf(e.Pos(),
					"goroutine writes field %s of captured %s: shared-struct mutation depends on interleaving — use an index-addressed slice slot",
					e.Sel.Name, base.Name)
			}
		}
	case *ast.ParenExpr:
		checkGoroutineWrite(pass, root, e.X)
	}
}

// baseIdent returns the leftmost identifier of a selector/index/paren
// chain: x for x.a[i].b.
func baseIdent(e ast.Expr) (*ast.Ident, bool) {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x, true
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil, false
		}
	}
}
