package analysis_test

import (
	"testing"

	"netconstant/internal/analysis"
)

func TestLoaderLoad(t *testing.T) {
	l := &analysis.Loader{}
	pkgs, err := l.Load("netconstant/internal/stats")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("got %d packages, expected 1", len(pkgs))
	}
	pkg := pkgs[0]
	if pkg.PkgPath != "netconstant/internal/stats" {
		t.Errorf("PkgPath = %q", pkg.PkgPath)
	}
	if len(pkg.Files) == 0 || pkg.Types == nil || pkg.Info == nil {
		t.Errorf("package not fully loaded: files=%d types=%v", len(pkg.Files), pkg.Types)
	}
	for _, f := range pkg.Files {
		name := pkg.Fset.Position(f.Pos()).Filename
		if len(name) == 0 {
			t.Error("file with no position info")
		}
	}
}

// LoadDeps on a single package must pull in its module-internal
// dependencies, dependencies first, marked DepOnly — the order and
// marking cmd/netlint and the repo sweep below rely on.
func TestLoadDepsOrder(t *testing.T) {
	l := &analysis.Loader{}
	pkgs, err := l.LoadDeps("netconstant/internal/rpca")
	if err != nil {
		t.Fatal(err)
	}
	pos := map[string]int{}
	depOnly := map[string]bool{}
	for i, p := range pkgs {
		pos[p.PkgPath] = i
		depOnly[p.PkgPath] = p.DepOnly
	}
	rpca, ok := pos["netconstant/internal/rpca"]
	if !ok {
		t.Fatalf("requested package missing from LoadDeps result: %v", pos)
	}
	for _, dep := range []string{"netconstant/internal/mat", "netconstant/internal/cancel"} {
		i, ok := pos[dep]
		if !ok {
			t.Errorf("dependency %s not loaded", dep)
			continue
		}
		if i >= rpca {
			t.Errorf("%s at index %d does not precede rpca at %d", dep, i, rpca)
		}
		if !depOnly[dep] {
			t.Errorf("%s not marked DepOnly", dep)
		}
	}
	if depOnly["netconstant/internal/rpca"] {
		t.Error("requested package wrongly marked DepOnly")
	}
}

// The whole repo must be clean under the full suite — the in-tree twin of
// the CI lint gate, run exactly the way cmd/netlint runs it: packages in
// dependency order through one fact Session, so cross-package facts
// (hotpath annotations, gob sinks, cancellation pollers) are visible
// where they are consumed. Skipped under -short: it type-checks every
// package from source.
func TestRepoCleanUnderNetlint(t *testing.T) {
	if testing.Short() {
		t.Skip("repo-wide lint sweep skipped in -short mode")
	}
	l := &analysis.Loader{}
	pkgs, err := l.LoadDeps("netconstant/...")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 20 {
		t.Fatalf("suspiciously few packages loaded: %d", len(pkgs))
	}
	session := analysis.NewSession()
	for _, pkg := range pkgs {
		diags, err := session.Run(pkg, analysis.All())
		if err != nil {
			t.Fatal(err)
		}
		if pkg.DepOnly {
			continue
		}
		for _, d := range diags {
			t.Errorf("%s: %s (%s)", pkg.Fset.Position(d.Pos), d.Message, d.Analyzer)
		}
	}
}
