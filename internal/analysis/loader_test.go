package analysis_test

import (
	"testing"

	"netconstant/internal/analysis"
)

func TestLoaderLoad(t *testing.T) {
	l := &analysis.Loader{}
	pkgs, err := l.Load("netconstant/internal/stats")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("got %d packages, expected 1", len(pkgs))
	}
	pkg := pkgs[0]
	if pkg.PkgPath != "netconstant/internal/stats" {
		t.Errorf("PkgPath = %q", pkg.PkgPath)
	}
	if len(pkg.Files) == 0 || pkg.Types == nil || pkg.Info == nil {
		t.Errorf("package not fully loaded: files=%d types=%v", len(pkg.Files), pkg.Types)
	}
	for _, f := range pkg.Files {
		name := pkg.Fset.Position(f.Pos()).Filename
		if len(name) == 0 {
			t.Error("file with no position info")
		}
	}
}

// The whole repo must be clean under the full suite — the in-tree twin of
// the CI lint gate. Skipped under -short: it type-checks every package
// from source.
func TestRepoCleanUnderNetlint(t *testing.T) {
	if testing.Short() {
		t.Skip("repo-wide lint sweep skipped in -short mode")
	}
	l := &analysis.Loader{}
	pkgs, err := l.Load("netconstant/...")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 20 {
		t.Fatalf("suspiciously few packages loaded: %d", len(pkgs))
	}
	for _, pkg := range pkgs {
		diags, err := analysis.Run(pkg, analysis.All())
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range diags {
			t.Errorf("%s: %s (%s)", pkg.Fset.Position(d.Pos), d.Message, d.Analyzer)
		}
	}
}
