package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Journalsafe vets every type that reaches a gob journal. The resume
// guarantee (DESIGN.md §7) journals finished sweep points and figure
// tables with encoding/gob and replays them on restart; gob has two
// failure modes that compile fine and corrupt that guarantee quietly:
//
//   - unexported struct fields are silently skipped, so a resumed run
//     restores zero values where the original run had data;
//   - chan and func fields make Encode fail at runtime — in this repo
//     that means mid-campaign, hours in;
//   - map fields encode in random iteration order, so the journal bytes
//     for identical results differ run to run and byte-level journal
//     comparison (the cheapest corruption check) is impossible.
//
// The analyzer finds the journaled root types by following values into
// gob, not by annotation. A direct `gob.NewEncoder(w).Encode(v)` (or
// Decode) roots v's static type. A function that forwards a parameter
// into a sink — exp's gobEncode(v any) wrapper, the generic
// sweepPoints whose pts slots are journaled per point — becomes a sink
// in that parameter position itself, computed by intra-package fixpoint
// and exported as a GobSinkFact so cross-package callers are checked
// too. At every sink call site the non-parameter argument's type is the
// journaled root; the type and everything reachable from it through
// pointers, slices, arrays and struct fields must be stable: exported
// fields only, no maps, no chans, no funcs. Types providing their own
// encoding (GobEncode/MarshalBinary) are opaque and trusted.
//
// Type-parameter roots (inside a generic sink like sweepPoints) are
// skipped where unresolved; the concrete element types are checked at
// the generic's own call sites, where the argument types are concrete.
var Journalsafe = &Analyzer{
	Name: "journalsafe",
	Doc:  "types reachable from gob journal writes must be gob-stable: exported fields only, no map/chan/func fields",
	Run:  runJournalsafe,
}

// GobSinkFact marks a function that forwards some of its parameters into
// a gob Encode/Decode, directly or transitively. Params lists the
// 0-based indices of the forwarded parameters.
type GobSinkFact struct {
	Params []int
}

// AFact marks GobSinkFact as a Fact.
func (*GobSinkFact) AFact() {}

func runJournalsafe(pass *Pass) error {
	c := &journalChecker{
		pass:  pass,
		sinks: map[*types.Func]map[int]bool{},
		decls: map[*types.Func]*ast.FuncDecl{},
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
				c.decls[obj] = fd
			}
		}
	}
	// Fixpoint: forwarding a parameter into a known sink makes the
	// forwarder a sink, which may reveal further forwarders.
	for changed := true; changed; {
		changed = false
		for obj, fd := range c.decls {
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				for _, argIdx := range c.sinkArgIndices(call) {
					if argIdx >= len(call.Args) {
						continue
					}
					pi := c.paramIndexOf(fd, call.Args[argIdx])
					if pi < 0 {
						continue
					}
					if c.sinks[obj] == nil {
						c.sinks[obj] = map[int]bool{}
					}
					if !c.sinks[obj][pi] {
						c.sinks[obj][pi] = true
						changed = true
					}
				}
				return true
			})
		}
	}
	for obj, params := range c.sinks {
		idx := make([]int, 0, len(params))
		for i := range params {
			idx = append(idx, i)
		}
		sort.Ints(idx)
		pass.ExportObjectFact(obj, &GobSinkFact{Params: idx})
	}
	// Second walk: every sink-position argument that is NOT a forwarded
	// parameter roots a journaled type — check it.
	for _, fd := range c.decls {
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			for _, argIdx := range c.sinkArgIndices(call) {
				if argIdx >= len(call.Args) {
					continue
				}
				arg := call.Args[argIdx]
				if c.paramIndexOf(fd, arg) >= 0 {
					continue // checked at this function's own call sites
				}
				c.checkRoot(arg)
			}
			return true
		})
	}
	return nil
}

type journalChecker struct {
	pass  *Pass
	sinks map[*types.Func]map[int]bool
	decls map[*types.Func]*ast.FuncDecl
}

// sinkArgIndices returns the argument positions of call whose values
// reach a gob journal: position 0 for a direct (*gob.Encoder).Encode /
// (*gob.Decoder).Decode call, and the sink parameter positions of a
// callee known — locally or by imported fact — to forward them.
func (c *journalChecker) sinkArgIndices(call *ast.CallExpr) []int {
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok &&
		(sel.Sel.Name == "Encode" || sel.Sel.Name == "Decode") {
		if obj, ok := c.pass.TypesInfo.Uses[sel.Sel].(*types.Func); ok &&
			obj.Pkg() != nil && obj.Pkg().Path() == "encoding/gob" {
			return []int{0}
		}
	}
	var obj *types.Func
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		obj, _ = c.pass.TypesInfo.Uses[fun].(*types.Func)
	case *ast.SelectorExpr:
		obj, _ = c.pass.TypesInfo.Uses[fun.Sel].(*types.Func)
	}
	if obj == nil {
		return nil
	}
	if params, ok := c.sinks[obj]; ok {
		idx := make([]int, 0, len(params))
		for i := range params {
			idx = append(idx, i)
		}
		sort.Ints(idx)
		return idx
	}
	var fact GobSinkFact
	if c.pass.ImportObjectFact(obj, &fact) {
		return fact.Params
	}
	return nil
}

// paramIndexOf reports which parameter of fd the expression e is rooted
// in (unwrapping &x, x[i], x[a:b] and parentheses), or -1.
func (c *journalChecker) paramIndexOf(fd *ast.FuncDecl, e ast.Expr) int {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.UnaryExpr:
			if x.Op != token.AND {
				return -1
			}
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.Ident:
			obj := c.pass.TypesInfo.Uses[x]
			if obj == nil {
				return -1
			}
			i := 0
			for _, field := range fd.Type.Params.List {
				for _, name := range field.Names {
					if c.pass.TypesInfo.Defs[name] == obj {
						return i
					}
					i++
				}
				if len(field.Names) == 0 {
					i++
				}
			}
			return -1
		default:
			return -1
		}
	}
}

// checkRoot verifies the gob-stability of the type journaled by arg,
// reporting at arg's position.
func (c *journalChecker) checkRoot(arg ast.Expr) {
	t := c.pass.TypesInfo.TypeOf(arg)
	if t == nil {
		return
	}
	w := &stabilityWalk{c: c, pos: arg.Pos(), root: t.String(), seen: map[types.Type]bool{}}
	w.walk(t, "")
}

type stabilityWalk struct {
	c    *journalChecker
	pos  token.Pos
	root string
	seen map[types.Type]bool
}

func (w *stabilityWalk) reportf(path, format string, args ...any) {
	at := w.root
	if path != "" {
		at += " (field " + path + ")"
	}
	w.c.pass.Reportf(w.pos, "journaled type %s "+format, append([]any{at}, args...)...)
}

// hasOwnEncoding reports whether t (or *t) provides GobEncode or
// MarshalBinary: such types control their own wire form and their
// unexported internals are fine.
func hasOwnEncoding(t types.Type) bool {
	for _, name := range []string{"GobEncode", "MarshalBinary"} {
		for _, recv := range []types.Type{t, types.NewPointer(t)} {
			if m, _, _ := types.LookupFieldOrMethod(recv, true, nil, name); m != nil {
				if _, ok := m.(*types.Func); ok {
					return true
				}
			}
		}
	}
	return false
}

func (w *stabilityWalk) walk(t types.Type, path string) {
	if w.seen[t] {
		return
	}
	w.seen[t] = true
	switch u := t.Underlying().(type) {
	case *types.Pointer:
		w.walk(u.Elem(), path)
	case *types.Slice:
		w.walk(u.Elem(), path)
	case *types.Array:
		w.walk(u.Elem(), path)
	case *types.Map:
		w.reportf(path, "contains a map (%s): gob encodes maps in random iteration order, so journal bytes are irreproducible — journal a sorted slice instead", t.String())
	case *types.Chan:
		w.reportf(path, "contains a chan (%s): gob.Encode fails on it at runtime, mid-campaign", t.String())
	case *types.Signature:
		w.reportf(path, "contains a func value (%s): gob.Encode fails on it at runtime, mid-campaign", t.String())
	case *types.Struct:
		if hasOwnEncoding(t) {
			return
		}
		for i := 0; i < u.NumFields(); i++ {
			f := u.Field(i)
			fpath := f.Name()
			if path != "" {
				fpath = path + "." + f.Name()
			}
			if !f.Exported() {
				w.reportf(fpath, "has unexported field %s: gob silently drops it, so a resumed run restores a zero value", f.Name())
				continue
			}
			w.walk(f.Type(), fpath)
		}
	}
}
