package analysis

import (
	"go/ast"
	"go/token"
	"strconv"
	"strings"
)

// AllowPrefix is the suppression comment marker. A well-formed comment is
//
//	//netlint:allow <analyzer> <reason...>
//
// and silences diagnostics of exactly that analyzer on the comment's own
// line and on the line immediately below it (so it can sit at the end of
// the offending line or on its own line directly above). The reason is
// mandatory: an unexplained suppression is itself a finding.
const AllowPrefix = "//netlint:allow"

// AllowAnalyzerName tags diagnostics about the suppression comments
// themselves (malformed, missing reason, unknown analyzer). These cannot
// be suppressed.
const AllowAnalyzerName = "netlint-allow"

// allowKey identifies one (file, line, analyzer) suppression.
type allowKey struct {
	file     string
	line     int
	analyzer string
}

// collectAllows scans the comment maps of files for AllowPrefix comments.
// known maps valid analyzer names; an allow naming anything else, or
// lacking a reason, is returned as a diagnostic instead of a suppression.
// The map value is the comment's position, so an allow that suppresses
// nothing can be reported where it stands.
func collectAllows(fset *token.FileSet, files []*ast.File, known map[string]bool) (map[allowKey]token.Pos, []Diagnostic) {
	allows := map[allowKey]token.Pos{}
	var bad []Diagnostic
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := c.Text
				if !strings.HasPrefix(text, AllowPrefix) {
					continue
				}
				rest := strings.TrimPrefix(text, AllowPrefix)
				if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
					// e.g. //netlint:allowed — not ours.
					continue
				}
				fields := strings.Fields(rest)
				switch {
				case len(fields) == 0:
					bad = append(bad, Diagnostic{
						Pos:      c.Pos(),
						Message:  "malformed netlint:allow: missing analyzer name and reason",
						Analyzer: AllowAnalyzerName,
					})
					continue
				case !known[fields[0]]:
					bad = append(bad, Diagnostic{
						Pos:      c.Pos(),
						Message:  "netlint:allow names unknown analyzer " + strconv.Quote(fields[0]),
						Analyzer: AllowAnalyzerName,
					})
					continue
				case len(fields) < 2:
					bad = append(bad, Diagnostic{
						Pos:      c.Pos(),
						Message:  "netlint:allow " + fields[0] + " needs a reason",
						Analyzer: AllowAnalyzerName,
					})
					continue
				}
				pos := fset.Position(c.Pos())
				allows[allowKey{pos.Filename, pos.Line, fields[0]}] = c.Pos()
			}
		}
	}
	return allows, bad
}

// filterAllowed drops diagnostics covered by an allow on the same line or
// the line above, and reports which allows earned their keep.
func filterAllowed(fset *token.FileSet, diags []Diagnostic, allows map[allowKey]token.Pos) ([]Diagnostic, map[allowKey]bool) {
	used := map[allowKey]bool{}
	if len(allows) == 0 {
		return diags, used
	}
	kept := diags[:0]
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		same := allowKey{pos.Filename, pos.Line, d.Analyzer}
		above := allowKey{pos.Filename, pos.Line - 1, d.Analyzer}
		if _, ok := allows[same]; ok {
			used[same] = true
			continue
		}
		if _, ok := allows[above]; ok {
			used[above] = true
			continue
		}
		kept = append(kept, d)
	}
	return kept, used
}
