package analysis

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// A Package is one loaded, type-checked package ready for analysis.
type Package struct {
	PkgPath string
	Dir     string
	Fset    *token.FileSet
	Files   []*ast.File
	Types   *types.Package
	Info    *types.Info
}

// A Loader parses and type-checks packages from source. All packages
// loaded through one Loader share a FileSet and an importer, so a
// dependency is type-checked at most once per Loader.
//
// Dependencies (standard library and intra-module alike) are resolved by
// go/importer's source compiler, which shells out to the go command for
// module-path resolution; the Loader therefore needs a working directory
// inside the target module. No compiled export data and no network are
// required.
type Loader struct {
	// Dir is the directory `go list` runs in; it must be inside the
	// module whose packages are being loaded. Empty means the process
	// working directory.
	Dir string

	fset *token.FileSet
	imp  types.Importer
}

func (l *Loader) init() {
	if l.fset == nil {
		l.fset = token.NewFileSet()
		l.imp = importer.ForCompiler(l.fset, "source", nil)
	}
}

// goListPkg is the subset of `go list -json` output the loader consumes.
type goListPkg struct {
	ImportPath string
	Dir        string
	Name       string
	GoFiles    []string
}

// Load expands the go-list patterns (e.g. "./...") and returns the matched
// packages, parsed with comments and fully type-checked. Test files are
// excluded: the invariants netlint enforces are about shipped code, and
// tests legitimately compare floats exactly or measure wall-clock time.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	l.init()
	args := append([]string{"list", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = l.Dir
	cmd.Stderr = os.Stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %w", strings.Join(patterns, " "), err)
	}
	var metas []goListPkg
	dec := json.NewDecoder(strings.NewReader(string(out)))
	for dec.More() {
		var m goListPkg
		if err := dec.Decode(&m); err != nil {
			return nil, fmt.Errorf("decoding go list output: %w", err)
		}
		metas = append(metas, m)
	}
	sort.Slice(metas, func(i, j int) bool { return metas[i].ImportPath < metas[j].ImportPath })
	pkgs := make([]*Package, 0, len(metas))
	for _, m := range metas {
		if len(m.GoFiles) == 0 {
			continue
		}
		files := make([]string, len(m.GoFiles))
		for i, f := range m.GoFiles {
			files[i] = filepath.Join(m.Dir, f)
		}
		pkg, err := l.check(m.ImportPath, m.Dir, files)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// CheckDir type-checks every non-test .go file in dir as a package with
// import path pkgPath. The path matters: path-restricted analyzers
// (determinism, goroutinepurity) key off it, so fixtures under
// testdata/src/internal/exp can exercise the restricted behaviour without
// living in the real package.
func (l *Loader) CheckDir(dir, pkgPath string) (*Package, error) {
	l.init()
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range ents {
		n := e.Name()
		if e.IsDir() || !strings.HasSuffix(n, ".go") || strings.HasSuffix(n, "_test.go") {
			continue
		}
		files = append(files, filepath.Join(dir, n))
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no .go files in %s", dir)
	}
	sort.Strings(files)
	return l.check(pkgPath, dir, files)
}

func (l *Loader) check(pkgPath, dir string, filenames []string) (*Package, error) {
	syntax := make([]*ast.File, 0, len(filenames))
	for _, fn := range filenames {
		f, err := parser.ParseFile(l.fset, fn, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		syntax = append(syntax, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: l.imp}
	tpkg, err := conf.Check(pkgPath, l.fset, syntax, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %w", pkgPath, err)
	}
	return &Package{
		PkgPath: pkgPath,
		Dir:     dir,
		Fset:    l.fset,
		Files:   syntax,
		Types:   tpkg,
		Info:    info,
	}, nil
}
