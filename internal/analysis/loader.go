package analysis

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// A Package is one loaded, type-checked package ready for analysis.
type Package struct {
	PkgPath string
	Dir     string
	Fset    *token.FileSet
	Files   []*ast.File
	Types   *types.Package
	Info    *types.Info

	// DepOnly marks a package LoadDeps pulled in solely because a
	// requested package imports it. It is analyzed (its facts feed the
	// requested packages) but callers normally suppress its diagnostics:
	// the user did not ask about it.
	DepOnly bool
}

// A Loader parses and type-checks packages from source. All packages
// loaded through one Loader share a FileSet and an importer, so a
// dependency is type-checked at most once per Loader.
//
// Every package the Loader itself checks — via Load, LoadDeps, or
// CheckDir — is registered in an internal cache that the importer
// consults first. Two things follow. First, a module-internal package is
// type-checked exactly once, and the *types.Package a dependent sees for
// an import is the same instance the analyzers saw, so facts keyed by
// types.Object propagate across packages (see Session). Second, CheckDir
// fixtures can import other fixtures loaded earlier through the same
// Loader, which is how the analysistest chain fixtures exercise
// cross-package fact flow without living in the real module.
//
// Remaining dependencies (the standard library, or module packages not
// loaded explicitly) are resolved by go/importer's source compiler,
// which shells out to the go command for module-path resolution; the
// Loader therefore needs a working directory inside the target module.
// No compiled export data and no network are required.
type Loader struct {
	// Dir is the directory `go list` runs in; it must be inside the
	// module whose packages are being loaded. Empty means the process
	// working directory.
	Dir string

	fset     *token.FileSet
	source   types.Importer
	loaded   map[string]*types.Package
	pkgCache map[string]*Package
}

func (l *Loader) init() {
	if l.fset == nil {
		l.fset = token.NewFileSet()
		l.source = importer.ForCompiler(l.fset, "source", nil)
		l.loaded = map[string]*types.Package{}
	}
}

// Import implements types.Importer: cache first, source importer second.
func (l *Loader) Import(path string) (*types.Package, error) {
	if p, ok := l.loaded[path]; ok {
		return p, nil
	}
	return l.source.Import(path)
}

// goListPkg is the subset of `go list -json` output the loader consumes.
type goListPkg struct {
	ImportPath string
	Dir        string
	Name       string
	GoFiles    []string
	Imports    []string
	Standard   bool
}

// ErrImportCycle is the sentinel matched by *CycleError.
var ErrImportCycle = fmt.Errorf("import cycle")

// A CycleError reports that the package import graph handed to the
// dependency-ordered loader is not a DAG. The go compiler rejects
// cyclic imports, so seeing one means the metadata itself is broken
// (or hand-built, as in tests); either way analysis order would be
// meaningless and the loader refuses.
type CycleError struct {
	// Cycle lists the import paths of every package on at least one
	// cycle, sorted.
	Cycle []string
}

func (e *CycleError) Error() string {
	return "import cycle among: " + strings.Join(e.Cycle, " -> ")
}

// Is makes errors.Is(err, ErrImportCycle) match.
func (e *CycleError) Is(target error) bool { return target == ErrImportCycle }

// goList runs `go list -json` with the given extra flags and patterns.
func (l *Loader) goList(extra []string, patterns []string) ([]goListPkg, error) {
	args := append([]string{"list", "-json"}, extra...)
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = l.Dir
	cmd.Stderr = os.Stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %w", strings.Join(patterns, " "), err)
	}
	var metas []goListPkg
	dec := json.NewDecoder(strings.NewReader(string(out)))
	for dec.More() {
		var m goListPkg
		if err := dec.Decode(&m); err != nil {
			return nil, fmt.Errorf("decoding go list output: %w", err)
		}
		metas = append(metas, m)
	}
	return metas, nil
}

// topoSortPackages orders metas dependencies-first: a package appears
// after every package it imports that is itself in metas (imports that
// resolve outside the set — the standard library, unloaded module
// packages — impose no constraint). Ties are broken by import path, so
// the order is deterministic. A cycle within the set returns a typed
// *CycleError naming the packages involved.
func topoSortPackages(metas []goListPkg) ([]goListPkg, error) {
	byPath := make(map[string]int, len(metas))
	for i, m := range metas {
		byPath[m.ImportPath] = i
	}
	indeg := make([]int, len(metas))
	dependents := make([][]int, len(metas))
	for i, m := range metas {
		for _, imp := range m.Imports {
			j, ok := byPath[imp]
			if !ok || j == i {
				continue
			}
			indeg[i]++
			dependents[j] = append(dependents[j], i)
		}
	}
	// Kahn's algorithm with a sorted ready set for determinism.
	var ready []int
	for i, d := range indeg {
		if d == 0 {
			ready = append(ready, i)
		}
	}
	sortByPath := func(idx []int) {
		sort.Slice(idx, func(a, b int) bool {
			return metas[idx[a]].ImportPath < metas[idx[b]].ImportPath
		})
	}
	sortByPath(ready)
	out := make([]goListPkg, 0, len(metas))
	for len(ready) > 0 {
		i := ready[0]
		ready = ready[1:]
		out = append(out, metas[i])
		var freed []int
		for _, dep := range dependents[i] {
			indeg[dep]--
			if indeg[dep] == 0 {
				freed = append(freed, dep)
			}
		}
		sortByPath(freed)
		ready = append(ready, freed...)
	}
	if len(out) < len(metas) {
		var cyc []string
		for i, d := range indeg {
			if d > 0 {
				cyc = append(cyc, metas[i].ImportPath)
			}
		}
		sort.Strings(cyc)
		return nil, &CycleError{Cycle: cyc}
	}
	return out, nil
}

// Load expands the go-list patterns (e.g. "./...") and returns the
// matched packages, parsed with comments and fully type-checked, in
// dependency order (a package follows everything it imports from the
// same result set). Test files are excluded: the invariants netlint
// enforces are about shipped code, and tests legitimately compare floats
// exactly or measure wall-clock time.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	metas, err := l.goList(nil, patterns)
	if err != nil {
		return nil, err
	}
	return l.checkMetas(metas, nil)
}

// LoadDeps is Load plus the transitive module-internal dependencies of
// the matched packages: every non-standard-library dependency is loaded
// and returned too, marked DepOnly, so analyzers that consume facts see
// every definer before its users even when the patterns name a single
// package. Standard-library packages are never analyzed.
func (l *Loader) LoadDeps(patterns ...string) ([]*Package, error) {
	requested, err := l.goList(nil, patterns)
	if err != nil {
		return nil, err
	}
	metas, err := l.goList([]string{"-deps"}, patterns)
	if err != nil {
		return nil, err
	}
	want := make(map[string]bool, len(requested))
	for _, m := range requested {
		want[m.ImportPath] = true
	}
	kept := metas[:0]
	for _, m := range metas {
		if !m.Standard {
			kept = append(kept, m)
		}
	}
	return l.checkMetas(kept, want)
}

// checkMetas topo-sorts metas and type-checks each in order. requested,
// when non-nil, marks every package not in it DepOnly.
func (l *Loader) checkMetas(metas []goListPkg, requested map[string]bool) ([]*Package, error) {
	l.init()
	ordered, err := topoSortPackages(metas)
	if err != nil {
		return nil, err
	}
	pkgs := make([]*Package, 0, len(ordered))
	for _, m := range ordered {
		if len(m.GoFiles) == 0 {
			continue
		}
		files := make([]string, len(m.GoFiles))
		for i, f := range m.GoFiles {
			files[i] = filepath.Join(m.Dir, f)
		}
		pkg, err := l.check(m.ImportPath, m.Dir, files)
		if err != nil {
			return nil, err
		}
		pkg.DepOnly = requested != nil && !requested[m.ImportPath]
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// CheckDir type-checks every non-test .go file in dir as a package with
// import path pkgPath. The path matters: path-restricted analyzers
// (determinism, goroutinepurity, cancelflow, layering) key off it, so
// fixtures under testdata/src/internal/exp can exercise the restricted
// behaviour without living in the real package. The checked package is
// registered in the Loader's importer cache under pkgPath, so a fixture
// loaded later through the same Loader may import it.
func (l *Loader) CheckDir(dir, pkgPath string) (*Package, error) {
	l.init()
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range ents {
		n := e.Name()
		if e.IsDir() || !strings.HasSuffix(n, ".go") || strings.HasSuffix(n, "_test.go") {
			continue
		}
		files = append(files, filepath.Join(dir, n))
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no .go files in %s", dir)
	}
	sort.Strings(files)
	return l.check(pkgPath, dir, files)
}

func (l *Loader) check(pkgPath, dir string, filenames []string) (*Package, error) {
	if p, ok := l.pkgCache[pkgPath]; ok && p.Dir == dir {
		// Already checked through this Loader (e.g. listed by two
		// overlapping patterns, or LoadDeps after Load). Re-checking
		// would mint a second *types.Package and split object identity.
		return p, nil
	}
	syntax := make([]*ast.File, 0, len(filenames))
	for _, fn := range filenames {
		f, err := parser.ParseFile(l.fset, fn, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		syntax = append(syntax, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Instances:  map[*ast.Ident]types.Instance{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(pkgPath, l.fset, syntax, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %w", pkgPath, err)
	}
	pkg := &Package{
		PkgPath: pkgPath,
		Dir:     dir,
		Fset:    l.fset,
		Files:   syntax,
		Types:   tpkg,
		Info:    info,
	}
	l.loaded[pkgPath] = tpkg
	if l.pkgCache == nil {
		l.pkgCache = map[string]*Package{}
	}
	l.pkgCache[pkgPath] = pkg
	return pkg, nil
}
