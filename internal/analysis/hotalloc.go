package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Hotalloc keeps the per-iteration hot paths allocation-free. The RPCA
// solver steps, the mat arena kernels, and simnet's refill/routing inner
// loops run millions of times per experiment; PR 7 and PR 8 bought their
// speedups precisely by hoisting every allocation out of them into
// arenas and reusable scratch ("Allocation-free after arena binding").
// Nothing enforced that property: one convenient append or fmt.Sprintf
// in a later diff would silently reintroduce per-iteration garbage and
// the benchmarks would only notice long after review.
//
// A function opts in by carrying the marker line
//
//	//netlint:hotpath
//
// in its doc comment. Inside an annotated body the allocating constructs
// are findings:
//
//   - make and new
//   - append whose destination is not capacity-hinted — reset earlier in
//     the same body via `x = x[:0]` (or `x := y[:0]`, or appending to
//     `x[:0]` directly, or `x = make([]T, 0, n)`), the arena-reuse idiom
//     the fill and routing scratch already follow
//   - map and slice composite literals (struct and array literals are
//     allowed: value structs stay on the stack and &task{...} is the
//     pool-dispatch idiom, a single escaping header per parallel launch)
//   - closure literals and go statements
//   - any fmt call (Sprintf and friends allocate; error paths that
//     genuinely need one carry an allow naming the reason)
//   - a float-slice argument passed in an interface-typed parameter slot
//     (the box escapes)
//
// Calls are where facts come in. A same-package callee is visible in the
// same review unit and is trusted. A module-internal callee from another
// package is opaque at review time, so it must itself be annotated:
// hotalloc exports a HotpathFact for every annotated function, and a
// cross-package call whose callee lacks the fact is a finding. That is
// how (*apgIter).step may call mat.MomentumInto (annotated, proven
// clean) while a call to some future mat helper that allocates would be
// rejected until the helper is annotated — and thereby checked — too.
// Non-module callees (the standard library) and interface-method calls
// are outside the property and are not checked.
var Hotalloc = &Analyzer{
	Name: "hotalloc",
	Doc:  "//netlint:hotpath functions must be free of allocating constructs; cross-package callees must be hotpath-annotated",
	Run:  runHotalloc,
}

// HotpathFact marks a function annotated //netlint:hotpath, and therefore
// checked allocation-free by this analyzer in its defining package.
// Downstream packages consume it to validate their own hotpath calls.
type HotpathFact struct{}

// AFact marks HotpathFact as a Fact.
func (*HotpathFact) AFact() {}

// hotpathMarker is the annotation line looked for in doc comments.
const hotpathMarker = "//netlint:hotpath"

func isHotpathAnnotated(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if c.Text == hotpathMarker {
			return true
		}
	}
	return false
}

func runHotalloc(pass *Pass) error {
	// Export facts for every annotated function first, so that a
	// same-package consumer analyzed in the same pass — and every
	// downstream package in the session — sees the full set.
	var annotated []*ast.FuncDecl
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !isHotpathAnnotated(fd) {
				continue
			}
			if obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
				pass.ExportObjectFact(obj, &HotpathFact{})
			}
			annotated = append(annotated, fd)
		}
	}
	for _, fd := range annotated {
		(&hotallocChecker{pass: pass, fn: fd}).check()
	}
	return nil
}

type hotallocChecker struct {
	pass   *Pass
	fn     *ast.FuncDecl
	hinted map[string]bool
}

func (c *hotallocChecker) reportf(pos token.Pos, format string, args ...any) {
	args = append([]any{c.fn.Name.Name}, args...)
	c.pass.Reportf(pos, "%s is //netlint:hotpath but "+format, args...)
}

// isCapHint reports whether e is a capacity-reuse expression: a reslice
// to zero length (`x[:0]`) or a `make([]T, 0, n)` that pre-sizes the
// backing array. Assigning one to a variable licenses appends to it.
func isCapHint(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.SliceExpr:
		if e.Slice3 {
			return false
		}
		lit, ok := e.High.(*ast.BasicLit)
		return ok && lit.Value == "0"
	case *ast.CallExpr:
		if id, ok := e.Fun.(*ast.Ident); ok && id.Name == "make" && len(e.Args) == 3 {
			lit, ok := e.Args[1].(*ast.BasicLit)
			return ok && lit.Value == "0"
		}
	}
	return false
}

// collectHints records every variable the body resets to zero length,
// keyed by expression text so `s.fillCap = s.fillCap[:0]` hints the
// later `append(s.fillCap, …)`.
func (c *hotallocChecker) collectHints() {
	c.hinted = map[string]bool{}
	ast.Inspect(c.fn.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			if isCapHint(rhs) {
				c.hinted[types.ExprString(as.Lhs[i])] = true
			}
		}
		return true
	})
}

func (c *hotallocChecker) check() {
	c.collectHints()
	ast.Inspect(c.fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			c.reportf(n.Pos(), "builds a closure: the header and captures escape per call")
			return false // constructs inside are subsumed by this finding
		case *ast.GoStmt:
			c.reportf(n.Pos(), "spawns a goroutine: hand work to the mat pool instead")
			return false
		case *ast.CompositeLit:
			switch c.pass.TypesInfo.TypeOf(n).Underlying().(type) {
			case *types.Map:
				c.reportf(n.Pos(), "builds a map literal")
			case *types.Slice:
				c.reportf(n.Pos(), "builds a slice literal")
			}
		case *ast.CallExpr:
			c.checkCall(n)
		}
		return true
	})
}

func (c *hotallocChecker) checkCall(call *ast.CallExpr) {
	// Builtins: make/new allocate; append only with a capacity hint.
	if id, ok := call.Fun.(*ast.Ident); ok {
		if _, isBuiltin := c.pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin {
			switch id.Name {
			case "make", "new":
				c.reportf(call.Pos(), "allocates with %s", id.Name)
			case "append":
				if len(call.Args) > 0 && !isCapHint(call.Args[0]) &&
					!c.hinted[types.ExprString(call.Args[0])] {
					c.reportf(call.Pos(), "appends to %s without a capacity hint: reset it with x = x[:0] first (arena reuse) or justify the growth",
						types.ExprString(call.Args[0]))
				}
			}
			return
		}
	}
	if pkg, fn, ok := pkgFuncCall(c.pass.TypesInfo, call); ok && pkg == "fmt" {
		c.reportf(call.Pos(), "calls fmt.%s, which allocates its result and boxes its operands", fn)
		return
	}
	c.checkBoxing(call)
	c.checkCallee(call)
}

// checkBoxing flags a float-slice argument landing in an interface-typed
// parameter slot: the conversion heap-boxes the slice header per call.
func (c *hotallocChecker) checkBoxing(call *ast.CallExpr) {
	sig, ok := c.pass.TypesInfo.TypeOf(call.Fun).(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		pi := i
		if sig.Variadic() && pi >= params.Len() {
			pi = params.Len() - 1
		}
		if pi >= params.Len() {
			continue
		}
		pt := params.At(pi).Type()
		if sig.Variadic() && pi == params.Len()-1 && !call.Ellipsis.IsValid() {
			if s, ok := pt.Underlying().(*types.Slice); ok {
				pt = s.Elem()
			}
		}
		if !types.IsInterface(pt) {
			continue
		}
		if s, ok := c.pass.TypesInfo.TypeOf(arg).Underlying().(*types.Slice); ok && isFloat(s.Elem()) {
			c.reportf(arg.Pos(), "boxes a float slice into an interface parameter of %s", calleeName(call))
		}
	}
}

// checkCallee enforces the cross-package rule: a module-internal callee
// from another package must carry a HotpathFact.
func (c *hotallocChecker) checkCallee(call *ast.CallExpr) {
	var obj *types.Func
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		obj, _ = c.pass.TypesInfo.Uses[fun].(*types.Func)
	case *ast.SelectorExpr:
		obj, _ = c.pass.TypesInfo.Uses[fun.Sel].(*types.Func)
	}
	if obj == nil || obj.Pkg() == nil || obj.Pkg() == c.pass.Pkg {
		return
	}
	if !pathHasSegments(obj.Pkg().Path(), "internal") && obj.Pkg().Path() != "netconstant" {
		return // stdlib and other non-module callees: outside the property
	}
	if sig := objSignature(obj); sig != nil && sig.Recv() != nil && types.IsInterface(sig.Recv().Type()) {
		return // interface dispatch: the implementation is not statically known
	}
	var fact HotpathFact
	if c.pass.ImportObjectFact(obj, &fact) {
		return
	}
	c.reportf(call.Pos(), "calls %s.%s, which is not //netlint:hotpath: annotate (and thereby check) the callee, or justify the call",
		obj.Pkg().Name(), obj.Name())
}
