package analysis

// All returns the netlint suite in reporting order.
func All() []*Analyzer {
	return []*Analyzer{Determinism, Floatsafe, Checkederr, Goroutinepurity}
}
