package analysis

// All returns the netlint suite in reporting order. Run the suite over
// packages in dependency order through one Session: cancelflow, hotalloc
// and journalsafe export facts about a package's functions that their
// downstream checks consume.
func All() []*Analyzer {
	return []*Analyzer{
		Determinism, Floatsafe, Checkederr, Goroutinepurity,
		Cancelflow, Layering, Hotalloc, Journalsafe, Exitcode,
	}
}
