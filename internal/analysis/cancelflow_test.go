package analysis_test

import (
	"testing"

	"netconstant/internal/analysis"
	"netconstant/internal/analysis/analysistest"
)

// The fixture lives under a restricted path (internal/exp), so all three
// rules fire: fabricated roots, dropped handles, non-polling loops.
func TestCancelflow(t *testing.T) {
	analysistest.Run(t, "testdata", "cancelflow/internal/exp", analysis.Cancelflow)
}

// The three-package chain: src.Wait polls directly, mid.Pump inherits
// the fact by calling it, and exp's unbounded loops are judged by facts
// imported from two hops away. Only the chain run in dependency order
// through one Session makes the clean loop clean.
func TestCancelflowFactChain(t *testing.T) {
	analysistest.RunDeps(t, "testdata", []string{
		"cancelchain/internal/src",
		"cancelchain/internal/mid",
		"cancelchain/internal/exp",
	}, analysis.Cancelflow)
}
