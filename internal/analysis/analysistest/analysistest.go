// Package analysistest drives netlint analyzers over fixture packages, in
// the style of golang.org/x/tools/go/analysis/analysistest: fixture files
// under testdata/src/<pkgpath>/ annotate the lines where a diagnostic is
// expected with
//
//	// want "regexp"
//
// (one or more quoted or backquoted regexps per comment). Run loads the
// fixture as a package whose import path is <pkgpath> — which is how
// fixtures under testdata/src/internal/exp exercise the path-restricted
// analyzers — applies the analyzers including //netlint:allow filtering,
// and fails the test on any unexpected diagnostic or unmatched
// expectation.
package analysistest

import (
	"fmt"
	"go/token"
	"path/filepath"
	"regexp"
	"sync"
	"testing"

	"netconstant/internal/analysis"
)

// The loader is shared across all tests in the process: packages loaded
// through one Loader share the importer, so the standard library is
// type-checked once, not once per fixture.
var (
	loaderMu sync.Mutex
	loader   = &analysis.Loader{}
)

// Run checks the analyzers against the fixture package at
// testdata/src/<pkgpath>. Pass every analyzer whose diagnostics the
// fixture annotates: suppression fixtures, for example, need the
// suppressed analyzer and a control analyzer in the same run.
func Run(t *testing.T, testdata, pkgpath string, analyzers ...*analysis.Analyzer) {
	t.Helper()
	RunDeps(t, testdata, []string{pkgpath}, analyzers...)
}

// RunDeps checks the analyzers against a dependency-ordered chain of
// fixture packages, threading one fact Session through every pass the
// way cmd/netlint does over the real module: facts exported while
// analyzing an earlier fixture are visible to later ones, and a fixture
// may import any fixture that precedes it in pkgpaths (the Loader's
// importer cache resolves the fake import paths). `// want` expectations
// are checked in every fixture of the chain.
func RunDeps(t *testing.T, testdata string, pkgpaths []string, analyzers ...*analysis.Analyzer) {
	t.Helper()
	loaderMu.Lock()
	defer loaderMu.Unlock()

	session := analysis.NewSession()
	for _, pkgpath := range pkgpaths {
		dir := filepath.Join(testdata, "src", filepath.FromSlash(pkgpath))
		pkg, err := loader.CheckDir(dir, pkgpath)
		if err != nil {
			t.Fatalf("loading fixture %s: %v", pkgpath, err)
		}
		diags, err := session.Run(pkg, analyzers)
		if err != nil {
			t.Fatalf("running analyzers on %s: %v", pkgpath, err)
		}

		wants := collectWants(t, pkg)
		for _, d := range diags {
			pos := pkg.Fset.Position(d.Pos)
			key := lineKey{pos.Filename, pos.Line}
			if !matchWant(wants[key], d.Message) {
				t.Errorf("%s: unexpected diagnostic: %s (%s)", pos, d.Message, d.Analyzer)
			}
		}
		for key, ws := range wants {
			for _, w := range ws {
				if !w.matched {
					t.Errorf("%s:%d: no diagnostic matching %q", key.file, key.line, w.re.String())
				}
			}
		}
	}
}

type lineKey struct {
	file string
	line int
}

type want struct {
	re      *regexp.Regexp
	matched bool
}

// wantRE pulls the quoted or backquoted expectation strings out of a
// `// want ...` comment.
var (
	wantMarker = regexp.MustCompile(`//\s*want\s+(.*)$`)
	wantString = regexp.MustCompile("`([^`]*)`|\"((?:[^\"\\\\]|\\\\.)*)\"")
)

func collectWants(t *testing.T, pkg *analysis.Package) map[lineKey][]*want {
	t.Helper()
	wants := map[lineKey][]*want{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantMarker.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				key := lineKey{pos.Filename, pos.Line}
				for _, sm := range wantString.FindAllStringSubmatch(m[1], -1) {
					pat := sm[1]
					if pat == "" {
						pat = sm[2]
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want pattern %q: %v", fmtPos(pos), pat, err)
					}
					wants[key] = append(wants[key], &want{re: re})
				}
			}
		}
	}
	return wants
}

func matchWant(ws []*want, msg string) bool {
	for _, w := range ws {
		if !w.matched && w.re.MatchString(msg) {
			w.matched = true
			return true
		}
	}
	return false
}

func fmtPos(pos token.Position) string {
	return fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
}
