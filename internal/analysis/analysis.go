// Package analysis is netlint's static-analysis framework: a minimal,
// dependency-free re-implementation of the golang.org/x/tools/go/analysis
// surface (Analyzer / Pass / Diagnostic) on top of the standard library's
// go/ast and go/types.
//
// Why not x/tools itself? The repo is deliberately zero-dependency (see
// go.mod), and the subset netlint needs — run a checker over type-checked
// packages, report position-tagged diagnostics, drive fixtures with
// `// want` comments — is small enough to own. The shapes below mirror
// x/tools deliberately so the analyzers could be ported to a real
// multichecker by swapping import paths.
//
// The suite encodes this repo's load-bearing invariants (reproducible
// decompositions need byte-identical tables for a fixed seed):
//
//   - determinism:     no wall clock / global rand / order-dependent map
//     iteration in the measurement+analysis packages
//   - floatsafe:       no NaN-oblivious float comparisons or Max/Min
//   - checkederr:      no blank-discarded errors from the typed APIs
//   - goroutinepurity: goroutine bodies only write index-addressed slots
//
// See DESIGN.md §9 for the invariant each analyzer machine-checks and the
// prior PR whose bug motivates it.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// An Analyzer describes one netlint check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //netlint:allow comments. Lower-case, no spaces.
	Name string
	// Doc is a one-paragraph description of the invariant enforced.
	Doc string
	// Run applies the analyzer to one package.
	Run func(*Pass) error
}

// A Pass hands one type-checked package to an Analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diagnostics []Diagnostic
}

// A Diagnostic is one finding, tagged with the analyzer that produced it.
type Diagnostic struct {
	Pos      token.Pos
	Message  string
	Analyzer string
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diagnostics = append(p.diagnostics, Diagnostic{
		Pos:      pos,
		Message:  fmt.Sprintf(format, args...),
		Analyzer: p.Analyzer.Name,
	})
}

// Run applies each analyzer to pkg and returns the surviving diagnostics:
// findings suppressed by a well-formed `//netlint:allow <analyzer> <reason>`
// comment (same line or the line immediately above) are dropped, and
// malformed or unknown-analyzer allow comments are themselves reported as
// AllowAnalyzerName findings. Diagnostics come back sorted by position.
func Run(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.PkgPath, err)
		}
		diags = append(diags, pass.diagnostics...)
	}
	// An allow may name any analyzer in the suite, not just the ones in
	// this run — running a single analyzer (as the fixture tests do) must
	// not reclassify other analyzers' suppressions as unknown names.
	known := make(map[string]bool, len(analyzers))
	for _, a := range All() {
		known[a.Name] = true
	}
	for _, a := range analyzers {
		known[a.Name] = true
	}
	allows, bad := collectAllows(pkg.Fset, pkg.Files, known)
	diags = filterAllowed(pkg.Fset, diags, allows)
	diags = append(diags, bad...)
	sort.SliceStable(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })
	return diags, nil
}
