// Package analysis is netlint's static-analysis framework: a minimal,
// dependency-free re-implementation of the golang.org/x/tools/go/analysis
// surface (Analyzer / Pass / Diagnostic) on top of the standard library's
// go/ast and go/types.
//
// Why not x/tools itself? The repo is deliberately zero-dependency (see
// go.mod), and the subset netlint needs — run a checker over type-checked
// packages, report position-tagged diagnostics, drive fixtures with
// `// want` comments — is small enough to own. The shapes below mirror
// x/tools deliberately so the analyzers could be ported to a real
// multichecker by swapping import paths.
//
// The suite encodes this repo's load-bearing invariants (reproducible
// decompositions need byte-identical tables for a fixed seed):
//
//   - determinism:     no wall clock / global rand / order-dependent map
//     iteration in the measurement+analysis packages
//   - floatsafe:       no NaN-oblivious float comparisons or Max/Min
//   - checkederr:      no blank-discarded errors from the typed APIs
//   - goroutinepurity: goroutine bodies only write index-addressed slots
//
// See DESIGN.md §9 for the invariant each analyzer machine-checks and the
// prior PR whose bug motivates it.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// An Analyzer describes one netlint check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //netlint:allow comments. Lower-case, no spaces.
	Name string
	// Doc is a one-paragraph description of the invariant enforced.
	Doc string
	// Run applies the analyzer to one package.
	Run func(*Pass) error
}

// A Pass hands one type-checked package to an Analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	facts       *factStore
	diagnostics []Diagnostic
}

// A Diagnostic is one finding, tagged with the analyzer that produced it.
type Diagnostic struct {
	Pos      token.Pos
	Message  string
	Analyzer string
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diagnostics = append(p.diagnostics, Diagnostic{
		Pos:      pos,
		Message:  fmt.Sprintf(format, args...),
		Analyzer: p.Analyzer.Name,
	})
}

// Run applies each analyzer to pkg and returns the surviving diagnostics:
// findings suppressed by a well-formed `//netlint:allow <analyzer> <reason>`
// comment (same line or the line immediately above) are dropped, and
// malformed, unknown-analyzer, or nothing-suppressing allow comments are
// themselves reported as AllowAnalyzerName findings. Diagnostics come back
// sorted by position.
//
// Run analyzes pkg in isolation with a throwaway fact store; use a
// Session to thread facts across a dependency-ordered package sequence.
func Run(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	return runWithFacts(pkg, analyzers, newFactStore())
}
