package analysis_test

import (
	"testing"

	"netconstant/internal/analysis"
	"netconstant/internal/analysis/analysistest"
)

// The fixture DAG reuses the real table rows: exp→mat is a declared
// edge, des→exp inverts the layering (finding), des→plan is a conscious
// exception riding an allow, and newpkg is absent from the table
// entirely.
func TestLayering(t *testing.T) {
	analysistest.RunDeps(t, "testdata", []string{
		"layering/internal/mat",
		"layering/internal/plan",
		"layering/internal/exp",
		"layering/internal/des",
		"layering/internal/newpkg",
	}, analysis.Layering)
}
