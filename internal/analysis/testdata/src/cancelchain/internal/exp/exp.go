// Package exp (a restricted path) drives the chain: its unbounded loops
// are legal only when the callee provably polls, two fact hops away.
package exp

import (
	"context"

	"cancelchain/internal/mid"
)

// Drive's loop calls mid.Pump, which polls via src.Wait — the
// ChecksCancelFact round-trips across all three packages, so no finding.
func Drive(ctx context.Context) {
	for {
		if mid.Pump(ctx) != nil {
			return
		}
	}
}

// Stall's callee accepts a ctx but is known (by absence of a fact on a
// module-internal function) not to poll, so the loop is a finding.
func Stall(ctx context.Context) {
	for { // want `unbounded loop in Stall never polls cancellation`
		if mid.Stall(ctx) != nil {
			return
		}
	}
}
