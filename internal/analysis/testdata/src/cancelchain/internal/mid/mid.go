// Package mid is the middle hop: Pump never touches ctx.Err itself —
// its polling is inherited from src.Wait through the imported fact, and
// re-exported as a fact of Pump's own.
package mid

import (
	"context"

	"cancelchain/internal/src"
)

func Pump(ctx context.Context) error {
	return src.Wait(ctx)
}

func Stall(ctx context.Context) error {
	return src.Opaque(ctx)
}
