// Package src is the bottom of the three-package fact chain: Wait polls
// its context directly, so cancelflow exports a ChecksCancelFact for it.
package src

import "context"

func Wait(ctx context.Context) error {
	return ctx.Err()
}

// Opaque accepts a context but never consults it: no fact, and because
// the package path is module-internal, callers get no benefit of the
// doubt either.
func Opaque(ctx context.Context) error {
	_ = ctx
	return nil
}
