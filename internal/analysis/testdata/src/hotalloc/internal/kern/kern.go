// Package kern is the definer side of the hotalloc fact chain.
package kern

// Clean is a pure arena kernel: annotated, checked allocation-free, and
// exported to downstream hotpaths as a HotpathFact.
//
//netlint:hotpath
func Clean(out, a []float64) {
	for i := range out {
		out[i] = 2 * a[i]
	}
}

// Dirty allocates and is deliberately not annotated: calling it from an
// annotated function in another package is a finding.
func Dirty(n int) []float64 {
	return make([]float64, n)
}
