package user

import (
	"fmt"

	"hotalloc/internal/kern"
)

func sink(v any) { _ = v }

func local(xs []float64) float64 { return xs[0] }

// step exercises every banned construct plus the clean idioms.
//
//netlint:hotpath
func step(out, a, scratch []float64) {
	kern.Clean(out, a) // clean: the callee carries a HotpathFact
	_ = kern.Dirty(3)  // want `calls kern.Dirty, which is not //netlint:hotpath`

	scratch = scratch[:0]
	scratch = append(scratch, out...) // clean: reset above is the capacity hint
	_ = append(out[:0], a...)         // clean: inline reslice hint

	grown := append(a, 1) // want `appends to a without a capacity hint`
	_ = grown

	buf := make([]float64, 8) // want `allocates with make`
	_ = buf

	//netlint:allow hotalloc fixture: one-time growth amortized across refills
	allowed := make([]float64, 8)
	_ = allowed

	p := new(int) // want `allocates with new`
	_ = p

	m := map[int]int{} // want `builds a map literal`
	_ = m

	s := []int{1, 2} // want `builds a slice literal`
	_ = s

	v := pair{1, 2} // clean: struct literals stay on the stack
	t := &task{}    // clean: the pool-dispatch idiom
	_, _ = v, t

	f := func() {} // want `builds a closure`
	f()

	go local(a) // want `spawns a goroutine`

	_ = fmt.Sprintf("%v", len(a)) // want `calls fmt.Sprintf, which allocates`

	sink(a)      // want `boxes a float slice into an interface parameter of sink`
	sink(len(a)) // clean: boxing an int is not a float-slice box
	_ = local(a) // clean: same-package callees are in the same review unit
}

type pair struct{ x, y float64 }
type task struct{ out []float64 }

// unannotated allocates freely: the analyzer only binds functions that
// opted in.
func unannotated() []float64 {
	return append([]float64{}, 1, 2, 3)
}
