// Package lib is library code: it must return errors, never exit.
package lib

import (
	"errors"
	"log"
	"os"
)

// Abort takes the retry/quarantine decision away from the owning command.
func Abort() {
	os.Exit(1) // want `os.Exit in library package`
}

// Fail hides the same exit inside a log call.
func Fail(err error) {
	log.Fatalf("lib: %v", err) // want `log.Fatalf hides an exit`
}

// Report is what library code does instead.
func Report() error {
	return errors.New("lib: told the caller, kept the process")
}
