// Package cli mirrors the real internal/cli exit vocabulary: the
// analyzer sanctions constants by their defining package's path.
package cli

// Exit codes the fleet supervisor understands.
const (
	ExitOK          = 0
	ExitFailure     = 1
	ExitUsage       = 2
	ExitInterrupted = 130
)
