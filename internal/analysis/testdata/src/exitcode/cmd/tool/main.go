// Command tool exits every way a command can, right and wrong.
package main

import (
	"log"
	"os"

	"exitcode/internal/cli"
)

// run returns codes from the vocabulary; main forwards them verbatim.
func run() int {
	if len(os.Args) > 1 {
		return cli.ExitFailure
	}
	return cli.ExitOK
}

func main() {
	switch len(os.Args) {
	case 9:
		os.Exit(3) // want `os.Exit argument is not part of the exit-code vocabulary`
	case 8:
		log.Fatal("bare fatal") // want `log.Fatal hides an exit`
	case 7:
		panic("boom") // want `panic in command code unwinds to exit status 2`
	case 6:
		//netlint:allow exitcode fixture: a prototype flag carves one code outside the vocabulary, consciously
		os.Exit(4)
	case 5:
		os.Exit(cli.ExitUsage) // clean: vocabulary constant
	}
	os.Exit(run()) // clean: the run() idiom
}
