package a

// Suppression semantics: //netlint:allow <analyzer> <reason> silences
// exactly the named analyzer, on its own line and the line below, and
// nothing else.

// The annotated line carries violations from two analyzers; the allow
// names only floatsafe, so checkederr's diagnostic must survive.
func perAnalyzer(i int, x, y float64) bool {
	var ok bool
	//netlint:allow floatsafe fixture: suppression is per-analyzer
	_ = i; ok = x == y // want `dead blank assignment: _ = i has no effect`
	return ok
}

// Same-line form.
func sameLine(x, y float64) bool {
	return x == y //netlint:allow floatsafe fixture: same-line suppression
}

// An allow naming a different analyzer does not suppress this one — and,
// having silenced nothing, is itself reported as decorative.
func wrongAnalyzer(x, y float64) bool {
	//netlint:allow checkederr fixture: names a different analyzer // want `netlint:allow checkederr suppresses nothing`
	return x == y // want `float == comparison is NaN-oblivious`
}

// An allow more than one line above is out of range, so the diagnostic
// survives and the allow is decorative.
func tooFar(x, y float64) bool {
	//netlint:allow floatsafe fixture: one blank line breaks adjacency // want `netlint:allow floatsafe suppresses nothing`

	return x == y // want `float == comparison is NaN-oblivious`
}
