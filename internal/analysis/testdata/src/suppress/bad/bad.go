package bad

// Each comment below is a broken suppression; the driver reports all
// three as netlint-allow findings (asserted directly in suppress_test.go,
// since a line comment cannot carry a second comment with the
// expectation).

//netlint:allow

//netlint:allow nosuchanalyzer some reason

//netlint:allow floatsafe

func placeholder() {}
