package a

import "math"

// Failing constructs.

func badEqual(x, y float64) bool {
	return x == y // want `float == comparison is NaN-oblivious`
}

func badNotEqual(x, y float64) bool {
	return x != y // want `float != comparison is NaN-oblivious`
}

func badMax(x, y float64) float64 {
	return math.Max(x, y) // want `math.Max propagates NaN`
}

func badMin(x, y float64) float64 {
	return math.Min(x, y) // want `math.Min propagates NaN`
}

type meters float64

// Named float types are still floats.
func badNamed(a, b meters) bool {
	return a != b // want `float != comparison is NaN-oblivious`
}

func badFloat32(x, y float32) bool {
	return x == y // want `float == comparison is NaN-oblivious`
}

// Fixed counterparts.

// Sentinel comparison against a compile-time constant is deliberate.
func goodSentinel(x float64) bool {
	return x == 0
}

// Clamping against a constant bound cannot pick a surprise NaN branch.
func goodClamp(x float64) float64 {
	return math.Max(1, x)
}

// A function that guards with math.IsNaN is NaN-aware throughout.
func goodGuarded(x, y float64) float64 {
	if math.IsNaN(x) || math.IsNaN(y) {
		return 0
	}
	if x == y {
		return math.Min(x, y)
	}
	return x
}

// math.IsInf counts as a guard too.
func goodInfGuarded(x, y float64) bool {
	if math.IsInf(x, 0) {
		return false
	}
	return x == y
}

func intsAreFine(a, b int) bool { return a == b }

func stringsAreFine(a, b string) bool { return a != b }
