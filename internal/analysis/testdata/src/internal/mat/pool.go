package mat

import "sync"

// Failing constructs: goroutine bodies mutating captured state whose final
// value depends on interleaving (these fixtures are type-checked, never
// run — the data races are the point).

func badCapturedScalar(xs []float64) float64 {
	var sum float64
	var wg sync.WaitGroup
	for i := range xs {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sum += xs[i] // want `goroutine writes captured variable sum`
		}()
	}
	wg.Wait()
	return sum
}

func badCapturedMap(xs []float64) map[int]float64 {
	out := make(map[int]float64, len(xs))
	var wg sync.WaitGroup
	for i := range xs {
		wg.Add(1)
		go func() {
			defer wg.Done()
			out[i] = xs[i] * 2 // want `goroutine writes captured map out`
		}()
	}
	wg.Wait()
	return out
}

type state struct{ n int }

func badCapturedField(s *state) {
	done := make(chan struct{})
	go func() {
		s.n = 42 // want `goroutine writes field n of captured s`
		close(done)
	}()
	<-done
}

func badCapturedPointer(p *float64) {
	done := make(chan struct{})
	go func() {
		*p = 1 // want `goroutine writes through captured pointer p`
		close(done)
	}()
	<-done
}

func badIncDec() int {
	n := 0
	done := make(chan struct{})
	go func() {
		n++ // want `goroutine writes captured variable n`
		close(done)
	}()
	<-done
	return n
}

// A nested (non-go) closure still runs on the goroutine: its writes count.
func badNestedClosure(xs []float64) float64 {
	var sum float64
	done := make(chan struct{})
	go func() {
		add := func(v float64) {
			sum += v // want `goroutine writes captured variable sum`
		}
		for _, v := range xs {
			add(v)
		}
		close(done)
	}()
	<-done
	return sum
}

// Fixed counterparts.

// The sanctioned pattern: publish through index-addressed slice slots,
// keep everything else closure-local.
func goodIndexedSlots(xs []float64) []float64 {
	out := make([]float64, len(xs))
	var wg sync.WaitGroup
	for i := range xs {
		wg.Add(1)
		go func() {
			defer wg.Done()
			local := xs[i] * 2
			out[i] = local
		}()
	}
	wg.Wait()
	return out
}

// Channel sends are synchronization, not captured writes.
func goodChannel(xs []float64) float64 {
	ch := make(chan float64, len(xs))
	for i := range xs {
		go func() {
			ch <- xs[i]
		}()
	}
	var sum float64
	for range xs {
		sum += <-ch
	}
	return sum
}

// Compound assignment to a slot of a captured slice is still
// index-addressed.
func goodSlotAccumulate(xs []float64, rounds int) []float64 {
	out := make([]float64, len(xs))
	var wg sync.WaitGroup
	for i := range xs {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				out[i] += xs[i]
			}
		}()
	}
	wg.Wait()
	return out
}
