package exp

import (
	"math/rand"
	"sort"
	"time"
)

// Fixed counterparts of bad.go: every construct here is the sanctioned
// deterministic idiom and must produce no diagnostics.

// Injected clock: the caller decides whether real time exists at all.
func injectedClock(clock func() time.Time) float64 {
	if clock == nil {
		return 0
	}
	start := clock()
	return clock().Sub(start).Seconds()
}

// Explicitly seeded generator: rand.New/NewSource are constructors, not
// draws from the process-global stream.
func seededRand(seed int64) float64 {
	rng := rand.New(rand.NewSource(seed))
	return rng.Float64()
}

// Collect-then-sort: the append happens under map iteration but the slice
// is sorted before anything order-sensitive reads it.
func sortedKeys(m map[string]float64, t *Table) float64 {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sum float64
	for _, k := range keys {
		sum += m[k]
		t.AddRow(k)
	}
	return sum
}

// Key-indexed writes touch a distinct cell per iteration, so order cannot
// matter; integer accumulation commutes exactly.
func keyIndexed(m map[string]float64, out map[string]float64, counts map[string]int) int {
	n := 0
	for k, v := range m {
		out[k] = v * 2
		counts[k]++
		n += 1
	}
	return n
}

type acc struct{ total float64 }

// Writes through the range value variable hit a distinct element per
// iteration.
func valueVar(m map[string]*acc) {
	for _, a := range m {
		a.total += 1.5
	}
}

// Loop-local accumulators are reset every iteration.
func loopLocal(m map[string][]float64, out map[string]float64) {
	for k, vs := range m {
		var sum float64
		for _, v := range vs {
			sum += v
		}
		out[k] = sum
	}
}
