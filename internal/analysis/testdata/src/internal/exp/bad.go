package exp

import (
	"fmt"
	"math/rand"
	"time"
)

// Table mimics the repo's figure table builder: the analyzer keys on the
// AddRow/AddNote method names.
type Table struct{ rows [][]string }

func (t *Table) AddRow(cells ...string) { t.rows = append(t.rows, cells) }

func (t *Table) AddNote(format string, args ...any) {}

func wallClock() (time.Time, float64) {
	start := time.Now()    // want `wall-clock time.Now`
	d := time.Since(start) // want `wall-clock time.Since`
	return start, d.Seconds()
}

func globalRand(n int) (int, float64) {
	i := rand.Intn(n)   // want `global math/rand.Intn`
	f := rand.Float64() // want `global math/rand.Float64`
	return i, f
}

func mapAccumulate(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v // want `order-dependent accumulation into sum`
	}
	return sum
}

func mapConcat(m map[string]float64) string {
	var s string
	for k := range m {
		s += k // want `order-dependent accumulation into s`
	}
	return s
}

func mapAppend(m map[string]float64) []float64 {
	var out []float64
	for _, v := range m {
		out = append(out, v) // want `append to out under map iteration`
	}
	return out
}

func mapEmit(t *Table, m map[string]float64) {
	for k, v := range m {
		t.AddRow(k)       // want `AddRow during map iteration`
		fmt.Println(k, v) // want `fmt.Println during map iteration`
	}
}

// Indexing by something other than the range key is still order-dependent:
// the slot written in iteration 1 depends on which key came first.
func mapWrongIndex(m map[string]float64, out []float64) []float64 {
	i := 0
	for _, v := range m {
		out = append(out[:i], v) // want `append to out under map iteration`
		i++
	}
	return out
}
