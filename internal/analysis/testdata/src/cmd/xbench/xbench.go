package xbench

import (
	"math/rand"
	"time"
)

// Outside internal/{exp,simnet,cloud,rpca} the determinism analyzer stays
// silent: benches are supposed to read the wall clock, and a tool's
// progress output may iterate maps freely. No diagnostics expected in
// this package.
func timing(m map[string]float64) (float64, float64, int) {
	start := time.Now()
	var sum float64
	for _, v := range m {
		sum += v
	}
	return time.Since(start).Seconds(), sum, rand.Int()
}
