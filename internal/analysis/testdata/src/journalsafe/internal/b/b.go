// Package b never mentions encoding/gob: its only route into the
// journal is a.EncodeAny, known to be a sink purely through the
// GobSinkFact exported while package a was analyzed.
package b

import "journalsafe/internal/a"

// LocalGood is stable.
type LocalGood struct {
	Tag string
	N   int
}

// LocalBad has a map field.
type LocalBad struct {
	Tag  string
	Seen map[int]bool
}

func journal() {
	g := LocalGood{Tag: "x"}
	_ = a.EncodeAny(&g) // clean

	rec := LocalBad{Tag: "y"}
	_ = a.EncodeAny(&rec) // want `contains a map`
}
