// Package a journals records through a forwarding wrapper, the shape of
// exp's gobEncode: the fixpoint must mark EncodeAny a sink and check the
// types rooted at its call sites.
package a

import (
	"bytes"
	"encoding/gob"
)

// EncodeAny forwards v into a gob encoder, so it becomes a sink in
// parameter position 0 and exports a GobSinkFact for package b.
func EncodeAny(v any) error {
	var buf bytes.Buffer
	return gob.NewEncoder(&buf).Encode(v)
}

// Good is gob-stable: exported fields, no maps, no chans, no funcs.
type Good struct {
	Name  string
	Score float64
	Runs  []int
}

// BadMap journals in random iteration order.
type BadMap struct {
	Name    string
	Elapsed map[string]float64
}

type badHidden struct {
	Visible float64
	hidden  int
}

// BadChan fails Encode at runtime.
type BadChan struct {
	C chan int
}

// BadFunc fails Encode at runtime.
type BadFunc struct {
	F func() error
}

// Sealed controls its own wire form: its unexported internals are fine.
type Sealed struct {
	raw []byte
}

// GobEncode implements gob.GobEncoder.
func (s *Sealed) GobEncode() ([]byte, error) { return s.raw, nil }

// GobDecode implements gob.GobDecoder.
func (s *Sealed) GobDecode(b []byte) error { s.raw = append(s.raw[:0], b...); return nil }

func roundTrip() {
	g := Good{Name: "ok", Score: 1, Runs: []int{1, 2}}
	_ = EncodeAny(&g) // clean: every reachable field is stable

	m := BadMap{Name: "t"}
	_ = EncodeAny(&m) // want `contains a map`

	var h badHidden
	var buf bytes.Buffer
	_ = gob.NewEncoder(&buf).Encode(&h) // want `has unexported field hidden`

	f := BadFunc{}
	_ = EncodeAny(&f) // want `contains a func value`

	ch := BadChan{}
	//netlint:allow journalsafe fixture: the chan field is scrubbed to nil before this record is journaled
	_ = EncodeAny(&ch)

	s := Sealed{}
	_ = EncodeAny(&s) // clean: GobEncode makes the type opaque

	var back Good
	_ = gob.NewDecoder(&buf).Decode(&back) // clean: Decode roots are checked too
}
