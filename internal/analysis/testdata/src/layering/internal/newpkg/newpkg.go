// Package newpkg is not declared in the layering table: a new package
// must take a position in the DAG when it is born.
package newpkg // want `package internal/newpkg is missing from the layering table`

func Noop() {}
