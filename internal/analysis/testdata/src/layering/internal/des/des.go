// Package des is an L0 leaf: importing up the stack inverts the DAG and
// must name the forbidden edge.
package des

import (
	"layering/internal/exp" // want `forbidden import edge internal/des -> internal/exp: not in the layering table`

	//netlint:allow layering fixture: a consciously declared exception rides on an allow naming the edge
	"layering/internal/plan"
)

func Tick() float64 { return exp.Run() + float64(plan.Steps()) }
