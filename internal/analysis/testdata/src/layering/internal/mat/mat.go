// Package mat is an L0 leaf in the fixture DAG: it may import nothing
// module-internal.
package mat

func Scale(x float64) float64 { return 2 * x }
