// Package exp sits above mat in the DAG; this import edge is in the
// table, so the file is clean.
package exp

import "layering/internal/mat"

func Run() float64 { return mat.Scale(21) }
