// Package plan mirrors the real L5 orchestration package: a legal
// position in the table, used by the des fixture as a forbidden target.
package plan

func Steps() int { return 3 }
