package a

import "errors"

var errDegraded = errors.New("degraded input")

// Local stand-ins for the repo's typed E-APIs: matching is by callee name
// plus an error-typed result, so the fixture needs no real imports.

func CostE(x float64) (elapsed, total float64, err error) {
	if x < 0 {
		return 0, 0, errDegraded
	}
	return x, x, nil
}

type Topo struct{}

func (Topo) AddLinkE(id int) error {
	if id < 0 {
		return errDegraded
	}
	return nil
}

func DecomposeMasked(n int) (int, error) { return n, nil }

// Failing constructs.

func badBlankErr(x float64) float64 {
	v, _, _ := CostE(x) // want `error from CostE discarded with _`
	return v
}

func badBlankOnlyErr(t Topo) {
	_ = t.AddLinkE(-1) // want `error from AddLinkE discarded with _`
}

func badDropped(t Topo) {
	t.AddLinkE(-1) // want `result of AddLinkE dropped`
}

func badDeadBlank(i int) {
	_ = i // want `dead blank assignment: _ = i has no effect`
}

// Fixed counterparts.

// Blanking the non-error result (total) is fine; the error is handled.
func goodPropagated(x float64) (float64, error) {
	v, _, err := CostE(x)
	if err != nil {
		return 0, err
	}
	return v, nil
}

func goodHandled(t Topo) (int, error) {
	if err := t.AddLinkE(1); err != nil {
		return 0, err
	}
	return DecomposeMasked(3)
}

func helper() (int, error) { return 1, nil }

// Only the named E-APIs are enforced; other calls keep Go's usual rules.
func goodOtherAPI() int {
	n, _ := helper()
	return n
}
