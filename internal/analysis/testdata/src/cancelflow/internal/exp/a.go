package exp

import "context"

// Rule 1: library code never fabricates a root context.
func root() context.Context {
	return context.Background() // want `context.Background fabricates a root context`
}

func todo() context.Context {
	return context.TODO() // want `context.TODO fabricates a root context`
}

// The allow path: a sanctioned compat shim carries the reason in place.
func rootAllowed() context.Context {
	//netlint:allow cancelflow fixture: sanctioned no-cancellation compat shim
	return context.Background()
}

func helper(ctx context.Context, n int) int {
	if ctx != nil && ctx.Err() != nil {
		return 0
	}
	return n
}

// Rule 2: a handle-holding function must not drop the handle.
func holder(ctx context.Context) int {
	a := helper(nil, 1) // want `nil context passed to helper`
	return a + helper(ctx, 2)
}

// Rule 3: unbounded loops in handle-holding functions must poll.
func loopBad(ctx context.Context) int {
	n := 0
	for n < 1000 { // want `unbounded loop in loopBad never polls cancellation`
		n++
	}
	return n
}

func loopGood(ctx context.Context) int {
	n := 0
	for n < 1000 {
		if ctx.Err() != nil {
			return n
		}
		n++
	}
	return n
}

// An unbounded loop that calls a same-package poller is clean: the polls
// set is a fixpoint over local calls.
func loopViaCallee(ctx context.Context) int {
	n := 0
	for n < 1000 {
		n = helper(ctx, n+1)
	}
	return n
}

func loopAllowed(ctx context.Context) int {
	n := 0
	//netlint:allow cancelflow fixture: loop is bounded by construction
	for n < 1000 {
		n++
	}
	return n
}

// Three-clause and range loops are counted sweeps: no polling required.
func boundedLoops(ctx context.Context, xs []int) int {
	s := 0
	for i := 0; i < 10; i++ {
		s += i
	}
	for _, x := range xs {
		s += x
	}
	return s
}

// Config-struct handles count: an exported context field is a handle.
type config struct {
	Ctx context.Context
}

func structHolder(cfg config) int {
	n := 0
	for n < 1000 { // want `unbounded loop in structHolder never polls cancellation`
		n++
	}
	return n
}

// A function without a handle is out of scope for rules 2 and 3: this
// loop provably makes progress without any cancellation to honor.
func noHandle(limit int) int {
	n := 0
	for n < limit {
		n++
	}
	return n
}
