package worker

import "sync"

// Outside internal/exp and internal/mat the purity contract is not
// enforced: a mutex-guarded accumulator is a legitimate pattern where
// byte-identical ordering is not the deliverable. No diagnostics expected
// in this package.
func Sum(xs []float64) float64 {
	var mu sync.Mutex
	var sum float64
	var wg sync.WaitGroup
	for i := range xs {
		wg.Add(1)
		go func() {
			defer wg.Done()
			mu.Lock()
			sum += xs[i]
			mu.Unlock()
		}()
	}
	wg.Wait()
	return sum
}
