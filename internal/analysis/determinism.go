package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Determinism enforces the invariant PRs 2–3 bought with hashed per-point
// seeds and index-addressed slots: every run of the measurement+analysis
// pipeline with the same seed must produce byte-identical tables. Inside
// internal/exp, internal/simnet, internal/cloud and internal/rpca it
// forbids the three ways scheduling or process state can leak into output:
//
//   - wall clock: time.Now / time.Since (timing belongs in cmd/*bench, or
//     behind an injected clock like exp.Config.Clock);
//   - process-global randomness: package-level math/rand and math/rand/v2
//     functions, which draw from a shared stream in goroutine-arrival
//     order (constructors like rand.New/NewSource stay legal — explicit
//     seeded generators are the repo's idiom);
//   - order-dependent map iteration: a `for … range m` over a map whose
//     body appends to, float/string-accumulates into, or emits output to
//     anything not addressed by the range key itself. Go randomizes map
//     iteration order, so such loops change output run to run; the fix is
//     to sort the keys and range over the sorted slice (at which point the
//     loop ranges a slice and this check no longer applies). Two
//     deterministic idioms stay legal: writes through the range clause's
//     own key/value variables (each iteration touches its own element),
//     and collect-then-sort — appending into a slice that is later passed
//     to a sort/slices call in the same function.
var Determinism = &Analyzer{
	Name: "determinism",
	Doc:  "forbid wall clock, global rand, and order-dependent map iteration in the deterministic pipeline packages",
	Run:  runDeterminism,
}

// determinismRestricted lists the package-path segment pairs the analyzer
// applies to.
var determinismRestricted = [][]string{
	{"internal", "exp"},
	{"internal", "simnet"},
	{"internal", "topo"},
	{"internal", "cloud"},
	{"internal", "rpca"},
	{"internal", "workflow"},
	{"internal", "faults"},
	{"internal", "checkpoint"},
	{"internal", "chaos"},
	{"internal", "plan"},
	{"internal", "core"},
}

// randConstructors are the math/rand(/v2) package functions that build
// explicitly seeded generators and are therefore allowed.
var randConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

func runDeterminism(pass *Pass) error {
	restricted := false
	for _, segs := range determinismRestricted {
		if pathHasSegments(pass.Pkg.Path(), segs...) {
			restricted = true
			break
		}
	}
	if !restricted {
		return nil
	}
	c := &detChecker{pass: pass}
	for _, f := range pass.Files {
		c.walk(f)
	}
	return nil
}

// mapFrame is one active `for … range <map>` loop during the walk. loop
// is the whole RangeStmt, so the range clause's key/value variables count
// as declared inside it.
type mapFrame struct {
	key  types.Object // range key object, nil when the key is blank/absent
	loop *ast.RangeStmt
}

type detChecker struct {
	pass   *Pass
	frames []mapFrame
	fn     ast.Node // innermost enclosing FuncDecl/FuncLit, for the sort-later exemption
}

func (c *detChecker) walk(n ast.Node) {
	ast.Inspect(n, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncDecl:
			prev := c.fn
			c.fn = n
			if n.Body != nil {
				c.walk(n.Body)
			}
			c.fn = prev
			return false
		case *ast.FuncLit:
			prev := c.fn
			c.fn = n
			c.walk(n.Body)
			c.fn = prev
			return false
		case *ast.RangeStmt:
			t := c.pass.TypesInfo.TypeOf(n.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			// The ranged expression itself is evaluated once, outside the
			// loop; walk it without the new frame.
			c.walk(n.X)
			var key types.Object
			if id, ok := n.Key.(*ast.Ident); ok && id.Name != "_" {
				key = c.pass.TypesInfo.ObjectOf(id)
			}
			c.frames = append(c.frames, mapFrame{key: key, loop: n})
			c.walk(n.Body)
			c.frames = c.frames[:len(c.frames)-1]
			return false
		case *ast.CallExpr:
			c.checkCall(n)
		case *ast.AssignStmt:
			c.checkAssign(n)
		}
		return true
	})
}

func (c *detChecker) checkCall(call *ast.CallExpr) {
	if pkg, fn, ok := pkgFuncCall(c.pass.TypesInfo, call); ok {
		switch pkg {
		case "time":
			if fn == "Now" || fn == "Since" {
				c.pass.Reportf(call.Pos(),
					"wall-clock time.%s in deterministic package %s: timing belongs in cmd/*bench or behind an injected clock",
					fn, c.pass.Pkg.Path())
			}
		case "math/rand", "math/rand/v2":
			if !randConstructors[fn] {
				c.pass.Reportf(call.Pos(),
					"global %s.%s draws from process-wide state in scheduling order: use an explicitly seeded *rand.Rand",
					pkg, fn)
			}
		case "fmt":
			switch fn {
			case "Print", "Printf", "Println", "Fprint", "Fprintf", "Fprintln":
				if len(c.frames) > 0 {
					c.pass.Reportf(call.Pos(),
						"fmt.%s during map iteration emits rows in map-hash order: sort the keys and range the sorted slice",
						fn)
				}
			}
		}
		return
	}
	// Method emissions into figure/table outputs, matched by name: the
	// repo's Table builder (AddRow/AddNote) appends rows in call order.
	if len(c.frames) > 0 {
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
			if name := sel.Sel.Name; name == "AddRow" || name == "AddNote" {
				if c.pass.TypesInfo.Selections[sel] != nil { // a real method, not a pkg func
					c.pass.Reportf(call.Pos(),
						"%s during map iteration emits rows in map-hash order: sort the keys and range the sorted slice",
						name)
				}
			}
		}
	}
}

func (c *detChecker) checkAssign(as *ast.AssignStmt) {
	if len(c.frames) == 0 {
		return
	}
	switch as.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		lhs := as.Lhs[0]
		t := c.pass.TypesInfo.TypeOf(lhs)
		if !isFloat(t) && !isString(t) {
			return // integer accumulation is order-independent
		}
		if !c.exempt(lhs) {
			c.pass.Reportf(as.Pos(),
				"order-dependent accumulation into %s under map iteration: float/string accumulation depends on key order — sort the keys first or index by the range key",
				types.ExprString(lhs))
		}
	case token.ASSIGN, token.DEFINE:
		for i, rhs := range as.Rhs {
			if i >= len(as.Lhs) {
				break
			}
			call, ok := rhs.(*ast.CallExpr)
			if !ok {
				continue
			}
			if id, ok := call.Fun.(*ast.Ident); !ok || id.Name != "append" {
				continue
			} else if _, isBuiltin := c.pass.TypesInfo.Uses[id].(*types.Builtin); !isBuiltin {
				continue
			}
			lhs := as.Lhs[i]
			if !c.exempt(lhs) && !c.sortedLater(lhs, as.End()) {
				c.pass.Reportf(as.Pos(),
					"append to %s under map iteration makes element order depend on map hashing: sort the result or the keys, or index by the range key",
					types.ExprString(lhs))
			}
		}
	}
}

// exempt reports whether writes to lhs are deterministic with respect to
// every active map-range frame: for each frame, lhs must either be indexed
// (at some level) by that frame's range key, or refer to a variable
// declared inside that frame's body.
func (c *detChecker) exempt(lhs ast.Expr) bool {
	for _, fr := range c.frames {
		if !c.exemptInFrame(lhs, fr) {
			return false
		}
	}
	return true
}

func (c *detChecker) exemptInFrame(lhs ast.Expr, fr mapFrame) bool {
	for {
		switch e := lhs.(type) {
		case *ast.Ident:
			obj := c.pass.TypesInfo.ObjectOf(e)
			return obj != nil && declaredWithin(obj, fr.loop)
		case *ast.IndexExpr:
			if fr.key != nil {
				if id, ok := e.Index.(*ast.Ident); ok && c.pass.TypesInfo.ObjectOf(id) == fr.key {
					return true
				}
			}
			lhs = e.X
		case *ast.SelectorExpr:
			lhs = e.X
		case *ast.ParenExpr:
			lhs = e.X
		case *ast.StarExpr:
			lhs = e.X
		default:
			return false
		}
	}
}

// sortedLater reports whether lhs is a plain variable that is passed —
// possibly through a conversion like sort.Sort(byID(x)) — to a sort or
// slices package call later in the enclosing function: the
// collect-then-sort idiom, whose final order is independent of map
// iteration order.
func (c *detChecker) sortedLater(lhs ast.Expr, after token.Pos) bool {
	id, ok := lhs.(*ast.Ident)
	if !ok || c.fn == nil {
		return false
	}
	obj := c.pass.TypesInfo.ObjectOf(id)
	if obj == nil {
		return false
	}
	found := false
	ast.Inspect(c.fn, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < after {
			return true
		}
		pkg, _, ok := pkgFuncCall(c.pass.TypesInfo, call)
		if !ok || (pkg != "sort" && pkg != "slices") {
			return true
		}
		for _, arg := range call.Args {
			ast.Inspect(arg, func(an ast.Node) bool {
				if aid, ok := an.(*ast.Ident); ok && c.pass.TypesInfo.ObjectOf(aid) == obj {
					found = true
				}
				return !found
			})
		}
		return !found
	})
	return found
}

func isString(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}
