package analysis

import (
	"go/ast"
	"go/types"
)

// Cancelflow machine-checks the typed-cancellation discipline PR 5
// threaded through the pipeline: a sweep, calibration, or solver that
// holds a live context must stay responsive to it. Inside internal/exp,
// internal/cloud, internal/core, internal/rpca and internal/simnet it
// enforces three rules:
//
//   - context.Background() and context.TODO() are banned: library code
//     never invents its own root context. Roots belong in cmd/* (and in
//     tests, which the loader excludes); a library function either
//     receives a ctx or accepts that a nil one means "no cancellation".
//     Deliberate compat shims carry a //netlint:allow with the reason.
//
//   - a function that holds a cancellation handle — a context.Context
//     parameter, or an options/config parameter whose struct carries an
//     exported context.Context field (rpca.Options.Ctx, exp.Config.Ctx)
//     — must not drop it: passing a nil literal in a context-typed
//     argument slot discards the caller's deadline.
//
//   - an unbounded loop (`for {}` or `for cond {}`; three-clause and
//     range loops are bounded sweeps) in a handle-holding function must
//     poll cancellation every iteration: call cancel.Check, consult
//     ctx.Err/ctx.Done, or call a callee that provably polls.
//
// "Provably polls" is where facts come in. Analyzing each package,
// cancelflow computes — by intra-package fixpoint — the set of functions
// whose bodies poll cancellation directly or call a poller, and exports
// a ChecksCancelFact for each. Downstream packages, analyzed later in
// the Session's dependency order, import those facts, so a cloud loop
// that calls (*rpca.Solver).Decompose — which cancel.Checks each
// iteration — is recognized as cancellable without cloud ever naming
// rpca's internals. A call that merely *accepts* a ctx is not enough:
// the callee must be known to poll (module-external ctx-accepting
// callees are trusted — their blocking behaviour is ctx-governed by
// convention).
var Cancelflow = &Analyzer{
	Name: "cancelflow",
	Doc:  "thread contexts through the pipeline: no context.Background/TODO in library code, no dropped handles, cancel polling in unbounded loops",
	Run:  runCancelflow,
}

// ChecksCancelFact marks a function proven to poll cancellation: its
// body calls cancel.Check, consults ctx.Err/ctx.Done, or calls another
// function carrying this fact. Exported by cancelflow on the defining
// package's pass; consumed when checking unbounded loops downstream.
type ChecksCancelFact struct{}

// AFact marks ChecksCancelFact as a Fact.
func (*ChecksCancelFact) AFact() {}

var cancelflowRestricted = [][]string{
	{"internal", "exp"},
	{"internal", "cloud"},
	{"internal", "core"},
	{"internal", "rpca"},
	{"internal", "serve"},
	{"internal", "simnet"},
}

func runCancelflow(pass *Pass) error {
	restricted := false
	for _, segs := range cancelflowRestricted {
		if pathHasSegments(pass.Pkg.Path(), segs...) {
			restricted = true
			break
		}
	}
	// The cancel package itself is the polling primitive; analyzing it
	// under these rules would be circular. It still gets facts exported
	// below via the unrestricted path.
	c := &cancelflowChecker{pass: pass}
	c.computePollers()
	if restricted && !pathHasSegments(pass.Pkg.Path(), "internal", "cancel") {
		for _, f := range pass.Files {
			c.checkFile(f)
		}
	}
	return nil
}

type cancelflowChecker struct {
	pass   *Pass
	polls  map[*types.Func]bool
	bodies map[*types.Func]*ast.FuncDecl
}

// isCtxType reports whether t is context.Context.
func isCtxType(t types.Type) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	o := n.Obj()
	return o != nil && o.Pkg() != nil && o.Pkg().Path() == "context" && o.Name() == "Context"
}

// holdsCtx reports whether sig gives the function a cancellation handle:
// a context parameter, or a parameter (struct or pointer-to-struct) with
// an exported context.Context field.
func holdsCtx(sig *types.Signature) bool {
	if sig == nil {
		return false
	}
	params := sig.Params()
	for i := 0; i < params.Len(); i++ {
		t := params.At(i).Type()
		if isCtxType(t) {
			return true
		}
		if p, ok := t.Underlying().(*types.Pointer); ok {
			t = p.Elem()
		}
		if st, ok := t.Underlying().(*types.Struct); ok {
			for j := 0; j < st.NumFields(); j++ {
				f := st.Field(j)
				if f.Exported() && isCtxType(f.Type()) {
					return true
				}
			}
		}
	}
	return false
}

// computePollers builds the package's polls set by fixpoint and exports
// a ChecksCancelFact for every member.
func (c *cancelflowChecker) computePollers() {
	c.polls = map[*types.Func]bool{}
	c.bodies = map[*types.Func]*ast.FuncDecl{}
	for _, f := range c.pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, ok := c.pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			c.bodies[obj] = fd
			if c.pollsDirectly(fd.Body) {
				c.polls[obj] = true
			}
		}
	}
	for changed := true; changed; {
		changed = false
		for obj, fd := range c.bodies {
			if c.polls[obj] {
				continue
			}
			if c.callsPoller(fd.Body) {
				c.polls[obj] = true
				changed = true
			}
		}
	}
	for obj := range c.polls {
		c.pass.ExportObjectFact(obj, &ChecksCancelFact{})
	}
}

// pollsDirectly reports whether body contains a direct cancellation
// poll: cancel.Check(...), ctx.Err(), or ctx.Done().
func (c *cancelflowChecker) pollsDirectly(body ast.Node) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if pkg, fn, ok := pkgFuncCall(c.pass.TypesInfo, call); ok {
			if fn == "Check" && pathHasSegments(pkg, "internal", "cancel") {
				found = true
				return false
			}
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
			if (sel.Sel.Name == "Err" || sel.Sel.Name == "Done") && isCtxType(c.pass.TypesInfo.TypeOf(sel.X)) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// callsPoller reports whether body calls a function already known to
// poll: a member of this package's polls set, a function carrying an
// imported ChecksCancelFact, or a module-external function that accepts
// a context (trusted by convention).
func (c *cancelflowChecker) callsPoller(body ast.Node) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if c.calleePolls(call) {
			found = true
			return false
		}
		return true
	})
	return found
}

// calleePolls reports whether call's static callee is known to poll
// cancellation.
func (c *cancelflowChecker) calleePolls(call *ast.CallExpr) bool {
	var obj *types.Func
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		obj, _ = c.pass.TypesInfo.Uses[fun].(*types.Func)
	case *ast.SelectorExpr:
		obj, _ = c.pass.TypesInfo.Uses[fun.Sel].(*types.Func)
	}
	if obj == nil {
		return false
	}
	if c.polls[obj] {
		return true
	}
	var fact ChecksCancelFact
	if c.pass.ImportObjectFact(obj, &fact) {
		return true
	}
	// A module-external ctx-accepting callee (stdlib, x/…) is trusted:
	// blocking stdlib APIs honor their context.
	if pkg := obj.Pkg(); pkg != nil && pkg.Path() != c.pass.Pkg.Path() &&
		!pathHasSegments(pkg.Path(), "internal") && holdsCtx(objSignature(obj)) {
		return true
	}
	return false
}

func objSignature(obj *types.Func) *types.Signature {
	sig, _ := obj.Type().(*types.Signature)
	return sig
}

// checkFile applies the three in-package rules.
func (c *cancelflowChecker) checkFile(f *ast.File) {
	// Rule 1: no fabricated root contexts, anywhere in the package.
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if pkg, fn, ok := pkgFuncCall(c.pass.TypesInfo, call); ok && pkg == "context" && (fn == "Background" || fn == "TODO") {
			c.pass.Reportf(call.Pos(),
				"context.%s fabricates a root context in library package %s: accept a ctx from the caller (cancel.Check treats nil as non-cancellable)",
				fn, c.pass.Pkg.Path())
		}
		return true
	})
	// Rules 2 and 3 apply inside handle-holding declarations.
	for _, decl := range f.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		obj, ok := c.pass.TypesInfo.Defs[fd.Name].(*types.Func)
		if !ok || !holdsCtx(objSignature(obj)) {
			continue
		}
		c.checkHolder(fd)
	}
}

// checkHolder enforces rules 2 and 3 inside one handle-holding function,
// including its nested closures (which capture the same handle).
func (c *cancelflowChecker) checkHolder(fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			c.checkDroppedCtx(n)
		case *ast.ForStmt:
			if c.unbounded(n) && !c.loopPolls(n.Body) {
				c.pass.Reportf(n.Pos(),
					"unbounded loop in %s never polls cancellation: the function holds a ctx — call cancel.Check (or a callee that polls) each iteration",
					fd.Name.Name)
			}
		}
		return true
	})
}

// unbounded reports whether the for statement has no static iteration
// bound: `for {}` or `for cond {}`. Three-clause loops are counted
// sweeps and range loops walk finite collections.
func (c *cancelflowChecker) unbounded(n *ast.ForStmt) bool {
	return n.Init == nil && n.Post == nil
}

// loopPolls reports whether the loop body observes cancellation.
func (c *cancelflowChecker) loopPolls(body ast.Node) bool {
	return c.pollsDirectly(body) || c.callsPoller(body)
}

// checkDroppedCtx flags a nil literal in a context-typed argument slot:
// the function holds a live ctx and is deliberately not passing it.
func (c *cancelflowChecker) checkDroppedCtx(call *ast.CallExpr) {
	sig, ok := c.pass.TypesInfo.TypeOf(call.Fun).(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		pi := i
		if sig.Variadic() && pi >= params.Len() {
			pi = params.Len() - 1
		}
		if pi >= params.Len() || !isCtxType(params.At(pi).Type()) {
			continue
		}
		if id, ok := arg.(*ast.Ident); ok && id.Name == "nil" {
			c.pass.Reportf(arg.Pos(),
				"nil context passed to %s while the enclosing function holds a ctx: thread the handle instead of dropping the deadline",
				calleeName(call))
		}
	}
}
