package analysis

import (
	"go/ast"
	"go/types"
)

// Exitcode guards the process-exit discipline internal/cli documents:
// the expfleet supervisor retries a child that exits 1 and quarantines
// a 2, so an exit code is an API, not a convenience. Three rules:
//
//   - library code (internal/*, the netconstant facade) never calls
//     os.Exit or log.Fatal*: a library that exits takes the decision —
//     retry, quarantine, drain — away from the command that owns it.
//     Libraries return errors.
//
//   - a command (cmd/*) may exit only through the vocabulary: every
//     os.Exit argument must be one of internal/cli's Exit* constants or
//     the result of calling a same-package function (the
//     `func main() { os.Exit(run()) }` idiom, where run returns codes
//     from the same vocabulary). A bare os.Exit(1) compiles but is
//     invisible to the conventions README "Operations" promises.
//     log.Fatal* is os.Exit(1) in disguise and is banned outright.
//
//   - commands do not panic: a panic unwinds to exit code 2, which the
//     supervisor treats as "retry cannot succeed" — almost never what a
//     crash means. Libraries may still panic on contract violations
//     (mat's dimension checks); those are bugs, not exits, and the
//     deferred-recover story belongs to the caller.
var Exitcode = &Analyzer{
	Name: "exitcode",
	Doc:  "os.Exit only in cmd/* and only with internal/cli codes (or a same-package run()); no panic in cmd/*; no log.Fatal anywhere",
	Run:  runExitcode,
}

func runExitcode(pass *Pass) error {
	path := pass.Pkg.Path()
	isCmd := pathHasSegments(path, "cmd")
	// Same scope as layering: internal/*, cmd/*, and the facade. The
	// examples/ demo binaries are documentation, where log.Fatal on a
	// setup error is the idiom readers expect.
	if !isCmd && !pathHasSegments(path, "internal") && path != "netconstant" {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if pkg, fn, ok := pkgFuncCall(pass.TypesInfo, call); ok {
				switch {
				case pkg == "os" && fn == "Exit":
					checkOsExit(pass, call, isCmd)
				case pkg == "log" && (fn == "Fatal" || fn == "Fatalf" || fn == "Fatalln" ||
					fn == "Panic" || fn == "Panicf" || fn == "Panicln"):
					pass.Reportf(call.Pos(),
						"log.%s hides an exit (or panic) inside a log call: return an error, or exit through the internal/cli vocabulary", fn)
				}
				return true
			}
			if id, ok := call.Fun.(*ast.Ident); ok && isCmd {
				if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); ok && b.Name() == "panic" {
					pass.Reportf(call.Pos(),
						"panic in command code unwinds to exit status 2, which the fleet supervisor quarantines as unretryable: handle the error and exit through internal/cli")
				}
			}
			return true
		})
	}
	return nil
}

func checkOsExit(pass *Pass, call *ast.CallExpr, isCmd bool) {
	if !isCmd {
		pass.Reportf(call.Pos(),
			"os.Exit in library package %s: return an error and let the owning command pick the exit code", pass.Pkg.Path())
		return
	}
	if len(call.Args) != 1 {
		return
	}
	if exitArgSanctioned(pass, call.Args[0]) {
		return
	}
	pass.Reportf(call.Args[0].Pos(),
		"os.Exit argument is not part of the exit-code vocabulary: use an internal/cli Exit* constant or a same-package run() result")
}

// exitArgSanctioned reports whether e is an internal/cli exit constant, a
// constant locally aliased to one, or a call to a function declared in
// the same command package (the run() idiom).
func exitArgSanctioned(pass *Pass, e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.SelectorExpr:
		obj, ok := pass.TypesInfo.Uses[e.Sel].(*types.Const)
		return ok && obj.Pkg() != nil && pathHasSegments(obj.Pkg().Path(), "internal", "cli")
	case *ast.CallExpr:
		var obj *types.Func
		switch fun := e.Fun.(type) {
		case *ast.Ident:
			obj, _ = pass.TypesInfo.Uses[fun].(*types.Func)
		case *ast.SelectorExpr:
			obj, _ = pass.TypesInfo.Uses[fun.Sel].(*types.Func)
		}
		return obj != nil && obj.Pkg() == pass.Pkg
	}
	return false
}
