package analysis_test

import (
	"testing"

	"netconstant/internal/analysis"
	"netconstant/internal/analysis/analysistest"
)

// The fixture's import path is internal/exp, so the path-restricted
// checks fire exactly as they do on netconstant/internal/exp.
func TestDeterminismRestricted(t *testing.T) {
	analysistest.Run(t, "testdata", "internal/exp", analysis.Determinism)
}

// The same constructs under a cmd/ path produce no diagnostics: timing
// and global rand are legal outside the pipeline packages.
func TestDeterminismUnrestricted(t *testing.T) {
	analysistest.Run(t, "testdata", "cmd/xbench", analysis.Determinism)
}
