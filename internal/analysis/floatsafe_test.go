package analysis_test

import (
	"testing"

	"netconstant/internal/analysis"
	"netconstant/internal/analysis/analysistest"
)

func TestFloatsafe(t *testing.T) {
	analysistest.Run(t, "testdata", "floatsafe/a", analysis.Floatsafe)
}
