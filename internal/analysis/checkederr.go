package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Checkederr guards the typed-error APIs PR 1 introduced precisely so
// degraded inputs could not pass silently: AddLinkE, RouteE, GreedyMapE,
// CostE and DecomposeMasked return errors that mean "this matrix/topology
// is degraded — the number you are about to use is bogus". Discarding one
// recreates the bug class the E-variants were added to kill (a degraded
// weight matrix silently yielding a bogus MEL point). Repo-wide it flags:
//
//   - assignments that blank the error result of those calls
//     (`v, _ = CostE(...)` when `_` sits in the error slot);
//   - bare call statements that drop all their results;
//   - dead blank assignments of plain variables (`_ = i`), which vet
//     misses and which usually survive a refactor by accident.
//
// Matching is by callee name plus an error-typed result in the blanked
// position, so the check follows the API through method values and
// re-exports without needing the defining package's identity.
var Checkederr = &Analyzer{
	Name: "checkederr",
	Doc:  "forbid blank-discarded errors from the typed E-APIs and dead blank assignments",
	Run:  runCheckederr,
}

// checkedAPIs are the typed-error entry points whose errors must not be
// blanked.
var checkedAPIs = map[string]bool{
	"AddLinkE":        true,
	"RouteE":          true,
	"GreedyMapE":      true,
	"CostE":           true,
	"DecomposeMasked": true,
}

func runCheckederr(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				checkErrAssign(pass, n)
			case *ast.ExprStmt:
				if call, ok := n.X.(*ast.CallExpr); ok {
					if name := calleeName(call); checkedAPIs[name] && callReturnsError(pass.TypesInfo, call) {
						pass.Reportf(call.Pos(),
							"result of %s dropped: its error means the input is degraded and the result is unusable — handle or propagate it",
							name)
					}
				}
			}
			return true
		})
	}
	return nil
}

func checkErrAssign(pass *Pass, as *ast.AssignStmt) {
	// Dead blank assignment: `_ = x` of a plain variable has no effect and
	// no documentation value (compile-time interface assertions are var
	// declarations, not assignments, and stay legal).
	if as.Tok == token.ASSIGN && len(as.Lhs) == 1 && len(as.Rhs) == 1 {
		if lid, ok := as.Lhs[0].(*ast.Ident); ok && lid.Name == "_" {
			if rid, ok := as.Rhs[0].(*ast.Ident); ok {
				if _, isVar := pass.TypesInfo.Uses[rid].(*types.Var); isVar {
					pass.Reportf(as.Pos(), "dead blank assignment: _ = %s has no effect — delete it", rid.Name)
				}
			}
		}
	}

	// Blanked error from a checked API: v, _ := CostE(...) and friends.
	if len(as.Rhs) != 1 {
		return
	}
	call, ok := as.Rhs[0].(*ast.CallExpr)
	if !ok {
		return
	}
	name := calleeName(call)
	if !checkedAPIs[name] {
		return
	}
	results, ok := callResults(pass.TypesInfo, call)
	if !ok {
		return
	}
	for i := 0; i < results.Len() && i < len(as.Lhs); i++ {
		if !isErrorType(results.At(i).Type()) {
			continue
		}
		if lid, ok := as.Lhs[i].(*ast.Ident); ok && lid.Name == "_" {
			pass.Reportf(as.Lhs[i].Pos(),
				"error from %s discarded with _: it means the input is degraded and the other results are unusable — handle or propagate it",
				name)
		}
	}
}

// callResults returns the result tuple of call's callee signature.
func callResults(info *types.Info, call *ast.CallExpr) (*types.Tuple, bool) {
	t := info.TypeOf(call.Fun)
	if t == nil {
		return nil, false
	}
	sig, ok := t.Underlying().(*types.Signature)
	if !ok {
		return nil, false
	}
	return sig.Results(), true
}

func callReturnsError(info *types.Info, call *ast.CallExpr) bool {
	results, ok := callResults(info, call)
	if !ok {
		return false
	}
	for i := 0; i < results.Len(); i++ {
		if isErrorType(results.At(i).Type()) {
			return true
		}
	}
	return false
}

func isErrorType(t types.Type) bool {
	return t != nil && types.Identical(t, types.Universe.Lookup("error").Type())
}
