package analysis_test

import (
	"testing"

	"netconstant/internal/analysis"
	"netconstant/internal/analysis/analysistest"
)

// The cli fixture supplies the sanctioned vocabulary (matched by package
// path), lib exercises the no-exits-in-libraries rule, and cmd/tool
// exits every way a command can: bare codes and log.Fatal and panic are
// findings, vocabulary constants and the run() idiom are clean.
func TestExitcode(t *testing.T) {
	analysistest.RunDeps(t, "testdata", []string{
		"exitcode/internal/cli",
		"exitcode/internal/lib",
		"exitcode/cmd/tool",
	}, analysis.Exitcode)
}
