package analysis_test

import (
	"strings"
	"testing"

	"netconstant/internal/analysis"
	"netconstant/internal/analysis/analysistest"
)

// Running floatsafe and checkederr together over the suppression fixture
// proves //netlint:allow silences exactly the named analyzer on the
// annotated line and nothing else: the fixture's annotated line carries a
// violation of each, and only the checkederr diagnostic survives.
func TestAllowSuppressesOnlyNamedAnalyzer(t *testing.T) {
	analysistest.Run(t, "testdata", "suppress/a", analysis.Floatsafe, analysis.Checkederr)
}

// Broken allow comments are findings in their own right, attributed to
// the netlint-allow pseudo-analyzer and never suppressible.
func TestAllowMalformed(t *testing.T) {
	loader := &analysis.Loader{}
	pkg, err := loader.CheckDir("testdata/src/suppress/bad", "suppress/bad")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := analysis.Run(pkg, analysis.All())
	if err != nil {
		t.Fatal(err)
	}
	wantSubstrings := []string{
		"missing analyzer name and reason",
		`unknown analyzer "nosuchanalyzer"`,
		"netlint:allow floatsafe needs a reason",
	}
	if len(diags) != len(wantSubstrings) {
		t.Fatalf("got %d diagnostics, expected %d: %+v", len(diags), len(wantSubstrings), diags)
	}
	for i, d := range diags {
		if d.Analyzer != analysis.AllowAnalyzerName {
			t.Errorf("diag %d attributed to %q, expected %q", i, d.Analyzer, analysis.AllowAnalyzerName)
		}
		if !strings.Contains(d.Message, wantSubstrings[i]) {
			t.Errorf("diag %d = %q, expected it to mention %q", i, d.Message, wantSubstrings[i])
		}
	}
}
