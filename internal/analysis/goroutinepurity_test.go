package analysis_test

import (
	"testing"

	"netconstant/internal/analysis"
	"netconstant/internal/analysis/analysistest"
)

// The fixture's import path is internal/mat, one of the two packages the
// purity contract covers.
func TestGoroutinepurityRestricted(t *testing.T) {
	analysistest.Run(t, "testdata", "internal/mat", analysis.Goroutinepurity)
}

// Outside internal/{exp,mat} a mutex-guarded captured accumulator is
// legal and must not be flagged.
func TestGoroutinepurityUnrestricted(t *testing.T) {
	analysistest.Run(t, "testdata", "pkg/worker", analysis.Goroutinepurity)
}
