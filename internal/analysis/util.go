package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// pkgFuncCall reports whether call invokes a package-level function of an
// imported package, returning that package's import path and the function
// name (e.g. "time", "Now").
func pkgFuncCall(info *types.Info, call *ast.CallExpr) (pkgPath, fn string, ok bool) {
	sel, okSel := call.Fun.(*ast.SelectorExpr)
	if !okSel {
		return "", "", false
	}
	id, okID := sel.X.(*ast.Ident)
	if !okID {
		return "", "", false
	}
	pn, okPN := info.Uses[id].(*types.PkgName)
	if !okPN {
		return "", "", false
	}
	return pn.Imported().Path(), sel.Sel.Name, true
}

// pathHasSuffixSegments reports whether pkgPath ends with, or contains,
// the given consecutive path segments — so "netconstant/internal/exp" and
// a fixture loaded as "internal/exp" both match ("internal", "exp"), while
// "internal/expando" does not.
func pathHasSegments(pkgPath string, segs ...string) bool {
	parts := strings.Split(pkgPath, "/")
	for i := 0; i+len(segs) <= len(parts); i++ {
		match := true
		for j, s := range segs {
			if parts[i+j] != s {
				match = false
				break
			}
		}
		if match {
			return true
		}
	}
	return false
}

// isFloat reports whether t's core type is a floating-point basic type.
func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// calleeName returns the bare name of the called function or method —
// "CostE" for both mapping.CostE(...) and s.CostE(...) — or "".
func calleeName(call *ast.CallExpr) string {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}

// declaredWithin reports whether obj's declaration lies inside node.
func declaredWithin(obj types.Object, node ast.Node) bool {
	return obj != nil && obj.Pos() != 0 &&
		obj.Pos() >= node.Pos() && obj.Pos() < node.End()
}
