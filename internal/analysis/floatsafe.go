package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Floatsafe mirrors the Inf/NaN bugs fixed in PRs 2–3 (the sequential
// calibration Inf-cost bug, the FNFTree hang on NaN weight cells, the
// stats quantile/histogram NaN panics): a NaN that slips into the RPCA or
// simulation pipeline poisons every downstream table silently, because
// float comparisons and math.Max/Min never trap on it. Repo-wide (tests
// excluded) it flags:
//
//   - `==` / `!=` where an operand is floating point — NaN != NaN, and
//     exact equality after arithmetic is fragile;
//   - math.Max / math.Min calls — both propagate NaN without a trace.
//
// Two escape hatches keep the signal high: a comparison or Max/Min whose
// operand is a compile-time constant is exempt (sentinel checks like
// `x == 0` and clamps like `math.Max(1, x)` are deliberate), and a
// function that calls math.IsNaN or math.IsInf anywhere in its body is
// treated as NaN-aware and exempt throughout.
var Floatsafe = &Analyzer{
	Name: "floatsafe",
	Doc:  "flag NaN-oblivious float equality and math.Max/Min outside IsNaN-guarded functions",
	Run:  runFloatsafe,
}

func runFloatsafe(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			guarded := hasNaNGuard(pass.TypesInfo, decl)
			if guarded {
				continue
			}
			checkFloatsafeDecl(pass, decl)
		}
	}
	return nil
}

// hasNaNGuard reports whether decl contains a math.IsNaN or math.IsInf
// call — the "IsNaN guard in the same function" exemption. Granularity is
// the top-level declaration, so closures inherit their parent's guard.
func hasNaNGuard(info *types.Info, decl ast.Decl) bool {
	found := false
	ast.Inspect(decl, func(n ast.Node) bool {
		if found {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if pkg, fn, ok := pkgFuncCall(info, call); ok && pkg == "math" && (fn == "IsNaN" || fn == "IsInf") {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

func checkFloatsafeDecl(pass *Pass, decl ast.Decl) {
	ast.Inspect(decl, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.BinaryExpr:
			if n.Op != token.EQL && n.Op != token.NEQ {
				return true
			}
			if !isFloat(pass.TypesInfo.TypeOf(n.X)) && !isFloat(pass.TypesInfo.TypeOf(n.Y)) {
				return true
			}
			if isConstExpr(pass.TypesInfo, n.X) || isConstExpr(pass.TypesInfo, n.Y) {
				return true // sentinel comparison against a literal
			}
			pass.Reportf(n.OpPos,
				"float %s comparison is NaN-oblivious (NaN %s NaN is %v): compare with a tolerance or add a math.IsNaN guard to this function",
				n.Op, n.Op, n.Op == token.NEQ)
		case *ast.CallExpr:
			pkg, fn, ok := pkgFuncCall(pass.TypesInfo, n)
			if !ok || pkg != "math" || (fn != "Max" && fn != "Min") {
				return true
			}
			for _, arg := range n.Args {
				if isConstExpr(pass.TypesInfo, arg) {
					return true // clamp against a constant bound
				}
			}
			pass.Reportf(n.Pos(),
				"math.%s propagates NaN silently: add a math.IsNaN guard to this function or clamp against a constant",
				fn)
		}
		return true
	})
}

func isConstExpr(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	return ok && tv.Value != nil
}
