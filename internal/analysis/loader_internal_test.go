package analysis

import (
	"errors"
	"testing"
)

// topoSortPackages must order dependencies first and break ties by
// import path, deterministically.
func TestTopoSortDeterministic(t *testing.T) {
	metas := []goListPkg{
		{ImportPath: "m/exp", Imports: []string{"m/core", "m/mat"}},
		{ImportPath: "m/core", Imports: []string{"m/mat", "fmt"}},
		{ImportPath: "m/zeta"},
		{ImportPath: "m/mat", Imports: []string{"math"}},
	}
	for i := 0; i < 5; i++ {
		out, err := topoSortPackages(metas)
		if err != nil {
			t.Fatal(err)
		}
		got := make([]string, len(out))
		for j, m := range out {
			got[j] = m.ImportPath
		}
		want := []string{"m/mat", "m/zeta", "m/core", "m/exp"}
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("run %d: order %v, want %v", i, got, want)
			}
		}
	}
}

// A cycle in the metadata must surface as a typed *CycleError matching
// the ErrImportCycle sentinel and naming the members, sorted.
func TestTopoSortCycle(t *testing.T) {
	metas := []goListPkg{
		{ImportPath: "m/b", Imports: []string{"m/a"}},
		{ImportPath: "m/a", Imports: []string{"m/b"}},
		{ImportPath: "m/ok"},
	}
	_, err := topoSortPackages(metas)
	if err == nil {
		t.Fatal("cycle not detected")
	}
	if !errors.Is(err, ErrImportCycle) {
		t.Errorf("errors.Is(err, ErrImportCycle) = false for %v", err)
	}
	var ce *CycleError
	if !errors.As(err, &ce) {
		t.Fatalf("error %T does not unwrap to *CycleError", err)
	}
	if len(ce.Cycle) != 2 || ce.Cycle[0] != "m/a" || ce.Cycle[1] != "m/b" {
		t.Errorf("Cycle = %v, want [m/a m/b]", ce.Cycle)
	}
}

// Self-imports in broken metadata must not deadlock the sort.
func TestTopoSortSelfImportIgnored(t *testing.T) {
	metas := []goListPkg{{ImportPath: "m/self", Imports: []string{"m/self"}}}
	out, err := topoSortPackages(metas)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0].ImportPath != "m/self" {
		t.Fatalf("out = %v", out)
	}
}
