package analysis_test

import (
	"testing"

	"netconstant/internal/analysis"
	"netconstant/internal/analysis/analysistest"
)

// kern defines one annotated (fact-carrying) and one unannotated kernel;
// user's annotated step exercises every banned construct, the clean
// arena idioms, the cross-package fact check, and one allow.
func TestHotalloc(t *testing.T) {
	analysistest.RunDeps(t, "testdata", []string{
		"hotalloc/internal/kern",
		"hotalloc/internal/user",
	}, analysis.Hotalloc)
}
