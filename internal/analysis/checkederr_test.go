package analysis_test

import (
	"testing"

	"netconstant/internal/analysis"
	"netconstant/internal/analysis/analysistest"
)

func TestCheckederr(t *testing.T) {
	analysistest.Run(t, "testdata", "checkederr/a", analysis.Checkederr)
}
