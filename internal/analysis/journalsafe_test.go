package analysis_test

import (
	"testing"

	"netconstant/internal/analysis"
	"netconstant/internal/analysis/analysistest"
)

// Package a roots journaled types through a forwarding wrapper (the
// fixpoint promotes EncodeAny to a sink); package b reaches the journal
// only through a's exported GobSinkFact.
func TestJournalsafe(t *testing.T) {
	analysistest.RunDeps(t, "testdata", []string{
		"journalsafe/internal/a",
		"journalsafe/internal/b",
	}, analysis.Journalsafe)
}
