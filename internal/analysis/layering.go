package analysis

import (
	"sort"
	"strconv"
	"strings"
)

// Layering freezes the module's import DAG. The architecture the repo
// grew PR by PR — pure utility leaves at the bottom, the
// topo→simnet→cloud→core→exp→plan spine in the middle, commands on top
// reaching down only through their declared entry points — exists today
// only as convention; one convenient import from internal/mat up into
// internal/exp would invert the layering silently and compile fine.
// This analyzer makes every module-internal import edge a declared one:
// layeringAllowed below is the single allowed-edge table, and an import
// not in it is reported by naming the forbidden edge, so the diff that
// would bend the architecture has to edit the table in the same commit
// and say so in review.
//
// A package that is in scope (its normalized path starts with internal/
// or cmd/, or it is the facade package netconstant) but missing from the
// table is itself a finding: new packages must take a position in the
// DAG when they are born, not after the edges have calcified.
var Layering = &Analyzer{
	Name: "layering",
	Doc:  "module-internal imports must match the declared package DAG; violations name the forbidden edge",
	Run:  runLayering,
}

// layeringAllowed is THE layering table: for every in-scope package
// (path normalized to its internal/… or cmd/… suffix), the complete
// list of module-internal packages it may import. Layers, bottom to
// top (see DESIGN.md §12 for the same table drawn as a matrix):
//
//	L0 utility leaves:  mat stats cancel cli checkpoint des topo
//	                    sparse cost analysis
//	L1 modeling:        netmodel netcoord rpca simnet workflow mapping
//	L2 infrastructure:  mpi cloud faults
//	L3 decision:        core apps
//	L4 experiments:     exp
//	L5 orchestration:   plan chaos serve
//	cmd/*:              each command's declared entry points only
var layeringAllowed = map[string][]string{
	// L0 — leaves: import nothing module-internal.
	"internal/mat":        {},
	"internal/stats":      {},
	"internal/cancel":     {},
	"internal/cli":        {},
	"internal/checkpoint": {},
	"internal/des":        {},
	"internal/topo":       {},
	"internal/sparse":     {},
	"internal/cost":       {},
	"internal/analysis":   {},

	"internal/analysis/analysistest": {"internal/analysis"},

	// L1 — modeling over the leaves.
	"internal/netmodel": {"internal/mat"},
	"internal/netcoord": {"internal/mat"},
	"internal/rpca":     {"internal/cancel", "internal/mat"},
	"internal/simnet":   {"internal/des", "internal/mat", "internal/stats", "internal/topo"},
	"internal/workflow": {"internal/netmodel", "internal/stats"},
	"internal/mapping":  {"internal/mat", "internal/netmodel", "internal/stats"},

	// L2 — simulation/measurement infrastructure.
	"internal/mpi":    {"internal/des", "internal/mat", "internal/netmodel", "internal/simnet", "internal/topo"},
	"internal/cloud":  {"internal/cancel", "internal/mat", "internal/netmodel", "internal/simnet", "internal/stats", "internal/topo"},
	"internal/faults": {"internal/cloud", "internal/netmodel", "internal/stats", "internal/topo"},

	// L3 — decision layer.
	"internal/core": {"internal/cloud", "internal/mat", "internal/mpi", "internal/netmodel", "internal/rpca", "internal/topo"},
	"internal/apps": {"internal/mpi", "internal/sparse", "internal/stats"},

	// L4 — the experiment pipeline.
	"internal/exp": {
		"internal/apps", "internal/cancel", "internal/checkpoint", "internal/cloud",
		"internal/core", "internal/cost", "internal/faults", "internal/mapping",
		"internal/mat", "internal/mpi", "internal/netcoord", "internal/netmodel",
		"internal/rpca", "internal/stats", "internal/topo", "internal/workflow",
	},

	// L5 — orchestration over everything below.
	"internal/plan": {"internal/cli", "internal/exp"},
	"internal/chaos": {
		"internal/cancel", "internal/checkpoint", "internal/cloud", "internal/core",
		"internal/exp", "internal/faults", "internal/mat", "internal/plan",
		"internal/rpca", "internal/simnet", "internal/stats", "internal/topo",
	},
	"internal/serve": {
		"internal/cancel", "internal/checkpoint", "internal/cloud", "internal/core",
		"internal/mpi", "internal/stats", "internal/topo",
	},

	// The public facade re-exports the §IV–V pipeline.
	"netconstant": {
		"internal/cloud", "internal/core", "internal/faults", "internal/mat",
		"internal/mpi", "internal/netmodel", "internal/rpca",
	},

	// cmd/* — each command's declared entry points.
	"cmd/chaossoak":    {"internal/chaos", "internal/checkpoint", "internal/cli"},
	"cmd/expdriver":    {"internal/cancel", "internal/checkpoint", "internal/cli", "internal/cloud", "internal/exp"},
	"cmd/expfleet":     {"internal/checkpoint", "internal/cli", "internal/plan"},
	"cmd/netconstant":  {"internal/cli", "internal/cloud", "internal/core", "internal/faults", "internal/mpi", "internal/netcoord", "internal/stats", "internal/topo"},
	"cmd/netconstantd": {"internal/cli", "internal/serve"},
	"cmd/netlint":      {"internal/analysis", "internal/cli"},
	"cmd/rpcabench":    {"internal/cli", "internal/mat", "internal/rpca"},
	"cmd/servebench":   {"internal/cli", "internal/serve", "internal/stats"},
	"cmd/simbench":     {"internal/cancel", "internal/cli", "internal/cloud", "internal/exp", "internal/mat", "internal/simnet", "internal/topo"},
	"cmd/simcluster":   {"internal/cli", "internal/cloud", "internal/core", "internal/mapping", "internal/mpi", "internal/netcoord", "internal/stats", "internal/topo"},
	"cmd/streambench":  {"internal/cli", "internal/mat", "internal/rpca"},
}

// layerNormalize reduces an import path to its table key: the suffix
// starting at the first "internal" or "cmd" path segment ("netconstant/
// internal/mat" and a fixture's "layering/internal/mat" both become
// "internal/mat"), or "netconstant" for the facade. Paths with neither
// shape — the standard library, examples/ demo binaries — normalize to
// "" and are out of scope.
func layerNormalize(path string) string {
	if path == "netconstant" {
		return path
	}
	parts := strings.Split(path, "/")
	for i, p := range parts {
		if p == "internal" || p == "cmd" {
			return strings.Join(parts[i:], "/")
		}
	}
	return ""
}

func runLayering(pass *Pass) error {
	self := layerNormalize(pass.Pkg.Path())
	if self == "" {
		return nil
	}
	allowed, known := layeringAllowed[self]
	if !known {
		if len(pass.Files) > 0 {
			pass.Reportf(pass.Files[0].Name.Pos(),
				"package %s is missing from the layering table: declare its allowed imports in internal/analysis/layering.go", self)
		}
		return nil
	}
	allowSet := make(map[string]bool, len(allowed))
	for _, a := range allowed {
		allowSet[a] = true
	}
	for _, f := range pass.Files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			target := layerNormalize(path)
			if target == "" || target == self {
				continue
			}
			if !allowSet[target] {
				pass.Reportf(imp.Pos(),
					"forbidden import edge %s -> %s: not in the layering table (allowed from %s: %s)",
					self, target, self, strings.Join(sortedCopy(allowed), " "))
			}
		}
	}
	return nil
}

func sortedCopy(xs []string) []string {
	out := append([]string(nil), xs...)
	sort.Strings(out)
	if len(out) == 0 {
		out = []string{"(nothing)"}
	}
	return out
}
