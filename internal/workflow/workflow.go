// Package workflow implements network-aware scheduling of scientific
// workflows — the paper's other named future-work direction ("evaluate our
// approach with more complicated workloads such as scientific workflows",
// §VI). A workflow is a DAG of tasks with compute costs and inter-task
// data volumes; tasks are assigned to VMs by a HEFT-style list scheduler
// whose communication-cost estimates come from a pluggable performance
// matrix — the RPCA constant component, a direct-measurement heuristic, or
// nothing (uniform assumption) — and the resulting schedule's makespan is
// evaluated against the network a run actually experiences.
package workflow

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"netconstant/internal/netmodel"
	"netconstant/internal/stats"
)

// Task is one node of the workflow DAG.
type Task struct {
	ID      int
	Flops   float64 // compute demand
	Parents []int   // dependencies (data-flow edges point parent -> task)
}

// DAG is a workflow: tasks in topological ID order with data volumes on
// edges.
type DAG struct {
	Tasks []Task
	// Data[parent][child] = bytes transferred parent -> child (0 if no
	// edge). Stored sparsely.
	Data map[[2]int]float64
}

// Validate checks the DAG is well-formed: parent IDs precede children
// (IDs are topological), edges match the parent lists.
func (d *DAG) Validate() error {
	for _, t := range d.Tasks {
		for _, p := range t.Parents {
			if p < 0 || p >= t.ID {
				return fmt.Errorf("workflow: task %d has invalid parent %d", t.ID, p)
			}
		}
	}
	for e := range d.Data {
		if e[0] >= e[1] {
			return fmt.Errorf("workflow: edge %v not topological", e)
		}
	}
	return nil
}

// Volume returns the data volume on edge (p, c).
func (d *DAG) Volume(p, c int) float64 { return d.Data[[2]int{p, c}] }

// RandomDAG generates a layered scientific-workflow-like DAG: `layers`
// levels with `width` tasks each; every task depends on 1–3 tasks of the
// previous layer with data volumes in [minVol, maxVol] and compute demand
// in [minFlops, maxFlops].
func RandomDAG(rng *rand.Rand, layers, width int, minVol, maxVol, minFlops, maxFlops float64) *DAG {
	d := &DAG{Data: map[[2]int]float64{}}
	id := 0
	prev := []int{}
	for l := 0; l < layers; l++ {
		var cur []int
		for w := 0; w < width; w++ {
			t := Task{ID: id, Flops: stats.Uniform(rng, minFlops, maxFlops)}
			if len(prev) > 0 {
				deps := 1 + rng.Intn(3)
				if deps > len(prev) {
					deps = len(prev)
				}
				for _, k := range stats.SampleWithoutReplacement(rng, len(prev), deps) {
					p := prev[k]
					t.Parents = append(t.Parents, p)
					d.Data[[2]int{p, t.ID}] = stats.Uniform(rng, minVol, maxVol)
				}
				sort.Ints(t.Parents)
			}
			d.Tasks = append(d.Tasks, t)
			cur = append(cur, id)
			id++
		}
		prev = cur
	}
	return d
}

// Schedule maps every task to a VM with a start time.
type Schedule struct {
	VMOf     []int
	Start    []float64
	Finish   []float64
	Makespan float64
}

// Estimator supplies the communication-cost estimates the scheduler plans
// with; nil means "assume the network is uniform and free" (the blind
// baseline).
type Estimator = *netmodel.PerfMatrix

// HEFT performs list scheduling in upward-rank order: each task goes to
// the VM minimizing its earliest finish time, with communication costs
// charged from the estimator when producer and consumer land on different
// VMs. flopRate is per-VM compute speed. Returns the planned schedule
// (against estimated costs).
func HEFT(d *DAG, vms int, flopRate float64, est Estimator) (*Schedule, error) {
	if vms <= 0 || flopRate <= 0 {
		return nil, errors.New("workflow: need positive vms and flopRate")
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	n := len(d.Tasks)
	commEst := func(p, c, vmP, vmC int) float64 {
		if vmP == vmC {
			return 0
		}
		vol := d.Volume(p, c)
		if vol == 0 {
			return 0
		}
		if est == nil {
			return 0 // the blind scheduler assumes communication is free
		}
		return est.Link(vmP, vmC).TransferTime(vol)
	}

	// Upward rank: critical-path-to-exit length using mean communication
	// cost estimates.
	meanComm := func(p, c int) float64 {
		vol := d.Volume(p, c)
		if vol == 0 || est == nil {
			return 0
		}
		var sum float64
		cnt := 0
		for a := 0; a < est.N; a++ {
			for b := 0; b < est.N; b++ {
				if a != b {
					sum += est.Link(a, b).TransferTime(vol)
					cnt++
				}
			}
		}
		if cnt == 0 {
			return 0
		}
		return sum / float64(cnt)
	}
	// Collect-then-sort so child order never depends on map hashing.
	edges := make([][2]int, 0, len(d.Data))
	for e := range d.Data {
		edges = append(edges, e)
	}
	sort.Slice(edges, func(a, b int) bool {
		if edges[a][0] != edges[b][0] {
			return edges[a][0] < edges[b][0]
		}
		return edges[a][1] < edges[b][1]
	})
	children := make([][]int, n)
	for _, e := range edges {
		children[e[0]] = append(children[e[0]], e[1])
	}
	rank := make([]float64, n)
	for id := n - 1; id >= 0; id-- {
		best := 0.0
		for _, c := range children[id] {
			if v := meanComm(id, c) + rank[c]; v > best {
				best = v
			}
		}
		rank[id] = d.Tasks[id].Flops/flopRate + best
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return rank[order[a]] > rank[order[b]] })

	s := &Schedule{VMOf: make([]int, n), Start: make([]float64, n), Finish: make([]float64, n)}
	for i := range s.VMOf {
		s.VMOf[i] = -1
	}
	vmFree := make([]float64, vms)
	for _, id := range order {
		t := d.Tasks[id]
		// Dependencies must already be placed (topological IDs + rank order
		// guarantee parents have higher rank... not necessarily; enforce).
		for _, p := range t.Parents {
			if s.VMOf[p] == -1 {
				return nil, fmt.Errorf("workflow: parent %d of task %d unscheduled (rank order broken)", p, id)
			}
		}
		bestVM, bestFinish, bestStart := -1, math.Inf(1), 0.0
		for vm := 0; vm < vms; vm++ {
			ready := vmFree[vm]
			for _, p := range t.Parents {
				arr := s.Finish[p] + commEst(p, id, s.VMOf[p], vm)
				if arr > ready {
					ready = arr
				}
			}
			finish := ready + t.Flops/flopRate
			if finish < bestFinish {
				bestVM, bestFinish, bestStart = vm, finish, ready
			}
		}
		s.VMOf[id] = bestVM
		s.Start[id] = bestStart
		s.Finish[id] = bestFinish
		vmFree[bestVM] = bestFinish
		if bestFinish > s.Makespan {
			s.Makespan = bestFinish
		}
	}
	return s, nil
}

// RoundRobin is the baseline assignment: task i on VM i mod vms, executed
// as early as dependencies allow.
func RoundRobin(d *DAG, vms int) []int {
	out := make([]int, len(d.Tasks))
	for i := range out {
		out[i] = i % vms
	}
	return out
}

// Evaluate computes the actual makespan of a fixed assignment against the
// network performance a run experiences (actual), with per-VM serial
// execution in topological order and communication charged on
// cross-VM edges.
func Evaluate(d *DAG, assign []int, vms int, flopRate float64, actual *netmodel.PerfMatrix) (float64, error) {
	if len(assign) != len(d.Tasks) {
		return 0, errors.New("workflow: assignment length mismatch")
	}
	if err := d.Validate(); err != nil {
		return 0, err
	}
	finish := make([]float64, len(d.Tasks))
	vmFree := make([]float64, vms)
	var makespan float64
	for _, t := range d.Tasks {
		vm := assign[t.ID]
		if vm < 0 || vm >= vms {
			return 0, fmt.Errorf("workflow: task %d on invalid VM %d", t.ID, vm)
		}
		ready := vmFree[vm]
		for _, p := range t.Parents {
			arr := finish[p]
			if pvm := assign[p]; pvm != vm {
				arr += actual.Link(pvm, vm).TransferTime(d.Volume(p, t.ID))
			}
			if arr > ready {
				ready = arr
			}
		}
		finish[t.ID] = ready + t.Flops/flopRate
		vmFree[vm] = finish[t.ID]
		if finish[t.ID] > makespan {
			makespan = finish[t.ID]
		}
	}
	return makespan, nil
}
