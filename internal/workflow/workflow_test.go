package workflow

import (
	"math/rand"
	"testing"
	"testing/quick"

	"netconstant/internal/netmodel"
	"netconstant/internal/stats"
)

func testPerf(rng *rand.Rand, n int) *netmodel.PerfMatrix {
	f := make([]float64, n)
	for i := range f {
		f[i] = 0.3 + 0.7*rng.Float64()
	}
	pm := netmodel.NewPerfMatrix(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				pm.SetLink(i, j, netmodel.Link{Alpha: 3e-4, Beta: 100e6 * f[i] * f[j]})
			}
		}
	}
	return pm
}

func TestRandomDAGValid(t *testing.T) {
	rng := stats.NewRNG(1)
	d := RandomDAG(rng, 4, 5, 1<<20, 8<<20, 1e9, 5e9)
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(d.Tasks) != 20 {
		t.Fatalf("tasks %d", len(d.Tasks))
	}
	// First layer has no parents; later layers have 1-3.
	for i := 0; i < 5; i++ {
		if len(d.Tasks[i].Parents) != 0 {
			t.Error("layer-0 task with parents")
		}
	}
	for i := 5; i < 20; i++ {
		if np := len(d.Tasks[i].Parents); np < 1 || np > 3 {
			t.Errorf("task %d parents %d", i, np)
		}
	}
}

func TestValidateRejectsBadDAG(t *testing.T) {
	d := &DAG{Tasks: []Task{{ID: 0, Parents: []int{0}}}, Data: map[[2]int]float64{}}
	if d.Validate() == nil {
		t.Error("self-parent should fail")
	}
	d2 := &DAG{Tasks: []Task{{ID: 0}, {ID: 1}}, Data: map[[2]int]float64{{1, 0}: 5}}
	if d2.Validate() == nil {
		t.Error("backward edge should fail")
	}
}

func TestHEFTSchedulesAllTasks(t *testing.T) {
	rng := stats.NewRNG(2)
	d := RandomDAG(rng, 5, 4, 1<<20, 8<<20, 1e9, 5e9)
	perf := testPerf(rng, 6)
	s, err := HEFT(d, 6, 1e9, perf)
	if err != nil {
		t.Fatal(err)
	}
	for id, vm := range s.VMOf {
		if vm < 0 || vm >= 6 {
			t.Fatalf("task %d on vm %d", id, vm)
		}
	}
	// Dependency order respected in the plan.
	for _, task := range d.Tasks {
		for _, p := range task.Parents {
			if s.Finish[p] > s.Start[task.ID]+1e-9 {
				t.Fatalf("task %d starts before parent %d finishes", task.ID, p)
			}
		}
	}
	if s.Makespan <= 0 {
		t.Error("makespan")
	}
}

func TestHEFTErrors(t *testing.T) {
	d := RandomDAG(stats.NewRNG(3), 2, 2, 1, 2, 1, 2)
	if _, err := HEFT(d, 0, 1e9, nil); err == nil {
		t.Error("zero VMs should error")
	}
	if _, err := HEFT(d, 2, 0, nil); err == nil {
		t.Error("zero flop rate should error")
	}
	bad := &DAG{Tasks: []Task{{ID: 0, Parents: []int{0}}}, Data: map[[2]int]float64{}}
	if _, err := HEFT(bad, 2, 1e9, nil); err == nil {
		t.Error("invalid DAG should error")
	}
}

func TestEvaluateMatchesHandComputation(t *testing.T) {
	// Two tasks on two VMs: t0 (1e9 flops) then t1 depends on t0 with 1e6
	// bytes over a 1e6 B/s link: makespan = 1 + 1 + 1 = 3 s.
	d := &DAG{
		Tasks: []Task{{ID: 0, Flops: 1e9}, {ID: 1, Flops: 1e9, Parents: []int{0}}},
		Data:  map[[2]int]float64{{0, 1}: 1e6},
	}
	pm := netmodel.NewPerfMatrix(2)
	pm.SetLink(0, 1, netmodel.Link{Alpha: 0, Beta: 1e6})
	pm.SetLink(1, 0, netmodel.Link{Alpha: 0, Beta: 1e6})
	ms, err := Evaluate(d, []int{0, 1}, 2, 1e9, pm)
	if err != nil {
		t.Fatal(err)
	}
	if ms != 3 {
		t.Errorf("makespan %v want 3", ms)
	}
	// Co-located: no communication: 2 s.
	ms2, _ := Evaluate(d, []int{0, 0}, 2, 1e9, pm)
	if ms2 != 2 {
		t.Errorf("co-located makespan %v want 2", ms2)
	}
}

func TestEvaluateErrors(t *testing.T) {
	d := RandomDAG(stats.NewRNG(4), 2, 2, 1, 2, 1, 2)
	pm := testPerf(stats.NewRNG(5), 2)
	if _, err := Evaluate(d, []int{0}, 2, 1e9, pm); err == nil {
		t.Error("length mismatch should error")
	}
	if _, err := Evaluate(d, []int{0, 0, 0, 9}, 2, 1e9, pm); err == nil {
		t.Error("invalid VM should error")
	}
}

func TestNetworkAwareHEFTBeatsBaselines(t *testing.T) {
	// The future-work claim, demonstrated: HEFT planning with an accurate
	// performance estimate produces shorter actual makespans than both
	// round-robin and network-blind HEFT, on average over several DAGs.
	rng := stats.NewRNG(6)
	var aware, blind, rrobin float64
	vms := 8
	for trial := 0; trial < 10; trial++ {
		perf := testPerf(rng, vms)
		d := RandomDAG(rng, 5, 6, 4<<20, 32<<20, 5e8, 2e9)

		sAware, err := HEFT(d, vms, 1e9, perf)
		if err != nil {
			t.Fatal(err)
		}
		sBlind, err := HEFT(d, vms, 1e9, nil)
		if err != nil {
			t.Fatal(err)
		}
		a, _ := Evaluate(d, sAware.VMOf, vms, 1e9, perf)
		b, _ := Evaluate(d, sBlind.VMOf, vms, 1e9, perf)
		r, _ := Evaluate(d, RoundRobin(d, vms), vms, 1e9, perf)
		aware += a
		blind += b
		rrobin += r
	}
	if aware >= blind {
		t.Errorf("aware %v should beat blind %v", aware, blind)
	}
	if aware >= rrobin {
		t.Errorf("aware %v should beat round-robin %v", aware, rrobin)
	}
}

// Property: evaluated makespan is at least the critical path's compute
// time, for any random DAG and assignment.
func TestPropertyMakespanLowerBound(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := RandomDAG(rng, 2+rng.Intn(3), 2+rng.Intn(3), 1e6, 2e6, 1e9, 2e9)
		vms := 2 + rng.Intn(4)
		perf := testPerf(rng, vms)
		assign := RoundRobin(d, vms)
		ms, err := Evaluate(d, assign, vms, 1e9, perf)
		if err != nil {
			return false
		}
		// Critical path compute-only lower bound.
		cp := make([]float64, len(d.Tasks))
		var bound float64
		for _, t := range d.Tasks {
			best := 0.0
			for _, p := range t.Parents {
				if cp[p] > best {
					best = cp[p]
				}
			}
			cp[t.ID] = best + t.Flops/1e9
			if cp[t.ID] > bound {
				bound = cp[t.ID]
			}
		}
		return ms >= bound-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
