package serve

// Server is the multi-tenant advisor daemon's engine: the HTTP surface,
// the shard set, the shared cross-tenant calibration memo, and the
// per-tenant journals under Dir. cmd/netconstantd wraps it in an
// http.Server and the two-stage signal drain; tests and the chaos
// oracle drive it directly.

import (
	"context"
	"encoding/json"
	"errors"

	"net/http"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"netconstant/internal/checkpoint"
	"netconstant/internal/cloud"
)

// Config tunes the server. Zero values select the defaults in
// parentheses.
type Config struct {
	// Dir is where per-tenant journals and snapshots live. Required.
	Dir string
	// Shards is the number of single-writer shard goroutines (4).
	Shards int
	// QueueDepth bounds each shard's admission queue (64); a full queue
	// sheds requests with a typed 429 instead of queueing unboundedly.
	QueueDepth int
	// SnapshotEvery compacts a tenant's journal after this many tail
	// records (64).
	SnapshotEvery int
	// MemoCapacity bounds the shared cross-tenant calibration memo (64).
	MemoCapacity int
	// DefaultTimeout bounds each request when the client sends no
	// ?timeout_ms (0 = unbounded).
	DefaultTimeout time.Duration
}

func (c *Config) applyDefaults() {
	if c.Shards == 0 {
		c.Shards = 4
	}
	if c.QueueDepth == 0 {
		c.QueueDepth = 64
	}
	if c.SnapshotEvery == 0 {
		c.SnapshotEvery = 64
	}
	if c.MemoCapacity == 0 {
		c.MemoCapacity = 64
	}
}

// Server owns the shards and implements http.Handler.
type Server struct {
	cfg     Config
	baseCtx context.Context // server lifetime; bounds replays and streaming sessions
	memo    *cloud.CalibrationMemo
	shards  []*shard
	mux     *http.ServeMux
	wg      sync.WaitGroup

	draining  atomic.Bool
	closeOnce sync.Once
	closeErr  error

	qmu         sync.Mutex
	quarantined map[string]string // tenant id → reason
}

var tenantIDPat = regexp.MustCompile(`^[A-Za-z0-9_-]{1,64}$`)

// New opens (or creates) the journal directory, rebuilds every tenant
// found there — quarantining, not failing on, any whose journal cannot
// replay — and starts the shard goroutines. ctx is the server's
// lifetime: it bounds journal replays and tenant streaming sessions,
// and should be cancelled only after Close.
func New(ctx context.Context, cfg Config) (*Server, error) {
	cfg.applyDefaults()
	if cfg.Dir == "" {
		return nil, errors.New("serve: Config.Dir is required")
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, err
	}
	s := &Server{
		cfg:         cfg,
		baseCtx:     ctx,
		memo:        cloud.NewCalibrationMemo(cfg.MemoCapacity),
		quarantined: map[string]string{},
	}
	for i := 0; i < cfg.Shards; i++ {
		s.shards = append(s.shards, newShard(s, cfg.QueueDepth))
	}
	if err := s.loadExisting(); err != nil {
		return nil, err
	}
	s.wg.Add(len(s.shards))
	for _, sh := range s.shards {
		go sh.loop()
	}
	s.routes()
	return s, nil
}

// loadExisting scans Dir and rebuilds each tenant before the shard
// goroutines start (so the tenant maps are still single-owner). Damage
// is contained per tenant: an unopenable store or unreplayable journal
// quarantines that tenant and the scan continues.
func (s *Server) loadExisting() error {
	entries, err := os.ReadDir(s.cfg.Dir)
	if err != nil {
		return err
	}
	ids := map[string]bool{}
	for _, e := range entries {
		name := e.Name()
		if id, ok := strings.CutSuffix(name, ".nclog"); ok {
			ids[id] = true
		} else if id, ok := strings.CutSuffix(name, ".ncsnap"); ok {
			ids[id] = true
		}
	}
	sorted := make([]string, 0, len(ids))
	for id := range ids {
		sorted = append(sorted, id)
	}
	sort.Strings(sorted)
	for _, id := range sorted {
		store, err := checkpoint.OpenStore(s.journalPath(id), s.snapPath(id))
		if err != nil {
			s.quarantine(id, err)
			continue
		}
		t, err := rebuildTenant(s, id, store)
		if err != nil {
			store.Close()
			s.quarantine(id, err)
			continue
		}
		s.shardFor(id).install(t)
	}
	return nil
}

func (s *Server) journalPath(id string) string { return filepath.Join(s.cfg.Dir, id+".nclog") }
func (s *Server) snapPath(id string) string    { return filepath.Join(s.cfg.Dir, id+".ncsnap") }

func (s *Server) shardFor(id string) *shard {
	return s.shards[shardIndex(id, len(s.shards))]
}

// quarantine marks a tenant unreachable; every request for it gets the
// typed refusal until an operator repairs or removes its files.
func (s *Server) quarantine(id string, err error) {
	s.qmu.Lock()
	defer s.qmu.Unlock()
	s.quarantined[id] = err.Error()
}

func (s *Server) quarantineReason(id string) (string, bool) {
	s.qmu.Lock()
	defer s.qmu.Unlock()
	reason, ok := s.quarantined[id]
	return reason, ok
}

// Quarantined returns the sorted quarantined tenant IDs.
func (s *Server) Quarantined() []string {
	s.qmu.Lock()
	defer s.qmu.Unlock()
	ids := make([]string, 0, len(s.quarantined))
	for id := range s.quarantined {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// MemoStats exposes the shared calibration memo's effectiveness.
func (s *Server) MemoStats() cloud.MemoStats { return s.memo.Stats() }

// Drain stops admitting requests: handlers and shard submission refuse
// with the typed draining error while in-flight work completes. Call
// before http.Server.Shutdown so keep-alive connections see refusals
// rather than hangs.
func (s *Server) Drain() { s.draining.Store(true) }

// Close drains (if not already), closes every shard queue, waits for
// the shard goroutines to finish their admitted work and seal
// snapshots, and reports the first seal failure.
func (s *Server) Close() error {
	s.closeOnce.Do(func() {
		s.Drain()
		for _, sh := range s.shards {
			sh.close()
		}
		s.wg.Wait()
		for _, sh := range s.shards {
			if sh.sealErr != nil && s.closeErr == nil {
				s.closeErr = sh.sealErr
			}
		}
	})
	return s.closeErr
}

func (s *Server) routes() {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("PUT /v1/tenants/{id}", s.handleCreate)
	mux.HandleFunc("GET /v1/tenants/{id}", s.handleStatus)
	mux.HandleFunc("POST /v1/tenants/{id}/calibrate", s.opHandler(func(r *http.Request) (op, error) {
		return op{Kind: opCalibrate}, nil
	}))
	mux.HandleFunc("POST /v1/tenants/{id}/observe", s.handleObserve)
	mux.HandleFunc("POST /v1/tenants/{id}/advance", s.opHandler(func(r *http.Request) (op, error) {
		var req AdvanceRequest
		if err := decodeBody(r, &req); err != nil {
			return op{}, err
		}
		return op{Kind: opAdvance, Dt: req.Dt}, nil
	}))
	mux.HandleFunc("POST /v1/tenants/{id}/stream/begin", s.opHandler(func(r *http.Request) (op, error) {
		return op{Kind: opStreamBegin}, nil
	}))
	mux.HandleFunc("POST /v1/tenants/{id}/stream/pair", s.opHandler(func(r *http.Request) (op, error) {
		var req StreamPairRequest
		if err := decodeBody(r, &req); err != nil {
			return op{}, err
		}
		return op{Kind: opStreamPair, Src: req.Src, Dst: req.Dst, Lat: req.Lat, Bw: req.Bw}, nil
	}))
	mux.HandleFunc("POST /v1/tenants/{id}/resolve", s.opHandler(func(r *http.Request) (op, error) {
		return op{Kind: opResolve}, nil
	}))
	mux.HandleFunc("POST /v1/tenants/{id}/advise", s.handleAdvise)
	s.mux = mux
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// requestCtx derives the per-request deadline: ?timeout_ms wins,
// DefaultTimeout otherwise, unbounded when both are absent.
func (s *Server) requestCtx(r *http.Request) (context.Context, context.CancelFunc, error) {
	ctx := r.Context()
	d := s.cfg.DefaultTimeout
	if v := r.URL.Query().Get("timeout_ms"); v != "" {
		ms, err := strconv.Atoi(v)
		if err != nil || ms <= 0 {
			return nil, nil, errf("timeout_ms must be a positive integer, got %q", v)
		}
		d = time.Duration(ms) * time.Millisecond
	}
	if d > 0 {
		ctx, cancelCtx := context.WithTimeout(ctx, d)
		return ctx, cancelCtx, nil
	}
	ctx, cancelCtx := context.WithCancel(ctx)
	return ctx, cancelCtx, nil
}

// admit runs the shared front-door checks: drain state and tenant ID
// shape.
func (s *Server) admit(w http.ResponseWriter, r *http.Request) (string, bool) {
	if s.draining.Load() {
		writeError(w, ErrDraining)
		return "", false
	}
	id := r.PathValue("id")
	if !tenantIDPat.MatchString(id) {
		writeError(w, errf("tenant id must match %s", tenantIDPat))
		return "", false
	}
	return id, true
}

func decodeBody(r *http.Request, v any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return errf("request body: %v", err)
	}
	return nil
}

// mutate submits a journaled mutation to the tenant's shard: apply,
// then journal, then ack. An apply error that may have left partial
// state rebuilds the tenant from its journal before the error returns,
// so no half-applied mutation survives into later requests.
func (s *Server) mutate(ctx context.Context, id string, o op) (opResult, uint64, error) {
	sh := s.shardFor(id)
	var res opResult
	var seq uint64
	err := sh.submit(ctx, func(ctx context.Context) error {
		t, err := sh.tenantFor(id)
		if err != nil {
			return err
		}
		r, mutated, err := t.applyOp(ctx, o)
		if err != nil {
			if mutated {
				sh.rebuild(t)
			}
			return err
		}
		if err := t.journalOp(o); err != nil {
			// Applied but not durable: roll the in-memory state back to
			// the journaled prefix so acks and the journal never diverge.
			sh.rebuild(t)
			return err
		}
		sh.mutations.Add(1)
		sh.updateTail()
		res, seq = r, t.store.Seq()
		return nil
	})
	return res, seq, err
}

// inspect submits a read-only task to the tenant's shard (reads are
// serialized with mutations by the single-writer loop, not locks).
func (s *Server) inspect(ctx context.Context, id string, fn func(t *tenant) error) error {
	sh := s.shardFor(id)
	return sh.submit(ctx, func(context.Context) error {
		t, err := sh.tenantFor(id)
		if err != nil {
			return err
		}
		return fn(t)
	})
}

func (s *Server) handleCreate(w http.ResponseWriter, r *http.Request) {
	id, ok := s.admit(w, r)
	if !ok {
		return
	}
	var cfg TenantConfig
	if err := decodeBody(r, &cfg); err != nil {
		writeError(w, err)
		return
	}
	cfg.applyDefaults()
	if err := cfg.validate(); err != nil {
		writeError(w, err)
		return
	}
	ctx, done, err := s.requestCtx(r)
	if err != nil {
		writeError(w, err)
		return
	}
	defer done()
	sh := s.shardFor(id)
	var status StatusResponse
	err = sh.submit(ctx, func(ctx context.Context) error {
		if reason, quarantined := s.quarantineReason(id); quarantined {
			return wrapf(errQuarantined, "%s: %s", id, reason)
		}
		if _, exists := sh.tenants[id]; exists {
			return wrapf(errExists, "%s", id)
		}
		store, err := checkpoint.OpenStore(s.journalPath(id), s.snapPath(id))
		if err != nil {
			return err
		}
		t, err := newTenant(s, id, cfg, store)
		if err == nil {
			err = t.journalOp(op{Kind: opCreate, Cfg: &t.cfg})
		}
		if err != nil {
			// Nothing admitted: drop the empty store files so a later
			// create (or restart) doesn't trip over a record-less journal.
			store.Close()
			os.Remove(s.journalPath(id))
			os.Remove(s.snapPath(id))
			return err
		}
		sh.install(t)
		sh.mutations.Add(1)
		status = t.status()
		return nil
	})
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, status)
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	id, ok := s.admit(w, r)
	if !ok {
		return
	}
	ctx, done, err := s.requestCtx(r)
	if err != nil {
		writeError(w, err)
		return
	}
	defer done()
	var status StatusResponse
	if err := s.inspect(ctx, id, func(t *tenant) error {
		status = t.status()
		return nil
	}); err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, status)
}

// opHandler builds the POST handler for a journaled mutation whose
// response is the tenant's refreshed status.
func (s *Server) opHandler(parse func(r *http.Request) (op, error)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		id, ok := s.admit(w, r)
		if !ok {
			return
		}
		o, err := parse(r)
		if err != nil {
			writeError(w, err)
			return
		}
		ctx, done, err := s.requestCtx(r)
		if err != nil {
			writeError(w, err)
			return
		}
		defer done()
		if _, _, err := s.mutate(ctx, id, o); err != nil {
			writeError(w, err)
			return
		}
		var status StatusResponse
		if err := s.inspect(ctx, id, func(t *tenant) error {
			status = t.status()
			return nil
		}); err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, status)
	}
}

func (s *Server) handleObserve(w http.ResponseWriter, r *http.Request) {
	id, ok := s.admit(w, r)
	if !ok {
		return
	}
	var req ObserveRequest
	if err := decodeBody(r, &req); err != nil {
		writeError(w, err)
		return
	}
	ctx, done, err := s.requestCtx(r)
	if err != nil {
		writeError(w, err)
		return
	}
	defer done()
	res, seq, err := s.mutate(ctx, id, op{Kind: opObserve, Expected: req.Expected, Actual: req.Actual})
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, ObserveResponse{Tenant: id, Triggered: res.Triggered, Seq: seq})
}

func (s *Server) handleAdvise(w http.ResponseWriter, r *http.Request) {
	id, ok := s.admit(w, r)
	if !ok {
		return
	}
	var req AdviseRequest
	if err := decodeBody(r, &req); err != nil {
		writeError(w, err)
		return
	}
	ctx, done, err := s.requestCtx(r)
	if err != nil {
		writeError(w, err)
		return
	}
	defer done()
	var resp AdviseResponse
	if err := s.inspect(ctx, id, func(t *tenant) error {
		var err error
		resp, err = t.advise(req)
		return err
	}); err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	resp := HealthResponse{Status: "ok", Quarantined: s.Quarantined()}
	if s.draining.Load() {
		resp.Status = "draining"
	}
	if resp.Quarantined == nil {
		resp.Quarantined = []string{}
	}
	for _, sh := range s.shards {
		resp.Shards = append(resp.Shards, ShardHealth{
			Queue:       len(sh.ch),
			Served:      sh.served.Load(),
			Shed:        sh.shed.Load(),
			Mutations:   sh.mutations.Load(),
			Tenants:     sh.tenantN.Load(),
			JournalTail: sh.tail.Load(),
		})
	}
	writeJSON(w, http.StatusOK, resp)
}
