package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// testConfig keeps tenants small so a full calibrate runs in
// milliseconds.
func testTenantBody(seed int64) string {
	return fmt.Sprintf(`{"vms":6,"seed":%d,"steps":3,"racks":4,"servers_per_rack":4,"gap":5,"threshold":0.5}`, seed)
}

func newTestServer(t *testing.T, ctx context.Context, dir string, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	cfg.Dir = dir
	s, err := New(ctx, cfg)
	if err != nil {
		t.Fatalf("serve.New: %v", err)
	}
	hs := httptest.NewServer(s)
	return s, hs
}

func doReq(t *testing.T, method, url, body string) (int, string) {
	t.Helper()
	var rd io.Reader
	if body != "" {
		rd = strings.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	buf, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(buf)
}

func mustStatus(t *testing.T, wantCode int, gotCode int, body string) {
	t.Helper()
	if gotCode != wantCode {
		t.Fatalf("status %d, want %d; body: %s", gotCode, wantCode, body)
	}
}

// runTrace drives a representative multi-tenant request trace and
// returns each tenant's post-trace probe responses (status + advise),
// the byte-level state the restart oracle compares.
func runTrace(t *testing.T, base string, tenants []string) map[string]string {
	t.Helper()
	for i, id := range tenants {
		code, body := doReq(t, http.MethodPut, base+"/v1/tenants/"+id, testTenantBody(int64(100+i)))
		mustStatus(t, http.StatusCreated, code, body)
	}
	for _, id := range tenants {
		code, body := doReq(t, http.MethodPost, base+"/v1/tenants/"+id+"/calibrate", "")
		mustStatus(t, http.StatusOK, code, body)
		code, body = doReq(t, http.MethodPost, base+"/v1/tenants/"+id+"/advance", `{"dt":30}`)
		mustStatus(t, http.StatusOK, code, body)
		// A quiet observation, then a spike that forces maintenance.
		code, body = doReq(t, http.MethodPost, base+"/v1/tenants/"+id+"/observe", `{"expected":1,"actual":1.1}`)
		mustStatus(t, http.StatusOK, code, body)
		code, body = doReq(t, http.MethodPost, base+"/v1/tenants/"+id+"/observe", `{"expected":1,"actual":9}`)
		mustStatus(t, http.StatusOK, code, body)
		var ob ObserveResponse
		if err := json.Unmarshal([]byte(body), &ob); err != nil || !ob.Triggered {
			t.Fatalf("spike observe should trigger maintenance: %s (err %v)", body, err)
		}
	}
	// One tenant opens a streaming session and resolves.
	id := tenants[0]
	code, body := doReq(t, http.MethodPost, base+"/v1/tenants/"+id+"/stream/begin", "")
	mustStatus(t, http.StatusOK, code, body)
	code, body = doReq(t, http.MethodPost, base+"/v1/tenants/"+id+"/stream/pair",
		`{"src":0,"dst":1,"lat":[0.001,0.0011,0.0012],"bw":[1e8,1.1e8,0.9e8]}`)
	mustStatus(t, http.StatusOK, code, body)
	code, body = doReq(t, http.MethodPost, base+"/v1/tenants/"+id+"/resolve", "")
	mustStatus(t, http.StatusOK, code, body)
	return probeAll(t, base, tenants)
}

// probeAll captures the deterministic read surface for each tenant.
func probeAll(t *testing.T, base string, tenants []string) map[string]string {
	t.Helper()
	out := map[string]string{}
	for _, id := range tenants {
		code, status := doReq(t, http.MethodGet, base+"/v1/tenants/"+id, "")
		mustStatus(t, http.StatusOK, code, status)
		code, advise := doReq(t, http.MethodPost, base+"/v1/tenants/"+id+"/advise",
			`{"strategy":"rpca","root":0,"msg_bytes":1048576}`)
		mustStatus(t, http.StatusOK, code, advise)
		out[id] = status + advise
	}
	return out
}

// TestServerRestartEquivalence: a server closed cleanly and reopened
// from its journals answers byte-identically — including tenants whose
// state came from observe-triggered recalibrations and streaming
// partial resolves.
func TestServerRestartEquivalence(t *testing.T) {
	ctx, done := context.WithCancel(context.Background())
	defer done()
	dir := t.TempDir()
	tenants := []string{"alpha", "beta", "gamma"}

	s1, hs1 := newTestServer(t, ctx, dir, Config{Shards: 2, SnapshotEvery: 4})
	before := runTrace(t, hs1.URL, tenants)
	hs1.Close()
	if err := s1.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	s2, hs2 := newTestServer(t, ctx, dir, Config{Shards: 2, SnapshotEvery: 4})
	defer s2.Close()
	defer hs2.Close()
	if q := s2.Quarantined(); len(q) != 0 {
		t.Fatalf("clean restart quarantined %v", q)
	}
	after := probeAll(t, hs2.URL, tenants)
	for _, id := range tenants {
		if before[id] != after[id] {
			t.Fatalf("tenant %s diverged across restart:\nbefore: %s\nafter:  %s", id, before[id], after[id])
		}
	}
	// The restarted server keeps accepting mutations.
	code, body := doReq(t, http.MethodPost, hs2.URL+"/v1/tenants/alpha/observe", `{"expected":1,"actual":1.05}`)
	mustStatus(t, http.StatusOK, code, body)
}

// TestServerRestartEquivalenceDifferentShardCount: restart equivalence
// must not depend on the shard layout, only on the journals.
func TestServerRestartEquivalenceDifferentShardCount(t *testing.T) {
	ctx, done := context.WithCancel(context.Background())
	defer done()
	dir := t.TempDir()
	tenants := []string{"alpha", "beta"}
	s1, hs1 := newTestServer(t, ctx, dir, Config{Shards: 1})
	before := runTrace(t, hs1.URL, tenants)
	hs1.Close()
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}
	s2, hs2 := newTestServer(t, ctx, dir, Config{Shards: 4})
	defer s2.Close()
	defer hs2.Close()
	after := probeAll(t, hs2.URL, tenants)
	for _, id := range tenants {
		if before[id] != after[id] {
			t.Fatalf("tenant %s diverged across shard-count change", id)
		}
	}
}

// TestServerQuarantineIsolation: damaging one tenant's files quarantines
// exactly that tenant — typed refusal for it, byte-identical answers for
// its neighbors, and a /healthz listing.
func TestServerQuarantineIsolation(t *testing.T) {
	ctx, done := context.WithCancel(context.Background())
	defer done()
	dir := t.TempDir()
	tenants := []string{"alpha", "beta", "gamma"}
	s1, hs1 := newTestServer(t, ctx, dir, Config{})
	before := runTrace(t, hs1.URL, tenants)
	hs1.Close()
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}

	// Damage alpha's snapshot mid-payload.
	snap := filepath.Join(dir, "alpha.ncsnap")
	buf, err := os.ReadFile(snap)
	if err != nil {
		t.Fatal(err)
	}
	buf[len(buf)/2] ^= 0x20
	if err := os.WriteFile(snap, buf, 0o644); err != nil {
		t.Fatal(err)
	}

	s2, hs2 := newTestServer(t, ctx, dir, Config{})
	defer s2.Close()
	defer hs2.Close()
	code, body := doReq(t, http.MethodGet, hs2.URL+"/v1/tenants/alpha", "")
	mustStatus(t, http.StatusGone, code, body)
	var eb errorBody
	if err := json.Unmarshal([]byte(body), &eb); err != nil || eb.Code != "quarantined" {
		t.Fatalf("quarantined refusal not typed: %s", body)
	}
	// Mutations are refused too.
	code, body = doReq(t, http.MethodPost, hs2.URL+"/v1/tenants/alpha/calibrate", "")
	mustStatus(t, http.StatusGone, code, body)
	// Neighbors are untouched.
	after := probeAll(t, hs2.URL, tenants[1:])
	for _, id := range tenants[1:] {
		if before[id] != after[id] {
			t.Fatalf("healthy tenant %s diverged after neighbor quarantine", id)
		}
	}
	// healthz lists the quarantined tenant.
	code, body = doReq(t, http.MethodGet, hs2.URL+"/healthz", "")
	mustStatus(t, http.StatusOK, code, body)
	var h HealthResponse
	if err := json.Unmarshal([]byte(body), &h); err != nil {
		t.Fatal(err)
	}
	if len(h.Quarantined) != 1 || h.Quarantined[0] != "alpha" {
		t.Fatalf("healthz quarantined = %v, want [alpha]", h.Quarantined)
	}
}

// TestServerSheddingAndDeadline: a wedged shard sheds excess load with
// the typed 429 and returns typed deadline errors to bounded requests,
// instead of queueing unboundedly.
func TestServerSheddingAndDeadline(t *testing.T) {
	ctx, done := context.WithCancel(context.Background())
	defer done()
	dir := t.TempDir()
	s, hs := newTestServer(t, ctx, dir, Config{Shards: 1, QueueDepth: 1})
	defer s.Close()
	defer hs.Close()

	code, body := doReq(t, http.MethodPut, hs.URL+"/v1/tenants/alpha", testTenantBody(7))
	mustStatus(t, http.StatusCreated, code, body)

	// Wedge the only shard. The release defer is registered after the
	// Close defers, so it runs first and a test failure can never leave
	// the shard (and s.Close) deadlocked.
	release := make(chan struct{})
	releaseOnce := sync.OnceFunc(func() { close(release) })
	defer releaseOnce()
	blocked := make(chan struct{})
	go s.shards[0].submit(context.Background(), func(context.Context) error {
		close(blocked)
		<-release
		return nil
	})
	<-blocked
	// Fill the queue (depth 1).
	go s.shards[0].submit(context.Background(), func(context.Context) error { return nil })
	waitFor(t, func() bool { return len(s.shards[0].ch) == 1 })

	// Next request is shed with the typed 429.
	code, body = doReq(t, http.MethodGet, hs.URL+"/v1/tenants/alpha", "")
	mustStatus(t, http.StatusTooManyRequests, code, body)
	var eb errorBody
	if err := json.Unmarshal([]byte(body), &eb); err != nil || eb.Code != "overloaded" {
		t.Fatalf("shed response not typed: %s", body)
	}
	releaseOnce()

	// After release the shard drains and serves again.
	waitFor(t, func() bool {
		code, _ := doReq(t, http.MethodGet, hs.URL+"/v1/tenants/alpha", "")
		return code == http.StatusOK
	})
	// The shed counter moved and is visible in /healthz.
	code, body = doReq(t, http.MethodGet, hs.URL+"/healthz", "")
	mustStatus(t, http.StatusOK, code, body)
	var h HealthResponse
	if err := json.Unmarshal([]byte(body), &h); err != nil {
		t.Fatal(err)
	}
	if h.Shards[0].Shed == 0 {
		t.Fatalf("healthz shed counter did not move: %s", body)
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in 5s")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestServerDeadlineOnSlowMutation: a request whose deadline expires
// while its work runs gets the typed 504.
func TestServerDeadlineOnSlowMutation(t *testing.T) {
	ctx, done := context.WithCancel(context.Background())
	defer done()
	dir := t.TempDir()
	s, hs := newTestServer(t, ctx, dir, Config{Shards: 1})
	defer s.Close()
	defer hs.Close()
	code, body := doReq(t, http.MethodPut, hs.URL+"/v1/tenants/alpha", testTenantBody(9))
	mustStatus(t, http.StatusCreated, code, body)

	// Wedge the shard so the HTTP request waits in queue past its
	// deadline. The release defer is registered after the Close defers,
	// so it runs first and a failure can never leave s.Close deadlocked.
	release := make(chan struct{})
	defer sync.OnceFunc(func() { close(release) })()
	blocked := make(chan struct{})
	go s.shards[0].submit(context.Background(), func(context.Context) error {
		close(blocked)
		<-release
		return nil
	})
	<-blocked
	code, body = doReq(t, http.MethodGet, hs.URL+"/v1/tenants/alpha?timeout_ms=50", "")
	mustStatus(t, http.StatusGatewayTimeout, code, body)
	var eb errorBody
	if err := json.Unmarshal([]byte(body), &eb); err != nil || eb.Code != "deadline" {
		t.Fatalf("deadline response not typed: %s", body)
	}
}

// TestServerMemoSharedAcrossTenants: tenants with identical provenance
// share calibration traces through the cross-tenant memo tier.
func TestServerMemoSharedAcrossTenants(t *testing.T) {
	ctx, done := context.WithCancel(context.Background())
	defer done()
	dir := t.TempDir()
	s, hs := newTestServer(t, ctx, dir, Config{})
	defer s.Close()
	defer hs.Close()
	for _, id := range []string{"twin-a", "twin-b"} {
		code, body := doReq(t, http.MethodPut, hs.URL+"/v1/tenants/"+id, testTenantBody(55))
		mustStatus(t, http.StatusCreated, code, body)
		code, body = doReq(t, http.MethodPost, hs.URL+"/v1/tenants/"+id+"/calibrate", "")
		mustStatus(t, http.StatusOK, code, body)
	}
	st := s.MemoStats()
	if st.Hits < 1 {
		t.Fatalf("twin tenants shared no calibration: %+v", st)
	}
}

// TestServerDrainRefusesTyped: after Drain every request gets the typed
// 503 and Close seals snapshots so the journals reopen compact.
func TestServerDrainRefusesTyped(t *testing.T) {
	ctx, done := context.WithCancel(context.Background())
	defer done()
	dir := t.TempDir()
	s, hs := newTestServer(t, ctx, dir, Config{})
	defer hs.Close()
	code, body := doReq(t, http.MethodPut, hs.URL+"/v1/tenants/alpha", testTenantBody(3))
	mustStatus(t, http.StatusCreated, code, body)
	code, body = doReq(t, http.MethodPost, hs.URL+"/v1/tenants/alpha/calibrate", "")
	mustStatus(t, http.StatusOK, code, body)

	s.Drain()
	code, body = doReq(t, http.MethodGet, hs.URL+"/v1/tenants/alpha", "")
	mustStatus(t, http.StatusServiceUnavailable, code, body)
	var eb errorBody
	if err := json.Unmarshal([]byte(body), &eb); err != nil || eb.Code != "draining" {
		t.Fatalf("drain refusal not typed: %s", body)
	}
	// healthz still answers, reporting the drain.
	code, body = doReq(t, http.MethodGet, hs.URL+"/healthz", "")
	mustStatus(t, http.StatusOK, code, body)
	if !bytes.Contains([]byte(body), []byte(`"status":"draining"`)) {
		t.Fatalf("healthz should report draining: %s", body)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	// Close sealed a snapshot: the journal tail is empty on reopen.
	if _, err := os.Stat(filepath.Join(dir, "alpha.ncsnap")); err != nil {
		t.Fatalf("drain did not seal a snapshot: %v", err)
	}
}

// TestServerTenantValidation: malformed IDs and configs refuse with the
// typed 400 before touching any shard.
func TestServerTenantValidation(t *testing.T) {
	ctx, done := context.WithCancel(context.Background())
	defer done()
	s, hs := newTestServer(t, ctx, t.TempDir(), Config{})
	defer s.Close()
	defer hs.Close()
	code, body := doReq(t, http.MethodPut, hs.URL+"/v1/tenants/bad..id", testTenantBody(1))
	mustStatus(t, http.StatusBadRequest, code, body)
	code, body = doReq(t, http.MethodPut, hs.URL+"/v1/tenants/ok", `{"vms":1}`)
	mustStatus(t, http.StatusBadRequest, code, body)
	code, body = doReq(t, http.MethodGet, hs.URL+"/v1/tenants/missing", "")
	mustStatus(t, http.StatusNotFound, code, body)
	code, body = doReq(t, http.MethodPut, hs.URL+"/v1/tenants/ok", testTenantBody(1))
	mustStatus(t, http.StatusCreated, code, body)
	code, body = doReq(t, http.MethodPut, hs.URL+"/v1/tenants/ok", testTenantBody(1))
	mustStatus(t, http.StatusConflict, code, body)
	code, body = doReq(t, http.MethodPost, hs.URL+"/v1/tenants/ok/resolve", "")
	mustStatus(t, http.StatusConflict, code, body) // not streaming
}
