package serve

// A tenant is one journaled advisor: a seeded virtual cluster, the
// core.Advisor bound to it, and the checkpoint.Store holding the op log
// that makes both rebuildable. Restart equivalence rests on two facts:
// every mutation is a deterministic function of (TenantConfig, op
// sequence) — the synthetic substrate is fully seeded, and calibrations
// measure throwaway replicas provisioned from key seeds so memo hits and
// misses are invisible to the tenant's own rng streams — and ops are
// journaled only after they applied cleanly, so the journal never holds
// an op the acked state does not reflect.

import (
	"context"
	"encoding/json"
	"fmt"
	"math"

	"netconstant/internal/checkpoint"
	"netconstant/internal/cloud"
	"netconstant/internal/core"
	"netconstant/internal/mpi"
	"netconstant/internal/stats"
	"netconstant/internal/topo"
)

// Op kinds. The journal stores the op struct as JSON — fixed field
// order, human-greppable, and free of gob's type-registry coupling.
const (
	opCreate      = "create"
	opCalibrate   = "calibrate"
	opObserve     = "observe"
	opAdvance     = "advance"
	opStreamBegin = "stream-begin"
	opStreamPair  = "stream-pair"
	opResolve     = "partial-resolve"
)

// op is one journaled logical mutation. Exactly the fields its kind
// needs are set; the rest stay at their zero values and are omitted
// from the encoding.
type op struct {
	Kind     string        `json:"kind"`
	Cfg      *TenantConfig `json:"cfg,omitempty"`
	Expected float64       `json:"expected,omitempty"`
	Actual   float64       `json:"actual,omitempty"`
	Dt       float64       `json:"dt,omitempty"`
	Src      int           `json:"src,omitempty"`
	Dst      int           `json:"dst,omitempty"`
	Lat      []float64     `json:"lat,omitempty"`
	Bw       []float64     `json:"bw,omitempty"`
}

// opResult carries the per-op response payload back to the handler.
type opResult struct {
	Triggered bool // observe: maintenance fired
}

type tenant struct {
	id      string
	cfg     TenantConfig // defaults applied
	pc      cloud.ProviderConfig
	calCfg  cloud.CalibrationConfig
	cluster *cloud.VirtualCluster
	adv     *core.Advisor
	store   *checkpoint.Store
	srv     *Server

	// calIndex counts completed full calibrations; it derives each
	// calibration's measurement-rng seed, so the Nth calibration of a
	// tenant measures the same trace in every replay — and in every
	// sibling tenant with the same config, which is what makes the
	// shared memo effective across tenants.
	calIndex int
}

// newTenant builds the seeded in-memory state for a validated config.
// It performs no journaling; the caller owns the create record.
func newTenant(srv *Server, id string, cfg TenantConfig, store *checkpoint.Store) (*tenant, error) {
	cfg.applyDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	pc := cloud.ProviderConfig{
		Tree: topo.TreeConfig{Racks: cfg.Racks, ServersPerRack: cfg.ServersPerRack},
		Seed: cfg.Seed,
	}
	vc, err := cloud.NewProvider(pc).Provision(cfg.VMs, cfg.Seed+1)
	if err != nil {
		return nil, err
	}
	advCfg := core.AdvisorConfig{
		TimeStep:  cfg.Steps,
		Threshold: cfg.Threshold,
		Gap:       cfg.Gap,
	}
	if cfg.Resilient {
		advCfg.Calibration.Resilient = true
	}
	adv := core.NewAdvisor(vc, stats.NewRNG(cfg.Seed+2), advCfg)
	t := &tenant{
		id:      id,
		cfg:     cfg,
		pc:      pc,
		calCfg:  advCfg.Calibration,
		cluster: vc,
		adv:     adv,
		store:   store,
		srv:     srv,
	}
	// Maintenance the regime detector fires autonomously must go through
	// the same memoized replica path as a client-requested calibrate, or
	// replays would measure on a different rng stream than the original.
	adv.SetRecalibrator(func(ctx context.Context) error {
		_, err := t.runCalibration(ctx)
		return err
	})
	return t, nil
}

// runCalibration measures (or replays from the shared memo) the
// tenant's next calibration trace on a throwaway replica cluster, then
// installs it. The replica is provisioned fresh from the key's seeds
// inside the compute closure, so whether the memo hits or misses leaves
// the tenant's live cluster and rng streams untouched — the property
// that keeps replay byte-identical regardless of cache state. The
// returned bool reports whether tenant state was mutated (the caller
// rebuilds from the journal when a mutation failed partway).
func (t *tenant) runCalibration(ctx context.Context) (mutated bool, err error) {
	key := cloud.CalibrationKey{
		Provider: t.pc,
		N:        t.cfg.VMs,
		ProvSeed: t.cfg.Seed + 1,
		RNGSeed:  t.cfg.Seed + 2 + (1+int64(t.calIndex))*1_000_003,
		Steps:    t.cfg.Steps,
		Gap:      t.cfg.Gap,
		Cal:      t.calCfg,
	}
	tc, err := t.srv.memo.GetOrComputeOwned(ctx, t.id, key, func() (*cloud.TemporalCalibration, error) {
		replica, err := cloud.NewProvider(key.Provider).Provision(key.N, key.ProvSeed)
		if err != nil {
			return nil, err
		}
		return cloud.CalibrateTPCtx(ctx, replica, stats.NewRNG(key.RNGSeed), key.Steps, key.Gap, key.Cal)
	})
	if err != nil {
		// Nothing installed: a failed measurement (typically a deadline)
		// leaves the tenant exactly as it was.
		return false, err
	}
	t.calIndex++
	// The tenant's own cluster pays the calibration's probe cost in
	// simulated time, as Algorithm 1 charges it.
	t.cluster.AdvanceTime(tc.TotalCost)
	return true, t.adv.AnalyzeCalibrationCtx(ctx, tc)
}

// applyOp executes one mutation against the tenant. mutated reports
// whether any state may have changed when err != nil — the shard
// rebuilds the tenant from its journal in that case, since a cancelled
// solver can leave the advisor half-updated.
func (t *tenant) applyOp(ctx context.Context, o op) (res opResult, mutated bool, err error) {
	switch o.Kind {
	case opCalibrate:
		mutated, err = t.runCalibration(ctx)
		return res, mutated, err
	case opObserve:
		if math.IsNaN(o.Expected) || math.IsNaN(o.Actual) {
			return res, false, errf("observe expected/actual must be numbers")
		}
		trig, err := t.adv.ObserveCtx(ctx, o.Expected, o.Actual)
		// ObserveCtx mutates the divergence tracker before any
		// maintenance runs, so any error is a possible partial mutation.
		return opResult{Triggered: trig}, err != nil, err
	case opAdvance:
		if o.Dt <= 0 || math.IsNaN(o.Dt) || math.IsInf(o.Dt, 0) {
			return res, false, errf("advance dt must be a positive number, got %v", o.Dt)
		}
		t.cluster.AdvanceTime(o.Dt)
		return res, false, nil
	case opStreamBegin:
		// The streaming session outlives this request: bind it to the
		// server's lifetime context, not the request deadline.
		return res, false, t.adv.BeginStreamingCtx(t.srv.baseCtx)
	case opStreamPair:
		n := t.cfg.VMs
		if o.Src < 0 || o.Src >= n || o.Dst < 0 || o.Dst >= n {
			return res, false, errf("stream pair (%d,%d) outside %d-VM cluster", o.Src, o.Dst, n)
		}
		if len(o.Lat) != t.cfg.Steps || len(o.Bw) != t.cfg.Steps {
			return res, false, errf("stream series must have %d samples, got lat=%d bw=%d", t.cfg.Steps, len(o.Lat), len(o.Bw))
		}
		err := t.adv.StreamPair(o.Src, o.Dst, o.Lat, o.Bw)
		return res, err != nil, err
	case opResolve:
		err := t.adv.PartialResolve()
		return res, err != nil, err
	}
	return res, false, errf("unknown op kind %q", o.Kind)
}

// journalOp appends the op to the tenant's store after it applied
// cleanly, then compacts when the tail has grown past the snapshot
// cadence.
func (t *tenant) journalOp(o op) error {
	payload, err := json.Marshal(o)
	if err != nil {
		return err
	}
	if _, err := t.store.Append(payload); err != nil {
		return err
	}
	if t.store.TailRecords() >= t.srv.cfg.SnapshotEvery {
		return t.store.Snapshot()
	}
	return nil
}

// rebuildTenant reconstructs a tenant from its store's record history:
// the create record declares the config, every later record replays in
// order under the server's lifetime context. Any failure — a malformed
// record, a non-create head, a replay error — means the journal does
// not describe a reachable state, and the caller quarantines the
// tenant.
func rebuildTenant(srv *Server, id string, store *checkpoint.Store) (*tenant, error) {
	recs := store.Records()
	if len(recs) == 0 {
		return nil, fmt.Errorf("serve: tenant %s journal holds no create record", id)
	}
	var head op
	if err := json.Unmarshal(recs[0], &head); err != nil {
		return nil, fmt.Errorf("serve: tenant %s create record: %w", id, err)
	}
	if head.Kind != opCreate || head.Cfg == nil {
		return nil, fmt.Errorf("serve: tenant %s journal starts with %q, want create", id, head.Kind)
	}
	t, err := newTenant(srv, id, *head.Cfg, store)
	if err != nil {
		return nil, fmt.Errorf("serve: tenant %s create replay: %w", id, err)
	}
	for i, rec := range recs[1:] {
		var o op
		if err := json.Unmarshal(rec, &o); err != nil {
			return nil, fmt.Errorf("serve: tenant %s record %d: %w", id, i+2, err)
		}
		if _, _, err := t.applyOp(srv.baseCtx, o); err != nil {
			return nil, fmt.Errorf("serve: tenant %s record %d (%s) replay: %w", id, i+2, o.Kind, err)
		}
	}
	return t, nil
}

// status snapshots the tenant's advisor state into the wire struct.
func (t *tenant) status() StatusResponse {
	h := t.adv.Health()
	return StatusResponse{
		Tenant:          t.id,
		VMs:             t.cfg.VMs,
		Seq:             t.store.Seq(),
		ClusterTime:     t.cluster.Now(),
		Calibrations:    t.adv.Calibrations(),
		Recalibrations:  t.adv.Recalibrations(),
		PartialResolves: t.adv.PartialResolves(),
		CalibrationCost: t.adv.CalibrationCost(),
		NormE:           t.adv.NormE(),
		Effectiveness:   t.adv.Effectiveness().String(),
		Confidence:      t.adv.Confidence().String(),
		Coverage:        h.Coverage,
		MeanQuality:     h.MeanQuality,
		OutlierRate:     h.OutlierRate,
		RetryExhaustion: h.RetryExhaustion,
		Streaming:       t.adv.StreamingActive(),
	}
}

// advise plans a tree under the requested strategy and wraps it in the
// degraded-mode envelope. Degradation is an answer, not an error: when
// calibration health demotes the strategy down the
// RPCA→Heuristics→Baseline ladder (or no calibration exists yet), the
// response says so and carries the tree the surviving strategy builds.
func (t *tenant) advise(req AdviseRequest) (AdviseResponse, error) {
	requested, err := parseStrategy(req.Strategy)
	if err != nil {
		return AdviseResponse{}, err
	}
	n := t.cfg.VMs
	if req.Root < 0 || req.Root >= n {
		return AdviseResponse{}, errf("root %d outside %d-VM cluster", req.Root, n)
	}
	if req.MsgBytes <= 0 || math.IsNaN(req.MsgBytes) {
		return AdviseResponse{}, errf("msg_bytes must be a positive number, got %v", req.MsgBytes)
	}
	effective := requested
	if t.adv.LastCalibration() == nil {
		// No guidance at all: the ladder bottoms out at Baseline.
		effective = core.Baseline
	} else {
		effective = t.adv.EffectiveStrategy(requested)
	}
	tree := t.adv.PlanTree(requested, req.Root, req.MsgBytes, nil, nil)
	exp := t.adv.ExpectedTime(tree, mpi.Broadcast, req.MsgBytes)
	if math.IsNaN(exp) {
		exp = 0 // no calibration yet — JSON has no NaN, and 0 is unambiguous with Degraded set
	}
	return AdviseResponse{
		Tenant:        t.id,
		Requested:     wireStrategy(requested),
		Effective:     wireStrategy(effective),
		Degraded:      effective != requested,
		Confidence:    t.adv.Confidence().String(),
		Effectiveness: t.adv.Effectiveness().String(),
		NormE:         t.adv.NormE(),
		Root:          req.Root,
		Parent:        tree.Parent,
		Depth:         tree.Depth(),
		ExpectedSec:   exp,
	}, nil
}
