package serve

// The HTTP/JSON wire surface of the advisor daemon. Every response body
// is a fixed-field struct (never a map), so json.Marshal produces
// byte-identical output for identical state — the property the chaos
// restart-equivalence oracle byte-diffs. Errors travel as
// {"code","error"} with the code drawn from a closed vocabulary that
// clients (and the oracle) can switch on.

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"netconstant/internal/cancel"
	"netconstant/internal/core"
)

// ErrOverloaded is the typed admission-control refusal: the target
// shard's queue is full, so the request is shed instead of queued
// unboundedly. Clients should back off and retry (HTTP 429).
var ErrOverloaded = errors.New("serve: shard queue full — request shed")

// ErrDraining is returned once the server has begun its shutdown drain:
// no new work is admitted, in-flight work finishes, snapshots seal.
var ErrDraining = errors.New("serve: draining — not admitting new requests")

// Sentinels for the remaining refusal classes; writeError maps them to
// status codes and wire codes.
var (
	errNotFound    = errors.New("serve: no such tenant")
	errExists      = errors.New("serve: tenant already exists")
	errBadRequest  = errors.New("serve: bad request")
	errQuarantined = errors.New("serve: tenant quarantined — journal damaged")
)

// TenantConfig declares a tenant's virtual cluster and advisor. The
// zero value of each field selects the defaults in parentheses; the
// config is journaled verbatim as the tenant's create record, so a
// restarted daemon rebuilds the identical seeded substrate.
type TenantConfig struct {
	VMs            int     `json:"vms"`              // cluster size (16)
	Seed           int64   `json:"seed"`             // provenance seed for provider, provisioning, and measurement rng streams
	Steps          int     `json:"steps"`            // TP-matrix calibration rows (10)
	Racks          int     `json:"racks"`            // datacenter racks (16)
	ServersPerRack int     `json:"servers_per_rack"` // servers per rack (16)
	Gap            float64 `json:"gap"`              // idle seconds between calibration rows (5)
	Threshold      float64 `json:"threshold"`        // maintenance threshold (advisor default 1.0)
	Resilient      bool    `json:"resilient"`        // retrying, outlier-rejecting calibration probes
}

func (c *TenantConfig) applyDefaults() {
	if c.VMs == 0 {
		c.VMs = 16
	}
	if c.Steps == 0 {
		c.Steps = 10
	}
	if c.Racks == 0 {
		c.Racks = 16
	}
	if c.ServersPerRack == 0 {
		c.ServersPerRack = 16
	}
	if c.Gap == 0 {
		c.Gap = 5
	}
}

func (c TenantConfig) validate() error {
	if c.VMs < 2 {
		return errf("vms must be ≥ 2, got %d", c.VMs)
	}
	if c.Racks < 1 || c.ServersPerRack < 1 {
		return errf("racks and servers_per_rack must be ≥ 1, got %d×%d", c.Racks, c.ServersPerRack)
	}
	if c.VMs > c.Racks*c.ServersPerRack {
		return errf("vms %d exceed datacenter capacity %d", c.VMs, c.Racks*c.ServersPerRack)
	}
	if c.Steps < 1 {
		return errf("steps must be ≥ 1, got %d", c.Steps)
	}
	if c.Gap < 0 || c.Threshold < 0 {
		return errf("gap and threshold must be ≥ 0")
	}
	return nil
}

// ObserveRequest reports a measured collective duration against the
// advisor's expectation (Algorithm 1 lines 4–9).
type ObserveRequest struct {
	Expected float64 `json:"expected"`
	Actual   float64 `json:"actual"`
}

// ObserveResponse reports whether the divergence triggered maintenance.
type ObserveResponse struct {
	Tenant    string `json:"tenant"`
	Triggered bool   `json:"triggered"`
	Seq       uint64 `json:"seq"`
}

// AdvanceRequest moves the tenant's cluster clock forward dt seconds.
type AdvanceRequest struct {
	Dt float64 `json:"dt"`
}

// StreamPairRequest feeds a re-measured pair column into the tenant's
// streaming session: the latency and bandwidth time series (length =
// Steps) for the src→dst column of the TP-matrices.
type StreamPairRequest struct {
	Src int       `json:"src"`
	Dst int       `json:"dst"`
	Lat []float64 `json:"lat"`
	Bw  []float64 `json:"bw"`
}

// AdviseRequest asks for a collective tree under a strategy. Strategy is
// one of "baseline", "heuristics", "rpca" (default), "topology".
type AdviseRequest struct {
	Strategy string  `json:"strategy"`
	Root     int     `json:"root"`
	MsgBytes float64 `json:"msg_bytes"`
}

// AdviseResponse is the planned tree plus the degraded-mode envelope:
// the strategy actually used after the RPCA→Heuristics→Baseline fallback
// ladder, and the calibration-health grade that drove it. A degraded
// answer is still an answer — the fallback surfaces in the body, not as
// an error.
type AdviseResponse struct {
	Tenant        string  `json:"tenant"`
	Requested     string  `json:"requested"`
	Effective     string  `json:"effective"`
	Degraded      bool    `json:"degraded"`
	Confidence    string  `json:"confidence"`
	Effectiveness string  `json:"effectiveness"`
	NormE         float64 `json:"norm_e"`
	Root          int     `json:"root"`
	Parent        []int   `json:"parent"`
	Depth         int     `json:"depth"`
	ExpectedSec   float64 `json:"expected_s"`
}

// StatusResponse is the tenant's full advisor state summary.
type StatusResponse struct {
	Tenant          string  `json:"tenant"`
	VMs             int     `json:"vms"`
	Seq             uint64  `json:"seq"` // journaled mutations over the tenant's lifetime
	ClusterTime     float64 `json:"cluster_time_s"`
	Calibrations    int     `json:"calibrations"`
	Recalibrations  int     `json:"recalibrations"`
	PartialResolves int     `json:"partial_resolves"`
	CalibrationCost float64 `json:"calibration_cost_s"`
	NormE           float64 `json:"norm_e"`
	Effectiveness   string  `json:"effectiveness"`
	Confidence      string  `json:"confidence"`
	Coverage        float64 `json:"coverage"`
	MeanQuality     float64 `json:"mean_quality"`
	OutlierRate     float64 `json:"outlier_rate"`
	RetryExhaustion float64 `json:"retry_exhaustion"`
	Streaming       bool    `json:"streaming"`
}

// ShardHealth is one shard's progress counters: queue depth and journal
// tail growth are the "progress, not liveness" signals a supervisor
// watches.
type ShardHealth struct {
	Queue       int   `json:"queue"`
	Served      int64 `json:"served"`
	Shed        int64 `json:"shed"`
	Mutations   int64 `json:"mutations"`
	Tenants     int64 `json:"tenants"`
	JournalTail int64 `json:"journal_tail"` // records journaled past the last sealed snapshot, summed over the shard's tenants
}

// HealthResponse is the /healthz body.
type HealthResponse struct {
	Status      string        `json:"status"` // "ok" or "draining"
	Shards      []ShardHealth `json:"shards"`
	Quarantined []string      `json:"quarantined"`
}

// errorBody is the uniform error envelope.
type errorBody struct {
	Code  string `json:"code"`
	Error string `json:"error"`
}

func errf(format string, args ...any) error {
	return wrapf(errBadRequest, format, args...)
}

func wrapf(sentinel error, format string, args ...any) error {
	return &wireError{sentinel: sentinel, msg: fmt.Sprintf(format, args...)}
}

type wireError struct {
	sentinel error
	msg      string
}

func (e *wireError) Error() string { return e.sentinel.Error() + ": " + e.msg }
func (e *wireError) Unwrap() error { return e.sentinel }

// parseStrategy maps the wire strategy vocabulary onto core.Strategy.
func parseStrategy(s string) (core.Strategy, error) {
	switch s {
	case "", "rpca":
		return core.RPCA, nil
	case "baseline":
		return core.Baseline, nil
	case "heuristics":
		return core.Heuristics, nil
	case "topology":
		return core.TopologyAware, nil
	}
	return 0, errf("unknown strategy %q (want baseline|heuristics|rpca|topology)", s)
}

// wireStrategy is the inverse mapping for response bodies.
func wireStrategy(s core.Strategy) string {
	switch s {
	case core.Baseline:
		return "baseline"
	case core.Heuristics:
		return "heuristics"
	case core.RPCA:
		return "rpca"
	case core.TopologyAware:
		return "topology"
	}
	return "unknown"
}

// writeJSON writes v with a trailing newline. Marshal of the fixed-field
// response structs cannot fail; a failure here is a programming error
// surfaced as a 500.
func writeJSON(w http.ResponseWriter, status int, v any) {
	buf, err := json.Marshal(v)
	if err != nil {
		http.Error(w, `{"code":"internal","error":"response encoding failed"}`, http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(append(buf, '\n'))
}

// writeError maps an error to its HTTP status and wire code. The order
// matters only for wrapped chains; each request error matches exactly
// one sentinel.
func writeError(w http.ResponseWriter, err error) {
	status, code := http.StatusInternalServerError, "internal"
	switch {
	case errors.Is(err, ErrOverloaded):
		status, code = http.StatusTooManyRequests, "overloaded"
		w.Header().Set("Retry-After", "1")
	case errors.Is(err, ErrDraining):
		status, code = http.StatusServiceUnavailable, "draining"
	case errors.Is(err, cancel.ErrCanceled):
		status, code = http.StatusGatewayTimeout, "deadline"
	case errors.Is(err, errQuarantined):
		status, code = http.StatusGone, "quarantined"
	case errors.Is(err, errNotFound):
		status, code = http.StatusNotFound, "not-found"
	case errors.Is(err, errExists):
		status, code = http.StatusConflict, "exists"
	case errors.Is(err, errBadRequest):
		status, code = http.StatusBadRequest, "bad-request"
	case errors.Is(err, core.ErrNotStreaming):
		status, code = http.StatusConflict, "not-streaming"
	}
	writeJSON(w, status, errorBody{Code: code, Error: err.Error()})
}
