package serve

// Sharding and admission control. Tenants hash onto N shards; each shard
// is a single-writer goroutine draining a bounded queue, so all access to
// a tenant's advisor is serialized without per-tenant locks, and overload
// becomes a typed shed at the queue instead of unbounded goroutine and
// memory growth. The waiter keeps its own deadline: a request whose
// context ends while queued (or while running) returns a typed
// cancellation immediately — the shard discovers queued-but-dead tasks
// at dequeue and skips their work.

import (
	"context"
	"hash/fnv"
	"sync"
	"sync/atomic"

	"netconstant/internal/cancel"
)

// task is one unit of shard work. err is written by the shard goroutine
// before done closes; the waiter may have abandoned the task by then, in
// which case the result is simply unobserved.
type task struct {
	ctx  context.Context
	run  func(ctx context.Context) error
	err  error
	done chan struct{}
}

type shard struct {
	srv *Server
	ch  chan *task

	// mu guards ch against the send-after-close race during drain:
	// submitters hold it shared, Close holds it exclusively while
	// flipping closed and closing the channel.
	mu     sync.RWMutex
	closed bool

	// tenants is owned by the shard goroutine (and by startup loading,
	// which runs before the goroutine starts).
	tenants map[string]*tenant

	served    atomic.Int64
	shed      atomic.Int64
	mutations atomic.Int64
	tenantN   atomic.Int64
	tail      atomic.Int64 // journal records past the last snapshot, summed over tenants

	sealErr error // first snapshot-seal failure during drain, read after wg.Wait
}

func newShard(srv *Server, depth int) *shard {
	return &shard{srv: srv, ch: make(chan *task, depth), tenants: map[string]*tenant{}}
}

// submit enqueues run and waits for it under ctx. A full queue sheds
// with ErrOverloaded; a draining shard refuses with ErrDraining; a
// context that ends first returns a typed cancellation (the task, if
// already queued, is skipped at dequeue).
func (sh *shard) submit(ctx context.Context, run func(ctx context.Context) error) error {
	tk := &task{ctx: ctx, run: run, done: make(chan struct{})}
	sh.mu.RLock()
	if sh.closed {
		sh.mu.RUnlock()
		return ErrDraining
	}
	select {
	case sh.ch <- tk:
		sh.mu.RUnlock()
	default:
		sh.mu.RUnlock()
		sh.shed.Add(1)
		return ErrOverloaded
	}
	select {
	case <-tk.done:
		return tk.err
	case <-ctx.Done():
		return cancel.Wrap("serve.shard", 0, 0, context.Cause(ctx))
	}
}

// loop is the shard goroutine: drain the queue until Close closes the
// channel, then seal every tenant's snapshot so a restart replays a
// compact journal.
func (sh *shard) loop() {
	defer sh.srv.wg.Done()
	for tk := range sh.ch {
		if err := cancel.Check(tk.ctx, "serve.shard", 0, 0); err != nil {
			// The waiter is already gone; don't spend shard time on work
			// nobody can observe.
			tk.err = err
		} else {
			tk.err = tk.run(tk.ctx)
		}
		sh.served.Add(1)
		close(tk.done)
	}
	for _, t := range sh.tenants {
		if err := t.store.Snapshot(); err != nil && sh.sealErr == nil {
			sh.sealErr = err
		}
		if err := t.store.Close(); err != nil && sh.sealErr == nil {
			sh.sealErr = err
		}
	}
}

// close stops admission and closes the queue; the shard goroutine
// finishes whatever was admitted, seals snapshots, and exits.
func (sh *shard) close() {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.closed {
		return
	}
	sh.closed = true
	close(sh.ch)
}

// tenantFor resolves a tenant inside the shard goroutine, translating
// absence into the quarantine-aware refusal.
func (sh *shard) tenantFor(id string) (*tenant, error) {
	if t, ok := sh.tenants[id]; ok {
		return t, nil
	}
	if reason, ok := sh.srv.quarantineReason(id); ok {
		return nil, wrapf(errQuarantined, "%s: %s", id, reason)
	}
	return nil, wrapf(errNotFound, "%s", id)
}

// install registers a tenant (startup load or create op) and refreshes
// the shard gauges.
func (sh *shard) install(t *tenant) {
	sh.tenants[t.id] = t
	sh.tenantN.Store(int64(len(sh.tenants)))
	sh.updateTail()
}

// drop removes a tenant (quarantine) and refreshes the gauges.
func (sh *shard) drop(id string) {
	delete(sh.tenants, id)
	sh.tenantN.Store(int64(len(sh.tenants)))
	sh.updateTail()
}

// updateTail recomputes the shard's journal-growth gauge. Called from
// the shard goroutine after every journaled mutation.
func (sh *shard) updateTail() {
	var sum int64
	for _, t := range sh.tenants {
		sum += int64(t.store.TailRecords())
	}
	sh.tail.Store(sum)
}

// rebuild replaces a tenant whose last mutation failed partway with a
// clean replay of its journal; an unreplayable journal quarantines the
// tenant (and only it).
func (sh *shard) rebuild(t *tenant) {
	fresh, err := rebuildTenant(sh.srv, t.id, t.store)
	if err != nil {
		t.store.Close()
		sh.drop(t.id)
		sh.srv.quarantine(t.id, err)
		return
	}
	sh.tenants[t.id] = fresh
}

// shardIndex maps a tenant ID onto its shard by provenance-key hash.
func shardIndex(id string, n int) int {
	h := fnv.New32a()
	h.Write([]byte(id))
	return int(h.Sum32() % uint32(n))
}
